# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench experiments examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (reduced scale).
experiments:
	go run ./cmd/experiments -exp all -csv results

examples:
	go run ./examples/quickstart
	go run ./examples/multiversion
	go run ./examples/rulegen
	go run ./examples/pathrule
	go run ./examples/nobel
	go run ./examples/webtables

clean:
	rm -rf results test_output.txt bench_output.txt
