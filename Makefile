# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet fmt-check test cover race fault chaos bench bench-smoke benchdiff snapshot-check delta-check metrics-check experiments examples e2e clean

all: build vet fmt-check test

build:
	go build ./...

vet:
	go vet ./...

# Fails if any file is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

test:
	go test ./...

# Tests with a merged coverage profile (CI uploads coverage.out as an
# artifact and prints the total).
cover:
	go test -coverprofile=coverage.out -coverpkg=./... ./...

race:
	go test -race ./...

# Fault-injection suite (panic quarantine, step budgets, chaotic I/O,
# load shedding, deadlines) under the race detector.
fault:
	go test -race -run TestFault ./internal/repair ./internal/server

# Chaos drills for the self-healing lifecycle, repeated under the race
# detector: canary reload rejection (strict self-check, shadow replay),
# watchdog auto-rollback under live traffic, reloads racing serving
# traffic against corrupt/suspect candidates — full and incremental
# delta alike (corrupt delta bytes, stale-base refusal, mixed
# full/delta swaps under load) — circuit-breaker trip/probe/recovery,
# and registry tenant churn (64 tenants through 8 residency slots with
# evictions racing in-flight requests).
chaos:
	go test -race -count=3 -run 'TestFaultBreaker' ./internal/repair
	go test -race -count=3 -run 'TestCanary|TestFaultCanary|TestRollback|TestReloadUnderLoad|TestFaultDelta|TestDeltaCanary' ./internal/server
	go test -race -count=3 -run 'TestLRUChurn|TestEvictionSkipsPinnedTenants|TestReadmissionAfterEviction' ./internal/registry

bench:
	go test -bench=. -benchmem ./...

# One iteration of every benchmark in the module: catches benchmarks
# that no longer compile or panic without paying for real measurement.
bench-smoke:
	go test -run='^$$' -bench=. -benchtime=1x ./...

# Remeasure the repair benchmarks and gate against the committed
# baseline (the CI benchmark-regression gate, runnable locally).
benchdiff:
	go run ./cmd/experiments -bench-repair BENCH_repair.json
	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_repair.json

# Snapshot golden gate: packing the checked-in sample KB must be
# byte-deterministic in both formats, and unpacking each snapshot must
# round-trip to the canonical text source byte-for-byte. verify on the
# v2 file also cross-checks the mmap'd load against the decode.
snapshot-check:
	@tmp="$$(mktemp -d)" && \
	go run ./cmd/kbtool pack testdata/sample_kb.nt "$$tmp/a.snap" && \
	go run ./cmd/kbtool pack testdata/sample_kb.nt "$$tmp/b.snap" && \
	cmp "$$tmp/a.snap" "$$tmp/b.snap" && \
	go run ./cmd/kbtool unpack "$$tmp/a.snap" "$$tmp/roundtrip.nt" && \
	cmp "$$tmp/roundtrip.nt" testdata/sample_kb.nt && \
	go run ./cmd/kbtool verify "$$tmp/a.snap" && \
	go run ./cmd/kbtool pack -v2 testdata/sample_kb.nt "$$tmp/a2.snap" && \
	go run ./cmd/kbtool pack -v2 testdata/sample_kb.nt "$$tmp/b2.snap" && \
	cmp "$$tmp/a2.snap" "$$tmp/b2.snap" && \
	go run ./cmd/kbtool unpack "$$tmp/a2.snap" "$$tmp/roundtrip2.nt" && \
	cmp "$$tmp/roundtrip2.nt" testdata/sample_kb.nt && \
	go run ./cmd/kbtool info "$$tmp/a2.snap" >/dev/null && \
	go run ./cmd/kbtool verify "$$tmp/a2.snap" && \
	rm -rf "$$tmp" && echo "snapshot-check: OK"

# Delta golden gate: diffing the checked-in old/new snapshot pair must
# be byte-deterministic and match the committed golden delta, and
# `diff | apply` must reproduce the directly-packed new snapshot
# byte-for-byte. The committed .dkbs/.dkbsd binaries are themselves
# regenerable from the canonical .nt sources (cross-checked here).
delta-check:
	@tmp="$$(mktemp -d)" && \
	go run ./cmd/kbtool pack -v2 testdata/delta/old.nt "$$tmp/old.dkbs" && \
	cmp "$$tmp/old.dkbs" testdata/delta/old.dkbs && \
	go run ./cmd/kbtool pack -v2 testdata/delta/new.nt "$$tmp/new.dkbs" && \
	cmp "$$tmp/new.dkbs" testdata/delta/new.dkbs && \
	go run ./cmd/kbtool diff testdata/delta/old.dkbs testdata/delta/new.dkbs "$$tmp/a.dkbsd" && \
	go run ./cmd/kbtool diff testdata/delta/old.dkbs testdata/delta/new.dkbs "$$tmp/b.dkbsd" && \
	cmp "$$tmp/a.dkbsd" "$$tmp/b.dkbsd" && \
	cmp "$$tmp/a.dkbsd" testdata/delta/old_to_new.dkbsd && \
	go run ./cmd/kbtool apply -v2 testdata/delta/old.dkbs testdata/delta/old_to_new.dkbsd "$$tmp/applied.dkbs" && \
	cmp "$$tmp/applied.dkbs" testdata/delta/new.dkbs && \
	rm -rf "$$tmp" && echo "delta-check: OK"

# Drives real traffic through an httptest server, scrapes the registry
# the way the `-ops-addr` listener does, and validates the Prometheus
# exposition parses and carries the expected series.
metrics-check:
	go test -run 'TestMetricsExposition' -count=1 -v ./internal/server
	go test -run 'TestOpsMux|TestExpositionRoundTrip|TestValidateExpositionRejectsGarbage' -count=1 ./internal/telemetry

# Regenerate every table and figure of the paper (reduced scale).
experiments:
	go run ./cmd/experiments -exp all -csv results

examples:
	go run ./examples/quickstart
	go run ./examples/multiversion
	go run ./examples/rulegen
	go run ./examples/pathrule
	go run ./examples/nobel
	go run ./examples/webtables

# Daemon end-to-end suite: boots detectived in single-tenant and
# registry mode against the checked-in sample KB and drives the HTTP
# surfaces (including ensemble requests and confidence trailers) with
# curl. The CI e2e job runs exactly this.
e2e:
	./scripts/e2e.sh

clean:
	rm -rf results test_output.txt bench_output.txt coverage.out
