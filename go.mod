module detective

go 1.22
