#!/usr/bin/env bash
# End-to-end exercise of the detectived HTTP surfaces, in both
# single-tenant and registry mode, against the checked-in sample KB.
# Drives /healthz, /clean (plain and ?ensemble=1), /reload, /metrics,
# and the /v1/{tenant}/... equivalents with curl, asserting response
# bodies, JSON shapes, and the X-Clean-* trailers (including the
# ensemble confidence trailers).
#
# Run from the repo root: ./scripts/e2e.sh (CI's e2e job does).
set -euo pipefail
cd "$(dirname "$0")/.."

PORT=${E2E_PORT:-18080}
OPS=${E2E_OPS_PORT:-18081}
BASE="http://127.0.0.1:$PORT"
OPSBASE="http://127.0.0.1:$OPS"
BIN=$(mktemp -d)/detectived
PID=""

cleanup() {
  [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

fail() {
  echo "e2e: FAIL: $*" >&2
  exit 1
}

wait_ready() { # url
  for _ in $(seq 1 100); do
    curl -fsS -o /dev/null "$1" 2>/dev/null && return 0
    sleep 0.2
  done
  fail "server at $1 never became ready"
}

stop_server() {
  kill "$PID" 2>/dev/null || true
  wait "$PID" 2>/dev/null || true
  PID=""
}

# assert_contains haystack needle message
assert_contains() {
  case "$1" in
  *"$2"*) ;;
  *) fail "$3 (wanted \"$2\" in: $(printf '%s' "$1" | head -c 400))" ;;
  esac
}

go build -o "$BIN" ./cmd/detectived

echo "=== e2e: single-tenant mode ==="
"$BIN" -kb testdata/sample_kb.nt -rules testdata/e2e/rules.dr \
  -schema Name,Prize,Institution,City -name Nobel \
  -addr "127.0.0.1:$PORT" -ops-addr "127.0.0.1:$OPS" \
  -ensemble -ensemble-ref testdata/e2e/ref.csv \
  -log-level warn &
PID=$!
wait_ready "$BASE/healthz"

body=$(curl -fsS "$BASE/healthz")
assert_contains "$body" "ok" "/healthz body"

# Plain /clean: CSV out, repairs applied, stats in trailers. --raw
# keeps the chunked framing so the trailer block is visible.
out=$(curl -fsS --raw -X POST --data-binary @testdata/e2e/dirty.csv "$BASE/clean")
assert_contains "$out" "Back Dromzais,Cist Prize in Chemistry,Jastrea Research Institute,Sturhaven" \
  "plain /clean must repair City from the KB (worksAt + locatedIn)"
assert_contains "$out" "Doundgrund Poulrin,Prios Prize in Chemistry" \
  "plain /clean must repair Prize to the chemistry award"
assert_contains "$out" "X-Clean-Rows: 2" "plain /clean trailer"
case "$out" in
*X-Clean-Confidence*) fail "plain /clean must not emit confidence trailers" ;;
esac

# Ensemble /clean: confidence column appended, confidence trailers.
out=$(curl -fsS --raw -X POST --data-binary @testdata/e2e/dirty.csv "$BASE/clean?ensemble=1")
assert_contains "$out" "confidence" "ensemble /clean header must add the confidence column"
assert_contains "$out" "Jastrea Research Institute,Sturhaven,1.000" \
  "ensemble /clean must carry per-row confidence"
assert_contains "$out" "X-Clean-Rows: 2" "ensemble /clean rows trailer"
assert_contains "$out" "X-Clean-Confidence-Mean: " "ensemble confidence-mean trailer"
assert_contains "$out" "X-Clean-Confidence-Min: " "ensemble confidence-min trailer"
assert_contains "$out" "X-Clean-Confidence-Below: " "ensemble confidence-below trailer"

# /stats: JSON including the per-engine ensemble reliability map.
curl -fsS "$BASE/stats" | python3 -c '
import json, sys
d = json.load(sys.stdin)
assert "ensembleReliability" in d, d.keys()
assert "detective" in d["ensembleReliability"], d["ensembleReliability"]
'

# /reload on the ops port stages a canary reload of the same KB file.
out=$(curl -fsS -X POST "$OPSBASE/reload")
python3 -c '
import json, sys
d = json.loads(sys.argv[1])
assert d.get("generation", 0) >= 2, d
assert d.get("triples", 0) > 0, d
' "$out"

# Incremental delta reload: the committed golden delta's base is the
# sample KB the server is serving (fingerprints match across text and
# snapshot forms), so POST /reload?delta=1 applies it copy-on-write.
out=$(curl -fsS -X POST --data-binary @testdata/delta/old_to_new.dkbsd "$OPSBASE/reload?delta=1")
python3 -c '
import json, sys
d = json.loads(sys.argv[1])
assert d.get("delta") is True, d
assert d.get("deltaOps", 0) > 0, d
assert d.get("generation", 0) >= 3, d
' "$out"
# The delta edits untouched entities: repairs must be unchanged.
out=$(curl -fsS --raw -X POST --data-binary @testdata/e2e/dirty.csv "$BASE/clean")
assert_contains "$out" "Back Dromzais,Cist Prize in Chemistry,Jastrea Research Institute,Sturhaven" \
  "post-delta /clean must repair exactly as before"
assert_contains "$out" "Doundgrund Poulrin,Prios Prize in Chemistry" \
  "post-delta /clean must still repair Prize"
# Replaying the same delta is a stale-base 409: the serving graph's
# fingerprint moved to the delta's new side.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @testdata/delta/old_to_new.dkbsd "$OPSBASE/reload?delta=1")
[ "$code" = 409 ] || fail "stale-base delta replay must 409, got $code"
# /stats carries the delta accounting.
curl -fsS "$BASE/stats" | python3 -c '
import json, sys
d = json.load(sys.stdin)
assert d.get("kbDeltasApplied", 0) == 1, d.get("kbDeltasApplied")
assert d.get("kbDeltaTriples", 0) > 0, d.get("kbDeltaTriples")
'

# /metrics: Prometheus exposition with the ensemble counter series.
metrics=$(curl -fsS "$OPSBASE/metrics")
assert_contains "$metrics" "detective_ensemble_proposals_total" "ensemble proposals metric"
assert_contains "$metrics" 'engine="detective"' "per-engine metric label"
assert_contains "$metrics" "detective_kb_reload_total" "reload metric"
assert_contains "$metrics" "detective_kb_delta_applied" "delta apply metric"

stop_server
echo "=== e2e: single-tenant mode OK ==="

echo "=== e2e: registry mode ==="
"$BIN" -registry testdata/e2e/tenants.json -warm all \
  -addr "127.0.0.1:$PORT" -ops-addr "127.0.0.1:$OPS" \
  -log-level warn &
PID=$!
wait_ready "$BASE/healthz"

# Tenant alpha has ensemble enabled in tenants.json.
out=$(curl -fsS --raw -X POST --data-binary @testdata/e2e/dirty.csv "$BASE/v1/alpha/clean?ensemble=1")
assert_contains "$out" "confidence" "tenant ensemble /clean confidence column"
assert_contains "$out" "Back Dromzais,Cist Prize in Chemistry,Jastrea Research Institute,Sturhaven" \
  "tenant ensemble /clean must still repair City"
assert_contains "$out" "X-Clean-Confidence-Mean: " "tenant ensemble confidence trailer"

# Tenant beta inherits the defaults (no ensemble): plain clean works,
# ?ensemble=1 is a 400.
out=$(curl -fsS --raw -X POST --data-binary @testdata/e2e/dirty.csv "$BASE/v1/beta/clean")
assert_contains "$out" "Doundgrund Poulrin,Prios Prize in Chemistry" "tenant beta plain /clean"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @testdata/e2e/dirty.csv "$BASE/v1/beta/clean?ensemble=1")
[ "$code" = 400 ] || fail "ensemble=1 on a non-ensemble tenant must 400, got $code"

# Per-tenant reload on the ops port, then fleet status.
out=$(curl -fsS -X POST "$OPSBASE/v1/alpha/reload")
python3 -c '
import json, sys
d = json.loads(sys.argv[1])
assert d.get("generation", 0) >= 2, d
' "$out"
curl -fsS "$OPSBASE/registry" | python3 -c '
import json, sys
d = json.load(sys.stdin)
names = {t["name"] for t in d["tenants"]}
assert {"alpha", "beta"} <= names, names
'

# Per-tenant incremental delta reload: rides the same handler under
# the tenant prefix, and the tenant must stay resident through it.
out=$(curl -fsS -X POST --data-binary @testdata/delta/old_to_new.dkbsd "$OPSBASE/v1/beta/reload?delta=1")
python3 -c '
import json, sys
d = json.loads(sys.argv[1])
assert d.get("delta") is True, d
assert d.get("generation", 0) >= 2, d
' "$out"
out=$(curl -fsS --raw -X POST --data-binary @testdata/e2e/dirty.csv "$BASE/v1/beta/clean")
assert_contains "$out" "Doundgrund Poulrin,Prios Prize in Chemistry" \
  "tenant beta post-delta /clean must repair as before"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @testdata/delta/old_to_new.dkbsd "$OPSBASE/v1/beta/reload?delta=1")
[ "$code" = 409 ] || fail "tenant stale-base delta replay must 409, got $code"
curl -fsS "$OPSBASE/registry" | python3 -c '
import json, sys
d = json.load(sys.stdin)
beta = next(t for t in d["tenants"] if t["name"] == "beta")
assert beta["resident"], beta
'
metrics=$(curl -fsS "$OPSBASE/metrics")
assert_contains "$metrics" "detective_ensemble_accepted_total" "registry ensemble metrics"

stop_server
echo "=== e2e: registry mode OK ==="
echo "e2e: PASS"
