// Command experiments regenerates every table and figure of the
// paper's evaluation section (§V):
//
//	experiments -exp table2     # Table II  — aligned classes/relations
//	experiments -exp table3     # Table III — DRs vs KATARA accuracy
//	experiments -exp fig6       # Figure 6  — quality vs error rate
//	experiments -exp fig7       # Figure 7  — quality vs typo rate
//	experiments -exp fig8a..d   # Figure 8  — efficiency/scalability
//	experiments -exp all
//
// Sizes default to a reduced scale that finishes quickly; pass
// -paper-scale for the paper's sizes (UIS 100K — the basic repair
// algorithm is deliberately slow there).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"log/slog"

	"detective/internal/dataset"
	"detective/internal/eval"
	"detective/internal/kb"
	"detective/internal/registry"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/repair/ensemble/adapters"
	"detective/internal/rules"
	"detective/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, table2, table3, fig6, fig7, fig8a, fig8b, fig8c, fig8d, ext, ensemble, all")
	paperScale := flag.Bool("paper-scale", false, "use the paper's dataset sizes (slow)")
	seed := flag.Int64("seed", 1, "generator seed")
	uis := flag.Int("uis-tuples", 0, "override UIS tuple count for quality experiments")
	nobel := flag.Int("nobel-tuples", 0, "override Nobel tuple count")
	csvDir := flag.String("csv", "", "also write each experiment's data as CSV into this directory")
	repeats := flag.Int("repeats", 0, "average each timing over this many runs (paper: 6)")
	benchRepair := flag.String("bench-repair", "", "run the repair-engine micro-benchmarks and write the results as JSON to this file (e.g. BENCH_repair.json), then exit")
	flag.Parse()

	if *benchRepair != "" {
		fail(writeRepairBench(*benchRepair))
		return
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}
	writeCSV := func(name string, write func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		fail(err)
		defer f.Close()
		fail(write(f))
	}

	cfg := eval.DefaultConfig()
	if *paperScale {
		cfg = eval.PaperScaleConfig()
	}
	cfg.Seed = *seed
	if *uis > 0 {
		cfg.UISTuples = *uis
	}
	if *nobel > 0 {
		cfg.NobelTuples = *nobel
	}
	if *repeats > 0 {
		cfg.Repeats = *repeats
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	any := false

	if run("table1") {
		any = true
		printTableI()
		fmt.Println()
	}
	if run("table2") {
		any = true
		rows := eval.TableII(cfg)
		eval.PrintTableII(os.Stdout, rows)
		writeCSV("table2.csv", func(w *os.File) error { return eval.AlignCSV(w, rows) })
		fmt.Println()
	}
	if run("table3") {
		any = true
		rows, err := eval.TableIII(cfg)
		fail(err)
		eval.PrintTableIII(os.Stdout, rows)
		writeCSV("table3.csv", func(w *os.File) error { return eval.QualityCSV(w, rows) })
		fmt.Println()
	}
	if run("fig6") {
		any = true
		curves, err := eval.Figure6(cfg)
		fail(err)
		eval.PrintCurves(os.Stdout, "FIGURE 6. EFFECTIVENESS (VARYING ERROR RATE)", "err%", curves)
		writeCSV("fig6.csv", func(w *os.File) error { return eval.CurvesCSV(w, curves) })
		fmt.Println()
	}
	if run("fig7") {
		any = true
		curves, err := eval.Figure7(cfg)
		fail(err)
		eval.PrintCurves(os.Stdout, "FIGURE 7. EFFECTIVENESS (VARYING TYPO RATE)", "typo%", curves)
		writeCSV("fig7.csv", func(w *os.File) error { return eval.CurvesCSV(w, curves) })
		fmt.Println()
	}
	if run("fig8a") {
		any = true
		curves, err := eval.Figure8a(cfg)
		fail(err)
		eval.PrintTimeCurves(os.Stdout, "FIGURE 8(a). TIME (WEBTABLES, VARYING #-RULE)", "#-rule", curves)
		writeCSV("fig8a.csv", func(w *os.File) error { return eval.TimeCurvesCSV(w, curves) })
		fmt.Println()
	}
	if run("fig8b") {
		any = true
		curves, err := eval.Figure8b(cfg)
		fail(err)
		eval.PrintTimeCurves(os.Stdout, "FIGURE 8(b). TIME (NOBEL, VARYING #-RULE)", "#-rule", curves)
		writeCSV("fig8b.csv", func(w *os.File) error { return eval.TimeCurvesCSV(w, curves) })
		fmt.Println()
	}
	if run("fig8c") {
		any = true
		curves, err := eval.Figure8c(cfg)
		fail(err)
		eval.PrintTimeCurves(os.Stdout, "FIGURE 8(c). TIME (UIS, VARYING #-RULE)", "#-rule", curves)
		writeCSV("fig8c.csv", func(w *os.File) error { return eval.TimeCurvesCSV(w, curves) })
		fmt.Println()
	}
	if run("fig8d") {
		any = true
		curves, err := eval.Figure8d(cfg)
		fail(err)
		eval.PrintTimeCurves(os.Stdout, "FIGURE 8(d). TIME (UIS, VARYING #-TUPLE)", "#-tuple", curves)
		writeCSV("fig8d.csv", func(w *os.File) error { return eval.TimeCurvesCSV(w, curves) })
		fmt.Println()
	}
	if run("ensemble") {
		any = true
		rows, err := eval.EnsembleTable(cfg)
		fail(err)
		eval.PrintEnsemble(os.Stdout, rows)
		writeCSV("ensemble.csv", func(w *os.File) error { return eval.QualityCSV(w, rows) })
		fmt.Println()
	}
	if run("ext") {
		any = true
		rows, err := eval.ExtensionPathRule(cfg)
		fail(err)
		eval.PrintExtension(os.Stdout, rows)
		writeCSV("extension.csv", func(w *os.File) error { return eval.ExtensionCSV(w, rows) })
		fmt.Println()
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; want one of table1, table2, table3, fig6, fig7, fig8a-d, ext, ensemble, all\n", *exp)
		os.Exit(2)
	}
}

// printTableI replays the paper's running example (Table I) through
// the engine: the four laureate tuples with their errors, cleaned and
// marked.
func printTableI() {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	fail(err)
	fmt.Println("TABLE I. DATABASE D: NOBEL LAUREATES IN CHEMISTRY (dirty -> cleaned)")
	for i, tu := range ex.Dirty.Tuples {
		fmt.Printf("r%d dirty: %v\n", i+1, tu)
		fmt.Printf("r%d clean: %v\n", i+1, e.FastRepair(tu))
	}
}

// benchResult is one serialized micro-benchmark measurement; the file
// of these written by -bench-repair tracks the repair engine's perf
// trajectory across PRs.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

// writeRepairBench times the repair hot paths with testing.Benchmark
// (the same harness `go test -bench` uses) and writes the results as
// JSON, so CI and humans can diff engine performance across commits
// without parsing benchmark text output.
// deltaBenchGraph mirrors internal/kb's benchGraph/churnedGraph pair:
// the Nobel-4000-shaped synthetic KB (4000 persons over 200 cities,
// three facts each) with the first churnedPersons persons edited —
// one edge retargeted, one property value replaced, one edge added.
// The KBApplyDelta* and KBReloadFull series run on this graph so the
// delta-vs-full-reload ratio compares like with like.
func deltaBenchGraph(churnedPersons int) *kb.Graph {
	g := kb.New()
	g.AddSubclass("scientist", "person")
	g.AddSubclass("chemist", "scientist")
	g.AddSubclass("city", "location")
	classes := []string{"person", "scientist", "chemist"}
	for i := 0; i < 200; i++ {
		g.AddType("city-"+strconv.Itoa(i), "city")
	}
	for i := 0; i < 4000; i++ {
		name := "person-" + strconv.Itoa(i)
		g.AddType(name, classes[i%len(classes)])
		if i < churnedPersons {
			g.AddTriple(name, "bornIn", "city-"+strconv.Itoa((i+1)%200))
			g.AddTriple(name, "worksIn", "city-"+strconv.Itoa((i*7)%200))
			g.AddPropertyTriple(name, "bornOnDate", "20"+strconv.Itoa(10+i%90)+"-01-02")
			g.AddTriple(name, "livesIn", "city-"+strconv.Itoa(i%200))
		} else {
			g.AddTriple(name, "bornIn", "city-"+strconv.Itoa(i%200))
			g.AddTriple(name, "worksIn", "city-"+strconv.Itoa((i*7)%200))
			g.AddPropertyTriple(name, "bornOnDate", "19"+strconv.Itoa(10+i%90)+"-01-02")
		}
	}
	return g
}

func writeRepairBench(path string) error {
	// Fail on an unwritable path before spending a minute benchmarking.
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// The per-tuple and table series run memo-disabled: they track the
	// cold repair kernel, which a warm memo would mask. The memoized
	// path gets its own series (FastRepairTupleMemoHit, CleanCSVStreamZipf*).
	nobel := dataset.NewNobel(1, 500)
	nobelInj := nobel.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 1})
	ne, err := repair.NewEngineWithOptions(nobel.Rules, nobel.Yago, nobel.Schema,
		repair.Options{MemoDisabled: true})
	if err != nil {
		return err
	}
	ne.Warm()

	me, err := repair.NewEngine(nobel.Rules, nobel.Yago, nobel.Schema)
	if err != nil {
		return err
	}
	me.Warm()
	memoDst := &relation.Tuple{
		Values: make([]string, len(nobel.Schema.Attrs)),
		Marked: make([]bool, len(nobel.Schema.Attrs)),
	}
	for _, t := range nobelInj.Dirty.Tuples {
		me.RepairRow(memoDst, t.Values) // warm the memo for the hit series
	}

	uis := dataset.NewUIS(1, 1500)
	uisInj := uis.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 1})
	ue, err := repair.NewEngineWithOptions(uis.Rules, uis.Yago, uis.Schema,
		repair.Options{MemoDisabled: true})
	if err != nil {
		return err
	}
	ue.Warm()

	record := func(name string, r testing.BenchmarkResult) benchResult {
		return benchResult{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
		}
	}
	results := []benchResult{
		record("FastRepairTuple", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ne.FastRepair(nobelInj.Dirty.Tuples[i%nobelInj.Dirty.Len()])
			}
		})),
		record("FastRepairTupleMemoHit", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, hit := me.RepairRow(memoDst, nobelInj.Dirty.Tuples[i%nobelInj.Dirty.Len()].Values); !hit {
					b.Fatal("warm repair missed the memo")
				}
			}
		})),
		record("BasicRepairTuple", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ne.BasicRepair(nobelInj.Dirty.Tuples[i%nobelInj.Dirty.Len()])
			}
		})),
		record("RepairTableParallel", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ue.RepairTableParallel(uisInj.Dirty, 0)
			}
		})),
	}

	// Streaming pipeline on the duplicate-heavy corpus: serial baseline
	// and the 8-worker chunked pipeline (same corpus as
	// BenchmarkCleanCSVStreamParallel).
	streamNobel := dataset.NewNobel(1, 400)
	streamInj := streamNobel.Inject(dataset.Noise{Rate: 0.30, TypoFrac: 0.5, Seed: 1})
	corpus := dataset.DuplicateBursts(streamInj.Dirty, 1, 16)
	var cbuf bytes.Buffer
	if err := corpus.WriteCSV(&cbuf); err != nil {
		return err
	}
	input := cbuf.String()
	for _, bench := range []struct {
		name    string
		workers int
	}{{"CleanCSVStreamSerial", 1}, {"CleanCSVStreamParallel8", 8}} {
		se, err := repair.NewEngineWithOptions(streamNobel.Rules, streamNobel.Yago, streamNobel.Schema,
			repair.Options{Workers: bench.workers, MemoDisabled: true})
		if err != nil {
			return err
		}
		se.Warm()
		results = append(results, record(bench.name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := se.CleanCSVStreamContext(context.Background(),
					strings.NewReader(input), io.Discard, true); err != nil {
					b.Fatal(err)
				}
			}
		})))
	}

	// Zipf-skewed corpus with the global memo on: the head-heavy
	// distribution is where cross-request memoization pays, and the
	// serial/8-worker pair shows whether the memo-hit path or the
	// pipeline wins at this skew (same corpus as BenchmarkCleanCSVStreamZipf).
	zipfCorpus := dataset.ZipfTable(streamInj.Dirty, 1, 1.1, 8192)
	var zbuf bytes.Buffer
	if err := zipfCorpus.WriteCSV(&zbuf); err != nil {
		return err
	}
	zinput := zbuf.String()
	for _, bench := range []struct {
		name    string
		workers int
	}{{"CleanCSVStreamZipfSerial", 1}, {"CleanCSVStreamZipf8", 8}} {
		ze, err := repair.NewEngineWithOptions(streamNobel.Rules, streamNobel.Yago, streamNobel.Schema,
			repair.Options{Workers: bench.workers})
		if err != nil {
			return err
		}
		ze.Warm()
		results = append(results, record(bench.name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ze.CleanCSVStreamContext(context.Background(),
					strings.NewReader(zinput), io.Discard, true); err != nil {
					b.Fatal(err)
				}
			}
		})))
	}

	// Ensemble mode: the four-engine weighted vote per tuple
	// (EnsembleTuple4), and the 8-worker streaming pipeline in
	// ensemble mode on the same Zipf corpus as CleanCSVStreamZipf8.
	// The single-engine series above running against an
	// ensemble-capable build is what pins the ensemble-off hot paths.
	ensStore := kb.NewStore(nobel.Yago)
	ee, err := repair.NewEngineStore(nobel.Rules, ensStore, nobel.Schema, repair.Options{
		MemoDisabled: true,
		Ensemble: repair.EnsembleOptions{
			Enabled:   true,
			Proposers: adapters.BuildProposers(nobel.Schema, nobel.Pattern, ensStore, nobelInj.Truth),
		},
	})
	if err != nil {
		return err
	}
	ee.Warm()
	ensDst := &relation.Tuple{
		Values: make([]string, len(nobel.Schema.Attrs)),
		Marked: make([]bool, len(nobel.Schema.Attrs)),
	}
	results = append(results, record("EnsembleTuple4", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ee.RepairRowEnsemble(context.Background(), ensDst, nobelInj.Dirty.Tuples[i%nobelInj.Dirty.Len()].Values)
		}
	})))

	zStore := kb.NewStore(streamNobel.Yago)
	ze8, err := repair.NewEngineStore(streamNobel.Rules, zStore, streamNobel.Schema, repair.Options{
		Workers: 8,
		Ensemble: repair.EnsembleOptions{
			Enabled:   true,
			Proposers: adapters.BuildProposers(streamNobel.Schema, streamNobel.Pattern, zStore, streamInj.Truth),
		},
	})
	if err != nil {
		return err
	}
	ze8.Warm()
	results = append(results, record("CleanCSVStreamEnsemble8", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ze8.CleanCSVStreamEnsembleContext(context.Background(),
				strings.NewReader(zinput), io.Discard, true); err != nil {
				b.Fatal(err)
			}
		}
	})))

	// KB load formats: the text parser versus the binary snapshot
	// decoder over the same graph. The snapshot's headline claim (≥5×
	// faster load) is gated by benchdiff through these two series.
	loadKB := dataset.NewNobel(1, 4000).Yago
	var textBuf, snapBuf bytes.Buffer
	if err := loadKB.Encode(&textBuf); err != nil {
		return err
	}
	if err := loadKB.WriteSnapshot(&snapBuf); err != nil {
		return err
	}
	textSrc, snapSrc := textBuf.Bytes(), snapBuf.Bytes()
	results = append(results,
		record("KBLoadText", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kb.Parse(bytes.NewReader(textSrc)); err != nil {
					b.Fatal(err)
				}
			}
		})),
		record("KBLoadSnapshot", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kb.LoadSnapshot(bytes.NewReader(snapSrc)); err != nil {
					b.Fatal(err)
				}
			}
		})),
	)

	// DKBS v2 over the same graph: the portable decode of the
	// page-aligned layout, and the mmap'd in-place load the registry's
	// tenant cold admissions ride on. KBLoadMmap staying well clear of
	// the v1 decode (the headline is ≥5×) is gated by benchdiff.
	var snap2Buf bytes.Buffer
	if err := loadKB.WriteSnapshotV2(&snap2Buf); err != nil {
		return err
	}
	benchDir, err := os.MkdirTemp("", "detective-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(benchDir)
	snap2Path := filepath.Join(benchDir, "kb.v2.dkbs")
	if err := os.WriteFile(snap2Path, snap2Buf.Bytes(), 0o644); err != nil {
		return err
	}
	snap2Src := snap2Buf.Bytes()
	results = append(results,
		record("KBLoadSnapshotV2", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kb.LoadSnapshot(bytes.NewReader(snap2Src)); err != nil {
					b.Fatal(err)
				}
			}
		})),
		record("KBLoadMmap", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := kb.LoadSnapshotFile(snap2Path); err != nil {
					b.Fatal(err)
				}
			}
		})),
	)

	// Incremental DKBD deltas on the Nobel-4000-shaped synthetic graph
	// (internal/kb's bench pair): KBReloadFull is what a full
	// POST /reload of the same snapshot pays before it serves — mmap
	// plus Freeze, which Store.Swap always runs — and KBApplyDelta* is
	// the copy-on-write apply POST /reload?delta=1 pays at ~1% and
	// ~10% churn. KBApplyDeltaSmall staying ≥10× under KBReloadFull is
	// the headline gated by benchdiff.
	// The engines and registry above stay reachable until here; clear
	// the heap before the load-vs-delta series so GC assist built up
	// by 30s of prior benchmarks doesn't skew either side.
	runtime.GC()
	var deltaSnapBuf bytes.Buffer
	if err := deltaBenchGraph(0).WriteSnapshotV2(&deltaSnapBuf); err != nil {
		return err
	}
	deltaSnapPath := filepath.Join(benchDir, "delta-base.v2.dkbs")
	if err := os.WriteFile(deltaSnapPath, deltaSnapBuf.Bytes(), 0o644); err != nil {
		return err
	}
	results = append(results, record("KBReloadFull", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := kb.LoadSnapshotFile(deltaSnapPath)
			if err != nil {
				b.Fatal(err)
			}
			g.Freeze()
		}
	})))
	deltaBase, err := kb.LoadSnapshotFile(deltaSnapPath)
	if err != nil {
		return err
	}
	deltaBase.Freeze()
	deltaBase.Fingerprint() // pre-warm like a served graph
	for _, dc := range []struct {
		name    string
		churned int
	}{
		{"KBApplyDeltaSmall", 40},
		{"KBApplyDeltaLarge", 400},
	} {
		d := kb.Diff(deltaBase, deltaBenchGraph(dc.churned))
		results = append(results, record(dc.name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := deltaBase.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
			}
		})))
	}

	// Tenant cold admission, end to end: two tenants thrash a
	// residency cap of 1, so every resolve is a full cold admission —
	// mmap the snapshot, build the engine, evict the previous tenant.
	// This is the registry's worst-case request and the price of
	// configuring far more tenants than the cap.
	nobelBench := dataset.NewNobel(1, 4000)
	rulesPath := filepath.Join(benchDir, "rules.dr")
	rfile, err := os.Create(rulesPath)
	if err != nil {
		return err
	}
	if err := rules.EncodeRules(rfile, nobelBench.Rules); err != nil {
		rfile.Close()
		return err
	}
	if err := rfile.Close(); err != nil {
		return err
	}
	reg, err := registry.New(registry.Config{
		MaxResident: 1,
		Defaults: registry.TenantConfig{
			Snapshot: snap2Path,
			Rules:    rulesPath,
			Schema:   nobelBench.Schema.Attrs,
			Relation: nobelBench.Schema.Name,
		},
		Tenants: []registry.TenantConfig{{Name: "a"}, {Name: "b"}},
	}, registry.Options{
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		Metrics: telemetry.NewRegistry(),
	})
	if err != nil {
		return err
	}
	coldNames := [2]string{"a", "b"}
	results = append(results,
		record("TenantColdAdmission", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, release, err := reg.Tenant(coldNames[i%2])
				if err != nil {
					b.Fatal(err)
				}
				release()
			}
		})),
	)

	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Benchmarks []benchResult `json:"benchmarks"`
	}{results}); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-20s %12.0f ns/op %8d B/op %6d allocs/op\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
