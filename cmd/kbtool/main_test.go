package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"detective/internal/kb"
)

// writeSnapshot packs g into a snapshot file under dir.
func writeSnapshot(t *testing.T, dir, name string, g *kb.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func healthyGraph() *kb.Graph {
	g := kb.New()
	g.AddType("Alice", "person")
	g.AddType("Paris", "city")
	g.AddTriple("Alice", "livesIn", "Paris")
	return g
}

// cycleGraph decodes fine but fails the deep integrity pass: its
// taxonomy contains a subclass cycle.
func cycleGraph() *kb.Graph {
	g := healthyGraph()
	g.AddSubclass("city", "country")
	g.AddSubclass("country", "city")
	return g
}

func TestVerifyHealthySnapshot(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "ok.snap", healthyGraph())
	for _, args := range [][]string{{path}, {"-deep", path}, {path, "-deep"}} {
		var out, errw bytes.Buffer
		if code := runVerify(args, &out, &errw); code != 0 {
			t.Fatalf("verify %v = %d: %s%s", args, code, out.String(), errw.String())
		}
		if !strings.HasPrefix(out.String(), "ok:") {
			t.Fatalf("verify %v output = %q", args, out.String())
		}
	}
}

// TestVerifyCorruptSnapshotExit3: a flipped payload byte breaks the
// section checksum; both plain and deep verify classify the file as
// corrupt with exit 3, never reaching the integrity pass.
func TestVerifyCorruptSnapshotExit3(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "corrupt.snap", healthyGraph())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{{path}, {"-deep", path}} {
		var out, errw bytes.Buffer
		if code := runVerify(args, &out, &errw); code != 3 {
			t.Fatalf("verify %v = %d, want 3: %s%s", args, code, out.String(), errw.String())
		}
		if !strings.Contains(errw.String(), "corrupt snapshot") {
			t.Fatalf("stderr = %q", errw.String())
		}
	}
}

// TestVerifyDeepSuspectSnapshotExit4: a well-formed snapshot of a
// structurally broken graph passes plain verify (exit 0) but fails
// -deep with exit 4 — the two failure classes stay distinguishable.
func TestVerifyDeepSuspectSnapshotExit4(t *testing.T) {
	dir := t.TempDir()
	path := writeSnapshot(t, dir, "suspect.snap", cycleGraph())

	var out, errw bytes.Buffer
	if code := runVerify([]string{path}, &out, &errw); code != 0 {
		t.Fatalf("plain verify = %d, want 0: %s%s", code, out.String(), errw.String())
	}

	out.Reset()
	errw.Reset()
	if code := runVerify([]string{"-deep", path}, &out, &errw); code != 4 {
		t.Fatalf("deep verify = %d, want 4: %s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "taxonomy-cycle") {
		t.Fatalf("findings not printed: %q", out.String())
	}
	if !strings.Contains(errw.String(), "structurally suspect") {
		t.Fatalf("stderr = %q", errw.String())
	}
}

func TestVerifyUsageExit2(t *testing.T) {
	var out, errw bytes.Buffer
	if code := runVerify(nil, &out, &errw); code != 2 {
		t.Fatalf("no-arg verify = %d, want 2", code)
	}
	if code := runVerify([]string{"-deep", "a", "b"}, &out, &errw); code != 2 {
		t.Fatalf("extra-arg verify = %d, want 2", code)
	}
}
