// Command kbtool inspects a knowledge base file:
//
//	kbtool -kb kb.nt stats                 # size, taxonomy, largest classes
//	kbtool -kb kb.nt entity "Avram Hershko"  # types + outgoing/incoming edges
//	kbtool -kb kb.nt type city -limit 10   # instances of a class
//
// It is the debugging companion for the triple files that datagen
// emits and detective/detectived consume.
package main

import (
	"flag"
	"fmt"
	"os"

	"detective"
	"detective/internal/kb"
)

func main() {
	kbPath := flag.String("kb", "", "knowledge base file (triple format)")
	limit := flag.Int("limit", 20, "maximum items to list")
	flag.Parse()

	if *kbPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kbtool -kb KB stats | entity NAME | type CLASS")
		os.Exit(2)
	}
	f, err := os.Open(*kbPath)
	fail(err)
	g, err := detective.ParseKB(f)
	f.Close()
	fail(err)

	switch flag.Arg(0) {
	case "stats":
		fmt.Println(g.ComputeStats(10))
	case "entity":
		if flag.NArg() < 2 {
			fail(fmt.Errorf("entity needs a name"))
		}
		entity(g, flag.Arg(1), *limit)
	case "type":
		if flag.NArg() < 2 {
			fail(fmt.Errorf("type needs a class name"))
		}
		listType(g, flag.Arg(1), *limit)
	default:
		fail(fmt.Errorf("unknown command %q", flag.Arg(0)))
	}
}

func entity(g *detective.KB, name string, limit int) {
	id := g.Lookup(name)
	if id == kb.Invalid {
		fail(fmt.Errorf("entity %q not in the KB", name))
	}
	fmt.Printf("%s (%v)\n", name, g.KindOf(id))
	if types := g.TypesOf(id); len(types) > 0 {
		fmt.Print("  types:")
		for _, c := range types {
			fmt.Printf(" <%s>", g.Name(c))
		}
		fmt.Println()
	}
	out := g.Out(id)
	for i, e := range out {
		if i == limit {
			fmt.Printf("  ... %d more outgoing\n", len(out)-limit)
			break
		}
		fmt.Printf("  -%s-> %s\n", g.Name(e.Pred), g.Name(e.To))
	}
	in := g.In(id)
	for i, e := range in {
		if i == limit {
			fmt.Printf("  ... %d more incoming\n", len(in)-limit)
			break
		}
		fmt.Printf("  <-%s- %s\n", g.Name(e.Pred), g.Name(e.To))
	}
}

func listType(g *detective.KB, cls string, limit int) {
	id := g.Lookup(cls)
	if id == kb.Invalid {
		fail(fmt.Errorf("class %q not in the KB", cls))
	}
	insts := g.InstancesOf(id)
	fmt.Printf("<%s>: %d instances\n", cls, len(insts))
	for i, inst := range insts {
		if i == limit {
			fmt.Printf("... %d more\n", len(insts)-limit)
			break
		}
		fmt.Printf("  %s\n", g.Name(inst))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbtool:", err)
		os.Exit(1)
	}
}
