// Command kbtool inspects and converts knowledge base files:
//
//	kbtool -kb kb.nt stats                 # size, taxonomy, largest classes
//	kbtool -kb kb.nt entity "Avram Hershko"  # types + outgoing/incoming edges
//	kbtool -kb kb.nt type city -limit 10   # instances of a class
//	kbtool pack kb.nt kb.snap              # text -> binary snapshot
//	kbtool unpack kb.snap kb.nt            # snapshot -> canonical text
//	kbtool verify kb.snap                  # header + checksums + stats
//	kbtool verify -deep kb.snap            # + structural integrity pass
//
// verify separates failure classes by exit code: 3 means the file is
// corrupt (magic, framing, checksum), 4 means it decodes but the graph
// is structurally suspect (-deep only: dangling IDs, taxonomy cycles).
//
// pack and unpack are deterministic: the same graph always produces
// the same bytes (pack sorts every section; unpack emits the
// canonical text encoding), so snapshot artifacts diff and cache
// cleanly. "-" means stdin/stdout.
//
// It is the debugging companion for the triple files that datagen
// emits and detective/detectived consume.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"detective"
	"detective/internal/kb"
	"detective/internal/kb/verify"
)

func main() {
	kbPath := flag.String("kb", "", "knowledge base file (triple format)")
	limit := flag.Int("limit", 20, "maximum items to list")
	flag.Parse()

	// Conversion subcommands name their files positionally and do not
	// use -kb.
	switch flag.Arg(0) {
	case "pack":
		pack(flag.Arg(1), flag.Arg(2))
		return
	case "unpack":
		unpack(flag.Arg(1), flag.Arg(2))
		return
	case "verify":
		os.Exit(runVerify(flag.Args()[1:], os.Stdout, os.Stderr))
	}

	if *kbPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kbtool -kb KB stats | entity NAME | type CLASS\n"+
			"       kbtool pack KB.nt KB.snap | unpack KB.snap KB.nt | verify KB.snap")
		os.Exit(2)
	}
	f, err := os.Open(*kbPath)
	fail(err)
	g, err := detective.ParseKB(f)
	f.Close()
	fail(err)

	switch flag.Arg(0) {
	case "stats":
		fmt.Println(g.ComputeStats(10))
	case "entity":
		if flag.NArg() < 2 {
			fail(fmt.Errorf("entity needs a name"))
		}
		entity(g, flag.Arg(1), *limit)
	case "type":
		if flag.NArg() < 2 {
			fail(fmt.Errorf("type needs a class name"))
		}
		listType(g, flag.Arg(1), *limit)
	default:
		fail(fmt.Errorf("unknown command %q", flag.Arg(0)))
	}
}

// openIn opens path for reading; "-" is stdin.
func openIn(path string) io.ReadCloser {
	if path == "-" {
		return io.NopCloser(os.Stdin)
	}
	f, err := os.Open(path)
	fail(err)
	return f
}

// createOut creates path for writing; "-" is stdout.
func createOut(path string) io.WriteCloser {
	if path == "-" {
		return nopWriteCloser{os.Stdout}
	}
	f, err := os.Create(path)
	fail(err)
	return f
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// pack converts a text-format KB to the binary snapshot format. The
// output is deterministic: packing the same input twice produces
// byte-identical snapshots.
func pack(in, out string) {
	if in == "" || out == "" {
		fail(fmt.Errorf("usage: kbtool pack KB.nt KB.snap"))
	}
	r := openIn(in)
	g, err := detective.ParseKB(bufio.NewReader(r))
	r.Close()
	fail(err)
	w := createOut(out)
	bw := bufio.NewWriter(w)
	fail(detective.WriteKBSnapshot(bw, g))
	fail(bw.Flush())
	fail(w.Close())
}

// unpack converts a binary snapshot back to the canonical text
// encoding (sorted sections — deterministic, Parse-compatible).
func unpack(in, out string) {
	if in == "" || out == "" {
		fail(fmt.Errorf("usage: kbtool unpack KB.snap KB.nt"))
	}
	r := openIn(in)
	g, err := detective.LoadKBSnapshot(r)
	r.Close()
	fail(err)
	w := createOut(out)
	bw := bufio.NewWriter(w)
	fail(g.Encode(bw))
	fail(bw.Flush())
	fail(w.Close())
}

// runVerify implements `kbtool verify [-deep] KB.snap`. The plain form
// loads the snapshot — exercising the header, section layout and every
// checksum — and prints a one-line summary; -deep then runs the full
// structural/semantic integrity pass on the decoded graph. Exit codes
// separate the failure classes so scripts can react differently:
//
//	0  the file would serve (and, with -deep, passed the self-check)
//	3  corrupt file: bad magic, framing, or checksum — re-pack it
//	4  decodes fine but is structurally suspect (dangling IDs,
//	   asymmetric indexes, taxonomy cycles) — inspect the source data
func runVerify(args []string, out, errw io.Writer) int {
	deep := false
	in := ""
	for _, a := range args {
		switch {
		case a == "-deep" || a == "--deep":
			deep = true
		case in == "":
			in = a
		default:
			fmt.Fprintln(errw, "usage: kbtool verify [-deep] KB.snap")
			return 2
		}
	}
	if in == "" {
		fmt.Fprintln(errw, "usage: kbtool verify [-deep] KB.snap")
		return 2
	}
	r := openIn(in)
	g, err := detective.LoadKBSnapshot(r)
	r.Close()
	if err != nil {
		fmt.Fprintln(errw, "kbtool: corrupt snapshot:", err)
		return 3
	}
	fmt.Fprintf(out, "ok: %d nodes, %d triples, generation %d\n",
		g.NumNodes(), g.NumTriples(), g.Generation())
	if !deep {
		return 0
	}
	rep := verify.Check(g, verify.Options{})
	for _, f := range rep.Findings {
		fmt.Fprintln(out, " ", f)
	}
	if rep.Truncated {
		fmt.Fprintln(out, "  ... more findings truncated")
	}
	fmt.Fprintln(out, rep.Summary())
	if !rep.OK() {
		fmt.Fprintln(errw, "kbtool: snapshot is structurally suspect")
		return 4
	}
	return 0
}

func entity(g *detective.KB, name string, limit int) {
	id := g.Lookup(name)
	if id == kb.Invalid {
		fail(fmt.Errorf("entity %q not in the KB", name))
	}
	fmt.Printf("%s (%v)\n", name, g.KindOf(id))
	if types := g.TypesOf(id); len(types) > 0 {
		fmt.Print("  types:")
		for _, c := range types {
			fmt.Printf(" <%s>", g.Name(c))
		}
		fmt.Println()
	}
	out := g.Out(id)
	for i, e := range out {
		if i == limit {
			fmt.Printf("  ... %d more outgoing\n", len(out)-limit)
			break
		}
		fmt.Printf("  -%s-> %s\n", g.Name(e.Pred), g.Name(e.To))
	}
	in := g.In(id)
	for i, e := range in {
		if i == limit {
			fmt.Printf("  ... %d more incoming\n", len(in)-limit)
			break
		}
		fmt.Printf("  <-%s- %s\n", g.Name(e.Pred), g.Name(e.To))
	}
}

func listType(g *detective.KB, cls string, limit int) {
	id := g.Lookup(cls)
	if id == kb.Invalid {
		fail(fmt.Errorf("class %q not in the KB", cls))
	}
	insts := g.InstancesOf(id)
	fmt.Printf("<%s>: %d instances\n", cls, len(insts))
	for i, inst := range insts {
		if i == limit {
			fmt.Printf("... %d more\n", len(insts)-limit)
			break
		}
		fmt.Printf("  %s\n", g.Name(inst))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbtool:", err)
		os.Exit(1)
	}
}
