// Command kbtool inspects and converts knowledge base files:
//
//	kbtool -kb kb.nt stats                 # size, taxonomy, largest classes
//	kbtool -kb kb.nt entity "Avram Hershko"  # types + outgoing/incoming edges
//	kbtool -kb kb.nt type city -limit 10   # instances of a class
//	kbtool pack kb.nt kb.snap              # text -> binary snapshot (DKBS v1)
//	kbtool pack -v2 kb.nt kb.snap          # text -> mmap-ready DKBS v2
//	kbtool unpack kb.snap kb.nt            # snapshot -> canonical text
//	kbtool info kb.snap                    # DKBS section table
//	kbtool verify kb.snap                  # header + checksums + stats
//	kbtool verify -deep kb.snap            # + structural integrity pass
//	kbtool diff old.snap new.snap > d.dkbsd   # incremental delta (DKBD)
//	kbtool apply -v2 old.snap d.dkbsd new.snap  # re-create new from delta
//
// diff emits the canonical DKBD delta between two KB contents — the
// triples, type assertions and subclass edges to remove and add, keyed
// by node name. Inputs may be snapshots (either version) or text; equal
// contents always diff to identical bytes. apply replays a delta onto a
// base KB, verifies the result's content fingerprint against the
// delta's promise, and writes the re-canonicalized result — for a
// canonical-text source, `diff | apply` is byte-identical to packing
// the new KB directly (CI's delta-check gate holds this).
//
// pack -v2 writes the page-aligned, pointer-free DKBS v2 layout that
// detectived maps read-only into memory and serves in place (near-zero
// load time); plain pack keeps the compact varint v1 layout. info
// prints each section's offset, length, CRC and mmap eligibility.
//
// verify separates failure classes by exit code: 3 means the file is
// corrupt (magic, framing, checksum), 4 means it decodes but the graph
// is structurally suspect (-deep only: dangling IDs, taxonomy cycles).
// It always checks every checksum via the portable decode path; for a
// v2 file on an mmap-capable platform it additionally exercises the
// mapped load the server would use.
//
// pack and unpack are deterministic: the same graph always produces
// the same bytes (pack sorts every section; unpack emits the
// canonical text encoding), so snapshot artifacts diff and cache
// cleanly. "-" means stdin/stdout.
//
// It is the debugging companion for the triple files that datagen
// emits and detective/detectived consume.
package main

import (
	"bufio"
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"detective"
	"detective/internal/kb"
	"detective/internal/kb/verify"
)

func main() {
	kbPath := flag.String("kb", "", "knowledge base file (triple format)")
	limit := flag.Int("limit", 20, "maximum items to list")
	flag.Parse()

	// Conversion subcommands name their files positionally and do not
	// use -kb.
	switch flag.Arg(0) {
	case "pack":
		pack(flag.Args()[1:])
		return
	case "unpack":
		unpack(flag.Arg(1), flag.Arg(2))
		return
	case "info":
		os.Exit(runInfo(flag.Args()[1:], os.Stdout, os.Stderr))
	case "verify":
		os.Exit(runVerify(flag.Args()[1:], os.Stdout, os.Stderr))
	case "diff":
		runDiff(flag.Args()[1:])
		return
	case "apply":
		os.Exit(runApply(flag.Args()[1:], os.Stderr))
	}

	if *kbPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: kbtool -kb KB stats | entity NAME | type CLASS\n"+
			"       kbtool pack [-v2] KB.nt KB.snap | unpack KB.snap KB.nt | info KB.snap | verify KB.snap")
		os.Exit(2)
	}
	f, err := os.Open(*kbPath)
	fail(err)
	g, err := detective.ParseKB(f)
	f.Close()
	fail(err)

	switch flag.Arg(0) {
	case "stats":
		fmt.Println(g.ComputeStats(10))
	case "entity":
		if flag.NArg() < 2 {
			fail(fmt.Errorf("entity needs a name"))
		}
		entity(g, flag.Arg(1), *limit)
	case "type":
		if flag.NArg() < 2 {
			fail(fmt.Errorf("type needs a class name"))
		}
		listType(g, flag.Arg(1), *limit)
	default:
		fail(fmt.Errorf("unknown command %q", flag.Arg(0)))
	}
}

// openIn opens path for reading; "-" is stdin.
func openIn(path string) io.ReadCloser {
	if path == "-" {
		return io.NopCloser(os.Stdin)
	}
	f, err := os.Open(path)
	fail(err)
	return f
}

// createOut creates path for writing; "-" is stdout.
func createOut(path string) io.WriteCloser {
	if path == "-" {
		return nopWriteCloser{os.Stdout}
	}
	f, err := os.Create(path)
	fail(err)
	return f
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// pack converts a text-format KB to the binary snapshot format: v1
// (compact varints) by default, -v2 for the page-aligned mmap-ready
// layout. Both are deterministic: packing the same input twice
// produces byte-identical snapshots.
func pack(args []string) {
	v2 := false
	var paths []string
	for _, a := range args {
		switch {
		case a == "-v2" || a == "--v2":
			v2 = true
		default:
			paths = append(paths, a)
		}
	}
	if len(paths) != 2 {
		fail(fmt.Errorf("usage: kbtool pack [-v2] KB.nt KB.snap"))
	}
	r := openIn(paths[0])
	g, err := detective.ParseKB(bufio.NewReader(r))
	r.Close()
	fail(err)
	w := createOut(paths[1])
	bw := bufio.NewWriter(w)
	if v2 {
		fail(g.WriteSnapshotV2(bw))
	} else {
		fail(detective.WriteKBSnapshot(bw, g))
	}
	fail(bw.Flush())
	fail(w.Close())
}

// loadAny loads a KB from path in whichever format it carries: DKBS
// snapshots (either version) are recognized by magic, anything else is
// parsed as the text triple format.
func loadAny(path string) *detective.KB {
	r := openIn(path)
	defer r.Close()
	br := bufio.NewReader(r)
	if magic, err := br.Peek(4); err == nil && string(magic) == "DKBS" {
		g, err := detective.LoadKBSnapshot(br)
		fail(err)
		return g
	}
	g, err := detective.ParseKB(br)
	fail(err)
	return g
}

// runDiff implements `kbtool diff OLD NEW [DELTA.dkbsd]`: the
// canonical DKBD delta from OLD's content to NEW's, written to the
// third argument or stdout. A one-line summary goes to stderr.
func runDiff(args []string) {
	var paths []string
	for _, a := range args {
		if a != "" {
			paths = append(paths, a)
		}
	}
	if len(paths) != 2 && len(paths) != 3 {
		fail(fmt.Errorf("usage: kbtool diff OLD NEW [DELTA.dkbsd]"))
	}
	oldG := loadAny(paths[0])
	newG := loadAny(paths[1])
	d := detective.DiffKB(oldG, newG)
	out := "-"
	if len(paths) == 3 {
		out = paths[2]
	}
	w := createOut(out)
	bw := bufio.NewWriter(w)
	fail(d.Write(bw))
	fail(bw.Flush())
	fail(w.Close())
	fmt.Fprintln(os.Stderr, "kbtool:", d)
}

// runApply implements `kbtool apply [-v2] BASE DELTA.dkbsd OUT.snap`:
// replay DELTA onto BASE, fully re-verify the result's content
// fingerprint against the delta's promise, and write the result
// re-canonicalized — same node order as a fresh pack of the new
// content's canonical text, so for canonical sources the output is
// byte-identical to packing the new KB directly. Exit codes follow
// verify's convention: 3 for a corrupt delta file, 5 for a delta whose
// base content does not match BASE.
func runApply(args []string, errw io.Writer) int {
	v2 := false
	var paths []string
	for _, a := range args {
		switch {
		case a == "-v2" || a == "--v2":
			v2 = true
		default:
			paths = append(paths, a)
		}
	}
	if len(paths) != 3 {
		fmt.Fprintln(errw, "usage: kbtool apply [-v2] BASE DELTA.dkbsd OUT.snap")
		return 2
	}
	base := loadAny(paths[0])
	r := openIn(paths[1])
	d, err := detective.ReadKBDelta(bufio.NewReader(r))
	r.Close()
	if err != nil {
		fmt.Fprintln(errw, "kbtool: corrupt delta:", err)
		return 3
	}
	applied, err := base.ApplyDelta(d)
	if err != nil {
		if errors.Is(err, kb.ErrDeltaBaseMismatch) {
			fmt.Fprintln(errw, "kbtool: delta does not apply:", err)
			return 5
		}
		fmt.Fprintln(errw, "kbtool:", err)
		return 1
	}
	// Re-canonicalize through the text encoding: a fresh parse assigns
	// the canonical node order (the applied graph keeps the base's,
	// plus orphans) and recomputes the fingerprint from scratch — a
	// full end-to-end verification, not just the incremental check
	// ApplyDelta already did.
	var buf bytes.Buffer
	fail(applied.Encode(&buf))
	canon, err := detective.ParseKB(&buf)
	fail(err)
	if fp := canon.Fingerprint(); fp != d.NewFP {
		fmt.Fprintf(errw, "kbtool: applied content fingerprint %016x does not match the delta's promised %016x\n", fp, d.NewFP)
		return 1
	}
	w := createOut(paths[2])
	bw := bufio.NewWriter(w)
	if v2 {
		fail(canon.WriteSnapshotV2(bw))
	} else {
		fail(detective.WriteKBSnapshot(bw, canon))
	}
	fail(bw.Flush())
	fail(w.Close())
	return 0
}

// runInfo implements `kbtool info KB.snap`: the DKBS section table —
// per-section offset, length, CRC-32C, and whether the section is
// stored raw (mmap-eligible) and page-aligned. It reads only headers
// and directories, never payloads, so it is instant on any size file.
func runInfo(args []string, out, errw io.Writer) int {
	if len(args) != 1 || args[0] == "" || args[0] == "-" {
		fmt.Fprintln(errw, "usage: kbtool info KB.snap")
		return 2
	}
	info, err := kb.ReadSnapshotInfo(args[0])
	if err != nil {
		fmt.Fprintln(errw, "kbtool: unreadable snapshot:", err)
		return 3
	}
	mmap := "no (decode on load)"
	if info.Mmap {
		mmap = "yes (mapped in place on supported platforms)"
	}
	fmt.Fprintf(out, "DKBS v%d, %d bytes, %d sections, mmap-ready: %s\n",
		info.Version, info.FileSize, len(info.Sections), mmap)
	tw := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tSECTION\tOFFSET\tLENGTH\tCRC32C\tSTORAGE")
	for _, s := range info.Sections {
		storage := "varint"
		if s.Raw {
			storage = "raw"
			if s.Aligned {
				storage = "raw, page-aligned"
			}
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%08x\t%s\n",
			s.ID, s.Name, s.Offset, s.Length, s.CRC, storage)
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(errw, "kbtool:", err)
		return 1
	}
	return 0
}

// unpack converts a binary snapshot back to the canonical text
// encoding (sorted sections — deterministic, Parse-compatible).
func unpack(in, out string) {
	if in == "" || out == "" {
		fail(fmt.Errorf("usage: kbtool unpack KB.snap KB.nt"))
	}
	r := openIn(in)
	g, err := detective.LoadKBSnapshot(r)
	r.Close()
	fail(err)
	w := createOut(out)
	bw := bufio.NewWriter(w)
	fail(g.Encode(bw))
	fail(bw.Flush())
	fail(w.Close())
}

// runVerify implements `kbtool verify [-deep] KB.snap`. The plain form
// loads the snapshot — exercising the header, section layout and every
// checksum — and prints a one-line summary; -deep then runs the full
// structural/semantic integrity pass on the decoded graph. Exit codes
// separate the failure classes so scripts can react differently:
//
//	0  the file would serve (and, with -deep, passed the self-check)
//	3  corrupt file: bad magic, framing, or checksum — re-pack it
//	4  decodes fine but is structurally suspect (dangling IDs,
//	   asymmetric indexes, taxonomy cycles) — inspect the source data
func runVerify(args []string, out, errw io.Writer) int {
	deep := false
	in := ""
	for _, a := range args {
		switch {
		case a == "-deep" || a == "--deep":
			deep = true
		case in == "":
			in = a
		default:
			fmt.Fprintln(errw, "usage: kbtool verify [-deep] KB.snap")
			return 2
		}
	}
	if in == "" {
		fmt.Fprintln(errw, "usage: kbtool verify [-deep] KB.snap")
		return 2
	}
	r := openIn(in)
	g, err := detective.LoadKBSnapshot(r)
	r.Close()
	if err != nil {
		fmt.Fprintln(errw, "kbtool: corrupt snapshot:", err)
		return 3
	}
	fmt.Fprintf(out, "ok: %d nodes, %d triples, generation %d\n",
		g.NumNodes(), g.NumTriples(), g.Generation())
	// The decode above checked every checksum. For an on-disk v2 file
	// also exercise the serving path — LoadSnapshotFile maps the file
	// in place where supported — and cross-check the two loads, so
	// "verify ok" means ok for the reader detectived actually uses.
	if in != "-" {
		if info, ierr := kb.ReadSnapshotInfo(in); ierr == nil && info.Mmap {
			mg, merr := kb.LoadSnapshotFile(in)
			switch {
			case merr != nil:
				fmt.Fprintln(errw, "kbtool: mmap load failed:", merr)
				return 3
			case mg.NumNodes() != g.NumNodes() || mg.NumTriples() != g.NumTriples():
				fmt.Fprintf(errw, "kbtool: mmap load disagrees with decode: %d/%d nodes, %d/%d triples\n",
					mg.NumNodes(), g.NumNodes(), mg.NumTriples(), g.NumTriples())
				return 3
			case mg.Mapped():
				fmt.Fprintln(out, "mmap: ok (served in place)")
			default:
				fmt.Fprintln(out, "mmap: ok (decode fallback on this platform)")
			}
		}
	}
	if !deep {
		return 0
	}
	rep := verify.Check(g, verify.Options{})
	for _, f := range rep.Findings {
		fmt.Fprintln(out, " ", f)
	}
	if rep.Truncated {
		fmt.Fprintln(out, "  ... more findings truncated")
	}
	fmt.Fprintln(out, rep.Summary())
	if !rep.OK() {
		fmt.Fprintln(errw, "kbtool: snapshot is structurally suspect")
		return 4
	}
	return 0
}

func entity(g *detective.KB, name string, limit int) {
	id := g.Lookup(name)
	if id == kb.Invalid {
		fail(fmt.Errorf("entity %q not in the KB", name))
	}
	fmt.Printf("%s (%v)\n", name, g.KindOf(id))
	if types := g.TypesOf(id); len(types) > 0 {
		fmt.Print("  types:")
		for _, c := range types {
			fmt.Printf(" <%s>", g.Name(c))
		}
		fmt.Println()
	}
	out := g.Out(id)
	for i, e := range out {
		if i == limit {
			fmt.Printf("  ... %d more outgoing\n", len(out)-limit)
			break
		}
		fmt.Printf("  -%s-> %s\n", g.Name(e.Pred), g.Name(e.To))
	}
	in := g.In(id)
	for i, e := range in {
		if i == limit {
			fmt.Printf("  ... %d more incoming\n", len(in)-limit)
			break
		}
		fmt.Printf("  <-%s- %s\n", g.Name(e.Pred), g.Name(e.To))
	}
}

func listType(g *detective.KB, cls string, limit int) {
	id := g.Lookup(cls)
	if id == kb.Invalid {
		fail(fmt.Errorf("class %q not in the KB", cls))
	}
	insts := g.InstancesOf(id)
	fmt.Printf("<%s>: %d instances\n", cls, len(insts))
	for i, inst := range insts {
		if i == limit {
			fmt.Printf("... %d more\n", len(insts)-limit)
			break
		}
		fmt.Printf("  %s\n", g.Name(inst))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "kbtool:", err)
		os.Exit(1)
	}
}
