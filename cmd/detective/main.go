// Command detective cleans a CSV relation using detective rules and a
// knowledge base:
//
//	detective -kb kb.nt -rules rules.dr -in dirty.csv -out clean.csv
//
// The KB file uses the line-oriented triple format (see package kb);
// the rules file uses the textual rule format (see package rules).
// With -marked, positively proven cells carry a "+" suffix in the
// output, as in the paper's worked examples. -basic selects the
// chase-style Algorithm 1 instead of the fast engine, and
// -check-consistency verifies the Church-Rosser property on the input
// before cleaning.
//
// -stream cleans row by row without materializing the table — the
// mode for inputs larger than memory — deriving the schema from the
// CSV header; -workers N fans the stream out over the chunked
// parallel repair pipeline (ordered reassembly keeps the output
// byte-identical to serial), and -chunk tunes its rows per chunk.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"detective"
	"detective/internal/repair"
	"detective/internal/repair/ensemble"
	"detective/internal/repair/ensemble/adapters"
)

func main() {
	kbPath := flag.String("kb", "", "knowledge base file (triple format)")
	rulesPath := flag.String("rules", "", "detective rules file")
	inPath := flag.String("in", "", "input CSV (first row is the header)")
	outPath := flag.String("out", "", "output CSV (default: stdout)")
	name := flag.String("name", "table", "relation name")
	marked := flag.Bool("marked", false, "suffix positively proven cells with '+'")
	basic := flag.Bool("basic", false, "use the basic (Algorithm 1) repair engine")
	checkConsistency := flag.Bool("check-consistency", false, "verify the rule set is consistent on the input data first")
	explain := flag.Bool("explain", false, "print each rule application with its KB witness to stderr")
	usage := flag.Bool("usage", false, "print the per-rule usage report to stderr")
	versions := flag.Bool("versions", false, "emit every multi-version repair fixpoint (one output row per version)")
	stream := flag.Bool("stream", false, "clean row by row without materializing the table (bounded memory)")
	workers := flag.Int("workers", 0, "streaming repair workers with -stream (0 or 1 = serial; >1 = parallel pipeline)")
	chunk := flag.Int("chunk", 0, "rows per pipeline chunk with -stream -workers > 1 (0 = default)")
	memoBytes := flag.Int64("memo-bytes", 0, "byte budget of the repair memo serving repeated rows and hot values from cache (0 = default 64 MiB, negative = off)")
	noMemo := flag.Bool("no-memo", false, "disable the repair memo")
	ensembleOn := flag.Bool("ensemble", false, "with -stream: repair by the weighted vote of all engines (detective, KATARA, FD, constant CFD) and append a confidence column")
	ensembleRef := flag.String("ensemble-ref", "", "with -ensemble: clean reference CSV the FD and constant-CFD proposers are mined from")
	ensembleThreshold := flag.Float64("ensemble-threshold", 0, "with -ensemble: acceptance threshold on a cell's winning confidence (0 = default)")
	flag.Parse()

	if *kbPath == "" || *rulesPath == "" || *inPath == "" {
		fmt.Fprintln(os.Stderr, "usage: detective -kb KB -rules RULES -in CSV [-out CSV] [-marked] [-basic] [-stream [-workers N] [-chunk N]] [-check-consistency]")
		os.Exit(2)
	}

	g := parseKB(*kbPath)
	rs := parseRules(*rulesPath)

	if *ensembleOn && !*stream {
		fmt.Fprintln(os.Stderr, "detective: -ensemble requires -stream")
		os.Exit(2)
	}

	if *stream {
		for _, f := range []struct {
			set  bool
			name string
		}{{*basic, "-basic"}, {*explain, "-explain"}, {*usage, "-usage"}, {*versions, "-versions"}, {*checkConsistency, "-check-consistency"}} {
			if f.set {
				fmt.Fprintf(os.Stderr, "detective: %s needs the materialized table and cannot combine with -stream\n", f.name)
				os.Exit(2)
			}
		}
		streamClean(g, rs, *name, *inPath, *outPath, *marked, *workers, *chunk,
			detective.EngineOptions{MemoBytes: *memoBytes, MemoDisabled: *noMemo},
			*ensembleOn, *ensembleRef, *ensembleThreshold)
		return
	}

	tb := readCSV(*name, *inPath)

	c, err := detective.NewCleanerWithOptions(rs, g, tb.Schema,
		detective.EngineOptions{MemoBytes: *memoBytes, MemoDisabled: *noMemo})
	fail(err)

	if *checkConsistency {
		for _, w := range detective.AnalyzeRules(rs) {
			fmt.Fprintf(os.Stderr, "detective: static warning: %v\n", w)
		}
		if vs := c.CheckConsistency(tb, 0); len(vs) > 0 {
			fmt.Fprintf(os.Stderr, "detective: rule set is inconsistent on this data (%d order-dependent tuples):\n", len(vs))
			for _, v := range vs {
				fmt.Fprintf(os.Stderr, "  %v\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "detective: rule set is consistent on this data")
	}

	var cleaned *detective.Table
	switch {
	case *versions:
		// Multi-version repairs (§IV-C): a tuple with several equally
		// valid fixpoints becomes several output rows.
		cleaned = &detective.Table{Schema: tb.Schema}
		multi := 0
		for _, t := range tb.Tuples {
			vs := c.CleanVersions(t)
			if len(vs) > 1 {
				multi++
			}
			cleaned.Tuples = append(cleaned.Tuples, vs...)
		}
		if multi > 0 {
			fmt.Fprintf(os.Stderr, "detective: %d tuples have multiple repair versions\n", multi)
		}
	case *usage:
		var report detective.UsageReport
		cleaned, report = c.CleanTableWithUsage(tb)
		fmt.Fprint(os.Stderr, report)
	case *explain:
		cleaned = &detective.Table{Schema: tb.Schema}
		for i, t := range tb.Tuples {
			repaired, steps := c.Explain(t)
			cleaned.Tuples = append(cleaned.Tuples, repaired)
			for _, s := range steps {
				fmt.Fprintf(os.Stderr, "tuple %d: %s\n", i+1, s)
			}
		}
	case *basic:
		cleaned = &detective.Table{Schema: tb.Schema}
		for _, t := range tb.Tuples {
			cleaned.Tuples = append(cleaned.Tuples, c.CleanBasic(t))
		}
	default:
		cleaned = c.CleanTable(tb)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		fail(err)
		defer f.Close()
		out = f
	}
	if *marked {
		fail(cleaned.WriteMarkedCSV(out))
	} else {
		fail(cleaned.WriteCSV(out))
	}

	if cleaned.Len() == tb.Len() {
		changed := len(tb.Diff(cleaned))
		fmt.Fprintf(os.Stderr, "detective: %d tuples, %d cells repaired, %d cells marked correct\n",
			cleaned.Len(), changed, cleaned.NumMarked())
	} else {
		fmt.Fprintf(os.Stderr, "detective: %d input tuples -> %d output rows (multi-version), %d cells marked correct\n",
			tb.Len(), cleaned.Len(), cleaned.NumMarked())
	}
}

// streamClean cleans inPath row by row via Cleaner.CleanCSVStream:
// only the header is pre-read (to build the schema), so memory stays
// bounded by the pipeline's O(workers×chunk) window regardless of the
// input size.
func streamClean(g *detective.KB, rs []*detective.Rule, name, inPath, outPath string, marked bool, workers, chunk int, opts detective.EngineOptions, ensOn bool, ensRef string, ensThreshold float64) {
	f, err := os.Open(inPath)
	fail(err)
	defer f.Close()

	// Peel off the header line to learn the attributes, then stitch it
	// back so the streaming cleaner sees the full document. (A header
	// with quoted embedded newlines would defeat the line split; real
	// CSV headers are single-line.)
	br := bufio.NewReader(f)
	header, err := readHeader(br)
	if err != nil {
		fail(fmt.Errorf("reading header of %s: %w", inPath, err))
	}
	hr := csv.NewReader(strings.NewReader(header))
	attrs, err := hr.Read()
	fail(err)
	schema := detective.NewSchema(name, attrs...)

	opts.Workers = workers
	opts.ChunkSize = chunk
	var c *detective.Cleaner
	if ensOn {
		// The auxiliary proposers read the KB through the same store
		// the cleaner serves from; the KATARA proposer's table pattern
		// is derived from the rule set itself.
		store := detective.NewKBStore(g)
		var ref *detective.Table
		if ensRef != "" {
			ref, err = adapters.LoadReference(schema, ensRef)
			fail(err)
		}
		opts.Ensemble = repair.EnsembleOptions{
			Enabled:   true,
			Threshold: ensThreshold,
			Proposers: adapters.BuildProposers(schema, ensemble.PatternFromRules(rs), store, ref),
		}
		c, err = detective.NewCleanerStore(rs, store, schema, opts)
	} else {
		c, err = detective.NewCleanerWithOptions(rs, g, schema, opts)
	}
	fail(err)

	out := os.Stdout
	if outPath != "" {
		of, err := os.Create(outPath)
		fail(err)
		defer of.Close()
		out = of
	}

	in := io.MultiReader(strings.NewReader(header+"\n"), br)
	var res detective.StreamStats
	if ensOn {
		res, err = c.CleanCSVStreamEnsemble(context.Background(), in, out, marked)
	} else {
		res, err = c.CleanCSVStream(context.Background(), in, out, marked)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "detective: partial result, %d rows written: %v\n", res.Rows, err)
		os.Exit(1)
	}
	if ensOn {
		mean := 1.0
		if res.Rows > 0 {
			mean = res.ConfidenceSum / float64(res.Rows)
		}
		fmt.Fprintf(os.Stderr, "detective: %d rows streamed (%d quarantined, %d budget-degraded, %d deduped; confidence mean %.3f min %.3f, %d below threshold)\n",
			res.Rows, res.Quarantined, res.BudgetExhausted, res.Deduped, mean, res.MinConfidence, res.BelowThreshold)
		return
	}
	fmt.Fprintf(os.Stderr, "detective: %d rows streamed (%d quarantined, %d budget-degraded, %d deduped)\n",
		res.Rows, res.Quarantined, res.BudgetExhausted, res.Deduped)
}

// utf8BOM is the byte order mark spreadsheet exports prepend to CSV.
var utf8BOM = []byte{0xEF, 0xBB, 0xBF}

// readHeader peels the first line off br without its terminator,
// tolerating a UTF-8 BOM (which would otherwise end up inside the
// first attribute name) and CR-only line endings (where scanning for
// '\n' would swallow the whole file as one "header").
func readHeader(br *bufio.Reader) (string, error) {
	if b, err := br.Peek(len(utf8BOM)); err == nil && bytes.Equal(b, utf8BOM) {
		_, _ = br.Discard(len(utf8BOM))
	}
	var sb strings.Builder
	for {
		c, err := br.ReadByte()
		if err == io.EOF {
			if sb.Len() == 0 {
				return "", io.ErrUnexpectedEOF
			}
			return sb.String(), nil
		}
		if err != nil {
			return "", err
		}
		switch c {
		case '\n':
			return sb.String(), nil
		case '\r':
			// CRLF or bare CR both terminate the header; fold a
			// following LF into the terminator.
			if b, err := br.Peek(1); err == nil && b[0] == '\n' {
				_, _ = br.Discard(1)
			}
			return sb.String(), nil
		default:
			sb.WriteByte(c)
		}
	}
}

func parseKB(path string) *detective.KB {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	g, err := detective.ParseKB(f)
	fail(err)
	return g
}

func parseRules(path string) []*detective.Rule {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	rs, err := detective.ParseRules(f)
	fail(err)
	return rs
}

func readCSV(name, path string) *detective.Table {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	tb, err := detective.ReadCSV(name, f)
	fail(err)
	return tb
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "detective:", err)
		os.Exit(1)
	}
}
