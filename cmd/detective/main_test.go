package main

import (
	"bufio"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestReadHeader(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		header  string
		rest    string
		wantErr error
	}{
		{name: "plain LF", in: "Name,City\nrow1\n", header: "Name,City", rest: "row1\n"},
		{name: "CRLF", in: "Name,City\r\nrow1\r\n", header: "Name,City", rest: "row1\r\n"},
		{name: "bare CR", in: "Name,City\rrow1\r", header: "Name,City", rest: "row1\r"},
		{name: "UTF-8 BOM", in: "\xEF\xBB\xBFName,City\nrow1\n", header: "Name,City", rest: "row1\n"},
		{name: "BOM and CRLF", in: "\xEF\xBB\xBFName,City\r\nrow1\n", header: "Name,City", rest: "row1\n"},
		{name: "no trailing newline", in: "Name,City", header: "Name,City", rest: ""},
		{name: "empty input", in: "", wantErr: io.ErrUnexpectedEOF},
		{name: "BOM only", in: "\xEF\xBB\xBF", wantErr: io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			br := bufio.NewReader(strings.NewReader(tc.in))
			got, err := readHeader(br)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("readHeader: %v", err)
			}
			if got != tc.header {
				t.Errorf("header = %q, want %q", got, tc.header)
			}
			rest, _ := io.ReadAll(br)
			if string(rest) != tc.rest {
				t.Errorf("rest = %q, want %q (header must consume exactly one line)", rest, tc.rest)
			}
		})
	}
}
