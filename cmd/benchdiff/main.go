// Command benchdiff is the CI benchmark-regression gate. It compares
// a freshly measured repair-benchmark record (cmd/experiments
// -bench-repair) against the committed baseline and exits non-zero
// when any benchmark regressed beyond the threshold:
//
//	go run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_repair.json
//
// Two metrics are gated per benchmark: ns_per_op (wall time) and
// allocs_per_op (allocation count). Allocation counts are
// deterministic, so they catch regressions at any threshold; wall
// time is noisy across runners, hence the default 25% slack. A
// benchmark present in the baseline but missing from the current
// record fails the gate — deleting a benchmark must be accompanied by
// a baseline refresh, not silently absorbed. Benchmarks only in the
// current record are reported but pass (the gate run that introduces
// them also commits the refreshed baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
}

type benchFile struct {
	Benchmarks []benchResult `json:"benchmarks"`
}

func load(path string) (map[string]benchResult, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var bf benchFile
	if err := json.NewDecoder(f).Decode(&bf); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]benchResult, len(bf.Benchmarks))
	var names []string
	for _, b := range bf.Benchmarks {
		if _, dup := m[b.Name]; dup {
			return nil, nil, fmt.Errorf("%s: duplicate benchmark %q", path, b.Name)
		}
		m[b.Name] = b
		names = append(names, b.Name)
	}
	return m, names, nil
}

// pct is the relative change from base to cur as a percentage;
// positive means cur is worse (slower / more allocations).
func pct(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - base) / base * 100
}

// run compares the two records and writes the report to w; it returns
// (failed, error) so the gate decision is testable apart from the
// process exit. Benchmarks only in the current record are reported as
// new and do NOT fail the gate — the change introducing a benchmark
// cannot have it in the committed baseline yet.
func run(baselinePath, currentPath string, threshold float64, w io.Writer) (bool, error) {
	base, _, err := load(baselinePath)
	if err != nil {
		return false, err
	}
	cur, curNames, err := load(currentPath)
	if err != nil {
		return false, err
	}

	var names []string
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-26s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δns%", "base allocs", "cur allocs", "Δallocs%")
	failed := false
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(w, "%-26s MISSING from %s — refresh the baseline when removing a benchmark\n", name, currentPath)
			failed = true
			continue
		}
		dns := pct(b.NsPerOp, c.NsPerOp)
		dallocs := pct(float64(b.AllocsPerOp), float64(c.AllocsPerOp))
		status := ""
		if dns > threshold {
			status = "  REGRESSION(ns/op)"
			failed = true
		}
		if dallocs > threshold {
			status += "  REGRESSION(allocs)"
			failed = true
		}
		fmt.Fprintf(w, "%-26s %14.0f %14.0f %+7.1f%% %10d %10d %+7.1f%%%s\n",
			name, b.NsPerOp, c.NsPerOp, dns, b.AllocsPerOp, c.AllocsPerOp, dallocs, status)
	}
	for _, name := range curNames {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(w, "%-26s new benchmark (not in baseline) — commit a refreshed %s\n", name, baselinePath)
		}
	}

	if failed {
		fmt.Fprintf(w, "\nbenchdiff: FAIL (threshold %.0f%%)\n", threshold)
	} else {
		fmt.Fprintf(w, "\nbenchdiff: OK (threshold %.0f%%)\n", threshold)
	}
	return failed, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline record")
	currentPath := flag.String("current", "BENCH_repair.json", "freshly measured record")
	threshold := flag.Float64("threshold", 25, "max allowed regression percentage for ns_per_op and allocs_per_op")
	flag.Parse()

	failed, err := run(*baselinePath, *currentPath, *threshold, os.Stdout)
	fail(err)
	if failed {
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
