package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRecord(t *testing.T, dir, name string, benches []benchResult) string {
	t.Helper()
	path := filepath.Join(dir, name)
	b, err := json.Marshal(benchFile{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunNewBenchmarkPasses(t *testing.T) {
	dir := t.TempDir()
	baseline := writeRecord(t, dir, "base.json", []benchResult{
		{Name: "FastRepair", NsPerOp: 1000, AllocsPerOp: 10},
	})
	current := writeRecord(t, dir, "cur.json", []benchResult{
		{Name: "FastRepair", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "KBLoadSnapshot", NsPerOp: 500, AllocsPerOp: 5},
	})
	var out strings.Builder
	failed, err := run(baseline, current, 25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("gate failed on a benchmark new in the current record:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "KBLoadSnapshot") || !strings.Contains(out.String(), "new benchmark") {
		t.Fatalf("new benchmark not reported:\n%s", out.String())
	}
}

func TestRunMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	baseline := writeRecord(t, dir, "base.json", []benchResult{
		{Name: "FastRepair", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "Deleted", NsPerOp: 10, AllocsPerOp: 1},
	})
	current := writeRecord(t, dir, "cur.json", []benchResult{
		{Name: "FastRepair", NsPerOp: 1000, AllocsPerOp: 10},
	})
	var out strings.Builder
	failed, err := run(baseline, current, 25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("gate passed with a baseline benchmark missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("missing benchmark not reported:\n%s", out.String())
	}
}

func TestRunRegressionFails(t *testing.T) {
	dir := t.TempDir()
	baseline := writeRecord(t, dir, "base.json", []benchResult{
		{Name: "FastRepair", NsPerOp: 1000, AllocsPerOp: 10},
	})
	current := writeRecord(t, dir, "cur.json", []benchResult{
		{Name: "FastRepair", NsPerOp: 2000, AllocsPerOp: 10},
	})
	var out strings.Builder
	failed, err := run(baseline, current, 25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("gate passed a 100%% ns/op regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION(ns/op)") {
		t.Fatalf("regression not flagged:\n%s", out.String())
	}

	// Within threshold: passes.
	current2 := writeRecord(t, dir, "cur2.json", []benchResult{
		{Name: "FastRepair", NsPerOp: 1100, AllocsPerOp: 10},
	})
	out.Reset()
	failed, err = run(baseline, current2, 25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("gate failed a 10%% change under a 25%% threshold:\n%s", out.String())
	}
}
