// Command rulegen discovers candidate detective rules from examples
// (§III-A of the paper):
//
//	rulegen -kb kb.nt -positives good.csv -negatives City=wrong_city.csv \
//	        -sim Institution=ED,2 -out rules.dr
//
// positives is a CSV of fully correct tuples; each -negatives entry
// names an attribute and a CSV of tuples wrong exactly in that
// attribute. The generated rules are candidates for human review —
// validate them with `detective -check-consistency` before trusting
// them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"detective"
)

// listFlag accumulates repeated key=value flags.
type listFlag map[string]string

func (l listFlag) String() string { return fmt.Sprint(map[string]string(l)) }

func (l listFlag) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want ATTR=VALUE, got %q", v)
	}
	l[k] = val
	return nil
}

func main() {
	kbPath := flag.String("kb", "", "knowledge base file (triple format)")
	posPath := flag.String("positives", "", "CSV of correct example tuples")
	outPath := flag.String("out", "", "output rules file (default: stdout)")
	name := flag.String("name", "table", "relation name")
	maxEvidence := flag.Int("max-evidence", 0, "cap on evidence nodes per rule (0 = unbounded)")
	minSupport := flag.Float64("min-support", 0.8, "minimum type/relationship support in the examples")

	negatives := listFlag{}
	sims := listFlag{}
	flag.Var(negatives, "negatives", "ATTR=CSV with tuples wrong exactly in ATTR (repeatable)")
	flag.Var(sims, "sim", "ATTR=SPEC matching operation override, e.g. Institution=ED,2 (repeatable)")
	flag.Parse()

	if *kbPath == "" || *posPath == "" {
		fmt.Fprintln(os.Stderr, "usage: rulegen -kb KB -positives CSV [-negatives ATTR=CSV]... [-sim ATTR=SPEC]... [-out FILE]")
		os.Exit(2)
	}

	g := mustKB(*kbPath)
	positives := mustCSV(*name, *posPath)

	negTables := make(map[string]*detective.Table, len(negatives))
	for attr, path := range negatives {
		negTables[attr] = mustCSV(*name, path)
	}
	cfg := detective.RuleGenConfig{
		MinTypeSupport: *minSupport,
		MinRelSupport:  *minSupport,
		MaxEvidence:    *maxEvidence,
		Sims:           make(map[string]detective.Sim, len(sims)),
	}
	for attr, spec := range sims {
		sim, err := detective.ParseSim(spec)
		fail(err)
		cfg.Sims[attr] = sim
	}

	rules, err := detective.GenerateRules(g, positives.Schema, positives, negTables, cfg)
	fail(err)
	if len(rules) == 0 {
		fmt.Fprintln(os.Stderr, "rulegen: no rules discovered (insufficient support or no negative semantics)")
		os.Exit(1)
	}
	for _, w := range detective.AnalyzeRules(rules) {
		fmt.Fprintf(os.Stderr, "rulegen: warning: %v\n", w)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		fail(err)
		defer f.Close()
		out = f
	}
	fail(detective.EncodeRules(out, rules))
	fmt.Fprintf(os.Stderr, "rulegen: wrote %d candidate rules — review before use\n", len(rules))
}

func mustKB(path string) *detective.KB {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	g, err := detective.ParseKB(f)
	fail(err)
	return g
}

func mustCSV(name, path string) *detective.Table {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()
	tb, err := detective.ReadCSV(name, f)
	fail(err)
	return tb
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rulegen:", err)
		os.Exit(1)
	}
}
