// Command detectived serves a loaded cleaning engine over HTTP:
//
//	detectived -kb kb.nt -rules rules.dr -schema "Name,DOB,Country,Prize,Institution,City" \
//	    -addr :8080 -ops-addr :9090
//
// Endpoints (see the server package): POST /clean, POST /explain,
// GET /rules, GET /stats, GET /healthz, GET /readyz.
//
// # Registry mode
//
//	detectived -registry tenants.json -addr :8080 -ops-addr :9090
//
// -registry replaces the single-tenant flags with a JSON fleet
// configuration (see the registry package): named tenants, each with
// its own KB snapshot, rules, schema and limits, served under
// /v1/{tenant}/clean (plus /explain, /rules, /stats). Only the
// residency cap's worth of tenants hold a loaded KB at a time; cold
// tenants are admitted on first request — near-instant when their
// snapshot is DKBS v2, which is mmap'd in place. The ops listener
// adds tenant-scoped POST /v1/{tenant}/reload and /rollback and a
// GET /registry fleet-status document; SIGHUP canary-reloads every
// resident tenant from its configured source. The serving-limit flags
// (-timeout, -max-concurrent, -memo-bytes, ...) become per-tenant
// defaults that tenant configs may override.
//
// A second, operator-only listener (-ops-addr, disabled when empty)
// serves GET /metrics (Prometheus text format: repair latency
// histograms, cache hit/miss counters, per-route HTTP metrics) and
// net/http/pprof under /debug/pprof/ — profiling and scraping stay
// off the public port.
//
// Logs are structured (log/slog, key=value on stderr); -log-level
// picks the floor (debug logs every request with its X-Request-ID).
//
// On SIGTERM/SIGINT the server drains gracefully: /readyz flips to
// 503 so load balancers stop routing new work, in-flight requests get
// -drain-timeout to finish, then both listeners close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"detective"
	"detective/internal/registry"
	"detective/internal/repair"
	"detective/internal/repair/ensemble"
	"detective/internal/repair/ensemble/adapters"
	"detective/internal/server"
	"detective/internal/telemetry"
)

func main() {
	registryPath := flag.String("registry", "", "multi-tenant registry config (JSON); replaces -kb/-rules/-schema")
	warmSpec := flag.String("warm", "", "registry mode: tenants to pre-admit at startup (comma-separated names, or \"all\" for the residency cap's worth)")
	kbPath := flag.String("kb", "", "knowledge base file (triple format)")
	kbSnapshot := flag.String("kb-snapshot", "", "knowledge base file (binary snapshot format, see kbtool pack); overrides -kb")
	rulesPath := flag.String("rules", "", "detective rules file")
	schemaSpec := flag.String("schema", "", "comma-separated attribute names of the relation")
	name := flag.String("name", "table", "relation name")
	addr := flag.String("addr", ":8080", "listen address")
	opsAddr := flag.String("ops-addr", "", "ops listen address serving GET /metrics and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	reqTimeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent cleaning requests (0 = 2×GOMAXPROCS)")
	maxBody := flag.Int64("max-body", 64<<20, "max request body bytes")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain deadline")
	streamWorkers := flag.Int("stream-workers", 0, "repair workers per /clean stream (0 or 1 = serial; >1 = chunked parallel pipeline)")
	streamChunk := flag.Int("stream-chunk", 0, "rows per pipeline chunk when -stream-workers > 1 (0 = default)")
	memoBytes := flag.Int64("memo-bytes", 0, "byte budget of the cross-request repair memo (0 = default 64 MiB, negative = off)")
	noMemo := flag.Bool("no-memo", false, "disable the cross-request repair memo")
	verifyMode := flag.String("verify-mode", "", "KB integrity self-check on reload: off, warn (default), strict (reject suspect graphs)")
	retain := flag.Int("retain", 0, "reloaded-out KB generations kept for POST /rollback (0 = default 2, negative = none)")
	canaryRows := flag.Int("canary-rows", 0, "recent rows shadow-replayed against a reload candidate (0 = whole recorded ring, negative = skip replay)")
	canaryMaxBadDelta := flag.Float64("canary-max-bad-delta", 0, "max increase in bad-row rate a candidate may show over live before rejection (0 = default 0.10)")
	canaryWatch := flag.Duration("canary-watch", 0, "post-promote watch window: auto-rollback if the new generation's bad-row rate regresses (0 = disabled)")
	breakerOn := flag.Bool("breaker", false, "enable the repair circuit breaker (degrade to detect-only under quarantine/budget storms)")
	breakerPerRule := flag.Bool("breaker-per-rule", false, "with -breaker, also track and degrade individual rules")
	ensembleOn := flag.Bool("ensemble", false, "enable ensemble repair: POST /clean?ensemble=1 repairs by the weighted vote of all engines and returns a confidence column (registry mode: per-tenant default)")
	ensembleRef := flag.String("ensemble-ref", "", "with -ensemble: clean reference CSV the FD and constant-CFD proposers are mined from")
	ensembleThreshold := flag.Float64("ensemble-threshold", 0, "with -ensemble: acceptance threshold on a cell's winning confidence (0 = default)")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "detectived: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(log)

	baseCfg := server.Config{
		RequestTimeout:    *reqTimeout,
		MaxConcurrent:     *maxConcurrent,
		MaxBodyBytes:      *maxBody,
		Logger:            log,
		StreamWorkers:     *streamWorkers,
		StreamChunkSize:   *streamChunk,
		MemoBytes:         *memoBytes,
		MemoDisabled:      *noMemo,
		VerifyMode:        *verifyMode,
		RetainGenerations: *retain,
		CanaryRows:        *canaryRows,
		CanaryMaxBadDelta: *canaryMaxBadDelta,
		CanaryWatch:       *canaryWatch,
		Breaker: repair.BreakerOptions{
			Enabled: *breakerOn,
			PerRule: *breakerPerRule,
		},
	}

	if *registryPath != "" {
		runRegistry(log, *registryPath, *warmSpec, *addr, *opsAddr, *drainTimeout, baseCfg,
			*ensembleOn, *ensembleRef, *ensembleThreshold)
		return
	}

	if (*kbPath == "" && *kbSnapshot == "") || *rulesPath == "" || *schemaSpec == "" {
		fmt.Fprintln(os.Stderr, "usage: detectived {-kb KB | -kb-snapshot KB.snap} -rules RULES -schema A,B,C [-addr :8080] [-ops-addr :9090]\n"+
			"       detectived -registry tenants.json [-addr :8080] [-ops-addr :9090]")
		os.Exit(2)
	}

	// loadKB re-reads the KB source on every call so POST /reload and
	// SIGHUP pick up whatever is on disk now. Snapshot wins when both
	// flags are set (it is the fast path).
	loadKB := func() (*detective.KB, error) {
		if *kbSnapshot != "" {
			// By path, not reader: DKBS v2 snapshots are mmap'd in
			// place where supported instead of decoded.
			return detective.LoadKBSnapshotFile(*kbSnapshot)
		}
		f, err := os.Open(*kbPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return detective.ParseKB(f)
	}

	loadStart := time.Now()
	g, err := loadKB()
	fail(log, err)
	initialLoad := time.Since(loadStart)

	rf, err := os.Open(*rulesPath)
	fail(log, err)
	rs, err := detective.ParseRules(rf)
	rf.Close()
	fail(log, err)

	attrs := strings.Split(*schemaSpec, ",")
	for i := range attrs {
		attrs[i] = strings.TrimSpace(attrs[i])
	}
	schema := detective.NewSchema(*name, attrs...)

	// The server and the ensemble's auxiliary proposers share one KB
	// store, so hot reloads reach the proposers automatically.
	store := detective.NewKBStore(g)
	if *ensembleOn {
		var ref *detective.Table
		if *ensembleRef != "" {
			ref, err = adapters.LoadReference(schema, *ensembleRef)
			fail(log, err)
		}
		baseCfg.Ensemble = repair.EnsembleOptions{
			Enabled:   true,
			Threshold: *ensembleThreshold,
			Proposers: adapters.BuildProposers(schema, ensemble.PatternFromRules(rs), store, ref),
		}
	}
	s, err := server.NewWithStore(rs, store, schema, baseCfg)
	fail(log, err)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		// No ReadTimeout/WriteTimeout: /clean legitimately streams
		// large bodies; per-request work is bounded by the handler's
		// own deadline instead.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsMux := telemetry.NewOpsMux(telemetry.Default())
		// Admin-only KB lifecycle stays on the operator port, next to
		// /metrics and pprof, never on the public listener. /reload is
		// a staged canary (self-check + shadow replay, 409 on reject);
		// /rollback republishes the previous retained generation.
		opsMux.Handle("POST /reload", s.ReloadHandler(loadKB))
		opsMux.Handle("POST /rollback", s.RollbackHandler())
		opsSrv = &http.Server{
			Addr:              *opsAddr,
			Handler:           opsMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		log.Info("ops listener up",
			slog.String("addr", *opsAddr),
			slog.String("endpoints", "/metrics /debug/pprof/ POST /reload POST /rollback"))
	}

	// SIGHUP is the file-based reload path for operators without ops
	// port access: re-read the KB source and stage it through the
	// canary. A failed load or a rejected candidate logs and keeps the
	// current graph serving.
	watchHUP(ctx, log, func() error {
		start := time.Now()
		ng, err := loadKB()
		if err != nil {
			return fmt.Errorf("load: %w", err)
		}
		gen, _, err := s.StageReloadKB(ng, time.Since(start))
		if err != nil {
			return err
		}
		log.Info("SIGHUP reload complete", slog.Int64("generation", gen))
		return nil
	})

	log.Info("detectived up",
		slog.Int("rules", len(rs)),
		slog.Any("schema", attrs),
		slog.String("kb", fmt.Sprint(g)),
		slog.Duration("kb_load", initialLoad),
		slog.String("addr", *addr),
		slog.String("log_level", level.String()))

	serveAndDrain(ctx, log, srv, opsSrv, *drainTimeout, func() { s.SetReady(false) })
}

// runRegistry is registry mode: a fleet of named tenants served under
// /v1/{tenant}/..., LRU-resident up to the config's cap, with tenant
// lifecycle and fleet status on the ops listener.
func runRegistry(log *slog.Logger, cfgPath, warmSpec, addr, opsAddr string, drainTimeout time.Duration, baseCfg server.Config, ensembleOn bool, ensembleRef string, ensembleThreshold float64) {
	// The -ensemble flags become fleet-wide defaults that individual
	// tenant configs may still override; SIGHUP re-reads apply the
	// same overlay so flag-driven defaults survive config reloads.
	loadCfg := func() (*registry.Config, error) {
		cfg, err := registry.LoadConfig(cfgPath)
		if err != nil {
			return nil, err
		}
		if ensembleOn {
			cfg.Defaults.Ensemble = true
		}
		if ensembleRef != "" && cfg.Defaults.EnsembleRef == "" {
			cfg.Defaults.EnsembleRef = ensembleRef
		}
		if ensembleThreshold != 0 && cfg.Defaults.EnsembleThreshold == 0 {
			cfg.Defaults.EnsembleThreshold = ensembleThreshold
		}
		return cfg, nil
	}
	cfg, err := loadCfg()
	fail(log, err)
	reg, err := registry.New(*cfg, registry.Options{Logger: log, Server: baseCfg})
	fail(log, err)

	// Pre-admit the hot set before taking traffic, so first requests
	// don't pay cold-start loads. A failed warm is a degraded start,
	// not a fatal one: the tenant retries admission on first request.
	if warmSpec != "" {
		var names []string
		if warmSpec != "all" {
			names = strings.Split(warmSpec, ",")
			for i := range names {
				names[i] = strings.TrimSpace(names[i])
			}
		}
		if err := reg.Warm(names...); err != nil {
			log.Error("tenant warmup incomplete", slog.Any("error", err))
		}
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           server.NewTenantMux(reg, log),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var opsSrv *http.Server
	if opsAddr != "" {
		opsMux := telemetry.NewOpsMux(telemetry.Default())
		// The admin tenant mux adds POST /v1/{tenant}/reload and
		// /v1/{tenant}/rollback; /registry is the fleet-status
		// document (residency, pins, generations, admission counters).
		opsMux.Handle("/v1/", server.NewTenantAdminMux(reg, log))
		opsMux.Handle("GET /registry", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			server.WriteJSON(w, reg.Stats())
		}))
		opsSrv = &http.Server{
			Addr:              opsAddr,
			Handler:           opsMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		log.Info("ops listener up",
			slog.String("addr", opsAddr),
			slog.String("endpoints", "/metrics /debug/pprof/ GET /registry POST /v1/{tenant}/reload POST /v1/{tenant}/rollback"))
	}

	// SIGHUP re-reads the registry config itself — added, removed and
	// edited tenants take effect without a restart — then canary-
	// reloads every resident tenant from its configured source;
	// non-resident tenants pick up new files on admission. A broken
	// config file is logged and skipped so the running fleet (and the
	// KB re-read) is never held hostage by a bad edit.
	watchHUP(ctx, log, func() error {
		if cfg, err := loadCfg(); err != nil {
			log.Error("SIGHUP: registry config re-read failed; keeping current fleet",
				slog.String("path", cfgPath), slog.Any("error", err))
		} else if err := reg.ApplyConfig(*cfg); err != nil {
			log.Error("SIGHUP: registry config rejected; keeping current fleet",
				slog.String("path", cfgPath), slog.Any("error", err))
		}
		if err := reg.ReloadResident(); err != nil {
			return err
		}
		log.Info("SIGHUP registry reload complete")
		return nil
	})

	log.Info("detectived up (registry mode)",
		slog.Int("tenants", len(reg.TenantNames())),
		slog.Int("max_resident", reg.MaxResident()),
		slog.String("addr", addr))

	serveAndDrain(ctx, log, srv, opsSrv, drainTimeout, nil)
}

// watchHUP services SIGHUP reload requests for the process lifetime.
func watchHUP(ctx context.Context, log *slog.Logger, reload func() error) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go reloadLoop(ctx, hup, log, reload)
}

// serveAndDrain runs both listeners until a fatal serve error or the
// shutdown signal, then drains: onDrain first (stop advertising
// readiness), a bounded Shutdown next, a hard Close as last resort.
func serveAndDrain(ctx context.Context, log *slog.Logger, srv, opsSrv *http.Server, drainTimeout time.Duration, onDrain func()) {
	errc := make(chan error, 2)
	go func() { errc <- srv.ListenAndServe() }()
	if opsSrv != nil {
		go func() { errc <- opsSrv.ListenAndServe() }()
	}

	select {
	case err := <-errc:
		fail(log, err)
	case <-ctx.Done():
	}

	log.Info("signal received, draining", slog.Duration("drain_timeout", drainTimeout))
	if onDrain != nil {
		onDrain()
	}
	shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("forced shutdown", slog.Any("error", err))
		_ = srv.Close()
	}
	if opsSrv != nil {
		if err := opsSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = opsSrv.Close()
		}
	}
	log.Info("drained, exiting")
}

// reloadLoop services SIGHUP reload requests until ctx is cancelled.
// Racing a SIGHUP against the SIGTERM drain used to start a reload
// mid-shutdown; selecting on ctx and re-checking it after every wakeup
// makes a late SIGHUP a clean no-op: once draining, the signal is
// acknowledged, logged, and the current graph keeps serving whatever
// requests are still in flight.
func reloadLoop(ctx context.Context, hup <-chan os.Signal, log *slog.Logger, reload func() error) {
	for {
		select {
		case <-ctx.Done():
			return
		case _, ok := <-hup:
			if !ok {
				return
			}
			if ctx.Err() != nil {
				log.Info("SIGHUP ignored: server is draining")
				return
			}
			if err := reload(); err != nil {
				log.Error("SIGHUP reload failed; keeping current graph", slog.Any("error", err))
			}
		}
	}
}

func fail(log *slog.Logger, err error) {
	if err != nil {
		log.Error("fatal", slog.Any("error", err))
		os.Exit(1)
	}
}
