// Command detectived serves a loaded cleaning engine over HTTP:
//
//	detectived -kb kb.nt -rules rules.dr -schema "Name,DOB,Country,Prize,Institution,City" \
//	    -addr :8080 -ops-addr :9090
//
// Endpoints (see the server package): POST /clean, POST /explain,
// GET /rules, GET /stats, GET /healthz, GET /readyz.
//
// A second, operator-only listener (-ops-addr, disabled when empty)
// serves GET /metrics (Prometheus text format: repair latency
// histograms, cache hit/miss counters, per-route HTTP metrics) and
// net/http/pprof under /debug/pprof/ — profiling and scraping stay
// off the public port.
//
// Logs are structured (log/slog, key=value on stderr); -log-level
// picks the floor (debug logs every request with its X-Request-ID).
//
// On SIGTERM/SIGINT the server drains gracefully: /readyz flips to
// 503 so load balancers stop routing new work, in-flight requests get
// -drain-timeout to finish, then both listeners close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"detective"
	"detective/internal/server"
	"detective/internal/telemetry"
)

func main() {
	kbPath := flag.String("kb", "", "knowledge base file (triple format)")
	kbSnapshot := flag.String("kb-snapshot", "", "knowledge base file (binary snapshot format, see kbtool pack); overrides -kb")
	rulesPath := flag.String("rules", "", "detective rules file")
	schemaSpec := flag.String("schema", "", "comma-separated attribute names of the relation")
	name := flag.String("name", "table", "relation name")
	addr := flag.String("addr", ":8080", "listen address")
	opsAddr := flag.String("ops-addr", "", "ops listen address serving GET /metrics and /debug/pprof (empty = disabled)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	reqTimeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent cleaning requests (0 = 2×GOMAXPROCS)")
	maxBody := flag.Int64("max-body", 64<<20, "max request body bytes")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain deadline")
	streamWorkers := flag.Int("stream-workers", 0, "repair workers per /clean stream (0 or 1 = serial; >1 = chunked parallel pipeline)")
	streamChunk := flag.Int("stream-chunk", 0, "rows per pipeline chunk when -stream-workers > 1 (0 = default)")
	memoBytes := flag.Int64("memo-bytes", 0, "byte budget of the cross-request repair memo (0 = default 64 MiB, negative = off)")
	noMemo := flag.Bool("no-memo", false, "disable the cross-request repair memo")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "detectived: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(log)

	if (*kbPath == "" && *kbSnapshot == "") || *rulesPath == "" || *schemaSpec == "" {
		fmt.Fprintln(os.Stderr, "usage: detectived {-kb KB | -kb-snapshot KB.snap} -rules RULES -schema A,B,C [-addr :8080] [-ops-addr :9090]")
		os.Exit(2)
	}

	// loadKB re-reads the KB source on every call so POST /reload and
	// SIGHUP pick up whatever is on disk now. Snapshot wins when both
	// flags are set (it is the fast path).
	loadKB := func() (*detective.KB, error) {
		if *kbSnapshot != "" {
			f, err := os.Open(*kbSnapshot)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return detective.LoadKBSnapshot(f)
		}
		f, err := os.Open(*kbPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return detective.ParseKB(f)
	}

	loadStart := time.Now()
	g, err := loadKB()
	fail(log, err)
	initialLoad := time.Since(loadStart)

	rf, err := os.Open(*rulesPath)
	fail(log, err)
	rs, err := detective.ParseRules(rf)
	rf.Close()
	fail(log, err)

	attrs := strings.Split(*schemaSpec, ",")
	for i := range attrs {
		attrs[i] = strings.TrimSpace(attrs[i])
	}
	schema := detective.NewSchema(*name, attrs...)

	s, err := server.NewWithConfig(rs, g, schema, server.Config{
		RequestTimeout:  *reqTimeout,
		MaxConcurrent:   *maxConcurrent,
		MaxBodyBytes:    *maxBody,
		Logger:          log,
		StreamWorkers:   *streamWorkers,
		StreamChunkSize: *streamChunk,
		MemoBytes:       *memoBytes,
		MemoDisabled:    *noMemo,
	})
	fail(log, err)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		// No ReadTimeout/WriteTimeout: /clean legitimately streams
		// large bodies; per-request work is bounded by the handler's
		// own deadline instead.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 2)
	go func() { errc <- srv.ListenAndServe() }()

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsMux := telemetry.NewOpsMux(telemetry.Default())
		// Admin-only KB hot reload stays on the operator port, next to
		// /metrics and pprof, never on the public listener.
		opsMux.Handle("POST /reload", s.ReloadHandler(loadKB))
		opsSrv = &http.Server{
			Addr:              *opsAddr,
			Handler:           opsMux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { errc <- opsSrv.ListenAndServe() }()
		log.Info("ops listener up",
			slog.String("addr", *opsAddr),
			slog.String("endpoints", "/metrics /debug/pprof/ POST /reload"))
	}

	// SIGHUP is the file-based reload path for operators without ops
	// port access: re-read the KB source and hot-swap it in. A failed
	// load logs and keeps the current graph serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			start := time.Now()
			ng, err := loadKB()
			if err != nil {
				log.Error("SIGHUP reload failed; keeping current graph", slog.Any("error", err))
				continue
			}
			gen := s.ReloadKB(ng, time.Since(start))
			log.Info("SIGHUP reload complete", slog.Int64("generation", gen))
		}
	}()

	log.Info("detectived up",
		slog.Int("rules", len(rs)),
		slog.Any("schema", attrs),
		slog.String("kb", fmt.Sprint(g)),
		slog.Duration("kb_load", initialLoad),
		slog.String("addr", *addr),
		slog.String("log_level", level.String()))

	select {
	case err := <-errc:
		fail(log, err)
	case <-ctx.Done():
	}

	// Drain: stop advertising readiness, give in-flight requests a
	// deadline, then close both listeners.
	log.Info("signal received, draining", slog.Duration("drain_timeout", *drainTimeout))
	s.SetReady(false)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("forced shutdown", slog.Any("error", err))
		_ = srv.Close()
	}
	if opsSrv != nil {
		if err := opsSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			_ = opsSrv.Close()
		}
	}
	log.Info("drained, exiting")
}

func fail(log *slog.Logger, err error) {
	if err != nil {
		log.Error("fatal", slog.Any("error", err))
		os.Exit(1)
	}
}
