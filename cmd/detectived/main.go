// Command detectived serves a loaded cleaning engine over HTTP:
//
//	detectived -kb kb.nt -rules rules.dr -schema "Name,DOB,Country,Prize,Institution,City" -addr :8080
//
// Endpoints (see the server package): POST /clean, POST /explain,
// GET /rules, GET /stats, GET /healthz, GET /readyz.
//
// On SIGTERM/SIGINT the server drains gracefully: /readyz flips to
// 503 so load balancers stop routing new work, in-flight requests get
// -drain-timeout to finish, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"detective"
	"detective/internal/server"
)

func main() {
	kbPath := flag.String("kb", "", "knowledge base file (triple format)")
	rulesPath := flag.String("rules", "", "detective rules file")
	schemaSpec := flag.String("schema", "", "comma-separated attribute names of the relation")
	name := flag.String("name", "table", "relation name")
	addr := flag.String("addr", ":8080", "listen address")
	reqTimeout := flag.Duration("timeout", 30*time.Second, "per-request deadline")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent cleaning requests (0 = 2×GOMAXPROCS)")
	maxBody := flag.Int64("max-body", 64<<20, "max request body bytes")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()

	if *kbPath == "" || *rulesPath == "" || *schemaSpec == "" {
		fmt.Fprintln(os.Stderr, "usage: detectived -kb KB -rules RULES -schema A,B,C [-addr :8080]")
		os.Exit(2)
	}

	kf, err := os.Open(*kbPath)
	fail(err)
	g, err := detective.ParseKB(kf)
	kf.Close()
	fail(err)

	rf, err := os.Open(*rulesPath)
	fail(err)
	rs, err := detective.ParseRules(rf)
	rf.Close()
	fail(err)

	attrs := strings.Split(*schemaSpec, ",")
	for i := range attrs {
		attrs[i] = strings.TrimSpace(attrs[i])
	}
	schema := detective.NewSchema(*name, attrs...)

	s, err := server.NewWithConfig(rs, g, schema, server.Config{
		RequestTimeout: *reqTimeout,
		MaxConcurrent:  *maxConcurrent,
		MaxBodyBytes:   *maxBody,
	})
	fail(err)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
		// No ReadTimeout/WriteTimeout: /clean legitimately streams
		// large bodies; per-request work is bounded by the handler's
		// own deadline instead.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("detectived: %d rules over %v, KB %v; listening on %s",
		len(rs), attrs, g, *addr)

	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}

	// Drain: stop advertising readiness, give in-flight requests a
	// deadline, then close.
	log.Printf("detectived: signal received, draining for up to %v", *drainTimeout)
	s.SetReady(false)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("detectived: forced shutdown: %v", err)
		_ = srv.Close()
	}
	log.Printf("detectived: drained, exiting")
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "detectived:", err)
		os.Exit(1)
	}
}
