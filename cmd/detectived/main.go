// Command detectived serves a loaded cleaning engine over HTTP:
//
//	detectived -kb kb.nt -rules rules.dr -schema "Name,DOB,Country,Prize,Institution,City" -addr :8080
//
// Endpoints (see the server package): POST /clean, POST /explain,
// GET /rules, GET /stats, GET /healthz.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"detective"
	"detective/internal/server"
)

func main() {
	kbPath := flag.String("kb", "", "knowledge base file (triple format)")
	rulesPath := flag.String("rules", "", "detective rules file")
	schemaSpec := flag.String("schema", "", "comma-separated attribute names of the relation")
	name := flag.String("name", "table", "relation name")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	if *kbPath == "" || *rulesPath == "" || *schemaSpec == "" {
		fmt.Fprintln(os.Stderr, "usage: detectived -kb KB -rules RULES -schema A,B,C [-addr :8080]")
		os.Exit(2)
	}

	kf, err := os.Open(*kbPath)
	fail(err)
	g, err := detective.ParseKB(kf)
	kf.Close()
	fail(err)

	rf, err := os.Open(*rulesPath)
	fail(err)
	rs, err := detective.ParseRules(rf)
	rf.Close()
	fail(err)

	attrs := strings.Split(*schemaSpec, ",")
	for i := range attrs {
		attrs[i] = strings.TrimSpace(attrs[i])
	}
	schema := detective.NewSchema(*name, attrs...)

	s, err := server.New(rs, g, schema)
	fail(err)

	log.Printf("detectived: %d rules over %v, KB %v; listening on %s",
		len(rs), attrs, g, *addr)
	log.Fatal(http.ListenAndServe(*addr, s))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "detectived:", err)
		os.Exit(1)
	}
}
