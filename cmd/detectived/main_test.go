package main

import (
	"context"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// TestReloadLoopServicesSIGHUP: a signal delivered while the server is
// up triggers exactly one reload.
func TestReloadLoopServicesSIGHUP(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hup := make(chan os.Signal, 1)
	var reloads atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		reloadLoop(ctx, hup, discardLog(), func() error {
			reloads.Add(1)
			return nil
		})
	}()

	hup <- syscall.SIGHUP
	deadline := time.After(2 * time.Second)
	for reloads.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("SIGHUP not serviced")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reloadLoop did not exit on cancel")
	}
	if got := reloads.Load(); got != 1 {
		t.Fatalf("reloads = %d, want 1", got)
	}
}

// TestReloadLoopIgnoresSIGHUPDuringDrain pins the shutdown race fix: a
// SIGHUP that arrives after the drain has begun (ctx cancelled) must
// not start a reload, even when the signal was already queued before
// the loop observed the cancellation.
func TestReloadLoopIgnoresSIGHUPDuringDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	hup := make(chan os.Signal, 1)
	var reloads atomic.Int64

	// Queue the signal first, then cancel, then start the loop: both
	// select arms are ready on entry, so whichever the runtime picks,
	// the ctx.Err() re-check must keep the reload from running.
	hup <- syscall.SIGHUP
	cancel()

	done := make(chan struct{})
	go func() {
		defer close(done)
		reloadLoop(ctx, hup, discardLog(), func() error {
			reloads.Add(1)
			return nil
		})
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reloadLoop did not exit while draining")
	}
	if got := reloads.Load(); got != 0 {
		t.Fatalf("reloads = %d during drain, want 0", got)
	}
}

// TestReloadLoopExitsOnClosedChannel: signal.Stop closing the flow of
// signals must not leave the loop spinning.
func TestReloadLoopExitsOnClosedChannel(t *testing.T) {
	hup := make(chan os.Signal)
	close(hup)
	done := make(chan struct{})
	go func() {
		defer close(done)
		reloadLoop(context.Background(), hup, discardLog(), func() error { return nil })
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reloadLoop did not exit on closed channel")
	}
}
