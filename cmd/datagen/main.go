// Command datagen materializes the reproduction's synthetic datasets
// and knowledge bases on disk, so they can be inspected or fed back
// through the detective CLI:
//
//	datagen -dataset nobel -n 1069 -noise 0.1 -out ./data/nobel
//	datagen -dataset uis -n 100000 -out ./data/uis
//	datagen -dataset webtables -out ./data/webtables
//	datagen -dataset paper -out ./data/paper
//	datagen -dataset nobel -n 400 -zipf 1.1 -zipf-rows 8192 -out ./data/zipf
//
// Each run writes truth.csv, dirty.csv, rules.dr, kb_yago.nt and
// kb_dbpedia.nt (WebTables writes one CSV pair per table). With
// -zipf s (nobel/uis; the Zipf law needs s > 1) it additionally
// writes zipf.csv: -zipf-rows rows drawn from dirty.csv with
// Zipf-distributed row popularity of skew s — the duplicate-heavy
// stream shape the repair memo benchmarks and the nightly lane
// replay. The draw is fully determined by -seed, -n, -zipf and
// -zipf-rows, so corpora are reproducible anywhere.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"detective/internal/dataset"
	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
)

func main() {
	which := flag.String("dataset", "paper", "dataset: paper, nobel, uis, webtables")
	n := flag.Int("n", 1069, "tuple count (nobel/uis)")
	seed := flag.Int64("seed", 1, "generator seed")
	noise := flag.Float64("noise", 0.10, "error rate for dirty.csv")
	typo := flag.Float64("typo", 0.5, "typo share of injected errors")
	zipf := flag.Float64("zipf", 0, "also write zipf.csv: Zipf-skewed stream over dirty.csv rows with this skew s (> 1; nobel/uis only; 0 = off)")
	zipfRows := flag.Int("zipf-rows", 8192, "rows in zipf.csv when -zipf is set")
	outDir := flag.String("out", ".", "output directory")
	flag.Parse()

	fail(os.MkdirAll(*outDir, 0o755))

	switch *which {
	case "paper":
		ex := dataset.NewPaperExample()
		writeTable(*outDir, "truth.csv", ex.Truth)
		writeTable(*outDir, "dirty.csv", ex.Dirty)
		writeKB(*outDir, "kb.nt", ex.KB)
		writeRules(*outDir, "rules.dr", ex.Rules)
	case "nobel", "uis":
		var b *dataset.Bundle
		if *which == "nobel" {
			b = dataset.NewNobel(*seed, *n)
		} else {
			b = dataset.NewUIS(*seed, *n)
		}
		inj := b.Inject(dataset.Noise{Rate: *noise, TypoFrac: *typo, Seed: *seed})
		writeTable(*outDir, "truth.csv", b.Truth)
		writeTable(*outDir, "dirty.csv", inj.Dirty)
		writeKB(*outDir, "kb_yago.nt", b.Yago)
		writeKB(*outDir, "kb_dbpedia.nt", b.DBpedia)
		writeRules(*outDir, "rules.dr", b.Rules)
		fmt.Printf("%s: %d tuples, %d errors (%d typos, %d semantic)\n",
			b.Name, b.Truth.Len(), len(inj.Wrong), inj.Typos, inj.Semantics)
		fmt.Printf("  kb_yago:    %v\n", b.Yago.ComputeStats(0))
		fmt.Printf("  kb_dbpedia: %v\n", b.DBpedia.ComputeStats(0))
		if *zipf > 0 {
			zt := dataset.ZipfTable(inj.Dirty, *seed, *zipf, *zipfRows)
			writeTable(*outDir, "zipf.csv", zt)
			fmt.Printf("  zipf.csv:   %d rows, skew %.2f over %d distinct dirty rows\n",
				zt.Len(), *zipf, inj.Dirty.Len())
		}
	case "webtables":
		wb := dataset.NewWebTables(*seed)
		for i, d := range wb.Tables {
			inj := d.Inject(dataset.Noise{Rate: *noise, TypoFrac: *typo, HardFrac: 0.1,
				SwapFallback: true, Seed: *seed + int64(i)})
			writeTable(*outDir, d.Name+"_truth.csv", d.Truth)
			writeTable(*outDir, d.Name+"_dirty.csv", inj.Dirty)
			writeRules(*outDir, d.Name+"_rules.dr", d.Rules)
		}
		writeKB(*outDir, "kb_yago.nt", wb.Yago)
		writeKB(*outDir, "kb_dbpedia.nt", wb.DBpedia)
		fmt.Printf("WebTables: %d tables\n", len(wb.Tables))
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *which)
		os.Exit(2)
	}
}

func writeTable(dir, name string, tb *relation.Table) {
	f, err := os.Create(filepath.Join(dir, name))
	fail(err)
	defer f.Close()
	fail(tb.WriteCSV(f))
}

func writeKB(dir, name string, g *kb.Graph) {
	f, err := os.Create(filepath.Join(dir, name))
	fail(err)
	defer f.Close()
	fail(g.Encode(f))
}

func writeRules(dir, name string, rs []*rules.DR) {
	f, err := os.Create(filepath.Join(dir, name))
	fail(err)
	defer f.Close()
	fail(rules.EncodeRules(f, rs))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
