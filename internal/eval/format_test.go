package eval_test

import (
	"bytes"
	"strings"
	"testing"

	"detective/internal/eval"
)

func TestPrintTableII(t *testing.T) {
	var buf bytes.Buffer
	eval.PrintTableII(&buf, []eval.AlignRow{
		{Dataset: "Nobel", KB: "Yago", Classes: 5, Relations: 4},
		{Dataset: "Nobel", KB: "DBpedia", Classes: 5, Relations: 4},
	})
	out := buf.String()
	for _, want := range []string{"TABLE II", "Nobel", "Yago", "DBpedia", "5", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintTableIII(t *testing.T) {
	var buf bytes.Buffer
	eval.PrintTableIII(&buf, []eval.QualityRow{
		{Dataset: "UIS", System: "DRs", KB: "Yago", P: 1, R: 0.73, F: 0.84, POS: 77001},
	})
	out := buf.String()
	for _, want := range []string{"TABLE III", "UIS", "DRs", "1.00", "0.73", "0.84", "77001"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintCurves(t *testing.T) {
	var buf bytes.Buffer
	curves := []eval.Curve{
		{Dataset: "Nobel", System: "bRepair(Yago)", Points: []eval.CurvePoint{
			{X: 4, P: 1, R: 0.7, F: 0.82}, {X: 8, P: 1, R: 0.71, F: 0.83},
		}},
		{Dataset: "Nobel", System: "Llunatic", Points: []eval.CurvePoint{
			{X: 4, P: 0.6, R: 0.3, F: 0.4}, {X: 8, P: 0.55, R: 0.28, F: 0.37},
		}},
	}
	eval.PrintCurves(&buf, "FIGURE 6", "err%", curves)
	out := buf.String()
	for _, want := range []string{"FIGURE 6", "Precision (Nobel)", "Recall (Nobel)", "F-measure (Nobel)", "bRepair(Yago)", "Llunatic", "0.82"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Empty input must not panic.
	eval.PrintCurves(&buf, "EMPTY", "x", nil)
}

func TestPrintTimeCurves(t *testing.T) {
	var buf bytes.Buffer
	eval.PrintTimeCurves(&buf, "FIGURE 8(b)", "#-rule", []eval.TimeCurve{
		{Label: "bRepair(Yago)", Points: []eval.TimePoint{{X: 1, Seconds: 0.5}, {X: 2, Seconds: 1.25}}},
		{Label: "fRepair(Yago)", Points: []eval.TimePoint{{X: 1, Seconds: 0.1}}}, // ragged
	})
	out := buf.String()
	for _, want := range []string{"FIGURE 8(b)", "#-rule", "0.500s", "1.250s", "0.100s", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	eval.PrintTimeCurves(&buf, "EMPTY", "x", nil)
}

func TestPrintExtension(t *testing.T) {
	var buf bytes.Buffer
	eval.PrintExtension(&buf, []eval.ExtensionRow{
		{Variant: "single negative node", KB: "Yago", P: 1, R: 0.79, F: 0.88},
	})
	if !strings.Contains(buf.String(), "0.79") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestKeyScopeAndMarkedInScope(t *testing.T) {
	// Covered by run.go paths implicitly; exercise the edge cases here.
	b := newTinyNobel(t)
	scope := eval.KeyScope(b.Truth, b.Yago, "Name", "Nobel laureates in Chemistry")
	inScope := 0
	for _, ok := range scope {
		if ok {
			inScope++
		}
	}
	if inScope == 0 || inScope > b.Truth.Len() {
		t.Fatalf("inScope = %d of %d", inScope, b.Truth.Len())
	}
	// Unknown key type: nothing in scope.
	none := eval.KeyScope(b.Truth, b.Yago, "Name", "no-such-class")
	for i, ok := range none {
		if ok {
			t.Fatalf("row %d in scope for unknown class", i)
		}
	}
	// MarkedInScope with nil scope counts everything.
	b.Truth.Tuples[0].Marked[0] = true
	if got := eval.MarkedInScope(b.Truth, nil); got != 1 {
		t.Fatalf("MarkedInScope = %d", got)
	}
	b.Truth.Tuples[0].Marked[0] = false
}

func TestCSVExports(t *testing.T) {
	var buf bytes.Buffer
	if err := eval.AlignCSV(&buf, []eval.AlignRow{{Dataset: "Nobel", KB: "Yago", Classes: 5, Relations: 4}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Nobel,Yago,5,4") {
		t.Errorf("AlignCSV: %s", buf.String())
	}

	buf.Reset()
	if err := eval.QualityCSV(&buf, []eval.QualityRow{{Dataset: "UIS", System: "DRs", KB: "Yago", P: 1, R: 0.73, F: 0.84, POS: 7}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "UIS,DRs,Yago,1.0000,0.7300,0.8400,7") {
		t.Errorf("QualityCSV: %s", buf.String())
	}

	buf.Reset()
	if err := eval.CurvesCSV(&buf, []eval.Curve{{Dataset: "Nobel", System: "s",
		Points: []eval.CurvePoint{{X: 4, P: 1, R: 0.5, F: 0.66}}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Nobel,s,4,1.0000,0.5000,0.6600") {
		t.Errorf("CurvesCSV: %s", buf.String())
	}

	buf.Reset()
	if err := eval.TimeCurvesCSV(&buf, []eval.TimeCurve{{Label: "fRepair",
		Points: []eval.TimePoint{{X: 1000, Seconds: 0.25}}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fRepair,1000,0.250000") {
		t.Errorf("TimeCurvesCSV: %s", buf.String())
	}

	buf.Reset()
	if err := eval.ExtensionCSV(&buf, []eval.ExtensionRow{{Variant: "v", KB: "Yago", P: 1, R: 0.8, F: 0.88}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "v,Yago,1.0000,0.8000,0.8800") {
		t.Errorf("ExtensionCSV: %s", buf.String())
	}
}
