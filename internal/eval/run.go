package eval

import (
	"fmt"
	"time"

	"detective/internal/cfd"
	"detective/internal/dataset"
	"detective/internal/katara"
	"detective/internal/kb"
	"detective/internal/llunatic"
	"detective/internal/repair"
)

// RunResult is one system's outcome on one injected dataset.
type RunResult struct {
	System   string
	Metrics  Metrics
	Duration time.Duration
}

// RunDR cleans inj with detective rules against the given KB.
// fast selects fRepair; the quality numbers of bRepair and fRepair are
// identical (Church-Rosser), so quality experiments use fast=true and
// only the efficiency experiments exercise both.
func RunDR(d *dataset.Dataset, g *kb.Graph, inj *dataset.Injected, fast bool) (RunResult, error) {
	e, err := repair.NewEngine(d.Rules, g, d.Schema)
	if err != nil {
		return RunResult{}, fmt.Errorf("eval: %s: %w", d.Name, err)
	}
	start := time.Now()
	repaired, alts := e.RepairTableWithAlternatives(inj.Dirty, fast)
	dur := time.Since(start)

	var scope []bool
	if d.ScopeByKey {
		scope = KeyScope(inj.Dirty, g, d.KeyAttr, d.KeyType)
	}
	m := Score(inj.Truth, inj.Dirty, repaired, inj.Wrong, ScoreOpts{Scope: scope, Alternatives: alts})
	m.POS = MarkedInScope(repaired, scope)
	name := "fRepair"
	if !fast {
		name = "bRepair"
	}
	return RunResult{System: name, Metrics: m, Duration: dur}, nil
}

// RunKATARA cleans inj with the simulated KATARA system.
func RunKATARA(d *dataset.Dataset, g *kb.Graph, inj *dataset.Injected) (RunResult, error) {
	s, err := katara.New(d.Pattern, g, d.Schema)
	if err != nil {
		return RunResult{}, fmt.Errorf("eval: %s: %w", d.Name, err)
	}
	start := time.Now()
	repaired, pos := s.CleanTable(inj.Dirty)
	dur := time.Since(start)

	var scope []bool
	if d.ScopeByKey {
		scope = KeyScope(inj.Dirty, g, d.KeyAttr, d.KeyType)
	}
	m := Score(inj.Truth, inj.Dirty, repaired, inj.Wrong, ScoreOpts{Scope: scope})
	// #-POS for KATARA counts cells of fully matched tuples only; the
	// CleanTable count is global, so recount in scope.
	m.POS = 0
	for i, tu := range repaired.Tuples {
		if (scope == nil || scope[i]) && tu.IsMarked() {
			m.POS += tu.NumMarked()
		}
	}
	_ = pos
	return RunResult{System: "KATARA", Metrics: m, Duration: dur}, nil
}

// RunLlunatic cleans inj with the FD-based baseline. No KB and no
// key-attribute scope: ICs see the whole table, and the paper scores
// them with metric 0.5 for lluns.
func RunLlunatic(d *dataset.Dataset, inj *dataset.Injected) (RunResult, error) {
	start := time.Now()
	res, err := llunatic.Repair(inj.Dirty, d.FDs)
	if err != nil {
		return RunResult{}, fmt.Errorf("eval: %s: %w", d.Name, err)
	}
	dur := time.Since(start)
	m := Score(inj.Truth, inj.Dirty, res.Table, inj.Wrong, ScoreOpts{LlunPartial: true})
	return RunResult{System: "Llunatic", Metrics: m, Duration: dur}, nil
}

// RunCFD cleans inj with constant CFDs mined from ground truth (the
// paper's protocol for this baseline).
func RunCFD(d *dataset.Dataset, inj *dataset.Injected) (RunResult, error) {
	rules, err := cfd.Mine(inj.Truth, d.CFDTemplates, 1)
	if err != nil {
		return RunResult{}, fmt.Errorf("eval: %s: %w", d.Name, err)
	}
	ix := cfd.NewIndex(d.Schema, rules)
	start := time.Now()
	repaired, _ := ix.Repair(inj.Dirty)
	dur := time.Since(start)
	m := Score(inj.Truth, inj.Dirty, repaired, inj.Wrong, ScoreOpts{})
	return RunResult{System: "constant CFDs", Metrics: m, Duration: dur}, nil
}
