// The ensemble experiment: the weighted multi-engine vote against
// each single engine it is built from. Not part of the paper's own
// evaluation section — it measures the serving-path ensemble mode
// this reproduction adds on top of §V's systems.
package eval

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"detective/internal/dataset"
	"detective/internal/kb"
	"detective/internal/repair"
	"detective/internal/repair/ensemble"
	"detective/internal/repair/ensemble/adapters"
)

// RunEnsemble cleans inj with the serving-path ensemble: the
// detective engine plus the KATARA, FD and constant-CFD proposers,
// combined per cell by the weighted vote. The auxiliary proposers are
// grounded the same way their standalone baselines are in this suite:
// KATARA on the dataset's table pattern against g, FDs and constant
// CFDs mined from ground truth (the paper's protocol for those
// baselines).
func RunEnsemble(d *dataset.Dataset, g *kb.Graph, inj *dataset.Injected) (RunResult, error) {
	store := kb.NewStore(g)
	pattern := d.Pattern
	if len(pattern.Nodes) == 0 {
		pattern = ensemble.PatternFromRules(d.Rules)
	}
	e, err := repair.NewEngineStore(d.Rules, store, d.Schema, repair.Options{
		Ensemble: repair.EnsembleOptions{
			Enabled:   true,
			Proposers: adapters.BuildProposers(d.Schema, pattern, store, inj.Truth),
		},
	})
	if err != nil {
		return RunResult{}, fmt.Errorf("eval: %s: %w", d.Name, err)
	}
	start := time.Now()
	repaired, _, err := e.RepairTableEnsemble(context.Background(), inj.Dirty)
	if err != nil {
		return RunResult{}, fmt.Errorf("eval: %s: %w", d.Name, err)
	}
	dur := time.Since(start)

	var scope []bool
	if d.ScopeByKey {
		scope = KeyScope(inj.Dirty, g, d.KeyAttr, d.KeyType)
	}
	m := Score(inj.Truth, inj.Dirty, repaired, inj.Wrong, ScoreOpts{Scope: scope})
	m.POS = MarkedInScope(repaired, scope)
	return RunResult{System: "Ensemble", Metrics: m, Duration: dur}, nil
}

// EnsembleTable runs the ensemble against each of its constituent
// engines on Nobel and UIS (Yago KB, the suite's standard 10% noise),
// one QualityRow per (dataset, system).
func EnsembleTable(cfg ExpConfig) ([]QualityRow, error) {
	var out []QualityRow
	for _, mk := range []struct {
		name  string
		build func() *dataset.Bundle
	}{
		{"Nobel", func() *dataset.Bundle { return dataset.NewNobel(cfg.Seed, cfg.NobelTuples) }},
		{"UIS", func() *dataset.Bundle { return dataset.NewUIS(cfg.Seed, cfg.UISTuples) }},
	} {
		b := mk.build()
		inj := b.Inject(dataset.Noise{Rate: cfg.ErrRate, TypoFrac: cfg.TypoFrac, Seed: cfg.Seed})
		runs := make([]RunResult, 0, 5)
		dr, err := RunDR(&b.Dataset, b.Yago, inj, true)
		if err != nil {
			return nil, err
		}
		runs = append(runs, dr)
		kat, err := RunKATARA(&b.Dataset, b.Yago, inj)
		if err != nil {
			return nil, err
		}
		runs = append(runs, kat)
		llu, err := RunLlunatic(&b.Dataset, inj)
		if err != nil {
			return nil, err
		}
		runs = append(runs, llu)
		cf, err := RunCFD(&b.Dataset, inj)
		if err != nil {
			return nil, err
		}
		runs = append(runs, cf)
		ens, err := RunEnsemble(&b.Dataset, b.Yago, inj)
		if err != nil {
			return nil, err
		}
		runs = append(runs, ens)
		for _, r := range runs {
			out = append(out, QualityRow{
				Dataset: mk.name, System: r.System, KB: "Yago",
				P: r.Metrics.Precision(), R: r.Metrics.Recall(), F: r.Metrics.F1(),
				POS: r.Metrics.POS,
			})
		}
	}
	return out, nil
}

// PrintEnsemble renders the ensemble comparison table.
func PrintEnsemble(w io.Writer, rows []QualityRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENSEMBLE REPAIR VS SINGLE ENGINES (Yago KB)")
	fmt.Fprintln(tw, "Dataset\tSystem\tPrecision\tRecall\tF-measure\t#-POS")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\t%d\n",
			r.Dataset, r.System, r.P, r.R, r.F, r.POS)
	}
	tw.Flush()
}
