package eval

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// PrintTableII renders the alignment statistics in the layout of the
// paper's Table II.
func PrintTableII(w io.Writer, rows []AlignRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TABLE II. DATASETS (ALIGNED CLASSES AND RELATIONS)")
	fmt.Fprintln(tw, "Dataset\tKB\t#-class\t#-relationship")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\n", r.Dataset, r.KB, r.Classes, r.Relations)
	}
	tw.Flush()
}

// PrintTableIII renders the quality comparison in the layout of the
// paper's Table III.
func PrintTableIII(w io.Writer, rows []QualityRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TABLE III. DATA ANNOTATION AND REPAIR ACCURACY")
	fmt.Fprintln(tw, "Dataset\tSystem\tKB\tPrecision\tRecall\tF-measure\t#-POS")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%.2f\t%.2f\t%d\n",
			r.Dataset, r.System, r.KB, r.P, r.R, r.F, r.POS)
	}
	tw.Flush()
}

// PrintCurves renders Figure 6/7-style quality curves, one block per
// (dataset, metric) sub-plot, matching the paper's six panels.
func PrintCurves(w io.Writer, title, xlabel string, curves []Curve) {
	fmt.Fprintln(w, title)
	metrics := []struct {
		name string
		get  func(CurvePoint) float64
	}{
		{"Precision", func(p CurvePoint) float64 { return p.P }},
		{"Recall", func(p CurvePoint) float64 { return p.R }},
		{"F-measure", func(p CurvePoint) float64 { return p.F }},
	}
	// Group curves by dataset, preserving order of first appearance.
	var datasets []string
	seen := make(map[string]bool)
	for _, c := range curves {
		if !seen[c.Dataset] {
			seen[c.Dataset] = true
			datasets = append(datasets, c.Dataset)
		}
	}
	for _, m := range metrics {
		for _, ds := range datasets {
			fmt.Fprintf(w, "\n%s (%s)\n", m.name, ds)
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintf(tw, "%s", xlabel)
			var sel []Curve
			for _, c := range curves {
				if c.Dataset == ds {
					sel = append(sel, c)
					fmt.Fprintf(tw, "\t%s", c.System)
				}
			}
			fmt.Fprintln(tw)
			if len(sel) == 0 {
				tw.Flush()
				continue
			}
			for i := range sel[0].Points {
				fmt.Fprintf(tw, "%g", sel[0].Points[i].X)
				for _, c := range sel {
					fmt.Fprintf(tw, "\t%.2f", m.get(c.Points[i]))
				}
				fmt.Fprintln(tw)
			}
			tw.Flush()
		}
	}
}

// PrintTimeCurves renders Figure 8-style efficiency curves.
func PrintTimeCurves(w io.Writer, title, xlabel string, curves []TimeCurve) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", xlabel)
	for _, c := range curves {
		fmt.Fprintf(tw, "\t%s", c.Label)
	}
	fmt.Fprintln(tw)
	if len(curves) == 0 {
		tw.Flush()
		return
	}
	for i := range curves[0].Points {
		fmt.Fprintf(tw, "%g", curves[0].Points[i].X)
		for _, c := range curves {
			if i < len(c.Points) {
				fmt.Fprintf(tw, "\t%.3fs", c.Points[i].Seconds)
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// PrintExtension renders the negative-path ablation.
func PrintExtension(w io.Writer, rows []ExtensionRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "EXTENSION. NEGATIVE PATHS ON UIS (ZIP RULE)")
	fmt.Fprintln(tw, "Variant\tKB\tPrecision\tRecall\tF-measure")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\n", r.Variant, r.KB, r.P, r.R, r.F)
	}
	tw.Flush()
}
