package eval

import (
	"fmt"
	"time"

	"detective/internal/dataset"
	"detective/internal/katara"
	"detective/internal/kb"
	"detective/internal/repair"
	"detective/internal/rules"
)

// ExpConfig scales the experiment suite. The paper's sizes (1,069
// Nobel tuples, 100K UIS tuples) are reachable by raising the fields;
// the defaults keep a full suite run in CI-friendly time while
// preserving every reported shape.
type ExpConfig struct {
	Seed int64

	NobelTuples int // paper: 1069
	UISTuples   int // paper: 100K; quality experiments (Table III, Fig 6/7)

	ErrRate     float64 // paper: 10% for Table III and Fig 7
	TypoFrac    float64 // paper: 50/50 split
	WebTypoFrac float64 // typo share of the WebTables "original dirt"
	WebHardFrac float64 // share of hard (unrepairable) typos on WebTables

	Rates     []float64 // Fig 6 error rates
	TypoRates []float64 // Fig 7 typo percentages

	Fig8Tuples  []int // Fig 8(d) UIS sizes
	Fig8UISSize int   // Fig 8(c) UIS size (paper: 20K)

	// Repeats averages each timing measurement over this many runs
	// (the paper ran each experiment six times and averaged).
	Repeats int
}

// DefaultConfig returns the reduced-scale defaults.
func DefaultConfig() ExpConfig {
	return ExpConfig{
		Seed:        1,
		NobelTuples: 1069,
		UISTuples:   5000,
		ErrRate:     0.10,
		TypoFrac:    0.5,
		WebTypoFrac: 0.65,
		WebHardFrac: 0.1,
		Rates:       []float64{0.04, 0.08, 0.12, 0.16, 0.20},
		TypoRates:   []float64{0, 0.25, 0.5, 0.75, 1.0},
		Fig8Tuples:  []int{1000, 2000, 4000, 6000, 8000},
		Fig8UISSize: 4000,
		Repeats:     1,
	}
}

// PaperScaleConfig returns the full paper sizes (slow: the basic
// repair algorithm is deliberately quadratic in the class extents).
func PaperScaleConfig() ExpConfig {
	c := DefaultConfig()
	c.UISTuples = 100000
	c.Fig8Tuples = []int{20000, 40000, 60000, 80000, 100000}
	c.Fig8UISSize = 20000
	return c
}

// ---------------------------------------------------------------- Table II

// AlignRow is one row of Table II: how many of the dataset's classes
// and relationships align with (exist in) a KB build.
type AlignRow struct {
	Dataset   string
	KB        string
	Classes   int
	Relations int
}

// alignment counts the distinct rule/pattern classes and relations
// present in g.
func alignment(rs []*rules.DR, pattern rules.Graph, g *kb.Graph) (classes, relations int) {
	cls := make(map[string]bool)
	rel := make(map[string]bool)
	addNode := func(n rules.Node) {
		if g.Lookup(n.Type) != kb.Invalid {
			cls[n.Type] = true
		}
	}
	addEdge := func(e rules.Edge) {
		if g.Lookup(e.Rel) != kb.Invalid {
			rel[e.Rel] = true
		}
	}
	for _, r := range rs {
		for _, n := range r.Evidence {
			addNode(n)
		}
		addNode(r.Pos)
		if r.Neg != nil {
			addNode(*r.Neg)
		}
		for _, e := range r.Edges {
			addEdge(e)
		}
	}
	for _, n := range pattern.Nodes {
		addNode(n)
	}
	for _, e := range pattern.Edges {
		addEdge(e)
	}
	return len(cls), len(rel)
}

// TableII computes the alignment statistics for all three datasets
// against both KB builds.
func TableII(cfg ExpConfig) []AlignRow {
	var out []AlignRow

	wb := dataset.NewWebTables(cfg.Seed)
	for _, kbName := range dataset.KBNames {
		g := wb.KB(kbName)
		cls := make(map[string]bool)
		rel := make(map[string]bool)
		for _, d := range wb.Tables {
			// Count distinct names across all 37 tables, not per-table
			// sums.
			for _, dr := range d.Rules {
				for _, n := range append(append([]rules.Node{}, dr.Evidence...), dr.Pos) {
					if g.Lookup(n.Type) != kb.Invalid {
						cls[n.Type] = true
					}
				}
				if dr.Neg != nil && g.Lookup(dr.Neg.Type) != kb.Invalid {
					cls[dr.Neg.Type] = true
				}
				for _, e := range dr.Edges {
					if g.Lookup(e.Rel) != kb.Invalid {
						rel[e.Rel] = true
					}
				}
			}
		}
		out = append(out, AlignRow{Dataset: "WebTables", KB: kbName, Classes: len(cls), Relations: len(rel)})
	}

	nb := dataset.NewNobel(cfg.Seed, cfg.NobelTuples)
	for _, kbName := range dataset.KBNames {
		c, r := alignment(nb.Rules, nb.Pattern, nb.KB(kbName))
		out = append(out, AlignRow{Dataset: "Nobel", KB: kbName, Classes: c, Relations: r})
	}
	uis := dataset.NewUIS(cfg.Seed, cfg.UISTuples)
	for _, kbName := range dataset.KBNames {
		c, r := alignment(uis.Rules, uis.Pattern, uis.KB(kbName))
		out = append(out, AlignRow{Dataset: "UIS", KB: kbName, Classes: c, Relations: r})
	}
	return out
}

// --------------------------------------------------------------- Table III

// QualityRow is one row of Table III: a (dataset, system, KB) cell
// with precision/recall/F-measure and #-POS.
type QualityRow struct {
	Dataset string
	System  string // "DRs" or "KATARA"
	KB      string
	P, R, F float64
	POS     int
}

// TableIII reproduces the data annotation and repair accuracy
// comparison (DRs vs KATARA on both KBs, all three datasets, 10%
// errors on Nobel/UIS).
func TableIII(cfg ExpConfig) ([]QualityRow, error) {
	var out []QualityRow

	// WebTables: aggregate over the 37 tables.
	wb := dataset.NewWebTables(cfg.Seed)
	for _, kbName := range dataset.KBNames {
		var drM, katM Metrics
		for i, d := range wb.Tables {
			inj := d.Inject(dataset.Noise{Rate: cfg.ErrRate, TypoFrac: cfg.WebTypoFrac,
				HardFrac: cfg.WebHardFrac, SwapFallback: true, Seed: cfg.Seed + int64(i)})
			dr, err := RunDR(d, wb.KB(kbName), inj, true)
			if err != nil {
				return nil, err
			}
			drM.Add(dr.Metrics)
			kat, err := RunKATARA(d, wb.KB(kbName), inj)
			if err != nil {
				return nil, err
			}
			katM.Add(kat.Metrics)
		}
		out = append(out,
			QualityRow{"WebTables", "DRs", kbName, drM.Precision(), drM.Recall(), drM.F1(), drM.POS},
			QualityRow{"WebTables", "KATARA", kbName, katM.Precision(), katM.Recall(), katM.F1(), katM.POS})
	}

	for _, mk := range []struct {
		name  string
		build func() *dataset.Bundle
	}{
		{"Nobel", func() *dataset.Bundle { return dataset.NewNobel(cfg.Seed, cfg.NobelTuples) }},
		{"UIS", func() *dataset.Bundle { return dataset.NewUIS(cfg.Seed, cfg.UISTuples) }},
	} {
		b := mk.build()
		inj := b.Inject(dataset.Noise{Rate: cfg.ErrRate, TypoFrac: cfg.TypoFrac, Seed: cfg.Seed})
		for _, kbName := range dataset.KBNames {
			dr, err := RunDR(&b.Dataset, b.KB(kbName), inj, true)
			if err != nil {
				return nil, err
			}
			kat, err := RunKATARA(&b.Dataset, b.KB(kbName), inj)
			if err != nil {
				return nil, err
			}
			out = append(out,
				QualityRow{mk.name, "DRs", kbName, dr.Metrics.Precision(), dr.Metrics.Recall(), dr.Metrics.F1(), dr.Metrics.POS},
				QualityRow{mk.name, "KATARA", kbName, kat.Metrics.Precision(), kat.Metrics.Recall(), kat.Metrics.F1(), kat.Metrics.POS})
		}
	}
	return out, nil
}

// ------------------------------------------------------------ Figures 6/7

// CurvePoint is one x-position of a quality curve.
type CurvePoint struct {
	X       float64
	P, R, F float64
}

// Curve is one (dataset, system) line of Figures 6 or 7.
type Curve struct {
	Dataset string
	System  string
	Points  []CurvePoint
}

// qualitySweep runs the Exp-2 systems over one noise axis.
func qualitySweep(b *dataset.Bundle, noises []dataset.Noise, xs []float64) ([]Curve, error) {
	systems := []string{"bRepair(Yago)", "bRepair(DBpedia)", "Llunatic", "constant CFDs"}
	curves := make([]Curve, len(systems))
	for i, s := range systems {
		curves[i] = Curve{Dataset: b.Name, System: s}
	}
	for i, noise := range noises {
		inj := b.Inject(noise)
		// bRepair and fRepair compute identical repairs; the sweep uses
		// the fast engine so paper-scale configs stay tractable.
		y, err := RunDR(&b.Dataset, b.Yago, inj, true)
		if err != nil {
			return nil, err
		}
		d, err := RunDR(&b.Dataset, b.DBpedia, inj, true)
		if err != nil {
			return nil, err
		}
		l, err := RunLlunatic(&b.Dataset, inj)
		if err != nil {
			return nil, err
		}
		c, err := RunCFD(&b.Dataset, inj)
		if err != nil {
			return nil, err
		}
		for k, r := range []RunResult{y, d, l, c} {
			m := r.Metrics
			curves[k].Points = append(curves[k].Points,
				CurvePoint{X: xs[i], P: m.Precision(), R: m.Recall(), F: m.F1()})
		}
	}
	return curves, nil
}

// Figure6 varies the error rate (typo/semantic fixed at 50/50) on
// Nobel and UIS.
func Figure6(cfg ExpConfig) ([]Curve, error) {
	var out []Curve
	for _, b := range []*dataset.Bundle{
		dataset.NewNobel(cfg.Seed, cfg.NobelTuples),
		dataset.NewUIS(cfg.Seed, cfg.UISTuples),
	} {
		var noises []dataset.Noise
		var xs []float64
		for _, rate := range cfg.Rates {
			noises = append(noises, dataset.Noise{Rate: rate, TypoFrac: 0.5, Seed: cfg.Seed})
			xs = append(xs, rate*100)
		}
		cs, err := qualitySweep(b, noises, xs)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
	}
	return out, nil
}

// Figure7 fixes the error rate at cfg.ErrRate and varies the typo
// percentage from 0 to 100 on Nobel and UIS.
func Figure7(cfg ExpConfig) ([]Curve, error) {
	var out []Curve
	for _, b := range []*dataset.Bundle{
		dataset.NewNobel(cfg.Seed, cfg.NobelTuples),
		dataset.NewUIS(cfg.Seed, cfg.UISTuples),
	} {
		var noises []dataset.Noise
		var xs []float64
		for _, tf := range cfg.TypoRates {
			noises = append(noises, dataset.Noise{Rate: cfg.ErrRate, TypoFrac: tf, Seed: cfg.Seed})
			xs = append(xs, tf*100)
		}
		cs, err := qualitySweep(b, noises, xs)
		if err != nil {
			return nil, err
		}
		out = append(out, cs...)
	}
	return out, nil
}

// -------------------------------------------------------------- Figure 8

// TimePoint is one x-position of an efficiency curve.
type TimePoint struct {
	X       float64
	Seconds float64
}

// TimeCurve is one line of Figure 8.
type TimeCurve struct {
	Label  string
	Points []TimePoint
}

// timeRepair measures repairing every tuple of inj with the engine,
// averaged over repeats runs (the paper averaged six). Matching the
// paper's protocol for Figure 8(a)-(c), the engine is warmed first so
// KB reading/handling time is excluded.
func timeRepair(e *repair.Engine, inj *dataset.Injected, fast bool, repeats int) time.Duration {
	if repeats < 1 {
		repeats = 1
	}
	e.Warm()
	var total time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		e.RepairTable(inj.Dirty, fast)
		total += time.Since(start)
	}
	return total / time.Duration(repeats)
}

// Figure8a varies the number of rules (10..50 in steps of 10) on
// WebTables: total repair time of all 37 tables using the first k
// rules of the corpus-wide rule list.
func Figure8a(cfg ExpConfig) ([]TimeCurve, error) {
	wb := dataset.NewWebTables(cfg.Seed)

	// Corpus-wide rule order, deduplicated by rule name.
	var allRules []string
	seen := make(map[string]bool)
	for _, d := range wb.Tables {
		for _, r := range d.Rules {
			if !seen[r.Name] {
				seen[r.Name] = true
				allRules = append(allRules, r.Name)
			}
		}
	}

	injs := make([]*dataset.Injected, len(wb.Tables))
	for i, d := range wb.Tables {
		injs[i] = d.Inject(dataset.Noise{Rate: cfg.ErrRate, TypoFrac: cfg.WebTypoFrac,
			HardFrac: cfg.WebHardFrac, SwapFallback: true, Seed: cfg.Seed + int64(i)})
	}

	var curves []TimeCurve
	for _, kbName := range dataset.KBNames {
		for _, fast := range []bool{false, true} {
			label := fmt.Sprintf("%s(%s)", repairName(fast), kbName)
			var pts []TimePoint
			for k := 10; k <= len(allRules) && k <= 50; k += 10 {
				chosen := make(map[string]bool, k)
				for _, name := range allRules[:k] {
					chosen[name] = true
				}
				var total time.Duration
				for i, d := range wb.Tables {
					var rs []*rules.DR
					for _, r := range d.Rules {
						if chosen[r.Name] {
							rs = append(rs, r)
						}
					}
					if len(rs) == 0 {
						continue
					}
					e, err := repair.NewEngine(rs, wb.KB(kbName), d.Schema)
					if err != nil {
						return nil, err
					}
					total += timeRepair(e, injs[i], fast, cfg.Repeats)
				}
				pts = append(pts, TimePoint{X: float64(k), Seconds: total.Seconds()})
			}
			curves = append(curves, TimeCurve{Label: label, Points: pts})
		}
	}
	return curves, nil
}

// figure8Rules sweeps 1..len(rules) rule prefixes on one bundle.
func figure8Rules(b *dataset.Bundle, noise dataset.Noise, repeats int) ([]TimeCurve, error) {
	inj := b.Inject(noise)
	var curves []TimeCurve
	for _, kbName := range dataset.KBNames {
		for _, fast := range []bool{false, true} {
			label := fmt.Sprintf("%s(%s)", repairName(fast), kbName)
			var pts []TimePoint
			for k := 1; k <= len(b.Rules); k++ {
				e, err := repair.NewEngine(b.Rules[:k], b.KB(kbName), b.Schema)
				if err != nil {
					return nil, err
				}
				dur := timeRepair(e, inj, fast, repeats)
				pts = append(pts, TimePoint{X: float64(k), Seconds: dur.Seconds()})
			}
			curves = append(curves, TimeCurve{Label: label, Points: pts})
		}
	}
	return curves, nil
}

// Figure8b varies the number of rules on Nobel.
func Figure8b(cfg ExpConfig) ([]TimeCurve, error) {
	b := dataset.NewNobel(cfg.Seed, cfg.NobelTuples)
	return figure8Rules(b, dataset.Noise{Rate: cfg.ErrRate, TypoFrac: cfg.TypoFrac, Seed: cfg.Seed}, cfg.Repeats)
}

// Figure8c varies the number of rules on UIS (paper: 20K tuples).
func Figure8c(cfg ExpConfig) ([]TimeCurve, error) {
	b := dataset.NewUIS(cfg.Seed, cfg.Fig8UISSize)
	return figure8Rules(b, dataset.Noise{Rate: cfg.ErrRate, TypoFrac: cfg.TypoFrac, Seed: cfg.Seed}, cfg.Repeats)
}

// Figure8d varies the number of UIS tuples and compares all systems.
// Unlike 8(a)-(c), KB reading/handling time (engine construction and
// index warm-up) is *included*, matching the paper.
func Figure8d(cfg ExpConfig) ([]TimeCurve, error) {
	labels := []string{
		"bRepair(Yago)", "fRepair(Yago)", "bRepair(DBpedia)", "fRepair(DBpedia)",
		"KATARA(Yago)", "KATARA(DBpedia)", "Llunatic", "constant CFDs",
	}
	curves := make([]TimeCurve, len(labels))
	for i, l := range labels {
		curves[i] = TimeCurve{Label: l}
	}
	for _, n := range cfg.Fig8Tuples {
		b := dataset.NewUIS(cfg.Seed, n)
		inj := b.Inject(dataset.Noise{Rate: cfg.ErrRate, TypoFrac: cfg.TypoFrac, Seed: cfg.Seed})
		x := float64(n)

		for _, kbName := range dataset.KBNames {
			for _, fast := range []bool{false, true} {
				start := time.Now()
				e, err := repair.NewEngine(b.Rules, b.KB(kbName), b.Schema)
				if err != nil {
					return nil, err
				}
				e.Warm()
				e.RepairTable(inj.Dirty, fast)
				sec := time.Since(start).Seconds()
				pos := posOf(kbName, fast)
				curves[pos].Points = append(curves[pos].Points, TimePoint{X: x, Seconds: sec})
			}
		}
		for _, kbName := range dataset.KBNames {
			start := time.Now()
			s, err := katara.New(b.Pattern, b.KB(kbName), b.Schema)
			if err != nil {
				return nil, err
			}
			s.CleanTable(inj.Dirty)
			sec := time.Since(start).Seconds()
			pos := 4
			if kbName == "DBpedia" {
				pos = 5
			}
			curves[pos].Points = append(curves[pos].Points, TimePoint{X: x, Seconds: sec})
		}
		if r, err := RunLlunatic(&b.Dataset, inj); err != nil {
			return nil, err
		} else {
			curves[6].Points = append(curves[6].Points, TimePoint{X: x, Seconds: r.Duration.Seconds()})
		}
		if r, err := RunCFD(&b.Dataset, inj); err != nil {
			return nil, err
		} else {
			curves[7].Points = append(curves[7].Points, TimePoint{X: x, Seconds: r.Duration.Seconds()})
		}
	}
	return curves, nil
}

func posOf(kbName string, fast bool) int {
	p := 0
	if kbName == "DBpedia" {
		p = 2
	}
	if fast {
		p++
	}
	return p
}

func repairName(fast bool) string {
	if fast {
		return "fRepair"
	}
	return "bRepair"
}
