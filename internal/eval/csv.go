package eval

import (
	"encoding/csv"
	"fmt"
	"io"
)

// CSV exports of the experiment results, in long (tidy) format so the
// paper's figures can be re-plotted directly with any tool.

// AlignCSV writes Table II rows as CSV.
func AlignCSV(w io.Writer, rows []AlignRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "kb", "classes", "relations"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Dataset, r.KB,
			fmt.Sprint(r.Classes), fmt.Sprint(r.Relations)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// QualityCSV writes Table III rows as CSV.
func QualityCSV(w io.Writer, rows []QualityRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "system", "kb", "precision", "recall", "f1", "pos"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Dataset, r.System, r.KB,
			fmt.Sprintf("%.4f", r.P), fmt.Sprintf("%.4f", r.R),
			fmt.Sprintf("%.4f", r.F), fmt.Sprint(r.POS)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CurvesCSV writes Figure 6/7 curves as tidy CSV (one row per point).
func CurvesCSV(w io.Writer, curves []Curve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "system", "x", "precision", "recall", "f1"}); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			if err := cw.Write([]string{c.Dataset, c.System,
				fmt.Sprintf("%g", p.X), fmt.Sprintf("%.4f", p.P),
				fmt.Sprintf("%.4f", p.R), fmt.Sprintf("%.4f", p.F)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// TimeCurvesCSV writes Figure 8 curves as tidy CSV.
func TimeCurvesCSV(w io.Writer, curves []TimeCurve) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"system", "x", "seconds"}); err != nil {
		return err
	}
	for _, c := range curves {
		for _, p := range c.Points {
			if err := cw.Write([]string{c.Label,
				fmt.Sprintf("%g", p.X), fmt.Sprintf("%.6f", p.Seconds)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExtensionCSV writes the negative-path ablation as CSV.
func ExtensionCSV(w io.Writer, rows []ExtensionRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"variant", "kb", "precision", "recall", "f1"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{r.Variant, r.KB,
			fmt.Sprintf("%.4f", r.P), fmt.Sprintf("%.4f", r.R), fmt.Sprintf("%.4f", r.F)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
