package eval

import (
	"detective/internal/dataset"
	"detective/internal/rules"
)

// ExtensionRow compares the baseline UIS rule set against the
// negative-path variant of the Zip rule (the §II-C path extension):
// with only a single negative node, a Zip holding the birth city's
// zip code is undetectable; the two-hop negative path recovers it.
type ExtensionRow struct {
	Variant string
	KB      string
	P, R, F float64
}

// ExtensionPathRule runs the ablation on UIS at cfg scale.
func ExtensionPathRule(cfg ExpConfig) ([]ExtensionRow, error) {
	b := dataset.NewUIS(cfg.Seed, cfg.UISTuples)
	inj := b.Inject(dataset.Noise{Rate: cfg.ErrRate, TypoFrac: cfg.TypoFrac, Seed: cfg.Seed})

	// Swap the plain uis_zip rule for the path variant.
	var withPath []*rules.DR
	for _, r := range b.Rules {
		if r.Name == "uis_zip" {
			withPath = append(withPath, dataset.UISZipPathRule())
		} else {
			withPath = append(withPath, r)
		}
	}

	var out []ExtensionRow
	for _, kbName := range dataset.KBNames {
		base, err := RunDR(&b.Dataset, b.KB(kbName), inj, true)
		if err != nil {
			return nil, err
		}
		out = append(out, ExtensionRow{Variant: "single negative node", KB: kbName,
			P: base.Metrics.Precision(), R: base.Metrics.Recall(), F: base.Metrics.F1()})

		pathDS := b.Dataset
		pathDS.Rules = withPath
		ext, err := RunDR(&pathDS, b.KB(kbName), inj, true)
		if err != nil {
			return nil, err
		}
		out = append(out, ExtensionRow{Variant: "negative path (§II-C ext.)", KB: kbName,
			P: ext.Metrics.Precision(), R: ext.Metrics.Recall(), F: ext.Metrics.F1()})
	}
	return out, nil
}
