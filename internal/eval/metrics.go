// Package eval implements the paper's evaluation harness (§V):
// cell-level precision / recall / F-measure, the #-POS annotation
// count, per-system runners, and drivers that regenerate every table
// and figure of the evaluation section.
package eval

import (
	"detective/internal/kb"
	"detective/internal/llunatic"
	"detective/internal/relation"
)

// Metrics aggregates repair-quality counts. Precision is the ratio of
// correctly repaired attribute values to all repaired values; recall
// the ratio of correctly repaired values to all erroneous values;
// F-measure their harmonic mean (§V-A "Measuring Quality").
// CorrectRepairs is fractional because a cell repaired to a llun
// counts 0.5 (Llunatic's "metric 0.5").
type Metrics struct {
	Repaired       int
	CorrectRepairs float64
	Errors         int
	POS            int
}

// Add accumulates other into m (used to aggregate over the 37 Web
// tables).
func (m *Metrics) Add(o Metrics) {
	m.Repaired += o.Repaired
	m.CorrectRepairs += o.CorrectRepairs
	m.Errors += o.Errors
	m.POS += o.POS
}

// Precision returns correct/repaired (1 when nothing was repaired:
// no wrong repairs were made).
func (m Metrics) Precision() float64 {
	if m.Repaired == 0 {
		return 1
	}
	return m.CorrectRepairs / float64(m.Repaired)
}

// Recall returns correct/errors (1 when there were no errors).
func (m Metrics) Recall() float64 {
	if m.Errors == 0 {
		return 1
	}
	return m.CorrectRepairs / float64(m.Errors)
}

// F1 returns the harmonic mean of precision and recall.
func (m Metrics) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ScoreOpts tunes Score.
type ScoreOpts struct {
	// Scope restricts accounting to the given rows (nil = all rows).
	// The paper evaluates "the tuples whose value in key attribute
	// have corresponding entities in KBs"; use KeyScope to build this.
	Scope []bool
	// LlunPartial counts cells repaired to the llunatic.Llun variable
	// as 0.5 correct when the cell was indeed erroneous.
	LlunPartial bool
	// Alternatives maps repaired cells to their full multi-version
	// candidate list; a repair counts as correct when any version
	// matches the ground truth (the paper's multi-version accounting,
	// §V-A "Detective Rules").
	Alternatives map[[2]int][]string
}

// Score compares a system's output against ground truth at the cell
// level. wrong maps corrupted cells to their true values (from the
// noise injector); POS is not filled here (it depends on the system —
// see the runners).
func Score(truth, dirty, repaired *relation.Table, wrong map[[2]int]string, opts ScoreOpts) Metrics {
	var m Metrics
	inScope := func(row int) bool { return opts.Scope == nil || opts.Scope[row] }
	for cell, truthVal := range wrong {
		if inScope(cell[0]) {
			m.Errors++
			_ = truthVal
		}
	}
	for i := range repaired.Tuples {
		if !inScope(i) {
			continue
		}
		for j := range repaired.Tuples[i].Values {
			got := repaired.Tuples[i].Values[j]
			if got == dirty.Tuples[i].Values[j] {
				continue // not repaired
			}
			m.Repaired++
			want := truth.Tuples[i].Values[j]
			switch {
			case got == want:
				m.CorrectRepairs++
			case opts.LlunPartial && got == llunatic.Llun:
				if _, wasError := wrong[[2]int{i, j}]; wasError {
					m.CorrectRepairs += 0.5
				}
			default:
				for _, alt := range opts.Alternatives[[2]int{i, j}] {
					if alt == want {
						m.CorrectRepairs++
						break
					}
				}
			}
		}
	}
	return m
}

// KeyScope returns the per-row eligibility mask: a row is in scope
// when its key-attribute value (in the dirty table, i.e. as the
// cleaning system sees it) resolves to a KB instance of the key type.
func KeyScope(dirty *relation.Table, g *kb.Graph, keyAttr, keyType string) []bool {
	col := dirty.Schema.MustCol(keyAttr)
	cls := g.Lookup(keyType)
	out := make([]bool, dirty.Len())
	if cls == kb.Invalid {
		return out
	}
	for i, tu := range dirty.Tuples {
		id := g.Lookup(tu.Values[col])
		out[i] = id != kb.Invalid && g.HasType(id, cls)
	}
	return out
}

// MarkedInScope counts positively marked cells in scope rows (#-POS
// for detective rules).
func MarkedInScope(tb *relation.Table, scope []bool) int {
	n := 0
	for i, tu := range tb.Tuples {
		if scope == nil || scope[i] {
			n += tu.NumMarked()
		}
	}
	return n
}
