package eval_test

import (
	"testing"

	"detective/internal/dataset"
	"detective/internal/eval"
	"detective/internal/relation"
)

func TestMetricsMath(t *testing.T) {
	m := eval.Metrics{Repaired: 4, CorrectRepairs: 3, Errors: 6}
	if p := m.Precision(); p != 0.75 {
		t.Errorf("Precision = %v", p)
	}
	if r := m.Recall(); r != 0.5 {
		t.Errorf("Recall = %v", r)
	}
	if f := m.F1(); f != 0.6 {
		t.Errorf("F1 = %v", f)
	}
	empty := eval.Metrics{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty metrics must default to 1")
	}
	if (eval.Metrics{Errors: 1}).F1() != 0 {
		t.Error("zero-recall F1 must be 0 when precision+recall > 0 fails")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := eval.Metrics{Repaired: 1, CorrectRepairs: 1, Errors: 2, POS: 5}
	b := eval.Metrics{Repaired: 3, CorrectRepairs: 2, Errors: 4, POS: 7}
	a.Add(b)
	if a.Repaired != 4 || a.CorrectRepairs != 3 || a.Errors != 6 || a.POS != 12 {
		t.Errorf("Add = %+v", a)
	}
}

func TestScoreBasics(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B")
	truth := relation.NewTable(schema)
	truth.Append("x", "y")
	truth.Append("u", "v")

	dirty := truth.Clone()
	dirty.SetCell(0, "B", "WRONG")
	dirty.SetCell(1, "A", "ALSO-WRONG")
	wrong := map[[2]int]string{{0, 1}: "y", {1, 0}: "u"}

	repaired := dirty.Clone()
	repaired.SetCell(0, "B", "y")    // correct repair
	repaired.SetCell(1, "B", "OOPS") // wrong repair of a clean cell

	m := eval.Score(truth, dirty, repaired, wrong, eval.ScoreOpts{})
	if m.Repaired != 2 || m.CorrectRepairs != 1 || m.Errors != 2 {
		t.Fatalf("Score = %+v", m)
	}

	// Scope excludes row 1 entirely.
	m = eval.Score(truth, dirty, repaired, wrong, eval.ScoreOpts{Scope: []bool{true, false}})
	if m.Repaired != 1 || m.CorrectRepairs != 1 || m.Errors != 1 {
		t.Fatalf("scoped Score = %+v", m)
	}
}

func TestScoreLlunPartial(t *testing.T) {
	schema := relation.NewSchema("R", "A")
	truth := relation.NewTable(schema)
	truth.Append("x")
	dirty := truth.Clone()
	dirty.SetCell(0, "A", "bad")
	repaired := dirty.Clone()
	repaired.SetCell(0, "A", "⊥")
	wrong := map[[2]int]string{{0, 0}: "x"}

	m := eval.Score(truth, dirty, repaired, wrong, eval.ScoreOpts{LlunPartial: true})
	if m.CorrectRepairs != 0.5 || m.Repaired != 1 {
		t.Fatalf("llun Score = %+v", m)
	}
	// Without the option, a llun is just a wrong repair.
	m = eval.Score(truth, dirty, repaired, wrong, eval.ScoreOpts{})
	if m.CorrectRepairs != 0 {
		t.Fatalf("non-llun Score = %+v", m)
	}
}

func TestNobelEndToEndShape(t *testing.T) {
	// The headline claim of Table III on a reduced Nobel: precision 1
	// (or very near), recall clearly above 0.5 on Yago, and Yago
	// strictly better than DBpedia on recall and #-POS.
	b := dataset.NewNobel(7, 400)
	inj := b.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 99})
	if inj.Typos == 0 || inj.Semantics == 0 {
		t.Fatalf("injection produced typos=%d semantics=%d", inj.Typos, inj.Semantics)
	}

	yago, err := eval.RunDR(&b.Dataset, b.Yago, inj, true)
	if err != nil {
		t.Fatal(err)
	}
	dbp, err := eval.RunDR(&b.Dataset, b.DBpedia, inj, true)
	if err != nil {
		t.Fatal(err)
	}

	if p := yago.Metrics.Precision(); p < 0.97 {
		t.Errorf("Yago precision = %v, want ~1", p)
	}
	if r := yago.Metrics.Recall(); r < 0.5 || r > 0.95 {
		t.Errorf("Yago recall = %v, want a Table III-like band", r)
	}
	if dbp.Metrics.Recall() >= yago.Metrics.Recall() {
		t.Errorf("recall: DBpedia %v >= Yago %v, want Yago higher on Nobel",
			dbp.Metrics.Recall(), yago.Metrics.Recall())
	}
	if dbp.Metrics.POS >= yago.Metrics.POS {
		t.Errorf("#-POS: DBpedia %d >= Yago %d", dbp.Metrics.POS, yago.Metrics.POS)
	}
}

func TestNobelDRBeatsKATARAOnF1(t *testing.T) {
	b := dataset.NewNobel(7, 400)
	inj := b.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 99})
	dr, err := eval.RunDR(&b.Dataset, b.Yago, inj, true)
	if err != nil {
		t.Fatal(err)
	}
	kat, err := eval.RunKATARA(&b.Dataset, b.Yago, inj)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Metrics.F1() <= kat.Metrics.F1() {
		t.Errorf("F1: DR %v <= KATARA %v, want DR higher (Table III)",
			dr.Metrics.F1(), kat.Metrics.F1())
	}
	if dr.Metrics.POS <= kat.Metrics.POS {
		t.Errorf("#-POS: DR %d <= KATARA %d, want DR higher", dr.Metrics.POS, kat.Metrics.POS)
	}
	if kat.Metrics.Precision() >= dr.Metrics.Precision() {
		t.Errorf("precision: KATARA %v >= DR %v", kat.Metrics.Precision(), dr.Metrics.Precision())
	}
}

func TestBaselinesRunOnNobel(t *testing.T) {
	b := dataset.NewNobel(7, 400)
	inj := b.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 99})
	llu, err := eval.RunLlunatic(&b.Dataset, inj)
	if err != nil {
		t.Fatal(err)
	}
	cfdRes, err := eval.RunCFD(&b.Dataset, inj)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := eval.RunDR(&b.Dataset, b.Yago, inj, true)
	if err != nil {
		t.Fatal(err)
	}
	// Exp-2's summary: DRs are more effective than IC-based cleaning.
	if dr.Metrics.F1() <= llu.Metrics.F1() {
		t.Errorf("F1: DR %v <= Llunatic %v", dr.Metrics.F1(), llu.Metrics.F1())
	}
	if dr.Metrics.F1() <= cfdRes.Metrics.F1() {
		t.Errorf("F1: DR %v <= CFD %v", dr.Metrics.F1(), cfdRes.Metrics.F1())
	}
}

func TestUISEndToEndShape(t *testing.T) {
	b := dataset.NewUIS(11, 2000)
	inj := b.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, Seed: 5})
	yago, err := eval.RunDR(&b.Dataset, b.Yago, inj, true)
	if err != nil {
		t.Fatal(err)
	}
	dbp, err := eval.RunDR(&b.Dataset, b.DBpedia, inj, true)
	if err != nil {
		t.Fatal(err)
	}
	if p := yago.Metrics.Precision(); p < 0.97 {
		t.Errorf("UIS Yago precision = %v", p)
	}
	if r := yago.Metrics.Recall(); r < 0.5 {
		t.Errorf("UIS Yago recall = %v, want > 0.5", r)
	}
	if dbp.Metrics.Recall() >= yago.Metrics.Recall() {
		t.Errorf("UIS recall: DBpedia %v >= Yago %v", dbp.Metrics.Recall(), yago.Metrics.Recall())
	}
}

func TestWebTablesEndToEndShape(t *testing.T) {
	wb := dataset.NewWebTables(23)
	if len(wb.Tables) != 37 {
		t.Fatalf("generated %d web tables, want 37", len(wb.Tables))
	}
	var yago, dbp eval.Metrics
	for i, d := range wb.Tables {
		// WebTables are "dirty originally": a large share of hard,
		// untrustworthy errors (HardFrac) models real Web-table dirt.
		inj := d.Inject(dataset.Noise{Rate: 0.10, TypoFrac: 0.5, HardFrac: 0.7, Seed: int64(i)})
		ry, err := eval.RunDR(d, wb.Yago, inj, true)
		if err != nil {
			t.Fatal(err)
		}
		yago.Add(ry.Metrics)
		rd, err := eval.RunDR(d, wb.DBpedia, inj, true)
		if err != nil {
			t.Fatal(err)
		}
		dbp.Add(rd.Metrics)
	}
	if p := yago.Precision(); p < 0.95 {
		t.Errorf("WebTables Yago precision = %v", p)
	}
	// Annotation-only tables cap recall well below Nobel/UIS levels,
	// and DBpedia (more domains covered) beats Yago here.
	if r := yago.Recall(); r > 0.6 {
		t.Errorf("WebTables Yago recall = %v, want the conservative (low) regime", r)
	}
	if dbp.Recall() <= yago.Recall() {
		t.Errorf("WebTables recall: DBpedia %v <= Yago %v, want DBpedia higher", dbp.Recall(), yago.Recall())
	}
}

// newTinyNobel builds a small Nobel bundle shared by format/scope tests.
func newTinyNobel(t *testing.T) *dataset.Bundle {
	t.Helper()
	return dataset.NewNobel(7, 60)
}

func TestTableIIShape(t *testing.T) {
	cfg := eval.DefaultConfig()
	cfg.NobelTuples, cfg.UISTuples = 80, 120
	rows := eval.TableII(cfg)
	if len(rows) != 6 {
		t.Fatalf("TableII = %d rows", len(rows))
	}
	byKey := make(map[string]eval.AlignRow)
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.KB] = r
		if r.Classes <= 0 || r.Relations <= 0 {
			t.Errorf("%s/%s: zero alignment", r.Dataset, r.KB)
		}
	}
	if byKey["WebTables/Yago"].Classes <= byKey["Nobel/Yago"].Classes {
		t.Error("WebTables must align far more classes than Nobel")
	}
	if byKey["WebTables/DBpedia"].Classes <= byKey["WebTables/Yago"].Classes {
		t.Error("DBpedia must align more WebTables classes than Yago")
	}
	if byKey["UIS/DBpedia"].Relations >= byKey["UIS/Yago"].Relations {
		t.Error("DBpedia must align fewer UIS relations (no bornInState)")
	}
}

func TestExtensionPathRuleImprovesRecall(t *testing.T) {
	cfg := eval.DefaultConfig()
	cfg.UISTuples = 800
	rows, err := eval.ExtensionPathRule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	// Per KB: path variant strictly improves recall at precision 1.
	for i := 0; i < len(rows); i += 2 {
		base, ext := rows[i], rows[i+1]
		if ext.R <= base.R {
			t.Errorf("%s: path recall %v <= base %v", base.KB, ext.R, base.R)
		}
		if ext.P < 0.97 {
			t.Errorf("%s: path precision dropped to %v", base.KB, ext.P)
		}
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	cfg := eval.DefaultConfig()
	cfg.NobelTuples, cfg.UISTuples = 120, 150
	a, err := eval.TableIII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eval.TableIII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestFigureDriversAtTinyScale exercises every figure driver end to
// end (the benchmarks do too, but `go test` alone should cover them).
func TestFigureDriversAtTinyScale(t *testing.T) {
	cfg := eval.DefaultConfig()
	cfg.NobelTuples = 60
	cfg.UISTuples = 80
	cfg.Rates = []float64{0.05, 0.15}
	cfg.TypoRates = []float64{0, 1}
	cfg.Fig8Tuples = []int{50, 100}
	cfg.Fig8UISSize = 60
	cfg.Repeats = 2

	f6, err := eval.Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 4 systems, 2 points each.
	if len(f6) != 8 {
		t.Fatalf("Figure6 curves = %d", len(f6))
	}
	for _, c := range f6 {
		if len(c.Points) != 2 {
			t.Fatalf("curve %s/%s has %d points", c.Dataset, c.System, len(c.Points))
		}
		for _, p := range c.Points {
			if p.P < 0 || p.P > 1 || p.R < 0 || p.R > 1 {
				t.Fatalf("out-of-range metrics: %+v", p)
			}
		}
	}

	f7, err := eval.Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7) != 8 {
		t.Fatalf("Figure7 curves = %d", len(f7))
	}

	for name, run := range map[string]func(eval.ExpConfig) ([]eval.TimeCurve, error){
		"fig8a": eval.Figure8a, "fig8b": eval.Figure8b,
		"fig8c": eval.Figure8c, "fig8d": eval.Figure8d,
	} {
		curves, err := run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(curves) == 0 {
			t.Fatalf("%s: no curves", name)
		}
		for _, c := range curves {
			if len(c.Points) == 0 {
				t.Fatalf("%s: curve %s empty", name, c.Label)
			}
			for _, p := range c.Points {
				if p.Seconds < 0 {
					t.Fatalf("%s: negative time %v", name, p)
				}
			}
		}
	}
}
