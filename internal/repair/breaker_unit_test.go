package repair

import (
	"sync"
	"testing"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/similarity"
)

func testBreaker(o BreakerOptions) *breaker {
	b := &breaker{}
	b.init(o.withDefaults())
	return b
}

// In-package copies of the hot-swap fixtures (the repair_test ones are
// not visible here): Alice lives in ParisA and is a citizen of EuroA.
var testSwapSchema = relation.NewSchema("people", "Name", "City", "Country")

func newTestSwapStore() *kb.Store {
	g := kb.New()
	g.AddType("Alice", "person")
	g.AddType("ParisA", "city")
	g.AddType("EuroA", "country")
	g.AddTriple("Alice", "livesIn", "ParisA")
	g.AddTriple("Alice", "citizenOf", "EuroA")
	return kb.NewStore(g)
}

func testSwapRules() []*rules.DR {
	ed2 := similarity.Spec{Op: similarity.OpED, K: 2}
	return []*rules.DR{
		{
			Name:     "fix-city",
			Evidence: []rules.Node{{Name: "e", Col: "Name", Type: "person", Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: "City", Type: "city", Sim: ed2},
			Edges:    []rules.Edge{{From: "e", Rel: "livesIn", To: "p"}},
		},
		{
			Name:     "fix-country",
			Evidence: []rules.Node{{Name: "e", Col: "Name", Type: "person", Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: "Country", Type: "country", Sim: ed2},
			Edges:    []rules.Edge{{From: "e", Rel: "citizenOf", To: "p"}},
		},
	}
}

func newTestRowTuple() *relation.Tuple {
	return &relation.Tuple{Values: make([]string, 3), Marked: make([]bool, 3)}
}

// TestBreakerStateMachine walks the full lifecycle: closed under good
// traffic, tripped by a bad-rate storm, detect-only through the
// cooldown, half-open with exactly one probe token, reopened by a
// failed probe, and finally closed by a successful one with the
// pre-trip window history cleared.
func TestBreakerStateMachine(t *testing.T) {
	b := testBreaker(BreakerOptions{Window: 8, MinSamples: 4, TripRatio: 0.5, CooldownRows: 3})

	// Healthy traffic keeps it closed.
	for i := 0; i < 10; i++ {
		if d, p := b.admit(); d || p {
			t.Fatalf("closed breaker degraded traffic: degrade=%v probe=%v", d, p)
		}
		b.record(false)
	}
	if got := b.state.Load(); got != breakerClosed {
		t.Fatalf("state = %s after good traffic", breakerStateName(got))
	}

	// A storm of bad outcomes trips it once the bad rate outvotes the
	// good history still in the sliding window.
	for i := 0; i < 6; i++ {
		b.record(true)
	}
	if got := b.state.Load(); got != breakerOpen {
		t.Fatalf("state = %s after storm, want open", breakerStateName(got))
	}
	if b.trips.Load() != 1 {
		t.Fatalf("trips = %d, want 1", b.trips.Load())
	}

	// Open: every admit degrades until the cooldown elapses.
	for i := 0; i < 3; i++ {
		if d, p := b.admit(); !d || p {
			t.Fatalf("open admit %d: degrade=%v probe=%v", i, d, p)
		}
	}
	if got := b.state.Load(); got != breakerHalfOpen {
		t.Fatalf("state = %s after cooldown, want half-open", breakerStateName(got))
	}

	// Half-open: exactly one probe token, everyone else degrades.
	d, p := b.admit()
	if d || !p {
		t.Fatalf("first half-open admit: degrade=%v probe=%v, want probe", d, p)
	}
	if d, p := b.admit(); !d || p {
		t.Fatalf("second half-open admit: degrade=%v probe=%v, want degrade", d, p)
	}

	// The probe fails: reopen and cool down again.
	b.resolveProbe(true)
	if got := b.state.Load(); got != breakerOpen {
		t.Fatalf("state = %s after failed probe, want open", breakerStateName(got))
	}
	if b.reopens.Load() != 1 {
		t.Fatalf("reopens = %d, want 1", b.reopens.Load())
	}
	for i := 0; i < 3; i++ {
		b.admit()
	}
	if d, p := b.admit(); d || !p {
		t.Fatalf("second probe not granted: degrade=%v probe=%v", d, p)
	}

	// The probe succeeds: closed, and the storm's window history must
	// not immediately re-trip.
	b.resolveProbe(false)
	if got := b.state.Load(); got != breakerClosed {
		t.Fatalf("state = %s after good probe, want closed", breakerStateName(got))
	}
	if b.recoveries.Load() != 1 {
		t.Fatalf("recoveries = %d, want 1", b.recoveries.Load())
	}
	if total, bad := b.windowCounts(); total != 0 || bad != 0 {
		t.Fatalf("windows not cleared on recovery: total=%d bad=%d", total, bad)
	}
	b.record(true) // one bad sample alone must not trip (MinSamples)
	if got := b.state.Load(); got != breakerClosed {
		t.Fatalf("re-tripped on pre-MinSamples history: %s", breakerStateName(got))
	}
}

// TestBreakerMinSamples: a 100% bad rate below MinSamples must not
// trip — a single early quarantine is not an incident.
func TestBreakerMinSamples(t *testing.T) {
	b := testBreaker(BreakerOptions{Window: 16, MinSamples: 8, TripRatio: 0.25, CooldownRows: 4})
	for i := 0; i < 7; i++ {
		b.record(true)
	}
	if got := b.state.Load(); got != breakerClosed {
		t.Fatalf("tripped below MinSamples: %s", breakerStateName(got))
	}
	b.record(true)
	if got := b.state.Load(); got != breakerOpen {
		t.Fatalf("did not trip at MinSamples: %s", breakerStateName(got))
	}
}

// TestBreakerWindowSlides: bad samples age out as full windows rotate,
// so an old burst cannot trip the breaker after sustained recovery.
func TestBreakerWindowSlides(t *testing.T) {
	b := testBreaker(BreakerOptions{Window: 8, MinSamples: 4, TripRatio: 0.5, CooldownRows: 4})
	// 3 bad samples: under MinSamples, stays closed.
	for i := 0; i < 3; i++ {
		b.record(true)
	}
	// Two full windows of good traffic rotate the bad burst out.
	for i := 0; i < 16; i++ {
		b.record(false)
	}
	if _, bad := b.windowCounts(); bad != 0 {
		t.Fatalf("old bad samples still visible: bad=%d", bad)
	}
	// A fresh sub-threshold dribble of bad outcomes must not trip.
	for i := 0; i < 3; i++ {
		b.record(true)
	}
	if got := b.state.Load(); got != breakerClosed {
		t.Fatalf("tripped on aged-out history: %s", breakerStateName(got))
	}
}

// TestBreakerConcurrent hammers admit/record/resolve from many
// goroutines; run under -race this proves the lock-free window and
// state transitions are data-race free. Only the goroutine holding
// the probe token resolves it, matching the engine's contract.
func TestBreakerConcurrent(t *testing.T) {
	b := testBreaker(BreakerOptions{Window: 32, MinSamples: 16, TripRatio: 0.5, CooldownRows: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				degrade, probe := b.admit()
				switch {
				case probe:
					b.resolveProbe(i%2 == 0)
				case !degrade:
					b.record((i+w)%3 == 0)
				}
			}
		}()
	}
	wg.Wait()
	total, bad := b.windowCounts()
	if total < 0 || bad < 0 || bad > total {
		t.Fatalf("inconsistent window counts: total=%d bad=%d", total, bad)
	}
	if s := b.state.Load(); s != breakerClosed && s != breakerOpen && s != breakerHalfOpen {
		t.Fatalf("invalid state %d", s)
	}
}

// TestBreakerPerRuleDegradeAndRecover forces one rule's breaker open
// by hand and checks the engine keeps repairing with the other rule,
// then heals the broken one through its half-open probe.
func TestBreakerPerRuleDegradeAndRecover(t *testing.T) {
	store := newTestSwapStore()
	e, err := NewEngineStore(testSwapRules(), store, testSwapSchema, Options{
		MemoDisabled: true,
		Breaker:      BreakerOptions{Enabled: true, PerRule: true, Window: 8, MinSamples: 4, TripRatio: 0.5, CooldownRows: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cityRule := 0
	if e.Graph.Rules[cityRule].Name != "fix-city" {
		t.Fatalf("rule 0 = %q, want fix-city", e.Graph.Rules[cityRule].Name)
	}

	dst := newTestRowTuple()
	rec := []string{"Alice", "ParisX", "EuroX"}
	if oc, _ := e.RepairRow(dst, rec); oc != RowRepaired || dst.Values[1] != "ParisA" || dst.Values[2] != "EuroA" {
		t.Fatalf("baseline repair = %v %v", oc, dst.Values)
	}

	// Force fix-city's breaker open: the city column must pass through
	// unrepaired while the country column still repairs.
	rb := &e.ruleBreakers[cityRule]
	rb.state.Store(breakerOpen)
	if oc, _ := e.RepairRow(dst, rec); oc != RowRepaired {
		t.Fatalf("degraded-rule repair outcome = %v", oc)
	}
	if dst.Values[1] != "ParisX" || dst.Values[2] != "EuroA" {
		t.Fatalf("per-rule isolation broken: %v, want city original + country repaired", dst.Values)
	}
	if stats := e.BreakerStats(); len(stats.OpenRules) != 1 || stats.OpenRules[0] != "fix-city" {
		t.Fatalf("OpenRules = %v, want [fix-city]", stats.OpenRules)
	}

	// Cooldown (2 admits) then the half-open probe repairs the city
	// again and closes the rule's breaker.
	e.RepairRow(dst, rec)
	e.RepairRow(dst, rec)
	for i := 0; i < 4 && rb.state.Load() != breakerClosed; i++ {
		e.RepairRow(dst, rec)
	}
	if got := rb.state.Load(); got != breakerClosed {
		t.Fatalf("rule breaker state = %s after probes, want closed", breakerStateName(got))
	}
	if oc, _ := e.RepairRow(dst, rec); oc != RowRepaired || dst.Values[1] != "ParisA" {
		t.Fatalf("post-recovery repair = %v %v", oc, dst.Values)
	}
	if stats := e.BreakerStats(); len(stats.OpenRules) != 0 {
		t.Fatalf("OpenRules = %v after recovery, want none", stats.OpenRules)
	}
}
