package repair_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/faultinject"
	"detective/internal/repair"
)

// --- panic quarantine -------------------------------------------------

func TestFaultPanicQuarantineParallel(t *testing.T) {
	ex := dataset.NewPaperExample()
	poison := "POISON-NAME-77Q"
	dirty := ex.Dirty.Clone()
	dirty.SetCell(2, "Name", poison)

	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.PanicOnValue(poison)()

	out, stats, err := e.RepairTableContext(context.Background(), dirty, 4)
	if err != nil {
		t.Fatalf("RepairTableContext: %v", err)
	}
	if stats.Quarantined != 1 {
		t.Fatalf("stats.Quarantined = %d, want 1", stats.Quarantined)
	}
	if stats.Repaired != int64(dirty.Len()-1) {
		t.Fatalf("stats.Repaired = %d, want %d", stats.Repaired, dirty.Len()-1)
	}
	// The poisoned row passes through unchanged and unmarked.
	if !out.Tuples[2].EqualMarked(dirty.Tuples[2]) {
		t.Errorf("poisoned row was modified: %v", out.Tuples[2])
	}
	// The other rows of the same request are still cleaned.
	want := e.RepairTable(ex.Dirty, true)
	for _, i := range []int{0, 1, 3} {
		if !out.Tuples[i].EqualMarked(want.Tuples[i]) {
			t.Errorf("row %d: got %v, want %v", i, out.Tuples[i], want.Tuples[i])
		}
	}
	if got := e.Stats(); got.Quarantined != 1 {
		t.Errorf("engine lifetime Quarantined = %d, want 1", got.Quarantined)
	}
}

func TestFaultPanicQuarantineStream(t *testing.T) {
	ex := dataset.NewPaperExample()
	poison := "POISON-NAME-88S"
	dirty := ex.Dirty.Clone()
	dirty.SetCell(1, "Name", poison)

	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.PanicOnValue(poison)()

	var in, out bytes.Buffer
	if err := dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	res, err := e.CleanCSVStreamContext(context.Background(), &in, &out, false)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if res.Rows != dirty.Len() || res.Quarantined != 1 {
		t.Fatalf("res = %+v, want Rows=%d Quarantined=1", res, dirty.Len())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != dirty.Len()+1 {
		t.Fatalf("output has %d lines, want %d", len(lines), dirty.Len()+1)
	}
	// The poisoned row is emitted with its original values.
	if got, want := lines[2], strings.Join(dirty.Tuples[1].Values, ","); got != want {
		t.Errorf("poisoned row = %q, want %q", got, want)
	}
	// A non-poisoned row is still cleaned (r1's City Karcag -> Haifa).
	if !strings.Contains(lines[1], "Haifa") {
		t.Errorf("row 1 not cleaned: %q", lines[1])
	}
}

// --- step budget ------------------------------------------------------

func TestFaultStepBudgetDegradesToOriginal(t *testing.T) {
	ex := dataset.NewPaperExample()
	// Every dirty row of the running example needs more than one rule
	// application, so budget 1 forces the degrade path.
	e, err := repair.NewEngineWithOptions(ex.Rules, ex.KB, ex.Schema, repair.Options{StepBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	tu := ex.Dirty.Tuples[0]
	if got := e.FastRepair(tu); !got.EqualMarked(tu) {
		t.Errorf("fast: degraded tuple differs from original: %v", got)
	}
	if got := e.BasicRepair(tu); !got.EqualMarked(tu) {
		t.Errorf("basic: degraded tuple differs from original: %v", got)
	}
	repaired, steps := e.FastRepairExplain(tu)
	if !repaired.EqualMarked(tu) || len(steps) != 0 {
		t.Errorf("explain: degraded tuple changed or kept %d steps", len(steps))
	}
	if got := e.Stats(); got.BudgetExhausted < 3 {
		t.Errorf("BudgetExhausted = %d, want >= 3", got.BudgetExhausted)
	}

	// A generous budget repairs normally.
	full, err := repair.NewEngineWithOptions(ex.Rules, ex.KB, ex.Schema, repair.Options{StepBudget: 1000})
	if err != nil {
		t.Fatal(err)
	}
	def, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := full.FastRepair(tu), def.FastRepair(tu); !got.EqualMarked(want) {
		t.Errorf("budget 1000 changed the result: %v != %v", got, want)
	}
	if got := full.Stats(); got.BudgetExhausted != 0 {
		t.Errorf("generous budget exhausted %d times", got.BudgetExhausted)
	}
}

func TestFaultStepBudgetStream(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngineWithOptions(ex.Rules, ex.KB, ex.Schema, repair.Options{StepBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	var in, out bytes.Buffer
	if err := ex.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	res, err := e.CleanCSVStreamContext(context.Background(), &in, &out, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != ex.Dirty.Len() || res.BudgetExhausted != ex.Dirty.Len() {
		t.Fatalf("res = %+v, want all %d rows budget-exhausted", res, ex.Dirty.Len())
	}
	// Degraded rows are the original values, unmarked.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	for i, tu := range ex.Dirty.Tuples {
		if got, want := lines[i+1], strings.Join(tu.Values, ","); got != want {
			t.Errorf("row %d = %q, want original %q", i, got, want)
		}
	}
}

// --- cancellation -----------------------------------------------------

func TestFaultRepairTableContextCancel(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, stats, err := e.RepairTableContext(ctx, ex.Dirty, 2)
	var pe *repair.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err does not wrap context.Canceled: %v", err)
	}
	if pe.Done != int(stats.Repaired+stats.Quarantined+stats.BudgetExhausted) {
		t.Errorf("Done = %d, stats = %+v", pe.Done, stats)
	}
	// The partial table is complete and well-formed: unprocessed rows
	// pass through unchanged.
	if out.Len() != ex.Dirty.Len() {
		t.Fatalf("partial table has %d rows, want %d", out.Len(), ex.Dirty.Len())
	}
	for i, tu := range out.Tuples {
		if tu == nil {
			t.Fatalf("row %d is nil", i)
		}
	}
}

func TestFaultStreamCancelBeforeRows(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	var in, out bytes.Buffer
	if err := ex.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.CleanCSVStreamContext(ctx, &in, &out, false)
	var pe *repair.PartialError
	if !errors.As(err, &pe) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want *PartialError wrapping context.Canceled", err)
	}
	if res.Rows != 0 || pe.Done != 0 {
		t.Errorf("res.Rows = %d, Done = %d, want 0", res.Rows, pe.Done)
	}
	// The header was already validated and flushed; nothing else.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "Name,") {
		t.Errorf("partial output = %q, want header only", out.String())
	}
}

// --- chaotic I/O ------------------------------------------------------

// TestFaultStreamChaoticReader drives the cleaner through a reader
// that delivers 7-byte short reads and dies mid-way through the third
// data row: every previously cleaned row must already be flushed and
// counted.
func TestFaultStreamChaoticReader(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	if err := ex.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	data := in.Bytes()
	// Fail five bytes into the third data row.
	nl := 0
	cut := 0
	for i, b := range data {
		if b == '\n' {
			if nl++; nl == 3 { // header + two rows delivered intact
				cut = i + 1 + 5
				break
			}
		}
	}
	r := &faultinject.Reader{R: bytes.NewReader(data), Chunk: 7, FailAfter: int64(cut)}
	var out bytes.Buffer
	res, err := e.CleanCSVStreamContext(context.Background(), r, &out, false)
	var pe *repair.PartialError
	if !errors.As(err, &pe) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want *PartialError wrapping ErrInjected", err)
	}
	if res.Rows != 2 || pe.Done != 2 {
		t.Fatalf("res.Rows = %d, Done = %d, want 2", res.Rows, pe.Done)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("flushed output has %d lines, want header + 2 cleaned rows:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[1], "Haifa") {
		t.Errorf("row 1 was not cleaned before the fault: %q", lines[1])
	}
}

func TestFaultStreamFailingWriter(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	if err := ex.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	w := &faultinject.Writer{FailAfter: 0}
	if _, err := e.CleanCSVStreamContext(context.Background(), &in, w, false); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}
