package repair_test

import (
	"bytes"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rules"
	"detective/internal/similarity"
)

func newEngine(t *testing.T) (*dataset.PaperExample, *repair.Engine) {
	t.Helper()
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return ex, e
}

func wantTuple(t *testing.T, got *relation.Tuple, values []string, marked []bool) {
	t.Helper()
	for i := range values {
		if got.Values[i] != values[i] {
			t.Errorf("value[%d] = %q, want %q", i, got.Values[i], values[i])
		}
		if got.Marked[i] != marked[i] {
			t.Errorf("marked[%d] = %v, want %v (%s)", i, got.Marked[i], marked[i], got.Values[i])
		}
	}
}

func allTrue(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func TestRuleGraphPaperExample(t *testing.T) {
	ex := dataset.NewPaperExample()
	g := repair.BuildRuleGraph(ex.Rules)
	// Example 8: phi1 -> phi2 -> phi3 and phi4 independent.
	if g.HasCycle() {
		t.Fatal("paper rules must be acyclic")
	}
	pos := make(map[int]int) // rule index -> position in order
	for p, idx := range g.Order() {
		pos[idx] = p
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2]) {
		t.Errorf("order %v violates phi1 < phi2 < phi3", g.Order())
	}
	if len(g.Order()) != 4 {
		t.Errorf("order %v should contain all 4 rules", g.Order())
	}
}

func TestRuleGraphCycle(t *testing.T) {
	// Two rules that feed each other: A repairs col X used by B's
	// evidence, and B repairs col Y used by A's evidence.
	schema := relation.NewSchema("R", "X", "Y")
	mk := func(name, evCol, posCol string) *rules.DR {
		neg := rules.Node{Name: "n", Col: posCol, Type: "t" + posCol, Sim: similarity.Eq}
		return &rules.DR{
			Name:     name,
			Evidence: []rules.Node{{Name: "e", Col: evCol, Type: "t" + evCol, Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: posCol, Type: "t" + posCol, Sim: similarity.Eq},
			Neg:      &neg,
			Edges: []rules.Edge{
				{From: "e", Rel: "r", To: "p"},
				{From: "e", Rel: "s", To: "n"},
			},
		}
	}
	g := repair.BuildRuleGraph([]*rules.DR{mk("a", "Y", "X"), mk("b", "X", "Y")})
	if !g.HasCycle() {
		t.Fatal("expected a cycle")
	}
	if len(g.Groups) != 1 || len(g.Groups[0]) != 2 {
		t.Fatalf("Groups = %v, want one group of two", g.Groups)
	}
	_ = schema
}

func TestBasicRepairExample7(t *testing.T) {
	// r1 reaches the fixpoint of Example 7: City repaired to Haifa,
	// Prize repaired to the Nobel Prize, every cell marked.
	ex, e := newEngine(t)
	got := e.BasicRepair(ex.Dirty.Tuples[0])
	wantTuple(t, got,
		[]string{"Avram Hershko", "1937-12-31", "Israel", "Nobel Prize in Chemistry", "Israel Institute of Technology", "Haifa"},
		allTrue(6))
}

func TestFastRepairExample9(t *testing.T) {
	// r3 reaches the fixpoint of Example 9: Prize and Country repaired,
	// every cell marked.
	ex, e := newEngine(t)
	got := e.FastRepair(ex.Dirty.Tuples[2])
	wantTuple(t, got,
		[]string{"Roald Hoffmann", "1937-07-18", "United States", "Nobel Prize in Chemistry", "Cornell University", "Ithaca"},
		allTrue(6))
}

func TestBasicAndFastAgree(t *testing.T) {
	ex, e := newEngine(t)
	for i, tu := range ex.Dirty.Tuples {
		b := e.BasicRepair(tu)
		f := e.FastRepair(tu)
		if !b.EqualMarked(f) {
			t.Errorf("tuple %d: basic %v != fast %v", i, b, f)
		}
	}
	for i, tu := range ex.Truth.Tuples {
		b := e.BasicRepair(tu)
		f := e.FastRepair(tu)
		if !b.EqualMarked(f) {
			t.Errorf("truth tuple %d: basic %v != fast %v", i, b, f)
		}
	}
}

func TestRepairDoesNotMutateInput(t *testing.T) {
	ex, e := newEngine(t)
	orig := ex.Dirty.Tuples[0].Clone()
	e.BasicRepair(ex.Dirty.Tuples[0])
	e.FastRepair(ex.Dirty.Tuples[0])
	if !ex.Dirty.Tuples[0].EqualMarked(orig) {
		t.Fatal("repair mutated its input tuple")
	}
}

func TestTypoNormalizationEndToEnd(t *testing.T) {
	// r2's "Paster Institute" typo is normalized to "Pasteur Institute".
	ex, e := newEngine(t)
	got := e.FastRepair(ex.Dirty.Tuples[1])
	wantTuple(t, got,
		[]string{"Marie Curie", "1867-11-07", "France", "Nobel Prize in Chemistry", "Pasteur Institute", "Paris"},
		allTrue(6))
}

func TestRepairCleanTupleOnlyMarks(t *testing.T) {
	ex, e := newEngine(t)
	for i, tu := range ex.Truth.Tuples {
		got := e.FastRepair(tu)
		if !got.Equal(tu) {
			t.Errorf("truth tuple %d changed: %v", i, got)
		}
		if got.NumMarked() != 6 {
			t.Errorf("truth tuple %d: %d marks, want 6", i, got.NumMarked())
		}
	}
}

func TestMarkedCellsAreImmutable(t *testing.T) {
	// Pre-mark the wrong City value: no rule may change it afterwards.
	ex, e := newEngine(t)
	tu := ex.Dirty.Tuples[0].Clone()
	tu.Marked[ex.Schema.MustCol("City")] = true
	got := e.FastRepair(tu)
	if got.Values[ex.Schema.MustCol("City")] != "Karcag" {
		t.Fatalf("marked City was rewritten to %q", got.Values[ex.Schema.MustCol("City")])
	}
	gotB := e.BasicRepair(tu)
	if gotB.Values[ex.Schema.MustCol("City")] != "Karcag" {
		t.Fatalf("basic: marked City was rewritten to %q", gotB.Values[ex.Schema.MustCol("City")])
	}
}

func TestRepairVersionsExample10(t *testing.T) {
	// r4 yields exactly the two fixpoints of Example 10.
	ex, e := newEngine(t)
	versions := e.RepairVersions(ex.Dirty.Tuples[3])
	if len(versions) != 2 {
		t.Fatalf("got %d versions, want 2: %v", len(versions), versions)
	}
	byInst := make(map[string]*relation.Tuple)
	for _, v := range versions {
		byInst[v.Values[ex.Schema.MustCol("Institution")]] = v
	}
	man, ok := byInst["University of Manchester"]
	if !ok {
		t.Fatal("missing Manchester version")
	}
	wantTuple(t, man,
		[]string{"Melvin Calvin", "1911-04-08", "United States", "Nobel Prize in Chemistry", "University of Manchester", "Manchester"},
		allTrue(6))
	berk, ok := byInst["UC Berkeley"]
	if !ok {
		t.Fatal("missing Berkeley version")
	}
	wantTuple(t, berk,
		[]string{"Melvin Calvin", "1911-04-08", "United States", "Nobel Prize in Chemistry", "UC Berkeley", "Berkeley"},
		allTrue(6))
}

func TestRepairVersionsSingleFixpoint(t *testing.T) {
	ex, e := newEngine(t)
	versions := e.RepairVersions(ex.Dirty.Tuples[0])
	if len(versions) != 1 {
		t.Fatalf("r1: got %d versions, want 1", len(versions))
	}
	if !versions[0].EqualMarked(e.BasicRepair(ex.Dirty.Tuples[0])) {
		t.Error("single version must equal the basic repair result")
	}
}

func TestRepairTable(t *testing.T) {
	ex, e := newEngine(t)
	for _, fast := range []bool{false, true} {
		got := e.RepairTable(ex.Dirty, fast)
		if got.Len() != ex.Dirty.Len() {
			t.Fatalf("fast=%v: %d rows", fast, got.Len())
		}
		// All errors in Table I except r4's multi-version Institution
		// choice are fixed deterministically; r4 resolves to the most
		// similar candidate (Manchester), so compare the three
		// deterministic rows against ground truth.
		for i := 0; i < 3; i++ {
			if !got.Tuples[i].Equal(ex.Truth.Tuples[i]) {
				t.Errorf("fast=%v row %d = %v, want %v", fast, i, got.Tuples[i], ex.Truth.Tuples[i])
			}
		}
	}
}

func TestNewEngineRejectsEmptyAndInvalid(t *testing.T) {
	ex := dataset.NewPaperExample()
	if _, err := repair.NewEngine(nil, ex.KB, ex.Schema); err == nil {
		t.Error("empty rule set: want error")
	}
	bad := &rules.DR{Name: "bad", Pos: rules.Node{Name: "p", Col: "Nope", Type: "t", Sim: similarity.Eq}}
	if _, err := repair.NewEngine([]*rules.DR{bad}, ex.KB, ex.Schema); err == nil {
		t.Error("invalid rule: want error")
	}
}

func TestFixpointNoRuleAppliesTwice(t *testing.T) {
	// Termination sanity: repairing a tuple twice is a no-op the
	// second time (the first result is a fixpoint).
	ex, e := newEngine(t)
	once := e.FastRepair(ex.Dirty.Tuples[0])
	twice := e.FastRepair(once)
	if !once.EqualMarked(twice) {
		t.Fatalf("fixpoint not stable: %v then %v", once, twice)
	}
}

func TestRepairTableParallelMatchesSerial(t *testing.T) {
	b := dataset.NewNobel(21, 200)
	inj := b.Inject(dataset.Noise{Rate: 0.12, TypoFrac: 0.5, Seed: 8})
	e, err := repair.NewEngine(b.Rules, b.Yago, b.Schema)
	if err != nil {
		t.Fatal(err)
	}
	serial := e.RepairTable(inj.Dirty, true)
	for _, workers := range []int{0, 1, 4} {
		par := e.RepairTableParallel(inj.Dirty, workers)
		for i := range serial.Tuples {
			if !serial.Tuples[i].EqualMarked(par.Tuples[i]) {
				t.Fatalf("workers=%d tuple %d: %v, want %v", workers, i, par.Tuples[i], serial.Tuples[i])
			}
		}
	}
}

func TestFastRepairExplain(t *testing.T) {
	ex, e := newEngine(t)
	got, steps := e.FastRepairExplain(ex.Dirty.Tuples[0])
	if !got.EqualMarked(e.FastRepair(ex.Dirty.Tuples[0])) {
		t.Fatal("explained repair differs from FastRepair")
	}
	if len(steps) != 4 {
		t.Fatalf("got %d steps, want 4 (all rules apply to r1): %v", len(steps), steps)
	}
	var cityStep *repair.Step
	for i := range steps {
		if steps[i].RepairCol == "City" {
			cityStep = &steps[i]
		}
		if steps[i].String() == "" {
			t.Error("empty step rendering")
		}
	}
	if cityStep == nil {
		t.Fatal("no step repaired City")
	}
	if cityStep.Old != "Karcag" || cityStep.New != "Haifa" {
		t.Errorf("City step %q -> %q", cityStep.Old, cityStep.New)
	}
	// The witness exposes the instance-level matching graph: the
	// negative node must be bound to Karcag (the birth city).
	if cityStep.Witness["n2"] != "Karcag" {
		t.Errorf("City witness = %v, want n2=Karcag", cityStep.Witness)
	}
	if cityStep.Witness["w1"] != "Avram Hershko" {
		t.Errorf("City witness = %v, want w1=Avram Hershko", cityStep.Witness)
	}
}

func TestExplainCleanTuple(t *testing.T) {
	ex, e := newEngine(t)
	_, steps := e.FastRepairExplain(ex.Truth.Tuples[0])
	if len(steps) == 0 {
		t.Fatal("clean tuple should still produce positive steps")
	}
	for _, s := range steps {
		if s.Kind != rules.Positive {
			t.Errorf("clean tuple produced non-positive step: %v", s)
		}
	}
}

func TestCleanCSVStream(t *testing.T) {
	ex, e := newEngine(t)
	var in bytes.Buffer
	if err := ex.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := e.CleanCSVStream(&in, &out, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("rows = %d", n)
	}
	got := out.String()
	if !strings.Contains(got, "Haifa+") || !strings.Contains(got, "Pasteur Institute+") {
		t.Fatalf("stream output missing repairs:\n%s", got)
	}

	// Schema mismatches are rejected.
	if _, err := e.CleanCSVStream(strings.NewReader("A,B\n1,2\n"), &out, false); err == nil {
		t.Fatal("want error for wrong header arity")
	}
	if _, err := e.CleanCSVStream(strings.NewReader("X,DOB,Country,Prize,Institution,City\n"), &out, false); err == nil {
		t.Fatal("want error for wrong header names")
	}
	if _, err := e.CleanCSVStream(strings.NewReader(""), &out, false); err == nil {
		t.Fatal("want error for empty input")
	}
	if _, err := e.CleanCSVStream(strings.NewReader("Name,DOB,Country,Prize,Institution,City\na,b\n"), &out, false); err == nil {
		t.Fatal("want error for short row")
	}
}
