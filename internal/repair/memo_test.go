package repair_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"detective/internal/dataset"
	"detective/internal/faultinject"
	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
)

// memoEngine builds an engine over the hot-swap fixtures with the
// given options, on its own store.
func memoEngine(t *testing.T, opts repair.Options) (*repair.Engine, *kb.Store) {
	t.Helper()
	store := kb.NewStore(swapGraph("A"))
	e, err := repair.NewEngineStore(swapRules(), store, swapSchema, opts)
	if err != nil {
		t.Fatalf("NewEngineStore: %v", err)
	}
	return e, store
}

// TestMemoHitIdentity repairs the same tuple twice: the second repair
// must be a tuple-tier hit and byte-identical to the first, and the
// clone handed out must not alias cache memory (mutating a result
// must not poison later replays).
func TestMemoHitIdentity(t *testing.T) {
	e, _ := memoEngine(t, repair.Options{})
	tu := relation.NewTuple("Alice", "ParisX", "EuroX")

	r1 := e.FastRepair(tu)
	ms0 := e.MemoStats()
	if !ms0.Enabled {
		t.Fatal("memo should be enabled by default")
	}
	if ms0.Tuple.Entries == 0 {
		t.Fatalf("no tuple entry cached after first repair: %+v", ms0.Tuple)
	}
	r2 := e.FastRepair(tu)
	if !r1.EqualMarked(r2) {
		t.Fatalf("memoized replay differs: %v vs %v", r1, r2)
	}
	ms1 := e.MemoStats()
	if ms1.Tuple.Hits <= ms0.Tuple.Hits {
		t.Fatalf("second repair was not a tuple hit: %+v -> %+v", ms0.Tuple, ms1.Tuple)
	}

	// Corrupt the returned clone; the cache must be unaffected.
	r2.Values[1] = "corrupted"
	r2.Marked[1] = false
	r3 := e.FastRepair(tu)
	if !r1.EqualMarked(r3) {
		t.Fatalf("cache poisoned through a returned clone: %v, want %v", r3, r1)
	}
}

// TestMemoRepairRow exercises the exported allocation-free row API:
// outcome mapping, hit reporting, and in-place results.
func TestMemoRepairRow(t *testing.T) {
	e, _ := memoEngine(t, repair.Options{})
	dst := &relation.Tuple{Values: make([]string, 3), Marked: make([]bool, 3)}
	rec := []string{"Alice", "ParisX", "EuroX"}

	oc, hit := e.RepairRow(dst, rec)
	if oc != repair.RowRepaired || hit {
		t.Fatalf("cold RepairRow = (%v, %v), want (RowRepaired, false)", oc, hit)
	}
	if dst.Values[1] != "ParisA" || dst.Values[2] != "EuroA" {
		t.Fatalf("cold repair wrong: %v", dst.Values)
	}
	cold := dst.Clone()

	oc, hit = e.RepairRow(dst, rec)
	if oc != repair.RowRepaired || !hit {
		t.Fatalf("warm RepairRow = (%v, %v), want (RowRepaired, true)", oc, hit)
	}
	if !dst.EqualMarked(cold) {
		t.Fatalf("warm repair differs: %v, want %v", dst, cold)
	}
}

// TestMemoCellTierSharesHotValues pins the second tier: a novel tuple
// that shares a hot evidence value with earlier traffic must be
// served its evidence verdict from the cell memo even though the
// tuple tier misses.
func TestMemoCellTierSharesHotValues(t *testing.T) {
	e, _ := memoEngine(t, repair.Options{})
	e.FastRepair(relation.NewTuple("Alice", "ParisX", "EuroX"))
	ms0 := e.MemoStats()
	// Different City/Country cells -> tuple-tier miss; same Name cell
	// -> the person-evidence verdict is already cached.
	e.FastRepair(relation.NewTuple("Alice", "ParisY", "EuroY"))
	ms1 := e.MemoStats()
	if ms1.Cell.Hits <= ms0.Cell.Hits {
		t.Fatalf("no cell-tier hit for shared evidence value: %+v -> %+v", ms0.Cell, ms1.Cell)
	}
	if ms1.Tuple.Hits != ms0.Tuple.Hits {
		t.Fatalf("distinct tuple unexpectedly hit the tuple tier: %+v -> %+v", ms0.Tuple, ms1.Tuple)
	}
}

// TestMemoInvalidatedOnSwap is the engine-level half of the reload
// invalidation contract: entries pinned to a superseded generation
// are never served — the post-swap repair must reflect the new graph
// — and the drops are counted as generation evictions.
func TestMemoInvalidatedOnSwap(t *testing.T) {
	e, store := memoEngine(t, repair.Options{})
	tu := relation.NewTuple("Alice", "ParisX", "EuroX")

	r1 := e.FastRepair(tu)
	if r1.Values[1] != "ParisA" {
		t.Fatalf("pre-swap repair = %v, want ParisA", r1.Values)
	}
	e.FastRepair(tu) // warm hit under generation A

	store.Swap(swapGraph("B"))
	r2 := e.FastRepair(tu)
	if r2.Values[1] != "ParisB" || r2.Values[2] != "EuroB" {
		t.Fatalf("post-swap repair served stale values: %v", r2.Values)
	}
	ms := e.MemoStats()
	if ms.Tuple.GenEvictions == 0 {
		t.Errorf("no tuple generation evictions counted: %+v", ms.Tuple)
	}

	// And the new generation memoizes in its own right.
	before := ms.Tuple.Hits
	r3 := e.FastRepair(tu)
	if !r2.EqualMarked(r3) {
		t.Fatalf("post-swap replay differs: %v vs %v", r2, r3)
	}
	if e.MemoStats().Tuple.Hits <= before {
		t.Error("post-swap repair did not repopulate the memo")
	}
}

// TestMemoEvictionRespectsBudget floods a deliberately tiny memo with
// distinct rows: the CLOCK must keep resident bytes under the
// configured budget and count capacity evictions.
func TestMemoEvictionRespectsBudget(t *testing.T) {
	const budget = 256 << 10
	e, _ := memoEngine(t, repair.Options{MemoBytes: budget})
	dst := &relation.Tuple{Values: make([]string, 3), Marked: make([]bool, 3)}
	for i := 0; i < 4000; i++ {
		e.RepairRow(dst, []string{fmt.Sprintf("Nobody-%d", i), "ParisX", "EuroX"})
	}
	ms := e.MemoStats()
	if ms.BudgetBytes != budget {
		t.Fatalf("BudgetBytes = %d, want %d", ms.BudgetBytes, budget)
	}
	if got := ms.Tuple.Bytes + ms.Cell.Bytes; got > budget {
		t.Errorf("resident bytes %d exceed budget %d (tuple %d, cell %d)",
			got, budget, ms.Tuple.Bytes, ms.Cell.Bytes)
	}
	if ms.Tuple.Evictions == 0 {
		t.Errorf("no capacity evictions under a flooded 256 KiB budget: %+v", ms.Tuple)
	}
	if ms.Tuple.Entries == 0 {
		t.Errorf("memo retained nothing: %+v", ms.Tuple)
	}
}

// TestMemoDisabled checks both off switches and that the disabled
// engine reports a zero MemoStats.
func TestMemoDisabled(t *testing.T) {
	for name, opts := range map[string]repair.Options{
		"flag":     {MemoDisabled: true},
		"negative": {MemoBytes: -1},
	} {
		t.Run(name, func(t *testing.T) {
			e, _ := memoEngine(t, opts)
			tu := relation.NewTuple("Alice", "ParisX", "EuroX")
			r1 := e.FastRepair(tu)
			r2 := e.FastRepair(tu)
			if !r1.EqualMarked(r2) {
				t.Fatalf("repeated repair differs: %v vs %v", r1, r2)
			}
			if ms := e.MemoStats(); ms.Enabled || ms.Tuple.Hits != 0 {
				t.Fatalf("disabled engine reports memo activity: %+v", ms)
			}
		})
	}
}

// TestFaultMemoQuarantineReplay pins the verdict-caching contract:
// a poisoned row's quarantine is memoized under the generation it ran
// on, so replaying the same row is answered from the cache —
// byte-identical, still counted as quarantined — without re-entering
// the panicking kernel. (TestFault* naming opts this into the nightly
// fault lane's -count=5 runs.)
func TestFaultMemoQuarantineReplay(t *testing.T) {
	ex := dataset.NewPaperExample()
	poison := "POISON-MEMO-13M"
	dirty := ex.Dirty.Clone()
	dirty.SetCell(1, "Name", poison)

	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	uninstall := faultinject.PanicOnValue(poison)

	var in1, out1 bytes.Buffer
	if err := dirty.WriteCSV(&in1); err != nil {
		t.Fatal(err)
	}
	res1, err := e.CleanCSVStreamContext(context.Background(), &in1, &out1, false)
	if err != nil {
		t.Fatalf("first stream: %v", err)
	}
	if res1.Quarantined != 1 {
		t.Fatalf("first pass Quarantined = %d, want 1", res1.Quarantined)
	}

	// Remove the fault. A fresh repair of the poisoned row would now
	// succeed — but the memo must replay the recorded quarantine
	// verdict, keeping replays byte-identical to the first pass.
	uninstall()

	var in2, out2 bytes.Buffer
	if err := dirty.WriteCSV(&in2); err != nil {
		t.Fatal(err)
	}
	res2, err := e.CleanCSVStreamContext(context.Background(), &in2, &out2, false)
	if err != nil {
		t.Fatalf("second stream: %v", err)
	}
	if res2.Quarantined != 1 {
		t.Fatalf("replayed pass Quarantined = %d, want 1 (from the memoized verdict)", res2.Quarantined)
	}
	if res2.Deduped != dirty.Len() {
		t.Errorf("replayed pass Deduped = %d, want %d (every row memo-served)", res2.Deduped, dirty.Len())
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Errorf("replay not byte-identical:\n%s\nvs:\n%s", out2.Bytes(), out1.Bytes())
	}
}

// TestMemoStreamByteIdenticalUnderReload is the concurrency property
// test of the acceptance criteria: a Zipf-skewed stream cleaned by
// the memoized parallel pipeline — while the KB is concurrently
// hot-swapped to freshly built, semantically identical graphs, each
// swap bumping the generation and invalidating the memo — must be
// byte-identical to a memo-disabled serial reference. Run under
// -race (the `make race` lane) this also proves the memo's sharded
// state is race-clean against concurrent reloads.
func TestMemoStreamByteIdenticalUnderReload(t *testing.T) {
	// Zipf-skewed corpus over a small set of distinct dirty rows.
	cities := []string{"ParisX", "Paris", "PariA", "ParisQQ", "Pari"}
	countries := []string{"EuroX", "Euro", "EuroQ", "EuroAA", "Eur"}
	rng := rand.New(rand.NewSource(42))
	z := rand.NewZipf(rng, 1.1, 1, uint64(len(cities)-1))
	var corpus strings.Builder
	corpus.WriteString("Name,City,Country\n")
	const rows = 4000
	for i := 0; i < rows; i++ {
		corpus.WriteString("Alice," + cities[z.Uint64()] + "," + countries[z.Uint64()] + "\n")
	}

	ref, err := repair.NewEngineStore(swapRules(), kb.NewStore(swapGraph("A")), swapSchema,
		repair.Options{MemoDisabled: true})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	wantRes, err := ref.CleanCSVStreamContext(context.Background(), strings.NewReader(corpus.String()), &want, true)
	if err != nil {
		t.Fatal(err)
	}

	e, store := memoEngine(t, repair.Options{Workers: 4, ChunkSize: 32})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			// Fresh build every time: generations are strictly
			// increasing and a pinned graph's stamp is never mutated
			// under a concurrent reader.
			store.Swap(swapGraph("A"))
		}
	}()

	for pass := 1; pass <= 2; pass++ {
		var got bytes.Buffer
		res, err := e.CleanCSVStreamContext(context.Background(), strings.NewReader(corpus.String()), &got, true)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("pass %d: memoized parallel output differs from memo-disabled serial reference", pass)
		}
		if res.Rows != wantRes.Rows || res.Quarantined != wantRes.Quarantined || res.BudgetExhausted != wantRes.BudgetExhausted {
			t.Fatalf("pass %d: accounting differs: %+v vs %+v", pass, res, wantRes)
		}
	}
	close(done)
	wg.Wait()

	ms := e.MemoStats()
	if ms.Tuple.Hits == 0 {
		t.Error("the skewed stream produced no tuple hits")
	}
}

// TestMemoDoesNotPerturbEval backs the EXPERIMENTS.md claim: the
// repaired table — and therefore every precision/recall number the
// eval harness derives from it — is identical with the memo on
// (including warm replays) and off.
func TestMemoDoesNotPerturbEval(t *testing.T) {
	b := dataset.NewNobel(11, 200)
	inj := b.Inject(dataset.Noise{Rate: 0.2, TypoFrac: 0.5, Seed: 11})

	on, err := repair.NewEngine(b.Rules, b.Yago, b.Schema)
	if err != nil {
		t.Fatal(err)
	}
	off, err := repair.NewEngineWithOptions(b.Rules, b.Yago, b.Schema, repair.Options{MemoDisabled: true})
	if err != nil {
		t.Fatal(err)
	}

	want := off.RepairTable(inj.Dirty, true)
	for pass := 1; pass <= 2; pass++ { // pass 2 is fully memo-served
		got := on.RepairTable(inj.Dirty, true)
		if got.Len() != want.Len() {
			t.Fatalf("pass %d: %d rows, want %d", pass, got.Len(), want.Len())
		}
		for i := range want.Tuples {
			if !got.Tuples[i].EqualMarked(want.Tuples[i]) {
				t.Fatalf("pass %d row %d: memo-on %v differs from memo-off %v",
					pass, i, got.Tuples[i], want.Tuples[i])
			}
		}
	}
	if ms := on.MemoStats(); ms.Tuple.Hits == 0 {
		t.Error("second pass produced no memo hits")
	}
}
