// Serving-path ensemble repair: the detective engine runs alongside
// the auxiliary proposers (KATARA, FD, constant CFD — see
// internal/repair/ensemble) on every tuple, their cell-level
// proposals are combined by a weighted vote, and each decided cell
// carries a confidence score. Cells whose winning value falls below
// the acceptance threshold degrade to detect-only marks. The ensemble
// path shares the engine's breaker, recorder, telemetry, and global
// memo (under salted keys, so ensemble and single-engine results
// never cross-contaminate).
package repair

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair/ensemble"
	"detective/internal/telemetry"
)

// EnsembleOptions configures the engine's ensemble mode (see
// Options.Ensemble). The detective engine itself is always the first
// voter; Proposers supplies the auxiliary engines.
type EnsembleOptions struct {
	// Enabled builds the ensemble state. When false the engine pays a
	// single nil check and the ensemble entry points error.
	Enabled bool
	// Threshold is the acceptance threshold on a winning value's
	// confidence; below it the cell is marked but not rewritten.
	// 0 picks ensemble.DefaultThreshold.
	Threshold float64
	// Weights overrides per-engine base weights by engine name
	// ("detective", "katara", "llunatic", "cfd"). Engines absent here
	// fall back to ensemble.DefaultWeights.
	Weights map[string]float64
	// Proposers are the auxiliary engines. They must be safe for
	// concurrent use; each Propose call is panic-quarantined.
	Proposers []ensemble.Proposer
	// SuspicionPenalty is the down-weight applied to KB-backed
	// proposals of values flagged by the KB self-check. 0 picks
	// ensemble.DefaultSuspicionPenalty.
	SuspicionPenalty float64
}

// ensembleFPSalt separates ensemble memo keys from single-engine
// keys: the tuple fingerprint is fully avalanched, so XOR with any
// non-zero constant yields an independent key space.
const ensembleFPSalt = 0x9E3779B97F4A7C15

// detectiveEngine is engine index 0 in every per-tuple vote.
const detectiveEngine = 0

// relPrior* shape the reliability estimate: a Beta(4,4)-style prior
// so early shadow-replay samples cannot swing an engine's weight, and
// a floor so no engine is silenced entirely (it can still corroborate).
const (
	relPriorAgree = 4
	relPriorTotal = 8
	relFloor      = 0.25
)

// ensembleState is everything the per-tuple ensemble path reads. It
// is immutable after construction except for the atomics (suspicion
// pointer, reliability factors, agreement counters).
type ensembleState struct {
	proposers []ensemble.Proposer
	names     []string  // engine names; index 0 is "detective"
	baseW     []float64 // configured base weight per engine
	threshold float64

	suspicion ensemble.SuspicionHolder
	penalty   float64

	// rel[i] is engine i's current reliability factor in [relFloor, 1]
	// (math.Float64bits), refreshed from the agree/total counters by
	// RefreshEnsembleReliability after canary shadow replays.
	rel   []atomic.Uint64
	agree []atomic.Int64
	total []atomic.Int64

	instr *ensembleInstr
}

// ensembleInstr is the ensemble's per-engine counter block, one
// labelled series per engine per event.
type ensembleInstr struct {
	proposals   []*telemetry.Counter
	conflicts   []*telemetry.Counter
	accepted    []*telemetry.Counter
	below       []*telemetry.Counter
	quarantined []*telemetry.Counter
}

func newEnsembleInstr(reg *telemetry.Registry, names []string) *ensembleInstr {
	in := &ensembleInstr{}
	mk := func(dst *[]*telemetry.Counter, name, help string) {
		for _, eng := range names {
			*dst = append(*dst, reg.Counter(name, help, telemetry.Label{Name: "engine", Value: eng}))
		}
	}
	mk(&in.proposals, "detective_ensemble_proposals_total", "Cell repair proposals emitted by each ensemble engine.")
	mk(&in.conflicts, "detective_ensemble_conflicts_total", "Cells where this engine participated in a multi-value conflict.")
	mk(&in.accepted, "detective_ensemble_accepted_total", "Cells where this engine backed the accepted winning value.")
	mk(&in.below, "detective_ensemble_below_threshold_total", "Cells where this engine backed a winner that fell below the acceptance threshold.")
	mk(&in.quarantined, "detective_ensemble_quarantined_total", "Per-tuple engine quarantines (panicking Propose calls).")
	return in
}

func newEnsembleState(opts EnsembleOptions, reg *telemetry.Registry) *ensembleState {
	names := make([]string, 1+len(opts.Proposers))
	names[detectiveEngine] = "detective"
	for i, p := range opts.Proposers {
		names[1+i] = p.Name()
	}
	es := &ensembleState{
		proposers: opts.Proposers,
		names:     names,
		baseW:     make([]float64, len(names)),
		threshold: opts.Threshold,
		penalty:   opts.SuspicionPenalty,
		rel:       make([]atomic.Uint64, len(names)),
		agree:     make([]atomic.Int64, len(names)),
		total:     make([]atomic.Int64, len(names)),
	}
	if es.threshold <= 0 {
		es.threshold = ensemble.DefaultThreshold
	}
	if es.penalty <= 0 {
		es.penalty = ensemble.DefaultSuspicionPenalty
	}
	for i, n := range names {
		es.baseW[i] = ensemble.WeightFor(opts.Weights, n)
		es.rel[i].Store(math.Float64bits(1))
	}
	es.instr = newEnsembleInstr(reg, names)
	return es
}

// EnsembleEnabled reports whether the engine was built with ensemble
// mode on.
func (e *Engine) EnsembleEnabled() bool { return e.ens != nil }

// EnsembleThreshold returns the acceptance threshold (0 when ensemble
// mode is off).
func (e *Engine) EnsembleThreshold() float64 {
	if e.ens == nil {
		return 0
	}
	return e.ens.threshold
}

// SetEnsembleSuspicion publishes the KB self-check suspicion signal
// consumed by subsequent ensemble votes; nil clears it. No-op when
// ensemble mode is off.
func (e *Engine) SetEnsembleSuspicion(s *ensemble.Suspicion) {
	if e.ens != nil {
		e.ens.suspicion.Store(s)
	}
}

// RefreshEnsembleReliability folds the accumulated per-engine
// agreement counters (proposal matched the accepted winner) into each
// engine's reliability factor. The estimate is prior-smoothed and
// floored so a cold or briefly-wrong engine is damped, not silenced.
// The server calls this after each successful canary shadow replay.
func (e *Engine) RefreshEnsembleReliability() {
	es := e.ens
	if es == nil {
		return
	}
	for i := range es.rel {
		agree, total := es.agree[i].Load(), es.total[i].Load()
		rel := relFloor + (1-relFloor)*float64(agree+relPriorAgree)/float64(total+relPriorTotal)
		if rel > 1 {
			rel = 1
		}
		es.rel[i].Store(math.Float64bits(rel))
	}
}

// EnsembleReliability snapshots each engine's current reliability
// factor by name; nil when ensemble mode is off.
func (e *Engine) EnsembleReliability() map[string]float64 {
	es := e.ens
	if es == nil {
		return nil
	}
	out := make(map[string]float64, len(es.names))
	for i, n := range es.names {
		out[n] = math.Float64frombits(es.rel[i].Load())
	}
	return out
}

// drLeg runs the detective leg of the ensemble on tup (which holds a
// fresh copy of the input record): the ordinary fast repair in place,
// panic-quarantined and breaker-observed, its outcome counted into
// the engine's lifetime counters exactly once. On a non-OK outcome
// tup is restored to the original record.
func (e *Engine) drLeg(g *kb.Graph, tup *relation.Tuple, rec []string, probe bool) tupleOutcome {
	oc := e.repairRowSafeOn(g, tup, probe)
	if oc != tupleOK {
		copyRecInto(tup, rec)
	}
	return oc
}

// ensembleRowOn is the uncached ensemble core for one unmarked input
// record. The auxiliary proposers run concurrently with the detective
// leg; the weighted vote then settles every contested cell into tup,
// whose Values/Marked must have the schema's arity. It returns the
// detective leg's outcome (the row-level degradation verdict) and the
// row confidence — the minimum winning confidence over decided cells,
// 1 when no cell was contested.
func (e *Engine) ensembleRowOn(ctx context.Context, g *kb.Graph, tup *relation.Tuple, rec []string, probe bool) (tupleOutcome, float64) {
	es := e.ens
	n := 1 + len(es.proposers)
	byEngine := make([][]ensemble.Proposal, n)

	var wg sync.WaitGroup
	for i, p := range es.proposers {
		wg.Add(1)
		go func(slot int, p ensemble.Proposer) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Quarantine this engine for this tuple only: its
					// proposals are dropped, every other voter proceeds.
					byEngine[slot] = nil
					es.instr.quarantined[slot].Inc()
				}
			}()
			byEngine[slot] = p.Propose(ctx, rec, nil)
		}(1+i, p)
	}

	copyRecInto(tup, rec)
	oc := e.drLeg(g, tup, rec, probe)

	// The detective leg's proposals are the cells it rewrote; cells it
	// marked without rewriting are proven correct and removed from the
	// vote entirely (no engine second-guesses a positive annotation).
	var proven []bool
	if oc == tupleOK {
		var drProps []ensemble.Proposal
		for col, v := range tup.Values {
			if v != rec[col] {
				drProps = append(drProps, ensemble.Proposal{Col: col, Value: v, Conf: 1, KB: true})
			} else if tup.Marked[col] {
				if proven == nil {
					proven = make([]bool, len(rec))
				}
				proven[col] = true
			}
		}
		byEngine[detectiveEngine] = drProps
	}
	wg.Wait()

	weights := make([]float64, n)
	for i := range weights {
		weights[i] = es.baseW[i] * math.Float64frombits(es.rel[i].Load())
	}
	for i, props := range byEngine {
		if len(props) > 0 {
			es.instr.proposals[i].Add(int64(len(props)))
		}
	}
	var suspect func(string) float64
	if s := es.suspicion.Load(); s.Len() > 0 {
		suspect = s.Factor
	}
	decisions := ensemble.Vote(byEngine, weights, proven, suspect)

	rowConf := 1.0
	for _, d := range decisions {
		accepted := d.Conf >= es.threshold
		if accepted {
			tup.Values[d.Col] = d.Value
			tup.Marked[d.Col] = true
		} else {
			// Below threshold: degrade the cell to a detect-only mark —
			// the original value stays, flagged for the caller.
			tup.Values[d.Col] = rec[d.Col]
			tup.Marked[d.Col] = true
		}
		if d.Conf < rowConf {
			rowConf = d.Conf
		}
		for _, ei := range d.Participants {
			es.total[ei].Add(1)
			if d.Conflict {
				es.instr.conflicts[ei].Inc()
			}
		}
		for _, ei := range d.Backers {
			if accepted {
				es.agree[ei].Add(1)
				es.instr.accepted[ei].Inc()
			} else {
				es.instr.below[ei].Inc()
			}
		}
	}
	return oc, rowConf
}

// repairRowEnsembleMemo is the ensemble analogue of repairRowMemo:
// recorder, breaker fronting, then the global memo (under salted keys
// carrying the row confidence) read-through around ensembleRowOn. tup
// is left holding the row to emit; rec must be an unmarked input row
// and owned follows putTuple's contract.
func (e *Engine) repairRowEnsembleMemo(ctx context.Context, tup *relation.Tuple, rec []string, owned bool) (tupleOutcome, float64, bool) {
	if rr := e.recorder; rr != nil {
		rr.Record(rec)
	}
	g := e.Cat.Graph()
	degrade, probe := e.breakerAdmit()
	if degrade {
		copyRecInto(tup, rec)
		oc := e.detectOnlyRowOn(g, tup)
		if oc != tupleOK {
			copyRecInto(tup, rec)
		}
		return oc, 1, false
	}
	memo := e.memo
	if memo == nil {
		oc, conf := e.ensembleRowOn(ctx, g, tup, rec, probe)
		return oc, conf, false
	}
	gen := g.Generation()
	fp := memo.tupleFP(rec, nil) ^ ensembleFPSalt
	if !probe {
		if oc, conf, ok := memo.getRowInto(gen, fp, rec, tup); ok {
			e.count(oc, nil)
			return oc, conf, true
		}
	}
	oc, conf := e.ensembleRowOn(ctx, g, tup, rec, probe)
	memo.putTuple(gen, fp, rec, nil, tup, oc, conf, owned)
	return oc, conf, false
}

// RepairTableEnsemble runs the ensemble over every tuple of tb
// (unmarked input) and returns the repaired copy together with the
// per-row confidences. It errors after a context cancellation with a
// *PartialError; rows not reached pass through unchanged.
func (e *Engine) RepairTableEnsemble(ctx context.Context, tb *relation.Table) (*relation.Table, []float64, error) {
	out := &relation.Table{Schema: tb.Schema, Tuples: make([]*relation.Tuple, tb.Len())}
	confs := make([]float64, tb.Len())
	arity := e.Schema.Arity()
	done := 0
	for i, t := range tb.Tuples {
		if err := ctx.Err(); err != nil {
			for j := i; j < tb.Len(); j++ {
				out.Tuples[j] = tb.Tuples[j].Clone()
				confs[j] = 1
			}
			return out, confs, &PartialError{Done: done, Err: err}
		}
		tup := &relation.Tuple{Values: make([]string, arity), Marked: make([]bool, arity)}
		_, conf, _ := e.repairRowEnsembleMemo(ctx, tup, t.Values, true)
		out.Tuples[i] = tup
		confs[i] = conf
		done++
	}
	return out, confs, nil
}

// RepairRowEnsemble is RepairRow in ensemble mode: rec is repaired
// into dst (whose Values and Marked must have the schema's arity) by
// the weighted vote, returning the outcome, the row confidence, and
// whether the global memo served the row. The engine must have been
// built with Options.Ensemble.Enabled.
func (e *Engine) RepairRowEnsemble(ctx context.Context, dst *relation.Tuple, rec []string) (RowOutcome, float64, bool) {
	oc, conf, hit := e.repairRowEnsembleMemo(ctx, dst, rec, true)
	return RowOutcome(oc), conf, hit
}
