package ensemble

import "sync/atomic"

// DefaultSuspicionPenalty is the multiplicative down-weight applied
// to a KB-backed proposal whose value is an endpoint of a suspect
// taxonomy edge (verify.Report.SuspectEdges). Half weight keeps the
// proposal in the vote — corroboration by a second engine can still
// carry it over the threshold — while a lone suspect-backed proposal
// falls below typical thresholds and degrades to a mark.
const DefaultSuspicionPenalty = 0.5

// Suspicion is the dirty-KB self-check signal: the set of node names
// flagged by the KB verifier, with the penalty the vote applies to
// KB-backed proposals of those values. The zero/nil Suspicion
// penalizes nothing.
type Suspicion struct {
	names   map[string]bool
	penalty float64
}

// NewSuspicion builds the signal from flagged node names. penalty <= 0
// selects DefaultSuspicionPenalty.
func NewSuspicion(names []string, penalty float64) *Suspicion {
	if penalty <= 0 {
		penalty = DefaultSuspicionPenalty
	}
	s := &Suspicion{names: make(map[string]bool, len(names)), penalty: penalty}
	for _, n := range names {
		if n != "" {
			s.names[n] = true
		}
	}
	return s
}

// Len returns the number of suspect names.
func (s *Suspicion) Len() int {
	if s == nil {
		return 0
	}
	return len(s.names)
}

// Factor returns the weight multiplier for a KB-backed proposal of
// value: penalty when the value is suspect, 1 otherwise.
func (s *Suspicion) Factor(value string) float64 {
	if s == nil || !s.names[value] {
		return 1
	}
	return s.penalty
}

// SuspicionHolder publishes a Suspicion to concurrent readers; the
// serving path swaps it after each KB verify pass (reload, canary).
type SuspicionHolder struct {
	p atomic.Pointer[Suspicion]
}

// Store publishes s (nil clears the signal).
func (h *SuspicionHolder) Store(s *Suspicion) { h.p.Store(s) }

// Load returns the current signal, possibly nil.
func (h *SuspicionHolder) Load() *Suspicion { return h.p.Load() }
