package ensemble

import (
	"fmt"

	"detective/internal/rules"
	"detective/internal/similarity"
)

// PatternFromRules derives a KATARA table pattern from the positive
// side of the detective rules: the union of their evidence and
// positive nodes (one pattern node per column, first type wins) and
// the rule edges both of whose endpoints made it into the pattern.
// Similarity specs are forced to exact equality — KATARA supports
// exact matching only — and negative and path nodes are dropped, so
// the derived pattern expresses what the rules jointly consider a
// fully correct tuple.
//
// The result may fail katara.New (e.g. the column-bound subgraph is
// disconnected); callers should treat that as "no KATARA proposer",
// not an error.
func PatternFromRules(drs []*rules.DR) rules.Graph {
	var g rules.Graph
	nameByCol := make(map[string]string)
	edgeSeen := make(map[string]bool)
	nodeCol := func(r *rules.DR, name string) (string, bool) {
		for _, n := range r.Evidence {
			if n.Name == name {
				return n.Col, true
			}
		}
		if r.Pos.Name == name {
			return r.Pos.Col, true
		}
		return "", false // negative or path node
	}
	for _, r := range drs {
		for _, n := range append(append([]rules.Node(nil), r.Evidence...), r.Pos) {
			if n.Col == "" {
				continue
			}
			if _, ok := nameByCol[n.Col]; ok {
				continue
			}
			name := fmt.Sprintf("k%d", len(g.Nodes))
			nameByCol[n.Col] = name
			g.Nodes = append(g.Nodes, rules.Node{Name: name, Col: n.Col, Type: n.Type, Sim: similarity.Eq})
		}
		for _, e := range r.Edges {
			fc, ok1 := nodeCol(r, e.From)
			tc, ok2 := nodeCol(r, e.To)
			if !ok1 || !ok2 {
				continue
			}
			from, to := nameByCol[fc], nameByCol[tc]
			if from == "" || to == "" || from == to {
				continue
			}
			key := from + "\x00" + to + "\x00" + e.Rel
			if edgeSeen[key] {
				continue
			}
			edgeSeen[key] = true
			g.Edges = append(g.Edges, rules.Edge{From: from, To: to, Rel: e.Rel})
		}
	}
	return g
}
