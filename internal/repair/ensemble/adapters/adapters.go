// Package adapters bridges the repo's auxiliary repair engines
// (KATARA, Llunatic FD chase, constant CFDs) to the ensemble.Proposer
// interface. It lives below the vote package so internal/repair can
// import ensemble without pulling in the engines (katara's pattern
// discovery imports rulegen, which imports repair — a cycle).
package adapters

import (
	"context"
	"fmt"
	"os"
	"strings"

	"detective/internal/cfd"
	"detective/internal/katara"
	"detective/internal/kb"
	"detective/internal/llunatic"
	"detective/internal/relation"
	"detective/internal/repair/ensemble"
	"detective/internal/rules"
)

// maxProposalsPerEngine caps how many proposals one auxiliary engine
// may emit for one tuple — a runaway engine cannot flood the vote or
// the proposal arena (the per-engine analogue of the repair engine's
// step budget).
func maxProposalsPerEngine(arity int) int { return arity }

// KATARA adapts the simulated KATARA system to the Proposer
// interface. It reads the KB through a *kb.Store so hot-reloaded
// generations are picked up without rebuilding the proposer; the
// per-generation katara.System is cached and swapped when the store's
// graph changes.
type KATARA struct {
	schema  *relation.Schema
	pattern rules.Graph
	store   *kb.Store
}

// NewKATARA validates pattern against schema and the store's current
// graph (katara.New rejects fuzzy similarity nodes) and returns the
// proposer.
func NewKATARA(pattern rules.Graph, store *kb.Store, schema *relation.Schema) (*KATARA, error) {
	if _, err := katara.New(pattern, store.Graph(), schema); err != nil {
		return nil, err
	}
	return &KATARA{schema: schema, pattern: pattern, store: store}, nil
}

func (k *KATARA) Name() string { return "katara" }

// Propose runs the KATARA match on the tuple and converts its repairs
// to proposals. A full pattern match proposes nothing (the tuple is
// annotated correct); a partial match proposes the minimal-cost KB
// completion for each attribute KATARA deems wrong.
func (k *KATARA) Propose(ctx context.Context, values []string, marked []bool) []ensemble.Proposal {
	if err := ctx.Err(); err != nil {
		return nil
	}
	// System construction is cheap (pattern index only); rebuilding per
	// call keeps the proposer correct across hot-swapped generations
	// without a generation-watch goroutine.
	sys, err := katara.New(k.pattern, k.store.Graph(), k.schema)
	if err != nil {
		return nil
	}
	oc := sys.Clean(&relation.Tuple{Values: values})
	if oc.Full || len(oc.Repairs) == 0 {
		return nil
	}
	// Confidence scales with the support of the partial match: a repair
	// derived from a 4-of-5 pattern match rests on far more agreeing
	// evidence than one extrapolated from a single matched node, and
	// KATARA's false repairs concentrate in the weakly-matched tail.
	conf := float64(len(oc.MatchedCols)) / float64(len(k.pattern.Nodes))
	limit := maxProposalsPerEngine(k.schema.Arity())
	props := make([]ensemble.Proposal, 0, len(oc.Repairs))
	for col, v := range oc.Repairs {
		ci := k.schema.Col(col)
		if ci < 0 || len(props) >= limit {
			continue
		}
		props = append(props, ensemble.Proposal{Col: ci, Value: v, Conf: conf, KB: true})
	}
	return props
}

// FD adapts the Llunatic-style FD chase to per-tuple proposals. The
// single-attribute FDs are grounded against a clean reference table
// at construction time: for FD A→B, every A-value whose B-value is
// unanimous in the reference becomes a constant lookup, and a tuple
// whose B disagrees with the reference gets a proposal. This is the
// chase's fixpoint restricted to evidence the reference table already
// settles — the only part of Llunatic that is sound tuple-at-a-time.
type FD struct {
	schema *relation.Schema
	// rules[i] applies lookup[i]: lhs value -> rhs value.
	lhsCols []int
	rhsCols []int
	lookup  []map[string]string
}

// NewFD grounds fds against ref. FDs that do not validate against the
// schema are skipped.
func NewFD(schema *relation.Schema, fds []llunatic.FD, ref *relation.Table) *FD {
	f := &FD{schema: schema}
	for _, fd := range fds {
		if fd.Validate(schema) != nil || len(fd.LHS) != 1 {
			continue
		}
		lhs, rhs := schema.MustCol(fd.LHS[0]), schema.MustCol(fd.RHS)
		m := make(map[string]string)
		bad := make(map[string]bool)
		for _, t := range ref.Tuples {
			lv, rv := t.Values[lhs], t.Values[rhs]
			if lv == "" || rv == "" || rv == llunatic.Llun {
				continue
			}
			if prev, ok := m[lv]; ok && prev != rv {
				bad[lv] = true
				continue
			}
			m[lv] = rv
		}
		for lv := range bad {
			delete(m, lv) // ambiguous in the reference: no verdict
		}
		if len(m) == 0 {
			continue
		}
		f.lhsCols = append(f.lhsCols, lhs)
		f.rhsCols = append(f.rhsCols, rhs)
		f.lookup = append(f.lookup, m)
	}
	return f
}

func (f *FD) Name() string { return "llunatic" }

func (f *FD) Propose(ctx context.Context, values []string, marked []bool) []ensemble.Proposal {
	if err := ctx.Err(); err != nil {
		return nil
	}
	limit := maxProposalsPerEngine(f.schema.Arity())
	var props []ensemble.Proposal
	for i, lhs := range f.lhsCols {
		if len(props) >= limit {
			break
		}
		want, ok := f.lookup[i][values[lhs]]
		if !ok || values[f.rhsCols[i]] == want {
			continue
		}
		props = append(props, ensemble.Proposal{Col: f.rhsCols[i], Value: want, Conf: 1})
	}
	return props
}

// CFD adapts mined constant CFDs to per-tuple proposals. Each
// cfd.Rule is already fully grounded (constant LHS values implying a
// constant RHS value), so the adapter is a hash lookup keyed by the
// rule's LHS pattern.
type CFD struct {
	schema *relation.Schema
	// buckets groups rules by their LHS column signature so one tuple
	// probe per template suffices.
	buckets []cfdBucket
}

type cfdBucket struct {
	lhsCols []int
	rhsCol  int
	byVals  map[string]string // joined LHS values -> RHS value
}

// NewCFD indexes rs. Rules whose columns are absent from schema are
// skipped.
func NewCFD(schema *relation.Schema, rs []cfd.Rule) *CFD {
	c := &CFD{schema: schema}
	byTpl := make(map[string]int)
	for _, r := range rs {
		key := strings.Join(r.LHS, "\x00") + "\x01" + r.RHS
		bi, ok := byTpl[key]
		if !ok {
			b := cfdBucket{rhsCol: schema.Col(r.RHS), byVals: make(map[string]string)}
			valid := b.rhsCol >= 0
			for _, a := range r.LHS {
				ci := schema.Col(a)
				if ci < 0 {
					valid = false
					break
				}
				b.lhsCols = append(b.lhsCols, ci)
			}
			if !valid {
				continue
			}
			bi = len(c.buckets)
			c.buckets = append(c.buckets, b)
			byTpl[key] = bi
		}
		c.buckets[bi].byVals[strings.Join(r.LHSVals, "\x00")] = r.RHSVal
	}
	return c
}

func (c *CFD) Name() string { return "cfd" }

func (c *CFD) Propose(ctx context.Context, values []string, marked []bool) []ensemble.Proposal {
	if err := ctx.Err(); err != nil {
		return nil
	}
	limit := maxProposalsPerEngine(c.schema.Arity())
	var props []ensemble.Proposal
	var key strings.Builder
	for _, b := range c.buckets {
		if len(props) >= limit {
			break
		}
		key.Reset()
		for i, ci := range b.lhsCols {
			if i > 0 {
				key.WriteByte(0)
			}
			key.WriteString(values[ci])
		}
		want, ok := b.byVals[key.String()]
		if !ok || values[b.rhsCol] == want {
			continue
		}
		props = append(props, ensemble.Proposal{Col: b.rhsCol, Value: want, Conf: 1})
	}
	return props
}

// AllPairTemplates returns every single-LHS template A→B over the
// schema — the template universe the serving path mines constant CFDs
// from when none are configured explicitly.
func AllPairTemplates(schema *relation.Schema) []cfd.Template {
	var ts []cfd.Template
	for _, a := range schema.Attrs {
		for _, b := range schema.Attrs {
			if a == b {
				continue
			}
			ts = append(ts, cfd.Template{LHS: []string{a}, RHS: b})
		}
	}
	return ts
}

// LoadReference reads the clean reference CSV the FD and CFD
// proposers are grounded from. The header must match schema exactly.
func LoadReference(schema *relation.Schema, path string) (*relation.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tb, err := relation.ReadCSV(schema.Name, f)
	if err != nil {
		return nil, fmt.Errorf("ensemble reference %s: %w", path, err)
	}
	if len(tb.Schema.Attrs) != len(schema.Attrs) {
		return nil, fmt.Errorf("ensemble reference %s: %d columns, schema has %d", path, len(tb.Schema.Attrs), len(schema.Attrs))
	}
	for i, a := range schema.Attrs {
		if tb.Schema.Attrs[i] != a {
			return nil, fmt.Errorf("ensemble reference %s: column %d is %q, schema has %q", path, i, tb.Schema.Attrs[i], a)
		}
	}
	return &relation.Table{Schema: schema, Tuples: tb.Tuples}, nil
}

// BuildProposers assembles the serving-path auxiliary proposer set
// from whatever inputs are available: KATARA when a valid exact-match
// pattern exists, FD and CFD when a reference table is supplied.
// Missing inputs degrade honestly — the ensemble simply runs with
// fewer voters.
func BuildProposers(schema *relation.Schema, pattern rules.Graph, store *kb.Store, ref *relation.Table) []ensemble.Proposer {
	var ps []ensemble.Proposer
	if store != nil && len(pattern.Nodes) > 0 {
		if k, err := NewKATARA(pattern, store, schema); err == nil {
			ps = append(ps, k)
		}
	}
	if ref != nil && ref.Len() > 0 {
		fd := NewFD(schema, llunatic.MineFDs(ref, 2), ref)
		if len(fd.lookup) > 0 {
			ps = append(ps, fd)
		}
		if rs, err := cfd.Mine(ref, AllPairTemplates(schema), 2); err == nil {
			c := NewCFD(schema, rs)
			if len(c.buckets) > 0 {
				ps = append(ps, c)
			}
		}
	}
	return ps
}
