// Package ensemble holds the building blocks of the serving-path
// ensemble repair mode: the Proposer interface the auxiliary engines
// (KATARA, FD chase, constant CFDs) are adapted to, the weighted
// cell-level vote that combines their proposals with the detective
// engine's, and the KB-suspicion signal that down-weights proposals
// resting on flagged taxonomy content.
//
// The package deliberately does not import internal/repair: the
// repair engine embeds the vote (so the ensemble path shares the
// engine's memo, breaker, recorder, and telemetry), and this package
// supplies everything the vote needs without creating an import
// cycle. See repair.Options.Ensemble for the wiring.
//
// The design follows HoloClean's holistic-inference idea (PAPERS.md):
// several independent, individually fallible repair signals combine
// into one scored verdict, and a configurable acceptance threshold
// turns low-confidence repairs into detect-only marks instead of
// rewrites.
package ensemble

import (
	"context"
	"sort"
)

// Proposal is one engine's suggested rewrite of one cell.
type Proposal struct {
	// Col is the schema column index the proposal rewrites.
	Col int
	// Value is the proposed replacement value.
	Value string
	// Conf is the engine's own confidence in [0, 1]; it scales the
	// engine's weight in the vote.
	Conf float64
	// KB marks a proposal whose value was drawn from the knowledge
	// base (detective rules, KATARA); only KB-backed proposals are
	// subject to suspicion down-weighting.
	KB bool
}

// Proposer is one repair engine viewed as a per-tuple proposal
// source. Propose inspects the tuple and returns the cell rewrites
// the engine would apply; it must not mutate the tuple. Values is the
// tuple's cell values and marked its positive marks — proposals for
// marked cells are discarded by the vote (a marked cell has been
// proven correct and is never second-guessed, §III-B).
//
// Propose runs concurrently with other proposers and must be safe for
// concurrent use. A panic inside Propose quarantines that engine for
// the tuple (its proposals are dropped, the tuple is still served);
// ctx cancellation should make Propose return early with whatever it
// has.
type Proposer interface {
	Name() string
	Propose(ctx context.Context, values []string, marked []bool) []Proposal
}

// DefaultThreshold is the acceptance threshold when
// repair.EnsembleOptions.Threshold is zero: a winning value must hold
// at least this share of the participating vote weight (capped at a
// total of 1) to be written; below it the cell degrades to a
// detect-only mark. Under DefaultWeights this admits an uncontested
// detective repair, a strongly-matched KATARA repair, and any
// coalition containing one of those — while a lone FD or CFD
// proposal, or the two agreeing with each other, stays detect-only
// (their standalone precision on the eval suite is ~0.6).
const DefaultThreshold = 0.68

// DefaultWeights are the per-engine vote weights when
// repair.EnsembleOptions.Weights does not name an engine. The
// detective engine anchors the scale at 1; the auxiliary engines are
// ranked by the precision the paper's Exp-1/Exp-2 measured for them,
// and the FD-family weights sit low enough that llunatic and cfd
// agreeing with each other (their errors are correlated — both chase
// mined dependencies) sums below DefaultThreshold.
var DefaultWeights = map[string]float64{
	"detective": 1.0,
	"katara":    0.9,
	"cfd":       0.35,
	"llunatic":  0.25,
}

// DefaultWeight is the weight of an engine named by no entry in
// either the configured or the default weight map.
const DefaultWeight = 0.5

// WeightFor resolves the effective base weight of engine name:
// explicit configuration first, then DefaultWeights, then
// DefaultWeight.
func WeightFor(weights map[string]float64, name string) float64 {
	if w, ok := weights[name]; ok {
		return w
	}
	if w, ok := DefaultWeights[name]; ok {
		return w
	}
	return DefaultWeight
}

// Decision is the vote's verdict on one cell.
type Decision struct {
	// Col is the schema column index.
	Col int
	// Value is the winning proposed value.
	Value string
	// Conf is the winner's share of the participating weight, capped
	// at a total of 1 so a lone low-weight engine cannot award itself
	// full confidence.
	Conf float64
	// Conflict reports that more than one distinct value was proposed
	// for the cell.
	Conflict bool
	// Backers are the indexes (into the vote's engine slice) of the
	// engines whose proposal matched the winning value; Participants
	// are all engines that proposed anything for the cell.
	Backers      []int
	Participants []int
}

// Vote combines per-engine proposals for one tuple into per-cell
// decisions. byEngine[i] holds engine i's proposals and weights[i]
// its effective weight (base weight × reliability); suspect, when
// non-nil, returns a multiplicative penalty in (0, 1] for a KB-backed
// proposal of the given value. Proposals for marked cells and
// proposals from zero-weight engines are ignored. Decisions are
// returned in ascending column order.
//
// Confidence of value v in a cell:
//
//	conf(v) = Σ effW(engines proposing v) / max(Σ effW(participants), 1)
//
// where effW folds the proposal's own Conf and any suspicion penalty
// into the engine weight. The max(·, 1) floor means a single engine
// of weight w proposing alone yields conf = w: acceptance then
// reduces to "is this engine alone trustworthy enough", while
// agreeing engines accumulate support toward 1.
// Vote enforces one vote per engine per candidate value: an engine
// that derives the same rewrite through several of its own rules
// (e.g. many CFD templates implying one RHS) must not stack its
// weight into a self-coalition — only its strongest derivation
// counts. Coalitions therefore always mean *distinct* engines
// agreeing.
func Vote(byEngine [][]Proposal, weights []float64, marked []bool, suspect func(string) float64) []Decision {
	type cand struct {
		value string
		engW  map[int]float64 // backer engine -> strongest effW
	}
	type cell struct {
		cands        []cand
		participants []int
	}
	cells := make(map[int]*cell)
	for ei, props := range byEngine {
		if weights[ei] <= 0 {
			continue
		}
		for _, p := range props {
			if p.Col < 0 || (p.Col < len(marked) && marked[p.Col]) {
				continue // marked cells are proven correct, never revoted
			}
			w := weights[ei] * p.Conf
			if p.KB && suspect != nil {
				w *= suspect(p.Value)
			}
			if w <= 0 {
				continue
			}
			c := cells[p.Col]
			if c == nil {
				c = &cell{}
				cells[p.Col] = c
			}
			if !hasEngine(c.participants, ei) {
				c.participants = append(c.participants, ei)
			}
			found := false
			for i := range c.cands {
				if c.cands[i].value == p.Value {
					if w > c.cands[i].engW[ei] {
						c.cands[i].engW[ei] = w
					}
					found = true
					break
				}
			}
			if !found {
				c.cands = append(c.cands, cand{value: p.Value, engW: map[int]float64{ei: w}})
			}
		}
	}

	cols := make([]int, 0, len(cells))
	for col := range cells {
		cols = append(cols, col)
	}
	sort.Ints(cols)
	candW := func(cd cand) float64 {
		w := 0.0
		for _, ew := range cd.engW {
			w += ew
		}
		return w
	}
	out := make([]Decision, 0, len(cols))
	for _, col := range cols {
		c := cells[col]
		total := 0.0
		best, bestW := 0, 0.0
		for i, cd := range c.cands {
			w := candW(cd)
			total += w
			// Ties break toward the earlier candidate (the detective
			// engine proposes first), keeping the vote deterministic.
			if i == 0 || w > bestW {
				best, bestW = i, w
			}
		}
		if total < 1 {
			total = 1
		}
		win := c.cands[best]
		backers := make([]int, 0, len(win.engW))
		for ei := range win.engW {
			backers = append(backers, ei)
		}
		sort.Ints(backers)
		out = append(out, Decision{
			Col:          col,
			Value:        win.value,
			Conf:         bestW / total,
			Conflict:     len(c.cands) > 1,
			Backers:      backers,
			Participants: c.participants,
		})
	}
	return out
}

// hasEngine reports whether list already contains ei; engine lists
// are tiny (≤ the engine count), so a linear scan beats a map.
func hasEngine(list []int, ei int) bool {
	for _, x := range list {
		if x == ei {
			return true
		}
	}
	return false
}
