package ensemble

import (
	"strings"
	"testing"

	"detective/internal/rules"
	"detective/internal/similarity"
)

const patternRules = `
rule phi_city {
  node w1 col="Name" type="Nobel laureates in Chemistry" sim="="
  node w2 col="Institution" type="organization" sim="ED,2"
  pos  p1 col="City" type="city" sim="="
  neg  n1 col="City" type="city" sim="="
  edge w1 "worksAt" w2
  edge w2 "locatedIn" p1
  edge w1 "wasBornIn" n1
}

rule phi_prize {
  node w1 col="Name" type="people" sim="="
  pos  p2 col="Prize" type="award" sim="="
  edge w1 "wonPrize" p2
}
`

func parsePatternRules(t *testing.T) []*rules.DR {
	t.Helper()
	drs, err := rules.ParseRules(strings.NewReader(patternRules))
	if err != nil {
		t.Fatalf("ParseRules: %v", err)
	}
	return drs
}

func TestPatternFromRulesUnionsNodesByColumn(t *testing.T) {
	g := PatternFromRules(parsePatternRules(t))

	byCol := make(map[string]rules.Node)
	for _, n := range g.Nodes {
		if _, dup := byCol[n.Col]; dup {
			t.Fatalf("column %q appears in two pattern nodes", n.Col)
		}
		byCol[n.Col] = n
	}
	for _, col := range []string{"Name", "Institution", "City", "Prize"} {
		if _, ok := byCol[col]; !ok {
			t.Fatalf("column %q missing from pattern (have %v)", col, byCol)
		}
	}
	// First type wins when two rules bind the same column differently.
	if got := byCol["Name"].Type; got != "Nobel laureates in Chemistry" {
		t.Errorf("Name type = %q, want the first rule's type", got)
	}
	// KATARA matches exactly; the ED,2 spec on Institution must not survive.
	for _, n := range g.Nodes {
		if n.Sim != similarity.Eq {
			t.Errorf("node %s (col %s) Sim = %+v, want forced Eq", n.Name, n.Col, n.Sim)
		}
	}
}

func TestPatternFromRulesKeepsOnlyFullyBoundEdges(t *testing.T) {
	g := PatternFromRules(parsePatternRules(t))

	name2col := make(map[string]string)
	for _, n := range g.Nodes {
		name2col[n.Name] = n.Col
	}
	type edge struct{ from, rel, to string }
	got := make(map[edge]int)
	for _, e := range g.Edges {
		got[edge{name2col[e.From], e.Rel, name2col[e.To]}]++
	}
	want := []edge{
		{"Name", "worksAt", "Institution"},
		{"Institution", "locatedIn", "City"},
		{"Name", "wonPrize", "Prize"},
	}
	for _, e := range want {
		if got[e] != 1 {
			t.Errorf("edge %v appears %d times, want exactly once", e, got[e])
		}
	}
	// The wasBornIn edge targets the neg node, which the pattern drops.
	if len(g.Edges) != len(want) {
		t.Errorf("edges = %d (%v), want %d: the neg-node edge must be dropped",
			len(g.Edges), g.Edges, len(want))
	}
}
