package ensemble

import (
	"math"
	"testing"
)

func prop(col int, v string, conf float64, kbBacked bool) Proposal {
	return Proposal{Col: col, Value: v, Conf: conf, KB: kbBacked}
}

func TestVoteLoneEngineConfidenceIsItsWeight(t *testing.T) {
	ds := Vote([][]Proposal{
		{prop(2, "x", 1, false)},
	}, []float64{0.9}, nil, nil)
	if len(ds) != 1 {
		t.Fatalf("decisions = %v, want 1", ds)
	}
	d := ds[0]
	if d.Col != 2 || d.Value != "x" || d.Conflict {
		t.Fatalf("decision = %+v", d)
	}
	if math.Abs(d.Conf-0.9) > 1e-9 {
		t.Fatalf("Conf = %v, want 0.9 (lone engine of weight 0.9)", d.Conf)
	}
}

func TestVoteUnanimousCoalitionCapsAtOne(t *testing.T) {
	ds := Vote([][]Proposal{
		{prop(0, "x", 1, false)},
		{prop(0, "x", 1, false)},
	}, []float64{1.0, 0.9}, nil, nil)
	if len(ds) != 1 || ds[0].Conf != 1 {
		t.Fatalf("decisions = %+v, want one decision at conf 1", ds)
	}
	if got := ds[0].Backers; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Backers = %v, want [0 1]", got)
	}
	if ds[0].Conflict {
		t.Fatal("unanimous vote must not be a conflict")
	}
}

func TestVoteConflictSplitsWeight(t *testing.T) {
	ds := Vote([][]Proposal{
		{prop(0, "a", 1, false)},
		{prop(0, "b", 1, false)},
	}, []float64{1.0, 0.6}, nil, nil)
	if len(ds) != 1 {
		t.Fatalf("decisions = %v", ds)
	}
	d := ds[0]
	if !d.Conflict || d.Value != "a" {
		t.Fatalf("decision = %+v, want conflict won by engine 0", d)
	}
	if want := 1.0 / 1.6; math.Abs(d.Conf-want) > 1e-9 {
		t.Fatalf("Conf = %v, want %v", d.Conf, want)
	}
	if len(d.Participants) != 2 {
		t.Fatalf("Participants = %v, want both engines", d.Participants)
	}
}

func TestVoteTieBreaksToEarlierEngine(t *testing.T) {
	ds := Vote([][]Proposal{
		{prop(0, "a", 1, false)},
		{prop(0, "b", 1, false)},
	}, []float64{0.7, 0.7}, nil, nil)
	if ds[0].Value != "a" {
		t.Fatalf("tied vote won by %q, want the earlier engine's value", ds[0].Value)
	}
}

// One engine deriving the same rewrite through several of its own
// rules must not stack weight into a self-coalition: only distinct
// engines accumulate support. This is what keeps a many-template CFD
// proposer from out-voting everyone on its own.
func TestVoteOneEngineOneVotePerCandidate(t *testing.T) {
	ds := Vote([][]Proposal{
		{prop(0, "x", 1, false), prop(0, "x", 1, false), prop(0, "x", 0.5, false)},
	}, []float64{0.5}, nil, nil)
	if len(ds) != 1 {
		t.Fatalf("decisions = %v", ds)
	}
	if math.Abs(ds[0].Conf-0.5) > 1e-9 {
		t.Fatalf("Conf = %v, want 0.5 (no self-coalition)", ds[0].Conf)
	}
	if len(ds[0].Backers) != 1 || len(ds[0].Participants) != 1 {
		t.Fatalf("Backers=%v Participants=%v, want one entry each",
			ds[0].Backers, ds[0].Participants)
	}
}

// The strongest of an engine's duplicate derivations counts, in
// either arrival order.
func TestVoteDuplicateDerivationKeepsStrongest(t *testing.T) {
	for _, props := range [][]Proposal{
		{prop(0, "x", 0.4, false), prop(0, "x", 1, false)},
		{prop(0, "x", 1, false), prop(0, "x", 0.4, false)},
	} {
		ds := Vote([][]Proposal{props}, []float64{0.8}, nil, nil)
		if math.Abs(ds[0].Conf-0.8) > 1e-9 {
			t.Fatalf("Conf = %v, want 0.8 (strongest derivation)", ds[0].Conf)
		}
	}
}

func TestVoteMarkedCellsNeverRevoted(t *testing.T) {
	ds := Vote([][]Proposal{
		{prop(0, "x", 1, false), prop(1, "y", 1, false)},
	}, []float64{1}, []bool{true, false}, nil)
	if len(ds) != 1 || ds[0].Col != 1 {
		t.Fatalf("decisions = %+v, want only the unmarked column", ds)
	}
}

func TestVoteZeroWeightEngineIgnored(t *testing.T) {
	ds := Vote([][]Proposal{
		{prop(0, "a", 1, false)},
		{prop(0, "b", 1, false), prop(1, "c", 1, false)},
	}, []float64{1, 0}, nil, nil)
	if len(ds) != 1 || ds[0].Col != 0 || ds[0].Value != "a" || ds[0].Conflict {
		t.Fatalf("decisions = %+v, want the zero-weight engine fully ignored", ds)
	}
}

func TestVoteSuspicionPenalizesKBProposalsOnly(t *testing.T) {
	suspect := func(v string) float64 {
		if v == "bad" {
			return 0.5
		}
		return 1
	}
	ds := Vote([][]Proposal{
		{prop(0, "bad", 1, true), prop(1, "bad", 1, false)},
	}, []float64{1}, nil, suspect)
	if len(ds) != 2 {
		t.Fatalf("decisions = %v", ds)
	}
	if math.Abs(ds[0].Conf-0.5) > 1e-9 {
		t.Fatalf("KB-backed suspect Conf = %v, want 0.5", ds[0].Conf)
	}
	if math.Abs(ds[1].Conf-1.0) > 1e-9 {
		t.Fatalf("non-KB suspect Conf = %v, want 1 (no penalty)", ds[1].Conf)
	}
}

func TestVoteDecisionsAscendingByColumn(t *testing.T) {
	ds := Vote([][]Proposal{
		{prop(3, "c", 1, false), prop(0, "a", 1, false), prop(1, "b", 1, false)},
	}, []float64{1}, nil, nil)
	if len(ds) != 3 || ds[0].Col != 0 || ds[1].Col != 1 || ds[2].Col != 3 {
		t.Fatalf("decisions out of column order: %+v", ds)
	}
}

func TestWeightFor(t *testing.T) {
	if w := WeightFor(nil, "detective"); w != 1.0 {
		t.Errorf("detective default = %v", w)
	}
	if w := WeightFor(map[string]float64{"katara": 0.2}, "katara"); w != 0.2 {
		t.Errorf("explicit weight = %v, want 0.2", w)
	}
	if w := WeightFor(nil, "unheard-of"); w != DefaultWeight {
		t.Errorf("unknown engine = %v, want DefaultWeight", w)
	}
	// An explicit zero silences the engine; only absence falls back.
	if w := WeightFor(map[string]float64{"cfd": 0}, "cfd"); w != 0 {
		t.Errorf("explicit zero = %v, want 0", w)
	}
}

func TestFDCoalitionStaysBelowDefaultThreshold(t *testing.T) {
	// The FD-family engines chase mined dependencies and err together;
	// the defaults must keep their two-engine agreement detect-only.
	sum := DefaultWeights["llunatic"] + DefaultWeights["cfd"]
	if sum >= DefaultThreshold {
		t.Fatalf("llunatic+cfd = %v >= DefaultThreshold %v; their pact would rewrite cells",
			sum, DefaultThreshold)
	}
	// While the anchors stay independently trusted.
	if DefaultWeights["detective"] < DefaultThreshold {
		t.Fatal("an uncontested detective repair must clear the threshold")
	}
}

func TestSuspicion(t *testing.T) {
	s := NewSuspicion([]string{"Evil Corp"}, 0.5)
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if f := s.Factor("Evil Corp"); f != 0.5 {
		t.Errorf("suspect factor = %v, want 0.5", f)
	}
	if f := s.Factor("Fine Inc"); f != 1 {
		t.Errorf("clean factor = %v, want 1", f)
	}

	var h SuspicionHolder
	if h.Load().Len() != 0 {
		t.Fatal("empty holder must load a zero-suspicion view")
	}
	h.Store(s)
	if h.Load().Factor("Evil Corp") != 0.5 {
		t.Fatal("holder did not publish the stored suspicion")
	}
	h.Store(nil)
	if h.Load().Factor("Evil Corp") != 1 {
		t.Fatal("nil store must clear the suspicion")
	}
}
