package repair

import "fmt"

// PartialError reports a repair run that was interrupted — by
// cancellation, a deadline, or a mid-stream input/output failure —
// after some tuples had already been processed. Everything up to Done
// is valid output; errors.Is/As see through it to the cause.
type PartialError struct {
	// Done is the number of tuples fully processed (and, for the
	// streaming APIs, flushed) before the interruption.
	Done int
	// Err is the underlying cause: a context error, a CSV parse
	// error, or a sink write error.
	Err error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("repair: interrupted after %d tuples: %v", e.Done, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }
