// Package repair implements the paper's cleaning algorithms: the
// chase-style basic repair (Algorithm 1), the fast repair with rule
// ordering, signature indexes and shared computation (Algorithm 2),
// and multi-version repairs (§IV-C).
package repair

import (
	"detective/internal/rules"
)

// RuleGraph is the dependency graph of §IV-B(1): an edge ϕ → ϕ'
// whenever col(p) of ϕ appears among the evidence columns of ϕ',
// i.e. applying ϕ may change or certify a value ϕ' relies on, so ϕ
// must be checked first.
type RuleGraph struct {
	Rules []*rules.DR
	Adj   [][]int // Adj[i]: rules that must be checked after rule i

	// Groups lists strongly connected components in topological order;
	// each group holds rule indexes. Cycles ("circles" in the paper)
	// appear as groups with more than one rule and are re-scanned until
	// stable by the fast repair engine.
	Groups [][]int
}

// BuildRuleGraph constructs the graph and its SCC condensation order.
func BuildRuleGraph(rs []*rules.DR) *RuleGraph {
	g := &RuleGraph{Rules: rs, Adj: make([][]int, len(rs))}
	for i, ri := range rs {
		for j, rj := range rs {
			if i == j {
				continue
			}
			for _, ev := range rj.EvidenceCols() {
				if ev == ri.PosCol() {
					g.Adj[i] = append(g.Adj[i], j)
					break
				}
			}
		}
	}
	g.Groups = g.sccTopoOrder()
	return g
}

// sccTopoOrder returns the strongly connected components of the graph
// in topological order (Tarjan's algorithm emits SCCs in reverse
// topological order; we reverse at the end). Within a component, rule
// indexes keep their original relative order for determinism.
func (g *RuleGraph) sccTopoOrder() [][]int {
	n := len(g.Rules)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	var sccs [][]int
	counter := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Adj[v] {
			if index[w] == unvisited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			// Keep original rule order inside the component.
			sortInts(comp)
			sccs = append(sccs, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] == unvisited {
			strongconnect(v)
		}
	}
	// Tarjan emits reverse topological order.
	for i, j := 0, len(sccs)-1; i < j; i, j = i+1, j-1 {
		sccs[i], sccs[j] = sccs[j], sccs[i]
	}
	return sccs
}

// Order flattens Groups into one topological rule order.
func (g *RuleGraph) Order() []int {
	var out []int
	for _, grp := range g.Groups {
		out = append(out, grp...)
	}
	return out
}

// HasCycle reports whether any strongly connected component contains
// more than one rule.
func (g *RuleGraph) HasCycle() bool {
	for _, grp := range g.Groups {
		if len(grp) > 1 {
			return true
		}
	}
	return false
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
