package repair_test

import (
	"fmt"
	"testing"

	"detective/internal/dataset"
	"detective/internal/relation"
	"detective/internal/repair"
)

// parallelCases enumerates the seeded datasets the equivalence
// property is checked over. Sizes are modest so the suite stays fast
// under -race, but every dataset family and noise shape is covered.
func parallelCases(t *testing.T) []struct {
	name   string
	engine *repair.Engine
	dirty  *relation.Table
} {
	t.Helper()
	var cases []struct {
		name   string
		engine *repair.Engine
		dirty  *relation.Table
	}
	add := func(name string, e *repair.Engine, err error, dirty *relation.Table) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cases = append(cases, struct {
			name   string
			engine *repair.Engine
			dirty  *relation.Table
		}{name, e, dirty})
	}

	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	add("paper-example", e, err, ex.Dirty)

	for _, seed := range []int64{3, 11} {
		nb := dataset.NewNobel(seed, 150)
		inj := nb.Inject(dataset.Noise{Rate: 0.15, TypoFrac: 0.5, Seed: seed})
		e, err := repair.NewEngine(nb.Rules, nb.Yago, nb.Schema)
		add(fmt.Sprintf("nobel-seed%d", seed), e, err, inj.Dirty)
	}

	uis := dataset.NewUIS(7, 250)
	uisInj := uis.Inject(dataset.Noise{Rate: 0.12, TypoFrac: 0.3, Seed: 7})
	e, err = repair.NewEngine(uis.Rules, uis.Yago, uis.Schema)
	add("uis-seed7", e, err, uisInj.Dirty)

	return cases
}

// TestParallelEqualsSerial is the property the data-parallel fan-out
// relies on: RepairTableParallel(tb, k) must equal RepairTable(tb,
// true) cell-for-cell — values and marks — for any worker count,
// because tuples are repaired independently (§V-B). Run under -race
// this also exercises the pooled per-tuple state and the sharded
// candidate cache for unsynchronized sharing.
func TestParallelEqualsSerial(t *testing.T) {
	for _, tc := range parallelCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.engine.RepairTable(tc.dirty, true)
			for _, workers := range []int{0, 1, 2, 5} {
				got := tc.engine.RepairTableParallel(tc.dirty, workers)
				if got.Len() != want.Len() {
					t.Fatalf("workers=%d: %d tuples, want %d", workers, got.Len(), want.Len())
				}
				for i := range want.Tuples {
					if !want.Tuples[i].EqualMarked(got.Tuples[i]) {
						t.Fatalf("workers=%d tuple %d: %v, want %v",
							workers, i, got.Tuples[i], want.Tuples[i])
					}
				}
			}
		})
	}
}

// TestParallelDoesNotMutateInput guards the contract that repair
// returns cleaned copies: the dirty table must be bit-identical after
// a parallel run.
func TestParallelDoesNotMutateInput(t *testing.T) {
	nb := dataset.NewNobel(5, 100)
	inj := nb.Inject(dataset.Noise{Rate: 0.2, TypoFrac: 0.5, Seed: 5})
	e, err := repair.NewEngine(nb.Rules, nb.Yago, nb.Schema)
	if err != nil {
		t.Fatal(err)
	}
	before := inj.Dirty.Clone()
	e.RepairTableParallel(inj.Dirty, 4)
	for i := range before.Tuples {
		if !before.Tuples[i].EqualMarked(inj.Dirty.Tuples[i]) {
			t.Fatalf("tuple %d mutated: %v, was %v", i, inj.Dirty.Tuples[i], before.Tuples[i])
		}
	}
}
