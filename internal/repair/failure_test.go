package repair_test

import (
	"math/rand"
	"testing"

	"detective/internal/dataset"
	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// --- failure injection: degraded KBs must degrade gracefully ---------

func TestRepairAgainstEmptyKB(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, kb.New(), ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range ex.Dirty.Tuples {
		got := e.FastRepair(tu)
		if !got.Equal(tu) || got.IsMarked() {
			t.Errorf("tuple %d changed/marked against an empty KB: %v", i, got)
		}
	}
}

func TestRepairWithMissingRelations(t *testing.T) {
	// A KB with types but no relationship edges: rules can never
	// assemble evidence, so nothing is touched.
	ex := dataset.NewPaperExample()
	g := kb.New()
	g.AddType("Avram Hershko", "Nobel laureates in Chemistry")
	g.AddType("Haifa", "city")
	g.AddType("Karcag", "city")
	e, err := repair.NewEngine(ex.Rules, g, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	got := e.FastRepair(ex.Dirty.Tuples[0])
	if !got.Equal(ex.Dirty.Tuples[0]) {
		t.Fatalf("repair happened without relationship evidence: %v", got)
	}
}

func TestRepairRuleOverUnknownTypes(t *testing.T) {
	// Rules whose types the KB has never heard of: valid engine, no-op
	// cleaning.
	schema := relation.NewSchema("R", "A", "B")
	neg := rules.Node{Name: "n", Col: "B", Type: "ghost-type", Sim: similarity.Eq}
	dr := &rules.DR{
		Name:     "ghost",
		Evidence: []rules.Node{{Name: "e", Col: "A", Type: "phantom-type", Sim: similarity.Eq}},
		Pos:      rules.Node{Name: "p", Col: "B", Type: "ghost-type", Sim: similarity.Eq},
		Neg:      &neg,
		Edges: []rules.Edge{
			{From: "e", Rel: "r", To: "p"},
			{From: "e", Rel: "s", To: "n"},
		},
	}
	g := kb.New()
	g.AddTriple("x", "r", "y")
	e, err := repair.NewEngine([]*rules.DR{dr}, g, schema)
	if err != nil {
		t.Fatal(err)
	}
	tu := relation.NewTuple("x", "y")
	if got := e.FastRepair(tu); !got.Equal(tu) || got.IsMarked() {
		t.Fatalf("ghost rule acted: %v", got)
	}
}

func TestRepairEmptyValuesAreSafe(t *testing.T) {
	_, e := newEngine(t)
	tu := relation.NewTuple("", "", "", "", "", "")
	got := e.FastRepair(tu)
	if !got.Equal(tu) {
		t.Fatalf("empty tuple changed: %v", got)
	}
	gotB := e.BasicRepair(tu)
	if !gotB.Equal(tu) {
		t.Fatalf("basic: empty tuple changed: %v", gotB)
	}
}

// --- generative invariants across random noise ------------------------

// TestGenerativeEngineInvariants drives the Nobel engine over many
// random noise configurations and checks the core invariants:
// idempotence (a fixpoint stays fixed), basic/fast agreement
// (Church-Rosser across cost models), and mark monotonicity (cleaning
// never removes a mark).
func TestGenerativeEngineInvariants(t *testing.T) {
	b := dataset.NewNobel(99, 150)
	e, err := repair.NewEngine(b.Rules, b.Yago, b.Schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 12; trial++ {
		inj := b.Inject(dataset.Noise{
			Rate:     0.05 + rng.Float64()*0.3,
			TypoFrac: rng.Float64(),
			Seed:     rng.Int63(),
		})
		for i := 0; i < inj.Dirty.Len(); i += 7 { // sample rows
			tu := inj.Dirty.Tuples[i]
			fast := e.FastRepair(tu)
			basic := e.BasicRepair(tu)
			if !fast.EqualMarked(basic) {
				t.Fatalf("trial %d row %d: fast %v != basic %v", trial, i, fast, basic)
			}
			again := e.FastRepair(fast)
			if !again.EqualMarked(fast) {
				t.Fatalf("trial %d row %d: not a fixpoint: %v -> %v", trial, i, fast, again)
			}
			for j := range tu.Marked {
				if tu.Marked[j] && !fast.Marked[j] {
					t.Fatalf("trial %d row %d: mark removed at col %d", trial, i, j)
				}
			}
		}
	}
}

func TestRepairTableWithUsage(t *testing.T) {
	ex, e := newEngine(t)
	cleaned, report := e.RepairTableWithUsage(ex.Dirty)
	if report.Tuples != 4 {
		t.Fatalf("Tuples = %d", report.Tuples)
	}
	if len(report.PerRule) != 4 {
		t.Fatalf("PerRule = %v", report.PerRule)
	}
	byName := make(map[string]repair.RuleUsage)
	total := 0
	for _, u := range report.PerRule {
		byName[u.Rule] = u
		total += u.Positives + u.Repairs
	}
	// phi2 repairs r1's City and phi1 repairs r2's Institution and
	// r4's (multi-version) Institution.
	if byName["phi2"].Repairs == 0 {
		t.Errorf("phi2 usage = %+v, want repairs > 0", byName["phi2"])
	}
	if byName["phi1"].MultiVersion == 0 {
		t.Errorf("phi1 usage = %+v, want a multi-version repair (Calvin)", byName["phi1"])
	}
	if total == 0 {
		t.Fatal("no usage recorded")
	}
	// The cleaned output equals the plain repair result.
	want := e.RepairTable(ex.Dirty, true)
	for i := range want.Tuples {
		if !want.Tuples[i].EqualMarked(cleaned.Tuples[i]) {
			t.Fatalf("row %d differs from RepairTable", i)
		}
	}
	if report.String() == "" {
		t.Error("empty report rendering")
	}
}
