package repair_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"detective/internal/faultinject"
	"detective/internal/relation"
	"detective/internal/repair"
)

// Small thresholds so a handful of rows exercises the whole breaker
// lifecycle. (TestFault* naming opts these into the nightly fault
// lane's repeated -race runs.)
func breakerTestOptions() repair.BreakerOptions {
	return repair.BreakerOptions{Enabled: true, Window: 8, MinSamples: 4, TripRatio: 0.5, CooldownRows: 4}
}

// poisonedRec returns a distinct record whose City cell trips the
// injected similarity panic; varying Country keeps the rows distinct
// so the memo cannot absorb the storm before the breaker sees it.
func poisonedRec(poison string, i int) []string {
	return []string{"Alice", poison, fmt.Sprintf("E%02d", i)}
}

// TestFaultBreakerTripsToDetectOnly drives a storm of poisoned rows
// through RepairRow: the breaker must trip to detect-only, after which
// healthy rows keep their original values but still carry the marks of
// the rules that would have fired.
func TestFaultBreakerTripsToDetectOnly(t *testing.T) {
	e, _ := memoEngine(t, repair.Options{MemoDisabled: true, Breaker: breakerTestOptions()})
	poison := "POISON-CITY-41B"
	defer faultinject.PanicOnValue(poison)()

	dst := &relation.Tuple{Values: make([]string, 3), Marked: make([]bool, 3)}
	for i := 0; i < 6; i++ {
		if oc, _ := e.RepairRow(dst, poisonedRec(poison, i)); oc != repair.RowQuarantined && e.BreakerStats().State == "closed" {
			t.Fatalf("poisoned row %d = %v while closed, want RowQuarantined", i, oc)
		}
	}
	stats := e.BreakerStats()
	if !stats.Enabled || stats.State != "open" || stats.Trips != 1 {
		t.Fatalf("breaker did not trip: %+v", stats)
	}

	// Detect-only: a healthy repairable row passes through with its
	// original values, marked where rules implicate cells.
	oc, hit := e.RepairRow(dst, []string{"Alice", "ParisX", "EuroX"})
	if oc != repair.RowRepaired || hit {
		t.Fatalf("degraded healthy row = (%v, %v), want (RowRepaired, false)", oc, hit)
	}
	if dst.Values[1] != "ParisX" || dst.Values[2] != "EuroX" {
		t.Fatalf("detect-only rewrote values: %v", dst.Values)
	}
	if !dst.Marked[1] || !dst.Marked[2] {
		t.Fatalf("detect-only lost the rule marks: %v", dst.Marked)
	}
	if got := e.BreakerStats().DegradedRows; got == 0 {
		t.Fatal("DegradedRows not counted")
	}
}

// TestFaultBreakerRecoversViaProbe: after the fault is fixed, the
// cooldown elapses, the half-open probe repairs for real, and the
// breaker closes — full repairs resume.
func TestFaultBreakerRecoversViaProbe(t *testing.T) {
	e, _ := memoEngine(t, repair.Options{MemoDisabled: true, Breaker: breakerTestOptions()})
	poison := "POISON-CITY-52R"
	uninstall := faultinject.PanicOnValue(poison)

	dst := &relation.Tuple{Values: make([]string, 3), Marked: make([]bool, 3)}
	for i := 0; i < 6; i++ {
		e.RepairRow(dst, poisonedRec(poison, i))
	}
	if st := e.BreakerStats(); st.State != "open" {
		t.Fatalf("breaker state = %q, want open", st.State)
	}

	// Fault fixed; rows through the rest of the cooldown (part of which
	// the storm's own tail already consumed) are still detect-only.
	uninstall()
	healthy := []string{"Alice", "ParisX", "EuroX"}
	for i := 0; i < 8 && e.BreakerStats().State == "open"; i++ {
		if oc, _ := e.RepairRow(dst, healthy); oc != repair.RowRepaired || dst.Values[1] != "ParisX" {
			t.Fatalf("cooldown row %d = %v %v, want detect-only original", i, oc, dst.Values)
		}
	}
	if st := e.BreakerStats(); st.State != "half-open" {
		t.Fatalf("breaker state = %q after cooldown, want half-open", st.State)
	}
	// Next row claims the half-open probe and repairs fully.
	if oc, _ := e.RepairRow(dst, healthy); oc != repair.RowRepaired || dst.Values[1] != "ParisA" || dst.Values[2] != "EuroA" {
		t.Fatalf("probe row = %v %v, want full repair", oc, dst.Values)
	}
	st := e.BreakerStats()
	if st.State != "closed" || st.Recoveries != 1 || st.Reopens != 0 {
		t.Fatalf("breaker did not recover: %+v", st)
	}
	// And stays closed for subsequent traffic.
	if oc, _ := e.RepairRow(dst, healthy); oc != repair.RowRepaired || dst.Values[1] != "ParisA" {
		t.Fatalf("post-recovery row = %v %v", oc, dst.Values)
	}
}

// TestFaultBreakerReopensOnFailedProbe: while the fault persists, the
// half-open probe quarantines and the breaker reopens rather than
// letting the storm back in.
func TestFaultBreakerReopensOnFailedProbe(t *testing.T) {
	e, _ := memoEngine(t, repair.Options{MemoDisabled: true, Breaker: breakerTestOptions()})
	poison := "POISON-CITY-63F"
	defer faultinject.PanicOnValue(poison)()

	dst := &relation.Tuple{Values: make([]string, 3), Marked: make([]bool, 3)}
	i := 0
	for ; i < 6; i++ {
		e.RepairRow(dst, poisonedRec(poison, i))
	}
	if st := e.BreakerStats(); st.State != "open" {
		t.Fatalf("breaker state = %q, want open", st.State)
	}
	// Cooldown (detect-only rows: evaluation still panics on the
	// poisoned cell, so they quarantine without being samples), then
	// the probe re-trips the fault and reopens.
	for n := 0; n < 5; n++ {
		e.RepairRow(dst, poisonedRec(poison, i))
		i++
	}
	st := e.BreakerStats()
	if st.Reopens == 0 || st.State != "open" {
		t.Fatalf("failed probe did not reopen: %+v", st)
	}
}

// TestFaultBreakerProbeHealsMemoizedQuarantine pins the memo/breaker
// contract: degraded rows bypass the memo entirely, and the half-open
// probe skips the memo read and overwrites the poisoned verdict — so
// a quarantine cached during the incident does not outlive it.
func TestFaultBreakerProbeHealsMemoizedQuarantine(t *testing.T) {
	e, _ := memoEngine(t, repair.Options{Breaker: breakerTestOptions()})
	poison := "POISON-CITY-74H"
	uninstall := faultinject.PanicOnValue(poison)

	dst := &relation.Tuple{Values: make([]string, 3), Marked: make([]bool, 3)}
	victim := []string{"Alice", poison, "EuroX"}
	if oc, _ := e.RepairRow(dst, victim); oc != repair.RowQuarantined {
		t.Fatalf("victim row = %v, want RowQuarantined", oc)
	}
	// The verdict is memoized: a replay is a hit, still quarantined.
	if oc, hit := e.RepairRow(dst, victim); oc != repair.RowQuarantined || !hit {
		t.Fatalf("replay = (%v, %v), want memoized quarantine", oc, hit)
	}
	// Distinct poisoned rows trip the breaker (memo hits are not
	// samples, so the storm must miss the cache).
	for i := 0; i < 8; i++ {
		e.RepairRow(dst, poisonedRec(poison, i))
	}
	if st := e.BreakerStats(); st.State != "open" {
		t.Fatalf("breaker state = %q, want open", st.State)
	}

	uninstall()
	// Cooldown on the victim row: detect-only, memo bypassed — were it
	// consulted, the cached quarantine would short-circuit recovery.
	for i := 0; i < 4; i++ {
		e.RepairRow(dst, victim)
	}
	// Probe on the victim row: skips the memo read, runs fresh, closes
	// the breaker, and overwrites the cached verdict.
	if oc, hit := e.RepairRow(dst, victim); oc != repair.RowRepaired || hit {
		t.Fatalf("probe = (%v, %v), want fresh RowRepaired", oc, hit)
	}
	if st := e.BreakerStats(); st.State != "closed" || st.Recoveries != 1 {
		t.Fatalf("breaker did not close on probe: %+v", st)
	}
	// The memo now replays the healed verdict.
	if oc, hit := e.RepairRow(dst, victim); oc != repair.RowRepaired || !hit {
		t.Fatalf("healed replay = (%v, %v), want memoized RowRepaired", oc, hit)
	}
}

// TestFaultBreakerStreamDegrades runs the storm through the streaming
// cleaner: rows before the trip repair normally, rows after pass
// through detect-only, and the stream itself never fails.
func TestFaultBreakerStreamDegrades(t *testing.T) {
	e, _ := memoEngine(t, repair.Options{MemoDisabled: true, Breaker: breakerTestOptions()})
	poison := "POISON-CITY-85S"
	defer faultinject.PanicOnValue(poison)()

	var in bytes.Buffer
	in.WriteString("Name,City,Country\n")
	in.WriteString("Alice,ParisX,EuroX\n") // pre-storm: repaired
	for i := 0; i < 6; i++ {
		in.WriteString(strings.Join(poisonedRec(poison, i), ",") + "\n")
	}
	in.WriteString("Alice,ParisY,EuroY\n") // post-trip: detect-only

	var out bytes.Buffer
	res, err := e.CleanCSVStreamContext(context.Background(), &in, &out, false)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if res.Rows != 8 {
		t.Fatalf("res.Rows = %d, want 8", res.Rows)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[1] != "Alice,ParisA,EuroA" {
		t.Fatalf("pre-storm row not repaired: %q", lines[1])
	}
	if lines[8] != "Alice,ParisY,EuroY" {
		t.Fatalf("post-trip row not served detect-only: %q", lines[8])
	}
	// The storm's tail may have burned through the cooldown already, so
	// the breaker is open or half-open — anything but closed.
	if st := e.BreakerStats(); st.State == "closed" || st.DegradedRows == 0 {
		t.Fatalf("breaker not degraded after storm: %+v", st)
	}
}

// TestFaultBreakerDisabledByDefault: without the option the breaker
// never engages — every poisoned row quarantines, healthy rows repair,
// and BreakerStats reports disabled.
func TestFaultBreakerDisabledByDefault(t *testing.T) {
	e, _ := memoEngine(t, repair.Options{MemoDisabled: true})
	poison := "POISON-CITY-96D"
	defer faultinject.PanicOnValue(poison)()

	dst := &relation.Tuple{Values: make([]string, 3), Marked: make([]bool, 3)}
	for i := 0; i < 20; i++ {
		if oc, _ := e.RepairRow(dst, poisonedRec(poison, i)); oc != repair.RowQuarantined {
			t.Fatalf("row %d = %v, want RowQuarantined (no breaker)", i, oc)
		}
	}
	if oc, _ := e.RepairRow(dst, []string{"Alice", "ParisX", "EuroX"}); oc != repair.RowRepaired || dst.Values[1] != "ParisA" {
		t.Fatalf("healthy row degraded without a breaker: %v %v", oc, dst.Values)
	}
	if st := e.BreakerStats(); st.Enabled {
		t.Fatalf("BreakerStats = %+v, want disabled", st)
	}
}
