package repair

import (
	"fmt"
	"sort"
	"strings"

	"detective/internal/relation"
	"detective/internal/rules"
)

// RuleUsage counts what one rule did across a table — the audit view
// an operator wants after a cleaning run ("which rules are actually
// earning their keep, and which never fire?").
type RuleUsage struct {
	Rule string
	// Positives counts proof-positive applications (marks only).
	Positives int
	// Repairs counts applications that rewrote a cell.
	Repairs int
	// MultiVersion counts repairs that had more than one candidate.
	MultiVersion int
}

// UsageReport aggregates per-rule usage over a table.
type UsageReport struct {
	Tuples  int
	PerRule []RuleUsage
}

// String renders the report, busiest rules first.
func (r UsageReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cleaned %d tuples\n", r.Tuples)
	for _, u := range r.PerRule {
		fmt.Fprintf(&b, "  %-24s positives=%-6d repairs=%-6d multi-version=%d\n",
			u.Rule, u.Positives, u.Repairs, u.MultiVersion)
	}
	return b.String()
}

// RepairTableWithUsage is RepairTable (fast engine) plus the per-rule
// usage report. Rules appear in the report even when they never fired.
func (e *Engine) RepairTableWithUsage(tb *relation.Table) (*relation.Table, UsageReport) {
	usage := make(map[string]*RuleUsage, len(e.fast))
	order := make([]string, 0, len(e.fast))
	for _, m := range e.fast {
		usage[m.Rule.Name] = &RuleUsage{Rule: m.Rule.Name}
		order = append(order, m.Rule.Name)
	}
	out := &relation.Table{Schema: tb.Schema, Tuples: make([]*relation.Tuple, tb.Len())}
	for i, t := range tb.Tuples {
		repaired, steps := e.FastRepairExplain(t)
		out.Tuples[i] = repaired
		for _, st := range steps {
			u := usage[st.Rule]
			switch st.Kind {
			case rules.Repair:
				u.Repairs++
				if len(st.Alternatives) > 1 {
					u.MultiVersion++
				}
			case rules.Positive:
				u.Positives++
			}
		}
	}
	report := UsageReport{Tuples: tb.Len()}
	for _, name := range order {
		report.PerRule = append(report.PerRule, *usage[name])
	}
	sort.SliceStable(report.PerRule, func(i, j int) bool {
		a, b := report.PerRule[i], report.PerRule[j]
		if a.Repairs+a.Positives != b.Repairs+b.Positives {
			return a.Repairs+a.Positives > b.Repairs+b.Positives
		}
		return a.Rule < b.Rule
	})
	return out, report
}
