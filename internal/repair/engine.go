package repair

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
)

// Engine applies a set of consistent detective rules to tuples of one
// schema against one KB. Build it once and reuse it across tuples;
// it is safe for concurrent use after construction as long as the KB
// has been frozen, except that the lazy per-class signature indexes
// are built on first use (call Warm to pre-build them).
type Engine struct {
	Schema *relation.Schema
	Cat    *rules.Catalog
	Graph  *RuleGraph

	opts Options

	fast []*rules.Matcher // signature-index candidate retrieval
	slow []*rules.Matcher // full-scan retrieval (Algorithm 1 cost model)

	// Inverted rule indexes (the paper's Figure 5): which rules use a
	// given node/edge check as *evidence*, so a failed shared check
	// prunes every rule that depends on it.
	evNodeIndex map[string][]int
	evEdgeIndex map[string][]int

	// keyCols[k] lists the columns a check key reads, used to
	// invalidate memoized checks when a repair rewrites a column.
	keyCols map[string][]string

	// Per-rule pre-resolved check lists.
	evChecks  [][]check // evidence node + edge checks per rule
	posKey    []string  // positive-node key per rule
	negKey    []string  // negative-node key per rule ("" if none)
	posEdgeKs [][]string
}

// check is one memoizable value-level test.
type check struct {
	key    string
	node   rules.Node
	edge   rules.Edge
	from   rules.Node
	to     rules.Node
	isEdge bool
}

// Options disables individual optimizations of the fast repair
// algorithm, for the ablation study of the three §IV-B improvements.
// The zero value is the full Algorithm 2.
type Options struct {
	// NoRuleOrder ignores the rule graph: rules are re-scanned in
	// input order until a fixpoint, as in the basic algorithm.
	NoRuleOrder bool
	// NoSharedChecks disables the memoized node/edge checks and the
	// inverted-list pruning of Figure 5.
	NoSharedChecks bool
	// NoIndexes replaces signature-index candidate retrieval with
	// full class-extent scans.
	NoIndexes bool
}

// NewEngine validates the rules and builds matchers, the rule graph,
// and the inverted indexes. The rule set is assumed consistent
// (verify with the consistency package).
func NewEngine(drs []*rules.DR, g *kb.Graph, schema *relation.Schema) (*Engine, error) {
	return NewEngineWithOptions(drs, g, schema, Options{})
}

// NewEngineWithOptions is NewEngine with ablation switches.
func NewEngineWithOptions(drs []*rules.DR, g *kb.Graph, schema *relation.Schema, opts Options) (*Engine, error) {
	if len(drs) == 0 {
		return nil, fmt.Errorf("repair: empty rule set")
	}
	e := &Engine{
		Schema:      schema,
		Cat:         rules.NewCatalog(g),
		Graph:       BuildRuleGraph(drs),
		opts:        opts,
		evNodeIndex: make(map[string][]int),
		evEdgeIndex: make(map[string][]int),
		keyCols:     make(map[string][]string),
	}
	for i, dr := range drs {
		fm, err := rules.NewMatcher(dr, e.Cat, schema)
		if err != nil {
			return nil, err
		}
		e.fast = append(e.fast, fm)
		sm, err := rules.NewMatcher(dr, e.Cat, schema)
		if err != nil {
			return nil, err
		}
		sm.Scan = true
		e.slow = append(e.slow, sm)

		nodeByName := make(map[string]rules.Node)
		for _, n := range dr.Evidence {
			nodeByName[n.Name] = n
		}
		nodeByName[dr.Pos.Name] = dr.Pos
		if dr.Neg != nil {
			nodeByName[dr.Neg.Name] = *dr.Neg
		}

		var evs []check
		for _, n := range dr.Evidence {
			k := n.Key()
			evs = append(evs, check{key: k, node: n})
			e.evNodeIndex[k] = append(e.evNodeIndex[k], i)
			e.keyCols[k] = []string{n.Col}
		}
		evSet := make(map[string]bool, len(dr.Evidence))
		for _, n := range dr.Evidence {
			evSet[n.Name] = true
		}
		var posEdgeKeys []string
		for _, ed := range dr.Edges {
			from, to := nodeByName[ed.From], nodeByName[ed.To]
			k := rules.EdgeKey(from, ed.Rel, to)
			e.keyCols[k] = []string{from.Col, to.Col}
			switch {
			case evSet[ed.From] && evSet[ed.To]:
				evs = append(evs, check{key: k, edge: ed, from: from, to: to, isEdge: true})
				e.evEdgeIndex[k] = append(e.evEdgeIndex[k], i)
			case ed.From == dr.Pos.Name || ed.To == dr.Pos.Name:
				posEdgeKeys = append(posEdgeKeys, k)
			}
		}
		e.evChecks = append(e.evChecks, evs)
		e.posKey = append(e.posKey, dr.Pos.Key())
		e.keyCols[dr.Pos.Key()] = []string{dr.Pos.Col}
		if dr.Neg != nil {
			e.negKey = append(e.negKey, dr.Neg.Key())
			e.keyCols[dr.Neg.Key()] = []string{dr.Neg.Col}
		} else {
			e.negKey = append(e.negKey, "")
		}
		e.posEdgeKs = append(e.posEdgeKs, posEdgeKeys)
	}
	return e, nil
}

// Rules returns the engine's rule set, in construction order.
func (e *Engine) Rules() []*rules.DR { return e.Graph.Rules }

// Warm pre-builds the per-class signature indexes by issuing one
// lookup per distinct rule node, so later timing measurements exclude
// index construction.
func (e *Engine) Warm() {
	for _, m := range e.fast {
		for _, n := range append(append([]rules.Node(nil), m.Rule.Evidence...), m.Rule.Pos) {
			e.Cat.HasCandidate(n.Type, n.Sim, "")
			_ = n
		}
		if m.Rule.Neg != nil {
			e.Cat.HasCandidate(m.Rule.Neg.Type, m.Rule.Neg.Sim, "")
		}
	}
}

// applicable implements the multi-rule applicability test of §III-B:
// the rule must not change a positively marked cell and must mark at
// least one new cell.
func (e *Engine) applicable(t *relation.Tuple, out rules.Outcome) bool {
	switch out.Kind {
	case rules.Positive:
		for _, c := range out.MarkCols {
			if !t.Marked[e.Schema.MustCol(c)] {
				return true
			}
		}
		return false
	case rules.Repair:
		return !t.Marked[e.Schema.MustCol(out.RepairCol)]
	default:
		return false
	}
}

// apply mutates t according to the outcome, choosing version idx of a
// multi-version repair, and returns the columns whose values changed
// (the repaired column and any canonicalized evidence columns). When
// alts is non-nil, the full candidate list of every rewritten cell is
// recorded there — the paper scores a multi-version repair as correct
// when *any* version matches the ground truth (§V-A).
func (e *Engine) apply(t *relation.Tuple, out rules.Outcome, version int, alts map[string][]string) []string {
	var changed []string
	for c, v := range out.Canonical {
		col := e.Schema.MustCol(c)
		if !t.Marked[col] && t.Values[col] != v {
			t.Values[col] = v
			changed = append(changed, c)
			if alts != nil {
				alts[c] = []string{v}
			}
		}
	}
	if out.Kind == rules.Repair {
		col := e.Schema.MustCol(out.RepairCol)
		if t.Values[col] != out.Repairs[version] {
			t.Values[col] = out.Repairs[version]
			changed = append(changed, out.RepairCol)
			if alts != nil {
				alts[out.RepairCol] = append([]string(nil), out.Repairs...)
			}
		}
	}
	for _, c := range out.MarkCols {
		t.Marked[e.Schema.MustCol(c)] = true
	}
	return changed
}

// BasicRepair is Algorithm 1: repeatedly scan the not-yet-applied
// rules for one that is applicable, apply it, and restart, until a
// fixpoint. Candidate retrieval scans class extents (the paper's
// O(|Σ|² · |C||X||V|) cost model). The input tuple is not modified;
// the repaired tuple is returned. Multi-version repairs take the
// most-similar candidate (Repairs[0]).
func (e *Engine) BasicRepair(t *relation.Tuple) *relation.Tuple {
	return e.basicRepair(t, nil)
}

func (e *Engine) basicRepair(t *relation.Tuple, alts map[string][]string) *relation.Tuple {
	cl := t.Clone()
	used := make([]bool, len(e.slow))
	for {
		progress := false
		for i, m := range e.slow {
			if used[i] {
				continue
			}
			out := m.Evaluate(cl)
			if !e.applicable(cl, out) {
				continue
			}
			e.apply(cl, out, 0, alts)
			used[i] = true // each rule is applied at most once (Alg. 1 line 8)
			progress = true
			break
		}
		if !progress {
			return cl
		}
	}
}

// FastRepair is Algorithm 2: rules are visited once in the
// topological order of the rule graph (components re-scanned until
// stable); value-level node and edge checks are memoized and shared
// across rules through the inverted indexes; failed shared evidence
// checks prune every dependent rule; candidate retrieval uses the
// signature indexes.
func (e *Engine) FastRepair(t *relation.Tuple) *relation.Tuple {
	return e.fastRepair(t, nil)
}

func (e *Engine) fastRepair(t *relation.Tuple, alts map[string][]string) *relation.Tuple {
	cl := t.Clone()
	st := &fastState{
		alts:  alts,
		alive: make([]bool, len(e.fast)),
		memo:  make(map[string]bool),
	}
	for i := range st.alive {
		st.alive[i] = true
	}
	groups := e.Graph.Groups
	if e.opts.NoRuleOrder {
		// Ablation: one flat group re-scanned to a fixpoint, as in the
		// basic algorithm.
		all := make([]int, len(e.fast))
		for i := range all {
			all[i] = i
		}
		groups = [][]int{all}
	}
	for _, group := range groups {
		cyclic := len(group) > 1 && (e.Graph.HasCycle() || e.opts.NoRuleOrder)
		for {
			progress := false
			for _, idx := range group {
				if !st.alive[idx] {
					continue
				}
				if e.fastStep(cl, idx, st, cyclic) {
					progress = true
				}
			}
			if !cyclic || !progress {
				break
			}
		}
	}
	return cl
}

type fastState struct {
	alive []bool
	memo  map[string]bool     // check key -> result for the current values
	alts  map[string][]string // optional multi-version recorder
	steps *[]Step             // optional explanation recorder
}

// fastStep checks and possibly applies rule idx; it reports whether
// the rule was applied. In cyclic groups pruning of sibling rules is
// suppressed, because a failed evidence check may become true after
// another rule in the same component repairs a value.
func (e *Engine) fastStep(t *relation.Tuple, idx int, st *fastState, cyclic bool) bool {
	m := e.fast[idx]
	if e.opts.NoIndexes {
		m = e.slow[idx]
	}

	// Evidence prechecks, shared across rules (Alg. 2 lines 3-9).
	if e.opts.NoSharedChecks {
		goto evaluate
	}
	for _, c := range e.evChecks[idx] {
		res, seen := st.memo[c.key]
		if !seen {
			if c.isEdge {
				// Edge checks are only consulted when already memoized:
				// computing them eagerly duplicates the edge-driven
				// evaluation's own work (measured by the ablation
				// benchmarks), whereas a *failed* edge recorded by an
				// earlier rule still prunes this one.
				continue
			}
			res = m.NodeCheck(t, c.node)
			st.memo[c.key] = res
		}
		if !res {
			st.alive[idx] = false
			if !cyclic {
				// Prune every rule that needs this same check as
				// evidence (Figure 5 inverted lists).
				var dependents []int
				if c.isEdge {
					dependents = e.evEdgeIndex[c.key]
				} else {
					dependents = e.evNodeIndex[c.key]
				}
				for _, d := range dependents {
					st.alive[d] = false
				}
			}
			return false
		}
	}

evaluate:
	out := m.Evaluate(t)
	if !e.applicable(t, out) {
		if !cyclic {
			st.alive[idx] = false
		}
		return false
	}
	oldValue := ""
	if out.Kind == rules.Repair {
		oldValue = t.Values[e.Schema.MustCol(out.RepairCol)]
	}
	changed := e.apply(t, out, 0, st.alts)
	e.recordStep(st, idx, out, oldValue)
	st.alive[idx] = false

	if len(changed) > 0 {
		// A rewrite invalidates every memoized check that reads a
		// changed column...
		changedSet := make(map[string]bool, len(changed))
		for _, c := range changed {
			changedSet[c] = true
		}
		for key, cols := range e.keyCols {
			for _, c := range cols {
				if changedSet[c] {
					delete(st.memo, key)
					break
				}
			}
		}
		// ...except that the rule's own matched structure is witnessed
		// by the instances just found: its evidence checks still hold
		// on the canonicalized values, and after a repair the new value
		// satisfies the positive node and its incident edges (Alg. 2
		// lines 14-16).
		for _, c := range e.evChecks[idx] {
			st.memo[c.key] = true
		}
		if out.Kind == rules.Repair {
			st.memo[e.posKey[idx]] = true
			for _, k := range e.posEdgeKs[idx] {
				st.memo[k] = true
			}
		}
	}

	// Rules fully subsumed by the new marks can be dropped (the sound
	// core of Alg. 2 lines 12-13).
	for j := range st.alive {
		if !st.alive[j] {
			continue
		}
		subsumed := true
		for _, c := range e.fast[j].MarkCols() {
			if !t.Marked[e.Schema.MustCol(c)] {
				subsumed = false
				break
			}
		}
		if subsumed {
			st.alive[j] = false
		}
	}
	return true
}

// RepairTable applies the engine to every tuple of tb and returns the
// cleaned copy. fast selects FastRepair over BasicRepair.
func (e *Engine) RepairTable(tb *relation.Table, fast bool) *relation.Table {
	out, _ := e.repairTable(tb, fast, false)
	return out
}

// RepairTableWithAlternatives additionally reports, for every
// rewritten cell (row, col), the full multi-version candidate list of
// the repair that rewrote it, so the evaluation can apply the paper's
// rule that a multi-version repair counts as correct when any version
// matches the ground truth.
func (e *Engine) RepairTableWithAlternatives(tb *relation.Table, fast bool) (*relation.Table, map[[2]int][]string) {
	return e.repairTable(tb, fast, true)
}

// RepairTableParallel is RepairTable with the fast engine fanned out
// over workers goroutines (0 = GOMAXPROCS). Tuples are independent —
// "repairing one tuple is irrelevant to any other tuple" (§V-B) — so
// this is a straight data-parallel map; the engine is warmed first so
// workers share read-only indexes.
func (e *Engine) RepairTableParallel(tb *relation.Table, workers int) *relation.Table {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.Warm()
	// The KB's lazy closures must be materialized before fan-out.
	e.Cat.KB.Freeze()
	out := &relation.Table{Schema: tb.Schema, Tuples: make([]*relation.Tuple, tb.Len())}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= tb.Len() {
					return
				}
				out.Tuples[i] = e.FastRepair(tb.Tuples[i])
			}
		}()
	}
	wg.Wait()
	return out
}

func (e *Engine) repairTable(tb *relation.Table, fast, trackAlts bool) (*relation.Table, map[[2]int][]string) {
	out := &relation.Table{Schema: tb.Schema, Tuples: make([]*relation.Tuple, tb.Len())}
	var cellAlts map[[2]int][]string
	if trackAlts {
		cellAlts = make(map[[2]int][]string)
	}
	for i, t := range tb.Tuples {
		var alts map[string][]string
		if trackAlts {
			alts = make(map[string][]string)
		}
		if fast {
			out.Tuples[i] = e.fastRepair(t, alts)
		} else {
			out.Tuples[i] = e.basicRepair(t, alts)
		}
		for col, vs := range alts {
			cellAlts[[2]int{i, e.Schema.MustCol(col)}] = vs
		}
	}
	return out, cellAlts
}
