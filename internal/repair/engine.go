package repair

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/similarity"
	"detective/internal/telemetry"
)

// Engine applies a set of consistent detective rules to tuples of one
// schema against one KB. Build it once and reuse it across tuples;
// it is safe for concurrent use after construction as long as the KB
// has been frozen, except that the lazy per-class signature indexes
// are built on first use (call Warm to pre-build them).
//
// Every memoizable node/edge check is assigned a dense integer ID at
// construction time, so the per-tuple hot path never hashes a string:
// the memo is a flat tri-state array, the inverted rule indexes
// (Figure 5) are slice-of-slice lookups, and repair-time invalidation
// walks a precomputed column → check-ID list instead of scanning every
// known check key. Per-tuple state is pooled, so steady-state repair
// allocates only for the result tuple and actual rule applications.
type Engine struct {
	Schema *relation.Schema
	Cat    *rules.Catalog
	Graph  *RuleGraph

	opts Options

	fast []*rules.Matcher // signature-index candidate retrieval
	slow []*rules.Matcher // full-scan retrieval (Algorithm 1 cost model)

	// numChecks is the number of distinct check IDs; dense IDs are in
	// [0, numChecks).
	numChecks int

	// evIndex[id] lists the rules that use check id as *evidence* —
	// the inverted rule indexes of the paper's Figure 5, so a failed
	// shared check prunes every rule that depends on it. Node and edge
	// checks share the ID space (their string keys are disjoint by
	// construction), so one index serves both.
	evIndex [][]int

	// colInval[col] lists the check IDs that read schema column col,
	// used to invalidate memoized checks when a repair rewrites the
	// column. Only checks that can actually enter the memo (evidence
	// nodes/edges, positive nodes, positive-incident edges) are listed.
	colInval [][]int32

	// Per-rule pre-resolved check lists.
	evChecks   [][]check // evidence node + edge checks per rule
	posID      []int32   // positive-node check ID per rule
	posEdgeIDs [][]int32 // positive-incident edge check IDs per rule

	// flatGroup is the single all-rules group used by the NoRuleOrder
	// ablation, precomputed so the hot path never rebuilds it.
	flatGroup [][]int

	// pool recycles fastState values (alive + memo slices) across
	// tuples so RepairTableParallel and CleanCSVStream run
	// allocation-free in steady state.
	pool sync.Pool

	// stepBudget bounds the number of rule applications (and, in
	// cyclic groups, rescan passes) per tuple; see Options.StepBudget.
	stepBudget int

	// stats are the lifetime fault-tolerance counters; see Stats.
	stats statsCounters

	// instr exports outcome counters and sampled latency histograms to
	// the process-wide telemetry registry.
	instr *engineInstr

	// memo is the global cross-request repair memo (see memo.go); nil
	// when Options.MemoDisabled or a negative MemoBytes turned it off.
	memo *repairMemo

	// breaker is the global repair circuit breaker (see breaker.go);
	// nil unless Options.Breaker.Enabled. ruleBreakers holds one
	// breaker per rule when Options.Breaker.PerRule is also set.
	breaker      *breaker
	ruleBreakers []breaker

	// recorder samples serving-path input rows for canary shadow
	// replay; nil unless Options.Recorder was supplied.
	recorder *RowRecorder

	// ens holds the ensemble mode's proposers, weights, and counters
	// (see ensemble_engine.go); nil unless Options.Ensemble.Enabled.
	ens *ensembleState
}

// check is one memoizable value-level test, identified by its dense
// ID. Edge checks carry no payload: they are only consulted when
// already memoized (see fastStep). col is the schema column a node
// check reads (-1 for edges and unknown columns), used to key the
// cross-request cell memo by the cell's current value.
type check struct {
	id     int32
	node   rules.Node
	isEdge bool
	col    int32
}

// Tri-state memo values: a check is unknown until computed for the
// tuple's current values.
const (
	memoUnknown int8 = iota
	memoTrue
	memoFalse
)

// Options disables individual optimizations of the fast repair
// algorithm, for the ablation study of the three §IV-B improvements.
// The zero value is the full Algorithm 2.
type Options struct {
	// NoRuleOrder ignores the rule graph: rules are re-scanned in
	// input order until a fixpoint, as in the basic algorithm.
	NoRuleOrder bool
	// NoSharedChecks disables the memoized node/edge checks and the
	// inverted-list pruning of Figure 5.
	NoSharedChecks bool
	// NoIndexes replaces signature-index candidate retrieval with
	// full class-extent scans.
	NoIndexes bool

	// TelemetrySampleEvery is the latency-sampling period for the
	// telemetry histograms: one tuple in every N is timed end to end
	// and per stage. 0 picks DefaultTelemetrySampleEvery (64); a
	// negative value disables latency sampling (outcome counters are
	// exact either way).
	TelemetrySampleEvery int

	// StepBudget bounds the fixpoint work done on one tuple: the
	// number of rule applications, and in cyclic rule graphs also the
	// number of rescan passes per component. A tuple that exhausts the
	// budget degrades to keep-original-value — the repair is discarded,
	// the original tuple is returned unchanged, and the event is
	// tallied in Stats.BudgetExhausted — instead of looping. 0 picks a
	// generous default that no terminating rule set can hit (§III's
	// termination analysis bounds applications by the rule count).
	StepBudget int

	// Workers selects the streaming cleaner's execution mode
	// (CleanCSVStream / CleanCSVStreamContext). 0 or 1 keeps the
	// serial in-place path; 2 or more fans repair out over that many
	// workers through the chunked, order-preserving pipeline (see
	// pipeline.go). Output is byte-identical either way. The table
	// APIs take their worker count as an argument instead.
	Workers int

	// ChunkSize is the number of CSV rows per pipeline chunk when
	// Workers > 1. Larger chunks amortize channel traffic and widen
	// the in-chunk dedup window; smaller chunks bound reassembly
	// latency. 0 picks DefaultStreamChunkSize. Ignored on the serial
	// path.
	ChunkSize int

	// MemoBytes is the byte budget of the global cross-request repair
	// memo (memo.go), shared by its tuple and cell tiers. 0 picks
	// DefaultMemoBytes; a negative value disables the memo, same as
	// MemoDisabled. The memo never changes repair results — replays
	// are byte-identical and hot KB reloads invalidate it by
	// generation — so the only reasons to turn it off are measurement
	// (ablations, benchmarks of the uncached path) and memory-starved
	// deployments.
	MemoBytes int64

	// MemoDisabled turns the global repair memo off entirely.
	MemoDisabled bool

	// Breaker configures the repair circuit breaker (see
	// BreakerOptions). The zero value leaves it disabled; the serving
	// paths then pay a single nil check per tuple.
	Breaker BreakerOptions

	// Recorder, when non-nil, samples serving-path input rows into a
	// ring buffer for canary shadow replay (see RowRecorder).
	Recorder *RowRecorder

	// PrivateTelemetry routes this engine's collectors to a throwaway
	// registry instead of telemetry.Default(). Canary scratch engines
	// set it so shadow replays never pollute the process's serving
	// metrics.
	PrivateTelemetry bool

	// Ensemble configures the serving-path ensemble mode (see
	// ensemble_engine.go): the detective engine plus the configured
	// auxiliary proposers vote per cell with confidence weights. The
	// zero value leaves it off; single-engine paths then pay one nil
	// check and are byte-identical to an engine built without it.
	Ensemble EnsembleOptions
}

// NewEngine validates the rules and builds matchers, the rule graph,
// and the inverted indexes. The rule set is assumed consistent
// (verify with the consistency package).
func NewEngine(drs []*rules.DR, g *kb.Graph, schema *relation.Schema) (*Engine, error) {
	return NewEngineWithOptions(drs, g, schema, Options{})
}

// NewEngineWithOptions is NewEngine with ablation switches.
func NewEngineWithOptions(drs []*rules.DR, g *kb.Graph, schema *relation.Schema, opts Options) (*Engine, error) {
	return NewEngineStore(drs, kb.NewStore(g), schema, opts)
}

// NewEngineStore builds the engine over a swappable KB handle: every
// tuple repair pins the store's current graph once at entry and runs
// entirely on it, so kb.Store.Swap can replace the KB mid-stream
// without mixing two graphs within one tuple.
func NewEngineStore(drs []*rules.DR, store *kb.Store, schema *relation.Schema, opts Options) (*Engine, error) {
	if len(drs) == 0 {
		return nil, fmt.Errorf("repair: empty rule set")
	}
	e := &Engine{
		Schema:   schema,
		Cat:      rules.NewCatalogStore(store),
		Graph:    BuildRuleGraph(drs),
		opts:     opts,
		colInval: make([][]int32, schema.Arity()),
	}

	// idOf interns a check key to a dense ID; two rules share an ID
	// exactly when they would have shared the string key, which is the
	// shared-computation identity of §IV-B. cols are the schema
	// columns the check reads (registered once, on first assignment).
	ids := make(map[string]int32)
	idOf := func(key string, cols ...string) int32 {
		if id, ok := ids[key]; ok {
			return id
		}
		id := int32(len(e.evIndex))
		ids[key] = id
		e.evIndex = append(e.evIndex, nil)
		for _, c := range cols {
			if ci := schema.Col(c); ci >= 0 {
				e.colInval[ci] = append(e.colInval[ci], id)
			}
		}
		return id
	}

	for i, dr := range drs {
		fm, err := rules.NewMatcher(dr, e.Cat, schema)
		if err != nil {
			return nil, err
		}
		e.fast = append(e.fast, fm)
		sm, err := rules.NewMatcher(dr, e.Cat, schema)
		if err != nil {
			return nil, err
		}
		sm.Scan = true
		e.slow = append(e.slow, sm)

		nodeByName := make(map[string]rules.Node)
		for _, n := range dr.Evidence {
			nodeByName[n.Name] = n
		}
		nodeByName[dr.Pos.Name] = dr.Pos
		if dr.Neg != nil {
			nodeByName[dr.Neg.Name] = *dr.Neg
		}

		var evs []check
		for _, n := range dr.Evidence {
			id := idOf(n.Key(), n.Col)
			evs = append(evs, check{id: id, node: n, col: int32(schema.Col(n.Col))})
			e.evIndex[id] = append(e.evIndex[id], i)
		}
		evSet := make(map[string]bool, len(dr.Evidence))
		for _, n := range dr.Evidence {
			evSet[n.Name] = true
		}
		var posEdgeIDs []int32
		for _, ed := range dr.Edges {
			from, to := nodeByName[ed.From], nodeByName[ed.To]
			k := rules.EdgeKey(from, ed.Rel, to)
			switch {
			case evSet[ed.From] && evSet[ed.To]:
				id := idOf(k, from.Col, to.Col)
				evs = append(evs, check{id: id, isEdge: true, col: -1})
				e.evIndex[id] = append(e.evIndex[id], i)
			case ed.From == dr.Pos.Name || ed.To == dr.Pos.Name:
				posEdgeIDs = append(posEdgeIDs, idOf(k, from.Col, to.Col))
			}
		}
		e.evChecks = append(e.evChecks, evs)
		e.posID = append(e.posID, idOf(dr.Pos.Key(), dr.Pos.Col))
		e.posEdgeIDs = append(e.posEdgeIDs, posEdgeIDs)
	}
	e.numChecks = len(e.evIndex)

	all := make([]int, len(drs))
	for i := range all {
		all[i] = i
	}
	e.flatGroup = [][]int{all}

	e.stepBudget = opts.StepBudget
	if e.stepBudget <= 0 {
		// Each rule applies at most once per tuple (§III termination),
		// so any terminating run fits in len(drs) applications; the
		// default leaves ample headroom for future multi-application
		// schedules while still catching genuine runaways.
		e.stepBudget = 16*len(drs) + 64
	}
	reg := telemetry.Default()
	if opts.PrivateTelemetry {
		reg = telemetry.NewRegistry()
	}
	e.instr = newEngineInstr(opts.TelemetrySampleEvery, reg)
	if !opts.MemoDisabled && opts.MemoBytes >= 0 {
		budget := opts.MemoBytes
		if budget == 0 {
			budget = DefaultMemoBytes
		}
		e.memo = newRepairMemo(schema, budget)
		e.instr.registerMemo(e.memo)
	}
	if opts.Breaker.Enabled {
		bo := opts.Breaker.withDefaults()
		e.breaker = &breaker{}
		e.breaker.init(bo)
		if bo.PerRule {
			e.ruleBreakers = make([]breaker, len(drs))
			for i := range e.ruleBreakers {
				e.ruleBreakers[i].init(bo)
			}
		}
		e.instr.registerBreaker(e)
	}
	e.recorder = opts.Recorder
	if opts.Ensemble.Enabled {
		e.ens = newEnsembleState(opts.Ensemble, reg)
	}
	return e, nil
}

// Rules returns the engine's rule set, in construction order.
func (e *Engine) Rules() []*rules.DR { return e.Graph.Rules }

// Store returns the engine's swappable KB handle. Swapping a new
// graph into it (kb.Store.Swap) takes effect on the next tuple each
// worker starts; in-flight tuples finish on the graph they pinned.
func (e *Engine) Store() *kb.Store { return e.Cat.Store() }

// Warm pre-builds the per-class signature indexes and seeds the
// catalog's cross-tuple candidate cache by issuing one lookup per
// distinct (type, sim) pair over every rule node — evidence, positive
// and negative alike — so later timing measurements exclude index
// construction.
func (e *Engine) Warm() {
	type pair struct {
		typ string
		sim similarity.Spec
	}
	seen := make(map[pair]bool)
	warm := func(n rules.Node) {
		p := pair{n.Type, n.Sim}
		if seen[p] {
			return
		}
		seen[p] = true
		e.Cat.Candidates(n.Type, n.Sim, "")
	}
	for _, m := range e.fast {
		for _, n := range m.Rule.Evidence {
			warm(n)
		}
		warm(m.Rule.Pos)
		if m.Rule.Neg != nil {
			warm(*m.Rule.Neg)
		}
	}
}

// applicable implements the multi-rule applicability test of §III-B:
// the rule must not change a positively marked cell and must mark at
// least one new cell.
func (e *Engine) applicable(t *relation.Tuple, out rules.Outcome) bool {
	switch out.Kind {
	case rules.Positive:
		for _, c := range out.MarkCols {
			if !t.Marked[e.Schema.MustCol(c)] {
				return true
			}
		}
		return false
	case rules.Repair:
		return !t.Marked[e.Schema.MustCol(out.RepairCol)]
	default:
		return false
	}
}

// apply mutates t according to the outcome, choosing version idx of a
// multi-version repair, and returns the columns whose values changed
// (the repaired column and any canonicalized evidence columns). When
// alts is non-nil, the full candidate list of every rewritten cell is
// recorded there — the paper scores a multi-version repair as correct
// when *any* version matches the ground truth (§V-A).
//
// detectOnly is the circuit breaker's degraded mode: only the marks
// are written — the cells the rule implicates — and every value write
// (canonicalization and repair alike) is skipped. The nil changed
// return is load-bearing: fastStep's post-apply block re-asserts the
// positive check as memoTrue, which would be wrong for a value that
// was never rewritten, and is skipped only when nothing changed.
func (e *Engine) apply(t *relation.Tuple, out rules.Outcome, version int, alts map[string][]string, detectOnly bool) []string {
	if detectOnly {
		for _, c := range out.MarkCols {
			t.Marked[e.Schema.MustCol(c)] = true
		}
		return nil
	}
	var changed []string
	for c, v := range out.Canonical {
		col := e.Schema.MustCol(c)
		if !t.Marked[col] && t.Values[col] != v {
			t.Values[col] = v
			changed = append(changed, c)
			if alts != nil {
				alts[c] = []string{v}
			}
		}
	}
	if out.Kind == rules.Repair {
		col := e.Schema.MustCol(out.RepairCol)
		if t.Values[col] != out.Repairs[version] {
			t.Values[col] = out.Repairs[version]
			changed = append(changed, out.RepairCol)
			if alts != nil {
				alts[out.RepairCol] = append([]string(nil), out.Repairs...)
			}
		}
	}
	for _, c := range out.MarkCols {
		t.Marked[e.Schema.MustCol(c)] = true
	}
	return changed
}

// BasicRepair is Algorithm 1: repeatedly scan the not-yet-applied
// rules for one that is applicable, apply it, and restart, until a
// fixpoint. Candidate retrieval scans class extents (the paper's
// O(|Σ|² · |C||X||V|) cost model). The input tuple is not modified;
// the repaired tuple is returned. Multi-version repairs take the
// most-similar candidate (Repairs[0]).
func (e *Engine) BasicRepair(t *relation.Tuple) *relation.Tuple {
	return e.basicRepair(t, nil)
}

func (e *Engine) basicRepair(t *relation.Tuple, alts map[string][]string) *relation.Tuple {
	g := e.Cat.Graph() // pin: the whole tuple repairs against one KB
	cl := t.Clone()
	used := make([]bool, len(e.slow))
	applied := 0
	for {
		progress := false
		for i, m := range e.slow {
			if used[i] {
				continue
			}
			out := m.EvaluateOn(g, cl)
			if !e.applicable(cl, out) {
				continue
			}
			if applied++; applied > e.stepBudget {
				// Degrade to keep-original-value rather than loop.
				e.count(tupleBudgetExhausted, nil)
				return t.Clone()
			}
			e.apply(cl, out, 0, alts, false)
			used[i] = true // each rule is applied at most once (Alg. 1 line 8)
			progress = true
			break
		}
		if !progress {
			e.count(tupleOK, nil)
			return cl
		}
	}
}

// FastRepair is Algorithm 2: rules are visited once in the
// topological order of the rule graph (components re-scanned until
// stable); value-level node and edge checks are memoized and shared
// across rules through the inverted indexes; failed shared evidence
// checks prune every dependent rule; candidate retrieval uses the
// signature indexes.
func (e *Engine) FastRepair(t *relation.Tuple) *relation.Tuple {
	return e.fastRepair(t, nil)
}

func (e *Engine) fastRepair(t *relation.Tuple, alts map[string][]string) *relation.Tuple {
	cl, oc := e.fastRepairOutcome(t, alts)
	e.count(oc, nil)
	return cl
}

// fastRepairOutcome is the uncounted core of fastRepair, fronted by
// the global memo: a hit replays the cached result byte-identically;
// a miss runs the repair and memoizes it under the generation it
// pinned. Multi-version runs (alts != nil) bypass the memo — they
// record per-cell candidate lists the memo does not store.
func (e *Engine) fastRepairOutcome(t *relation.Tuple, alts map[string][]string) (*relation.Tuple, tupleOutcome) {
	g := e.Cat.Graph()
	if e.memo == nil || alts != nil {
		return e.fastRepairOutcomeOn(g, t, alts)
	}
	gen := g.Generation()
	fp := e.memo.tupleFP(t.Values, t.Marked)
	if cl, oc, _, ok := e.memo.getTupleClone(gen, fp, t.Values, t.Marked); ok {
		return cl, oc
	}
	cl, oc := e.fastRepairOutcomeOn(g, t, nil)
	e.memo.putTuple(gen, fp, t.Values, t.Marked, cl, oc, 1, true)
	return cl, oc
}

// fastRepairOutcomeOn is fastRepairOutcome's uncached core, pinned to
// g for the whole tuple. It returns the repaired clone, or an
// untouched clone of the original together with tupleBudgetExhausted
// when the step budget ran out.
func (e *Engine) fastRepairOutcomeOn(g *kb.Graph, t *relation.Tuple, alts map[string][]string) (*relation.Tuple, tupleOutcome) {
	cl := t.Clone()
	st := e.getStateOn(g)
	st.alts = alts
	ok := e.runFast(cl, st)
	e.putState(st)
	if !ok {
		// Step budget exhausted: discard the partial repair and keep
		// the original values.
		return t.Clone(), tupleBudgetExhausted
	}
	return cl, tupleOK
}

// repairTupleSafe is fastRepairOutcome hardened for serving: a panic
// anywhere in the repair of this tuple — a poisoned value tripping a
// similarity kernel, a buggy custom matcher — is caught, the tuple is
// quarantined (returned as an untouched clone of the original), and
// the engine keeps going. The panicking repair's pooled state is
// deliberately abandoned rather than recycled. The outcome is tallied
// into the engine's lifetime counters here, exactly once.
//
// The memo read-through lives here rather than delegating to
// fastRepairOutcome so the quarantine verdict is memoized under the
// same pinned generation the panicking repair ran on: replaying a
// poisoned row quarantines from the cache without re-tripping the
// kernel.
// The circuit breaker fronts everything: while open, the tuple is
// served detect-only (marks, no rewrites) and the memo is bypassed in
// both directions; a half-open probe runs a fresh full repair —
// skipping the memo read so a cached quarantine verdict cannot fail
// the probe forever — and its outcome decides whether the breaker
// closes or reopens.
func (e *Engine) repairTupleSafe(t *relation.Tuple) (out *relation.Tuple, oc tupleOutcome) {
	if rr := e.recorder; rr != nil {
		rr.Record(t.Values)
	}
	g := e.Cat.Graph()
	degrade, probe := e.breakerAdmit()
	if degrade {
		return e.detectOnlyTupleOn(g, t)
	}
	memo := e.memo
	var gen int64
	var fp uint64
	if memo != nil {
		gen = g.Generation()
		fp = memo.tupleFP(t.Values, t.Marked)
		if !probe {
			if cl, moc, _, ok := memo.getTupleClone(gen, fp, t.Values, t.Marked); ok {
				e.count(moc, nil)
				return cl, moc
			}
		}
	}
	st := e.getStateOn(g)
	st.brk = true
	st.probe = probe
	defer func() {
		if r := recover(); r != nil {
			out, oc = t.Clone(), tupleQuarantined
			e.breakerObserve(st, oc)
			e.count(oc, nil)
			if memo != nil {
				memo.putTuple(gen, fp, t.Values, t.Marked, out, oc, 1, true)
			}
		}
	}()
	cl := t.Clone()
	if e.runFast(cl, st) {
		out, oc = cl, tupleOK
	} else {
		out, oc = t.Clone(), tupleBudgetExhausted
	}
	e.breakerObserve(st, oc)
	e.putState(st)
	e.count(oc, nil)
	if memo != nil {
		memo.putTuple(gen, fp, t.Values, t.Marked, out, oc, 1, true)
	}
	return out, oc
}

// repairInPlace runs the fast algorithm directly on t, mutating it.
// It is the zero-copy core used by the streaming cleaner. It reports
// whether the repair completed within the step budget; on false, t is
// left in a partially repaired state the caller must discard.
func (e *Engine) repairInPlace(t *relation.Tuple) bool {
	return e.repairInPlaceOn(e.Cat.Graph(), t)
}

// repairInPlaceOn is repairInPlace pinned to g, so streaming callers
// that memoize the result tag it with the generation the repair
// actually saw.
func (e *Engine) repairInPlaceOn(g *kb.Graph, t *relation.Tuple) bool {
	st := e.getStateOn(g)
	ok := e.runFast(t, st)
	e.putState(st)
	return ok
}

// runFast drives the grouped rule schedule of Algorithm 2 over cl. It
// reports whether the run completed within the per-tuple step budget;
// a false return means cl holds a partial repair the caller must
// discard in favour of the original values. One tuple in every
// sampling period additionally records end-to-end and per-stage
// latency into the telemetry histograms; all other tuples pay one
// atomic add (the sampler) and nil checks.
func (e *Engine) runFast(cl *relation.Tuple, st *fastState) bool {
	if !e.instr.sampler.Sample() {
		return e.runFastGroups(cl, st)
	}
	st.timer = &stageTimer{start: time.Now()}
	ok := e.runFastGroups(cl, st)
	e.instr.observe(st.timer, e.stepBudget-st.stepsLeft)
	st.timer = nil
	return ok
}

// runFastGroups is the uninstrumented scheduling core of runFast.
func (e *Engine) runFastGroups(cl *relation.Tuple, st *fastState) bool {
	groups := e.Graph.Groups
	if e.opts.NoRuleOrder {
		// Ablation: one flat group re-scanned to a fixpoint, as in the
		// basic algorithm.
		groups = e.flatGroup
	}
	for _, group := range groups {
		cyclic := len(group) > 1 && (e.Graph.HasCycle() || e.opts.NoRuleOrder)
		passes := 0
		for {
			progress := false
			for _, idx := range group {
				if !st.alive[idx] {
					continue
				}
				if e.fastStep(cl, idx, st, cyclic) {
					progress = true
				}
				if st.exceeded {
					return false
				}
			}
			if !cyclic || !progress {
				break
			}
			// A cyclic component ("circle", §III) is re-scanned until
			// stable; the pass budget turns a non-terminating rule
			// interaction into a degrade event instead of a hang.
			if passes++; passes > e.stepBudget {
				return false
			}
		}
	}
	return true
}

type fastState struct {
	alive []bool
	memo  []int8              // check ID -> tri-state result for the current values
	alts  map[string][]string // optional multi-version recorder
	steps *[]Step             // optional explanation recorder
	timer *stageTimer         // non-nil only while this tuple is latency-sampled
	g     *kb.Graph           // the KB pinned for this tuple's whole repair
	gen   int64               // g's generation, keying the cross-request cell memo

	stepsLeft int  // remaining rule applications before degrade
	exceeded  bool // step budget exhausted for this tuple

	// Circuit-breaker bookkeeping (see breaker.go). brk marks a tuple
	// whose caller will fold the outcome into the breakers via
	// breakerObserve; per-rule breakers are consulted only then, so an
	// eval-path tuple can never strand a probe token. lastRule is the
	// rule index being evaluated, read by panic recovery for
	// attribution; ran/probes collect the per-rule samples to record
	// at tuple end.
	detectOnly bool
	brk        bool
	probe      bool
	lastRule   int32
	ran        []int32
	probes     []int32
}

// getState returns a reset fastState pinned to the store's current
// graph, reusing a pooled one when available so the per-tuple hot
// path allocates nothing.
func (e *Engine) getState() *fastState {
	return e.getStateOn(e.Cat.Graph())
}

// getStateOn is getState pinned to an already-chosen graph, for
// callers (the memo read-throughs) that must tag their results with
// the exact generation the repair ran on.
func (e *Engine) getStateOn(g *kb.Graph) *fastState {
	st, _ := e.pool.Get().(*fastState)
	if st == nil {
		st = &fastState{
			alive: make([]bool, len(e.fast)),
			memo:  make([]int8, e.numChecks),
		}
	}
	for i := range st.alive {
		st.alive[i] = true
	}
	for i := range st.memo {
		st.memo[i] = memoUnknown
	}
	st.alts = nil
	st.steps = nil
	st.timer = nil
	st.g = g // pin the chosen KB for this tuple
	st.gen = g.Generation()
	st.stepsLeft = e.stepBudget
	st.exceeded = false
	st.detectOnly = false
	st.brk = false
	st.probe = false
	st.lastRule = -1
	st.ran = st.ran[:0]
	st.probes = st.probes[:0]
	return st
}

func (e *Engine) putState(st *fastState) {
	st.alts = nil
	st.steps = nil
	st.timer = nil
	st.g = nil
	e.pool.Put(st)
}

// nodeCheckMemo resolves one evidence node check, consulting the
// cross-request cell memo first: node checks are pure functions of
// (check, cell value, pinned graph) — see rules.Matcher.NodeCheckOn —
// so a verdict cached by any earlier tuple under the same generation
// stands in for the KB probe. Only the per-tuple tri-state was
// consulted before this point, so each (check, value) pair costs at
// most one memo round-trip per tuple.
func (e *Engine) nodeCheckMemo(m *rules.Matcher, st *fastState, t *relation.Tuple, c check) bool {
	if e.memo == nil || c.col < 0 {
		return m.NodeCheckOn(st.g, t, c.node)
	}
	v := t.Values[c.col]
	if hold, ok := e.memo.getCell(st.gen, c.id, v); ok {
		return hold
	}
	hold := m.NodeCheckOn(st.g, t, c.node)
	e.memo.putCell(st.gen, c.id, v, hold)
	return hold
}

// fastStep checks and possibly applies rule idx; it reports whether
// the rule was applied. In cyclic groups pruning of sibling rules is
// suppressed, because a failed evidence check may become true after
// another rule in the same component repairs a value.
func (e *Engine) fastStep(t *relation.Tuple, idx int, st *fastState, cyclic bool) bool {
	// Attribute any panic or budget exhaustion from here on to this
	// rule; breakerObserve reads it out of the abandoned state.
	st.lastRule = int32(idx)
	if e.ruleBreakers != nil && st.brk && !st.detectOnly {
		switch degrade, probe := e.ruleBreakers[idx].admit(); {
		case degrade:
			// This rule's own breaker is open: skip it for this tuple,
			// let every other rule keep repairing.
			st.alive[idx] = false
			return false
		case probe:
			st.probes = append(st.probes, int32(idx))
		default:
			st.ran = append(st.ran, int32(idx))
		}
	}
	m := e.fast[idx]
	if e.opts.NoIndexes {
		m = e.slow[idx]
	}

	// Evidence prechecks, shared across rules (Alg. 2 lines 3-9).
	if e.opts.NoSharedChecks {
		goto evaluate
	}
	for _, c := range e.evChecks[idx] {
		res := st.memo[c.id]
		if res == memoUnknown {
			if c.isEdge {
				// Edge checks are only consulted when already memoized:
				// computing them eagerly duplicates the edge-driven
				// evaluation's own work (measured by the ablation
				// benchmarks), whereas a *failed* edge recorded by an
				// earlier rule still prunes this one.
				continue
			}
			var hold bool
			if st.timer == nil {
				hold = e.nodeCheckMemo(m, st, t, c)
			} else {
				t0 := time.Now()
				hold = e.nodeCheckMemo(m, st, t, c)
				st.timer.detect += time.Since(t0)
			}
			if hold {
				res = memoTrue
			} else {
				res = memoFalse
			}
			st.memo[c.id] = res
		}
		if res == memoFalse {
			st.alive[idx] = false
			if !cyclic {
				// Prune every rule that needs this same check as
				// evidence (Figure 5 inverted lists).
				for _, d := range e.evIndex[c.id] {
					st.alive[d] = false
				}
			}
			return false
		}
	}

evaluate:
	var out rules.Outcome
	if st.timer == nil {
		out = m.EvaluateOn(st.g, t)
	} else {
		t0 := time.Now()
		out = m.EvaluateOn(st.g, t)
		st.timer.detect += time.Since(t0)
	}
	if !e.applicable(t, out) {
		if !cyclic {
			st.alive[idx] = false
		}
		return false
	}
	if st.stepsLeft--; st.stepsLeft < 0 {
		st.exceeded = true
		return false
	}
	var applyStart time.Time
	if st.timer != nil {
		applyStart = time.Now()
	}
	oldValue := ""
	if out.Kind == rules.Repair {
		oldValue = t.Values[e.Schema.MustCol(out.RepairCol)]
	}
	changed := e.apply(t, out, 0, st.alts, st.detectOnly)
	e.recordStep(st, idx, out, oldValue)
	st.alive[idx] = false

	if len(changed) > 0 {
		// A rewrite invalidates every memoized check that reads a
		// changed column...
		for _, c := range changed {
			if ci := e.Schema.Col(c); ci >= 0 {
				for _, id := range e.colInval[ci] {
					st.memo[id] = memoUnknown
				}
			}
		}
		// ...except that the rule's own matched structure is witnessed
		// by the instances just found: its evidence checks still hold
		// on the canonicalized values, and after a repair the new value
		// satisfies the positive node and its incident edges (Alg. 2
		// lines 14-16).
		for _, c := range e.evChecks[idx] {
			st.memo[c.id] = memoTrue
		}
		if out.Kind == rules.Repair {
			st.memo[e.posID[idx]] = memoTrue
			for _, id := range e.posEdgeIDs[idx] {
				st.memo[id] = memoTrue
			}
		}
	}

	// Rules fully subsumed by the new marks can be dropped (the sound
	// core of Alg. 2 lines 12-13).
	for j := range st.alive {
		if !st.alive[j] {
			continue
		}
		subsumed := true
		for _, c := range e.fast[j].MarkCols() {
			if !t.Marked[e.Schema.MustCol(c)] {
				subsumed = false
				break
			}
		}
		if subsumed {
			st.alive[j] = false
		}
	}
	if st.timer != nil {
		st.timer.repair += time.Since(applyStart)
	}
	return true
}

// RepairTable applies the engine to every tuple of tb and returns the
// cleaned copy. fast selects FastRepair over BasicRepair.
func (e *Engine) RepairTable(tb *relation.Table, fast bool) *relation.Table {
	out, _ := e.repairTable(tb, fast, false)
	return out
}

// RepairTableWithAlternatives additionally reports, for every
// rewritten cell (row, col), the full multi-version candidate list of
// the repair that rewrote it, so the evaluation can apply the paper's
// rule that a multi-version repair counts as correct when any version
// matches the ground truth.
func (e *Engine) RepairTableWithAlternatives(tb *relation.Table, fast bool) (*relation.Table, map[[2]int][]string) {
	return e.repairTable(tb, fast, true)
}

// RepairTableParallel is RepairTable with the fast engine fanned out
// over workers goroutines (0 = GOMAXPROCS). Tuples are independent —
// "repairing one tuple is irrelevant to any other tuple" (§V-B) — so
// this is a straight data-parallel map; the engine is warmed first so
// workers share read-only indexes. Tuples whose repair panics are
// quarantined (emitted unchanged) rather than crashing the run.
func (e *Engine) RepairTableParallel(tb *relation.Table, workers int) *relation.Table {
	out, _, _ := e.RepairTableContext(context.Background(), tb, workers)
	return out
}

// RepairTableContext is RepairTableParallel with cancellation and
// per-call accounting. Workers check ctx between tuples; on
// cancellation or deadline the run stops promptly, every not-yet-
// repaired tuple is emitted as an unchanged clone of its input, and
// the error is a *PartialError wrapping ctx.Err() whose Done field
// counts the tuples actually processed. The returned Stats is the
// per-call delta (the engine's lifetime counters advance too).
func (e *Engine) RepairTableContext(ctx context.Context, tb *relation.Table, workers int) (*relation.Table, Stats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.Warm()
	// The KB's lazy closures must be materialized before fan-out.
	// (Graphs published through a kb.Store are frozen already; this
	// covers direct-constructed engines whose graph mutated since.)
	e.Cat.Graph().Freeze()
	out := &relation.Table{Schema: tb.Schema, Tuples: make([]*relation.Tuple, tb.Len())}
	var wg sync.WaitGroup
	var next atomic.Int64
	var repaired, quarantined, exhausted atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= tb.Len() {
					return
				}
				t, oc := e.repairTupleSafe(tb.Tuples[i])
				out.Tuples[i] = t
				switch oc {
				case tupleOK:
					repaired.Add(1)
				case tupleQuarantined:
					quarantined.Add(1)
				case tupleBudgetExhausted:
					exhausted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	stats := Stats{
		Repaired:        repaired.Load(),
		Quarantined:     quarantined.Load(),
		BudgetExhausted: exhausted.Load(),
	}
	done := int(stats.Repaired + stats.Quarantined + stats.BudgetExhausted)
	if err := ctx.Err(); err != nil {
		// Partial result: unclaimed rows pass through unchanged so the
		// caller still gets a complete, well-formed table.
		for i, t := range out.Tuples {
			if t == nil {
				out.Tuples[i] = tb.Tuples[i].Clone()
			}
		}
		return out, stats, &PartialError{Done: done, Err: err}
	}
	return out, stats, nil
}

func (e *Engine) repairTable(tb *relation.Table, fast, trackAlts bool) (*relation.Table, map[[2]int][]string) {
	out := &relation.Table{Schema: tb.Schema, Tuples: make([]*relation.Tuple, tb.Len())}
	var cellAlts map[[2]int][]string
	if trackAlts {
		cellAlts = make(map[[2]int][]string)
	}
	for i, t := range tb.Tuples {
		var alts map[string][]string
		if trackAlts {
			alts = make(map[string][]string)
		}
		if fast {
			out.Tuples[i] = e.fastRepair(t, alts)
		} else {
			out.Tuples[i] = e.basicRepair(t, alts)
		}
		for col, vs := range alts {
			cellAlts[[2]int{i, e.Schema.MustCol(col)}] = vs
		}
	}
	return out, cellAlts
}
