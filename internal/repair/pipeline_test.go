package repair_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/faultinject"
	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rules"
)

// streamCase is one (rules, KB, schema) triple plus a dirty CSV input
// the serial/parallel equivalence is checked over.
type streamCase struct {
	name   string
	rules  []*rules.DR
	kb     *kb.Graph
	schema *relation.Schema
	input  string
}

func tableCSV(t *testing.T, tb *relation.Table) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func streamCases(t *testing.T) []streamCase {
	t.Helper()
	var cases []streamCase

	ex := dataset.NewPaperExample()
	cases = append(cases, streamCase{"paper-example", ex.Rules, ex.KB, ex.Schema, tableCSV(t, ex.Dirty)})

	nb := dataset.NewNobel(3, 150)
	nbInj := nb.Inject(dataset.Noise{Rate: 0.15, TypoFrac: 0.5, Seed: 3})
	cases = append(cases, streamCase{"nobel-seed3", nb.Rules, nb.Yago, nb.Schema, tableCSV(t, nbInj.Dirty)})

	uis := dataset.NewUIS(7, 250)
	uisInj := uis.Inject(dataset.Noise{Rate: 0.12, TypoFrac: 0.3, Seed: 7})
	cases = append(cases, streamCase{"uis-seed7", uis.Rules, uis.Yago, uis.Schema, tableCSV(t, uisInj.Dirty)})

	return cases
}

// cleanStream runs one streaming clean with the given options and
// returns the output bytes and accounting.
func cleanStream(t *testing.T, tc streamCase, opts repair.Options, marked bool) (string, repair.StreamResult, error) {
	t.Helper()
	e, err := repair.NewEngineWithOptions(tc.rules, tc.kb, tc.schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	res, serr := e.CleanCSVStreamContext(context.Background(), strings.NewReader(tc.input), &out, marked)
	return out.String(), res, serr
}

// TestStreamParallelMatchesSerial is the pipeline's core contract:
// for any worker count and chunk size, the parallel streaming cleaner
// must produce byte-identical output — values, marks, row order — and
// the same accounting as the serial path, because tuples are repaired
// independently (§V-B) and chunks are reassembled in sequence order.
func TestStreamParallelMatchesSerial(t *testing.T) {
	for _, tc := range streamCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			want, wantRes, err := cleanStream(t, tc, repair.Options{}, true)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				for _, chunk := range []int{0, 1, 3, 64} {
					got, gotRes, err := cleanStream(t, tc,
						repair.Options{Workers: workers, ChunkSize: chunk}, true)
					if err != nil {
						t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
					}
					if got != want {
						t.Fatalf("workers=%d chunk=%d: output differs from serial\nserial:\n%s\nparallel:\n%s",
							workers, chunk, want, got)
					}
					if gotRes.Rows != wantRes.Rows ||
						gotRes.Quarantined != wantRes.Quarantined ||
						gotRes.BudgetExhausted != wantRes.BudgetExhausted {
						t.Fatalf("workers=%d chunk=%d: result %+v, serial %+v",
							workers, chunk, gotRes, wantRes)
					}
				}
			}
		})
	}
}

// TestStreamParallelStepBudgetMatchesSerial pins the degrade path: a
// starved step budget must keep-original-value identically in both
// modes.
func TestStreamParallelStepBudgetMatchesSerial(t *testing.T) {
	tc := streamCases(t)[0]
	want, wantRes, err := cleanStream(t, tc, repair.Options{StepBudget: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if wantRes.BudgetExhausted == 0 {
		t.Fatal("test expects the starved budget to exhaust at least one row")
	}
	got, gotRes, err := cleanStream(t, tc, repair.Options{StepBudget: 1, Workers: 4, ChunkSize: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || gotRes.BudgetExhausted != wantRes.BudgetExhausted {
		t.Fatalf("parallel degrade differs: res=%+v want %+v\n%s", gotRes, wantRes, got)
	}
}

// TestStreamParallelDedup feeds a duplicate-heavy stream (each source
// row repeated in a burst, as in the UIS-style duplicate generators)
// and locks down the dedup accounting: with the global memo each
// memo-served row counts exactly once on both paths; with the memo
// disabled the parallel path falls back to in-chunk dedup and the
// serial path counts nothing. Either way dedup stays invisible in the
// output bytes.
func TestStreamParallelDedup(t *testing.T) {
	ex := dataset.NewPaperExample()
	dup := &relation.Table{Schema: ex.Schema}
	for _, tu := range ex.Dirty.Tuples {
		for r := 0; r < 5; r++ {
			dup.Tuples = append(dup.Tuples, tu.Clone())
		}
	}
	tc := streamCase{"dup", ex.Rules, ex.KB, ex.Schema, tableCSV(t, dup)}
	// 5 copies of each of 4 rows: 4 cold repairs, 16 served rows.
	const wantDeduped = 16

	t.Run("memo", func(t *testing.T) {
		want, wantRes, err := cleanStream(t, tc, repair.Options{}, true)
		if err != nil {
			t.Fatal(err)
		}
		got, gotRes, err := cleanStream(t, tc, repair.Options{Workers: 2, ChunkSize: 64}, true)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("deduped output differs from serial:\n%s\nwant:\n%s", got, want)
		}
		if gotRes.Rows != wantRes.Rows {
			t.Fatalf("Rows = %d, want %d", gotRes.Rows, wantRes.Rows)
		}
		if gotRes.Deduped != wantDeduped {
			t.Errorf("parallel Deduped = %d, want %d", gotRes.Deduped, wantDeduped)
		}
		if wantRes.Deduped != wantDeduped {
			t.Errorf("serial Deduped = %d, want %d", wantRes.Deduped, wantDeduped)
		}
	})

	t.Run("no-memo", func(t *testing.T) {
		want, wantRes, err := cleanStream(t, tc, repair.Options{MemoDisabled: true}, true)
		if err != nil {
			t.Fatal(err)
		}
		got, gotRes, err := cleanStream(t, tc, repair.Options{MemoDisabled: true, Workers: 2, ChunkSize: 64}, true)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("deduped output differs from serial:\n%s\nwant:\n%s", got, want)
		}
		// All 20 rows fit one 64-row chunk, so in-chunk dedup catches
		// every duplicate; the serial path has no dedup at all.
		if gotRes.Deduped != wantDeduped {
			t.Errorf("parallel Deduped = %d, want %d", gotRes.Deduped, wantDeduped)
		}
		if wantRes.Deduped != 0 {
			t.Errorf("serial Deduped = %d, want 0", wantRes.Deduped)
		}
	})
}

// TestStreamParallelDeepCopiesRecords is the aliasing regression test
// for the reader stage. The csv.Reader runs with ReuseRecord, so the
// record slice is overwritten by the next Read (the field strings are
// fresh per record); row headers must be copied into the chunk's own
// arena before crossing the chunk channel, and recycled chunks must
// never share output rows. With either property broken, the reader
// races ahead of the workers (chunk=1 forces a row per channel hop)
// and earlier rows are observed mutated, so the output diverges from
// the serial reference on essentially every run.
func TestStreamParallelDeepCopiesRecords(t *testing.T) {
	nb := dataset.NewNobel(9, 400)
	inj := nb.Inject(dataset.Noise{Rate: 0.2, TypoFrac: 0.5, Seed: 9})
	tc := streamCase{"nobel-400", nb.Rules, nb.Yago, nb.Schema, tableCSV(t, inj.Dirty)}

	want, _, err := cleanStream(t, tc, repair.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := cleanStream(t, tc, repair.Options{Workers: 4, ChunkSize: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != inj.Dirty.Len() {
		t.Fatalf("Rows = %d, want %d", res.Rows, inj.Dirty.Len())
	}
	if got != want {
		// Pinpoint the first corrupted line for the failure message.
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := range wl {
			if i >= len(gl) || gl[i] != wl[i] {
				t.Fatalf("line %d mutated after crossing the chunk channel:\n got %q\nwant %q", i, gl[i], wl[i])
			}
		}
		t.Fatal("parallel output differs from serial")
	}
}

// TestStreamParallelReaderError checks mid-stream input failures: all
// rows before the bad record are cleaned, flushed and counted, and the
// error arrives as a *PartialError naming the offending line — the
// same contract as the serial path.
func TestStreamParallelReaderError(t *testing.T) {
	ex := dataset.NewPaperExample()
	input := tableCSV(t, ex.Dirty) + "only,three,fields\n"
	tc := streamCase{"short-record", ex.Rules, ex.KB, ex.Schema, input}

	want, wantRes, wantErr := cleanStream(t, tc, repair.Options{}, true)
	if wantErr == nil {
		t.Fatal("serial: want error for short record")
	}
	got, gotRes, err := cleanStream(t, tc, repair.Options{Workers: 3, ChunkSize: 2}, true)
	var pe *repair.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("line %d", ex.Dirty.Len()+2)) {
		t.Errorf("error %q does not name the offending line", err)
	}
	if pe.Done != ex.Dirty.Len() || gotRes.Rows != ex.Dirty.Len() {
		t.Errorf("Done = %d, Rows = %d, want %d", pe.Done, gotRes.Rows, ex.Dirty.Len())
	}
	if got != want || gotRes.Rows != wantRes.Rows {
		t.Errorf("partial output differs from serial:\n%s\nwant:\n%s", got, want)
	}
}

// TestStreamParallelWriterError checks mid-stream sink failures: the
// pipeline cancels its producer side and reports a *PartialError whose
// Done matches what actually reached the sink's accepted writes.
func TestStreamParallelWriterError(t *testing.T) {
	nb := dataset.NewNobel(5, 300)
	inj := nb.Inject(dataset.Noise{Rate: 0.1, TypoFrac: 0.5, Seed: 5})
	e, err := repair.NewEngineWithOptions(nb.Rules, nb.Yago, nb.Schema,
		repair.Options{Workers: 4, ChunkSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	if err := inj.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	w := &faultinject.Writer{FailAfter: 2}
	_, serr := e.CleanCSVStreamContext(context.Background(), &in, w, false)
	var pe *repair.PartialError
	if !errors.As(serr, &pe) || !errors.Is(serr, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want *PartialError wrapping ErrInjected", serr)
	}
}

// TestStreamParallelCancel checks that a pre-cancelled context stops
// the pipeline before any row is emitted, with the header already
// written — matching the serial contract.
func TestStreamParallelCancel(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngineWithOptions(ex.Rules, ex.KB, ex.Schema,
		repair.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var in, out bytes.Buffer
	if err := ex.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, serr := e.CleanCSVStreamContext(ctx, &in, &out, false)
	var pe *repair.PartialError
	if !errors.As(serr, &pe) || !errors.Is(serr, context.Canceled) {
		t.Fatalf("err = %v, want *PartialError wrapping context.Canceled", serr)
	}
	if res.Rows != 0 {
		t.Errorf("Rows = %d, want 0", res.Rows)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "Name,") {
		t.Errorf("partial output = %q, want header only", out.String())
	}
}

// TestStreamParallelEmptyInput: a header-only stream must produce a
// header-only output and no error in both modes.
func TestStreamParallelEmptyInput(t *testing.T) {
	ex := dataset.NewPaperExample()
	tc := streamCase{"empty", ex.Rules, ex.KB, ex.Schema,
		strings.Join(ex.Schema.Attrs, ",") + "\n"}
	for _, opts := range []repair.Options{{}, {Workers: 4}} {
		out, res, err := cleanStream(t, tc, opts, true)
		if err != nil {
			t.Fatalf("workers=%d: %v", opts.Workers, err)
		}
		if res.Rows != 0 {
			t.Errorf("workers=%d: Rows = %d, want 0", opts.Workers, res.Rows)
		}
		if strings.TrimSpace(out) != strings.Join(ex.Schema.Attrs, ",") {
			t.Errorf("workers=%d: output = %q", opts.Workers, out)
		}
	}
}
