package repair

import "detective/internal/relation"

// RepairWithOrder runs the chase of Algorithm 1, but scans the rules
// in the given preference order (a permutation of rule indexes) when
// looking for the next applicable rule. Consistency checking uses
// this to explore different application orders; for a consistent rule
// set every order reaches the same fixpoint (the Church-Rosser
// property, §IV-A).
func (e *Engine) RepairWithOrder(t *relation.Tuple, order []int) *relation.Tuple {
	g := e.Cat.Graph() // pin: every order explores one KB
	cl := t.Clone()
	used := make([]bool, len(e.fast))
	for {
		progress := false
		for _, i := range order {
			if used[i] {
				continue
			}
			out := e.fast[i].EvaluateOn(g, cl)
			if !e.applicable(cl, out) {
				continue
			}
			e.apply(cl, out, 0, nil, false)
			used[i] = true
			progress = true
			break
		}
		if !progress {
			return cl
		}
	}
}

// NumRules returns the number of rules in the engine.
func (e *Engine) NumRules() int { return len(e.fast) }
