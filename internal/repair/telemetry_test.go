package repair_test

import (
	"context"
	"sync"
	"testing"

	"detective/internal/dataset"
	"detective/internal/repair"
	"detective/internal/telemetry"
)

// outcomeCounters returns the process-wide telemetry counters the
// engine bumps per tuple. The default registry is shared across the
// whole test binary, so assertions below are delta-based.
func outcomeCounters() (repaired, budget, quarantined *telemetry.Counter) {
	reg := telemetry.Default()
	lbl := func(v string) telemetry.Label {
		return telemetry.Label{Name: "outcome", Value: v}
	}
	return reg.Counter("detective_repair_tuples_total", "", lbl("repaired")),
		reg.Counter("detective_repair_tuples_total", "", lbl("budget_exhausted")),
		reg.Counter("detective_repair_tuples_total", "", lbl("quarantined"))
}

// TestTelemetryConcurrentRepairTable runs many RepairTableContext calls
// at once and checks that the engine's lifetime Stats, the per-call
// Stats deltas, and the shared telemetry outcome counters all agree.
// Run with -race: the counters are the contended surface.
func TestTelemetryConcurrentRepairTable(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngineWithOptions(ex.Rules, ex.KB, ex.Schema, repair.Options{
		TelemetrySampleEvery: 1,    // sample every tuple so histograms move too
		MemoDisabled:         true, // memo hits skip the sampled repair path
	})
	if err != nil {
		t.Fatal(err)
	}

	repairedC, budgetC, quarC := outcomeCounters()
	tupleCount := telemetry.Default().Histogram(
		"detective_repair_tuple_seconds", "", nil)
	sampledC := telemetry.Default().Counter("detective_repair_sampled_total", "")
	base := repair.Stats{
		Repaired:        repairedC.Value(),
		BudgetExhausted: budgetC.Value(),
		Quarantined:     quarC.Value(),
	}
	baseObs := tupleCount.Count()
	baseSampled := sampledC.Value()

	const callers = 8
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		total repair.Stats
	)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, st, err := e.RepairTableContext(context.Background(), ex.Dirty, 4)
			if err != nil {
				t.Errorf("RepairTableContext: %v", err)
				return
			}
			mu.Lock()
			total = total.Add(st)
			mu.Unlock()
		}()
	}
	wg.Wait()

	tuples := int64(callers * ex.Dirty.Len())
	if total.Repaired != tuples || total.Quarantined != 0 || total.BudgetExhausted != 0 {
		t.Fatalf("per-call stats sum = %v, want repaired=%d and no failures", total, tuples)
	}
	if got := e.Stats(); got != total {
		t.Errorf("engine lifetime stats %v != per-call sum %v", got, total)
	}

	delta := repair.Stats{
		Repaired:        repairedC.Value() - base.Repaired,
		BudgetExhausted: budgetC.Value() - base.BudgetExhausted,
		Quarantined:     quarC.Value() - base.Quarantined,
	}
	if delta != total {
		t.Errorf("telemetry outcome counter delta %v != per-call sum %v", delta, total)
	}
	// Sampling every tuple: each tuple contributes one latency
	// observation and one sampled-count tick.
	if got := tupleCount.Count() - baseObs; got != tuples {
		t.Errorf("tuple latency observations delta = %d, want %d", got, tuples)
	}
	if got := sampledC.Value() - baseSampled; got != tuples {
		t.Errorf("sampled counter delta = %d, want %d", got, tuples)
	}
}

// TestTelemetrySamplingDisabled checks that a negative sampling period
// keeps latency histograms still while outcome counters stay exact.
func TestTelemetrySamplingDisabled(t *testing.T) {
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngineWithOptions(ex.Rules, ex.KB, ex.Schema, repair.Options{
		TelemetrySampleEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	repairedC, _, _ := outcomeCounters()
	tupleCount := telemetry.Default().Histogram(
		"detective_repair_tuple_seconds", "", nil)
	baseRepaired := repairedC.Value()
	baseObs := tupleCount.Count()

	out, st, err := e.RepairTableContext(context.Background(), ex.Dirty, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != ex.Dirty.Len() {
		t.Fatalf("output rows = %d, want %d", out.Len(), ex.Dirty.Len())
	}
	if st.Repaired != int64(ex.Dirty.Len()) {
		t.Fatalf("per-call repaired = %d, want %d", st.Repaired, ex.Dirty.Len())
	}
	if got := repairedC.Value() - baseRepaired; got != st.Repaired {
		t.Errorf("outcome counter delta = %d, want %d", got, st.Repaired)
	}
	if got := tupleCount.Count() - baseObs; got != 0 {
		t.Errorf("latency observations delta = %d, want 0 with sampling disabled", got)
	}
}
