// Global cross-request repair memoization.
//
// Repair is a pure function of (rule set, KB generation, tuple
// values): the engine is read-only after construction and every tuple
// pins one frozen graph for its whole repair. That makes whole
// outcomes cacheable across chunks, requests, and connections — not
// just within one pipeline chunk — and real dirty data is heavily
// value-skewed (Zipf), so a small bounded cache absorbs most of the
// stream. The memo here has two tiers:
//
//   - Tier 1 caches whole-tuple outcomes keyed by a 64-bit
//     fingerprint of (schema, cell values, marks): repaired values,
//     marks, and the quarantine/step-budget verdict, so a replay is
//     byte-identical to a fresh repair, degradation semantics
//     included.
//   - Tier 2 caches per-cell evidence verdicts keyed by (check ID,
//     cell value), so a novel tuple that shares a hot value with
//     earlier traffic still skips the KB probe (the per-check
//     NodeCheckOn is itself a pure function of the value and the
//     pinned graph; see rules.Matcher).
//
// Both tiers are sharded 64 ways by the fingerprint's high bits, each
// shard guarded by one mutex and bounded by an intrusive CLOCK over a
// slot array (ref bits live in the slots; eviction walks the slots,
// never allocates). Entries are tagged with the generation of the
// graph the repair actually ran on; a generation mismatch on read
// evicts the entry and counts as a miss, so kb.Store.Swap invalidates
// the whole memo coherently with zero stop-the-world work —
// generations are strictly increasing and never reused, so a stale
// entry can be wasted but never wrong. Fingerprints are verified
// against the full stored key on every hit, so a 64-bit collision
// degrades to a miss instead of a wrong answer.
package repair

import (
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"

	"detective/internal/relation"
)

// DefaultMemoBytes is the memo's default byte budget (both tiers
// together) when Options.MemoBytes is 0: comfortably thousands of
// cached tuples at eval-dataset row sizes while staying irrelevant
// next to the KB's own footprint.
const DefaultMemoBytes = 64 << 20

const (
	memoShardBits  = 6
	memoShardCount = 1 << memoShardBits
)

// Fixed per-entry cost estimates: slot struct + map entry + slice
// headers. Cell values and row strings are accounted exactly on top.
const (
	tupleEntryOverhead = 160
	cellEntryOverhead  = 96
	stringOverhead     = 16
)

// ---------------------------------------------------------------------------
// Fingerprinting — xxhash/murmur-style 64-bit mixing, allocation-free.

const (
	fpPrime1 = 0x9E3779B185EBCA87
	fpPrime2 = 0xC2B2AE3D27D4EB4F
	fpPrime3 = 0x165667B19E3779F9
	fpPrime4 = 0x85EBCA77C2B2AE63
)

// fpMix folds one 64-bit lane into the running hash.
func fpMix(h, k uint64) uint64 {
	k *= fpPrime2
	k = bits.RotateLeft64(k, 31)
	k *= fpPrime1
	h ^= k
	return bits.RotateLeft64(h, 27)*fpPrime1 + fpPrime4
}

// fpFinish is the final avalanche; without it the high bits (which
// pick the shard) would be dominated by the last lane mixed in.
func fpFinish(h uint64) uint64 {
	h ^= h >> 33
	h *= fpPrime2
	h ^= h >> 29
	h *= fpPrime3
	h ^= h >> 32
	return h
}

// fpString folds one length-prefixed string into h, eight bytes at a
// time. The length prefix frames each cell, so concatenations that
// shuffle bytes across cell boundaries cannot collide structurally.
func fpString(h uint64, s string) uint64 {
	h = fpMix(h, uint64(len(s)))
	i := 0
	for ; i+8 <= len(s); i += 8 {
		k := uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
			uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
		h = fpMix(h, k)
	}
	if i < len(s) {
		var k uint64
		for j := len(s) - 1; j >= i; j-- {
			k = k<<8 | uint64(s[j])
		}
		h = fpMix(h, k)
	}
	return h
}

// ---------------------------------------------------------------------------
// Stats.

// MemoTierStats is one tier's counters in a MemoStats snapshot.
type MemoTierStats struct {
	Hits int64 `json:"hits"`
	// Misses counts lookups not answered by the tier, including
	// fingerprint collisions and generation mismatches.
	Misses int64 `json:"misses"`
	// Evictions counts entries evicted by the CLOCK to stay under the
	// byte budget; GenEvictions counts entries dropped on read because
	// their pinned KB generation was superseded by a hot reload.
	Evictions    int64 `json:"evictions"`
	GenEvictions int64 `json:"genEvictions"`
	Entries      int64 `json:"entries"`
	Bytes        int64 `json:"bytes"`
}

// MemoStats is a point-in-time snapshot of the repair memo, exposed
// through Engine.MemoStats, the server's /stats document, and (as
// individual series) Prometheus exposition.
type MemoStats struct {
	// Enabled reports whether the engine was built with the memo on;
	// all other fields are zero when it is false.
	Enabled bool `json:"enabled"`
	// BudgetBytes is the configured byte budget across both tiers.
	BudgetBytes int64         `json:"budgetBytes"`
	Tuple       MemoTierStats `json:"tuple"`
	Cell        MemoTierStats `json:"cell"`
}

// memoCounters is one tier's live counter set.
type memoCounters struct {
	hits         atomic.Int64
	misses       atomic.Int64
	evictions    atomic.Int64
	genEvictions atomic.Int64
	entries      atomic.Int64
	bytes        atomic.Int64
}

func (c *memoCounters) snapshot() MemoTierStats {
	return MemoTierStats{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		Evictions:    c.evictions.Load(),
		GenEvictions: c.genEvictions.Load(),
		Entries:      c.entries.Load(),
		Bytes:        c.bytes.Load(),
	}
}

// ---------------------------------------------------------------------------
// Tier 1 — whole-tuple outcomes.

// tupleEntry is one cached whole-tuple repair. orig/origMk hold the
// exact input (verified on every hit; origMk nil means all-unmarked,
// the streaming common case), vals/mk/oc the byte-identical result.
type tupleEntry struct {
	fp     uint64
	gen    int64
	orig   []string
	origMk []bool
	vals   []string
	mk     []bool
	oc     tupleOutcome
	conf   float64
	bytes  int64
	ref    bool
	used   bool
}

type tupleShard struct {
	mu    sync.Mutex
	idx   map[uint64]int32
	slots []tupleEntry
	free  []int32
	hand  int
	bytes int64
}

// remove frees slot i. Slice capacity stays with the slot for reuse;
// the string contents are released by the overwriting insert.
func (s *tupleShard) remove(i int32, c *memoCounters) {
	e := &s.slots[i]
	delete(s.idx, e.fp)
	s.bytes -= e.bytes
	c.bytes.Add(-e.bytes)
	c.entries.Add(-1)
	e.used = false
	e.ref = false
	s.free = append(s.free, i)
}

// ---------------------------------------------------------------------------
// Tier 2 — per-cell evidence verdicts.

type cellEntry struct {
	fp    uint64
	gen   int64
	id    int32
	val   string
	hold  bool
	bytes int64
	ref   bool
	used  bool
}

type cellShard struct {
	mu    sync.Mutex
	idx   map[uint64]int32
	slots []cellEntry
	free  []int32
	hand  int
	bytes int64
}

func (s *cellShard) remove(i int32, c *memoCounters) {
	e := &s.slots[i]
	delete(s.idx, e.fp)
	s.bytes -= e.bytes
	c.bytes.Add(-e.bytes)
	c.entries.Add(-1)
	e.used = false
	e.ref = false
	e.val = ""
	s.free = append(s.free, i)
}

// ---------------------------------------------------------------------------
// The memo.

// repairMemo is the engine's global cross-request memo. One instance
// per engine; all methods are safe for concurrent use.
type repairMemo struct {
	schemaFP    uint64
	budget      int64 // total configured budget, for MemoStats
	tupleBudget int64 // per-shard tier-1 budget
	cellBudget  int64 // per-shard tier-2 budget

	tuple      [memoShardCount]tupleShard
	cell       [memoShardCount]cellShard
	tupleStats memoCounters
	cellStats  memoCounters
}

// newRepairMemo sizes the memo for schema under a total byte budget,
// split 3/4 tier 1 : 1/4 tier 2 — whole-tuple hits skip strictly more
// work than cell hits, so they get the larger share.
func newRepairMemo(schema *relation.Schema, budget int64) *repairMemo {
	h := fpString(uint64(fpPrime3), schema.Name)
	for _, a := range schema.Attrs {
		h = fpString(h, a)
	}
	m := &repairMemo{
		schemaFP:    fpFinish(h),
		budget:      budget,
		tupleBudget: budget * 3 / 4 / memoShardCount,
		cellBudget:  budget / 4 / memoShardCount,
	}
	for i := range m.tuple {
		m.tuple[i].idx = make(map[uint64]int32)
	}
	for i := range m.cell {
		m.cell[i].idx = make(map[uint64]int32)
	}
	return m
}

func memoShard(fp uint64) int { return int(fp >> (64 - memoShardBits)) }

// tupleFP fingerprints a row's cell values and marks against the
// schema, without allocating. mk nil is the all-unmarked row and
// hashes identically to an explicit all-false slice.
func (m *repairMemo) tupleFP(vals []string, mk []bool) uint64 {
	h := m.schemaFP
	for _, v := range vals {
		h = fpString(h, v)
	}
	var markBits, any uint64
	for i, b := range mk {
		if b {
			markBits |= 1 << (uint(i) & 63)
			any = 1
		}
	}
	if any != 0 {
		h = fpMix(h, markBits)
	}
	return fpFinish(h)
}

func equalRow(a []string, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// equalMarks treats nil as all-false on either side.
func equalMarks(a, b []bool) bool {
	switch {
	case a == nil:
		for _, v := range b {
			if v {
				return false
			}
		}
	case b == nil:
		for _, v := range a {
			if v {
				return false
			}
		}
	default:
		for i, v := range a {
			if v != b[i] {
				return false
			}
		}
	}
	return true
}

func rowBytes(vals []string) int64 {
	n := int64(0)
	for _, v := range vals {
		n += stringOverhead + int64(len(v))
	}
	return n
}

// lookupTuple finds, verifies, and touches the entry for (gen, fp,
// vals, mk) under the shard lock, counting the outcome. It returns
// nil on any miss — absent, superseded generation (the entry is
// evicted), or fingerprint collision.
func (s *tupleShard) lookupTuple(c *memoCounters, gen int64, fp uint64, vals []string, mk []bool) *tupleEntry {
	i, ok := s.idx[fp]
	if !ok {
		c.misses.Add(1)
		return nil
	}
	e := &s.slots[i]
	if e.gen != gen {
		s.remove(i, c)
		c.genEvictions.Add(1)
		c.misses.Add(1)
		return nil
	}
	if !equalRow(e.orig, vals) || !equalMarks(e.origMk, mk) {
		c.misses.Add(1)
		return nil
	}
	e.ref = true
	c.hits.Add(1)
	return e
}

// getTupleClone returns a fresh clone of the memoized repair of
// (vals, mk) under generation gen, for the table/request path where
// the caller owns the result. The third result is the stored row
// confidence (always 1 for single-engine entries).
func (m *repairMemo) getTupleClone(gen int64, fp uint64, vals []string, mk []bool) (*relation.Tuple, tupleOutcome, float64, bool) {
	s := &m.tuple[memoShard(fp)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.lookupTuple(&m.tupleStats, gen, fp, vals, mk)
	if e == nil {
		return nil, 0, 0, false
	}
	cl := &relation.Tuple{
		Values: append([]string(nil), e.vals...),
		Marked: append([]bool(nil), e.mk...),
	}
	return cl, e.oc, e.conf, true
}

// getRowInto copies the memoized repair of the unmarked row rec into
// tup without allocating — the streaming read-through. It only
// matches entries whose input was unmarked (origMk nil), which is
// every entry the streaming paths insert.
func (m *repairMemo) getRowInto(gen int64, fp uint64, rec []string, tup *relation.Tuple) (tupleOutcome, float64, bool) {
	s := &m.tuple[memoShard(fp)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.lookupTuple(&m.tupleStats, gen, fp, rec, nil)
	if e == nil {
		return 0, 0, false
	}
	copy(tup.Values, e.vals)
	copy(tup.Marked, e.mk)
	return e.oc, e.conf, true
}

// putTuple inserts the repair of (origVals, origMk) → (out, oc, conf)
// under generation gen. conf is the row confidence stored alongside
// the outcome (single-engine paths pass 1). owned says the input
// strings are safe to retain (deep-copied rows, table tuples); when
// false (the serial stream's ReuseRecord buffers) every retained
// string is cloned first. Oversized entries are dropped rather than
// thrashing the CLOCK.
func (m *repairMemo) putTuple(gen int64, fp uint64, origVals []string, origMk []bool, out *relation.Tuple, oc tupleOutcome, conf float64, owned bool) {
	size := int64(tupleEntryOverhead) + rowBytes(origVals) + rowBytes(out.Values) + int64(len(origVals)+2*len(out.Values))
	if size > m.tupleBudget {
		return
	}
	s := &m.tuple[memoShard(fp)]
	s.mu.Lock()
	defer s.mu.Unlock()

	var i int32
	if j, ok := s.idx[fp]; ok {
		// Overwrite in place: same fingerprint, possibly a newer
		// generation or a colliding row — the newest repair wins.
		i = j
		e := &s.slots[i]
		s.bytes -= e.bytes
		m.tupleStats.bytes.Add(-e.bytes)
	} else if n := len(s.free); n > 0 {
		i = s.free[n-1]
		s.free = s.free[:n-1]
		s.idx[fp] = i
		m.tupleStats.entries.Add(1)
	} else {
		i = int32(len(s.slots))
		s.slots = append(s.slots, tupleEntry{})
		s.idx[fp] = i
		m.tupleStats.entries.Add(1)
	}

	e := &s.slots[i]
	e.fp, e.gen, e.oc, e.conf, e.bytes = fp, gen, oc, conf, size
	e.used, e.ref = true, true
	e.orig = copyRowInto(e.orig, origVals, owned)
	if anyMarked(origMk) {
		e.origMk = append(e.origMk[:0], origMk...)
	} else {
		e.origMk = nil
	}
	// Repaired values: a cell the repair left byte-identical shares the
	// (possibly cloned) original string; a rewritten cell holds a
	// KB-owned canonical string, safe to retain as-is.
	if cap(e.vals) < len(out.Values) {
		e.vals = make([]string, len(out.Values))
	}
	e.vals = e.vals[:len(out.Values)]
	for k, v := range out.Values {
		if k < len(e.orig) && v == origVals[k] {
			e.vals[k] = e.orig[k]
		} else {
			e.vals[k] = v
		}
	}
	e.mk = append(e.mk[:0], out.Marked...)

	s.bytes += size
	m.tupleStats.bytes.Add(size)
	s.evictTuple(m.tupleBudget, &m.tupleStats, i)
}

// evictTuple is the shard's CLOCK sweep: clear ref bits as the hand
// passes, evict the first unreferenced entry, repeat until under
// budget. keep (the just-inserted slot) is never evicted. The pass
// bound forces progress even when every entry is hot.
func (s *tupleShard) evictTuple(budget int64, c *memoCounters, keep int32) {
	n := len(s.slots)
	for steps := 0; s.bytes > budget && steps < 3*n; steps++ {
		h := s.hand
		s.hand++
		if s.hand >= n {
			s.hand = 0
		}
		e := &s.slots[h]
		if !e.used || int32(h) == keep {
			continue
		}
		if e.ref {
			e.ref = false
			continue
		}
		s.remove(int32(h), c)
		c.evictions.Add(1)
	}
}

// copyRowInto reuses dst's capacity; !owned additionally clones every
// string so nothing retained aliases a csv.Reader's reused buffers.
func copyRowInto(dst, src []string, owned bool) []string {
	if cap(dst) < len(src) {
		dst = make([]string, len(src))
	}
	dst = dst[:len(src)]
	if owned {
		copy(dst, src)
	} else {
		for i, v := range src {
			dst[i] = strings.Clone(v)
		}
	}
	return dst
}

func anyMarked(mk []bool) bool {
	for _, b := range mk {
		if b {
			return true
		}
	}
	return false
}

// cellFP fingerprints one (check ID, value) evidence probe.
func (m *repairMemo) cellFP(id int32, v string) uint64 {
	h := fpMix(m.schemaFP, uint64(uint32(id))|1<<40)
	return fpFinish(fpString(h, v))
}

// getCell answers a memoized evidence verdict for value v under check
// id and generation gen.
func (m *repairMemo) getCell(gen int64, id int32, v string) (hold, ok bool) {
	fp := m.cellFP(id, v)
	s := &m.cell[memoShard(fp)]
	s.mu.Lock()
	defer s.mu.Unlock()
	i, found := s.idx[fp]
	if !found {
		m.cellStats.misses.Add(1)
		return false, false
	}
	e := &s.slots[i]
	if e.gen != gen {
		s.remove(i, &m.cellStats)
		m.cellStats.genEvictions.Add(1)
		m.cellStats.misses.Add(1)
		return false, false
	}
	if e.id != id || e.val != v {
		m.cellStats.misses.Add(1)
		return false, false
	}
	e.ref = true
	m.cellStats.hits.Add(1)
	return e.hold, true
}

// putCell records an evidence verdict. The value is always cloned:
// cell inserts happen on the repair path where v may alias a reused
// record buffer, and one small copy per distinct hot value is noise.
func (m *repairMemo) putCell(gen int64, id int32, v string, hold bool) {
	size := int64(cellEntryOverhead+len(v)) + stringOverhead
	if size > m.cellBudget {
		return
	}
	fp := m.cellFP(id, v)
	s := &m.cell[memoShard(fp)]
	s.mu.Lock()
	defer s.mu.Unlock()

	var i int32
	if j, ok := s.idx[fp]; ok {
		i = j
		e := &s.slots[i]
		s.bytes -= e.bytes
		m.cellStats.bytes.Add(-e.bytes)
	} else if n := len(s.free); n > 0 {
		i = s.free[n-1]
		s.free = s.free[:n-1]
		s.idx[fp] = i
		m.cellStats.entries.Add(1)
	} else {
		i = int32(len(s.slots))
		s.slots = append(s.slots, cellEntry{})
		s.idx[fp] = i
		m.cellStats.entries.Add(1)
	}
	e := &s.slots[i]
	e.fp, e.gen, e.id, e.hold, e.bytes = fp, gen, id, hold, size
	e.val = strings.Clone(v)
	e.used, e.ref = true, true
	s.bytes += size
	m.cellStats.bytes.Add(size)

	n := len(s.slots)
	for steps := 0; s.bytes > m.cellBudget && steps < 3*n; steps++ {
		h := s.hand
		s.hand++
		if s.hand >= n {
			s.hand = 0
		}
		se := &s.slots[h]
		if !se.used || int32(h) == i {
			continue
		}
		if se.ref {
			se.ref = false
			continue
		}
		s.remove(int32(h), &m.cellStats)
		m.cellStats.evictions.Add(1)
	}
}

// stats snapshots both tiers.
func (m *repairMemo) stats() MemoStats {
	return MemoStats{
		Enabled:     true,
		BudgetBytes: m.budget,
		Tuple:       m.tupleStats.snapshot(),
		Cell:        m.cellStats.snapshot(),
	}
}

// MemoStats snapshots the engine's repair memo counters; the zero
// MemoStats (Enabled false) is returned when the memo is disabled.
func (e *Engine) MemoStats() MemoStats {
	if e.memo == nil {
		return MemoStats{}
	}
	return e.memo.stats()
}

// RowOutcome classifies how RepairRow ended, mirroring the engine's
// internal per-tuple outcomes.
type RowOutcome uint8

const (
	// RowRepaired: the repair reached its fixpoint; dst holds the
	// repaired values and marks.
	RowRepaired RowOutcome = iota
	// RowBudgetExhausted: the step budget ran out; dst holds the
	// original values, unmarked (keep-original-value degradation).
	RowBudgetExhausted
	// RowQuarantined: the repair panicked; dst holds the original
	// values, unmarked.
	RowQuarantined
)

// RepairRow is the allocation-free serving-path repair of one row: it
// repairs rec into the caller-owned dst (whose Values and Marked must
// have the schema's arity) through the global memo when enabled,
// under the same panic-quarantine and keep-original-value semantics
// as the streaming cleaner. It reports the outcome and whether the
// memo served the row. rec's strings may be retained by the memo, so
// they must not alias a reused read buffer.
func (e *Engine) RepairRow(dst *relation.Tuple, rec []string) (RowOutcome, bool) {
	oc, hit := e.repairRowMemo(dst, rec, true)
	return RowOutcome(oc), hit
}

// repairRowMemo is the shared streaming read-through: memo lookup,
// on miss a pinned in-place repair (panic-quarantined, outcome
// counted), then insertion — so the memo entry's generation is
// exactly the generation the repair ran on. tup is left holding the
// row to emit (repaired on OK, original otherwise). rec must be
// unmarked input; owned follows putTuple's contract.
func (e *Engine) repairRowMemo(tup *relation.Tuple, rec []string, owned bool) (tupleOutcome, bool) {
	if rr := e.recorder; rr != nil {
		rr.Record(rec)
	}
	g := e.Cat.Graph() // pin: lookup, repair, and insert see one generation
	degrade, probe := e.breakerAdmit()
	if degrade {
		// Detect-only while the breaker is open: rules mark, values stay
		// original, and the memo is bypassed in both directions so stale
		// degraded verdicts never outlive the incident.
		copyRecInto(tup, rec)
		oc := e.detectOnlyRowOn(g, tup)
		if oc != tupleOK {
			copyRecInto(tup, rec)
		}
		return oc, false
	}
	memo := e.memo
	if memo == nil {
		copyRecInto(tup, rec)
		oc := e.repairRowSafeOn(g, tup, probe)
		if oc != tupleOK {
			copyRecInto(tup, rec)
		}
		return oc, false
	}
	gen := g.Generation()
	fp := memo.tupleFP(rec, nil)
	if !probe {
		// A half-open probe skips the memo read: a cached quarantine
		// verdict must not decide the probe, and the fresh verdict below
		// overwrites (heals) the poisoned entry.
		if oc, _, ok := memo.getRowInto(gen, fp, rec, tup); ok {
			e.count(oc, nil)
			return oc, true
		}
	}
	copyRecInto(tup, rec)
	oc := e.repairRowSafeOn(g, tup, probe)
	if oc != tupleOK {
		// Keep-original-value: the partially repaired state is
		// discarded, and that degraded verdict is what gets memoized —
		// a replay must degrade identically.
		copyRecInto(tup, rec)
	}
	memo.putTuple(gen, fp, rec, nil, tup, oc, 1, owned)
	return oc, false
}

// copyRecInto resets tup to the unmarked input record.
func copyRecInto(tup *relation.Tuple, rec []string) {
	copy(tup.Values, rec)
	for i := range tup.Marked {
		tup.Marked[i] = false
	}
}
