package repair

import (
	"time"

	"detective/internal/telemetry"
)

// DefaultTelemetrySampleEvery is the default latency-sampling period:
// one tuple in every 64 is timed end to end and per stage. Sampling
// keeps the instrumented FastRepair within noise of the uninstrumented
// hot path (a ~10µs tuple would otherwise pay several clock reads per
// rule step); outcome counters are exact, only latency is sampled.
const DefaultTelemetrySampleEvery = 64

// engineInstr is the engine's view of the telemetry registry: outcome
// counters bumped on every tuple, and sampled latency histograms. All
// engines in a process share the same series (registry getters are
// idempotent), mirroring how one process serves one workload.
type engineInstr struct {
	sampler *telemetry.Sampler
	// reg is the registry every collector was built against — the
	// process default normally, a private registry for scratch engines
	// (canary shadow replays) that must not pollute serving metrics.
	reg *telemetry.Registry

	// tupleSeconds is the sampled end-to-end fast-repair latency.
	tupleSeconds *telemetry.Histogram
	// stage latencies within a sampled tuple: "detect" covers evidence
	// prechecks and matcher evaluation, "repair" covers applying an
	// outcome (mutation, memo invalidation, subsumption pruning).
	detectSeconds *telemetry.Histogram
	repairSeconds *telemetry.Histogram
	// fixpointSteps is the number of rule applications a sampled tuple
	// needed to reach its fixpoint.
	fixpointSteps *telemetry.Histogram
	// sampled counts tuples that were latency-sampled, so dashboards
	// can scale histogram rates back to tuple rates.
	sampled *telemetry.Counter

	// outcomes is indexed by tupleOutcome and counted on every tuple.
	outcomes [3]*telemetry.Counter

	// streamChunks counts chunks processed by the parallel streaming
	// pipeline; streamDeduped counts rows answered by the in-chunk
	// dedup instead of a fresh repair.
	streamChunks  *telemetry.Counter
	streamDeduped *telemetry.Counter
}

// newEngineInstr builds the engine's collectors against reg.
// sampleEvery <= -1 disables latency sampling entirely; 0 picks
// DefaultTelemetrySampleEvery.
func newEngineInstr(sampleEvery int, reg *telemetry.Registry) *engineInstr {
	if sampleEvery == 0 {
		sampleEvery = DefaultTelemetrySampleEvery
	}
	if sampleEvery < 0 {
		sampleEvery = 0 // Sampler admits nothing
	}
	stage := func(name string) *telemetry.Histogram {
		return reg.Histogram("detective_repair_stage_seconds",
			"Sampled per-stage latency within one tuple repair.",
			telemetry.DefBuckets, telemetry.Label{Name: "stage", Value: name})
	}
	in := &engineInstr{
		sampler: telemetry.NewSampler(sampleEvery),
		reg:     reg,
		tupleSeconds: reg.Histogram("detective_repair_tuple_seconds",
			"Sampled end-to-end latency of one fast-repair tuple.",
			telemetry.DefBuckets),
		detectSeconds: stage("detect"),
		repairSeconds: stage("repair"),
		fixpointSteps: reg.Histogram("detective_repair_fixpoint_steps",
			"Rule applications per sampled tuple before the fixpoint.",
			telemetry.ExpBuckets(1, 2, 10)),
		sampled: reg.Counter("detective_repair_sampled_total",
			"Tuples whose repair latency was sampled."),
	}
	in.outcomes[tupleOK] = reg.Counter("detective_repair_tuples_total",
		"Tuples repaired, by outcome.", telemetry.Label{Name: "outcome", Value: "repaired"})
	in.outcomes[tupleBudgetExhausted] = reg.Counter("detective_repair_tuples_total",
		"Tuples repaired, by outcome.", telemetry.Label{Name: "outcome", Value: "budget_exhausted"})
	in.outcomes[tupleQuarantined] = reg.Counter("detective_repair_tuples_total",
		"Tuples repaired, by outcome.", telemetry.Label{Name: "outcome", Value: "quarantined"})
	in.streamChunks = reg.Counter("detective_stream_chunks_total",
		"Chunks processed by the parallel streaming pipeline.")
	in.streamDeduped = reg.Counter("detective_stream_dedup_rows_total",
		"Streamed rows answered from a cache instead of a fresh repair: the global repair memo when enabled, otherwise the in-chunk duplicate map. Each served row counts exactly once.")
	return in
}

// registerMemo exposes the global repair memo's counters as
// scrape-time series. Re-registration replaces the previous funcs, so
// the newest memo-enabled engine in the process owns the series —
// the same newest-wins convention the server's cache metrics use.
func (in *engineInstr) registerMemo(m *repairMemo) {
	reg := in.reg
	tier := func(name string) telemetry.Label {
		return telemetry.Label{Name: "tier", Value: name}
	}
	reason := func(name string) telemetry.Label {
		return telemetry.Label{Name: "reason", Value: name}
	}
	reg.CounterFunc("detective_memo_hits_total",
		"Repair-memo lookups answered from the cache, by tier.",
		func() float64 { return float64(m.tupleStats.hits.Load()) }, tier("tuple"))
	reg.CounterFunc("detective_memo_hits_total",
		"Repair-memo lookups answered from the cache, by tier.",
		func() float64 { return float64(m.cellStats.hits.Load()) }, tier("cell"))
	reg.CounterFunc("detective_memo_misses_total",
		"Repair-memo lookups not answered from the cache, by tier.",
		func() float64 { return float64(m.tupleStats.misses.Load()) }, tier("tuple"))
	reg.CounterFunc("detective_memo_misses_total",
		"Repair-memo lookups not answered from the cache, by tier.",
		func() float64 { return float64(m.cellStats.misses.Load()) }, tier("cell"))
	reg.CounterFunc("detective_memo_evictions_total",
		"Repair-memo entries evicted, by tier and reason.",
		func() float64 { return float64(m.tupleStats.evictions.Load()) }, reason("capacity"), tier("tuple"))
	reg.CounterFunc("detective_memo_evictions_total",
		"Repair-memo entries evicted, by tier and reason.",
		func() float64 { return float64(m.cellStats.evictions.Load()) }, reason("capacity"), tier("cell"))
	reg.CounterFunc("detective_memo_evictions_total",
		"Repair-memo entries evicted, by tier and reason.",
		func() float64 { return float64(m.tupleStats.genEvictions.Load()) }, reason("generation"), tier("tuple"))
	reg.CounterFunc("detective_memo_evictions_total",
		"Repair-memo entries evicted, by tier and reason.",
		func() float64 { return float64(m.cellStats.genEvictions.Load()) }, reason("generation"), tier("cell"))
	reg.GaugeFunc("detective_memo_bytes",
		"Bytes held by the repair memo, by tier.",
		func() float64 { return float64(m.tupleStats.bytes.Load()) }, tier("tuple"))
	reg.GaugeFunc("detective_memo_bytes",
		"Bytes held by the repair memo, by tier.",
		func() float64 { return float64(m.cellStats.bytes.Load()) }, tier("cell"))
	reg.GaugeFunc("detective_memo_entries",
		"Entries held by the repair memo, by tier.",
		func() float64 { return float64(m.tupleStats.entries.Load()) }, tier("tuple"))
	reg.GaugeFunc("detective_memo_entries",
		"Entries held by the repair memo, by tier.",
		func() float64 { return float64(m.cellStats.entries.Load()) }, tier("cell"))
}

// registerBreaker exposes the engine's circuit breaker as scrape-time
// series. Newest-wins, like registerMemo.
func (in *engineInstr) registerBreaker(e *Engine) {
	reg := in.reg
	b := e.breaker
	reg.CounterFunc("detective_breaker_trips_total",
		"Circuit-breaker closed-to-open transitions.",
		func() float64 { return float64(b.trips.Load()) })
	reg.CounterFunc("detective_breaker_reopens_total",
		"Failed half-open probe repairs that reopened the breaker.",
		func() float64 { return float64(b.reopens.Load()) })
	reg.CounterFunc("detective_breaker_recoveries_total",
		"Successful half-open probe repairs that closed the breaker.",
		func() float64 { return float64(b.recoveries.Load()) })
	reg.CounterFunc("detective_breaker_degraded_rows_total",
		"Rows served detect-only while the breaker was open.",
		func() float64 { return float64(b.degradedTotal.Load()) })
	reg.GaugeFunc("detective_breaker_state",
		"Circuit-breaker state: 0 closed, 1 open, 2 half-open.",
		func() float64 { return float64(b.state.Load()) })
	if e.ruleBreakers != nil {
		reg.GaugeFunc("detective_breaker_open_rules",
			"Rules whose per-rule breakers are not closed.",
			func() float64 {
				n := 0
				for i := range e.ruleBreakers {
					if e.ruleBreakers[i].state.Load() != breakerClosed {
						n++
					}
				}
				return float64(n)
			})
	}
}

// stageTimer accumulates per-stage wall time for one sampled tuple.
// It lives on fastState only while that tuple is sampled; every
// non-sampled tuple pays a single nil check per rule step.
type stageTimer struct {
	detect time.Duration
	repair time.Duration
	start  time.Time
}

// observe flushes a sampled tuple's measurements into the histograms.
func (in *engineInstr) observe(tm *stageTimer, steps int) {
	in.sampled.Inc()
	in.tupleSeconds.Observe(time.Since(tm.start).Seconds())
	in.detectSeconds.Observe(tm.detect.Seconds())
	in.repairSeconds.Observe(tm.repair.Seconds())
	in.fixpointSteps.Observe(float64(steps))
}
