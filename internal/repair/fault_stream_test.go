package repair_test

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/faultinject"
	"detective/internal/relation"
	"detective/internal/repair"
)

// randomStreamTable builds a random table for the streaming
// equivalence property: cells are sampled column-wise from a real
// dirty table (so rules fire), replaced by random garbage (so rules
// miss), or poisoned with the panic trigger (so rows quarantine), and
// rows are emitted in short duplicate bursts, mimicking the
// duplicate-heavy distributions of the eval datasets.
func randomStreamTable(rng *rand.Rand, src *relation.Table, n int, poison string) *relation.Table {
	letters := []rune("abcdefghijklmnopqrstuvwxyz ")
	garbage := func() string {
		var b strings.Builder
		for i := 0; i < 3+rng.Intn(12); i++ {
			b.WriteRune(letters[rng.Intn(len(letters))])
		}
		return b.String()
	}
	out := &relation.Table{Schema: src.Schema}
	for out.Len() < n {
		tu := src.Tuples[rng.Intn(src.Len())].Clone()
		for j := range tu.Values {
			switch rng.Intn(10) {
			case 0:
				tu.Values[j] = garbage()
			case 1:
				// Swap in the same column of another row: plausible
				// but wrong values, the paper's error model.
				tu.Values[j] = src.Tuples[rng.Intn(src.Len())].Values[j]
			}
			tu.Marked[j] = false
		}
		if rng.Intn(25) == 0 {
			tu.Values[rng.Intn(len(tu.Values))] = poison
		}
		// Bursty duplicates: 1–4 consecutive copies of the row.
		for r := 1 + rng.Intn(4); r > 0 && out.Len() < n; r-- {
			out.Tuples = append(out.Tuples, tu.Clone())
		}
	}
	return out
}

// TestFaultStreamParallelRandomTables is the pipeline's property
// test: for random tables — including rows whose repair panics
// (quarantine, via the injected similarity hook) and rows that
// exhaust a starved step budget — the parallel streaming output must
// be byte-identical to the serial streaming output, with identical
// accounting. Run under -race by the fault CI job, this also checks
// the pipeline stages for unsynchronized sharing.
func TestFaultStreamParallelRandomTables(t *testing.T) {
	const poison = "POISON-STREAM-13F"
	defer faultinject.PanicOnValue(poison)()

	nb := dataset.NewNobel(21, 120)
	inj := nb.Inject(dataset.Noise{Rate: 0.2, TypoFrac: 0.5, Seed: 21})

	budgets := []int{0, 2} // full repair, and a starved budget that degrades rows
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tb := randomStreamTable(rng, inj.Dirty, 200, poison)
		var in bytes.Buffer
		if err := tb.WriteCSV(&in); err != nil {
			t.Fatal(err)
		}
		input := in.String()

		for _, budget := range budgets {
			serial, err := repair.NewEngineWithOptions(nb.Rules, nb.Yago, nb.Schema,
				repair.Options{StepBudget: budget})
			if err != nil {
				t.Fatal(err)
			}
			var wantOut bytes.Buffer
			wantRes, err := serial.CleanCSVStreamContext(context.Background(),
				strings.NewReader(input), &wantOut, true)
			if err != nil {
				t.Fatalf("seed %d budget %d serial: %v", seed, budget, err)
			}

			for _, workers := range []int{2, 4, 8} {
				par, err := repair.NewEngineWithOptions(nb.Rules, nb.Yago, nb.Schema,
					repair.Options{StepBudget: budget, Workers: workers, ChunkSize: 1 + rng.Intn(40)})
				if err != nil {
					t.Fatal(err)
				}
				var gotOut bytes.Buffer
				gotRes, err := par.CleanCSVStreamContext(context.Background(),
					strings.NewReader(input), &gotOut, true)
				if err != nil {
					t.Fatalf("seed %d budget %d workers %d: %v", seed, budget, workers, err)
				}
				if gotOut.String() != wantOut.String() {
					gl := strings.Split(gotOut.String(), "\n")
					wl := strings.Split(wantOut.String(), "\n")
					for i := range wl {
						if i >= len(gl) || gl[i] != wl[i] {
							t.Fatalf("seed %d budget %d workers %d: line %d differs\n got %q\nwant %q",
								seed, budget, workers, i, gl[i], wl[i])
						}
					}
					t.Fatalf("seed %d budget %d workers %d: output differs", seed, budget, workers)
				}
				if gotRes.Rows != wantRes.Rows ||
					gotRes.Quarantined != wantRes.Quarantined ||
					gotRes.BudgetExhausted != wantRes.BudgetExhausted {
					t.Fatalf("seed %d budget %d workers %d: result %+v, serial %+v",
						seed, budget, workers, gotRes, wantRes)
				}
			}
			if budget == 0 && wantRes.Quarantined == 0 {
				t.Fatalf("seed %d: property never exercised quarantine (res %+v)", seed, wantRes)
			}
		}
	}
}
