package repair

import (
	"detective/internal/relation"
	"detective/internal/rules"
)

// MaxVersions bounds the number of repair versions tracked per tuple.
// Real rule sets are near-functional (§III-B), so this is defensive;
// when the bound is hit, further multi-version repairs keep only the
// most-similar candidate.
const MaxVersions = 64

// RepairVersions computes every fixpoint of applying the rule set to
// t, following the worklist procedure of §IV-C (Example 10): whenever
// a rule admits k repair versions, the current state forks into k
// branches that each continue with the remaining rules. The returned
// tuples are the distinct fixpoints; the first entry is the one
// BasicRepair/FastRepair would produce (most-similar repairs chosen).
func (e *Engine) RepairVersions(t *relation.Tuple) []*relation.Tuple {
	type state struct {
		t    *relation.Tuple
		used []bool
	}
	g := e.Cat.Graph() // pin: all branches explore one KB
	start := state{t: t.Clone(), used: make([]bool, len(e.fast))}
	work := []state{start}
	var finals []*relation.Tuple
	total := 1 // states in flight or finished

	for len(work) > 0 {
		s := work[0]
		work = work[1:]
		for {
			progress := false
			for i, m := range e.fast {
				if s.used[i] {
					continue
				}
				out := m.EvaluateOn(g, s.t)
				if !e.applicable(s.t, out) {
					continue
				}
				if out.Kind == rules.Repair && len(out.Repairs) > 1 {
					// Fork one branch per alternative version; the
					// current state continues with version 0.
					for v := 1; v < len(out.Repairs) && total < MaxVersions; v++ {
						branch := state{t: s.t.Clone(), used: append([]bool(nil), s.used...)}
						e.apply(branch.t, out, v, nil, false)
						branch.used[i] = true
						work = append(work, branch)
						total++
					}
				}
				e.apply(s.t, out, 0, nil, false)
				s.used[i] = true
				progress = true
				break
			}
			if !progress {
				break
			}
		}
		finals = append(finals, s.t)
	}
	return dedupeTuples(finals)
}

// dedupeTuples removes tuples identical in both values and marks,
// keeping first occurrences in order.
func dedupeTuples(ts []*relation.Tuple) []*relation.Tuple {
	var out []*relation.Tuple
	for _, t := range ts {
		dup := false
		for _, u := range out {
			if t.EqualMarked(u) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	return out
}
