package repair

import (
	"fmt"
	"sync/atomic"
)

// Stats is a snapshot of the engine's fault-tolerance counters. The
// engine accumulates them across its whole lifetime; table- and
// stream-level APIs additionally report per-call deltas so a server
// can attach them to one request.
type Stats struct {
	// Repaired counts tuples that completed a repair normally.
	Repaired int64 `json:"repaired"`
	// Quarantined counts tuples whose repair panicked; the original
	// row was emitted unchanged.
	Quarantined int64 `json:"quarantined"`
	// BudgetExhausted counts tuples whose repair exceeded the fixpoint
	// step budget; the original row was emitted unchanged.
	BudgetExhausted int64 `json:"budgetExhausted"`
}

// Add returns the field-wise sum of two snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Repaired:        s.Repaired + o.Repaired,
		Quarantined:     s.Quarantined + o.Quarantined,
		BudgetExhausted: s.BudgetExhausted + o.BudgetExhausted,
	}
}

// String renders the snapshot for logs.
func (s Stats) String() string {
	return fmt.Sprintf("repaired=%d quarantined=%d budget-exhausted=%d",
		s.Repaired, s.Quarantined, s.BudgetExhausted)
}

// statsCounters is the engine's live counter set, safe for concurrent
// workers.
type statsCounters struct {
	repaired        atomic.Int64
	quarantined     atomic.Int64
	budgetExhausted atomic.Int64
}

func (c *statsCounters) snapshot() Stats {
	return Stats{
		Repaired:        c.repaired.Load(),
		Quarantined:     c.quarantined.Load(),
		BudgetExhausted: c.budgetExhausted.Load(),
	}
}

// Stats returns a snapshot of the engine's lifetime counters.
func (e *Engine) Stats() Stats { return e.stats.snapshot() }

// countN tallies n identical outcomes at once. It is the streaming
// pipeline's per-chunk flush for dedup-served rows: folding a chunk's
// duplicates into one atomic add per counter keeps the workers'
// remaining cross-core traffic O(chunks) instead of O(rows).
func (e *Engine) countN(oc tupleOutcome, n int64) {
	if n <= 0 {
		return
	}
	e.instr.outcomes[oc].Add(n)
	switch oc {
	case tupleOK:
		e.stats.repaired.Add(n)
	case tupleBudgetExhausted:
		e.stats.budgetExhausted.Add(n)
	case tupleQuarantined:
		e.stats.quarantined.Add(n)
	}
}

// tupleOutcome classifies how one per-tuple repair ended.
type tupleOutcome uint8

const (
	tupleOK tupleOutcome = iota
	tupleBudgetExhausted
	tupleQuarantined
)

// count tallies the outcome into the engine's lifetime counters, the
// process-wide telemetry registry, and the per-call snapshot, when one
// is supplied.
func (e *Engine) count(oc tupleOutcome, call *Stats) {
	e.instr.outcomes[oc].Inc()
	switch oc {
	case tupleOK:
		e.stats.repaired.Add(1)
		if call != nil {
			call.Repaired++
		}
	case tupleBudgetExhausted:
		e.stats.budgetExhausted.Add(1)
		if call != nil {
			call.BudgetExhausted++
		}
	case tupleQuarantined:
		e.stats.quarantined.Add(1)
		if call != nil {
			call.Quarantined++
		}
	}
}
