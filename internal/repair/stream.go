package repair

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"detective/internal/kb"
	"detective/internal/relation"
)

// flushEvery is how many cleaned rows the streaming cleaner buffers
// before forcing the csv.Writer through to the sink. Keeping it small
// bounds both memory and the staleness of partial output: whatever was
// cleaned before a mid-stream failure has already been flushed.
const flushEvery = 64

// StreamResult is the per-call accounting of one streaming clean.
type StreamResult struct {
	// Rows is the number of rows written to the sink (cleaned,
	// quarantined and degraded rows alike).
	Rows int
	// Quarantined counts rows whose repair panicked and were emitted
	// unchanged.
	Quarantined int
	// BudgetExhausted counts rows that exceeded the fixpoint step
	// budget and were emitted unchanged.
	BudgetExhausted int
	// Deduped counts rows whose repair was answered from a cache
	// instead of being recomputed: the global cross-request memo when
	// it is enabled (serial and parallel paths alike, and across
	// chunks and calls), otherwise the parallel pipeline's in-chunk
	// duplicate cache (always 0 on the serial path). Each served row
	// is counted exactly once, and still counts in Rows and in the
	// outcome tallies above.
	Deduped int

	// Ensemble-mode confidence accounting (zero on single-engine
	// streams): ConfidenceSum is the sum of per-row confidences (mean
	// = ConfidenceSum/Rows), MinConfidence the minimum over all rows
	// (1 when no row was contested), and BelowThreshold the number of
	// rows whose confidence fell below the acceptance threshold —
	// rows carrying at least one detect-only degraded cell.
	ConfidenceSum  float64
	MinConfidence  float64
	BelowThreshold int
}

// CleanCSVStream cleans CSV row by row without materializing the
// table — the shape needed for inputs larger than memory (the paper's
// engine is embarrassingly per-tuple, §V-B). The first record must be
// a header matching the engine's schema. Marked cells get a "+"
// suffix when marked is true. It returns the number of rows cleaned.
func (e *Engine) CleanCSVStream(r io.Reader, w io.Writer, marked bool) (int, error) {
	res, err := e.CleanCSVStreamContext(context.Background(), r, w, marked)
	return res.Rows, err
}

// CleanCSVStreamContext is CleanCSVStream with cancellation, panic
// quarantine, and per-call accounting. Between rows it checks ctx and
// stops promptly when the context is done. Any mid-stream failure —
// cancellation, a CSV parse error, a read error, a sink write error —
// returns a *PartialError whose Done field equals Rows: every row
// cleaned before the failure has already been flushed to w. Header
// validation errors are returned plain (nothing was written). A row
// whose repair panics or exhausts the step budget is emitted
// unchanged and tallied, not treated as a failure.
//
// With Options.Workers > 1 the rows are repaired by the chunked
// parallel pipeline (see pipeline.go); the output bytes, the flush
// cadence and the error semantics are identical to the serial path.
func (e *Engine) CleanCSVStreamContext(ctx context.Context, r io.Reader, w io.Writer, marked bool) (StreamResult, error) {
	return e.cleanCSVStream(ctx, r, w, marked, false)
}

// CleanCSVStreamEnsemble is CleanCSVStreamEnsembleContext without
// cancellation.
func (e *Engine) CleanCSVStreamEnsemble(r io.Reader, w io.Writer, marked bool) (StreamResult, error) {
	return e.CleanCSVStreamEnsembleContext(context.Background(), r, w, marked)
}

// CleanCSVStreamEnsembleContext is the ensemble-mode streaming clean:
// every row is repaired by the weighted vote over the detective
// engine and the configured auxiliary proposers, and the output CSV
// carries one extra trailing "confidence" column holding the row's
// confidence (three decimals). Error and flush semantics match
// CleanCSVStreamContext. It errors when the engine was built without
// Options.Ensemble.Enabled.
func (e *Engine) CleanCSVStreamEnsembleContext(ctx context.Context, r io.Reader, w io.Writer, marked bool) (StreamResult, error) {
	if e.ens == nil {
		return StreamResult{}, fmt.Errorf("repair: ensemble mode not enabled on this engine")
	}
	return e.cleanCSVStream(ctx, r, w, marked, true)
}

func (e *Engine) cleanCSVStream(ctx context.Context, r io.Reader, w io.Writer, marked, ens bool) (StreamResult, error) {
	var res StreamResult
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return res, fmt.Errorf("repair: reading CSV header: %w", err)
	}
	if len(header) != e.Schema.Arity() {
		return res, fmt.Errorf("repair: CSV has %d columns, schema %q has %d",
			len(header), e.Schema.Name, e.Schema.Arity())
	}
	for i, a := range e.Schema.Attrs {
		if header[i] != a {
			return res, fmt.Errorf("repair: CSV column %d is %q, schema expects %q", i, header[i], a)
		}
	}

	cw := csv.NewWriter(w)
	outHeader := header
	if ens {
		outHeader = append(append([]string(nil), header...), "confidence")
	}
	if err := cw.Write(outHeader); err != nil {
		return res, err
	}
	// Steady-state cleaning reuses the reader's record buffer; the
	// serial path consumes each record before the next read, and the
	// parallel reader stage deep-copies rows before they cross the
	// chunk channel.
	cr.ReuseRecord = true
	if e.opts.Workers > 1 {
		return e.cleanStreamParallel(ctx, cr, cw, len(header), marked, ens)
	}
	return e.cleanStreamSerial(ctx, cr, cw, len(header), marked, ens)
}

// formatConf renders a row confidence for the CSV confidence column.
func formatConf(conf float64) string { return strconv.FormatFloat(conf, 'f', 3, 64) }

// cleanStreamSerial is the single-core streaming path: one record, one
// tuple, and the engine's pooled repair state are reused, so the only
// per-row allocations left are the rewritten cell values themselves.
func (e *Engine) cleanStreamSerial(ctx context.Context, cr *csv.Reader, cw *csv.Writer, arity int, marked, ens bool) (StreamResult, error) {
	var res StreamResult
	// partial wraps a mid-stream failure: everything written so far is
	// pushed through to the sink first, so the error's Done count is
	// also the number of rows the consumer actually received.
	partial := func(err error) (StreamResult, error) {
		cw.Flush()
		return res, &PartialError{Done: res.Rows, Err: err}
	}
	outArity := arity
	if ens {
		outArity++ // trailing confidence column
		res.MinConfidence = 1
	}
	out := make([]string, outArity)
	tup := &relation.Tuple{
		Values: make([]string, arity),
		Marked: make([]bool, arity),
	}
	for lineno := 2; ; lineno++ {
		if err := ctx.Err(); err != nil {
			return partial(err)
		}
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return partial(fmt.Errorf("repair: reading CSV: %w", err))
		}
		if len(rec) != arity {
			return partial(fmt.Errorf("repair: CSV line %d has %d fields, want %d", lineno, len(rec), arity))
		}
		// owned=false: with ReuseRecord the record's strings alias the
		// reader's buffer, so anything the memo retains is cloned.
		var oc tupleOutcome
		var hit bool
		if ens {
			var conf float64
			oc, conf, hit = e.repairRowEnsembleMemo(ctx, tup, rec, false)
			res.ConfidenceSum += conf
			if conf < res.MinConfidence {
				res.MinConfidence = conf
			}
			if conf < e.ens.threshold {
				res.BelowThreshold++
			}
			out[arity] = formatConf(conf)
		} else {
			oc, hit = e.repairRowMemo(tup, rec, false)
		}
		switch oc {
		case tupleQuarantined:
			res.Quarantined++
		case tupleBudgetExhausted:
			res.BudgetExhausted++
		}
		if hit {
			res.Deduped++
			e.instr.streamDeduped.Inc()
		}
		formatRow(out[:arity], tup, marked)
		if err := cw.Write(out); err != nil {
			return partial(err)
		}
		res.Rows++
		if res.Rows%flushEvery == 0 {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return partial(err)
			}
		}
	}
	cw.Flush()
	return res, cw.Error()
}

// formatRow renders a repaired tuple into dst, applying the "+" mark
// suffix when marked is set.
func formatRow(dst []string, tup *relation.Tuple, marked bool) {
	for i, v := range tup.Values {
		if marked && tup.Marked[i] {
			dst[i] = v + "+"
		} else {
			dst[i] = v
		}
	}
}

// repairRowSafeOn runs the in-place repair on the pinned graph g
// under a panic quarantine and tallies the outcome into the engine's
// lifetime counters. On a non-OK outcome tup is left in an undefined
// state; the caller restores the original record. probe marks this row
// as the breaker's half-open probe: its outcome resolves the breaker.
func (e *Engine) repairRowSafeOn(g *kb.Graph, tup *relation.Tuple, probe bool) (oc tupleOutcome) {
	st := e.getStateOn(g)
	st.brk = true
	st.probe = probe
	defer func() {
		if r := recover(); r != nil {
			oc = tupleQuarantined
			e.breakerObserve(st, oc)
		}
		e.count(oc, nil)
	}()
	if e.runFast(tup, st) {
		oc = tupleOK
	} else {
		oc = tupleBudgetExhausted
	}
	e.breakerObserve(st, oc)
	e.putState(st)
	return oc
}
