package repair

import (
	"encoding/csv"
	"fmt"
	"io"

	"detective/internal/relation"
)

// CleanCSVStream cleans CSV row by row without materializing the
// table — the shape needed for inputs larger than memory (the paper's
// engine is embarrassingly per-tuple, §V-B). The first record must be
// a header matching the engine's schema. Marked cells get a "+"
// suffix when marked is true. It returns the number of rows cleaned.
func (e *Engine) CleanCSVStream(r io.Reader, w io.Writer, marked bool) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("repair: reading CSV header: %w", err)
	}
	if len(header) != e.Schema.Arity() {
		return 0, fmt.Errorf("repair: CSV has %d columns, schema %q has %d",
			len(header), e.Schema.Name, e.Schema.Arity())
	}
	for i, a := range e.Schema.Attrs {
		if header[i] != a {
			return 0, fmt.Errorf("repair: CSV column %d is %q, schema expects %q", i, header[i], a)
		}
	}

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return 0, err
	}
	// Steady-state cleaning reuses one record, one tuple, and the
	// engine's pooled repair state: the only per-row allocations left
	// are the rewritten cell values themselves.
	cr.ReuseRecord = true
	rows := 0
	out := make([]string, len(header))
	tup := &relation.Tuple{
		Values: make([]string, len(header)),
		Marked: make([]bool, len(header)),
	}
	for lineno := 2; ; lineno++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, fmt.Errorf("repair: reading CSV: %w", err)
		}
		if len(rec) != len(header) {
			return rows, fmt.Errorf("repair: CSV line %d has %d fields, want %d", lineno, len(rec), len(header))
		}
		copy(tup.Values, rec)
		for i := range tup.Marked {
			tup.Marked[i] = false
		}
		e.repairInPlace(tup)
		for i, v := range tup.Values {
			if marked && tup.Marked[i] {
				out[i] = v + "+"
			} else {
				out[i] = v
			}
		}
		if err := cw.Write(out); err != nil {
			return rows, err
		}
		rows++
	}
	cw.Flush()
	return rows, cw.Error()
}
