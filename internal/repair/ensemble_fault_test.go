package repair_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/repair"
	"detective/internal/repair/ensemble"
	"detective/internal/telemetry"
)

// boomerProposer panics on any tuple containing the poison value and
// proposes nothing otherwise — the pure failure mode of an auxiliary
// ensemble engine.
type boomerProposer struct{ poison string }

func (boomerProposer) Name() string { return "boomer" }

func (b boomerProposer) Propose(ctx context.Context, values []string, marked []bool) []ensemble.Proposal {
	for _, v := range values {
		if v == b.poison {
			panic("boomer: poisoned tuple")
		}
	}
	return nil
}

// quarantineCounter returns the shared per-engine quarantine counter;
// the default registry spans the test binary, so assertions are
// delta-based.
func quarantineCounter(engine string) *telemetry.Counter {
	return telemetry.Default().Counter("detective_ensemble_quarantined_total", "",
		telemetry.Label{Name: "engine", Value: engine})
}

// A panicking auxiliary proposer must cost exactly its own vote on
// exactly the poisoned tuple: the row is still served, the detective
// leg still repairs it, and the quarantine is visible as a labelled
// counter increment — not as a request failure.
func TestFaultEnsembleProposerPanicQuarantined(t *testing.T) {
	ex := dataset.NewPaperExample()
	poison := "POISON-ENSEMBLE-4X"
	dirty := ex.Dirty.Clone()
	dirty.SetCell(2, "Name", poison)

	single, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := repair.NewEngineWithOptions(ex.Rules, ex.KB, ex.Schema, repair.Options{
		Ensemble: repair.EnsembleOptions{
			Enabled:   true,
			Proposers: []ensemble.Proposer{boomerProposer{poison: poison}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	quarC := quarantineCounter("boomer")
	base := quarC.Value()

	var in, out, want bytes.Buffer
	if err := dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	res, err := ens.CleanCSVStreamEnsembleContext(context.Background(), &in, &out, true)
	if err != nil {
		t.Fatalf("ensemble stream: %v", err)
	}
	if res.Rows != dirty.Len() {
		t.Fatalf("Rows = %d, want %d: a proposer panic must not drop the row", res.Rows, dirty.Len())
	}
	// The proposer quarantine is per-engine-per-tuple, not row-level
	// degradation: the detective leg completed, so the stream reports
	// zero quarantined rows.
	if res.Quarantined != 0 {
		t.Errorf("row-level Quarantined = %d, want 0", res.Quarantined)
	}
	if got := quarC.Value() - base; got != 1 {
		t.Errorf("boomer quarantine counter delta = %d, want 1", got)
	}

	// With its lone auxiliary silenced by the panic (and proposing
	// nothing elsewhere), the ensemble output is the single-engine
	// output plus the confidence column.
	in.Reset()
	if err := dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	if _, err := single.CleanCSVStreamContext(context.Background(), &in, &want, true); err != nil {
		t.Fatal(err)
	}
	if got := stripConfidence(t, out.String()); got != want.String() {
		t.Fatalf("output with quarantined proposer diverged from single engine\ngot:\n%s\nwant:\n%s",
			got, want.String())
	}
}

// An auxiliary engine that panics on every tuple degrades the
// ensemble to the detective engine alone — every row served, one
// quarantine per row.
func TestFaultEnsembleProposerAlwaysPanics(t *testing.T) {
	ex := dataset.NewPaperExample()
	always := alwaysPanicProposer{}
	ens, err := repair.NewEngineWithOptions(ex.Rules, ex.KB, ex.Schema, repair.Options{
		Ensemble: repair.EnsembleOptions{
			Enabled:   true,
			Proposers: []ensemble.Proposer{always},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	quarC := quarantineCounter("always-boom")
	base := quarC.Value()

	var in, out bytes.Buffer
	if err := ex.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	res, err := ens.CleanCSVStreamEnsembleContext(context.Background(), &in, &out, false)
	if err != nil {
		t.Fatalf("ensemble stream: %v", err)
	}
	if res.Rows != ex.Dirty.Len() {
		t.Fatalf("Rows = %d, want %d", res.Rows, ex.Dirty.Len())
	}
	if got := quarC.Value() - base; got != int64(ex.Dirty.Len()) {
		t.Errorf("quarantine counter delta = %d, want one per row (%d)", got, ex.Dirty.Len())
	}
	// The detective leg still cleans: the running example's r1 City
	// repair (Karcag -> Haifa) must appear.
	if !strings.Contains(out.String(), "Haifa") {
		t.Errorf("detective repairs missing from output:\n%s", out.String())
	}
}

type alwaysPanicProposer struct{}

func (alwaysPanicProposer) Name() string { return "always-boom" }

func (alwaysPanicProposer) Propose(context.Context, []string, []bool) []ensemble.Proposal {
	panic("always-boom")
}
