package repair_test

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// swapFixture builds two KBs that differ only in spelling — variant
// "A" repairs the city to "ParisA" and the country to "EuroA",
// variant "B" to "ParisB"/"EuroB" — so every repaired tuple reveals
// which graph it ran against. A tuple repaired half from one graph
// and half from the other ("ParisA"/"EuroB") would prove the per-tuple
// pinning broken.
func swapGraph(variant string) *kb.Graph {
	g := kb.New()
	g.AddType("Alice", "person")
	g.AddType("Paris"+variant, "city")
	g.AddType("Euro"+variant, "country")
	g.AddTriple("Alice", "livesIn", "Paris"+variant)
	g.AddTriple("Alice", "citizenOf", "Euro"+variant)
	return g
}

func swapRules() []*rules.DR {
	ed2 := similarity.Spec{Op: similarity.OpED, K: 2}
	return []*rules.DR{
		{
			Name:     "fix-city",
			Evidence: []rules.Node{{Name: "e", Col: "Name", Type: "person", Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: "City", Type: "city", Sim: ed2},
			Edges:    []rules.Edge{{From: "e", Rel: "livesIn", To: "p"}},
		},
		{
			Name:     "fix-country",
			Evidence: []rules.Node{{Name: "e", Col: "Name", Type: "person", Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: "Country", Type: "country", Sim: ed2},
			Edges:    []rules.Edge{{From: "e", Rel: "citizenOf", To: "p"}},
		},
	}
}

var swapSchema = relation.NewSchema("people", "Name", "City", "Country")

// checkUnmixed verifies a repaired tuple is entirely from one graph
// generation: both repaired cells carry the same variant suffix.
func checkUnmixed(t *testing.T, row int, city, country string) {
	t.Helper()
	if !strings.HasPrefix(city, "Paris") || !strings.HasPrefix(country, "Euro") {
		t.Fatalf("row %d: unexpected repair (%q, %q)", row, city, country)
	}
	if city[len("Paris"):] != country[len("Euro"):] {
		t.Errorf("row %d: mixed-generation repair: city %q but country %q", row, city, country)
	}
}

// TestHotSwapRepairTable runs RepairTableContext under a storm of KB
// swaps: no tuple may be dropped, and no tuple may mix pre- and
// post-swap graphs (acceptance test for the zero-downtime reload).
func TestHotSwapRepairTable(t *testing.T) {
	store := kb.NewStore(swapGraph("A"))
	e, err := repair.NewEngineStore(swapRules(), store, swapSchema, repair.Options{})
	if err != nil {
		t.Fatalf("NewEngineStore: %v", err)
	}

	const rows = 4000
	tb := relation.NewTable(swapSchema)
	for i := 0; i < rows; i++ {
		tb.Append("Alice", "ParisX", "EuroX")
	}

	// Swap A<->B continuously while the table repairs.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				store.Swap(swapGraph("B"))
			} else {
				store.Swap(swapGraph("A"))
			}
		}
	}()

	out, stats, err := e.RepairTableContext(context.Background(), tb, 8)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatalf("RepairTableContext: %v", err)
	}
	if stats.Repaired != rows {
		t.Errorf("Repaired = %d, want %d (quarantined %d, exhausted %d)",
			stats.Repaired, rows, stats.Quarantined, stats.BudgetExhausted)
	}
	sawA, sawB := false, false
	for i, tu := range out.Tuples {
		if tu == nil {
			t.Fatalf("row %d dropped", i)
		}
		checkUnmixed(t, i, tu.Values[1], tu.Values[2])
		switch tu.Values[1] {
		case "ParisA":
			sawA = true
		case "ParisB":
			sawB = true
		}
	}
	// With thousands of swaps across 4000 rows both graphs all but
	// certainly served some tuples; log rather than fail if not.
	if !sawA || !sawB {
		t.Logf("only one graph observed (sawA=%v sawB=%v); swap window may not have overlapped", sawA, sawB)
	}
	if store.Swaps() == 0 {
		t.Fatal("no swap happened during the run")
	}
}

// TestHotSwapStream drives the parallel streaming pipeline while the
// KB is being reloaded: row count must be exact and every row
// internally consistent.
func TestHotSwapStream(t *testing.T) {
	store := kb.NewStore(swapGraph("A"))
	e, err := repair.NewEngineStore(swapRules(), store, swapSchema, repair.Options{
		Workers: 8, ChunkSize: 16,
	})
	if err != nil {
		t.Fatalf("NewEngineStore: %v", err)
	}

	const rows = 3000
	var in bytes.Buffer
	in.WriteString("Name,City,Country\n")
	for i := 0; i < rows; i++ {
		in.WriteString("Alice,ParisX,EuroX\n")
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				store.Swap(swapGraph("B"))
			} else {
				store.Swap(swapGraph("A"))
			}
		}
	}()

	var out bytes.Buffer
	n, err := e.CleanCSVStream(&in, &out, false)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatalf("CleanCSVStream: %v", err)
	}
	if n != rows {
		t.Errorf("cleaned %d rows, want %d", n, rows)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != rows+1 {
		t.Fatalf("output has %d lines, want %d", len(lines), rows+1)
	}
	for i, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != 3 {
			t.Fatalf("row %d: malformed output %q", i, line)
		}
		checkUnmixed(t, i, f[1], f[2])
	}
}

// TestHotSwapInvalidatesCandidateCache pins down the cache-coherence
// half of the acceptance criteria: entries cached under the old graph
// must not be served after a swap (generation tags), observable as
// fresh misses in CacheStats.
func TestHotSwapInvalidatesCandidateCache(t *testing.T) {
	store := kb.NewStore(swapGraph("A"))
	// The repair memo would answer the second repair before it ever
	// reached the candidate cache; disable it to observe the cache.
	e, err := repair.NewEngineStore(swapRules(), store, swapSchema, repair.Options{MemoDisabled: true})
	if err != nil {
		t.Fatalf("NewEngineStore: %v", err)
	}
	tu := relation.NewTuple("Alice", "ParisX", "EuroX")

	// Two identical repairs: the second should be served by the cache.
	e.FastRepair(tu)
	h0, m0, _ := e.Cat.CacheStats()
	e.FastRepair(tu)
	h1, m1, _ := e.Cat.CacheStats()
	if h1 <= h0 {
		t.Fatalf("second repair produced no cache hits (hits %d -> %d)", h0, h1)
	}
	if m1 != m0 {
		t.Fatalf("second repair missed the cache (misses %d -> %d)", m0, m1)
	}

	// After a swap the same repair must behave exactly like the cold
	// first repair: every old-generation entry is dead, so the miss and
	// hit deltas match the cold-cache run (hits within the post-swap
	// repair itself — on entries it just cached under the new
	// generation — are fine and counted by h0 too).
	store.Swap(swapGraph("B"))
	got := e.FastRepair(tu)
	h2, m2, _ := e.Cat.CacheStats()
	if m2-m1 != m0 {
		t.Errorf("post-swap repair missed %d times, want %d (cold-cache behavior)", m2-m1, m0)
	}
	if h2-h1 != h0 {
		t.Errorf("post-swap repair hit %d times, want %d (cold-cache behavior)", h2-h1, h0)
	}
	if got.Values[1] != "ParisB" || got.Values[2] != "EuroB" {
		t.Errorf("post-swap repair = (%q, %q), want new graph's values", got.Values[1], got.Values[2])
	}
}

// TestHotSwapSerialStream exercises the serial (in-place) streaming
// path across a swap performed between rows.
func TestHotSwapSerialStream(t *testing.T) {
	store := kb.NewStore(swapGraph("A"))
	e, err := repair.NewEngineStore(swapRules(), store, swapSchema, repair.Options{})
	if err != nil {
		t.Fatalf("NewEngineStore: %v", err)
	}
	// swapReader flips the KB mid-stream: after the first row is
	// consumed, the remaining rows repair against graph B.
	rows := []string{
		"Name,City,Country",
		"Alice,ParisX,EuroX",
		"Alice,ParisX,EuroX",
	}
	var out bytes.Buffer
	in := &stepReader{
		chunks: []string{rows[0] + "\n" + rows[1] + "\n", rows[2] + "\n"},
		between: func() {
			store.Swap(swapGraph("B"))
		},
	}
	n, err := e.CleanCSVStream(in, &out, false)
	if err != nil {
		t.Fatalf("CleanCSVStream: %v", err)
	}
	if n != 2 {
		t.Fatalf("cleaned %d rows, want 2", n)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	want := []string{"Alice,ParisA,EuroA", "Alice,ParisB,EuroB"}
	for i, w := range want {
		if lines[i+1] != w {
			t.Errorf("row %d = %q, want %q", i, lines[i+1], w)
		}
	}
}

// stepReader yields its chunks one Read at a time, invoking between
// just before a new chunk (after the first) starts being read. On the
// serial streaming path the reader is only consulted once buffered
// rows are repaired and flushed, so between interleaves
// deterministically with row processing.
type stepReader struct {
	chunks  []string
	between func()
	i       int
	started bool
}

func (r *stepReader) Read(p []byte) (int, error) {
	if r.i >= len(r.chunks) {
		return 0, io.EOF
	}
	if !r.started {
		if r.i > 0 && r.between != nil {
			r.between()
		}
		r.started = true
	}
	c := r.chunks[r.i]
	n := copy(p, c)
	if n < len(c) {
		r.chunks[r.i] = c[n:]
	} else {
		r.i++
		r.started = false
	}
	return n, nil
}
