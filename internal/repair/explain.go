package repair

import (
	"fmt"
	"sort"
	"strings"

	"detective/internal/relation"
	"detective/internal/rules"
)

// Step records one rule application during a repair — the white-box
// provenance that rule-based cleaning offers over IC-based black
// boxes (the argument of the paper's introduction: "rule-based methods
// are white-boxes ... more interpretable about what happened").
type Step struct {
	// Rule is the name of the applied detective rule.
	Rule string
	// Kind is Positive (cells proven correct) or Repair.
	Kind rules.OutcomeKind
	// RepairCol/Old/New describe the rewrite (Repair steps only; Old
	// and New are empty for pure marking steps).
	RepairCol string
	Old, New  string
	// Alternatives lists the other repair versions the KB offered.
	Alternatives []string
	// MarkCols are the columns this step proved correct.
	MarkCols []string
	// Witness maps the rule's node names to the KB instances of the
	// instance-level matching graph behind the decision.
	Witness map[string]string
}

// String renders the step for humans.
func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule %s: ", s.Rule)
	if s.Kind == rules.Repair && s.RepairCol != "" {
		fmt.Fprintf(&b, "repaired %s %q -> %q", s.RepairCol, s.Old, s.New)
		if len(s.Alternatives) > 1 {
			fmt.Fprintf(&b, " (alternatives: %s)", strings.Join(s.Alternatives[1:], ", "))
		}
		b.WriteString("; ")
	}
	fmt.Fprintf(&b, "marked %s correct", strings.Join(s.MarkCols, ", "))
	if len(s.Witness) > 0 {
		keys := make([]string, 0, len(s.Witness))
		for k := range s.Witness {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%s", k, s.Witness[k])
		}
		fmt.Fprintf(&b, " [witness: %s]", strings.Join(parts, ", "))
	}
	return b.String()
}

// FastRepairExplain is FastRepair plus the ordered list of rule
// applications that produced the result.
func (e *Engine) FastRepairExplain(t *relation.Tuple) (*relation.Tuple, []Step) {
	cl := t.Clone()
	st := e.getState()
	steps := []Step{}
	st.steps = &steps
	ok := e.runFast(cl, st)
	e.putState(st)
	if !ok {
		// Step budget exhausted: keep the original values; the partial
		// step trace would describe a repair that was discarded.
		e.count(tupleBudgetExhausted, nil)
		return t.Clone(), nil
	}
	e.count(tupleOK, nil)
	return cl, steps
}

// FastRepairExplainSafe is FastRepairExplain under the per-tuple
// panic quarantine: a repair that panics yields the original tuple,
// no steps, and quarantined=true, tallied in Stats.Quarantined.
func (e *Engine) FastRepairExplainSafe(t *relation.Tuple) (out *relation.Tuple, steps []Step, quarantined bool) {
	defer func() {
		if r := recover(); r != nil {
			out, steps, quarantined = t.Clone(), nil, true
			e.count(tupleQuarantined, nil)
		}
	}()
	out, steps = e.FastRepairExplain(t)
	return out, steps, false
}

// recordStep captures the application of rule idx with outcome out,
// where old is the pre-application value of the repaired column.
func (e *Engine) recordStep(st *fastState, idx int, out rules.Outcome, old string) {
	if st.steps == nil {
		return
	}
	step := Step{
		Rule:     e.fast[idx].Rule.Name,
		Kind:     out.Kind,
		MarkCols: out.MarkCols,
		Witness:  out.Witness,
	}
	if out.Kind == rules.Repair {
		step.RepairCol = out.RepairCol
		step.Old = old
		step.New = out.Repairs[0]
		step.Alternatives = out.Repairs
	}
	*st.steps = append(*st.steps, step)
}
