package repair_test

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"strings"
	"testing"

	"detective/internal/repair"
	"detective/internal/repair/ensemble"
)

// chaosProposer is an adversarial auxiliary engine: it proposes a
// garbage rewrite for every cell at full confidence. Zero-weighted it
// must leave the vote untouched; the parity property below depends on
// that silencing being total.
type chaosProposer struct{}

func (chaosProposer) Name() string { return "chaos" }

func (chaosProposer) Propose(ctx context.Context, values []string, marked []bool) []ensemble.Proposal {
	out := make([]ensemble.Proposal, 0, len(values))
	for i, v := range values {
		out = append(out, ensemble.Proposal{Col: i, Value: "CHAOS-" + v, Conf: 1, KB: true})
	}
	return out
}

// detectiveOnlyWeights silences every engine except the detective.
var detectiveOnlyWeights = map[string]float64{
	"detective": 1,
	"katara":    0,
	"llunatic":  0,
	"cfd":       0,
	"chaos":     0,
}

// stripConfidence parses an ensemble-mode CSV, asserts the trailing
// confidence column is present and unanimous at 1.000 (a lone
// detective vote always wins outright), and returns the CSV re-encoded
// without it.
func stripConfidence(t *testing.T, raw string) string {
	t.Helper()
	cr := csv.NewReader(strings.NewReader(raw))
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		t.Fatalf("parsing ensemble output: %v", err)
	}
	if len(recs) == 0 || recs[0][len(recs[0])-1] != "confidence" {
		t.Fatalf("ensemble output lacks the confidence header column: %v", recs[0])
	}
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	for i, rec := range recs {
		if i > 0 {
			if conf := rec[len(rec)-1]; conf != "1.000" {
				t.Fatalf("row %d confidence = %s, want 1.000 under detective-only weights", i, conf)
			}
		}
		if err := cw.Write(rec[:len(rec)-1]); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	return buf.String()
}

// The parity property: ensemble mode with weights {detective: 1,
// everything else: 0} — including an adversarial proposer spraying
// garbage at weight 0 — must produce byte-identical output to the
// single-engine stream once the appended confidence column is
// stripped, on the serial and the parallel path alike. This pins the
// ensemble path to the engine's existing semantics: whatever the vote
// machinery does, a silenced ensemble IS the single engine.
func TestEnsembleParityDetectiveOnly(t *testing.T) {
	for _, tc := range streamCases(t) {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				single, err := repair.NewEngineWithOptions(tc.rules, tc.kb, tc.schema,
					repair.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				var want bytes.Buffer
				wantRes, err := single.CleanCSVStreamContext(context.Background(),
					strings.NewReader(tc.input), &want, true)
				if err != nil {
					t.Fatal(err)
				}

				ens, err := repair.NewEngineWithOptions(tc.rules, tc.kb, tc.schema,
					repair.Options{Workers: workers, Ensemble: repair.EnsembleOptions{
						Enabled:   true,
						Weights:   detectiveOnlyWeights,
						Proposers: []ensemble.Proposer{chaosProposer{}},
					}})
				if err != nil {
					t.Fatal(err)
				}
				var got bytes.Buffer
				gotRes, err := ens.CleanCSVStreamEnsembleContext(context.Background(),
					strings.NewReader(tc.input), &got, true)
				if err != nil {
					t.Fatal(err)
				}

				if gotRes.Rows != wantRes.Rows {
					t.Fatalf("rows: ensemble %d, single %d", gotRes.Rows, wantRes.Rows)
				}
				if gotRes.BelowThreshold != 0 {
					t.Fatalf("BelowThreshold = %d, want 0: a lone full-weight detective never degrades",
						gotRes.BelowThreshold)
				}
				stripped := stripConfidence(t, got.String())
				if stripped != want.String() {
					t.Fatalf("ensemble output diverged from single-engine output\nensemble:\n%s\nsingle:\n%s",
						stripped, want.String())
				}
			})
		}
	}
}
