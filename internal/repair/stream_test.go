package repair_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/repair"
)

func streamEngine(t *testing.T) (*dataset.PaperExample, *repair.Engine) {
	t.Helper()
	ex := dataset.NewPaperExample()
	e, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return ex, e
}

// failWriter errors on every write, standing in for a closed pipe or
// a full disk on the output side of the stream.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink failed") }

// errReader yields some good CSV and then a read error, standing in
// for a network stream that dies mid-transfer.
type errReader struct {
	data []byte
	err  error
	pos  int
}

func (r *errReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

func TestCleanCSVStreamShortRecord(t *testing.T) {
	_, e := streamEngine(t)
	in := "Name,DOB,Country,Prize,Institution,City\n" +
		"Avram Hershko,1937-12-31,Hungary,Chemistry 2004,Technion,Haifa\n" +
		"only,three,fields\n"
	var out bytes.Buffer
	n, err := e.CleanCSVStream(strings.NewReader(in), &out, false)
	if err == nil {
		t.Fatal("want error for short record")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %q does not name the offending line", err)
	}
	if n != 1 {
		t.Errorf("rows cleaned before failure = %d, want 1", n)
	}
}

func TestCleanCSVStreamLongRecord(t *testing.T) {
	_, e := streamEngine(t)
	in := "Name,DOB,Country,Prize,Institution,City\n" +
		"a,b,c,d,e,f,EXTRA\n"
	var out bytes.Buffer
	if _, err := e.CleanCSVStream(strings.NewReader(in), &out, false); err == nil {
		t.Fatal("want error for over-long record")
	}
}

func TestCleanCSVStreamBadHeader(t *testing.T) {
	_, e := streamEngine(t)
	cases := map[string]string{
		"empty input":    "",
		"wrong arity":    "A,B\n1,2\n",
		"wrong names":    "X,DOB,Country,Prize,Institution,City\na,b,c,d,e,f\n",
		"shuffled order": "DOB,Name,Country,Prize,Institution,City\na,b,c,d,e,f\n",
	}
	for name, in := range cases {
		var out bytes.Buffer
		n, err := e.CleanCSVStream(strings.NewReader(in), &out, false)
		if err == nil {
			t.Errorf("%s: want error", name)
		}
		if n != 0 {
			t.Errorf("%s: rows = %d, want 0", name, n)
		}
		if out.Len() != 0 {
			t.Errorf("%s: wrote %d bytes despite header rejection", name, out.Len())
		}
	}
}

func TestCleanCSVStreamWriterError(t *testing.T) {
	ex, e := streamEngine(t)
	var in bytes.Buffer
	if err := ex.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CleanCSVStream(&in, failWriter{}, true); err == nil {
		t.Fatal("want error from failing writer")
	}
}

func TestCleanCSVStreamReaderError(t *testing.T) {
	_, e := streamEngine(t)
	r := &errReader{
		data: []byte("Name,DOB,Country,Prize,Institution,City\n" +
			"Avram Hershko,1937-12-31,Hungary,Chemistry 2004,Technion,Haifa\n"),
		err: errors.New("stream died"),
	}
	var out bytes.Buffer
	n, err := e.CleanCSVStream(r, &out, false)
	if err == nil {
		t.Fatal("want error from failing reader")
	}
	if n != 1 {
		t.Errorf("rows cleaned before failure = %d, want 1", n)
	}
}

// TestCleanCSVStreamMatchesFastRepair pins the in-place streaming path
// to the reference per-tuple API: every streamed row must equal
// FastRepair of the same record, marks included.
func TestCleanCSVStreamMatchesFastRepair(t *testing.T) {
	ex, e := streamEngine(t)
	var in bytes.Buffer
	if err := ex.Dirty.WriteCSV(&in); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := e.CleanCSVStream(&in, &out, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != ex.Dirty.Len() {
		t.Fatalf("rows = %d, want %d", n, ex.Dirty.Len())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != n+1 {
		t.Fatalf("output has %d lines, want %d", len(lines), n+1)
	}
	for i, tu := range ex.Dirty.Tuples {
		want := e.FastRepair(tu)
		cells := strings.Split(lines[i+1], ",")
		for j, v := range want.Values {
			expect := v
			if want.Marked[j] {
				expect += "+"
			}
			if cells[j] != expect {
				t.Errorf("row %d col %d: %q, want %q", i, j, cells[j], expect)
			}
		}
	}
}
