// The chunked, order-preserving parallel pipeline behind the
// streaming cleaner (Options.Workers > 1).
//
// Three stages connected by bounded channels:
//
//	reader ──chunks──▶ workers(×N) ──done──▶ reassembly
//
// The reader batches CSV rows into fixed-size chunks, deep-copying
// each record out of the csv.Reader's reused buffers; workers run the
// in-place fast repair (pooled fastState, shared candidate cache)
// over whole chunks as a read-through of the global cross-request
// memo (falling back to in-chunk-only deduplication when the memo is
// disabled); the reassembly stage — the calling goroutine — writes
// chunks back in input order.
//
// Memory is bounded to O(workers · chunk): the reader must acquire an
// in-flight token before emitting a chunk and the reassembly stage
// releases it only after the chunk is written, so at most maxInflight
// chunks exist between the two at any moment, however skewed the
// per-chunk repair times are. Because the done channel's capacity
// equals that in-flight bound, workers never block on it, which keeps
// the pipeline deadlock-free even when reassembly is stalled waiting
// for the lowest outstanding sequence number.
//
// Per-tuple repair is independent of every other tuple (§V-B), so
// repairing chunks out of order and reassembling by sequence number
// yields output byte-identical to the serial path — same rows, same
// order, same flush cadence, same PartialError semantics.
package repair

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"detective/internal/relation"
)

// DefaultStreamChunkSize is the pipeline's default rows-per-chunk. It
// is large enough to amortize the three channel operations a chunk
// costs and to give the in-chunk dedup a useful window over the
// bursty duplicate runs of real dirty data, while keeping
// worst-case buffered memory (maxInflight chunks) small.
const DefaultStreamChunkSize = 256

// rowChunk is one unit of pipeline work: a batch of deep-copied input
// rows, and after a worker has processed it, the formatted output
// rows plus the outcome tallies for the batch.
type rowChunk struct {
	seq  int        // position in the input stream, 0-based
	rows [][]string // deep-copied input records
	out  [][]string // formatted output rows (worker-filled)

	quarantined int
	budget      int
	deduped     int
}

// cleanStreamParallel drives the pipeline over an already-validated
// CSV stream. The header has been written to cw and cr has
// ReuseRecord set; arity is the schema arity.
func (e *Engine) cleanStreamParallel(ctx context.Context, cr *csv.Reader, cw *csv.Writer, arity int, marked bool) (StreamResult, error) {
	var res StreamResult
	workers := e.opts.Workers
	chunkSize := e.opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultStreamChunkSize
	}
	// Enough slack that a straggler chunk does not idle the other
	// workers, but small enough that buffered rows stay O(workers·chunk).
	maxInflight := 2*workers + 2

	// pctx cancels the producer side when reassembly hits a write
	// error; user cancellation flows through it too.
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chunks := make(chan *rowChunk, workers)    // reader -> workers
	done := make(chan *rowChunk, maxInflight)  // workers -> reassembly; never blocks (cap = in-flight bound)
	tokens := make(chan struct{}, maxInflight) // in-flight chunk budget
	var readErr error                          // reader's terminal error; published by close(chunks)

	// --- reader stage -------------------------------------------------
	go func() {
		defer close(chunks)
		seq := 0
		cur := &rowChunk{seq: seq, rows: make([][]string, 0, chunkSize)}
		send := func(c *rowChunk) bool {
			select {
			case tokens <- struct{}{}:
			case <-pctx.Done():
				return false
			}
			select {
			case chunks <- c:
				return true
			case <-pctx.Done():
				return false
			}
		}
		for lineno := 2; ; lineno++ {
			if pctx.Err() != nil {
				// User cancellation is reported by reassembly (it
				// re-checks ctx); a write-error cancel keeps the write
				// error. Either way the reader just stops producing.
				break
			}
			rec, err := cr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = fmt.Errorf("repair: reading CSV: %w", err)
				break
			}
			if len(rec) != arity {
				readErr = fmt.Errorf("repair: CSV line %d has %d fields, want %d", lineno, len(rec), arity)
				break
			}
			// Deep copy before the row crosses the chunk channel:
			// with ReuseRecord both the record slice and the string
			// bytes alias the reader's internal buffer, which the next
			// Read overwrites.
			row := make([]string, arity)
			for i, v := range rec {
				row[i] = strings.Clone(v)
			}
			cur.rows = append(cur.rows, row)
			if len(cur.rows) == chunkSize {
				if !send(cur) {
					return
				}
				seq++
				cur = &rowChunk{seq: seq, rows: make([][]string, 0, chunkSize)}
			}
		}
		// Rows read before a mid-stream failure still get cleaned and
		// flushed, exactly like the serial path.
		if len(cur.rows) > 0 {
			send(cur)
		}
	}()

	// --- worker stage -------------------------------------------------
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range chunks {
				e.repairChunk(c, marked)
				done <- c
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// --- reassembly stage (calling goroutine) -------------------------
	partial := func(err error) (StreamResult, error) {
		cw.Flush()
		return res, &PartialError{Done: res.Rows, Err: err}
	}
	writeChunk := func(c *rowChunk) error {
		for _, row := range c.out {
			if err := cw.Write(row); err != nil {
				return err
			}
			res.Rows++
			if res.Rows%flushEvery == 0 {
				cw.Flush()
				if err := cw.Error(); err != nil {
					return err
				}
			}
		}
		res.Quarantined += c.quarantined
		res.BudgetExhausted += c.budget
		res.Deduped += c.deduped
		return nil
	}
	next := 0
	pending := make(map[int]*rowChunk, maxInflight)
	var werr error
	for c := range done {
		pending[c.seq] = c
		for werr == nil {
			nc, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if err := writeChunk(nc); err != nil {
				werr = err
				// Stop the reader; in-flight chunks drain into the
				// buffered done channel without blocking anyone.
				cancel()
				break
			}
			<-tokens
		}
		if werr != nil {
			break
		}
	}
	if werr != nil {
		return partial(werr)
	}
	if readErr != nil {
		// close(chunks) happened after readErr was set and the workers
		// finished every chunk before done closed, so the read is safe
		// and every row before the failure has been written.
		return partial(readErr)
	}
	if err := ctx.Err(); err != nil {
		return partial(err)
	}
	cw.Flush()
	return res, cw.Error()
}

// repairChunk repairs every row of c in place of the worker's pooled
// state and renders the formatted output rows. Repair is a pure
// function of the row's values (the engine is read-only and
// deterministic), so a cached outcome stands in for a fresh repair:
// with the global memo enabled each row is a read-through of the
// cross-request cache, deduplicating identical rows across chunks,
// calls, and connections, and counting each memo-served row exactly
// once in c.deduped and the stream-dedup telemetry. With the memo
// disabled, the pre-memo in-chunk duplicate map stands in, limited to
// one chunk. Outcome tallies count every row, duplicates included, so
// the stream's accounting matches the serial path.
func (e *Engine) repairChunk(c *rowChunk, marked bool) {
	arity := 0
	if len(c.rows) > 0 {
		arity = len(c.rows[0])
	}
	tup := &relation.Tuple{
		Values: make([]string, arity),
		Marked: make([]bool, arity),
	}
	c.out = make([][]string, len(c.rows))
	if e.memo != nil {
		for i, rec := range c.rows {
			// owned=true: the reader stage deep-copied the row, so the
			// memo may retain its strings as-is.
			oc, hit := e.repairRowMemo(tup, rec, true)
			out := make([]string, arity)
			formatRow(out, tup, marked)
			c.out[i] = out
			tallyChunkOutcome(c, oc)
			if hit {
				c.deduped++
				e.instr.streamDeduped.Inc()
			}
		}
		e.instr.streamChunks.Inc()
		return
	}

	type dedupEntry struct {
		out []string
		oc  tupleOutcome
	}
	var dedup map[string]dedupEntry
	if len(c.rows) > 1 {
		dedup = make(map[string]dedupEntry, len(c.rows))
	}
	var key strings.Builder
	for i, rec := range c.rows {
		var k string
		if dedup != nil {
			// Length-prefixed fingerprint: unambiguous for any cell
			// bytes, cheaper than hashing each field separately.
			key.Reset()
			for _, v := range rec {
				key.WriteString(strconv.Itoa(len(v)))
				key.WriteByte(':')
				key.WriteString(v)
			}
			k = key.String()
			if ent, ok := dedup[k]; ok {
				c.out[i] = ent.out
				tallyChunkOutcome(c, ent.oc)
				c.deduped++
				// Duplicates still count as processed tuples in the
				// engine's lifetime and telemetry counters.
				e.count(ent.oc, nil)
				e.instr.streamDeduped.Inc()
				continue
			}
		}
		copy(tup.Values, rec)
		for j := range tup.Marked {
			tup.Marked[j] = false
		}
		oc := e.repairRowSafeOn(e.Cat.Graph(), tup)
		if oc != tupleOK {
			// Keep-original-value, as on the serial path.
			copy(tup.Values, rec)
			for j := range tup.Marked {
				tup.Marked[j] = false
			}
		}
		out := make([]string, arity)
		formatRow(out, tup, marked)
		c.out[i] = out
		tallyChunkOutcome(c, oc)
		if dedup != nil {
			dedup[k] = dedupEntry{out: out, oc: oc}
		}
	}
	e.instr.streamChunks.Inc()
}

func tallyChunkOutcome(c *rowChunk, oc tupleOutcome) {
	switch oc {
	case tupleQuarantined:
		c.quarantined++
	case tupleBudgetExhausted:
		c.budget++
	}
}
