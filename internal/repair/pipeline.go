// The chunked, order-preserving parallel pipeline behind the
// streaming cleaner (Options.Workers > 1).
//
// Three stages connected by bounded channels:
//
//	reader ──chunks──▶ workers(×N) ──done──▶ reassembly
//
// The reader batches CSV rows into fixed-size chunks, copying each
// record out of the csv.Reader's reused slice; workers run the
// in-place fast repair (pooled fastState, shared candidate cache)
// over whole chunks as a read-through of the global cross-request
// memo (falling back to in-chunk-only deduplication when the memo is
// disabled); the reassembly stage — the calling goroutine — writes
// chunks back in input order and recycles each chunk, with its input
// and output arenas, through a pool. Once the pool is warm the
// pipeline does no per-row allocation of its own, so a memo-served
// row costs roughly its ~0.2µs cache hit rather than a dozen output
// allocations.
//
// Memory is bounded to O(workers · chunk): the reader must acquire an
// in-flight token before emitting a chunk and the reassembly stage
// releases it only after the chunk is written, so at most maxInflight
// chunks exist between the two at any moment, however skewed the
// per-chunk repair times are. Because the done channel's capacity
// equals that in-flight bound, workers never block on it, which keeps
// the pipeline deadlock-free even when reassembly is stalled waiting
// for the lowest outstanding sequence number.
//
// Per-tuple repair is independent of every other tuple (§V-B), so
// repairing chunks out of order and reassembling by sequence number
// yields output byte-identical to the serial path — same rows, same
// order, same flush cadence, same PartialError semantics.
package repair

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sync"

	"detective/internal/relation"
)

// DefaultStreamChunkSize is the pipeline's default rows-per-chunk. It
// is large enough to amortize the three channel operations a chunk
// costs and to give the in-chunk dedup a useful window over the
// bursty duplicate runs of real dirty data, while keeping
// worst-case buffered memory (maxInflight chunks) small.
const DefaultStreamChunkSize = 256

// rowChunk is one unit of pipeline work: a batch of copied input
// rows, and after a worker has processed it, the formatted output
// rows plus the outcome tallies for the batch.
//
// Chunks are recycled through rowChunkPool: rows and out are
// fixed-stride views into the flat rowBuf/outBuf arenas, so a full
// reader→worker→reassembly trip costs zero per-row allocations once
// the pool is warm — the difference between the memoized 8-worker
// pipeline beating or losing to memoized serial on skewed corpora,
// where the repair itself is a ~0.2µs memo hit and the per-row output
// record used to dominate.
type rowChunk struct {
	seq  int        // position in the input stream, 0-based
	rows [][]string // copied input records (arena-backed)
	out  [][]string // formatted output rows (worker-filled, arena-backed)

	rowBuf []string // flat arena behind rows
	outBuf []string // flat arena behind out

	quarantined int
	budget      int
	deduped     int

	// Ensemble-mode per-chunk confidence aggregates (zero otherwise).
	confSum float64
	confMin float64
	below   int
}

var rowChunkPool = sync.Pool{New: func() any { return new(rowChunk) }}

// getRowChunk returns a recycled chunk sized for chunkSize rows of
// arity cells, with tallies zeroed and row headers reset. Stale string
// headers from the previous use stay in the arenas until overwritten;
// they pin at most one chunk's worth of cells per pooled object.
func getRowChunk(seq, chunkSize, arity int) *rowChunk {
	c := rowChunkPool.Get().(*rowChunk)
	c.seq = seq
	c.quarantined, c.budget, c.deduped = 0, 0, 0
	c.confSum, c.confMin, c.below = 0, 1, 0
	if n := chunkSize * arity; cap(c.rowBuf) < n {
		c.rowBuf = make([]string, n)
	}
	if cap(c.rows) < chunkSize {
		c.rows = make([][]string, 0, chunkSize)
	}
	c.rows = c.rows[:0]
	c.out = c.out[:0]
	return c
}

// appendRow copies rec into the chunk's next arena slot. Only the
// string headers are copied: the csv.Reader's ReuseRecord recycles the
// record slice, but the field strings themselves are freshly built per
// record (one batched allocation in encoding/csv), so a header copy is
// a complete deep copy.
func (c *rowChunk) appendRow(rec []string) {
	arity := len(rec)
	n := len(c.rows) * arity
	row := c.rowBuf[n : n+arity : n+arity]
	copy(row, rec)
	c.rows = append(c.rows, row)
}

// cleanStreamParallel drives the pipeline over an already-validated
// CSV stream. The header has been written to cw and cr has
// ReuseRecord set; arity is the schema arity.
func (e *Engine) cleanStreamParallel(ctx context.Context, cr *csv.Reader, cw *csv.Writer, arity int, marked, ens bool) (StreamResult, error) {
	var res StreamResult
	if ens {
		res.MinConfidence = 1
	}
	workers := e.opts.Workers
	chunkSize := e.opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = DefaultStreamChunkSize
	}
	// Enough slack that a straggler chunk does not idle the other
	// workers, but small enough that buffered rows stay O(workers·chunk).
	maxInflight := 2*workers + 2

	// pctx cancels the producer side when reassembly hits a write
	// error; user cancellation flows through it too.
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chunks := make(chan *rowChunk, workers)    // reader -> workers
	done := make(chan *rowChunk, maxInflight)  // workers -> reassembly; never blocks (cap = in-flight bound)
	tokens := make(chan struct{}, maxInflight) // in-flight chunk budget
	var readErr error                          // reader's terminal error; published by close(chunks)

	// --- reader stage -------------------------------------------------
	go func() {
		defer close(chunks)
		seq := 0
		cur := getRowChunk(seq, chunkSize, arity)
		send := func(c *rowChunk) bool {
			select {
			case tokens <- struct{}{}:
			case <-pctx.Done():
				return false
			}
			select {
			case chunks <- c:
				return true
			case <-pctx.Done():
				return false
			}
		}
		for lineno := 2; ; lineno++ {
			if pctx.Err() != nil {
				// User cancellation is reported by reassembly (it
				// re-checks ctx); a write-error cancel keeps the write
				// error. Either way the reader just stops producing.
				break
			}
			rec, err := cr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = fmt.Errorf("repair: reading CSV: %w", err)
				break
			}
			if len(rec) != arity {
				readErr = fmt.Errorf("repair: CSV line %d has %d fields, want %d", lineno, len(rec), arity)
				break
			}
			// Copy before the row crosses the chunk channel: with
			// ReuseRecord the record slice aliases the reader's
			// internal buffer, which the next Read overwrites (the
			// field strings are fresh; see appendRow).
			cur.appendRow(rec)
			if len(cur.rows) == chunkSize {
				if !send(cur) {
					return
				}
				seq++
				cur = getRowChunk(seq, chunkSize, arity)
			}
		}
		// Rows read before a mid-stream failure still get cleaned and
		// flushed, exactly like the serial path.
		if len(cur.rows) > 0 {
			send(cur)
		} else {
			rowChunkPool.Put(cur)
		}
	}()

	// --- worker stage -------------------------------------------------
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range chunks {
				e.repairChunk(pctx, c, marked, ens)
				done <- c
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	// --- reassembly stage (calling goroutine) -------------------------
	partial := func(err error) (StreamResult, error) {
		cw.Flush()
		return res, &PartialError{Done: res.Rows, Err: err}
	}
	writeChunk := func(c *rowChunk) error {
		for _, row := range c.out {
			if err := cw.Write(row); err != nil {
				return err
			}
			res.Rows++
			if res.Rows%flushEvery == 0 {
				cw.Flush()
				if err := cw.Error(); err != nil {
					return err
				}
			}
		}
		res.Quarantined += c.quarantined
		res.BudgetExhausted += c.budget
		res.Deduped += c.deduped
		if ens {
			res.ConfidenceSum += c.confSum
			if c.confMin < res.MinConfidence {
				res.MinConfidence = c.confMin
			}
			res.BelowThreshold += c.below
		}
		return nil
	}
	next := 0
	pending := make(map[int]*rowChunk, maxInflight)
	var werr error
	for c := range done {
		pending[c.seq] = c
		for werr == nil {
			nc, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if err := writeChunk(nc); err != nil {
				werr = err
				// Stop the reader; in-flight chunks drain into the
				// buffered done channel without blocking anyone.
				cancel()
				break
			}
			// The csv.Writer has copied every cell into its own
			// buffer, so the chunk and its arenas can be recycled.
			rowChunkPool.Put(nc)
			<-tokens
		}
		if werr != nil {
			break
		}
	}
	if werr != nil {
		return partial(werr)
	}
	if readErr != nil {
		// close(chunks) happened after readErr was set and the workers
		// finished every chunk before done closed, so the read is safe
		// and every row before the failure has been written.
		return partial(readErr)
	}
	if err := ctx.Err(); err != nil {
		return partial(err)
	}
	cw.Flush()
	return res, cw.Error()
}

// repairChunk repairs every row of c in place of the worker's pooled
// state and renders the formatted output rows. Repair is a pure
// function of the row's values (the engine is read-only and
// deterministic), so a cached outcome stands in for a fresh repair:
// with the global memo enabled each row is a read-through of the
// cross-request cache, deduplicating identical rows across chunks,
// calls, and connections, and counting each memo-served row exactly
// once in c.deduped and the stream-dedup telemetry. With the memo
// disabled, the pre-memo in-chunk duplicate map stands in, limited to
// one chunk. Outcome tallies count every row, duplicates included, so
// the stream's accounting matches the serial path.
func (e *Engine) repairChunk(ctx context.Context, c *rowChunk, marked, ens bool) {
	arity := 0
	if len(c.rows) > 0 {
		arity = len(c.rows[0])
	}
	tup := &relation.Tuple{
		Values: make([]string, arity),
		Marked: make([]bool, arity),
	}
	// Output rows are fixed-stride views into the chunk's recycled
	// arena; nextOut never allocates once the chunk has been through
	// the pool at this (chunkSize, arity) shape. Ensemble mode widens
	// the stride by one for the trailing confidence column.
	outArity := arity
	if ens {
		outArity++
	}
	if n := len(c.rows) * outArity; cap(c.outBuf) < n {
		c.outBuf = make([]string, n)
	}
	nextOut := func() []string {
		n := len(c.out) * outArity
		out := c.outBuf[n : n+outArity : n+outArity]
		c.out = append(c.out, out)
		return out
	}
	// In-chunk dedup sits in front of repairRowMemo on both the
	// memo-enabled and memo-disabled paths. With the memo on it is a
	// contention shield, not a correctness feature: skewed corpora
	// repeat the same hot row many times per chunk, and N workers
	// re-fetching one memo entry serialize on its shard — the
	// chunk-local map serves repeats with zero shared state while the
	// memo still deduplicates across chunks, calls, and connections.
	// With the memo off it is the only dedup there is. Either way,
	// duplicates are skipped while the circuit breaker is engaged, so
	// detect-only degradation and half-open probes see every row
	// exactly like the serial path.
	type dedupEntry struct {
		rec  []string // arena-backed input row, for collision checks
		out  []string
		oc   tupleOutcome
		conf float64
	}
	var dedup map[uint64]dedupEntry
	if len(c.rows) > 1 {
		dedup = make(map[uint64]dedupEntry, len(c.rows))
	}
	// Dedup-served rows touch no shared state in the loop: their
	// outcome counters accumulate here and flush once per chunk, so on
	// a skewed corpus the workers' only per-row cross-core traffic is
	// the occasional distinct row that actually reaches the memo.
	var dupOutcomes [3]int64
	for _, rec := range c.rows {
		var fp uint64
		cached := false
		if dedup != nil && !e.breakerEngaged() {
			// Keyed by the same alloc-free hash the memo uses; the
			// stored input row guards against a 64-bit collision.
			fp = chunkRowFP(rec)
			cached = true
			if ent, ok := dedup[fp]; ok && equalRow(ent.rec, rec) {
				// Copy the cached row into this row's own arena slot
				// (header copies only) rather than aliasing it: every
				// out row stays a distinct arena view, which is what
				// makes recycling the chunk safe.
				copy(nextOut(), ent.out)
				tallyChunkOutcome(c, ent.oc)
				if ens {
					tallyChunkConf(c, ent.conf, e.ens.threshold)
				}
				c.deduped++
				// Duplicates still count as processed tuples in the
				// engine's lifetime and telemetry counters — batched
				// into the per-chunk flush below.
				dupOutcomes[ent.oc]++
				continue
			}
		}
		// repairRowMemo fronts the repair with the row recorder, the
		// circuit breaker, and (when enabled) the global memo, with
		// keep-original-value degradation as on the serial path.
		// owned=true: the reader stage copied the row out of the
		// csv.Reader's buffers, so the memo may retain its strings.
		var oc tupleOutcome
		var hit bool
		conf := 1.0
		if ens {
			oc, conf, hit = e.repairRowEnsembleMemo(ctx, tup, rec, true)
			tallyChunkConf(c, conf, e.ens.threshold)
		} else {
			oc, hit = e.repairRowMemo(tup, rec, true)
		}
		out := nextOut()
		formatRow(out[:arity], tup, marked)
		if ens {
			out[arity] = formatConf(conf)
		}
		tallyChunkOutcome(c, oc)
		if hit {
			c.deduped++
		}
		if cached {
			dedup[fp] = dedupEntry{rec: rec, out: out, oc: oc, conf: conf}
		}
	}
	for oc, n := range dupOutcomes {
		e.countN(tupleOutcome(oc), n)
	}
	if c.deduped > 0 {
		e.instr.streamDeduped.Add(int64(c.deduped))
	}
	e.instr.streamChunks.Inc()
}

// chunkRowFP hashes one input row for the in-chunk dedup map with the
// memo's alloc-free mixer (unseeded: the chunk map never outlives one
// chunk of one schema, so the memo's schema seed adds nothing).
func chunkRowFP(rec []string) uint64 {
	var h uint64
	for _, v := range rec {
		h = fpString(h, v)
	}
	return fpFinish(h)
}

func tallyChunkConf(c *rowChunk, conf, threshold float64) {
	c.confSum += conf
	if conf < c.confMin {
		c.confMin = conf
	}
	if conf < threshold {
		c.below++
	}
}

func tallyChunkOutcome(c *rowChunk, oc tupleOutcome) {
	switch oc {
	case tupleQuarantined:
		c.quarantined++
	case tupleBudgetExhausted:
		c.budget++
	}
}
