package repair_test

import (
	"testing"

	"detective/internal/dataset"
	"detective/internal/repair"
)

// ablationVariants enumerates the §IV-B optimization switches.
var ablationVariants = []struct {
	name string
	opts repair.Options
}{
	{"full", repair.Options{}},
	{"no-rule-order", repair.Options{NoRuleOrder: true}},
	{"no-shared-checks", repair.Options{NoSharedChecks: true}},
	{"no-indexes", repair.Options{NoIndexes: true}},
	{"all-off", repair.Options{NoRuleOrder: true, NoSharedChecks: true, NoIndexes: true}},
}

// TestAblationsAgree: every ablation variant must compute the exact
// same repairs — the optimizations change cost, never results.
func TestAblationsAgree(t *testing.T) {
	ex := dataset.NewPaperExample()
	full, err := repair.NewEngine(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ablationVariants {
		e, err := repair.NewEngineWithOptions(ex.Rules, ex.KB, ex.Schema, v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		for i, tu := range ex.Dirty.Tuples {
			want := full.FastRepair(tu)
			got := e.FastRepair(tu)
			if !want.EqualMarked(got) {
				t.Errorf("%s: tuple %d: %v, want %v", v.name, i, got, want)
			}
		}
	}
}

func TestAblationsAgreeOnNobelSample(t *testing.T) {
	b := dataset.NewNobel(17, 120)
	inj := b.Inject(dataset.Noise{Rate: 0.15, TypoFrac: 0.5, Seed: 3})
	full, err := repair.NewEngine(b.Rules, b.Yago, b.Schema)
	if err != nil {
		t.Fatal(err)
	}
	want := full.RepairTable(inj.Dirty, true)
	for _, v := range ablationVariants {
		e, err := repair.NewEngineWithOptions(b.Rules, b.Yago, b.Schema, v.opts)
		if err != nil {
			t.Fatal(err)
		}
		got := e.RepairTable(inj.Dirty, true)
		for i := range want.Tuples {
			if !want.Tuples[i].EqualMarked(got.Tuples[i]) {
				t.Fatalf("%s: tuple %d: %v, want %v", v.name, i, got.Tuples[i], want.Tuples[i])
			}
		}
	}
}
