package repair

import (
	"sync"
	"sync/atomic"
)

// RowRecorder keeps a sampled ring buffer of recent input rows from
// the serving paths. The canary reload replays a snapshot of this ring
// through scratch engines on the live and candidate graphs to compare
// their quarantine/step-budget/divergence rates before (and after) a
// swap — real traffic, not synthetic probes.
//
// Recording is deliberately cheap on the hot path: a single atomic add
// decides whether a row is sampled at all; only sampled rows pay the
// mutex and the clone. All methods are safe for concurrent use.
type RowRecorder struct {
	every int64
	n     atomic.Int64

	mu     sync.Mutex
	rows   [][]string
	next   int
	filled bool
}

// NewRowRecorder builds a recorder holding up to capacity rows,
// sampling one row in every sampleEvery (<=1 records every row).
func NewRowRecorder(capacity, sampleEvery int) *RowRecorder {
	if capacity <= 0 {
		capacity = 1024
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &RowRecorder{every: int64(sampleEvery), rows: make([][]string, capacity)}
}

// Record possibly samples rec into the ring. rec may alias a reused
// read buffer; sampled rows are cloned before retention.
func (r *RowRecorder) Record(rec []string) {
	if r.n.Add(1)%r.every != 0 {
		return
	}
	r.mu.Lock()
	slot := r.rows[r.next]
	if cap(slot) < len(rec) {
		slot = make([]string, len(rec))
	}
	slot = slot[:len(rec)]
	copy(slot, rec)
	r.rows[r.next] = slot
	r.next++
	if r.next == len(r.rows) {
		r.next = 0
		r.filled = true
	}
	r.mu.Unlock()
}

// Len reports how many rows the ring currently holds.
func (r *RowRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.filled {
		return len(r.rows)
	}
	return r.next
}

// Snapshot copies the recorded rows out (order unspecified). The
// result shares no storage with the ring, so replay can proceed while
// recording continues.
func (r *RowRecorder) Snapshot() [][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.rows)
	}
	out := make([][]string, n)
	for i := 0; i < n; i++ {
		out[i] = append([]string(nil), r.rows[i]...)
	}
	return out
}
