package repair

import (
	"sync/atomic"

	"detective/internal/kb"
	"detective/internal/relation"
)

// BreakerOptions configures the repair circuit breaker. The breaker
// watches the rate of bad outcomes (quarantines and step-budget
// exhaustions) over a sliding sample window; when the rate trips the
// threshold the engine degrades to detect-only — rules still evaluate
// and mark the cells they implicate, but no value is rewritten and the
// memo is bypassed — until a half-open probe repair succeeds. The zero
// value leaves the breaker disabled.
type BreakerOptions struct {
	// Enabled turns the breaker on for the serving paths
	// (RepairTable*, streaming cleans, RepairRow). The evaluation
	// paths (FastRepair, BasicRepair, explanations) never consult it.
	Enabled bool
	// Window is how many full-repair outcomes one sample window holds.
	// The trip ratio is computed over the current and previous
	// windows, so the effective memory is up to 2×Window rows.
	// Default 512.
	Window int
	// MinSamples is the minimum combined sample count before the
	// breaker may trip, so a single early quarantine cannot open it.
	// Default 64.
	MinSamples int
	// TripRatio is the bad-outcome fraction at or above which the
	// breaker opens. Default 0.5.
	TripRatio float64
	// CooldownRows is how many rows are served detect-only after a
	// trip before the breaker goes half-open and risks one probe
	// repair. Default 256.
	CooldownRows int
	// PerRule additionally gives every rule its own breaker: a rule
	// whose own evaluations keep quarantining is skipped (its repairs
	// and marks suppressed) while healthy rules keep repairing,
	// recovering independently via per-rule half-open probes.
	PerRule bool
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Window <= 0 {
		o.Window = 512
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 64
	}
	if o.TripRatio <= 0 || o.TripRatio > 1 {
		o.TripRatio = 0.5
	}
	if o.CooldownRows <= 0 {
		o.CooldownRows = 256
	}
	return o
}

// Breaker states. Closed = repairing normally; open = detect-only;
// half-open = detect-only except for single probe repairs that decide
// between reopening and closing.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

func breakerStateName(s int32) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerWindow is one sample window; all fields are atomics so the
// hot path records outcomes without a lock.
type breakerWindow struct {
	total atomic.Int64
	bad   atomic.Int64
}

// breaker is a lock-free sliding-window circuit breaker. Outcomes are
// recorded into a ring of windows indexed by an atomic epoch; the trip
// ratio reads the current and previous windows, giving a sliding view
// without stop-the-world resets. The ring holds 4 windows so the
// "next" window being zeroed for reuse is never one of the two being
// read.
type breaker struct {
	opts BreakerOptions

	state atomic.Int32
	epoch atomic.Int64
	win   [4]breakerWindow

	// degraded counts rows served detect-only since the breaker last
	// opened; reaching CooldownRows moves it to half-open.
	degraded atomic.Int64
	// probe is the half-open probe token: 1 when a probe repair may be
	// claimed.
	probe atomic.Int32

	// lifetime counters for stats and telemetry.
	trips         atomic.Int64
	reopens       atomic.Int64
	recoveries    atomic.Int64
	degradedTotal atomic.Int64
}

func (b *breaker) init(o BreakerOptions) { b.opts = o }

// admit decides how the next tuple runs: degrade means detect-only
// (skip the repair and the memo), probe means this tuple holds the
// half-open probe token and must run a fresh full repair whose outcome
// resolves the breaker.
func (b *breaker) admit() (degrade, probe bool) {
	switch b.state.Load() {
	case breakerClosed:
		return false, false
	case breakerOpen:
		b.degradedTotal.Add(1)
		if b.degraded.Add(1) >= int64(b.opts.CooldownRows) {
			if b.state.CompareAndSwap(breakerOpen, breakerHalfOpen) {
				b.probe.Store(1)
			}
		}
		return true, false
	default: // half-open
		if b.probe.CompareAndSwap(1, 0) {
			return false, true
		}
		b.degradedTotal.Add(1)
		return true, false
	}
}

// record folds one full-repair outcome into the sliding window and
// trips the breaker when the bad rate crosses the threshold. Degraded
// (detect-only) rows are not samples; memo replays are not samples
// either — only repairs that actually ran.
func (b *breaker) record(bad bool) {
	e := b.epoch.Load()
	w := &b.win[e&3]
	t := w.total.Add(1)
	if bad {
		w.bad.Add(1)
	}
	if t == int64(b.opts.Window) {
		// This exact add filled the window: zero the window after next
		// for reuse, then advance. The CAS makes late stragglers (who
		// loaded the old epoch) harmless — they add to the previous
		// window, which the ratio still reads.
		nxt := &b.win[(e+2)&3]
		nxt.total.Store(0)
		nxt.bad.Store(0)
		b.epoch.CompareAndSwap(e, e+1)
	}
	if bad {
		b.maybeTrip()
	}
}

func (b *breaker) maybeTrip() {
	if b.state.Load() != breakerClosed {
		return
	}
	e := b.epoch.Load()
	cur, prev := &b.win[e&3], &b.win[(e+3)&3]
	total := cur.total.Load() + prev.total.Load()
	if total < int64(b.opts.MinSamples) {
		return
	}
	bad := cur.bad.Load() + prev.bad.Load()
	if float64(bad) >= b.opts.TripRatio*float64(total) {
		if b.state.CompareAndSwap(breakerClosed, breakerOpen) {
			b.degraded.Store(0)
			b.trips.Add(1)
		}
	}
}

// resolveProbe records the outcome of the half-open probe repair. Only
// the goroutine that claimed the probe token calls this, so plain
// stores are race-free against admit's loads.
func (b *breaker) resolveProbe(bad bool) {
	if bad {
		b.degraded.Store(0)
		b.reopens.Add(1)
		b.state.Store(breakerOpen)
		return
	}
	// Recovered: clear every window so pre-trip history cannot
	// immediately re-trip, then close.
	for i := range b.win {
		b.win[i].total.Store(0)
		b.win[i].bad.Store(0)
	}
	b.recoveries.Add(1)
	b.state.Store(breakerClosed)
}

// windowCounts returns the sample and bad counts the trip ratio
// currently sees.
func (b *breaker) windowCounts() (total, bad int64) {
	e := b.epoch.Load()
	cur, prev := &b.win[e&3], &b.win[(e+3)&3]
	return cur.total.Load() + prev.total.Load(), cur.bad.Load() + prev.bad.Load()
}

// BreakerStats is a snapshot of the circuit breaker, surfaced through
// GET /stats and expvar-style debugging. The zero value (Enabled
// false) is returned when the breaker is disabled.
type BreakerStats struct {
	Enabled bool `json:"enabled"`
	// State is "closed", "open", or "half-open".
	State string `json:"state,omitempty"`
	// Trips counts closed→open transitions; Reopens counts failed
	// half-open probes; Recoveries counts successful ones.
	Trips      int64 `json:"trips,omitempty"`
	Reopens    int64 `json:"reopens,omitempty"`
	Recoveries int64 `json:"recoveries,omitempty"`
	// DegradedRows counts rows served detect-only.
	DegradedRows int64 `json:"degradedRows,omitempty"`
	// WindowTotal/WindowBad are the samples the trip ratio currently
	// sees.
	WindowTotal int64 `json:"windowTotal,omitempty"`
	WindowBad   int64 `json:"windowBad,omitempty"`
	// OpenRules names the rules whose per-rule breakers are not
	// closed, when BreakerOptions.PerRule is set.
	OpenRules []string `json:"openRules,omitempty"`
}

// BreakerStats snapshots the engine's circuit breaker.
func (e *Engine) BreakerStats() BreakerStats {
	b := e.breaker
	if b == nil {
		return BreakerStats{}
	}
	total, bad := b.windowCounts()
	s := BreakerStats{
		Enabled:      true,
		State:        breakerStateName(b.state.Load()),
		Trips:        b.trips.Load(),
		Reopens:      b.reopens.Load(),
		Recoveries:   b.recoveries.Load(),
		DegradedRows: b.degradedTotal.Load(),
		WindowTotal:  total,
		WindowBad:    bad,
	}
	for i := range e.ruleBreakers {
		rb := &e.ruleBreakers[i]
		if rb.state.Load() != breakerClosed {
			s.OpenRules = append(s.OpenRules, e.Graph.Rules[i].Name)
		}
	}
	return s
}

// breakerAdmit consults the global breaker for the next serving-path
// tuple; (false, false) when the breaker is disabled.
func (e *Engine) breakerAdmit() (degrade, probe bool) {
	if e.breaker == nil {
		return false, false
	}
	return e.breaker.admit()
}

// breakerEngaged reports whether the global breaker is anywhere but
// closed. The streaming pipeline bypasses its chunk-local dedup while
// it is, so detect-only degradation and half-open probes see every
// row, exactly like the serial path.
func (e *Engine) breakerEngaged() bool {
	return e.breaker != nil && e.breaker.state.Load() != breakerClosed
}

// breakerObserve folds one completed full repair into the global and
// per-rule breakers. It is called exactly once per non-degraded
// serving-path tuple — including from panic recovery, where st (though
// abandoned for pooling) still carries the rule attribution.
func (e *Engine) breakerObserve(st *fastState, oc tupleOutcome) {
	bad := oc != tupleOK
	if b := e.breaker; b != nil {
		if st.probe {
			b.resolveProbe(bad)
		} else {
			b.record(bad)
		}
	}
	if e.ruleBreakers != nil {
		badRule := int32(-1)
		if bad {
			// The rule being evaluated when the panic or budget
			// exhaustion happened; -1 when the failure predates any
			// rule step.
			badRule = st.lastRule
		}
		for _, idx := range st.ran {
			e.ruleBreakers[idx].record(idx == badRule)
		}
		for _, p := range st.probes {
			e.ruleBreakers[p].resolveProbe(p == badRule)
		}
	}
}

// detectOnlyTupleOn is the degraded clone-based repair: rules evaluate
// and mark, values stay original, the memo is untouched. Used by the
// table path while the breaker is open.
func (e *Engine) detectOnlyTupleOn(g *kb.Graph, t *relation.Tuple) (out *relation.Tuple, oc tupleOutcome) {
	st := e.getStateOn(g)
	st.detectOnly = true
	defer func() {
		if r := recover(); r != nil {
			out, oc = t.Clone(), tupleQuarantined
			e.count(oc, nil)
		}
	}()
	cl := t.Clone()
	ok := e.runFast(cl, st)
	e.putState(st)
	if !ok {
		out, oc = t.Clone(), tupleBudgetExhausted
	} else {
		out, oc = cl, tupleOK
	}
	e.count(oc, nil)
	return out, oc
}

// detectOnlyRowOn is detectOnlyTupleOn's in-place streaming variant.
// On a non-OK outcome tup is left marked-but-original or partially
// marked; the caller restores the original record.
func (e *Engine) detectOnlyRowOn(g *kb.Graph, tup *relation.Tuple) (oc tupleOutcome) {
	st := e.getStateOn(g)
	st.detectOnly = true
	defer func() {
		if r := recover(); r != nil {
			oc = tupleQuarantined
		}
		e.count(oc, nil)
	}()
	ok := e.runFast(tup, st)
	e.putState(st)
	if !ok {
		return tupleBudgetExhausted
	}
	return tupleOK
}
