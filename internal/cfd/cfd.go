// Package cfd implements the constant conditional functional
// dependency baseline of the paper's Exp-2 (Fan et al., TODS 2008 —
// reference [14]). Constant CFDs are mined from ground truth: a
// pattern (X = x̄ → Y = y) is kept when x̄ functionally determines y
// in the clean data. Applying them overwrites the RHS of any tuple
// whose LHS matches — which, as the paper notes, "will make mistakes
// if the tuple's left hand side values are wrong", and repairs
// nothing when the LHS carries a typo.
package cfd

import (
	"fmt"
	"sort"
	"strings"

	"detective/internal/relation"
)

// Template names the attribute shape (X → Y) constant CFDs are mined
// over.
type Template struct {
	LHS []string
	RHS string
}

func (t Template) String() string { return fmt.Sprintf("%v -> %s", t.LHS, t.RHS) }

// Rule is one mined constant CFD: ([X = x̄] → Y = y).
type Rule struct {
	Template
	LHSVals []string
	RHSVal  string
}

func (r Rule) String() string {
	parts := make([]string, len(r.LHS))
	for i := range r.LHS {
		parts[i] = fmt.Sprintf("%s=%q", r.LHS[i], r.LHSVals[i])
	}
	return fmt.Sprintf("[%s] -> %s=%q", strings.Join(parts, ", "), r.RHS, r.RHSVal)
}

// Mine extracts constant CFDs for each template from the ground-truth
// table: LHS patterns that map to exactly one RHS value. Patterns
// must be witnessed by at least minSupport tuples (minSupport < 1
// defaults to 1).
func Mine(truth *relation.Table, templates []Template, minSupport int) ([]Rule, error) {
	if minSupport < 1 {
		minSupport = 1
	}
	var out []Rule
	for _, tpl := range templates {
		lhsIdx := make([]int, len(tpl.LHS))
		for i, a := range tpl.LHS {
			if !truth.Schema.Has(a) {
				return nil, fmt.Errorf("cfd: template LHS attribute %q not in schema", a)
			}
			lhsIdx[i] = truth.Schema.MustCol(a)
		}
		if !truth.Schema.Has(tpl.RHS) {
			return nil, fmt.Errorf("cfd: template RHS attribute %q not in schema", tpl.RHS)
		}
		rhsIdx := truth.Schema.MustCol(tpl.RHS)

		type stat struct {
			vals    map[string]int
			support int
			lhs     []string
		}
		pat := make(map[string]*stat)
		for _, tu := range truth.Tuples {
			key := ""
			lhs := make([]string, len(lhsIdx))
			for i, ci := range lhsIdx {
				lhs[i] = tu.Values[ci]
				key += tu.Values[ci] + "\x00"
			}
			st := pat[key]
			if st == nil {
				st = &stat{vals: make(map[string]int), lhs: lhs}
				pat[key] = st
			}
			st.vals[tu.Values[rhsIdx]]++
			st.support++
		}
		keys := make([]string, 0, len(pat))
		for k := range pat {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			st := pat[k]
			if len(st.vals) != 1 || st.support < minSupport {
				continue // not functional in the clean data, or too rare
			}
			var rhs string
			for v := range st.vals {
				rhs = v
			}
			out = append(out, Rule{Template: tpl, LHSVals: st.lhs, RHSVal: rhs})
		}
	}
	return out, nil
}

// Index compiles rules into a hash index for constant-time lookup per
// tuple — the reason constant CFDs repair 100K tuples within a second
// in the paper's Figure 8(d).
type Index struct {
	schema *relation.Schema
	// one bucket per template
	buckets []bucket
}

type bucket struct {
	lhsIdx []int
	rhsIdx int
	byKey  map[string]string
}

// NewIndex builds the lookup structure over a rule set.
func NewIndex(schema *relation.Schema, rs []Rule) *Index {
	ix := &Index{schema: schema}
	pos := make(map[string]int)
	for _, r := range rs {
		tk := r.Template.String()
		bi, ok := pos[tk]
		if !ok {
			b := bucket{rhsIdx: schema.MustCol(r.RHS), byKey: make(map[string]string)}
			for _, a := range r.LHS {
				b.lhsIdx = append(b.lhsIdx, schema.MustCol(a))
			}
			bi = len(ix.buckets)
			ix.buckets = append(ix.buckets, b)
			pos[tk] = bi
		}
		key := strings.Join(r.LHSVals, "\x00")
		ix.buckets[bi].byKey[key] = r.RHSVal
	}
	return ix
}

// Repair applies the rules to a copy of tb: wherever a tuple's LHS
// values match a rule and the RHS differs, the RHS is overwritten.
// It returns the repaired table and the changed cell coordinates.
func (ix *Index) Repair(tb *relation.Table) (*relation.Table, [][2]int) {
	out := tb.Clone()
	var changed [][2]int
	var sb strings.Builder
	for ti, tu := range out.Tuples {
		for _, b := range ix.buckets {
			sb.Reset()
			for _, ci := range b.lhsIdx {
				sb.WriteString(tu.Values[ci])
				sb.WriteByte(0)
			}
			key := sb.String()
			key = key[:len(key)-1]
			want, ok := b.byKey[key]
			if !ok || tu.Values[b.rhsIdx] == want {
				continue
			}
			tu.Values[b.rhsIdx] = want
			changed = append(changed, [2]int{ti, b.rhsIdx})
		}
	}
	return out, changed
}
