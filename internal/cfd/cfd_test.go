package cfd_test

import (
	"strings"
	"testing"

	"detective/internal/cfd"
	"detective/internal/relation"
)

func truthTable() *relation.Table {
	tb := relation.NewTable(relation.NewSchema("R", "Country", "Capital"))
	tb.Append("China", "Beijing")
	tb.Append("China", "Beijing")
	tb.Append("Japan", "Tokyo")
	tb.Append("France", "Paris")
	return tb
}

var tpl = []cfd.Template{{LHS: []string{"Country"}, RHS: "Capital"}}

func TestMine(t *testing.T) {
	rules, err := cfd.Mine(truthTable(), tpl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("mined %d rules, want 3", len(rules))
	}
	found := false
	for _, r := range rules {
		if r.LHSVals[0] == "China" && r.RHSVal == "Beijing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing China->Beijing: %v", rules)
	}
}

func TestMineMinSupport(t *testing.T) {
	rules, err := cfd.Mine(truthTable(), tpl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].LHSVals[0] != "China" {
		t.Fatalf("rules = %v, want only the China pattern", rules)
	}
}

func TestMineSkipsNonFunctionalPatterns(t *testing.T) {
	tb := truthTable()
	tb.Append("China", "Shanghai") // ground truth ambiguity
	rules, err := cfd.Mine(tb, tpl, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.LHSVals[0] == "China" {
			t.Fatalf("non-functional pattern mined: %v", r)
		}
	}
}

func TestMineValidatesTemplates(t *testing.T) {
	if _, err := cfd.Mine(truthTable(), []cfd.Template{{LHS: []string{"Z"}, RHS: "Capital"}}, 1); err == nil {
		t.Error("unknown LHS: want error")
	}
	if _, err := cfd.Mine(truthTable(), []cfd.Template{{LHS: []string{"Country"}, RHS: "Z"}}, 1); err == nil {
		t.Error("unknown RHS: want error")
	}
}

func TestRepairOverwritesRHS(t *testing.T) {
	rules, err := cfd.Mine(truthTable(), tpl, 1)
	if err != nil {
		t.Fatal(err)
	}
	ix := cfd.NewIndex(truthTable().Schema, rules)

	dirty := relation.NewTable(truthTable().Schema)
	dirty.Append("China", "Shanghai") // semantic error on RHS: fixed
	dirty.Append("Chima", "Beijing")  // typo on LHS: no rule matches
	dirty.Append("Japan", "Tokyo")    // clean: untouched

	got, changed := ix.Repair(dirty)
	if got.Cell(0, "Capital") != "Beijing" {
		t.Errorf("row 0 = %q, want Beijing", got.Cell(0, "Capital"))
	}
	if got.Cell(1, "Capital") != "Beijing" || got.Cell(1, "Country") != "Chima" {
		t.Errorf("row 1 changed: %v (LHS typo must block the rule)", got.Tuples[1])
	}
	if len(changed) != 1 || changed[0] != [2]int{0, 1} {
		t.Errorf("changed = %v", changed)
	}
	// Input untouched.
	if dirty.Cell(0, "Capital") != "Shanghai" {
		t.Fatal("input mutated")
	}
}

func TestRepairWrongLHSCausesWrongRepair(t *testing.T) {
	// The paper: "constant CFDs will make mistakes if the tuple's left
	// hand side values are wrong" — a semantically wrong LHS matches a
	// *different* pattern and drags the RHS with it.
	rules, err := cfd.Mine(truthTable(), tpl, 1)
	if err != nil {
		t.Fatal(err)
	}
	ix := cfd.NewIndex(truthTable().Schema, rules)
	dirty := relation.NewTable(truthTable().Schema)
	dirty.Append("Japan", "Beijing") // truth: China/Beijing; LHS is the error
	got, changed := ix.Repair(dirty)
	if got.Cell(0, "Capital") != "Tokyo" {
		t.Fatalf("Capital = %q; the wrong-LHS mistake should yield Tokyo", got.Cell(0, "Capital"))
	}
	if len(changed) != 1 {
		t.Fatalf("changed = %v", changed)
	}
}

func TestRuleString(t *testing.T) {
	rules, err := cfd.Mine(truthTable(), tpl, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := rules[0].String()
	if !strings.Contains(s, "Country=") || !strings.Contains(s, "Capital=") {
		t.Errorf("String() = %q", s)
	}
}

func TestMultiAttributeLHS(t *testing.T) {
	schema := relation.NewSchema("R", "A", "B", "C")
	truth := relation.NewTable(schema)
	truth.Append("x", "y", "1")
	truth.Append("x", "z", "2")
	tpl := []cfd.Template{{LHS: []string{"A", "B"}, RHS: "C"}}
	rules, err := cfd.Mine(truth, tpl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("mined %d rules, want 2", len(rules))
	}
	ix := cfd.NewIndex(schema, rules)
	dirty := relation.NewTable(schema)
	dirty.Append("x", "z", "9")
	got, _ := ix.Repair(dirty)
	if got.Cell(0, "C") != "2" {
		t.Fatalf("C = %q, want 2", got.Cell(0, "C"))
	}
}
