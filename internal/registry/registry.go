// Package registry serves many named tenants from one process, each
// tenant owning its own knowledge base, rule catalog, repair engine
// with private memo and candidate caches, concurrency limit, canary
// pipeline and circuit breaker. Hundreds of tenants can be
// configured; only the hot ones are resident. Residency is an LRU
// bounded by Config.MaxResident: a request for a non-resident tenant
// admits it (loading its KB — an mmap'd DKBS v2 snapshot makes this
// nearly free — parsing its rules once, building its server), and an
// admission over the cap evicts the least-recently-used idle tenant.
//
// Eviction is safe under in-flight requests twice over: a tenant with
// pinned requests (Tenant's release not yet called) is never chosen
// as a victim, and requests hold their own reference to the tenant's
// Server, whose engine pins a KB generation per tuple — an eviction
// or readmission between two of a request's tuples can never tear the
// graph out from under it. Evicting drops the registry's reference to
// the Server and its graph; the memory is reclaimed by GC (mmap'd
// snapshot pages are clean file-backed memory the kernel reclaims on
// its own). Readmission rebuilds a fresh server from disk.
//
// The registry implements server.TenantResolver and
// server.TenantAdmin, so server.NewTenantMux/NewTenantAdminMux are
// its HTTP front ends, and exports per-tenant labeled telemetry
// (detective_tenant_*{tenant="..."}) next to each tenant server's own
// labeled series.
package registry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"reflect"
	"regexp"
	"sort"
	"sync"
	"time"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/repair/ensemble"
	"detective/internal/repair/ensemble/adapters"
	"detective/internal/rules"
	"detective/internal/server"
	"detective/internal/telemetry"
)

// TenantConfig configures one tenant. Zero fields fall back to
// Config.Defaults, so fleets sharing a schema and rule set only spell
// out per-tenant KB paths.
type TenantConfig struct {
	// Name is the tenant's URL segment: /v1/{name}/clean. Required on
	// tenants (ignored in Defaults); letters, digits, '-', '_', '.'.
	Name string `json:"name,omitempty"`
	// Snapshot is a DKBS snapshot path (v1 or v2; v2 is mmap'd in
	// place on supported platforms). Takes precedence over KBText.
	Snapshot string `json:"snapshot,omitempty"`
	// KBText is a triple-text KB path, the slow-load alternative.
	KBText string `json:"kbText,omitempty"`
	// Rules is the tenant's detective-rule file.
	Rules string `json:"rules,omitempty"`
	// Schema is the served relation's attribute names.
	Schema []string `json:"schema,omitempty"`
	// Relation names the relation (default "table").
	Relation string `json:"relation,omitempty"`

	// Per-tenant serving limits; zero inherits Defaults, then the
	// process-wide server.Config defaults.
	MaxConcurrent     int    `json:"maxConcurrent,omitempty"`
	MemoBytes         int64  `json:"memoBytes,omitempty"`
	StreamWorkers     int    `json:"streamWorkers,omitempty"`
	VerifyMode        string `json:"verifyMode,omitempty"`
	RetainGenerations int    `json:"retainGenerations,omitempty"`

	// Ensemble enables the multi-engine repair vote for this tenant:
	// POST /v1/{name}/clean?ensemble=1 repairs each row by the
	// weighted vote over the detective engine and auxiliary proposers
	// built from the tenant's own rules and KB (the KATARA proposer's
	// table pattern is derived from the rule set), plus FD and
	// constant-CFD proposers mined from EnsembleRef when set.
	Ensemble bool `json:"ensemble,omitempty"`
	// EnsembleRef is an optional clean reference CSV (tenant schema)
	// the FD and CFD proposers are mined from.
	EnsembleRef string `json:"ensembleRef,omitempty"`
	// EnsembleThreshold overrides the vote's acceptance threshold
	// (0 picks the engine default).
	EnsembleThreshold float64 `json:"ensembleThreshold,omitempty"`
}

// Config is the registry configuration, typically one JSON file
// (cmd/detectived -registry).
type Config struct {
	// MaxResident caps how many tenants hold a loaded KB and engine at
	// once (default 8). Admissions beyond the cap evict the
	// least-recently-used tenant without in-flight requests.
	MaxResident int `json:"maxResident,omitempty"`
	// Defaults fills zero fields of every tenant (its Name is
	// ignored). Typical use: one shared rules file and schema.
	Defaults TenantConfig `json:"defaults,omitempty"`
	// Tenants is the fleet.
	Tenants []TenantConfig `json:"tenants"`
}

var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// merged returns tc with zero fields filled from d.
func (tc TenantConfig) merged(d TenantConfig) TenantConfig {
	if tc.Snapshot == "" && tc.KBText == "" {
		tc.Snapshot, tc.KBText = d.Snapshot, d.KBText
	}
	if tc.Rules == "" {
		tc.Rules = d.Rules
	}
	if len(tc.Schema) == 0 {
		tc.Schema = d.Schema
	}
	if tc.Relation == "" {
		tc.Relation = d.Relation
	}
	if tc.Relation == "" {
		tc.Relation = "table"
	}
	if tc.MaxConcurrent == 0 {
		tc.MaxConcurrent = d.MaxConcurrent
	}
	if tc.MemoBytes == 0 {
		tc.MemoBytes = d.MemoBytes
	}
	if tc.StreamWorkers == 0 {
		tc.StreamWorkers = d.StreamWorkers
	}
	if tc.VerifyMode == "" {
		tc.VerifyMode = d.VerifyMode
	}
	if tc.RetainGenerations == 0 {
		tc.RetainGenerations = d.RetainGenerations
	}
	if !tc.Ensemble {
		tc.Ensemble = d.Ensemble
	}
	if tc.EnsembleRef == "" {
		tc.EnsembleRef = d.EnsembleRef
	}
	if tc.EnsembleThreshold == 0 {
		tc.EnsembleThreshold = d.EnsembleThreshold
	}
	return tc
}

// LoadConfig reads and validates a registry configuration file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("registry: parsing %s: %w", path, err)
	}
	return &cfg, nil
}

// Options tunes a Registry beyond its tenant configuration.
type Options struct {
	// Logger receives admission/eviction lifecycle logs; nil uses
	// slog.Default(). Tenant servers log with a tenant attribute.
	Logger *slog.Logger
	// Metrics receives the registry's and every tenant server's
	// series; nil uses telemetry.Default().
	Metrics *telemetry.Registry
	// Server is the base server configuration every tenant inherits
	// (timeouts, canary, breaker, body limits); per-tenant limits from
	// TenantConfig override it.
	Server server.Config
}

// tenant is one configured tenant and, when resident, its server.
type tenant struct {
	cfg TenantConfig

	// Parsed once at first admission and retained across evictions:
	// rules and schema are small, and re-validating them on every
	// readmission would waste the LRU's point.
	once   sync.Once
	rules  []*rules.DR
	schema *relation.Schema
	initE  error

	// loadMu serializes cold admissions of this one tenant so a
	// thundering herd on a cold tenant loads its KB exactly once.
	loadMu sync.Mutex

	// Guarded by Registry.mu.
	srv      *server.Server
	pins     int   // in-flight requests holding the tenant resident
	lastUsed int64 // registry LRU clock at last touch

	requests   *telemetry.Counter
	admissions *telemetry.Counter
	evictions  *telemetry.Counter
	loadSecs   *telemetry.Gauge
}

// Registry owns the tenant fleet. It is safe for concurrent use.
type Registry struct {
	log     *slog.Logger
	metrics *telemetry.Registry
	base    server.Config
	maxRes  int

	mu      sync.Mutex
	tenants map[string]*tenant
	names   []string // sorted; replaced wholesale by ApplyConfig
	clock   int64    // LRU clock, bumped per touch

	resident *telemetry.Gauge
}

// New validates cfg and builds the registry. No tenant is loaded yet:
// KBs are admitted lazily by the first request (or Warm).
func New(cfg Config, opts Options) (*Registry, error) {
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Metrics == nil {
		opts.Metrics = telemetry.Default()
	}
	maxRes := cfg.MaxResident
	if maxRes <= 0 {
		maxRes = 8
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("registry: no tenants configured")
	}
	r := &Registry{
		log:     opts.Logger,
		metrics: opts.Metrics,
		base:    opts.Server,
		maxRes:  maxRes,
		tenants: make(map[string]*tenant, len(cfg.Tenants)),
	}
	for _, tc := range cfg.Tenants {
		tc = tc.merged(cfg.Defaults)
		if err := validateTenant(tc); err != nil {
			return nil, err
		}
		if _, dup := r.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("registry: duplicate tenant %q", tc.Name)
		}
		r.tenants[tc.Name] = r.newTenant(tc)
		r.names = append(r.names, tc.Name)
	}
	sort.Strings(r.names)
	r.resident = opts.Metrics.Gauge("detective_tenants_resident",
		"Tenants currently holding a loaded KB and engine.")
	opts.Metrics.GaugeFunc("detective_tenants_configured",
		"Tenants in the registry configuration.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.names))
		})
	return r, nil
}

// validateTenant checks one merged tenant config the way New always
// has; ApplyConfig runs the same checks before touching the fleet.
func validateTenant(tc TenantConfig) error {
	if !tenantNameRE.MatchString(tc.Name) {
		return fmt.Errorf("registry: invalid tenant name %q", tc.Name)
	}
	if tc.Snapshot == "" && tc.KBText == "" {
		return fmt.Errorf("registry: tenant %q has no KB source (snapshot or kbText)", tc.Name)
	}
	if tc.Rules == "" {
		return fmt.Errorf("registry: tenant %q has no rules file", tc.Name)
	}
	if len(tc.Schema) == 0 {
		return fmt.Errorf("registry: tenant %q has no schema", tc.Name)
	}
	return nil
}

// newTenant builds the tenant struct and its labeled metrics. The
// telemetry registry dedupes by name+label, so re-creating a tenant
// under the same name (ApplyConfig) reattaches the existing series.
func (r *Registry) newTenant(tc TenantConfig) *tenant {
	lbl := telemetry.Label{Name: "tenant", Value: tc.Name}
	return &tenant{
		cfg: tc,
		requests: r.metrics.Counter("detective_tenant_requests_total",
			"Requests resolved to this tenant (resident or admitting).", lbl),
		admissions: r.metrics.Counter("detective_tenant_admissions_total",
			"Cold admissions: the tenant's KB was loaded and its server built.", lbl),
		evictions: r.metrics.Counter("detective_tenant_evictions_total",
			"Evictions: the tenant's server and KB were dropped from residency.", lbl),
		loadSecs: r.metrics.Gauge("detective_tenant_kb_load_seconds",
			"Wall-clock seconds of the tenant's most recent cold KB load.", lbl),
	}
}

// ApplyConfig reconciles the fleet against a re-read configuration
// file — the SIGHUP path in registry mode, which previously re-read
// only tenant KB files and silently ignored tenants.json edits.
// Unchanged tenants keep their structs, residency and parsed rules;
// tenants with edited configs are rebuilt cold on their next
// admission; removed tenants are dropped (in-flight requests finish
// on the server they already hold); added tenants become admittable.
// The whole config is validated before anything is touched, so a bad
// file changes nothing.
func (r *Registry) ApplyConfig(cfg Config) error {
	if len(cfg.Tenants) == 0 {
		return fmt.Errorf("registry: no tenants configured")
	}
	merged := make([]TenantConfig, 0, len(cfg.Tenants))
	seen := make(map[string]bool, len(cfg.Tenants))
	for _, tc := range cfg.Tenants {
		tc = tc.merged(cfg.Defaults)
		if err := validateTenant(tc); err != nil {
			return err
		}
		if seen[tc.Name] {
			return fmt.Errorf("registry: duplicate tenant %q", tc.Name)
		}
		seen[tc.Name] = true
		merged = append(merged, tc)
	}
	maxRes := cfg.MaxResident
	if maxRes <= 0 {
		maxRes = 8
	}

	r.mu.Lock()
	var added, updated, removed []string
	next := make(map[string]*tenant, len(merged))
	names := make([]string, 0, len(merged))
	for _, tc := range merged {
		old := r.tenants[tc.Name]
		switch {
		case old == nil:
			next[tc.Name] = r.newTenant(tc)
			added = append(added, tc.Name)
		case reflect.DeepEqual(old.cfg, tc):
			next[tc.Name] = old
		default:
			// A fresh struct resets the once-parsed rules/schema and
			// residency; the old server stays valid for requests that
			// already resolved it.
			next[tc.Name] = r.newTenant(tc)
			updated = append(updated, tc.Name)
		}
		names = append(names, tc.Name)
	}
	for name := range r.tenants {
		if next[name] == nil {
			removed = append(removed, name)
		}
	}
	sort.Strings(names)
	r.tenants = next
	r.names = names
	r.maxRes = maxRes
	r.evictOverCapLocked(nil)
	res := r.residentCountLocked()
	r.resident.Set(float64(res))
	r.mu.Unlock()

	sort.Strings(added)
	sort.Strings(updated)
	sort.Strings(removed)
	r.log.Info("registry config applied",
		slog.Int("tenants", len(names)),
		slog.Int("resident", res),
		slog.Any("added", added),
		slog.Any("updated", updated),
		slog.Any("removed", removed))
	return nil
}

// TenantNames implements server.TenantResolver. The returned slice is
// a copy: ApplyConfig can replace the fleet at any time.
func (r *Registry) TenantNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// MaxResident returns the residency cap.
func (r *Registry) MaxResident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxRes
}

// Tenant implements server.TenantResolver: it returns name's server,
// cold-admitting the tenant if needed, plus a release func that
// unpins it. Unknown names return server.ErrUnknownTenant.
func (r *Registry) Tenant(name string) (*server.Server, func(), error) {
	r.mu.Lock()
	t := r.tenants[name]
	if t == nil {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", server.ErrUnknownTenant, name)
	}
	t.requests.Inc()
	r.touchLocked(t)
	if t.srv != nil {
		t.pins++
		srv := t.srv
		r.mu.Unlock()
		return srv, r.releaseFunc(t), nil
	}
	r.mu.Unlock()
	return r.admit(t)
}

// touchLocked bumps the tenant in the LRU order.
func (r *Registry) touchLocked(t *tenant) {
	r.clock++
	t.lastUsed = r.clock
}

// releaseFunc returns the idempotent unpin for one resolved request.
func (r *Registry) releaseFunc(t *tenant) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			t.pins--
			r.mu.Unlock()
		})
	}
}

// admit loads the tenant's KB and builds its server, then inserts it
// into residency and evicts past the cap. The per-tenant loadMu makes
// a thundering herd on one cold tenant load once; other tenants admit
// concurrently.
func (r *Registry) admit(t *tenant) (*server.Server, func(), error) {
	t.loadMu.Lock()
	defer t.loadMu.Unlock()

	r.mu.Lock()
	if t.srv != nil { // admitted while we waited on loadMu
		t.pins++
		srv := t.srv
		r.mu.Unlock()
		return srv, r.releaseFunc(t), nil
	}
	r.mu.Unlock()

	srv, loadTime, err := r.buildServer(t)
	if err != nil {
		return nil, nil, fmt.Errorf("registry: admitting tenant %q: %w", t.cfg.Name, err)
	}

	r.mu.Lock()
	t.srv = srv
	t.pins++
	r.touchLocked(t)
	t.admissions.Inc()
	t.loadSecs.Set(loadTime.Seconds())
	victims := r.evictOverCapLocked(t)
	res := r.residentCountLocked()
	r.resident.Set(float64(res))
	r.mu.Unlock()

	r.log.Info("tenant admitted",
		slog.String("tenant", t.cfg.Name),
		slog.Duration("kb_load", loadTime),
		slog.Int("resident", res))
	for _, v := range victims {
		r.log.Info("tenant evicted",
			slog.String("tenant", v),
			slog.String("for", t.cfg.Name))
	}
	return srv, r.releaseFunc(t), nil
}

func (r *Registry) residentCountLocked() int {
	n := 0
	for _, t := range r.tenants {
		if t.srv != nil {
			n++
		}
	}
	return n
}

// evictOverCapLocked drops least-recently-used idle tenants until the
// resident count is back at the cap. Tenants with pinned requests are
// never victims — when everything is pinned, residency temporarily
// exceeds the cap and the next admission retries the eviction.
func (r *Registry) evictOverCapLocked(justAdmitted *tenant) []string {
	var victims []string
	for r.residentCountLocked() > r.maxRes {
		var victim *tenant
		for _, t := range r.tenants {
			if t.srv == nil || t.pins > 0 || t == justAdmitted {
				continue
			}
			if victim == nil || t.lastUsed < victim.lastUsed {
				victim = t
			}
		}
		if victim == nil {
			r.log.Warn("residency cap exceeded: every resident tenant has in-flight requests",
				slog.Int("resident", r.residentCountLocked()),
				slog.Int("cap", r.maxRes))
			break
		}
		victim.srv = nil // engine, caches and graph go with it (GC / kernel)
		victim.evictions.Inc()
		victims = append(victims, victim.cfg.Name)
	}
	return victims
}

// buildServer loads the tenant's KB and constructs its server. Rules
// and schema are parsed on the first admission only.
func (r *Registry) buildServer(t *tenant) (*server.Server, time.Duration, error) {
	t.once.Do(func() {
		f, err := os.Open(t.cfg.Rules)
		if err != nil {
			t.initE = err
			return
		}
		defer f.Close()
		rs, err := rules.ParseRules(f)
		if err != nil {
			t.initE = fmt.Errorf("parsing rules %s: %w", t.cfg.Rules, err)
			return
		}
		t.rules = rs
		t.schema = relation.NewSchema(t.cfg.Relation, t.cfg.Schema...)
	})
	if t.initE != nil {
		return nil, 0, t.initE
	}

	start := time.Now()
	g, err := r.loadGraph(t.cfg)
	if err != nil {
		return nil, 0, err
	}
	loadTime := time.Since(start)

	cfg := r.base
	cfg.Logger = r.log.With(slog.String("tenant", t.cfg.Name))
	cfg.Metrics = r.metrics
	cfg.MetricLabels = []telemetry.Label{{Name: "tenant", Value: t.cfg.Name}}
	if t.cfg.MaxConcurrent != 0 {
		cfg.MaxConcurrent = t.cfg.MaxConcurrent
	}
	if t.cfg.MemoBytes != 0 {
		cfg.MemoBytes = t.cfg.MemoBytes
	}
	if t.cfg.StreamWorkers != 0 {
		cfg.StreamWorkers = t.cfg.StreamWorkers
	}
	if t.cfg.VerifyMode != "" {
		cfg.VerifyMode = t.cfg.VerifyMode
	}
	if t.cfg.RetainGenerations != 0 {
		cfg.RetainGenerations = t.cfg.RetainGenerations
	}
	// The ensemble proposers read the tenant's KB through its store,
	// so the store is built here and shared with the server (hot
	// reloads reach the proposers automatically).
	st := kb.NewStore(g)
	if t.cfg.Ensemble {
		ens, err := tenantEnsemble(t, st)
		if err != nil {
			return nil, 0, err
		}
		cfg.Ensemble = ens
	}
	srv, err := server.NewWithStore(t.rules, st, t.schema, cfg)
	if err != nil {
		return nil, 0, err
	}
	return srv, loadTime, nil
}

// tenantEnsemble assembles the tenant's ensemble configuration: the
// auxiliary proposers (KATARA on the tenant's own KB behind st; FD
// and constant-CFD miners over the reference CSV when configured)
// and the acceptance threshold.
func tenantEnsemble(t *tenant, st *kb.Store) (repair.EnsembleOptions, error) {
	var ref *relation.Table
	if t.cfg.EnsembleRef != "" {
		var err error
		ref, err = adapters.LoadReference(t.schema, t.cfg.EnsembleRef)
		if err != nil {
			return repair.EnsembleOptions{}, fmt.Errorf("ensemble reference %s: %w", t.cfg.EnsembleRef, err)
		}
	}
	return repair.EnsembleOptions{
		Enabled:   true,
		Threshold: t.cfg.EnsembleThreshold,
		Proposers: adapters.BuildProposers(t.schema, ensemble.PatternFromRules(t.rules), st, ref),
	}, nil
}

// loadGraph reads one tenant's KB from its configured source.
// Snapshots go through kb.LoadSnapshotFile, which mmaps DKBS v2 files
// in place — the cheap path residency churn is designed around.
func (r *Registry) loadGraph(tc TenantConfig) (*kb.Graph, error) {
	if tc.Snapshot != "" {
		return kb.LoadSnapshotFile(tc.Snapshot)
	}
	f, err := os.Open(tc.KBText)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kb.Parse(f)
}

// TenantLoader implements server.TenantAdmin: the loader behind
// POST /v1/{tenant}/reload re-reads the tenant's configured source.
func (r *Registry) TenantLoader(name string) func() (*kb.Graph, error) {
	return func() (*kb.Graph, error) {
		r.mu.Lock()
		t := r.tenants[name]
		r.mu.Unlock()
		if t == nil {
			return nil, fmt.Errorf("%w: %q", server.ErrUnknownTenant, name)
		}
		return r.loadGraph(t.cfg)
	}
}

// Warm admits the named tenants (all configured tenants when names is
// empty, in LRU-safe config order) up to the residency cap, so a
// fresh process can pre-load its hot set before taking traffic.
func (r *Registry) Warm(names ...string) error {
	if len(names) == 0 {
		names = r.TenantNames()
	}
	if max := r.MaxResident(); len(names) > max {
		names = names[:max]
	}
	var firstErr error
	for _, n := range names {
		_, release, err := r.Tenant(n)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		release()
	}
	return firstErr
}

// ReloadResident re-stages every resident tenant's KB from its
// configured source through its canary pipeline (the SIGHUP path in
// registry mode). Non-resident tenants need nothing: their next
// admission reads the new file anyway. Errors are logged per tenant;
// the first is returned.
func (r *Registry) ReloadResident() error {
	r.mu.Lock()
	var live []*tenant
	for _, t := range r.tenants {
		if t.srv != nil {
			t.pins++ // hold residency across the staged reload
			live = append(live, t)
		}
	}
	r.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].cfg.Name < live[j].cfg.Name })

	var firstErr error
	for _, t := range live {
		start := time.Now()
		g, err := r.loadGraph(t.cfg)
		if err == nil {
			_, _, err = t.srv.StageReloadKB(g, time.Since(start))
		}
		if err != nil {
			r.log.Error("tenant reload failed; keeping current graph",
				slog.String("tenant", t.cfg.Name),
				slog.Any("error", err))
			if firstErr == nil {
				firstErr = fmt.Errorf("tenant %q: %w", t.cfg.Name, err)
			}
		}
		r.mu.Lock()
		t.pins--
		r.mu.Unlock()
	}
	return firstErr
}

// TenantStatus is one tenant's entry in Stats.
type TenantStatus struct {
	Name       string `json:"name"`
	Resident   bool   `json:"resident"`
	Pins       int    `json:"pins,omitempty"`
	Generation int64  `json:"generation,omitempty"`
	Admissions int64  `json:"admissions"`
	Evictions  int64  `json:"evictions"`
	Requests   int64  `json:"requests"`
}

// Stats is the registry-level status document (GET /registry on the
// ops listener).
type Stats struct {
	Configured  int            `json:"configured"`
	Resident    int            `json:"resident"`
	MaxResident int            `json:"maxResident"`
	Tenants     []TenantStatus `json:"tenants"`
}

// Stats snapshots the fleet.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Configured:  len(r.names),
		MaxResident: r.maxRes,
		Tenants:     make([]TenantStatus, 0, len(r.names)),
	}
	for _, n := range r.names {
		t := r.tenants[n]
		ts := TenantStatus{
			Name:       n,
			Resident:   t.srv != nil,
			Pins:       t.pins,
			Admissions: t.admissions.Value(),
			Evictions:  t.evictions.Value(),
			Requests:   t.requests.Value(),
		}
		if t.srv != nil {
			s.Resident++
			ts.Generation = t.srv.Store().Generation()
		}
		s.Tenants = append(s.Tenants, ts)
	}
	return s
}
