package registry_test

import (
	"io"
	"log/slog"
	"testing"

	"detective/internal/registry"
	"detective/internal/telemetry"
)

// BenchmarkTenantColdAdmission measures the registry's worst-case
// request: resolving a non-resident tenant. Two tenants thrash a
// residency cap of 1, so every resolve mmaps the snapshot, builds the
// rule catalog and engine, and evicts the previous tenant.
func BenchmarkTenantColdAdmission(b *testing.B) {
	cfg := fleetConfig(b, 2, 1)
	r, err := registry.New(cfg, registry.Options{
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		Metrics: telemetry.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	names := [2]string{"tenant-00", "tenant-01"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, release, err := r.Tenant(names[i%2])
		if err != nil {
			b.Fatal(err)
		}
		release()
	}
}

// BenchmarkTenantResidentResolve is the hot path: the tenant is
// already resident, so a resolve is a map lookup, an LRU touch and a
// pin — the per-request overhead multi-tenancy adds.
func BenchmarkTenantResidentResolve(b *testing.B) {
	cfg := fleetConfig(b, 2, 2)
	r, err := registry.New(cfg, registry.Options{
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		Metrics: telemetry.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Warm(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, release, err := r.Tenant("tenant-00")
		if err != nil {
			b.Fatal(err)
		}
		release()
	}
}
