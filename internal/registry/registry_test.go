package registry_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"detective/internal/dataset"
	"detective/internal/registry"
	"detective/internal/rules"
	"detective/internal/server"
	"detective/internal/telemetry"
)

const dirtyCSV = `Name,DOB,Country,Prize,Institution,City
Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,Israel Institute of Technology,Karcag
`

// writeFixtures materializes the paper example on disk the way a real
// deployment configures tenants: a DKBS v2 snapshot, a triple-text
// KB, and a rules file. All tenants in these tests share them.
func writeFixtures(t testing.TB) (snapPath, textPath, rulesPath string) {
	t.Helper()
	dir := t.TempDir()
	ex := dataset.NewPaperExample()

	snapPath = filepath.Join(dir, "kb.dkbs")
	sf, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.KB.WriteSnapshotV2(sf); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}

	textPath = filepath.Join(dir, "kb.nt")
	tf, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.KB.Encode(tf); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}

	rulesPath = filepath.Join(dir, "rules.dr")
	rf, err := os.Create(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rules.EncodeRules(rf, ex.Rules); err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	return snapPath, textPath, rulesPath
}

var paperSchema = []string{"Name", "DOB", "Country", "Prize", "Institution", "City"}

// fleetConfig builds n tenants (tenant-00 .. tenant-N) sharing the
// fixture sources via Defaults, with residency capped at maxResident.
func fleetConfig(t testing.TB, n, maxResident int) registry.Config {
	t.Helper()
	snap, _, rulesPath := writeFixtures(t)
	cfg := registry.Config{
		MaxResident: maxResident,
		Defaults: registry.TenantConfig{
			Snapshot: snap,
			Rules:    rulesPath,
			Schema:   paperSchema,
			Relation: "Nobel",
		},
	}
	for i := 0; i < n; i++ {
		cfg.Tenants = append(cfg.Tenants, registry.TenantConfig{
			Name: fmt.Sprintf("tenant-%02d", i),
		})
	}
	return cfg
}

func newRegistry(t testing.TB, cfg registry.Config) *registry.Registry {
	t.Helper()
	r, err := registry.New(cfg, registry.Options{Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	snap, _, rulesPath := writeFixtures(t)
	ok := registry.TenantConfig{Snapshot: snap, Rules: rulesPath, Schema: paperSchema}

	cases := []struct {
		name string
		cfg  registry.Config
		want string
	}{
		{"no tenants", registry.Config{}, "no tenants"},
		{"bad name", registry.Config{
			Defaults: ok,
			Tenants:  []registry.TenantConfig{{Name: "a/b"}},
		}, "invalid tenant name"},
		{"empty name", registry.Config{
			Defaults: ok,
			Tenants:  []registry.TenantConfig{{}},
		}, "invalid tenant name"},
		{"duplicate", registry.Config{
			Defaults: ok,
			Tenants:  []registry.TenantConfig{{Name: "a"}, {Name: "a"}},
		}, "duplicate tenant"},
		{"no kb", registry.Config{
			Tenants: []registry.TenantConfig{{Name: "a", Rules: rulesPath, Schema: paperSchema}},
		}, "no KB source"},
		{"no rules", registry.Config{
			Tenants: []registry.TenantConfig{{Name: "a", Snapshot: snap, Schema: paperSchema}},
		}, "no rules"},
		{"no schema", registry.Config{
			Tenants: []registry.TenantConfig{{Name: "a", Snapshot: snap, Rules: rulesPath}},
		}, "no schema"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := registry.New(tc.cfg, registry.Options{Metrics: telemetry.NewRegistry()})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestLoadConfigFile(t *testing.T) {
	snap, _, rulesPath := writeFixtures(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "registry.json")
	doc := map[string]any{
		"maxResident": 2,
		"defaults": map[string]any{
			"snapshot": snap,
			"rules":    rulesPath,
			"schema":   paperSchema,
			"relation": "Nobel",
		},
		"tenants": []map[string]any{
			{"name": "alpha"},
			{"name": "beta", "maxConcurrent": 3},
		},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := registry.LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	r := newRegistry(t, *cfg)
	if got := r.TenantNames(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("TenantNames = %v", got)
	}
	if r.MaxResident() != 2 {
		t.Fatalf("MaxResident = %d", r.MaxResident())
	}

	if _, err := registry.LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file: want error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := registry.LoadConfig(bad); err == nil {
		t.Fatal("malformed JSON: want error")
	}
}

func TestUnknownTenant(t *testing.T) {
	r := newRegistry(t, fleetConfig(t, 2, 2))
	_, _, err := r.Tenant("nope")
	if !strings.Contains(fmt.Sprint(err), "unknown tenant") {
		t.Fatalf("err = %v", err)
	}
}

func TestTextKBSource(t *testing.T) {
	_, text, rulesPath := writeFixtures(t)
	r := newRegistry(t, registry.Config{
		Tenants: []registry.TenantConfig{{
			Name: "texty", KBText: text, Rules: rulesPath,
			Schema: paperSchema, Relation: "Nobel",
		}},
	})
	cleanTenant(t, httptest.NewServer(server.NewTenantMux(r, nil)), "texty")
}

// cleanTenant posts the dirty paper tuple to one tenant and asserts
// the repair came back. The httptest server is closed here.
func cleanTenant(t *testing.T, ts *httptest.Server, tenant string) {
	t.Helper()
	defer ts.Close()
	body := postClean(t, ts.URL, tenant)
	if !strings.Contains(body, "Haifa+") {
		t.Fatalf("tenant %s: City not repaired:\n%s", tenant, body)
	}
}

func postClean(t *testing.T, base, tenant string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/"+tenant+"/clean?marked=1", "text/csv", strings.NewReader(dirtyCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant %s: status %d: %s", tenant, resp.StatusCode, b)
	}
	return string(b)
}

// TestLRUChurn is the acceptance scenario: 64 configured tenants, a
// residency cap of 8, interleaved concurrent traffic — evictions and
// cold readmissions happen constantly while requests are in flight.
// Run under -race.
func TestLRUChurn(t *testing.T) {
	const (
		tenants  = 64
		cap      = 8
		workers  = 16
		requests = 12 // per worker
	)
	r := newRegistry(t, fleetConfig(t, tenants, cap))
	ts := httptest.NewServer(server.NewTenantMux(r, nil))
	defer ts.Close()

	var wg sync.WaitGroup
	var served atomic.Int64
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < requests; i++ {
				name := fmt.Sprintf("tenant-%02d", rng.Intn(tenants))
				resp, err := http.Post(ts.URL+"/v1/"+name+"/clean?marked=1", "text/csv", strings.NewReader(dirtyCSV))
				if err != nil {
					errc <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("tenant %s: status %d: %s", name, resp.StatusCode, body)
					return
				}
				if !strings.Contains(string(body), "Haifa+") {
					errc <- fmt.Errorf("tenant %s: bad repair:\n%s", name, body)
					return
				}
				served.Add(1)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := served.Load(); got != workers*requests {
		t.Fatalf("served %d of %d requests", got, workers*requests)
	}

	st := r.Stats()
	if st.Configured != tenants || st.MaxResident != cap {
		t.Fatalf("stats = %+v", st)
	}
	if st.Resident > cap {
		t.Fatalf("resident = %d > cap %d after traffic drained", st.Resident, cap)
	}
	var admissions, evictions, reqs int64
	for _, tn := range st.Tenants {
		admissions += tn.Admissions
		evictions += tn.Evictions
		reqs += tn.Requests
		if tn.Pins != 0 {
			t.Errorf("tenant %s: %d pins leaked", tn.Name, tn.Pins)
		}
	}
	if reqs != workers*requests {
		t.Fatalf("request counters sum to %d, want %d", reqs, workers*requests)
	}
	// 16 workers spraying 64 tenants through 8 slots must churn: far
	// more admissions than could ever stay resident.
	if admissions <= int64(cap) {
		t.Fatalf("admissions = %d; expected churn beyond the %d-slot cap", admissions, cap)
	}
	if evictions < admissions-int64(cap) {
		t.Fatalf("evictions = %d, admissions = %d: eviction accounting broken", evictions, admissions)
	}
}

func TestEvictionSkipsPinnedTenants(t *testing.T) {
	r := newRegistry(t, fleetConfig(t, 4, 2))

	// Pin two tenants resident.
	_, rel0, err := r.Tenant("tenant-00")
	if err != nil {
		t.Fatal(err)
	}
	_, rel1, err := r.Tenant("tenant-01")
	if err != nil {
		t.Fatal(err)
	}

	// A third admission exceeds the cap; both residents are pinned, so
	// neither may be evicted — residency transiently exceeds the cap.
	_, rel2, err := r.Tenant("tenant-02")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Resident; got != 3 {
		t.Fatalf("resident = %d, want 3 (cap exceeded, all pinned)", got)
	}
	rel0()
	rel1()
	rel2()
	rel2() // release is idempotent

	// The next admission evicts down to the cap: tenant-00 is the LRU
	// victim (then possibly tenant-01), and pinned counts are zero.
	_, rel3, err := r.Tenant("tenant-03")
	if err != nil {
		t.Fatal(err)
	}
	defer rel3()
	st := r.Stats()
	if st.Resident > 2 {
		t.Fatalf("resident = %d, want <= cap 2 after unpinned eviction", st.Resident)
	}
	for _, tn := range st.Tenants {
		if tn.Name == "tenant-00" && tn.Resident {
			t.Fatal("LRU tenant-00 still resident after eviction pass")
		}
		if tn.Name == "tenant-03" && !tn.Resident {
			t.Fatal("just-admitted tenant-03 not resident")
		}
	}
}

func TestReadmissionAfterEviction(t *testing.T) {
	r := newRegistry(t, fleetConfig(t, 3, 1))
	ts := httptest.NewServer(server.NewTenantMux(r, nil))
	defer ts.Close()

	// Serve each tenant twice round-robin with cap 1: every request
	// after the first for a tenant is a cold readmission.
	for round := 0; round < 2; round++ {
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("tenant-%02d", i)
			if body := postClean(t, ts.URL, name); !strings.Contains(body, "Haifa+") {
				t.Fatalf("round %d tenant %s: bad repair:\n%s", round, name, body)
			}
		}
	}
	st := r.Stats()
	if st.Resident != 1 {
		t.Fatalf("resident = %d, want 1", st.Resident)
	}
	var admissions int64
	for _, tn := range st.Tenants {
		admissions += tn.Admissions
	}
	if admissions != 6 {
		t.Fatalf("admissions = %d, want 6 (every request readmits under cap 1)", admissions)
	}
}

func TestWarm(t *testing.T) {
	r := newRegistry(t, fleetConfig(t, 6, 3))
	if err := r.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Resident; got != 3 {
		t.Fatalf("resident after Warm = %d, want 3 (cap)", got)
	}
	if err := r.Warm("no-such-tenant"); err == nil {
		t.Fatal("Warm(unknown) should report the error")
	}
}

func TestTenantAdminReloadAndRollback(t *testing.T) {
	r := newRegistry(t, fleetConfig(t, 2, 2))
	ts := httptest.NewServer(server.NewTenantAdminMux(r, nil))
	defer ts.Close()

	// Reload re-reads the configured snapshot through the canary.
	resp, err := http.Post(ts.URL+"/v1/tenant-00/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}

	// And the reloaded tenant still serves correct repairs.
	if out := postClean(t, ts.URL, "tenant-00"); !strings.Contains(out, "Haifa+") {
		t.Fatalf("post-reload repair:\n%s", out)
	}

	// Rollback returns to the retained pre-reload generation.
	resp, err = http.Post(ts.URL+"/v1/tenant-00/rollback", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollback status %d: %s", resp.StatusCode, body)
	}
}

func TestReloadResident(t *testing.T) {
	r := newRegistry(t, fleetConfig(t, 4, 2))
	if err := r.Warm("tenant-00", "tenant-01"); err != nil {
		t.Fatal(err)
	}
	if err := r.ReloadResident(); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Resident != 2 {
		t.Fatalf("resident = %d after ReloadResident", st.Resident)
	}
	for _, tn := range st.Tenants {
		if tn.Resident && tn.Generation < 2 {
			t.Fatalf("tenant %s generation = %d, want bumped by reload", tn.Name, tn.Generation)
		}
		if tn.Pins != 0 {
			t.Fatalf("tenant %s: %d pins leaked by ReloadResident", tn.Name, tn.Pins)
		}
	}
}

func TestAdmissionFailureIs503(t *testing.T) {
	snap, _, rulesPath := writeFixtures(t)
	r := newRegistry(t, registry.Config{
		Tenants: []registry.TenantConfig{
			{Name: "good", Snapshot: snap, Rules: rulesPath, Schema: paperSchema, Relation: "Nobel"},
			{Name: "broken", Snapshot: filepath.Join(t.TempDir(), "missing.dkbs"),
				Rules: rulesPath, Schema: paperSchema, Relation: "Nobel"},
		},
	})
	ts := httptest.NewServer(server.NewTenantMux(r, nil))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/broken/clean", "text/csv", strings.NewReader(dirtyCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Status  int    `json:"status"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("503 body is not the JSON envelope: %v", err)
	}
	if env.Error.Status != http.StatusServiceUnavailable {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestApplyConfig(t *testing.T) {
	cfg := fleetConfig(t, 3, 2)
	r := newRegistry(t, cfg)
	if err := r.Warm("tenant-00", "tenant-01"); err != nil {
		t.Fatal(err)
	}

	// Reshape the fleet: drop tenant-02, add tenant-99, edit
	// tenant-01's concurrency, raise the residency cap.
	next := cfg
	next.MaxResident = 3
	next.Tenants = append([]registry.TenantConfig(nil), cfg.Tenants[:2]...)
	next.Tenants[1].MaxConcurrent = 7
	next.Tenants = append(next.Tenants, registry.TenantConfig{Name: "tenant-99"})
	if err := r.ApplyConfig(next); err != nil {
		t.Fatal(err)
	}

	names := r.TenantNames()
	want := []string{"tenant-00", "tenant-01", "tenant-99"}
	if len(names) != len(want) {
		t.Fatalf("TenantNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("TenantNames = %v, want %v", names, want)
		}
	}
	if got := r.MaxResident(); got != 3 {
		t.Fatalf("MaxResident = %d, want 3", got)
	}

	st := r.Stats()
	for _, tn := range st.Tenants {
		switch tn.Name {
		case "tenant-00":
			if !tn.Resident {
				t.Fatal("unchanged tenant-00 lost residency across ApplyConfig")
			}
		case "tenant-01":
			if tn.Resident {
				t.Fatal("edited tenant-01 should be rebuilt cold on next admission")
			}
		}
	}

	// Removed, edited and added tenants behave accordingly.
	if _, _, err := r.Tenant("tenant-02"); !errors.Is(err, server.ErrUnknownTenant) {
		t.Fatalf("removed tenant-02: err = %v, want ErrUnknownTenant", err)
	}
	for _, name := range []string{"tenant-01", "tenant-99"} {
		_, release, err := r.Tenant(name)
		if err != nil {
			t.Fatalf("tenant %s after ApplyConfig: %v", name, err)
		}
		release()
	}

	// A bad config changes nothing.
	if err := r.ApplyConfig(registry.Config{}); err == nil {
		t.Fatal("ApplyConfig(empty) should fail")
	}
	if got := len(r.TenantNames()); got != 3 {
		t.Fatalf("fleet size after rejected config = %d, want 3", got)
	}
}
