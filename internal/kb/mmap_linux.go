//go:build linux

package kb

import (
	"os"
	"syscall"
)

// mmapSupported gates the in-place v2 read path at compile time.
const mmapSupported = true

// mapFile maps size bytes of f read-only and shared, so the pages are
// backed by the page cache and shared with every other mapping of the
// same snapshot file.
func mapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}
