package kb

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// benchGraph is a mid-size synthetic graph for the load benchmarks:
// entities with types, a small taxonomy, and literal-valued edges, in
// roughly the shape real KB excerpts take.
func benchGraph(b *testing.B) *Graph {
	b.Helper()
	g := New()
	g.AddSubclass("scientist", "person")
	g.AddSubclass("chemist", "scientist")
	g.AddSubclass("city", "location")
	classes := []string{"person", "scientist", "chemist"}
	for i := 0; i < 200; i++ {
		city := "city-" + itoa(i)
		g.AddType(city, "city")
	}
	for i := 0; i < 4000; i++ {
		name := "person-" + itoa(i)
		g.AddType(name, classes[i%len(classes)])
		g.AddTriple(name, "bornIn", "city-"+itoa(i%200))
		g.AddTriple(name, "worksIn", "city-"+itoa((i*7)%200))
		g.AddPropertyTriple(name, "bornOnDate", "19"+itoa(10+i%90)+"-01-02")
	}
	return g
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkKBLoadText is the baseline everyone starts from: parsing
// the canonical text encoding.
func BenchmarkKBLoadText(b *testing.B) {
	var buf bytes.Buffer
	if err := benchGraph(b).Encode(&buf); err != nil {
		b.Fatal(err)
	}
	src := buf.Bytes()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKBLoadSnapshot decodes the compact varint DKBS v1 layout.
func BenchmarkKBLoadSnapshot(b *testing.B) {
	var buf bytes.Buffer
	if err := benchGraph(b).WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	src := buf.Bytes()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadSnapshot(bytes.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKBLoadSnapshotV2 decodes the page-aligned v2 layout
// portably — the fallback path for v2 files off-Linux.
func BenchmarkKBLoadSnapshotV2(b *testing.B) {
	var buf bytes.Buffer
	if err := benchGraph(b).WriteSnapshotV2(&buf); err != nil {
		b.Fatal(err)
	}
	src := buf.Bytes()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadSnapshot(bytes.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKBLoadMmap is the serving path for on-disk v2 snapshots:
// map the arenas read-only and validate, no decode, no copies. This
// is what makes registry tenant cold admissions cheap.
func BenchmarkKBLoadMmap(b *testing.B) {
	var buf bytes.Buffer
	if err := benchGraph(b).WriteSnapshotV2(&buf); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "kb.v2.dkbs")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadSnapshotFile(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKBReloadFull is what a full `POST /reload` of an on-disk v2
// snapshot actually costs before the graph can serve: the mmap map plus
// Freeze (closure construction), which Store.Swap always runs. This is
// the denominator of the delta-apply speedup claims.
func BenchmarkKBReloadFull(b *testing.B) {
	var buf bytes.Buffer
	if err := benchGraph(b).WriteSnapshotV2(&buf); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "kb.v2.dkbs")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := LoadSnapshotFile(path)
		if err != nil {
			b.Fatal(err)
		}
		g.Freeze()
	}
}

// churnedGraph rebuilds the bench graph with a deterministic fraction
// of its person triples retargeted or replaced — the "small edit"
// shape production KB updates take.
func churnedGraph(b *testing.B, churnedPersons int) *Graph {
	b.Helper()
	g := New()
	g.AddSubclass("scientist", "person")
	g.AddSubclass("chemist", "scientist")
	g.AddSubclass("city", "location")
	classes := []string{"person", "scientist", "chemist"}
	for i := 0; i < 200; i++ {
		g.AddType("city-"+itoa(i), "city")
	}
	for i := 0; i < 4000; i++ {
		name := "person-" + itoa(i)
		g.AddType(name, classes[i%len(classes)])
		if i < churnedPersons {
			// Retarget one edge, replace one property value — two
			// removals and three additions per churned person.
			g.AddTriple(name, "bornIn", "city-"+itoa((i+1)%200))
			g.AddTriple(name, "worksIn", "city-"+itoa((i*7)%200))
			g.AddPropertyTriple(name, "bornOnDate", "20"+itoa(10+i%90)+"-01-02")
			g.AddTriple(name, "livesIn", "city-"+itoa(i%200))
		} else {
			g.AddTriple(name, "bornIn", "city-"+itoa(i%200))
			g.AddTriple(name, "worksIn", "city-"+itoa((i*7)%200))
			g.AddPropertyTriple(name, "bornOnDate", "19"+itoa(10+i%90)+"-01-02")
		}
	}
	return g
}

// benchApplyDelta measures the copy-on-write delta apply on the mmap'd
// serving graph — the path `POST /reload?delta=1` pays — at a given
// churn. Compare against BenchmarkKBLoadMmap, the cost a full reload
// of the same snapshot pays instead.
func benchApplyDelta(b *testing.B, churnedPersons int) {
	var buf bytes.Buffer
	if err := benchGraph(b).WriteSnapshotV2(&buf); err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "kb.v2.dkbs")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		b.Fatal(err)
	}
	base, err := LoadSnapshotFile(path)
	if err != nil {
		b.Fatal(err)
	}
	base.Freeze()
	d := Diff(base, churnedGraph(b, churnedPersons))
	base.Fingerprint() // pre-warm like a served graph that has applied once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := base.ApplyDelta(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKBApplyDeltaSmall is ~1% churn on Nobel-4000 (40 of 4000
// persons edited, 200 triple ops) — the headline delta-vs-full-reload
// number.
func BenchmarkKBApplyDeltaSmall(b *testing.B) { benchApplyDelta(b, 40) }

// BenchmarkKBApplyDeltaLarge is ~10% churn (400 persons, 2000 ops).
func BenchmarkKBApplyDeltaLarge(b *testing.B) { benchApplyDelta(b, 400) }
