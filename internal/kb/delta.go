package kb

// Incremental KB deltas (DKBD). Production KBs evolve by small edits;
// reloading a whole snapshot for every edit decodes (or at least maps
// and re-freezes) the full graph. A delta is the canonical difference
// between two graph contents — triples, type assertions and subclass
// edges added or removed, keyed by node *name* so it is independent of
// either graph's ID assignment — and ApplyDelta builds the next
// generation copy-on-write from the live graph: untouched structures
// (name storage, the type/taxonomy span tables, the frozen closure
// maps) are shared with the base outright, and only the edge lists and
// pair-table buckets a delta touches are rewritten. In-flight requests
// keep the generation they pinned; the generation bump invalidates
// memo and candidate caches exactly like a full swap.
//
// File format (all integers little-endian, "uv" = unsigned varint):
//
//	magic "DKBD" | u16 version=1 | u16 reserved
//	then v1-style sections (u8 id | u32 CRC-32C | u64 len | payload),
//	terminated by the end section:
//	  header    uv: baseNodes, baseTriples, baseFP, newFP
//	  names     uv count, count uv name lengths, name bytes,
//	            count kind bytes — every node any op references, sorted
//	            lexicographically, with the node's kind in the *new*
//	            graph (or the old one for nodes that only survive there)
//	  tripleDel / tripleAdd   uv count, count (uv s, uv p, uv o)
//	  typeDel   / typeAdd     uv count, count (uv inst, uv cls)
//	  subDel    / subAdd      uv count, count (uv sub, uv super)
//	  end       empty
//
// Op values are indexes into the delta's name table; op lists are
// sorted, so Diff output is byte-deterministic (CI's delta-check gate
// verifies this).
//
// Base identification is by *content fingerprint*, not generation or
// node count: the fingerprint is an order- and ID-independent sum over
// the graph's assertions, so a text-parsed graph, a v1 decode, an
// mmap'd v2 graph and a delta-applied graph of equal content all agree
// on it. Node counts deliberately do not participate: applying a delta
// cannot compact nodes the new content no longer references (their IDs
// are baked into shared arenas), so an applied graph may carry orphan
// nodes — and orphaned predicate entries — that contribute nothing to
// any assertion. Chained deltas therefore keep verifying: only content
// matters.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
	"sort"
	"strings"
	"sync"
)

const (
	deltaMagic = "DKBD"
	// DeltaVersion is the format version written by Delta.Write and
	// required by ReadDelta.
	DeltaVersion = 1
)

// Delta section IDs.
const (
	dsecHeader byte = iota + 1
	dsecNames
	dsecTripleDel
	dsecTripleAdd
	dsecTypeDel
	dsecTypeAdd
	dsecSubDel
	dsecSubAdd
	dsecEnd
)

// maxDeltaOps bounds per-section op counts so a corrupt header cannot
// balloon allocations before the varint decode fails.
const maxDeltaOps = 1 << 28

// Delta is the parsed form of a DKBD file: the canonical, name-keyed
// difference between a base graph content and a new one. Op values
// index Names/Kinds.
type Delta struct {
	// BaseNodes/BaseTriples describe the graph the delta was diffed
	// against. Only BaseTriples is enforced by ApplyDelta (node counts
	// differ across equal-content graphs once orphans exist).
	BaseNodes   int
	BaseTriples int
	// BaseFP must match the live graph's Fingerprint for the delta to
	// apply; NewFP is the fingerprint the applied graph must have.
	BaseFP uint64
	NewFP  uint64

	// Names lists every node any op references, sorted; Kinds carries
	// each name's kind in the new content.
	Names []string
	Kinds []Kind

	TripleDel, TripleAdd [][3]int32 // (subject, predicate, object)
	TypeDel, TypeAdd     [][2]int32 // (instance, class)
	SubDel, SubAdd       [][2]int32 // (subclass, superclass)
}

// Ops returns the total number of assertion edits in the delta.
func (d *Delta) Ops() int {
	return len(d.TripleDel) + len(d.TripleAdd) +
		len(d.TypeDel) + len(d.TypeAdd) +
		len(d.SubDel) + len(d.SubAdd)
}

// TriplesTouched returns how many relationship/property triples the
// delta removes plus adds (the unit the delta metrics count).
func (d *Delta) TriplesTouched() int { return len(d.TripleDel) + len(d.TripleAdd) }

// String summarizes the delta for logs and tooling.
func (d *Delta) String() string {
	return fmt.Sprintf("kb.Delta{names=%d -%d/+%d triples -%d/+%d types -%d/+%d subclasses}",
		len(d.Names), len(d.TripleDel), len(d.TripleAdd),
		len(d.TypeDel), len(d.TypeAdd), len(d.SubDel), len(d.SubAdd))
}

// ---------------------------------------------------------------------------
// Content fingerprint

// fpMemo caches a computed fingerprint for one generation. The pointer
// swap is atomic so concurrent readers of a frozen graph may race to
// compute and publish it safely.
type fpMemo struct {
	gen int64
	fp  uint64
}

// Mixing constants for the per-assertion fingerprint terms (splitmix64
// finalizer over tag-chained inputs). Stable: part of the DKBD format.
const (
	fpTagTriple = 0xA24BAED4963EE407
	fpTagType   = 0x9FB21C651E98DF25
	fpTagSub    = 0xD6E8FEB86659FD93
)

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpTerm is one assertion's contribution: order-sensitive in (a, b, c)
// so (s,p,o) permutations differ, while the outer sum over terms is
// order-insensitive.
func fpTerm(tag, a, b, c uint64) uint64 {
	h := mix64(tag + a)
	h = mix64(h + b)
	return mix64(h + c)
}

// litBit folds the only kind distinction the canonical text encoding
// gives a triple object — literal vs node — into its term.
func litBit(k Kind) uint64 {
	if k == KindLiteral {
		return 1
	}
	return 0
}

// Fingerprint returns the graph's content fingerprint: a commutative
// sum of one mixed term per triple (with the object's literal-ness),
// per type assertion and per subclass edge, over name hashes. Graphs
// of equal canonical text content always agree regardless of storage
// form, ID assignment or construction order; orphan nodes contribute
// nothing. The result is cached per generation; computing it costs one
// pass over the graph.
func (g *Graph) Fingerprint() uint64 {
	if m := g.fp.Load(); m != nil && m.gen == g.gen {
		return m.fp
	}
	f := g.computeFingerprint()
	g.fp.Store(&fpMemo{gen: g.gen, fp: f})
	return f
}

func (g *Graph) computeFingerprint() uint64 {
	n := g.NumNodes()
	nh := make([]uint64, n)
	for i := 0; i < n; i++ {
		nh[i] = nameHash(g.Name(ID(i)))
	}
	var sum uint64
	for s := 0; s < n; s++ {
		for _, e := range g.Out(ID(s)) {
			sum += fpTerm(fpTagTriple, nh[s], nh[e.Pred], nh[e.To]+litBit(g.kinds[e.To]))
		}
	}
	g.forEachTyped(func(inst ID, classes []ID) {
		for _, c := range classes {
			sum += fpTerm(fpTagType, nh[inst], nh[c], 0)
		}
	})
	g.forEachSubclassed(func(sub ID, supers []ID) {
		for _, sup := range supers {
			sum += fpTerm(fpTagSub, nh[sub], nh[sup], 0)
		}
	})
	return sum
}

// ---------------------------------------------------------------------------
// Diff

func containsID(s []ID, v ID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Diff computes the canonical delta that transforms old's content into
// new's. The comparison is by node name, so the two graphs may use any
// storage form and any ID assignment. The output is deterministic:
// diffing the same two contents always yields identical bytes.
func Diff(old, new *Graph) *Delta {
	d := &Delta{
		BaseNodes:   old.NumNodes(),
		BaseTriples: old.NumTriples(),
		BaseFP:      old.Fingerprint(),
		NewFP:       new.Fingerprint(),
	}

	oldN, newN := old.NumNodes(), new.NumNodes()
	n2o := make([]ID, newN)
	for i := 0; i < newN; i++ {
		n2o[i] = old.Lookup(new.Name(ID(i)))
	}
	o2n := make([]ID, oldN)
	for i := 0; i < oldN; i++ {
		o2n[i] = new.Lookup(old.Name(ID(i)))
	}

	idx := make(map[string]int32, 16)
	local := func(name string, k Kind) int32 {
		if i, ok := idx[name]; ok {
			return i
		}
		i := int32(len(d.Names))
		idx[name] = i
		d.Names = append(d.Names, name)
		d.Kinds = append(d.Kinds, k)
		return i
	}
	// A name's recorded kind is its kind in the new content; names that
	// only survive in the base keep their old kind so applying the
	// delta never mutates them.
	localNew := func(id ID) int32 { return local(new.Name(id), new.kinds[id]) }
	localOld := func(id ID) int32 {
		if n := o2n[id]; n != Invalid {
			return local(old.Name(id), new.kinds[n])
		}
		return local(old.Name(id), old.kinds[id])
	}

	for s := 0; s < newN; s++ {
		for _, e := range new.Out(ID(s)) {
			os, op, oo := n2o[s], n2o[e.Pred], n2o[e.To]
			if os == Invalid || op == Invalid || oo == Invalid || !old.HasEdge(os, op, oo) {
				d.TripleAdd = append(d.TripleAdd, [3]int32{localNew(ID(s)), localNew(e.Pred), localNew(e.To)})
			}
		}
	}
	for s := 0; s < oldN; s++ {
		for _, e := range old.Out(ID(s)) {
			ns, np, no := o2n[s], o2n[e.Pred], o2n[e.To]
			if ns == Invalid || np == Invalid || no == Invalid || !new.HasEdge(ns, np, no) {
				d.TripleDel = append(d.TripleDel, [3]int32{localOld(ID(s)), localOld(e.Pred), localOld(e.To)})
			}
		}
	}

	new.forEachTyped(func(inst ID, classes []ID) {
		oi := n2o[inst]
		for _, c := range classes {
			if oc := n2o[c]; oi == Invalid || oc == Invalid || !containsID(old.directTypes(oi), oc) {
				d.TypeAdd = append(d.TypeAdd, [2]int32{localNew(inst), localNew(c)})
			}
		}
	})
	old.forEachTyped(func(inst ID, classes []ID) {
		ni := o2n[inst]
		for _, c := range classes {
			if nc := o2n[c]; ni == Invalid || nc == Invalid || !containsID(new.directTypes(ni), nc) {
				d.TypeDel = append(d.TypeDel, [2]int32{localOld(inst), localOld(c)})
			}
		}
	})
	new.forEachSubclassed(func(sub ID, supers []ID) {
		os := n2o[sub]
		for _, sup := range supers {
			if osup := n2o[sup]; os == Invalid || osup == Invalid || !containsID(old.directSupers(os), osup) {
				d.SubAdd = append(d.SubAdd, [2]int32{localNew(sub), localNew(sup)})
			}
		}
	})
	old.forEachSubclassed(func(sub ID, supers []ID) {
		ns := o2n[sub]
		for _, sup := range supers {
			if nsup := o2n[sup]; ns == Invalid || nsup == Invalid || !containsID(new.directSupers(ns), nsup) {
				d.SubDel = append(d.SubDel, [2]int32{localOld(sub), localOld(sup)})
			}
		}
	})

	// Nodes in both graphs whose kind changed, even when no assertion
	// edit references them: the name-table entry alone carries the fix.
	for i := 0; i < newN; i++ {
		if o := n2o[i]; o != Invalid && old.kinds[o] != new.kinds[i] {
			localNew(ID(i))
		}
	}

	d.canonicalize()
	return d
}

// canonicalize sorts the name table lexicographically, remaps every op
// and sorts the op lists — insertion order (which follows map
// iteration in the mutable storage form) stops mattering, making Diff
// output deterministic.
func (d *Delta) canonicalize() {
	order := make([]int32, len(d.Names))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return d.Names[order[i]] < d.Names[order[j]] })
	rank := make([]int32, len(d.Names))
	names := make([]string, len(d.Names))
	kinds := make([]Kind, len(d.Names))
	for r, o := range order {
		rank[o] = int32(r)
		names[r] = d.Names[o]
		kinds[r] = d.Kinds[o]
	}
	d.Names, d.Kinds = names, kinds
	for _, ops := range [][][3]int32{d.TripleDel, d.TripleAdd} {
		for i, t := range ops {
			ops[i] = [3]int32{rank[t[0]], rank[t[1]], rank[t[2]]}
		}
		sort.Slice(ops, func(i, j int) bool { return less3(ops[i], ops[j]) })
	}
	for _, ops := range [][][2]int32{d.TypeDel, d.TypeAdd, d.SubDel, d.SubAdd} {
		for i, t := range ops {
			ops[i] = [2]int32{rank[t[0]], rank[t[1]]}
		}
		sort.Slice(ops, func(i, j int) bool { return less2(ops[i], ops[j]) })
	}
}

func less3(a, b [3]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

func less2(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// ---------------------------------------------------------------------------
// Serialization

// Write serializes the delta in the DKBD format. Output is canonical
// for a canonicalized delta (Diff always canonicalizes).
func (d *Delta) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(deltaMagic); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], DeltaVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	h := make([]byte, 0, 6*binary.MaxVarintLen64)
	for _, v := range []uint64{uint64(d.BaseNodes), uint64(d.BaseTriples), d.BaseFP, d.NewFP} {
		h = binary.AppendUvarint(h, v)
	}
	if err := writeSection(bw, dsecHeader, h); err != nil {
		return err
	}

	nb := binary.AppendUvarint(nil, uint64(len(d.Names)))
	for _, nm := range d.Names {
		nb = binary.AppendUvarint(nb, uint64(len(nm)))
	}
	for _, nm := range d.Names {
		nb = append(nb, nm...)
	}
	for _, k := range d.Kinds {
		nb = append(nb, byte(k))
	}
	if err := writeSection(bw, dsecNames, nb); err != nil {
		return err
	}

	w3 := func(id byte, ops [][3]int32) error {
		b := binary.AppendUvarint(nil, uint64(len(ops)))
		for _, t := range ops {
			b = binary.AppendUvarint(b, uint64(t[0]))
			b = binary.AppendUvarint(b, uint64(t[1]))
			b = binary.AppendUvarint(b, uint64(t[2]))
		}
		return writeSection(bw, id, b)
	}
	w2 := func(id byte, ops [][2]int32) error {
		b := binary.AppendUvarint(nil, uint64(len(ops)))
		for _, t := range ops {
			b = binary.AppendUvarint(b, uint64(t[0]))
			b = binary.AppendUvarint(b, uint64(t[1]))
		}
		return writeSection(bw, id, b)
	}
	if err := w3(dsecTripleDel, d.TripleDel); err != nil {
		return err
	}
	if err := w3(dsecTripleAdd, d.TripleAdd); err != nil {
		return err
	}
	if err := w2(dsecTypeDel, d.TypeDel); err != nil {
		return err
	}
	if err := w2(dsecTypeAdd, d.TypeAdd); err != nil {
		return err
	}
	if err := w2(dsecSubDel, d.SubDel); err != nil {
		return err
	}
	if err := w2(dsecSubAdd, d.SubAdd); err != nil {
		return err
	}
	if err := writeSection(bw, dsecEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDelta parses a DKBD delta. Every section is checksum-verified
// and every op index bounds-checked against the name table, so a
// corrupt or truncated delta fails here rather than during apply.
func ReadDelta(r io.Reader) (*Delta, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("kb: reading delta: %w", err)
	}
	if len(data) < len(deltaMagic)+4 || string(data[:4]) != deltaMagic {
		return nil, fmt.Errorf("kb: bad delta magic (not a DKBD delta)")
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != DeltaVersion {
		return nil, fmt.Errorf("kb: unsupported delta version %d (this build reads version %d)", v, DeltaVersion)
	}

	secs := make(map[byte][]byte, 9)
	crcs := make(map[byte]uint32, 9)
	off := len(deltaMagic) + 4
	sawEnd := false
	for off < len(data) {
		if len(data)-off < sectionHeaderLen {
			return nil, fmt.Errorf("kb: delta truncated in section header at offset %d", off)
		}
		id := data[off]
		crc := binary.LittleEndian.Uint32(data[off+1 : off+5])
		n := binary.LittleEndian.Uint64(data[off+5 : off+13])
		off += sectionHeaderLen
		if n > uint64(len(data)-off) {
			return nil, fmt.Errorf("kb: delta section %d truncated: need %d bytes, have %d", id, n, len(data)-off)
		}
		payload := data[off : off+int(n)]
		off += int(n)
		if id == dsecEnd {
			sawEnd = true
			break
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("kb: duplicate delta section %d", id)
		}
		secs[id] = payload
		crcs[id] = crc
	}
	if !sawEnd {
		return nil, fmt.Errorf("kb: delta truncated: end section missing")
	}
	checked := func(id byte) ([]byte, error) {
		p, ok := secs[id]
		if !ok {
			return nil, fmt.Errorf("kb: delta section %d missing", id)
		}
		if got := crc32.Checksum(p, crcTable); got != crcs[id] {
			return nil, fmt.Errorf("kb: delta section %d checksum mismatch (corrupt): got %08x, want %08x", id, got, crcs[id])
		}
		return p, nil
	}

	d := &Delta{}
	hp, err := checked(dsecHeader)
	if err != nil {
		return nil, err
	}
	hr := varintReader{b: hp}
	for _, f := range []struct {
		name string
		set  func(uint64)
	}{
		{"baseNodes", func(v uint64) { d.BaseNodes = int(v) }},
		{"baseTriples", func(v uint64) { d.BaseTriples = int(v) }},
		{"baseFP", func(v uint64) { d.BaseFP = v }},
		{"newFP", func(v uint64) { d.NewFP = v }},
	} {
		v, err := hr.uvarint()
		if err != nil {
			return nil, fmt.Errorf("kb: delta header (%s): %w", f.name, err)
		}
		f.set(v)
	}

	np, err := checked(dsecNames)
	if err != nil {
		return nil, err
	}
	nr := varintReader{b: np}
	cnt, err := nr.uvarint()
	if err != nil {
		return nil, fmt.Errorf("kb: delta names: %w", err)
	}
	if cnt > uint64(len(np)) {
		return nil, fmt.Errorf("kb: delta names: implausible count %d in %d payload bytes", cnt, len(np))
	}
	lens := make([]int, cnt)
	total := 0
	for i := range lens {
		v, err := nr.uvarint()
		if err != nil {
			return nil, fmt.Errorf("kb: delta name lengths: %w", err)
		}
		lens[i] = int(v)
		total += int(v)
	}
	if nr.off+total+int(cnt) != len(np) {
		return nil, fmt.Errorf("kb: delta names: payload is %d bytes, layout needs %d", len(np), nr.off+total+int(cnt))
	}
	blob := string(np[nr.off : nr.off+total])
	d.Names = make([]string, cnt)
	pos := 0
	for i, n := range lens {
		d.Names[i] = blob[pos : pos+n]
		pos += n
	}
	d.Kinds = make([]Kind, cnt)
	for i, b := range np[nr.off+total:] {
		if b > byte(KindLiteral) {
			return nil, fmt.Errorf("kb: delta names: entry %d has invalid kind %d", i, b)
		}
		d.Kinds[i] = Kind(b)
	}

	r3 := func(id byte, what string) ([][3]int32, error) {
		p, err := checked(id)
		if err != nil {
			return nil, err
		}
		vr := varintReader{b: p}
		n, err := vr.uvarint()
		if err != nil {
			return nil, fmt.Errorf("kb: delta %s: %w", what, err)
		}
		if n > maxDeltaOps {
			return nil, fmt.Errorf("kb: delta %s: implausible op count %d", what, n)
		}
		if n == 0 {
			return nil, nil
		}
		ops := make([][3]int32, n)
		for i := range ops {
			for j := 0; j < 3; j++ {
				v, err := vr.uvarint()
				if err != nil {
					return nil, fmt.Errorf("kb: delta %s op %d: %w", what, i, err)
				}
				if v >= cnt {
					return nil, fmt.Errorf("kb: delta %s op %d references name %d of %d", what, i, v, cnt)
				}
				ops[i][j] = int32(v)
			}
		}
		return ops, nil
	}
	r2 := func(id byte, what string) ([][2]int32, error) {
		p, err := checked(id)
		if err != nil {
			return nil, err
		}
		vr := varintReader{b: p}
		n, err := vr.uvarint()
		if err != nil {
			return nil, fmt.Errorf("kb: delta %s: %w", what, err)
		}
		if n > maxDeltaOps {
			return nil, fmt.Errorf("kb: delta %s: implausible op count %d", what, n)
		}
		if n == 0 {
			return nil, nil
		}
		ops := make([][2]int32, n)
		for i := range ops {
			for j := 0; j < 2; j++ {
				v, err := vr.uvarint()
				if err != nil {
					return nil, fmt.Errorf("kb: delta %s op %d: %w", what, i, err)
				}
				if v >= cnt {
					return nil, fmt.Errorf("kb: delta %s op %d references name %d of %d", what, i, v, cnt)
				}
				ops[i][j] = int32(v)
			}
		}
		return ops, nil
	}
	if d.TripleDel, err = r3(dsecTripleDel, "tripleDel"); err != nil {
		return nil, err
	}
	if d.TripleAdd, err = r3(dsecTripleAdd, "tripleAdd"); err != nil {
		return nil, err
	}
	if d.TypeDel, err = r2(dsecTypeDel, "typeDel"); err != nil {
		return nil, err
	}
	if d.TypeAdd, err = r2(dsecTypeAdd, "typeAdd"); err != nil {
		return nil, err
	}
	if d.SubDel, err = r2(dsecSubDel, "subDel"); err != nil {
		return nil, err
	}
	if d.SubAdd, err = r2(dsecSubAdd, "subAdd"); err != nil {
		return nil, err
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Copy-on-write apply

// ErrDeltaBaseMismatch reports that a delta was built against content
// that differs from the graph it is being applied to. The live graph
// is untouched.
var ErrDeltaBaseMismatch = errors.New("kb: delta base mismatch")

// ApplyDelta builds a new graph with d's edits applied, sharing every
// untouched structure with g copy-on-write: name storage, the
// type/taxonomy span tables and the frozen closure maps are reused
// outright when the delta does not touch them, span tables and arenas
// are cloned with only the touched buckets rewritten (at the arena
// tail, in canonical order), and g itself — possibly pinned by
// in-flight requests — is never mutated. The result is always in
// snapshot (read-only) storage form with a strictly larger generation.
//
// The base must match d.BaseFP (and triple count); a delta built
// against different content returns ErrDeltaBaseMismatch. Nodes whose
// every assertion is removed stay interned as orphans — they are
// unreachable from any index and do not perturb the fingerprint, so
// chained deltas keep applying.
//
// Arenas are copied, not aliased: Go slices cannot share a prefix and
// extend privately, and the base's backing arrays may be read-only
// mmap'd pages. The copies are flat memmoves (no per-element work), a
// small fraction of full-reload cost; the expensive structures — the
// name table and blob, the four assertion indexes and the closure
// maps — are the ones shared without copying on the triple-only path.
func (g *Graph) ApplyDelta(d *Delta) (*Graph, error) {
	if len(d.Kinds) != len(d.Names) {
		return nil, fmt.Errorf("kb: malformed delta: %d kinds for %d names", len(d.Kinds), len(d.Names))
	}
	if d.BaseTriples != g.NumTriples() {
		return nil, fmt.Errorf("%w: delta expects a base with %d triples, live graph has %d",
			ErrDeltaBaseMismatch, d.BaseTriples, g.NumTriples())
	}
	if fp := g.Fingerprint(); fp != d.BaseFP {
		return nil, fmt.Errorf("%w: live graph content %016x, delta built against %016x",
			ErrDeltaBaseMismatch, fp, d.BaseFP)
	}

	// Resolve delta-local names against the base; misses become new
	// node IDs appended after the base's, and kind disagreements on
	// existing nodes become kind fixes.
	n0 := g.NumNodes()
	ids := make([]ID, len(d.Names))
	var newNames []string
	var newKinds []Kind
	type kindFix struct {
		id ID
		k  Kind
	}
	var kindFixes []kindFix
	next := ID(n0)
	for i, nm := range d.Names {
		if id := g.Lookup(nm); id != Invalid {
			ids[i] = id
			if g.kinds[id] != d.Kinds[i] {
				kindFixes = append(kindFixes, kindFix{id, d.Kinds[i]})
			}
		} else {
			ids[i] = next
			next++
			newNames = append(newNames, nm)
			newKinds = append(newKinds, d.Kinds[i])
		}
	}
	nTotal := int(next)

	// Resolve ops to base-ID space and validate them against the base:
	// removals must exist, additions must not.
	opName := func(i int32) string { return d.Names[i] }
	trDel := make([][3]ID, len(d.TripleDel))
	for i, t := range d.TripleDel {
		s, p, o := ids[t[0]], ids[t[1]], ids[t[2]]
		if int(s) >= n0 || int(p) >= n0 || int(o) >= n0 || !g.HasEdge(s, p, o) {
			return nil, fmt.Errorf("%w: delta removes triple (%s, %s, %s) the base does not assert",
				ErrDeltaBaseMismatch, opName(t[0]), opName(t[1]), opName(t[2]))
		}
		trDel[i] = [3]ID{s, p, o}
	}
	trAdd := make([][3]ID, len(d.TripleAdd))
	for i, t := range d.TripleAdd {
		s, p, o := ids[t[0]], ids[t[1]], ids[t[2]]
		if int(s) < n0 && int(p) < n0 && int(o) < n0 && g.HasEdge(s, p, o) {
			return nil, fmt.Errorf("%w: delta adds triple (%s, %s, %s) the base already asserts",
				ErrDeltaBaseMismatch, opName(t[0]), opName(t[1]), opName(t[2]))
		}
		trAdd[i] = [3]ID{s, p, o}
	}
	resolve2 := func(ops [][2]int32, del bool, direct func(ID) []ID, what string) ([][2]ID, error) {
		out := make([][2]ID, len(ops))
		for i, t := range ops {
			a, b := ids[t[0]], ids[t[1]]
			present := int(a) < n0 && int(b) < n0 && containsID(direct(a), b)
			if del && !present {
				return nil, fmt.Errorf("%w: delta removes %s (%s, %s) the base does not assert",
					ErrDeltaBaseMismatch, what, opName(t[0]), opName(t[1]))
			}
			if !del && present {
				return nil, fmt.Errorf("%w: delta adds %s (%s, %s) the base already asserts",
					ErrDeltaBaseMismatch, what, opName(t[0]), opName(t[1]))
			}
			out[i] = [2]ID{a, b}
		}
		return out, nil
	}
	tyDel, err := resolve2(d.TypeDel, true, g.directTypes, "type assertion")
	if err != nil {
		return nil, err
	}
	tyAdd, err := resolve2(d.TypeAdd, false, g.directTypes, "type assertion")
	if err != nil {
		return nil, err
	}
	sbDel, err := resolve2(d.SubDel, true, g.directSupers, "subclass edge")
	if err != nil {
		return nil, err
	}
	sbAdd, err := resolve2(d.SubAdd, false, g.directSupers, "subclass edge")
	if err != nil {
		return nil, err
	}
	if err := rejectDup3(trDel, "triple removal"); err != nil {
		return nil, err
	}
	if err := rejectDup3(trAdd, "triple addition"); err != nil {
		return nil, err
	}
	for _, l := range []struct {
		ops  [][2]ID
		what string
	}{{tyDel, "type removal"}, {tyAdd, "type addition"}, {sbDel, "subclass removal"}, {sbAdd, "subclass addition"}} {
		if err := rejectDup2(l.ops, l.what); err != nil {
			return nil, err
		}
	}

	ng := &Graph{
		tripleCount:  g.tripleCount - len(trDel) + len(trAdd),
		gen:          g.gen + int64(d.Ops()) + 1,
		literalClass: g.literalClass,
		mapped:       g.mapped,
	}

	// Name storage. A snapshot-form base's blob/offsets/table (possibly
	// mmap'd file pages) are shared verbatim; delta-added nodes go into
	// a small extension — own blob, local offsets, local lookup table —
	// that Name and Lookup consult for IDs past the flat base. A chained
	// base's extension is concatenated into the new one, so the flat
	// arrays always belong to the original snapshot. A mutable base has
	// no snapshot-form name storage at all, so it is built flat once.
	if g.byName != nil {
		var sb strings.Builder
		offs := make([]uint32, nTotal+1)
		grow := blobLen(newNames)
		for _, nm := range g.names {
			grow += len(nm)
		}
		sb.Grow(grow)
		for i, nm := range g.names {
			offs[i] = uint32(sb.Len())
			sb.WriteString(nm)
		}
		offs[n0] = uint32(sb.Len())
		for i, nm := range newNames {
			sb.WriteString(nm)
			offs[n0+1+i] = uint32(sb.Len())
		}
		ng.nameBlob = sb.String()
		ng.nameOffs = offs
		ng.nameTab = newNameTable(nTotal)
		for i := 0; i < nTotal; i++ {
			ng.nameTab.insert(ng.nameBlob[offs[i]:offs[i+1]], ID(i))
		}
	} else {
		ng.nameBlob, ng.nameOffs, ng.nameTab = g.nameBlob, g.nameOffs, g.nameTab
		if len(newNames) == 0 {
			ng.nameExtBlob, ng.nameExtOffs, ng.nameExtTab = g.nameExtBlob, g.nameExtOffs, g.nameExtTab
		} else {
			extOld := 0
			if g.nameExtOffs != nil {
				extOld = len(g.nameExtOffs) - 1
			}
			var sb strings.Builder
			sb.Grow(len(g.nameExtBlob) + blobLen(newNames))
			sb.WriteString(g.nameExtBlob)
			offs := make([]uint32, extOld+len(newNames)+1)
			copy(offs, g.nameExtOffs)
			for i, nm := range newNames {
				sb.WriteString(nm)
				offs[extOld+1+i] = uint32(sb.Len())
			}
			ng.nameExtBlob = sb.String()
			ng.nameExtOffs = offs
			ng.nameExtTab = newNameTable(extOld + len(newNames))
			for i := 0; i < extOld+len(newNames); i++ {
				ng.nameExtTab.insert(ng.nameExtBlob[offs[i]:offs[i+1]], ID(i))
			}
		}
	}
	if len(newNames) == 0 && len(kindFixes) == 0 {
		ng.kinds = g.kinds
	} else {
		kinds := make([]Kind, nTotal)
		copy(kinds, g.kinds)
		copy(kinds[n0:], newKinds)
		for _, f := range kindFixes {
			kinds[f.id] = f.k
		}
		ng.kinds = kinds
	}

	// Edge indexes and pair tables: clone with only touched buckets
	// rewritten.
	outDel := make([]edgePatch, len(trDel))
	inDel := make([]edgePatch, len(trDel))
	spDel := make([]pairPatch, len(trDel))
	poDel := make([]pairPatch, len(trDel))
	for i, t := range trDel {
		outDel[i] = edgePatch{t[0], Edge{Pred: t[1], To: t[2]}}
		inDel[i] = edgePatch{t[2], Edge{Pred: t[1], To: t[0]}}
		spDel[i] = pairPatch{pairKey(t[0], t[1]), t[2]}
		poDel[i] = pairPatch{pairKey(t[1], t[2]), t[0]}
	}
	outAdd := make([]edgePatch, len(trAdd))
	inAdd := make([]edgePatch, len(trAdd))
	spAdd := make([]pairPatch, len(trAdd))
	poAdd := make([]pairPatch, len(trAdd))
	for i, t := range trAdd {
		outAdd[i] = edgePatch{t[0], Edge{Pred: t[1], To: t[2]}}
		inAdd[i] = edgePatch{t[2], Edge{Pred: t[1], To: t[0]}}
		spAdd[i] = pairPatch{pairKey(t[0], t[1]), t[2]}
		poAdd[i] = pairPatch{pairKey(t[1], t[2]), t[0]}
	}
	// The four indexes patch independently — overlay them in parallel,
	// like the snapshot decoder's per-section workers.
	var wg sync.WaitGroup
	var outErr, inErr, spErr, poErr error
	wg.Add(4)
	go func() { defer wg.Done(); ng.out, outErr = cowPatchEdges(&g.out, nTotal, outDel, outAdd) }()
	go func() { defer wg.Done(); ng.in, inErr = cowPatchEdges(&g.in, nTotal, inDel, inAdd) }()
	go func() { defer wg.Done(); ng.sp, spErr = cowPatchPairs(g.sp, spDel, spAdd) }()
	go func() { defer wg.Done(); ng.po, poErr = cowPatchPairs(g.po, poDel, poAdd) }()
	wg.Wait()
	for _, e := range []error{outErr, inErr, spErr, poErr} {
		if e != nil {
			return nil, e
		}
	}

	// Type and taxonomy indexes: shared untouched (with the frozen
	// closures — the dominant share of full-reload cost) when the delta
	// has no type/subclass edits; patched otherwise.
	touchTax := len(tyDel)+len(tyAdd)+len(sbDel)+len(sbAdd) > 0
	if !touchTax {
		if g.byName == nil {
			ng.typesIdx, ng.instOfIdx = g.typesIdx, g.instOfIdx
			ng.superOfIdx, ng.subOfIdx = g.superOfIdx, g.subOfIdx
			ng.nTypeKeys, ng.nInstOfKeys = g.nTypeKeys, g.nInstOfKeys
			ng.nSuperKeys, ng.nSubKeys = g.nSuperKeys, g.nSubKeys
		} else {
			// Mutable base: materialize the snapshot-form tables once
			// (the result graph is always snapshot-form).
			sp, ar, k := canonIDList(n0, g.forEachTyped)
			ng.typesIdx, ng.nTypeKeys = idListIndex{sp, ar}, k
			isp, iar, ik := invertIDList(n0, sp, ar)
			ng.instOfIdx, ng.nInstOfKeys = idListIndex{isp, iar}, ik
			ssp, sar, sk := canonIDList(n0, g.forEachSubclassed)
			ng.superOfIdx, ng.nSuperKeys = idListIndex{ssp, sar}, sk
			bsp, bar, bk := invertIDList(n0, ssp, sar)
			ng.subOfIdx, ng.nSubKeys = idListIndex{bsp, bar}, bk
		}
	} else {
		baseIdx := func(snap *idListIndex, snapKeys int, forEach func(func(ID, []ID))) (idListIndex, int) {
			if g.byName == nil {
				return *snap, snapKeys
			}
			sp, ar, k := canonIDList(n0, forEach)
			return idListIndex{sp, ar}, k
		}
		types, nTypes := baseIdx(&g.typesIdx, g.nTypeKeys, g.forEachTyped)
		instOf, nInstOf := baseIdx(&g.instOfIdx, g.nInstOfKeys, func(f func(ID, []ID)) {
			for k, v := range g.instOf {
				f(k, v)
			}
		})
		superOf, nSuper := baseIdx(&g.superOfIdx, g.nSuperKeys, g.forEachSubclassed)
		subOf, nSub := baseIdx(&g.subOfIdx, g.nSubKeys, func(f func(ID, []ID)) {
			for k, v := range g.subOf {
				f(k, v)
			}
		})
		if ng.typesIdx, ng.nTypeKeys, err = cowPatchIDList(types, nTypes, nTotal,
			fwdPatches(tyDel), fwdPatches(tyAdd)); err != nil {
			return nil, err
		}
		if ng.instOfIdx, ng.nInstOfKeys, err = cowPatchIDList(instOf, nInstOf, nTotal,
			invPatches(tyDel), invPatches(tyAdd)); err != nil {
			return nil, err
		}
		if ng.superOfIdx, ng.nSuperKeys, err = cowPatchIDList(superOf, nSuper, nTotal,
			fwdPatches(sbDel), fwdPatches(sbAdd)); err != nil {
			return nil, err
		}
		if ng.subOfIdx, ng.nSubKeys, err = cowPatchIDList(subOf, nSub, nTotal,
			invPatches(sbDel), invPatches(sbAdd)); err != nil {
			return nil, err
		}
	}
	if !touchTax && !g.closureDirty && g.instClosure != nil {
		// ensureClosures always rebuilds into fresh maps, so the frozen
		// base's closures are safe to share read-only. New nodes are
		// absent from them — exactly the semantics of an untyped node.
		ng.instClosure, ng.typeClosure = g.instClosure, g.typeClosure
	} else {
		ng.closureDirty = true
	}

	preds := make(map[ID]struct{}, len(g.preds)+1)
	for p := range g.preds {
		preds[p] = struct{}{}
	}
	for _, t := range trAdd {
		preds[t[1]] = struct{}{}
	}
	ng.preds = preds

	// Verify the applied content's fingerprint incrementally against
	// the delta's promise. Kind fixes invalidate the term-by-term
	// update (a changed literal-ness alters every triple term naming
	// the node), so that rare case recomputes lazily instead.
	if len(kindFixes) == 0 {
		dnh := make([]uint64, len(d.Names))
		for i, nm := range d.Names {
			dnh[i] = nameHash(nm)
		}
		fp := d.BaseFP
		for _, t := range d.TripleDel {
			fp -= fpTerm(fpTagTriple, dnh[t[0]], dnh[t[1]], dnh[t[2]]+litBit(d.Kinds[t[2]]))
		}
		for _, t := range d.TripleAdd {
			fp += fpTerm(fpTagTriple, dnh[t[0]], dnh[t[1]], dnh[t[2]]+litBit(d.Kinds[t[2]]))
		}
		for _, t := range d.TypeDel {
			fp -= fpTerm(fpTagType, dnh[t[0]], dnh[t[1]], 0)
		}
		for _, t := range d.TypeAdd {
			fp += fpTerm(fpTagType, dnh[t[0]], dnh[t[1]], 0)
		}
		for _, t := range d.SubDel {
			fp -= fpTerm(fpTagSub, dnh[t[0]], dnh[t[1]], 0)
		}
		for _, t := range d.SubAdd {
			fp += fpTerm(fpTagSub, dnh[t[0]], dnh[t[1]], 0)
		}
		if fp != d.NewFP {
			return nil, fmt.Errorf("kb: delta apply fingerprint mismatch: applied content %016x, delta promises %016x", fp, d.NewFP)
		}
		ng.fp.Store(&fpMemo{gen: ng.gen, fp: fp})
	}
	return ng, nil
}

func blobLen(names []string) int {
	n := 0
	for _, nm := range names {
		n += len(nm)
	}
	return n
}

func rejectDup3(ops [][3]ID, what string) error {
	s := append([][3]ID(nil), ops...)
	slices.SortFunc(s, func(a, b [3]ID) int {
		if a[0] != b[0] {
			return int(a[0]) - int(b[0])
		}
		if a[1] != b[1] {
			return int(a[1]) - int(b[1])
		}
		return int(a[2]) - int(b[2])
	})
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return fmt.Errorf("kb: malformed delta: duplicate %s", what)
		}
	}
	return nil
}

func rejectDup2(ops [][2]ID, what string) error {
	s := append([][2]ID(nil), ops...)
	slices.SortFunc(s, func(a, b [2]ID) int {
		if a[0] != b[0] {
			return int(a[0]) - int(b[0])
		}
		return int(a[1]) - int(b[1])
	})
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			return fmt.Errorf("kb: malformed delta: duplicate %s", what)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Patch helpers

// edgePatch is one edge removal or addition keyed by a dense node ID.
type edgePatch struct {
	key ID
	e   Edge
}

// pairPatch is one value removal or addition under a packed pair key.
type pairPatch struct {
	k uint64
	v ID
}

// idPatch is one assertion removal or addition in an ID-list index.
type idPatch struct {
	key, val ID
}

func fwdPatches(ops [][2]ID) []idPatch {
	out := make([]idPatch, len(ops))
	for i, t := range ops {
		out[i] = idPatch{t[0], t[1]}
	}
	return out
}

func invPatches(ops [][2]ID) []idPatch {
	out := make([]idPatch, len(ops))
	for i, t := range ops {
		out[i] = idPatch{t[1], t[0]}
	}
	return out
}

// forEachGroup merge-walks two key-sorted patch lists and calls fn
// once per touched key with that key's removals and additions.
func forEachGroup[T any](del, add []T, key func(T) uint64, fn func(k uint64, dels, adds []T)) {
	di, ai := 0, 0
	for di < len(del) || ai < len(add) {
		var k uint64
		switch {
		case di >= len(del):
			k = key(add[ai])
		case ai >= len(add):
			k = key(del[di])
		case key(del[di]) < key(add[ai]):
			k = key(del[di])
		default:
			k = key(add[ai])
		}
		d0 := di
		for di < len(del) && key(del[di]) == k {
			di++
		}
		a0 := ai
		for ai < len(add) && key(add[ai]) == k {
			ai++
		}
		fn(k, del[d0:di], add[a0:ai])
	}
}

// cmpEdge orders edges canonically by (Pred, To) — the order the v2
// snapshot writer emits, kept by every rewritten bucket.
func cmpEdge(a, b Edge) int {
	if a.Pred != b.Pred {
		if a.Pred < b.Pred {
			return -1
		}
		return 1
	}
	if a.To != b.To {
		if a.To < b.To {
			return -1
		}
		return 1
	}
	return 0
}

func cmpEdgePatch(a, b edgePatch) int {
	if a.key != b.key {
		if a.key < b.key {
			return -1
		}
		return 1
	}
	return cmpEdge(a.e, b.e)
}

func cmpPairPatch(a, b pairPatch) int {
	if a.k != b.k {
		if a.k < b.k {
			return -1
		}
		return 1
	}
	return int(a.v) - int(b.v)
}

func cmpIDPatch(a, b idPatch) int {
	if a.key != b.key {
		return int(a.key) - int(b.key)
	}
	return int(a.val) - int(b.val)
}

// cowPatchEdges layers a copy-on-write overlay over x covering nTotal
// nodes with del removed and add appended. The base span and edge
// arrays — typically mmap'd file pages — are shared verbatim; only the
// touched nodes get rewritten lists, in the overlay's own small arena,
// sorted by (Pred, To) (the canonical order, so snapshot re-encoding of
// the result stays deterministic). A chained base's overlay buckets are
// carried into the new overlay, so the shared arrays always belong to
// the original flat snapshot and a lookup costs at most one overlay
// probe plus one array read. The per-bucket merge runs in place at the
// overlay arena tail: base list plus additions appended, sorted, then
// removals dropped by one linear walk against the del list (sorted the
// same way). When the overlay would shadow a large share of the index,
// the result is flattened instead — past that point the probe on every
// view costs more than the one-time copy.
func cowPatchEdges(x *edgeIndex, nTotal int, del, add []edgePatch) (edgeIndex, error) {
	slices.SortFunc(del, cmpEdgePatch)
	slices.SortFunc(add, cmpEdgePatch)
	ekey := func(p edgePatch) uint64 { return uint64(uint32(p.key)) }
	touched, extra := 0, 0
	forEachGroup(del, add, ekey, func(k uint64, dels, adds []edgePatch) {
		touched++
		extra += len(x.view(ID(uint32(k)))) + len(adds)
	})
	if touched == 0 {
		return edgeIndex{spans: x.spans, edges: x.edges, over: x.over}, nil
	}
	carry := x.over
	carryN := 0
	if carry != nil {
		carryN = carry.used
		extra += len(carry.edges)
	}
	o := newEdgeOverlay(touched+carryN, extra, nTotal)
	var perr error
	forEachGroup(del, add, ekey, func(k uint64, dels, adds []edgePatch) {
		if perr != nil {
			return
		}
		key := ID(uint32(k))
		start := len(o.edges)
		merged, err := patchEdgeList(o.edges, key, x.view(key), dels, adds)
		if err != nil {
			perr = err
			return
		}
		o.edges = merged
		n := uint32(len(merged) - start)
		o.setSpan(key, pairSpan{off: uint32(start), n: n, cap: n})
	})
	if perr != nil {
		return edgeIndex{}, perr
	}
	// Carry the chained base's overlay buckets this delta left alone —
	// their spans point into the old overlay's arena, so the lists are
	// copied (they are small by the same flatten bound below).
	if carry != nil {
		for i, ck := range carry.keys {
			if ck == 0 {
				continue
			}
			key := ID(ck - 1)
			if _, ok := o.find(key); ok {
				continue
			}
			s := carry.spans[i]
			start := len(o.edges)
			o.edges = append(o.edges, carry.edges[s.off:s.off+s.n]...)
			o.setSpan(key, pairSpan{off: uint32(start), n: s.n, cap: s.n})
		}
	}
	if 2*o.used > nTotal {
		return flattenEdgeOverlay(x, o, nTotal), nil
	}
	return edgeIndex{spans: x.spans, edges: x.edges, over: o}, nil
}

// flattenEdgeOverlay folds overlay o over x's arrays into a flat index
// covering nTotal nodes: clone the base arrays, then point each patched
// node at its overlay list re-appended to the arena tail. Content is
// identical to the overlay view; snapshot encoding re-canonicalizes
// arena order anyway (canonEdges), so no per-bucket sort is needed.
func flattenEdgeOverlay(x *edgeIndex, o *edgeOverlay, nTotal int) edgeIndex {
	spans := make([]pairSpan, nTotal)
	copy(spans, x.spans)
	edges := make([]Edge, len(x.edges), len(x.edges)+len(o.edges))
	copy(edges, x.edges)
	for i, k := range o.keys {
		if k == 0 {
			continue
		}
		key := ID(k - 1)
		s := o.spans[i]
		if s.n == 0 {
			spans[key] = pairSpan{}
			continue
		}
		off := uint32(len(edges))
		edges = append(edges, o.edges[s.off:s.off+s.n]...)
		spans[key] = pairSpan{off: off, n: s.n, cap: s.n}
	}
	return edgeIndex{spans: spans, edges: edges}
}

func missingEdgeErr(key ID, p edgePatch) error {
	return fmt.Errorf("kb: delta apply: edge (%d -[%d]-> %d) not present", key, p.e.Pred, p.e.To)
}

// patchEdgeList appends base's list with dels removed and adds woven
// in to dst, in canonical (Pred, To) order. Snapshot-form base lists
// are already canonically sorted and the patch groups arrive sorted
// the same way, so the common case is one linear three-way merge; an
// unsorted base list (a mutable graph feeding its first delta) falls
// back to sort-then-filter.
func patchEdgeList(dst []Edge, key ID, base []Edge, dels, adds []edgePatch) ([]Edge, error) {
	sorted := true
	for i := 1; i < len(base); i++ {
		if cmpEdge(base[i-1], base[i]) > 0 {
			sorted = false
			break
		}
	}
	if sorted {
		bi, di, ai := 0, 0, 0
		for bi < len(base) {
			if di < len(dels) {
				if c := cmpEdge(dels[di].e, base[bi]); c == 0 {
					di++
					bi++
					continue
				} else if c < 0 {
					return dst, missingEdgeErr(key, dels[di])
				}
			}
			if ai < len(adds) && cmpEdge(adds[ai].e, base[bi]) < 0 {
				dst = append(dst, adds[ai].e)
				ai++
				continue
			}
			dst = append(dst, base[bi])
			bi++
		}
		if di < len(dels) {
			return dst, missingEdgeErr(key, dels[di])
		}
		for ; ai < len(adds); ai++ {
			dst = append(dst, adds[ai].e)
		}
		return dst, nil
	}
	start := len(dst)
	dst = append(dst, base...)
	for _, ap := range adds {
		dst = append(dst, ap.e)
	}
	slices.SortFunc(dst[start:], cmpEdge)
	w, di := start, 0
	for r := start; r < len(dst); r++ {
		if di < len(dels) {
			switch c := cmpEdge(dels[di].e, dst[r]); {
			case c == 0:
				di++
				continue
			case c < 0:
				return dst[:start], missingEdgeErr(key, dels[di])
			}
		}
		dst[w] = dst[r]
		w++
	}
	if di < len(dels) {
		return dst[:start], missingEdgeErr(key, dels[di])
	}
	return dst[:w], nil
}

// patchIDValues is patchEdgeList for plain ascending ID value lists —
// the pair-table buckets.
func patchIDValues(dst []ID, k uint64, base []ID, dels, adds []pairPatch) ([]ID, error) {
	missing := func(p pairPatch) error {
		return fmt.Errorf("kb: delta apply: pair value %d not present under key %x", p.v, k)
	}
	sorted := true
	for i := 1; i < len(base); i++ {
		if base[i-1] > base[i] {
			sorted = false
			break
		}
	}
	if sorted {
		bi, di, ai := 0, 0, 0
		for bi < len(base) {
			if di < len(dels) {
				if v := dels[di].v; v == base[bi] {
					di++
					bi++
					continue
				} else if v < base[bi] {
					return dst, missing(dels[di])
				}
			}
			if ai < len(adds) && adds[ai].v < base[bi] {
				dst = append(dst, adds[ai].v)
				ai++
				continue
			}
			dst = append(dst, base[bi])
			bi++
		}
		if di < len(dels) {
			return dst, missing(dels[di])
		}
		for ; ai < len(adds); ai++ {
			dst = append(dst, adds[ai].v)
		}
		return dst, nil
	}
	start := len(dst)
	dst = append(dst, base...)
	for _, ap := range adds {
		dst = append(dst, ap.v)
	}
	slices.Sort(dst[start:])
	w, di := start, 0
	for r := start; r < len(dst); r++ {
		if di < len(dels) {
			switch {
			case dels[di].v == dst[r]:
				di++
				continue
			case dels[di].v < dst[r]:
				return dst[:start], missing(dels[di])
			}
		}
		dst[w] = dst[r]
		w++
	}
	if di < len(dels) {
		return dst[:start], missing(dels[di])
	}
	return dst[:w], nil
}

// cowPatchPairs layers a copy-on-write overlay over t with del removed
// and add appended. The flat base's slot arrays and arena — typically
// mmap'd file pages — are shared by reference (pairTable.base); the
// overlay's own small table holds only the touched keys, each rewritten
// ascending in the overlay arena by the same in-place tail merge as
// cowPatchEdges. A key whose list empties stays present with a
// zero-length span, masking the base bucket — get answers nil for it.
// A chained base's overlay buckets are carried so the chain never
// deepens past one, and an overlay that would shadow a large share of
// the base is flattened instead.
func cowPatchPairs(t *pairTable, del, add []pairPatch) (*pairTable, error) {
	slices.SortFunc(del, cmpPairPatch)
	slices.SortFunc(add, cmpPairPatch)
	pkey := func(p pairPatch) uint64 { return p.k }
	flat := t
	if t.base != nil {
		flat = t.base
	}
	touched, extra, lenDelta := 0, 0, 0
	forEachGroup(del, add, pkey, func(k uint64, dels, adds []pairPatch) {
		touched++
		before := len(t.get(k))
		extra += before + len(adds)
		after := before + len(adds) - len(dels)
		if before == 0 && after > 0 {
			lenDelta++
		}
		if before > 0 && after <= 0 {
			lenDelta--
		}
	})
	if touched == 0 {
		return t, nil
	}
	carryN := 0
	if t.base != nil {
		carryN = t.used
		extra += len(t.ids)
	}
	size := 8
	for 3*size < 4*(touched+carryN) {
		size *= 2
	}
	nt := &pairTable{
		keys:     make([]uint64, size),
		spans:    make([]pairSpan, size),
		ids:      make([]ID, 0, extra),
		shift:    64 - log2(size),
		base:     flat,
		lenTotal: t.len() + lenDelta,
	}
	var perr error
	forEachGroup(del, add, pkey, func(k uint64, dels, adds []pairPatch) {
		if perr != nil {
			return
		}
		start := len(nt.ids)
		merged, err := patchIDValues(nt.ids, k, t.get(k), dels, adds)
		if err != nil {
			perr = err
			return
		}
		nt.ids = merged
		slot, _ := nt.find(k)
		nt.keys[slot] = k
		nt.used++
		n := uint32(len(merged) - start)
		nt.spans[slot] = pairSpan{off: uint32(start), n: n, cap: n}
	})
	if perr != nil {
		return nil, perr
	}
	// Carry the chained base's overlay buckets this delta left alone.
	if t.base != nil {
		for i, ck := range t.keys {
			if ck == 0 {
				continue
			}
			if _, ok := nt.find(ck); ok {
				continue
			}
			s := t.spans[i]
			start := len(nt.ids)
			nt.ids = append(nt.ids, t.ids[s.off:s.off+s.n]...)
			slot, _ := nt.find(ck)
			nt.keys[slot] = ck
			nt.used++
			nt.spans[slot] = pairSpan{off: uint32(start), n: s.n, cap: s.n}
		}
	}
	if 2*nt.used > flat.used {
		return flattenPairOverlay(nt), nil
	}
	return nt, nil
}

// flattenPairOverlay folds overlay nt into a flat table by cloning its
// base's arrays and rewriting only the patched buckets at the arena
// tail. Slot placement is the base's, not canonical insertion order —
// get-content identical, and snapshot encoding re-canonicalizes via
// canonPairTable. An emptied bucket keeps its slot with a zero-length
// span, which get answers nil for.
func flattenPairOverlay(nt *pairTable) *pairTable {
	f := nt.base
	size := len(f.keys)
	for 4*(f.used+nt.used) > 3*size {
		size *= 2
	}
	ft := &pairTable{used: f.used}
	if size == len(f.keys) {
		ft.keys = append([]uint64(nil), f.keys...)
		ft.spans = append([]pairSpan(nil), f.spans...)
		ft.shift = f.shift
	} else {
		ft.keys = make([]uint64, size)
		ft.spans = make([]pairSpan, size)
		ft.shift = 64 - log2(size)
		mask := size - 1
		for i, k := range f.keys {
			if k == 0 {
				continue
			}
			j := ft.slot(k)
			for ft.keys[j] != 0 {
				j = (j + 1) & mask
			}
			ft.keys[j] = k
			ft.spans[j] = f.spans[i]
		}
	}
	ft.ids = make([]ID, len(f.ids), len(f.ids)+len(nt.ids))
	copy(ft.ids, f.ids)
	for i, k := range nt.keys {
		if k == 0 {
			continue
		}
		s := nt.spans[i]
		slot, ok := ft.find(k)
		if !ok {
			ft.keys[slot] = k
			ft.used++
		}
		if s.n == 0 {
			ft.spans[slot] = pairSpan{}
			continue
		}
		off := uint32(len(ft.ids))
		ft.ids = append(ft.ids, nt.ids[s.off:s.off+s.n]...)
		ft.spans[slot] = pairSpan{off: off, n: s.n, cap: s.n}
	}
	return ft
}

// cowPatchIDList builds a copy of x covering nTotal keys with del
// removed and add appended, returning the patched index and its new
// non-empty key count. Touched lists are rewritten ascending at the
// arena tail by the same in-place merge.
func cowPatchIDList(x idListIndex, baseKeys, nTotal int, del, add []idPatch) (idListIndex, int, error) {
	slices.SortFunc(del, cmpIDPatch)
	slices.SortFunc(add, cmpIDPatch)
	ikey := func(p idPatch) uint64 { return uint64(uint32(p.key)) }
	extra := 0
	forEachGroup(del, add, ikey, func(k uint64, dels, adds []idPatch) {
		extra += len(x.view(ID(uint32(k)))) + len(adds)
	})
	spans := make([]pairSpan, nTotal)
	copy(spans, x.spans)
	ids := make([]ID, len(x.ids), len(x.ids)+extra)
	copy(ids, x.ids)
	keys := baseKeys
	var perr error
	forEachGroup(del, add, ikey, func(k uint64, dels, adds []idPatch) {
		if perr != nil {
			return
		}
		key := ID(uint32(k))
		nOld := len(x.view(key))
		start := len(ids)
		ids = append(ids, x.view(key)...)
		for _, ap := range adds {
			ids = append(ids, ap.val)
		}
		tail := ids[start:]
		slices.Sort(tail)
		w, di := start, 0
		for r := start; r < len(ids); r++ {
			if di < len(dels) {
				switch {
				case dels[di].val == ids[r]:
					di++
					continue
				case dels[di].val < ids[r]:
					perr = fmt.Errorf("kb: delta apply: assertion (%d, %d) not present", key, dels[di].val)
					return
				}
			}
			ids[w] = ids[r]
			w++
		}
		if di < len(dels) {
			perr = fmt.Errorf("kb: delta apply: assertion (%d, %d) not present", key, dels[di].val)
			return
		}
		ids = ids[:w]
		if nOld == 0 && w > start {
			keys++
		}
		if nOld > 0 && w == start {
			keys--
		}
		spans[key] = pairSpan{off: uint32(start), n: uint32(w - start), cap: uint32(w - start)}
	})
	if perr != nil {
		return idListIndex{}, 0, perr
	}
	return idListIndex{spans: spans, ids: ids}, keys, nil
}
