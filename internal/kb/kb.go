// Package kb implements an in-memory RDF-style knowledge graph, the
// substrate that detective rules draw evidence from. It models the
// fragment of RDFS the paper relies on: classes, instances, literals,
// relationships (instance→instance edges) and properties
// (instance→literal edges), plus a subClassOf taxonomy.
//
// All node names are interned to dense int32 IDs so that the indexes
// used by rule matching (type index, subject–predicate index,
// predicate–object index) are cheap maps over small keys. The store is
// append-only: triples can be added at any time, and derived closures
// (transitive class membership) are recomputed lazily.
package kb

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// ID is a dense interned identifier for a node (instance, class or
// literal) or a predicate in the graph. The zero graph has no valid
// IDs; Invalid is returned by lookups that miss.
type ID int32

// Invalid is the sentinel returned when a name is not in the graph.
const Invalid ID = -1

// Kind classifies a node.
type Kind uint8

const (
	// KindUnknown marks nodes seen only as predicate labels or not yet
	// classified.
	KindUnknown Kind = iota
	// KindInstance is an entity, e.g. "Avram Hershko".
	KindInstance
	// KindClass is a concept, e.g. "city".
	KindClass
	// KindLiteral is a string/date/number value, e.g. "1937-12-31".
	KindLiteral
)

func (k Kind) String() string {
	switch k {
	case KindInstance:
		return "instance"
	case KindClass:
		return "class"
	case KindLiteral:
		return "literal"
	default:
		return "unknown"
	}
}

// Edge is one outgoing (or incoming) labelled edge of a node.
type Edge struct {
	Pred ID // relationship or property label
	To   ID // the other endpoint
}

// Graph is an in-memory RDF graph with the indexes rule matching
// needs. It is not safe for concurrent mutation; concurrent reads are
// safe once loading has finished and Freeze has been called (or after
// any read has forced the lazy closures).
//
// A graph has one of two storage forms. Mutable graphs (built by New,
// Parse or the v1 snapshot decoder) keep names and assertions in Go
// maps and accept Add* calls. Snapshot-backed graphs (loaded from a
// DKBS v2 file, possibly mmap'd in place) keep the same data in
// pointer-free arenas — nameBlob/nameOffs/nameTab for the name table,
// idListIndex span tables for the type and taxonomy assertions — and
// are read-only: every mutator panics. All read accessors pick the
// live form, so the two storages are indistinguishable to callers.
type Graph struct {
	names  []string
	byName map[string]ID
	kinds  []Kind

	types   map[ID][]ID // instance -> direct classes
	superOf map[ID][]ID // class -> direct superclasses
	subOf   map[ID][]ID // class -> direct subclasses
	instOf  map[ID][]ID // class -> direct instances

	// Snapshot-backed forms of the name table and assertion maps
	// (see snapshot2.go). Valid iff byName == nil.
	nameBlob                                     string    // concatenated name bytes
	nameOffs                                     []uint32  // node i's name = nameBlob[nameOffs[i]:nameOffs[i+1]]
	nameTab                                      nameTable // open-addressing name -> ID index
	nameExtBlob                                  string    // names of delta-added nodes (see delta.go)
	nameExtOffs                                  []uint32  // local offsets; node len(nameOffs)-1+i = nameExtBlob[nameExtOffs[i]:nameExtOffs[i+1]]
	nameExtTab                                   nameTable // name -> LOCAL ext index (global = local + len(nameOffs)-1)
	typesIdx, instOfIdx, superOfIdx, subOfIdx    idListIndex
	nTypeKeys, nInstOfKeys, nSuperKeys, nSubKeys int
	mapped                                       *mapping // non-nil when the arenas live in an mmap'd file

	out edgeIndex  // subject -> outgoing edges
	in  edgeIndex  // object -> incoming edges
	sp  *pairTable // (subject, predicate) -> objects
	po  *pairTable // (predicate, object) -> subjects

	preds       map[ID]struct{}
	tripleCount int
	gen         int64 // content mutations; see Generation

	closureDirty bool
	instClosure  map[ID][]ID        // class -> all instances (incl. via subclasses)
	typeClosure  map[ID]map[ID]bool // instance -> all classes (incl. superclasses)
	literalClass ID                 // interned "literal" pseudo-class

	fp atomic.Pointer[fpMemo] // cached content fingerprint; see delta.go
}

// LiteralClass is the reserved type name that matches any literal
// node, mirroring the paper's "type: literal" rule nodes.
const LiteralClass = "literal"

// New returns an empty graph.
func New() *Graph {
	g := &Graph{
		byName:  make(map[string]ID),
		types:   make(map[ID][]ID),
		superOf: make(map[ID][]ID),
		subOf:   make(map[ID][]ID),
		instOf:  make(map[ID][]ID),
		sp:      newPairTable(0, 0),
		po:      newPairTable(0, 0),
		preds:   make(map[ID]struct{}),
	}
	g.literalClass = g.intern(LiteralClass, KindClass)
	return g
}

// mustMutable panics when the graph is snapshot-backed: its arenas may
// be mmap'd read-only file pages, so in-place mutation is both a
// correctness and a memory-safety error. Load through the v1 decoder
// (or rebuild via Encode + Parse) to get a mutable copy.
func (g *Graph) mustMutable() {
	if g.byName == nil {
		panic("kb: graph is read-only (loaded from a DKBS v2 snapshot); re-parse its text encoding to mutate")
	}
}

// ReadOnly reports whether the graph is snapshot-backed and therefore
// rejects mutation.
func (g *Graph) ReadOnly() bool { return g.byName == nil }

// intern returns the ID for name, creating it with the given kind if
// absent. If the node exists with KindUnknown, the kind is upgraded.
func (g *Graph) intern(name string, kind Kind) ID {
	g.mustMutable()
	if id, ok := g.byName[name]; ok {
		if g.kinds[id] == KindUnknown && kind != KindUnknown {
			g.kinds[id] = kind
		}
		return id
	}
	id := ID(len(g.names))
	g.names = append(g.names, name)
	g.kinds = append(g.kinds, kind)
	g.out.addNode()
	g.in.addNode()
	g.byName[name] = id
	g.gen++
	return id
}

// Intern interns name as an instance node and returns its ID.
func (g *Graph) Intern(name string) ID { return g.intern(name, KindInstance) }

// InternLiteral interns name as a literal node and returns its ID.
func (g *Graph) InternLiteral(name string) ID { return g.intern(name, KindLiteral) }

// InternClass interns name as a class node and returns its ID.
func (g *Graph) InternClass(name string) ID { return g.intern(name, KindClass) }

// InternPred interns name as a predicate label and returns its ID.
func (g *Graph) InternPred(name string) ID {
	id := g.intern(name, KindUnknown)
	g.preds[id] = struct{}{}
	return id
}

// Lookup returns the ID of name, or Invalid if the graph has never
// seen it.
func (g *Graph) Lookup(name string) ID {
	if g.byName != nil {
		if id, ok := g.byName[name]; ok {
			return id
		}
		return Invalid
	}
	if id := g.nameTab.lookup(g.nameBlob, g.nameOffs, name); id != Invalid {
		return id
	}
	if g.nameExtOffs != nil {
		if local := g.nameExtTab.lookup(g.nameExtBlob, g.nameExtOffs, name); local != Invalid {
			return local + ID(len(g.nameOffs)-1)
		}
	}
	return Invalid
}

// Name returns the string form of id. It panics on Invalid.
func (g *Graph) Name(id ID) string {
	if g.names != nil {
		return g.names[id]
	}
	if base := len(g.nameOffs) - 1; int(id) >= base {
		local := int(id) - base
		return g.nameExtBlob[g.nameExtOffs[local]:g.nameExtOffs[local+1]]
	}
	return g.nameBlob[g.nameOffs[id]:g.nameOffs[id+1]]
}

// KindOf reports the kind of id.
func (g *Graph) KindOf(id ID) Kind { return g.kinds[id] }

// NumNodes returns the number of interned nodes (including predicates
// and the reserved literal class).
func (g *Graph) NumNodes() int { return len(g.kinds) }

// NumTriples returns the number of relationship/property triples added
// (type and subclass assertions are not counted).
func (g *Graph) NumTriples() int { return g.tripleCount }

// NumClasses returns the number of class nodes, excluding the reserved
// "literal" pseudo-class.
func (g *Graph) NumClasses() int {
	n := 0
	for id, k := range g.kinds {
		if k == KindClass && ID(id) != g.literalClass {
			n++
		}
	}
	return n
}

// Predicates returns all predicate IDs in deterministic order.
func (g *Graph) Predicates() []ID {
	out := make([]ID, 0, len(g.preds))
	for p := range g.preds {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumPredicates returns the number of distinct relationship/property
// labels.
func (g *Graph) NumPredicates() int { return len(g.preds) }

// Generation counts content mutations (triples, type and subclass
// assertions, new interned nodes). It identifies the graph's content
// for derived-structure invalidation: once loading is done and Freeze
// has been called, the generation is stable, so caches keyed on it
// never go stale under the concurrent-read contract.
func (g *Graph) Generation() int64 { return g.gen }

// AddTriple records the triple (s, p, o) with o an instance. Both
// endpoints and the predicate are interned on demand.
func (g *Graph) AddTriple(s, p, o string) {
	g.AddTripleID(g.Intern(s), g.InternPred(p), g.Intern(o))
}

// AddPropertyTriple records the triple (s, p, o) with o a literal.
func (g *Graph) AddPropertyTriple(s, p, o string) {
	g.AddTripleID(g.Intern(s), g.InternPred(p), g.InternLiteral(o))
}

// AddTripleID records the triple (s, p, o) over already-interned IDs.
// Duplicate triples are ignored.
func (g *Graph) AddTripleID(s, p, o ID) {
	g.mustMutable()
	key := pairKey(s, p)
	for _, ex := range g.sp.get(key) {
		if ex == o {
			return
		}
	}
	g.out.add(s, Edge{Pred: p, To: o})
	g.in.add(o, Edge{Pred: p, To: s})
	g.sp.add(key, o)
	g.po.add(pairKey(p, o), s)
	g.preds[p] = struct{}{}
	g.tripleCount++
	g.gen++
}

// AddType asserts that instance inst has class cls.
func (g *Graph) AddType(inst, cls string) {
	g.AddTypeID(g.Intern(inst), g.InternClass(cls))
}

// AddTypeID asserts type membership over interned IDs.
func (g *Graph) AddTypeID(inst, cls ID) {
	g.mustMutable()
	for _, c := range g.types[inst] {
		if c == cls {
			return
		}
	}
	g.types[inst] = append(g.types[inst], cls)
	g.instOf[cls] = append(g.instOf[cls], inst)
	g.closureDirty = true
	g.gen++
}

// AddSubclass asserts sub ⊆ super in the taxonomy.
func (g *Graph) AddSubclass(sub, super string) {
	g.AddSubclassID(g.InternClass(sub), g.InternClass(super))
}

// AddSubclassID asserts the subclass edge over interned IDs.
func (g *Graph) AddSubclassID(sub, super ID) {
	g.mustMutable()
	for _, s := range g.superOf[sub] {
		if s == super {
			return
		}
	}
	g.superOf[sub] = append(g.superOf[sub], super)
	g.subOf[super] = append(g.subOf[super], sub)
	g.closureDirty = true
	g.gen++
}

// Objects returns all o with (s, p, o) in the graph. The returned
// slice is shared; callers must not mutate it.
func (g *Graph) Objects(s, p ID) []ID { return g.sp.get(pairKey(s, p)) }

// Subjects returns all s with (s, p, o) in the graph. The returned
// slice is shared; callers must not mutate it.
func (g *Graph) Subjects(p, o ID) []ID { return g.po.get(pairKey(p, o)) }

// HasEdge reports whether the triple (s, p, o) is in the graph.
func (g *Graph) HasEdge(s, p, o ID) bool {
	for _, x := range g.sp.get(pairKey(s, p)) {
		if x == o {
			return true
		}
	}
	return false
}

// Out returns the outgoing edges of s (shared slice). Like a map
// lookup, out-of-range IDs (e.g. Invalid) yield nil.
func (g *Graph) Out(s ID) []Edge { return g.out.view(s) }

// In returns the incoming edges of o (shared slice). Like a map
// lookup, out-of-range IDs (e.g. Invalid) yield nil.
func (g *Graph) In(o ID) []Edge { return g.in.view(o) }

// DirectTypes returns the directly asserted classes of inst (shared
// slice).
func (g *Graph) DirectTypes(inst ID) []ID { return g.directTypes(inst) }

// The direct* accessors bridge the two storage forms: Go maps on
// mutable graphs, span-table views on snapshot-backed ones.

func (g *Graph) directTypes(inst ID) []ID {
	if g.byName != nil {
		return g.types[inst]
	}
	return g.typesIdx.view(inst)
}

func (g *Graph) directInstances(cls ID) []ID {
	if g.byName != nil {
		return g.instOf[cls]
	}
	return g.instOfIdx.view(cls)
}

func (g *Graph) directSupers(cls ID) []ID {
	if g.byName != nil {
		return g.superOf[cls]
	}
	return g.superOfIdx.view(cls)
}

func (g *Graph) directSubs(cls ID) []ID {
	if g.byName != nil {
		return g.subOf[cls]
	}
	return g.subOfIdx.view(cls)
}

// numTypeKeys etc. report how many keys carry at least one assertion —
// the map lengths of the mutable form, needed for exact presizing by
// the closures and the snapshot writers.

func (g *Graph) numTypeKeys() int {
	if g.byName != nil {
		return len(g.types)
	}
	return g.nTypeKeys
}

func (g *Graph) numInstOfKeys() int {
	if g.byName != nil {
		return len(g.instOf)
	}
	return g.nInstOfKeys
}

func (g *Graph) numSuperKeys() int {
	if g.byName != nil {
		return len(g.superOf)
	}
	return g.nSuperKeys
}

func (g *Graph) numSubKeys() int {
	if g.byName != nil {
		return len(g.subOf)
	}
	return g.nSubKeys
}

// forEachTyped calls fn once per instance with at least one directly
// asserted class, in unspecified order.
func (g *Graph) forEachTyped(fn func(inst ID, classes []ID)) {
	if g.byName != nil {
		for inst, classes := range g.types {
			fn(inst, classes)
		}
		return
	}
	for i := range g.typesIdx.spans {
		if vs := g.typesIdx.view(ID(i)); len(vs) > 0 {
			fn(ID(i), vs)
		}
	}
}

// forEachSubclassed calls fn once per class with at least one direct
// superclass, in unspecified order.
func (g *Graph) forEachSubclassed(fn func(sub ID, supers []ID)) {
	if g.byName != nil {
		for sub, supers := range g.superOf {
			fn(sub, supers)
		}
		return
	}
	for i := range g.superOfIdx.spans {
		if vs := g.superOfIdx.view(ID(i)); len(vs) > 0 {
			fn(ID(i), vs)
		}
	}
}

// Freeze forces recomputation of the lazy closures. Calling it after
// bulk loading makes subsequent reads safe for concurrent use.
func (g *Graph) Freeze() { g.ensureClosures() }

func (g *Graph) ensureClosures() {
	if !g.closureDirty && g.instClosure != nil {
		return
	}
	g.instClosure = make(map[ID][]ID, g.numInstOfKeys())
	g.typeClosure = make(map[ID]map[ID]bool, g.numTypeKeys())

	// For every instance, walk its direct types up the taxonomy.
	g.forEachTyped(func(inst ID, direct []ID) {
		all := make(map[ID]bool, len(direct)*2)
		var stack []ID
		stack = append(stack, direct...)
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if all[c] {
				continue
			}
			all[c] = true
			stack = append(stack, g.directSupers(c)...)
		}
		g.typeClosure[inst] = all
		for c := range all {
			g.instClosure[c] = append(g.instClosure[c], inst)
		}
	})
	for c := range g.instClosure {
		s := g.instClosure[c]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	g.closureDirty = false
}

// InstancesOf returns every instance whose type closure contains cls,
// i.e. direct members plus members of all (transitive) subclasses.
// For the reserved "literal" class it returns every literal node.
// The returned slice is shared; callers must not mutate it.
func (g *Graph) InstancesOf(cls ID) []ID {
	if cls == g.literalClass {
		return g.literals()
	}
	g.ensureClosures()
	return g.instClosure[cls]
}

var literalCacheKey = struct{}{}

func (g *Graph) literals() []ID {
	// Literals are rare query targets; scan on demand.
	var out []ID
	for id, k := range g.kinds {
		if k == KindLiteral {
			out = append(out, ID(id))
		}
	}
	_ = literalCacheKey
	return out
}

// HasType reports whether inst is a (transitive) member of cls. Any
// literal node is a member of the reserved "literal" class.
func (g *Graph) HasType(inst, cls ID) bool {
	if cls == g.literalClass {
		return g.kinds[inst] == KindLiteral
	}
	g.ensureClosures()
	return g.typeClosure[inst][cls]
}

// TypesOf returns every class inst belongs to, including superclasses
// through the taxonomy, in ascending ID order. Literals yield only the
// reserved "literal" class.
func (g *Graph) TypesOf(inst ID) []ID {
	if g.kinds[inst] == KindLiteral {
		return []ID{g.literalClass}
	}
	g.ensureClosures()
	set := g.typeClosure[inst]
	out := make([]ID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subclasses returns the direct subclasses of cls (shared slice).
func (g *Graph) Subclasses(cls ID) []ID { return g.directSubs(cls) }

// Superclasses returns the direct superclasses of cls (shared slice).
func (g *Graph) Superclasses(cls ID) []ID { return g.directSupers(cls) }

// TaxonomyDepth returns the length of the longest superclass chain
// starting at cls (0 for a root class). It is used only for KB
// statistics and must be called on an acyclic taxonomy.
func (g *Graph) TaxonomyDepth(cls ID) int {
	best := 0
	for _, s := range g.directSupers(cls) {
		if d := g.TaxonomyDepth(s) + 1; d > best {
			best = d
		}
	}
	return best
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("kb.Graph{nodes=%d classes=%d preds=%d triples=%d}",
		g.NumNodes(), g.NumClasses(), g.NumPredicates(), g.NumTriples())
}
