package kb

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a knowledge graph — the per-KB numbers reported
// when loading Yago/DBpedia-style builds (instance/class/relationship
// counts, taxonomy depth, degree distribution).
type Stats struct {
	Instances  int
	Literals   int
	Classes    int
	Predicates int
	Triples    int
	// TypeAssertions counts instance-class memberships (direct only).
	TypeAssertions int
	// SubclassAssertions counts direct subclass edges.
	SubclassAssertions int
	// MaxTaxonomyDepth is the longest superclass chain.
	MaxTaxonomyDepth int
	// AvgOutDegree is the mean number of outgoing edges per subject.
	AvgOutDegree float64
	// LargestClasses lists the biggest class extents, descending.
	LargestClasses []ClassSize
}

// ClassSize pairs a class name with its (transitive) extent size.
type ClassSize struct {
	Class string
	Size  int
}

// ComputeStats walks the graph once and returns its statistics. topN
// bounds LargestClasses (0 = none).
func (g *Graph) ComputeStats(topN int) Stats {
	s := Stats{
		Predicates: g.NumPredicates(),
		Triples:    g.NumTriples(),
	}
	for id, k := range g.kinds {
		switch k {
		case KindInstance:
			s.Instances++
		case KindLiteral:
			s.Literals++
		case KindClass:
			if ID(id) != g.literalClass {
				s.Classes++
			}
		}
	}
	g.forEachTyped(func(_ ID, classes []ID) {
		s.TypeAssertions += len(classes)
	})
	subjects := 0
	for i := 0; i < g.NumNodes(); i++ {
		if len(g.out.view(ID(i))) > 0 {
			subjects++
		}
	}
	if subjects > 0 {
		s.AvgOutDegree = float64(g.tripleCount) / float64(subjects)
	}
	var classes []ID
	for id, k := range g.kinds {
		if k == KindClass && ID(id) != g.literalClass {
			classes = append(classes, ID(id))
		}
	}
	for _, c := range classes {
		s.SubclassAssertions += len(g.directSupers(c))
		if d := g.TaxonomyDepth(c); d > s.MaxTaxonomyDepth {
			s.MaxTaxonomyDepth = d
		}
	}
	if topN > 0 {
		g.ensureClosures()
		sizes := make([]ClassSize, 0, len(classes))
		for _, c := range classes {
			sizes = append(sizes, ClassSize{Class: g.Name(c), Size: len(g.InstancesOf(c))})
		}
		sort.Slice(sizes, func(i, j int) bool {
			if sizes[i].Size != sizes[j].Size {
				return sizes[i].Size > sizes[j].Size
			}
			return sizes[i].Class < sizes[j].Class
		})
		if len(sizes) > topN {
			sizes = sizes[:topN]
		}
		s.LargestClasses = sizes
	}
	return s
}

// String renders the statistics for humans.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instances=%d literals=%d classes=%d predicates=%d triples=%d types=%d subclasses=%d depth=%d avg-out=%.1f",
		s.Instances, s.Literals, s.Classes, s.Predicates, s.Triples,
		s.TypeAssertions, s.SubclassAssertions, s.MaxTaxonomyDepth, s.AvgOutDegree)
	if len(s.LargestClasses) > 0 {
		b.WriteString(" largest=")
		for i, c := range s.LargestClasses {
			if i > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, "%s:%d", c.Class, c.Size)
		}
	}
	return b.String()
}
