package kb

// pairTable is a minimal open-addressing hash table from a packed
// (ID, ID) key to a list of IDs — the backing store of the
// subject–predicate and predicate–object indexes. The generic Go map
// was the single largest cost of loading a snapshot (one mapassign
// per distinct pair); this table replaces it with Fibonacci hashing
// over a power-of-two array and linear probing, which builds several
// times faster and looks up at least as fast on the hot match path.
//
// The table is deliberately pointer-free: values are {offset, length,
// capacity} spans into one table-owned []ID arena, so the garbage
// collector never scans or write-barriers it — on the machines this
// serves, GC traffic over a slice-of-slices value array was a
// measurable share of snapshot load time. Incremental appends
// (AddTripleID) relocate a full span to the arena tail with doubled
// capacity, amortizing to O(1) per added ID like a built-in slice.
//
// Invariants: the high word of a packed key is biased by +1, so no
// valid key is zero and keys[i] == 0 marks a free slot — probes scan
// only the flat uint64 key array. Load factor is kept at or below
// 3/4; Fibonacci hashing spreads the packed keys well enough that
// probe chains stay short, and the smaller arrays are less memory to
// zero on allocation.

const pairHashMult = 0x9E3779B97F4A7C15 // 2^64 / golden ratio

// pairKey packs two dense IDs into one 64-bit key, biased so the
// result is never zero.
func pairKey(a, b ID) uint64 {
	return (uint64(uint32(a))+1)<<32 | uint64(uint32(b))
}

// pairSpan locates one value list inside the table's arena. Dead
// ranges left behind by relocation are never reused; the arena only
// ever grows, so spans handed out by get stay valid forever.
type pairSpan struct {
	off, n, cap uint32
}

type pairTable struct {
	keys  []uint64
	spans []pairSpan
	ids   []ID // arena; spans index into it
	used  int
	shift uint

	// base makes this table a copy-on-write overlay (see delta.go):
	// the local arrays hold only the buckets a delta rewrote, and
	// probes that miss locally fall through to the shared base table.
	// An overlay's base is always flat (never itself an overlay), so
	// lookups cost at most two probes. A locally present key with a
	// zero-length span masks a base bucket that the delta emptied.
	// Overlay tables are read-only: put/add/grow must never run on
	// them (Graph-level mustMutable guarantees it).
	base *pairTable
	// lenTotal is the chain-wide count of keys with at least one value
	// (only meaningful when base != nil; flat tables count via used).
	lenTotal int
}

// newPairTable returns a table presized for n entries and idCap arena
// IDs without growth.
func newPairTable(n, idCap int) *pairTable {
	size := 8
	for 3*size < 4*n {
		size *= 2
	}
	t := &pairTable{
		keys:  make([]uint64, size),
		spans: make([]pairSpan, size),
		ids:   make([]ID, 0, idCap),
	}
	t.shift = 64 - log2(size)
	return t
}

func log2(pow2 int) uint {
	var l uint
	for 1<<l < pow2 {
		l++
	}
	return l
}

func (t *pairTable) len() int {
	if t.base != nil {
		return t.lenTotal
	}
	return t.used
}

func (t *pairTable) slot(k uint64) int {
	return int((k * pairHashMult) >> t.shift)
}

// get returns the value list stored under k, or nil. The slice is a
// capped view into the arena: appends by callers cannot bleed into
// neighbouring spans.
func (t *pairTable) get(k uint64) []ID {
	mask := len(t.keys) - 1
	for i := t.slot(k); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			s := t.spans[i]
			return t.ids[s.off : s.off+s.n : s.off+s.n]
		case 0:
			if t.base != nil {
				return t.base.get(k)
			}
			return nil
		}
	}
}

// forEachKey calls fn once for every key with at least one value,
// walking the overlay chain without double-reporting patched buckets.
// Order is unspecified.
func (t *pairTable) forEachKey(fn func(k uint64)) {
	for i, k := range t.keys {
		if k != 0 && t.spans[i].n > 0 {
			fn(k)
		}
	}
	if t.base == nil {
		return
	}
	t.base.forEachKey(func(k uint64) {
		if _, ok := t.find(k); !ok {
			fn(k)
		}
	})
}

// find probes this table's own arrays for k (it does not follow base)
// and returns the slot it occupies, or — when absent — the free slot a
// subsequent insert of k must claim. The caller must keep the table
// below full load before inserting into a free slot.
func (t *pairTable) find(k uint64) (slot int, ok bool) {
	mask := len(t.keys) - 1
	for i := t.slot(k); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case k:
			return i, true
		case 0:
			return i, false
		}
	}
}

// put stores v (which must be non-empty) under k, which must not be
// present yet — the snapshot decoder's bulk-build path.
func (t *pairTable) put(k uint64, v []ID) {
	if 4*(t.used+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := len(t.keys) - 1
	i := t.slot(k)
	for t.keys[i] != 0 {
		i = (i + 1) & mask
	}
	t.keys[i] = k
	off := uint32(len(t.ids))
	t.ids = append(t.ids, v...)
	t.spans[i] = pairSpan{off: off, n: uint32(len(v)), cap: uint32(len(v))}
	t.used++
}

// add appends v to the value list stored under k, creating the entry
// if absent.
func (t *pairTable) add(k uint64, v ID) {
	if 4*(t.used+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := len(t.keys) - 1
	i := t.slot(k)
	for {
		switch t.keys[i] {
		case 0:
			t.keys[i] = k
			t.spans[i] = pairSpan{off: uint32(len(t.ids)), n: 1, cap: 1}
			t.ids = append(t.ids, v)
			t.used++
			return
		case k:
			s := t.spans[i]
			if s.n < s.cap {
				t.ids[s.off+s.n] = v
				t.spans[i].n++
				return
			}
			// Relocate to the arena tail with doubled capacity; the
			// old range is dead but spans already handed out by get
			// keep reading the old values.
			off := uint32(len(t.ids))
			t.ids = append(t.ids, t.ids[s.off:s.off+s.n]...)
			t.ids = append(t.ids, v)
			for j := s.n + 1; j < 2*s.cap; j++ {
				t.ids = append(t.ids, 0)
			}
			t.spans[i] = pairSpan{off: off, n: s.n + 1, cap: 2 * s.cap}
			return
		}
		i = (i + 1) & mask
	}
}

// edgeIndex is the dense analogue of pairTable for the out/in edge
// lists: spans indexed directly by node ID (no hashing — node IDs are
// dense) into one pointer-free []Edge arena. The same relocation
// scheme amortizes incremental appends.
type edgeIndex struct {
	spans []pairSpan // indexed by node ID, grown with the name table
	edges []Edge     // arena; spans index into it

	// over makes this index a copy-on-write overlay (see delta.go):
	// spans/edges are shared verbatim with the base graph, and only
	// the node IDs a delta rewrote resolve through the overlay. nil on
	// every non-delta-applied graph.
	over *edgeOverlay
}

// edgeOverlay is a small open-addressing map from patched node IDs to
// edge lists in its own arena, layered over an edgeIndex's shared base
// arrays. A present node with a zero-length span masks a base list the
// delta emptied.
type edgeOverlay struct {
	keys  []uint32 // node ID + 1; 0 = free
	spans []pairSpan
	edges []Edge // arena, local to the overlay
	used  int
	shift uint
	nodes int // logical node count including delta-added nodes
}

// newEdgeOverlay returns an overlay presized for n patched nodes and
// edgeCap arena entries, covering nodes logical node IDs.
func newEdgeOverlay(n, edgeCap, nodes int) *edgeOverlay {
	size := 8
	for 3*size < 4*n {
		size *= 2
	}
	return &edgeOverlay{
		keys:  make([]uint32, size),
		spans: make([]pairSpan, size),
		edges: make([]Edge, 0, edgeCap),
		shift: 64 - log2(size),
		nodes: nodes,
	}
}

// find probes for key and reports whether the overlay patches it.
func (o *edgeOverlay) find(key ID) (pairSpan, bool) {
	k := uint32(key) + 1
	mask := len(o.keys) - 1
	for i := int((uint64(k) * pairHashMult) >> o.shift); ; i = (i + 1) & mask {
		switch o.keys[i] {
		case k:
			return o.spans[i], true
		case 0:
			return pairSpan{}, false
		}
	}
}

// setSpan records s as key's patched list. key must not be present
// yet, and the overlay must have been presized for all insertions.
func (o *edgeOverlay) setSpan(key ID, s pairSpan) {
	k := uint32(key) + 1
	mask := len(o.keys) - 1
	i := int((uint64(k) * pairHashMult) >> o.shift)
	for o.keys[i] != 0 {
		i = (i + 1) & mask
	}
	o.keys[i] = k
	o.spans[i] = s
	o.used++
}

// addNode extends the span table for a newly interned node.
func (x *edgeIndex) addNode() {
	x.spans = append(x.spans, pairSpan{})
}

// view returns the edge list of key, or nil. The slice is a capped
// view into the arena.
func (x *edgeIndex) view(key ID) []Edge {
	if o := x.over; o != nil {
		if key < 0 || int(key) >= o.nodes {
			return nil
		}
		if s, ok := o.find(key); ok {
			if s.n == 0 {
				return nil
			}
			return o.edges[s.off : s.off+s.n : s.off+s.n]
		}
	}
	if key < 0 || int(key) >= len(x.spans) {
		return nil
	}
	s := x.spans[key]
	if s.n == 0 {
		return nil
	}
	return x.edges[s.off : s.off+s.n : s.off+s.n]
}

// add appends e to key's edge list.
func (x *edgeIndex) add(key ID, e Edge) {
	s := x.spans[key]
	if s.n < s.cap {
		x.edges[s.off+s.n] = e
		x.spans[key].n++
		return
	}
	off := uint32(len(x.edges))
	x.edges = append(x.edges, x.edges[s.off:s.off+s.n]...)
	x.edges = append(x.edges, e)
	newCap := 2 * s.cap
	if newCap == 0 {
		newCap = 1
	}
	for j := s.n + 1; j < newCap; j++ {
		x.edges = append(x.edges, Edge{})
	}
	x.spans[key] = pairSpan{off: off, n: s.n + 1, cap: newCap}
}

// putSpan records the next cnt edges already appended to the arena as
// key's edge list — the snapshot decoder's bulk-build path.
func (x *edgeIndex) putSpan(key ID, off, cnt int) {
	x.spans[key] = pairSpan{off: uint32(off), n: uint32(cnt), cap: uint32(cnt)}
}

func (t *pairTable) grow() {
	oldKeys, oldSpans := t.keys, t.spans
	t.keys = make([]uint64, 2*len(oldKeys))
	t.spans = make([]pairSpan, 2*len(oldSpans))
	t.shift--
	mask := len(t.keys) - 1
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := t.slot(k)
		for t.keys[j] != 0 {
			j = (j + 1) & mask
		}
		t.keys[j] = k
		t.spans[j] = oldSpans[i]
	}
}
