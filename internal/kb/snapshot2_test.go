package kb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// snap2Bytes serializes g in the v2 format, failing the test on error.
func snap2Bytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteSnapshotV2(&buf); err != nil {
		t.Fatalf("WriteSnapshotV2: %v", err)
	}
	return buf.Bytes()
}

// encodeText renders g in the canonical text format — the
// storage-independent fingerprint used to compare graphs across
// formats and load paths.
func encodeText(t *testing.T, g *Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.String()
}

// checkGraphSemantics exercises the read API of a loaded paper graph.
func checkGraphSemantics(t *testing.T, g *Graph) {
	t.Helper()
	s := g.Lookup("Avram Hershko")
	born := g.Lookup("wasBornIn")
	karcag := g.Lookup("Karcag")
	if s == Invalid || born == Invalid || karcag == Invalid {
		t.Fatal("entity lost in v2 round trip")
	}
	if got := g.Subjects(born, karcag); len(got) != 1 || got[0] != s {
		t.Errorf("Subjects(wasBornIn, Karcag) = %v, want [%d]", got, s)
	}
	if got := g.Objects(s, born); len(got) != 1 || got[0] != karcag {
		t.Errorf("Objects(Hershko, wasBornIn) = %v, want [%d]", got, karcag)
	}
	if !g.HasEdge(s, born, karcag) {
		t.Error("HasEdge lost in v2 round trip")
	}
	if g.Lookup("no such node") != Invalid {
		t.Error("Lookup invented a node")
	}
	lit := g.Lookup("1937-12-31")
	if lit == Invalid || g.KindOf(lit) != KindLiteral {
		t.Error("literal kind lost in v2 round trip")
	}
	if !g.HasType(g.Lookup("Haifa"), g.Lookup("location")) {
		t.Error("taxonomy closure lost in v2 round trip")
	}
	if got := g.InstancesOf(g.Lookup("city")); len(got) != 2 {
		t.Errorf("InstancesOf(city) = %d instances, want 2", len(got))
	}
	if got := g.Subclasses(g.Lookup("location")); len(got) != 1 {
		t.Errorf("Subclasses(location) = %v, want one class", got)
	}
}

func v2TestGraph() *Graph {
	g := paperGraph()
	g.AddSubclass("city", "location")
	g.AddSubclass("Chemistry awards", "awards")
	return g
}

func TestSnapshotV2RoundTripDecode(t *testing.T) {
	g := v2TestGraph()
	snap := snap2Bytes(t, g)

	g2, err := LoadSnapshot(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("LoadSnapshot(v2): %v", err)
	}
	if !g2.ReadOnly() {
		t.Error("v2-loaded graph is not read-only")
	}
	if g2.Mapped() {
		t.Error("decode-path graph claims to be mmap'd")
	}
	if got, want := encodeText(t, g2), encodeText(t, g); got != want {
		t.Error("text encodings differ after v2 round trip")
	}
	if g2.Generation() != g.Generation() {
		t.Errorf("generation: got %d, want %d", g2.Generation(), g.Generation())
	}
	if g2.NumTriples() != g.NumTriples() || g2.NumNodes() != g.NumNodes() {
		t.Errorf("counts differ: %d/%d nodes, %d/%d triples",
			g2.NumNodes(), g.NumNodes(), g2.NumTriples(), g.NumTriples())
	}
	checkGraphSemantics(t, g2)

	// Every name must resolve back to its own ID through the name
	// table, and no other.
	for id := 0; id < g.NumNodes(); id++ {
		name := g.Name(ID(id))
		if got := g2.Lookup(name); got == Invalid || g2.Name(got) != name {
			t.Fatalf("Lookup(%q) = %d via name table, want the ID naming %q", name, got, name)
		}
	}
}

func TestSnapshotV2MmapLoad(t *testing.T) {
	g := v2TestGraph()
	path := filepath.Join(t.TempDir(), "kb.snap")
	if err := os.WriteFile(path, snap2Bytes(t, g), 0o644); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("LoadSnapshotFile(v2): %v", err)
	}
	if runtime.GOOS == "linux" && !g2.Mapped() {
		t.Error("v2 snapshot on linux did not take the mmap path")
	}
	if !g2.ReadOnly() {
		t.Error("mapped graph is not read-only")
	}
	if got, want := encodeText(t, g2), encodeText(t, g); got != want {
		t.Error("text encodings differ after mmap load")
	}
	checkGraphSemantics(t, g2)
}

func TestSnapshotV1FileFallsBackToDecode(t *testing.T) {
	g := v2TestGraph()
	path := filepath.Join(t.TempDir(), "kb.snap")
	if err := os.WriteFile(path, snapBytes(t, g), 0o644); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("LoadSnapshotFile(v1): %v", err)
	}
	if g2.Mapped() || g2.ReadOnly() {
		t.Error("v1 snapshot should decode to a mutable, unmapped graph")
	}
	// Byte-identical v1 re-encode: the decode fallback preserves the
	// canonical form exactly.
	if !bytes.Equal(snapBytes(t, g), snapBytes(t, g2)) {
		t.Error("v1 snapshot did not round trip byte-identically through LoadSnapshotFile")
	}
}

func TestSnapshotV2Deterministic(t *testing.T) {
	g := v2TestGraph()
	a := snap2Bytes(t, g)
	if !bytes.Equal(a, snap2Bytes(t, g)) {
		t.Fatal("two v2 encodings of the same graph differ")
	}
	// Re-packing a loaded (read-only) graph must reproduce the same
	// bytes: the canonicalization is a fixed point, and the writer
	// works off the span-table storage as well as the map storage.
	g2, err := LoadSnapshot(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, snap2Bytes(t, g2)) {
		t.Fatal("re-packing a v2-loaded graph changed the bytes")
	}
	// Cross-format: a graph decoded from v1 must v2-encode identically
	// to the original.
	g3, err := LoadSnapshot(bytes.NewReader(snapBytes(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, snap2Bytes(t, g3)) {
		t.Fatal("v1-loaded graph v2-encodes differently")
	}
}

func TestSnapshotV2EmptyGraph(t *testing.T) {
	g := New()
	g2, err := LoadSnapshot(bytes.NewReader(snap2Bytes(t, g)))
	if err != nil {
		t.Fatalf("LoadSnapshot(empty v2): %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumTriples() != 0 {
		t.Errorf("empty graph round trip: %d nodes, %d triples", g2.NumNodes(), g2.NumTriples())
	}
	if g2.Lookup(LiteralClass) != g.literalClass {
		t.Error("literal pseudo-class lost")
	}
}

func TestSnapshotV2ReadOnlyPanics(t *testing.T) {
	g2, err := LoadSnapshot(bytes.NewReader(snap2Bytes(t, v2TestGraph())))
	if err != nil {
		t.Fatal(err)
	}
	for name, fn := range map[string]func(){
		"AddTriple":   func() { g2.AddTriple("a", "b", "c") },
		"AddType":     func() { g2.AddType("a", "b") },
		"AddSubclass": func() { g2.AddSubclass("a", "b") },
		"Intern":      func() { g2.Intern("a") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a read-only graph did not panic", name)
				}
			}()
			fn()
		})
	}
}

// v2Section locates section id in a v2 snapshot via its directory.
func findV2Section(t *testing.T, data []byte, id byte) (dirOff int, e dirEntry) {
	t.Helper()
	n := int(binary.LittleEndian.Uint16(data[6:8]))
	for i := 0; i < n; i++ {
		off := 8 + i*dirEntryLen
		b := data[off:]
		if b[0] == id {
			return off, dirEntry{
				id: b[0], flags: b[1],
				crc: binary.LittleEndian.Uint32(b[4:8]),
				off: int64(binary.LittleEndian.Uint64(b[8:16])),
				n:   int64(binary.LittleEndian.Uint64(b[16:24])),
			}
		}
	}
	t.Fatalf("section %d not found in v2 snapshot", id)
	return 0, dirEntry{}
}

func TestSnapshotV2Corruption(t *testing.T) {
	good := snap2Bytes(t, v2TestGraph())
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"truncated directory", good[:16], "truncated in the section directory"},
		{"section out of bounds", mutate(func(b []byte) []byte {
			dirOff, _ := findV2Section(t, b, sec2OutEdges)
			binary.LittleEndian.PutUint64(b[dirOff+16:], 1<<40)
			return b
		}), "out of bounds"},
		{"misaligned raw section", mutate(func(b []byte) []byte {
			dirOff, e := findV2Section(t, b, sec2Kinds)
			binary.LittleEndian.PutUint64(b[dirOff+8:], uint64(e.off)+1)
			return b
		}), "not page-aligned"},
		{"missing section", mutate(func(b []byte) []byte {
			dirOff, _ := findV2Section(t, b, sec2SPKeys)
			b[dirOff] = 200 // rename the section to an unknown ID
			return b
		}), "missing"},
		{"corrupt raw payload", mutate(func(b []byte) []byte {
			_, e := findV2Section(t, b, sec2OutEdges)
			b[e.off] ^= 0xFF
			return b
		}), "checksum mismatch"},
		{"corrupt counts", mutate(func(b []byte) []byte {
			_, e := findV2Section(t, b, sec2Counts)
			b[e.off] ^= 0xFF
			return b
		}), "checksum mismatch"},
		{"span out of range", mutate(func(b []byte) []byte {
			// Grow a type span beyond its arena and fix the CRC so only
			// the structural bounds check can catch it.
			dirOff, e := findV2Section(t, b, sec2TypeSpans)
			binary.LittleEndian.PutUint32(b[e.off+4:], 1<<30) // span.n
			binary.LittleEndian.PutUint32(b[e.off+8:], 1<<30) // span.cap
			crc := crc32.Checksum(b[e.off:e.off+e.n], crcTable)
			binary.LittleEndian.PutUint32(b[dirOff+4:], crc)
			return b
		}), "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadSnapshot(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("LoadSnapshot succeeded on corrupt v2 input")
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.wantErr)) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestReadSnapshotInfo(t *testing.T) {
	g := v2TestGraph()
	dir := t.TempDir()

	v1 := filepath.Join(dir, "v1.snap")
	if err := os.WriteFile(v1, snapBytes(t, g), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := ReadSnapshotInfo(v1)
	if err != nil {
		t.Fatalf("ReadSnapshotInfo(v1): %v", err)
	}
	if info.Version != SnapshotVersion || info.Mmap {
		t.Errorf("v1 info: version %d, mmap %v", info.Version, info.Mmap)
	}
	if len(info.Sections) != 10 { // 9 payload sections + end
		t.Errorf("v1 info: %d sections, want 10", len(info.Sections))
	}

	v2 := filepath.Join(dir, "v2.snap")
	v2bytes := snap2Bytes(t, g)
	if err := os.WriteFile(v2, v2bytes, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err = ReadSnapshotInfo(v2)
	if err != nil {
		t.Fatalf("ReadSnapshotInfo(v2): %v", err)
	}
	if info.Version != SnapshotVersion2 || !info.Mmap {
		t.Errorf("v2 info: version %d, mmap %v", info.Version, info.Mmap)
	}
	if len(info.Sections) != int(sec2Max-1) {
		t.Errorf("v2 info: %d sections, want %d", len(info.Sections), sec2Max-1)
	}
	if info.FileSize != int64(len(v2bytes)) {
		t.Errorf("v2 info: file size %d, want %d", info.FileSize, len(v2bytes))
	}
	for _, s := range info.Sections {
		if s.Raw && !s.Aligned {
			t.Errorf("raw section %s at offset %d is not page-aligned", s.Name, s.Offset)
		}
	}
}

func TestNameTable(t *testing.T) {
	names := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		names = append(names, fmt.Sprintf("node-%d", i))
	}
	tab := newNameTable(len(names))
	var blob []byte
	offs := make([]uint32, 0, len(names)+1)
	for id, n := range names {
		offs = append(offs, uint32(len(blob)))
		blob = append(blob, n...)
		tab.insert(n, ID(id))
	}
	offs = append(offs, uint32(len(blob)))
	for id, n := range names {
		if got := tab.lookup(string(blob), offs, n); got != ID(id) {
			t.Fatalf("lookup(%q) = %d, want %d", n, got, id)
		}
	}
	for _, miss := range []string{"", "node-100", "nope", "node-"} {
		if got := tab.lookup(string(blob), offs, miss); got != Invalid {
			t.Fatalf("lookup(%q) = %d, want Invalid", miss, got)
		}
	}
}
