package kb

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPairTableAddGetGrow(t *testing.T) {
	tab := newPairTable(0, 0)
	// Interleave appends across many keys so spans relocate while the
	// table grows several times.
	const keys = 500
	want := make(map[uint64][]ID)
	for round := 0; round < 4; round++ {
		for k := 0; k < keys; k++ {
			key := pairKey(ID(k), ID(k%7))
			v := ID(round*keys + k)
			tab.add(key, v)
			want[key] = append(want[key], v)
		}
	}
	if tab.len() != keys {
		t.Fatalf("len = %d, want %d", tab.len(), keys)
	}
	for key, vals := range want {
		if got := tab.get(key); !reflect.DeepEqual(got, vals) {
			t.Fatalf("get(%d) = %v, want %v", key, got, vals)
		}
	}
	if got := tab.get(pairKey(9999, 9999)); got != nil {
		t.Fatalf("get on absent key = %v, want nil", got)
	}
}

func TestPairTableHighDegreeKey(t *testing.T) {
	// One key with thousands of values exercises the amortized
	// doubling of span relocation.
	tab := newPairTable(0, 0)
	key := pairKey(3, 4)
	var want []ID
	for i := 0; i < 5000; i++ {
		tab.add(key, ID(i))
		want = append(want, ID(i))
	}
	if got := tab.get(key); !reflect.DeepEqual(got, want) {
		t.Fatalf("high-degree key lost values: got %d, want %d", len(got), len(want))
	}
}

func TestPairTableRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := newPairTable(0, 0)
	want := make(map[uint64][]ID)
	for i := 0; i < 20000; i++ {
		a, b := ID(rng.Intn(300)), ID(rng.Intn(300))
		key := pairKey(a, b)
		v := ID(i)
		tab.add(key, v)
		want[key] = append(want[key], v)
	}
	if tab.len() != len(want) {
		t.Fatalf("len = %d, want %d", tab.len(), len(want))
	}
	for key, vals := range want {
		if got := tab.get(key); !reflect.DeepEqual(got, vals) {
			t.Fatalf("get(%d) diverged from reference map", key)
		}
	}
}

func TestPairTablePutBulk(t *testing.T) {
	// put is the snapshot decoder's presized bulk path: distinct keys,
	// values copied into the arena.
	tab := newPairTable(100, 1000)
	scratch := []ID{1, 2, 3}
	for k := 0; k < 100; k++ {
		scratch[0] = ID(k)
		tab.put(pairKey(ID(k), 1), scratch)
	}
	for k := 0; k < 100; k++ {
		want := []ID{ID(k), 2, 3}
		if got := tab.get(pairKey(ID(k), 1)); !reflect.DeepEqual(got, want) {
			t.Fatalf("put must copy its value: get = %v, want %v", got, want)
		}
	}
}

func TestEdgeIndexAddView(t *testing.T) {
	var x edgeIndex
	for i := 0; i < 10; i++ {
		x.addNode()
	}
	var want [10][]Edge
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		k := ID(rng.Intn(10))
		e := Edge{Pred: ID(i % 13), To: ID(i)}
		x.add(k, e)
		want[k] = append(want[k], e)
	}
	for k := range want {
		if got := x.view(ID(k)); !reflect.DeepEqual(got, want[k]) {
			t.Fatalf("view(%d) diverged: got %d edges, want %d", k, len(got), len(want[k]))
		}
	}
	if x.view(Invalid) != nil || x.view(10) != nil {
		t.Fatal("out-of-range view must be nil")
	}
	if x.view(ID(9)) == nil {
		t.Fatal("expected edges for node 9")
	}
}

func TestEdgeIndexViewIsCapped(t *testing.T) {
	var x edgeIndex
	x.addNode()
	x.addNode()
	x.add(0, Edge{Pred: 1, To: 1})
	x.add(1, Edge{Pred: 2, To: 2})
	v := x.view(0)
	if cap(v) != len(v) {
		t.Fatalf("view must be capped: len %d cap %d", len(v), cap(v))
	}
}
