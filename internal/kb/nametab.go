package kb

// nameTable is the snapshot-backed replacement for the byName map: a
// pointer-free open-addressing index from node name to ID whose slot
// array is stored verbatim in DKBS v2 snapshots, so an mmap'd graph
// resolves Lookup straight out of file pages without ever
// materializing a Go map. Names themselves are not duplicated — a
// slot holds only the 64-bit name hash and the node ID, and a probe
// that matches the hash confirms against the name bytes via the
// nameOffs table.
//
// Layout invariants mirror pairTable: power-of-two slot count,
// Fibonacci hashing, linear probing, load factor at or below 3/4.
// idPlus1 == 0 marks a free slot (node IDs are dense from 0, so every
// occupied slot stores id+1).

// nameSlot is one table slot. Its memory layout (16 bytes, no
// padding) is part of the DKBS v2 format.
type nameSlot struct {
	hash    uint64 // fnv-1a of the name
	idPlus1 uint32 // node ID + 1; 0 = free slot
	_       uint32 // reserved
}

type nameTable struct {
	slots []nameSlot
	shift uint
}

// nameHash is FNV-1a over the name bytes — stable across builds, part
// of the v2 format.
func nameHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// newNameTable returns an empty table presized for n names.
func newNameTable(n int) nameTable {
	size := 8
	for 3*size < 4*n {
		size *= 2
	}
	return nameTable{slots: make([]nameSlot, size), shift: 64 - log2(size)}
}

func (t *nameTable) slot(h uint64) int {
	return int((h * pairHashMult) >> t.shift)
}

// insert adds (name, id). The caller guarantees the name is not
// present and the table was sized for the final population (the
// snapshot writer inserts each interned name exactly once, in ID
// order, which also makes slot placement deterministic).
func (t *nameTable) insert(name string, id ID) {
	h := nameHash(name)
	mask := len(t.slots) - 1
	i := t.slot(h)
	for t.slots[i].idPlus1 != 0 {
		i = (i + 1) & mask
	}
	t.slots[i] = nameSlot{hash: h, idPlus1: uint32(id) + 1}
}

// lookup resolves name against the blob/offsets name storage, or
// Invalid. Hash matches are confirmed against the actual name bytes,
// so colliding hashes cannot alias two names.
func (t *nameTable) lookup(blob string, offs []uint32, name string) ID {
	if len(t.slots) == 0 {
		return Invalid
	}
	h := nameHash(name)
	mask := len(t.slots) - 1
	for i := t.slot(h); ; i = (i + 1) & mask {
		s := t.slots[i]
		if s.idPlus1 == 0 {
			return Invalid
		}
		if s.hash == h {
			id := ID(s.idPlus1 - 1)
			if blob[offs[id]:offs[id+1]] == name {
				return id
			}
		}
	}
}

// idListIndex is the snapshot-backed form of an ID -> []ID assertion
// map (types, instOf, superOf, subOf): a dense span table indexed by
// key into one shared ID arena, both pointer-free and therefore
// mmap-eligible. Keys out of range or without entries view nil,
// matching a map miss.
type idListIndex struct {
	spans []pairSpan
	ids   []ID
}

func (x *idListIndex) view(key ID) []ID {
	if key < 0 || int(key) >= len(x.spans) {
		return nil
	}
	s := x.spans[key]
	if s.n == 0 {
		return nil
	}
	return x.ids[s.off : s.off+s.n : s.off+s.n]
}
