package kb

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// paperGraphV2 writes g as a v2 snapshot and loads it back mmap'd, so
// tests exercise the snapshot (read-only) storage form.
func asV2(t *testing.T, g *Graph) *Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.dkbs")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteSnapshotV2(f); err != nil {
		t.Fatalf("WriteSnapshotV2: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	return g2
}

// newerPaperGraph is paperGraph with a realistic small churn: one
// entity gone entirely (orphan exercise), a triple retargeted, new
// entities with types, a new predicate, a taxonomy edit and a literal
// change.
func newerPaperGraph() *Graph {
	g := paperGraph()
	g2 := New()
	// Copy everything except the assertions we edit.
	for s := 0; s < g.NumNodes(); s++ {
		for _, e := range g.Out(ID(s)) {
			sn, pn, on := g.Name(ID(s)), g.Name(e.Pred), g.Name(e.To)
			switch {
			case sn == "Avram Hershko" && pn == "wonPrize" && on == "Albert Lasker Award for Medicine":
				// dropped: prize revoked from the KB
			case sn == "Israel Institute of Technology" && pn == "locatedIn":
				g2.AddTriple(sn, pn, "Haifa") // unchanged, added explicitly for clarity
			case g.KindOf(e.To) == KindLiteral:
				g2.AddPropertyTriple(sn, pn, on)
			default:
				g2.AddTriple(sn, pn, on)
			}
		}
	}
	g.forEachTyped(func(inst ID, classes []ID) {
		for _, c := range classes {
			if g.Name(inst) == "Albert Lasker Award for Medicine" {
				continue // node fully removed → orphan in applied graphs
			}
			g2.AddType(g.Name(inst), g.Name(c))
		}
	})
	// Edits on top.
	g2.AddTriple("Avram Hershko", "wonPrize", "Wolf Prize in Medicine")
	g2.AddType("Wolf Prize in Medicine", "Israeli awards")
	g2.AddSubclass("Israeli awards", "awards")
	g2.AddSubclass("Chemistry awards", "awards")
	g2.AddPropertyTriple("Aaron Ciechanover", "bornOnDate", "1947-10-01")
	g2.AddType("Aaron Ciechanover", "Nobel laureates in Chemistry")
	g2.AddTriple("Aaron Ciechanover", "worksAt", "Israel Institute of Technology")
	return g2
}

func deltaBytes(t *testing.T, d *Delta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatalf("Delta.Write: %v", err)
	}
	return buf.Bytes()
}

func TestFingerprintStorageFormInvariance(t *testing.T) {
	g := paperGraph()
	g.AddSubclass("city", "location")

	v2 := asV2(t, g)
	if got, want := v2.Fingerprint(), g.Fingerprint(); got != want {
		t.Errorf("v2 fingerprint %016x != mutable fingerprint %016x", got, want)
	}

	// A graph of identical content built in a different order (and
	// therefore with different IDs) must agree.
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	for i, j := 0, len(lines)-1; i < j; i, j = i+1, j-1 {
		lines[i], lines[j] = lines[j], lines[i]
	}
	reordered, err := Parse(strings.NewReader(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatalf("Parse(reversed): %v", err)
	}
	if got, want := reordered.Fingerprint(), g.Fingerprint(); got != want {
		t.Errorf("reordered fingerprint %016x != original %016x", got, want)
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	a := paperGraph()
	b := paperGraph()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical graphs disagree on fingerprint")
	}
	b.AddTriple("Avram Hershko", "livesIn", "Haifa")
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("fingerprint unchanged by an added triple")
	}
	c := paperGraph()
	c.AddType("Haifa", "port city")
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint unchanged by an added type assertion")
	}
	d := paperGraph()
	d.AddSubclass("city", "location")
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("fingerprint unchanged by an added subclass edge")
	}
}

func TestDiffApplyRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		form func(*testing.T, *Graph) *Graph
	}{
		{"mutableBase", func(_ *testing.T, g *Graph) *Graph { return g }},
		{"snapshotBase", asV2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			old := tc.form(t, paperGraph())
			new_ := newerPaperGraph()
			d := Diff(old, new_)
			if d.Ops() == 0 {
				t.Fatal("expected a non-empty delta")
			}
			got, err := old.ApplyDelta(d)
			if err != nil {
				t.Fatalf("ApplyDelta: %v", err)
			}
			if !got.ReadOnly() {
				t.Error("applied graph should be snapshot-form (read-only)")
			}
			if got.Generation() <= old.Generation() {
				t.Errorf("generation did not advance: %d -> %d", old.Generation(), got.Generation())
			}
			if want := encodeText(t, new_); encodeText(t, got) != want {
				t.Error("applied graph's canonical text differs from the diff target")
			}
			if got.NumTriples() != new_.NumTriples() {
				t.Errorf("triples: got %d, want %d", got.NumTriples(), new_.NumTriples())
			}
			if got, want := got.Fingerprint(), new_.Fingerprint(); got != want {
				t.Errorf("applied fingerprint %016x != target %016x", got, want)
			}
			// Closures over the patched taxonomy.
			ci := got.Lookup("Aaron Ciechanover")
			nl := got.Lookup("Nobel laureates in Chemistry")
			if ci == Invalid || nl == Invalid || !got.HasType(ci, nl) {
				t.Error("new instance's type lost through apply")
			}
			wolf := got.Lookup("Wolf Prize in Medicine")
			aw := got.Lookup("awards")
			if wolf == Invalid || aw == Invalid || !got.HasType(wolf, aw) {
				t.Error("new taxonomy edge not reflected in closure")
			}
			// The removed triple is gone; the orphan node stays interned
			// but unreachable from any index.
			av := got.Lookup("Avram Hershko")
			lasker := got.Lookup("Albert Lasker Award for Medicine")
			if lasker == Invalid {
				t.Fatal("orphaned node should stay interned")
			}
			if got.HasEdge(av, got.Lookup("wonPrize"), lasker) {
				t.Error("removed triple still present")
			}
			if len(got.In(lasker)) != 0 || len(got.Out(lasker)) != 0 || len(got.DirectTypes(lasker)) != 0 {
				t.Error("orphaned node still reachable from an index")
			}
			// The base graph is untouched.
			if !old.HasEdge(old.Lookup("Avram Hershko"), old.Lookup("wonPrize"), old.Lookup("Albert Lasker Award for Medicine")) {
				t.Error("base graph mutated by ApplyDelta")
			}
		})
	}
}

func TestDiffDeterministicAndSerializationRoundTrip(t *testing.T) {
	old := paperGraph()
	new_ := newerPaperGraph()
	d1 := Diff(old, new_)
	d2 := Diff(asV2(t, paperGraph()), asV2(t, newerPaperGraph()))
	b1, b2 := deltaBytes(t, d1), deltaBytes(t, d2)
	// BaseNodes may legitimately differ across storage forms of equal
	// content? No: node count is interning count, identical for equal
	// content built fresh. Bytes must match exactly.
	if !bytes.Equal(b1, b2) {
		t.Error("Diff over different storage forms of the same content produced different bytes")
	}
	rd, err := ReadDelta(bytes.NewReader(b1))
	if err != nil {
		t.Fatalf("ReadDelta: %v", err)
	}
	if !reflect.DeepEqual(d1, rd) {
		t.Errorf("delta did not survive serialization:\nwrote %+v\nread  %+v", d1, rd)
	}
	if !bytes.Equal(deltaBytes(t, rd), b1) {
		t.Error("re-serializing a read delta changed its bytes")
	}
}

func TestApplyDeltaEmpty(t *testing.T) {
	g := paperGraph()
	d := Diff(g, paperGraph())
	if d.Ops() != 0 {
		t.Fatalf("diff of identical content has %d ops", d.Ops())
	}
	got, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta(empty): %v", err)
	}
	if encodeText(t, got) != encodeText(t, g) {
		t.Error("empty delta changed content")
	}
	if got.Generation() <= g.Generation() {
		t.Error("even an empty delta must bump the generation")
	}
}

func TestApplyDeltaBaseMismatch(t *testing.T) {
	old := paperGraph()
	d := Diff(old, newerPaperGraph())

	wrong := paperGraph()
	wrong.AddTriple("Avram Hershko", "livesIn", "Haifa")
	if _, err := wrong.ApplyDelta(d); !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Errorf("apply to drifted base: got %v, want ErrDeltaBaseMismatch", err)
	}

	// Same triple count, different content: fingerprint must catch it.
	wrong2 := paperGraph()
	wrong2.AddTriple("Avram Hershko", "livesIn", "Haifa")
	d2 := Diff(paperGraph(), wrong2)
	twisted := paperGraph()
	twisted.AddTriple("Avram Hershko", "livesIn", "Karcag")
	if twisted.NumTriples() != paperGraph().NumTriples()+1 {
		t.Fatal("setup: counts should match")
	}
	base := paperGraph()
	base.AddTriple("Avram Hershko", "diedIn", "Haifa")
	if base.NumTriples() != wrong2.NumTriples() {
		t.Fatal("setup: equal triple counts required")
	}
	if _, err := base.ApplyDelta(d2); !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Errorf("apply to same-count different-content base: got %v, want ErrDeltaBaseMismatch", err)
	}

	// Applying the same delta twice: the first succeeds, the second
	// sees the new content and is refused.
	applied, err := old.ApplyDelta(d)
	if err != nil {
		t.Fatalf("first apply: %v", err)
	}
	if _, err := applied.ApplyDelta(d); !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Errorf("double apply: got %v, want ErrDeltaBaseMismatch", err)
	}
}

func TestApplyDeltaChained(t *testing.T) {
	// g0 -> g1 -> g2 where g1 removes a node entirely (orphan) and g2
	// re-adds assertions: deltas diffed between fresh graphs must keep
	// applying to COW-applied graphs whose node sets differ.
	g0 := paperGraph()
	g1 := newerPaperGraph()
	g2 := newerPaperGraph()
	g2.AddTriple("Aaron Ciechanover", "wonPrize", "Nobel Prize in Chemistry")
	g2.AddType("Haifa", "port city")

	a1, err := g0.ApplyDelta(Diff(paperGraph(), g1))
	if err != nil {
		t.Fatalf("apply d01: %v", err)
	}
	a2, err := a1.ApplyDelta(Diff(newerPaperGraph(), g2))
	if err != nil {
		t.Fatalf("apply d12 to chained graph: %v", err)
	}
	if encodeText(t, a2) != encodeText(t, g2) {
		t.Error("chained applies diverged from target content")
	}
	if got, want := a2.Fingerprint(), g2.Fingerprint(); got != want {
		t.Errorf("chained fingerprint %016x != target %016x", got, want)
	}
}

func TestApplyDeltaKindChange(t *testing.T) {
	old := New()
	old.AddTriple("a", "p", "b")
	old.AddPropertyTriple("a", "q", "1999")
	new_ := New()
	new_.AddTriple("a", "p", "b")
	new_.AddTriple("a", "q", "1999") // "1999" becomes an instance
	d := Diff(old, new_)
	got, err := old.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if encodeText(t, got) != encodeText(t, new_) {
		t.Error("kind change did not round-trip")
	}
	if k := got.KindOf(got.Lookup("1999")); k != KindInstance {
		t.Errorf("kind not fixed: got %v", k)
	}
	// Kind fixes bypass the incremental check; full recompute must
	// still agree with the promised fingerprint.
	if got, want := got.Fingerprint(), new_.Fingerprint(); got != want {
		t.Errorf("fingerprint after kind change %016x != target %016x", got, want)
	}
}

func TestReadDeltaRejectsCorruption(t *testing.T) {
	d := Diff(paperGraph(), newerPaperGraph())
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := ReadDelta(bytes.NewReader([]byte("DKBSnope"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadDelta(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated delta accepted")
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := ReadDelta(bytes.NewReader(flipped)); err == nil {
		t.Error("bit-flipped delta accepted")
	}
}

func TestApplyDeltaRejectsInconsistentOps(t *testing.T) {
	g := paperGraph()
	mk := func() *Delta { return Diff(paperGraph(), paperGraph()) }

	d := mk()
	d.Names = []string{"Avram Hershko", "nosuch", "wasBornIn"}
	d.Kinds = []Kind{KindInstance, KindInstance, KindUnknown}
	d.TripleDel = [][3]int32{{0, 2, 1}}
	if _, err := g.ApplyDelta(d); !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Errorf("removal of absent triple: got %v, want ErrDeltaBaseMismatch", err)
	}

	d = mk()
	d.Names = []string{"Avram Hershko", "Karcag", "wasBornIn"}
	d.Kinds = []Kind{KindInstance, KindInstance, KindUnknown}
	d.TripleAdd = [][3]int32{{0, 2, 1}}
	if _, err := g.ApplyDelta(d); !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Errorf("addition of present triple: got %v, want ErrDeltaBaseMismatch", err)
	}

	d = mk()
	d.Names = []string{"Avram Hershko", "newplace", "visited"}
	d.Kinds = []Kind{KindInstance, KindInstance, KindUnknown}
	d.TripleAdd = [][3]int32{{0, 2, 1}, {0, 2, 1}}
	if _, err := g.ApplyDelta(d); err == nil {
		t.Error("duplicate op accepted")
	}
}

func TestStoreApplyDelta(t *testing.T) {
	base := paperGraph()
	st := NewStore(base)
	gen0 := st.Generation()
	d := Diff(paperGraph(), newerPaperGraph())
	g, err := st.ApplyDelta(d)
	if err != nil {
		t.Fatalf("Store.ApplyDelta: %v", err)
	}
	if st.Graph() != g {
		t.Error("store is not serving the applied graph")
	}
	if st.Generation() <= gen0 {
		t.Errorf("generation did not advance: %d -> %d", gen0, st.Generation())
	}
	if st.Swaps() != 1 {
		t.Errorf("swaps = %d, want 1", st.Swaps())
	}
	// The restamped generation must keep the verified fingerprint memo
	// coherent: Fingerprint() on the served graph equals the target's.
	if got, want := st.Graph().Fingerprint(), newerPaperGraph().Fingerprint(); got != want {
		t.Errorf("served fingerprint %016x != target %016x", got, want)
	}
	// A second identical delta must now be refused, store untouched.
	if _, err := st.ApplyDelta(d); !errors.Is(err, ErrDeltaBaseMismatch) {
		t.Errorf("stale delta: got %v, want ErrDeltaBaseMismatch", err)
	}
	if st.Graph() != g {
		t.Error("failed apply perturbed the served graph")
	}
}
