package kb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The text format accepted by Parse is a line-oriented subset of
// N-Triples with readable names instead of IRIs:
//
//	<Avram Hershko> <worksAt> <Israel Institute of Technology> .
//	<Avram Hershko> <bornOnDate> "1937-12-31" .
//	<Avram Hershko> <type> <Nobel laureates in Chemistry> .
//	<Nobel laureates in Chemistry> <subClassOf> <chemist> .
//	# comments and blank lines are ignored
//
// Objects in angle brackets are instances; objects in double quotes
// are literals. The predicates "type" and "subClassOf" are reserved
// for class membership and taxonomy.

// Reserved predicate names recognised by Parse and emitted by Encode.
const (
	PredType       = "type"
	PredSubClassOf = "subClassOf"
)

// ParseError describes a malformed line in the triple text format.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("kb: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Parse reads triples in the text format from r into a new graph.
func Parse(r io.Reader) (*Graph, error) {
	g := New()
	if err := g.ParseInto(r); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseInto reads triples in the text format from r into g.
func (g *Graph) ParseInto(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, lit, err := splitTriple(line)
		if err != nil {
			return &ParseError{Line: lineno, Text: line, Msg: err.Error()}
		}
		switch p {
		case PredType:
			if lit {
				return &ParseError{Line: lineno, Text: line, Msg: "type object must be a class, not a literal"}
			}
			g.AddType(s, o)
		case PredSubClassOf:
			if lit {
				return &ParseError{Line: lineno, Text: line, Msg: "subClassOf object must be a class, not a literal"}
			}
			g.AddSubclass(s, o)
		default:
			if lit {
				g.AddPropertyTriple(s, p, o)
			} else {
				g.AddTriple(s, p, o)
			}
		}
	}
	return sc.Err()
}

// splitTriple parses one `<s> <p> <o|"o"> .` line. lit reports whether
// the object was quoted (a literal).
func splitTriple(line string) (s, p, o string, lit bool, err error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ".")
	line = strings.TrimSpace(line)
	rest := line

	s, rest, err = takeAngle(rest)
	if err != nil {
		return "", "", "", false, fmt.Errorf("subject: %v", err)
	}
	p, rest, err = takeAngle(rest)
	if err != nil {
		return "", "", "", false, fmt.Errorf("predicate: %v", err)
	}
	rest = strings.TrimSpace(rest)
	switch {
	case strings.HasPrefix(rest, "<"):
		o, rest, err = takeAngle(rest)
		if err != nil {
			return "", "", "", false, fmt.Errorf("object: %v", err)
		}
	case strings.HasPrefix(rest, `"`):
		end := strings.LastIndex(rest, `"`)
		if end == 0 {
			return "", "", "", false, fmt.Errorf("object: unterminated literal")
		}
		o = rest[1:end]
		rest = rest[end+1:]
		lit = true
	default:
		return "", "", "", false, fmt.Errorf("object: expected '<' or '\"'")
	}
	if strings.TrimSpace(rest) != "" {
		return "", "", "", false, fmt.Errorf("trailing content %q", strings.TrimSpace(rest))
	}
	return s, p, o, lit, nil
}

func takeAngle(s string) (tok, rest string, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "<") {
		return "", "", fmt.Errorf("expected '<'")
	}
	end := strings.Index(s, ">")
	if end < 0 {
		return "", "", fmt.Errorf("unterminated '<'")
	}
	return s[1:end], s[end+1:], nil
}

// Encode writes g in the text format understood by Parse, in a
// deterministic order (subclass assertions, then type assertions, then
// relationship/property triples, each sorted lexically).
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)

	var lines []string
	g.forEachSubclassed(func(sub ID, supers []ID) {
		for _, super := range supers {
			lines = append(lines, fmt.Sprintf("<%s> <%s> <%s> .", g.Name(sub), PredSubClassOf, g.Name(super)))
		}
	})
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}

	lines = lines[:0]
	g.forEachTyped(func(inst ID, classes []ID) {
		for _, c := range classes {
			lines = append(lines, fmt.Sprintf("<%s> <%s> <%s> .", g.Name(inst), PredType, g.Name(c)))
		}
	})
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}

	lines = lines[:0]
	for s := 0; s < g.NumNodes(); s++ {
		for _, e := range g.out.view(ID(s)) {
			if g.kinds[e.To] == KindLiteral {
				lines = append(lines, fmt.Sprintf("<%s> <%s> %q .", g.Name(ID(s)), g.Name(e.Pred), g.Name(e.To)))
			} else {
				lines = append(lines, fmt.Sprintf("<%s> <%s> <%s> .", g.Name(ID(s)), g.Name(e.Pred), g.Name(e.To)))
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(bw, l)
	}
	return bw.Flush()
}
