package kb

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Store is an atomically swappable handle to the current knowledge
// graph — the unit of zero-downtime KB reload. Readers pin the graph
// once per tuple with Graph() and finish that tuple entirely on the
// pinned graph; Swap publishes a fully built replacement without
// blocking any reader.
//
// Swap guarantees the incoming graph's Generation is strictly greater
// than the outgoing one's. Caches keyed on a graph's generation
// (rules.Catalog's candidate cache and signature indexes) therefore
// distinguish pre- and post-swap content with a single integer
// compare, and entries tagged with an older generation can never be
// served against the new graph.
//
// Graphs handed to NewStore or Swap must be fully loaded; the store
// freezes them (forcing the lazy closures) before publishing, so every
// graph observable through Graph() is safe for concurrent reads.
type Store struct {
	cur       atomic.Pointer[Graph]
	swaps     atomic.Int64
	rollbacks atomic.Int64

	mu sync.Mutex // serializes Swap/Rollback/SetRetain's read-stamp-publish sequences
	// maxGen is the highest generation ever published through this
	// store. It never decreases — not even across Rollback — so a
	// fresh graph handed to Swap is always stamped above every graph
	// any cache has ever seen, and a generation number can never be
	// reused for different content.
	maxGen int64
	// ring holds the last retain previously-served graphs, oldest
	// first. Rollback pops the newest. Retained graphs are already
	// frozen and keep their original generation.
	ring   []*Graph
	retain int
}

// ErrNoRetained is returned by Rollback when the retention ring is
// empty (retention disabled, or every retained generation already
// consumed).
var ErrNoRetained = errors.New("kb: no retained generation to roll back to")

// NewStore freezes g and returns a store currently serving it.
func NewStore(g *Graph) *Store {
	g.Freeze()
	s := &Store{maxGen: g.gen}
	s.cur.Store(g)
	return s
}

// Graph returns the currently served graph. Callers doing multi-step
// work (a tuple repair, a stats report) must call this once and hold
// the result, not re-resolve mid-work: IDs are only meaningful within
// one graph.
func (s *Store) Graph() *Graph { return s.cur.Load() }

// Generation returns the current graph's generation.
func (s *Store) Generation() int64 { return s.cur.Load().Generation() }

// Swaps returns how many times Swap has replaced the graph.
func (s *Store) Swaps() int64 { return s.swaps.Load() }

// Swap atomically replaces the served graph with g and returns the
// graph it replaced. g must not be shared with any other goroutine
// yet: Swap stamps its generation (to strictly exceed the outgoing
// graph's) and freezes it before publishing. In-flight work that
// pinned the old graph is unaffected and finishes on it.
func (s *Store) Swap(g *Graph) (old *Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.swapLocked(g)
}

func (s *Store) swapLocked(g *Graph) (old *Graph) {
	old = s.cur.Load()
	// Stamp above every generation this store has ever published, not
	// just the current one: after a rollback the live generation is
	// lower than maxGen, and reusing one of those numbers for new
	// content would let generation-keyed caches serve stale entries.
	if old.gen > s.maxGen {
		s.maxGen = old.gen
	}
	if g.gen <= s.maxGen {
		// Restamping invalidates a generation-tagged fingerprint memo;
		// carry it over so a delta-applied graph keeps its verified
		// fingerprint (content is unchanged by restamping).
		if m := g.fp.Load(); m != nil && m.gen == g.gen {
			g.fp.Store(&fpMemo{gen: s.maxGen + 1, fp: m.fp})
		}
		g.gen = s.maxGen + 1
	}
	s.maxGen = g.gen
	g.Freeze()
	s.swaps.Add(1)
	s.cur.Store(g)
	s.retainLocked(old)
	return old
}

// ApplyDelta builds the current graph's successor copy-on-write via
// Graph.ApplyDelta and publishes it, all under the store's lock so no
// concurrent Swap can slide a different base underneath the apply. On
// error the store is untouched. The returned graph is the newly served
// generation.
func (s *Store) ApplyDelta(d *Delta) (*Graph, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, err := s.cur.Load().ApplyDelta(d)
	if err != nil {
		return nil, err
	}
	s.swapLocked(g)
	return g, nil
}

// SetRetain sets how many previously-served graphs the store keeps for
// Rollback (0 disables retention and clears the ring). Each retained
// graph holds its full indexes in memory, so k should stay small.
func (s *Store) SetRetain(k int) {
	if k < 0 {
		k = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retain = k
	if len(s.ring) > k {
		s.ring = append(s.ring[:0:0], s.ring[len(s.ring)-k:]...)
	}
}

func (s *Store) retainLocked(old *Graph) {
	if s.retain == 0 {
		return
	}
	s.ring = append(s.ring, old)
	if len(s.ring) > s.retain {
		copy(s.ring, s.ring[len(s.ring)-s.retain:])
		for i := s.retain; i < len(s.ring); i++ {
			s.ring[i] = nil
		}
		s.ring = s.ring[:s.retain]
	}
}

// Rollback republishes the most recently retained graph and returns it
// along with the graph it displaced. The retained graph keeps its
// original (lower) generation: it may still be pinned by in-flight
// tuples, so restamping it would be a data race, and caches that hold
// entries for that generation remain exactly valid for its unchanged
// content. Swaps is not incremented — a rollback is counted in
// Rollbacks instead — but generation-keyed readers observe the change
// through Generation() as usual.
func (s *Store) Rollback() (now, dropped *Graph, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return nil, nil, ErrNoRetained
	}
	now = s.ring[len(s.ring)-1]
	s.ring[len(s.ring)-1] = nil
	s.ring = s.ring[:len(s.ring)-1]
	dropped = s.cur.Load()
	if dropped.gen > s.maxGen {
		s.maxGen = dropped.gen
	}
	s.rollbacks.Add(1)
	s.cur.Store(now)
	return now, dropped, nil
}

// Rollbacks returns how many times Rollback has republished a retained
// graph.
func (s *Store) Rollbacks() int64 { return s.rollbacks.Load() }

// GenInfo describes one graph generation held by the store.
type GenInfo struct {
	Generation int64 `json:"generation"`
	Nodes      int   `json:"nodes"`
	Triples    int   `json:"triples"`
	Live       bool  `json:"live"`
}

// History returns the live generation followed by the retained ones,
// newest first — the rollback candidates in the order Rollback would
// consume them.
func (s *Store) History() []GenInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]GenInfo, 0, len(s.ring)+1)
	g := s.cur.Load()
	out = append(out, GenInfo{Generation: g.Generation(), Nodes: g.NumNodes(), Triples: g.NumTriples(), Live: true})
	for i := len(s.ring) - 1; i >= 0; i-- {
		r := s.ring[i]
		out = append(out, GenInfo{Generation: r.Generation(), Nodes: r.NumNodes(), Triples: r.NumTriples()})
	}
	return out
}
