package kb

import (
	"sync"
	"sync/atomic"
)

// Store is an atomically swappable handle to the current knowledge
// graph — the unit of zero-downtime KB reload. Readers pin the graph
// once per tuple with Graph() and finish that tuple entirely on the
// pinned graph; Swap publishes a fully built replacement without
// blocking any reader.
//
// Swap guarantees the incoming graph's Generation is strictly greater
// than the outgoing one's. Caches keyed on a graph's generation
// (rules.Catalog's candidate cache and signature indexes) therefore
// distinguish pre- and post-swap content with a single integer
// compare, and entries tagged with an older generation can never be
// served against the new graph.
//
// Graphs handed to NewStore or Swap must be fully loaded; the store
// freezes them (forcing the lazy closures) before publishing, so every
// graph observable through Graph() is safe for concurrent reads.
type Store struct {
	cur   atomic.Pointer[Graph]
	swaps atomic.Int64
	mu    sync.Mutex // serializes Swap's read-stamp-publish sequence
}

// NewStore freezes g and returns a store currently serving it.
func NewStore(g *Graph) *Store {
	g.Freeze()
	s := &Store{}
	s.cur.Store(g)
	return s
}

// Graph returns the currently served graph. Callers doing multi-step
// work (a tuple repair, a stats report) must call this once and hold
// the result, not re-resolve mid-work: IDs are only meaningful within
// one graph.
func (s *Store) Graph() *Graph { return s.cur.Load() }

// Generation returns the current graph's generation.
func (s *Store) Generation() int64 { return s.cur.Load().Generation() }

// Swaps returns how many times Swap has replaced the graph.
func (s *Store) Swaps() int64 { return s.swaps.Load() }

// Swap atomically replaces the served graph with g and returns the
// graph it replaced. g must not be shared with any other goroutine
// yet: Swap stamps its generation (to strictly exceed the outgoing
// graph's) and freezes it before publishing. In-flight work that
// pinned the old graph is unaffected and finishes on it.
func (s *Store) Swap(g *Graph) (old *Graph) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old = s.cur.Load()
	if g.gen <= old.gen {
		g.gen = old.gen + 1
	}
	g.Freeze()
	s.swaps.Add(1)
	s.cur.Store(g)
	return old
}
