package kb

// Binary KB snapshots. The text triple format (parse.go) is the
// interchange format — human-readable, diffable, slow: every triple
// repeats its node names, every line re-tokenizes, and every
// AddTripleID pays a duplicate scan. A snapshot is the persisted form
// of an already-built Graph: interned names are stored once, all
// structure is dense varint-encoded IDs, duplicates are impossible by
// construction, and the decoder rebuilds the indexes with
// exact-capacity maps across parallel per-section workers. Loading a
// snapshot is the fast path a serving process uses at boot and on
// hot reload (see Store).
//
// Layout (all integers little-endian, "uv" = unsigned varint):
//
//	magic "DKBS" | u16 version | u16 reserved
//	then a sequence of sections, each:
//	  u8 section ID | u32 CRC-32C(payload) | u64 payload length | payload
//	terminated by the end section (ID 10, empty payload).
//
// Sections (decoded concurrently; counts carries the map capacities):
//
//	counts    uv: numNodes, literalClass, tripleCount, generation,
//	          lenOut, lenIn, lenSP, lenPO, numPreds, numTypeInsts,
//	          numInstOf, numSubs, numSupers, nameByteLen
//	nameLens  uv name length per node, in ID order
//	nameBytes raw concatenated name bytes
//	kinds     one byte per node
//	preds     uv count, then sorted predicate IDs delta-encoded
//	types     uv count, then per instance (ascending): uv inst, uv k,
//	          k sorted class IDs
//	subclass  same shape over class -> direct superclasses
//	triples   uv subject count, then per subject (ascending): uv s,
//	          uv k, k (uv pred, uv obj) pairs sorted by (pred, obj)
//	triplesIn the same triples grouped by object (ascending): uv o,
//	          uv k, k (uv pred, uv subj) pairs sorted by (pred, subj)
//
// The triples are stored twice — once per grouping — on purpose: each
// decoder worker then sees its index's keys in contiguous runs and can
// carve value slices out of one arena with a single map assignment per
// key, instead of a lookup-append per edge. That map traffic, not the
// varint decoding or the extra bytes, is what dominates load time.
//
// Every section is independently checksummed, so corruption is
// detected before any partially decoded graph can escape, and the
// encoding is canonical: the same graph always serializes to the same
// bytes (`kbtool pack` is deterministic, which CI verifies).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
)

const (
	snapshotMagic = "DKBS"
	// SnapshotVersion is the format version written by WriteSnapshot
	// and required by LoadSnapshot.
	SnapshotVersion = 1
)

// Section IDs. The decoder requires all of them except end to be
// present exactly once.
const (
	secCounts byte = iota + 1
	secNameLens
	secNameBytes
	secKinds
	secPreds
	secTypes
	secSubclass
	secTriples
	secTriplesIn
	secEnd
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// sectionHeaderLen is id(1) + crc(4) + length(8).
const sectionHeaderLen = 13

// WriteSnapshot writes g in the binary snapshot format. The output is
// canonical: encoding the same graph twice yields identical bytes.
func (g *Graph) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], SnapshotVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}

	numNodes := g.NumNodes()
	nameBytes := 0
	for i := 0; i < numNodes; i++ {
		nameBytes += len(g.Name(ID(i)))
	}
	lenOut, lenIn := 0, 0
	for i := 0; i < numNodes; i++ {
		if len(g.out.view(ID(i))) > 0 {
			lenOut++
		}
		if len(g.in.view(ID(i))) > 0 {
			lenIn++
		}
	}
	counts := make([]byte, 0, 16*binary.MaxVarintLen64)
	for _, v := range []uint64{
		uint64(numNodes), uint64(g.literalClass), uint64(g.tripleCount),
		uint64(g.gen), uint64(lenOut), uint64(lenIn),
		uint64(g.sp.len()), uint64(g.po.len()), uint64(len(g.preds)),
		uint64(g.numTypeKeys()), uint64(g.numInstOfKeys()),
		uint64(g.numSuperKeys()), uint64(g.numSubKeys()), uint64(nameBytes),
	} {
		counts = binary.AppendUvarint(counts, v)
	}
	if err := writeSection(bw, secCounts, counts); err != nil {
		return err
	}

	lens := make([]byte, 0, numNodes*2)
	for i := 0; i < numNodes; i++ {
		lens = binary.AppendUvarint(lens, uint64(len(g.Name(ID(i)))))
	}
	if err := writeSection(bw, secNameLens, lens); err != nil {
		return err
	}
	blob := make([]byte, 0, nameBytes)
	for i := 0; i < numNodes; i++ {
		blob = append(blob, g.Name(ID(i))...)
	}
	if err := writeSection(bw, secNameBytes, blob); err != nil {
		return err
	}

	kinds := make([]byte, len(g.kinds))
	for i, k := range g.kinds {
		kinds[i] = byte(k)
	}
	if err := writeSection(bw, secKinds, kinds); err != nil {
		return err
	}

	preds := g.Predicates()
	pb := binary.AppendUvarint(nil, uint64(len(preds)))
	prev := ID(0)
	for i, p := range preds {
		if i == 0 {
			pb = binary.AppendUvarint(pb, uint64(p))
		} else {
			pb = binary.AppendUvarint(pb, uint64(p-prev))
		}
		prev = p
	}
	if err := writeSection(bw, secPreds, pb); err != nil {
		return err
	}

	if err := writeSection(bw, secTypes, encodeIDListMap(g.numTypeKeys(), g.forEachTyped)); err != nil {
		return err
	}
	if err := writeSection(bw, secSubclass, encodeIDListMap(g.numSuperKeys(), g.forEachSubclassed)); err != nil {
		return err
	}

	if err := writeSection(bw, secTriples, encodeEdgeIndex(&g.out, numNodes, lenOut, g.tripleCount)); err != nil {
		return err
	}
	if err := writeSection(bw, secTriplesIn, encodeEdgeIndex(&g.in, numNodes, lenIn, g.tripleCount)); err != nil {
		return err
	}

	if err := writeSection(bw, secEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// encodeEdgeIndex serializes an edge index (out or in) in ascending
// key order, keys without edges omitted, each key's edges sorted by
// (Pred, To) — the canonical shape of the two triples sections.
func encodeEdgeIndex(x *edgeIndex, numNodes, numKeys, tripleCount int) []byte {
	b := make([]byte, 0, tripleCount*4)
	b = binary.AppendUvarint(b, uint64(numKeys))
	var edges []Edge
	for k := 0; k < numNodes; k++ {
		es := x.view(ID(k))
		if len(es) == 0 {
			continue
		}
		edges = append(edges[:0], es...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Pred != edges[j].Pred {
				return edges[i].Pred < edges[j].Pred
			}
			return edges[i].To < edges[j].To
		})
		b = binary.AppendUvarint(b, uint64(k))
		b = binary.AppendUvarint(b, uint64(len(edges)))
		for _, e := range edges {
			b = binary.AppendUvarint(b, uint64(e.Pred))
			b = binary.AppendUvarint(b, uint64(e.To))
		}
	}
	return b
}

// encodeIDListMap serializes an ID -> sorted []ID association in
// ascending key order (the shared shape of the types and subclass
// sections). forEach supplies the entries in any order — both storage
// forms provide one (forEachTyped, forEachSubclassed).
func encodeIDListMap(numKeys int, forEach func(func(ID, []ID))) []byte {
	type entry struct {
		k    ID
		vals []ID
	}
	items := make([]entry, 0, numKeys)
	forEach(func(k ID, vals []ID) { items = append(items, entry{k, vals}) })
	sort.Slice(items, func(i, j int) bool { return items[i].k < items[j].k })
	b := binary.AppendUvarint(nil, uint64(len(items)))
	var vals []ID
	for _, it := range items {
		vals = append(vals[:0], it.vals...)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		b = binary.AppendUvarint(b, uint64(it.k))
		b = binary.AppendUvarint(b, uint64(len(vals)))
		for _, v := range vals {
			b = binary.AppendUvarint(b, uint64(v))
		}
	}
	return b
}

func writeSection(bw *bufio.Writer, id byte, payload []byte) error {
	var h [sectionHeaderLen]byte
	h[0] = id
	binary.LittleEndian.PutUint32(h[1:5], crc32.Checksum(payload, crcTable))
	binary.LittleEndian.PutUint64(h[5:13], uint64(len(payload)))
	if _, err := bw.Write(h[:]); err != nil {
		return err
	}
	_, err := bw.Write(payload)
	return err
}

// snapshotCounts is the decoded counts section: every capacity the
// parallel decoders need to preallocate exactly.
type snapshotCounts struct {
	numNodes, tripleCount             int
	literalClass                      ID
	gen                               int64
	lenOut, lenIn, lenSP, lenPO       int
	numPreds, numTypeInsts, numInstOf int
	numSubs, numSupers, nameByteLen   int
}

// LoadSnapshot reads a graph written by WriteSnapshot. Sections are
// checksum-verified and decoded by parallel workers; any corruption
// (bad magic, wrong version, checksum mismatch, truncated or missing
// section, out-of-range ID) fails the load — a partially decoded
// graph never escapes.
func LoadSnapshot(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("kb: reading snapshot: %w", err)
	}
	if len(data) < len(snapshotMagic)+4 || string(data[:4]) != snapshotMagic {
		return nil, fmt.Errorf("kb: bad snapshot magic (not a KB snapshot)")
	}
	switch v := binary.LittleEndian.Uint16(data[4:6]); v {
	case SnapshotVersion:
	case SnapshotVersion2:
		// v2 files decode portably from any reader; the mmap read path
		// needs a file and goes through LoadSnapshotFile instead.
		return decodeSnapshotV2(data)
	default:
		return nil, fmt.Errorf("kb: unsupported snapshot version %d (this build reads versions %d and %d)", v, SnapshotVersion, SnapshotVersion2)
	}

	secs := make(map[byte][]byte, 8)
	crcs := make(map[byte]uint32, 8)
	off := len(snapshotMagic) + 4
	sawEnd := false
	for off < len(data) {
		if len(data)-off < sectionHeaderLen {
			return nil, fmt.Errorf("kb: snapshot truncated in section header at offset %d", off)
		}
		id := data[off]
		crc := binary.LittleEndian.Uint32(data[off+1 : off+5])
		n := binary.LittleEndian.Uint64(data[off+5 : off+13])
		off += sectionHeaderLen
		if n > uint64(len(data)-off) {
			return nil, fmt.Errorf("kb: snapshot section %d truncated: need %d bytes, have %d", id, n, len(data)-off)
		}
		payload := data[off : off+int(n)]
		off += int(n)
		if id == secEnd {
			sawEnd = true
			break
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("kb: duplicate snapshot section %d", id)
		}
		secs[id] = payload
		crcs[id] = crc
	}
	if !sawEnd {
		return nil, fmt.Errorf("kb: snapshot truncated: end section missing")
	}
	for _, id := range []byte{secCounts, secNameLens, secNameBytes, secKinds, secPreds, secTypes, secSubclass, secTriples, secTriplesIn} {
		if _, ok := secs[id]; !ok {
			return nil, fmt.Errorf("kb: snapshot section %d missing", id)
		}
	}

	checked := func(id byte) ([]byte, error) {
		p := secs[id]
		if got := crc32.Checksum(p, crcTable); got != crcs[id] {
			return nil, fmt.Errorf("kb: snapshot section %d checksum mismatch (corrupt): got %08x, want %08x", id, got, crcs[id])
		}
		return p, nil
	}

	cp, err := checked(secCounts)
	if err != nil {
		return nil, err
	}
	var c snapshotCounts
	cr := varintReader{b: cp}
	fields := []struct {
		name string
		set  func(uint64)
	}{
		{"numNodes", func(v uint64) { c.numNodes = int(v) }},
		{"literalClass", func(v uint64) { c.literalClass = ID(v) }},
		{"tripleCount", func(v uint64) { c.tripleCount = int(v) }},
		{"generation", func(v uint64) { c.gen = int64(v) }},
		{"lenOut", func(v uint64) { c.lenOut = int(v) }},
		{"lenIn", func(v uint64) { c.lenIn = int(v) }},
		{"lenSP", func(v uint64) { c.lenSP = int(v) }},
		{"lenPO", func(v uint64) { c.lenPO = int(v) }},
		{"numPreds", func(v uint64) { c.numPreds = int(v) }},
		{"numTypeInsts", func(v uint64) { c.numTypeInsts = int(v) }},
		{"numInstOf", func(v uint64) { c.numInstOf = int(v) }},
		{"numSubs", func(v uint64) { c.numSubs = int(v) }},
		{"numSupers", func(v uint64) { c.numSupers = int(v) }},
		{"nameByteLen", func(v uint64) { c.nameByteLen = int(v) }},
	}
	for _, f := range fields {
		v, err := cr.uvarint()
		if err != nil {
			return nil, fmt.Errorf("kb: snapshot counts (%s): %w", f.name, err)
		}
		f.set(v)
	}
	if int(c.literalClass) >= c.numNodes {
		return nil, fmt.Errorf("kb: snapshot counts: literal class %d out of range", c.literalClass)
	}

	g := &Graph{
		names:        make([]string, c.numNodes),
		byName:       make(map[string]ID, c.numNodes),
		kinds:        make([]Kind, c.numNodes),
		types:        make(map[ID][]ID, c.numTypeInsts),
		superOf:      make(map[ID][]ID, c.numSubs),
		subOf:        make(map[ID][]ID, c.numSupers),
		instOf:       make(map[ID][]ID, c.numInstOf),
		out:          edgeIndex{spans: make([]pairSpan, c.numNodes), edges: make([]Edge, 0, c.tripleCount)},
		in:           edgeIndex{spans: make([]pairSpan, c.numNodes), edges: make([]Edge, 0, c.tripleCount)},
		sp:           newPairTable(c.lenSP, c.tripleCount),
		po:           newPairTable(c.lenPO, c.tripleCount),
		preds:        make(map[ID]struct{}, c.numPreds),
		tripleCount:  c.tripleCount,
		gen:          c.gen,
		literalClass: c.literalClass,
		closureDirty: true,
	}

	// Sections decode concurrently: one worker per section family,
	// each building its own disjoint Graph fields. Each triples
	// grouping feeds two indexes from a single varint pass — the dense
	// edge slice (out / in) by indexed store and the pair map (sp / po)
	// by one assignment per (key, pred) run.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	work := func(i int, f func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = f()
		}()
	}
	work(0, func() error { return g.decodeNames(&c, checked) })
	work(1, func() error { return g.decodeStructure(&c, checked) })
	work(2, func() error {
		payload, err := checked(secTriples)
		if err != nil {
			return err
		}
		return decodeEdges(payload, &c, "triples", &g.out, func(s, p ID, objs []ID) {
			g.sp.put(pairKey(s, p), objs)
		})
	})
	work(3, func() error {
		payload, err := checked(secTriplesIn)
		if err != nil {
			return err
		}
		return decodeEdges(payload, &c, "triplesIn", &g.in, func(o, p ID, subs []ID) {
			g.po.put(pairKey(p, o), subs)
		})
	})
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// decodeNames rebuilds the interned name table and the byName map.
// All names are sliced out of one shared backing string, so the table
// costs one allocation plus the map.
func (g *Graph) decodeNames(c *snapshotCounts, checked func(byte) ([]byte, error)) error {
	lensPayload, err := checked(secNameLens)
	if err != nil {
		return err
	}
	blobPayload, err := checked(secNameBytes)
	if err != nil {
		return err
	}
	if len(blobPayload) != c.nameByteLen {
		return fmt.Errorf("kb: snapshot name bytes: got %d bytes, counts say %d", len(blobPayload), c.nameByteLen)
	}
	blob := string(blobPayload)
	vr := varintReader{b: lensPayload}
	off := 0
	for i := 0; i < c.numNodes; i++ {
		n, err := vr.uvarint()
		if err != nil {
			return fmt.Errorf("kb: snapshot name lengths: %w", err)
		}
		end := off + int(n)
		if end > len(blob) {
			return fmt.Errorf("kb: snapshot name %d overruns name bytes", i)
		}
		name := blob[off:end]
		g.names[i] = name
		g.byName[name] = ID(i)
		off = end
	}
	if off != len(blob) {
		return fmt.Errorf("kb: snapshot name bytes: %d trailing bytes", len(blob)-off)
	}
	return nil
}

// decodeStructure rebuilds kinds, predicates, the type assertions and
// the subclass taxonomy (with their inverted maps).
func (g *Graph) decodeStructure(c *snapshotCounts, checked func(byte) ([]byte, error)) error {
	kp, err := checked(secKinds)
	if err != nil {
		return err
	}
	if len(kp) != c.numNodes {
		return fmt.Errorf("kb: snapshot kinds: got %d entries, counts say %d nodes", len(kp), c.numNodes)
	}
	for i, b := range kp {
		if b > byte(KindLiteral) {
			return fmt.Errorf("kb: snapshot kinds: node %d has invalid kind %d", i, b)
		}
		g.kinds[i] = Kind(b)
	}

	pp, err := checked(secPreds)
	if err != nil {
		return err
	}
	vr := varintReader{b: pp}
	np, err := vr.uvarint()
	if err != nil {
		return fmt.Errorf("kb: snapshot preds: %w", err)
	}
	var p ID
	for i := 0; i < int(np); i++ {
		d, err := vr.uvarint()
		if err != nil {
			return fmt.Errorf("kb: snapshot preds: %w", err)
		}
		if i == 0 {
			p = ID(d)
		} else {
			p += ID(d)
		}
		if int(p) >= c.numNodes {
			return fmt.Errorf("kb: snapshot preds: predicate ID %d out of range", p)
		}
		g.preds[p] = struct{}{}
	}

	tp, err := checked(secTypes)
	if err != nil {
		return err
	}
	if err := decodeIDListMap(tp, c.numNodes, g.types, g.instOf); err != nil {
		return fmt.Errorf("kb: snapshot types: %w", err)
	}
	sp, err := checked(secSubclass)
	if err != nil {
		return err
	}
	if err := decodeIDListMap(sp, c.numNodes, g.superOf, g.subOf); err != nil {
		return fmt.Errorf("kb: snapshot subclass: %w", err)
	}
	return nil
}

// decodeIDListMap is the inverse of encodeIDListMap; inv receives the
// reversed (value -> keys) edges when non-nil.
func decodeIDListMap(payload []byte, numNodes int, fwd, inv map[ID][]ID) error {
	vr := varintReader{b: payload}
	n, err := vr.uvarint()
	if err != nil {
		return err
	}
	for i := 0; i < int(n); i++ {
		kv, err := vr.uvarint()
		if err != nil {
			return err
		}
		k := ID(kv)
		if int(k) >= numNodes {
			return fmt.Errorf("key ID %d out of range", k)
		}
		cnt, err := vr.uvarint()
		if err != nil {
			return err
		}
		vals := make([]ID, 0, cnt)
		for j := 0; j < int(cnt); j++ {
			vv, err := vr.uvarint()
			if err != nil {
				return err
			}
			v := ID(vv)
			if int(v) >= numNodes {
				return fmt.Errorf("value ID %d out of range", v)
			}
			vals = append(vals, v)
			if inv != nil {
				inv[v] = append(inv[v], k)
			}
		}
		fwd[k] = vals
	}
	return nil
}

// decodeEdges decodes one triples grouping into a dense edge index
// (fwd, nil to skip) and a pair index (run: called once per
// (key, pred) run, nil to skip) in a single varint pass. Because keys
// arrive in ascending order and each key's edges sorted by (pred,
// to), edges append straight onto the index's arena with one span
// store per key, and each pred run makes exactly one run call — never
// a lookup-append per edge; index-entry traffic is what load time is
// made of. The run slice is a reused scratch buffer: receivers must
// copy what they keep (pairTable.put does).
func decodeEdges(payload []byte, c *snapshotCounts, secName string,
	fwd *edgeIndex, run func(key, pred ID, ids []ID)) error {
	vr := varintReader{b: payload}
	nk, err := vr.uvarint()
	if err != nil {
		return fmt.Errorf("kb: snapshot %s: %w", secName, err)
	}
	var scratch []ID
	total := 0
	for i := 0; i < int(nk); i++ {
		kv, err := vr.uvarint()
		if err != nil {
			return fmt.Errorf("kb: snapshot %s: %w", secName, err)
		}
		key := ID(kv)
		if int(key) >= c.numNodes {
			return fmt.Errorf("kb: snapshot %s: key ID %d out of range", secName, key)
		}
		cnt, err := vr.uvarint()
		if err != nil {
			return fmt.Errorf("kb: snapshot %s: %w", secName, err)
		}
		// Guard before appending: a corrupt count must not balloon the
		// arena past what the counts section promised.
		if cnt > uint64(c.tripleCount-total) {
			return fmt.Errorf("kb: snapshot %s: more than %d triples", secName, c.tripleCount)
		}
		eStart := 0
		if fwd != nil {
			eStart = len(fwd.edges)
		}
		scratch = scratch[:0]
		runStart := 0
		var runPred ID
		for j := 0; j < int(cnt); j++ {
			pv, err := vr.uvarint()
			if err != nil {
				return fmt.Errorf("kb: snapshot %s: %w", secName, err)
			}
			ov, err := vr.uvarint()
			if err != nil {
				return fmt.Errorf("kb: snapshot %s: %w", secName, err)
			}
			if int(pv) >= c.numNodes || int(ov) >= c.numNodes {
				return fmt.Errorf("kb: snapshot %s: ID out of range in entry %d/%d", secName, i, j)
			}
			p, o := ID(pv), ID(ov)
			if run != nil {
				if j > 0 && p != runPred {
					run(key, runPred, scratch[runStart:len(scratch):len(scratch)])
					runStart = len(scratch)
				}
				scratch = append(scratch, o)
			}
			runPred = p
			if fwd != nil {
				fwd.edges = append(fwd.edges, Edge{Pred: p, To: o})
			}
		}
		total += int(cnt)
		if run != nil && cnt > 0 {
			run(key, runPred, scratch[runStart:len(scratch):len(scratch)])
		}
		if fwd != nil {
			fwd.putSpan(key, eStart, int(cnt))
		}
	}
	if total != c.tripleCount {
		return fmt.Errorf("kb: snapshot %s: got %d triples, counts say %d", secName, total, c.tripleCount)
	}
	return nil
}

// varintReader decodes unsigned varints from a byte slice.
type varintReader struct {
	b   []byte
	off int
}

// uvarint keeps the dominant one- and two-byte cases (IDs and counts
// below 2^14) on an inlinable fast path; decodeEdges spends a large
// share of its time here.
func (r *varintReader) uvarint() (uint64, error) {
	if r.off+1 < len(r.b) {
		c := r.b[r.off]
		if c < 0x80 {
			r.off++
			return uint64(c), nil
		}
		if c2 := r.b[r.off+1]; c2 < 0x80 {
			r.off += 2
			return uint64(c&0x7f) | uint64(c2)<<7, nil
		}
	}
	return r.uvarintSlow()
}

func (r *varintReader) uvarintSlow() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated or malformed varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}
