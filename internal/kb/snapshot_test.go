package kb

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

// snapBytes serializes g, failing the test on error.
func snapBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := paperGraph()
	g.AddSubclass("city", "location")
	g.AddSubclass("Chemistry awards", "awards")

	snap := snapBytes(t, g)
	g2, err := LoadSnapshot(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}

	// The encoding is canonical, so re-encoding the loaded graph must
	// reproduce the original bytes exactly — this covers the node
	// table, kinds, predicates, taxonomy, type assertions, triples and
	// all counts in one comparison.
	if !bytes.Equal(snap, snapBytes(t, g2)) {
		t.Error("re-encoded snapshot differs from original (round trip not exact)")
	}

	// The text encoding must agree too.
	var t1, t2 bytes.Buffer
	if err := g.Encode(&t1); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := g2.Encode(&t2); err != nil {
		t.Fatalf("Encode(loaded): %v", err)
	}
	if t1.String() != t2.String() {
		t.Error("text encodings differ after snapshot round trip")
	}

	// Inverted indexes (in, po, instOf, subOf) are rebuilt by the
	// decoder rather than serialized; check them semantically.
	if g2.Generation() != g.Generation() {
		t.Errorf("generation: got %d, want %d", g2.Generation(), g.Generation())
	}
	if g2.NumTriples() != g.NumTriples() {
		t.Errorf("triples: got %d, want %d", g2.NumTriples(), g.NumTriples())
	}
	s := g2.Lookup("Avram Hershko")
	born := g2.Lookup("wasBornIn")
	karcag := g2.Lookup("Karcag")
	if s == Invalid || born == Invalid || karcag == Invalid {
		t.Fatal("entity lost in snapshot round trip")
	}
	if got := g2.Subjects(born, karcag); len(got) != 1 || got[0] != s {
		t.Errorf("Subjects(wasBornIn, Karcag) = %v, want [%d]", got, s)
	}
	if len(g2.In(karcag)) != len(g.In(g.Lookup("Karcag"))) {
		t.Error("in-edge count differs after round trip")
	}
	lit := g2.Lookup("1937-12-31")
	if lit == Invalid || g2.KindOf(lit) != KindLiteral {
		t.Error("literal kind lost in snapshot round trip")
	}
	if !g2.HasType(g2.Lookup("Haifa"), g2.Lookup("location")) {
		t.Error("taxonomy closure lost in snapshot round trip")
	}
	if got := g2.InstancesOf(g2.Lookup("city")); len(got) != 2 {
		t.Errorf("InstancesOf(city) = %d instances, want 2", len(got))
	}
	if got := g2.Subclasses(g2.Lookup("awards")); len(got) != 1 {
		t.Errorf("Subclasses(awards) = %v, want one class", got)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	g := paperGraph()
	g.AddSubclass("city", "location")
	a := snapBytes(t, g)
	b := snapBytes(t, g)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same graph differ")
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := New() // only the literal pseudo-class is interned
	g2, err := LoadSnapshot(bytes.NewReader(snapBytes(t, g)))
	if err != nil {
		t.Fatalf("LoadSnapshot(empty): %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumTriples() != 0 {
		t.Errorf("empty graph round trip: %d nodes, %d triples", g2.NumNodes(), g2.NumTriples())
	}
	if g2.literalClass != g.literalClass {
		t.Errorf("literalClass: got %d, want %d", g2.literalClass, g.literalClass)
	}
}

func TestSnapshotSmallerThanText(t *testing.T) {
	g := paperGraph()
	snap := snapBytes(t, g)
	var txt bytes.Buffer
	if err := g.Encode(&txt); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(snap) >= txt.Len() {
		t.Errorf("snapshot (%d bytes) not smaller than text (%d bytes)", len(snap), txt.Len())
	}
}

// snapSection locates section id within a snapshot, returning the
// offset of its header and the payload bounds.
func snapSection(t *testing.T, data []byte, id byte) (hdrOff, payStart, payEnd int) {
	t.Helper()
	off := len(snapshotMagic) + 4
	for off < len(data) {
		sid := data[off]
		n := int(binary.LittleEndian.Uint64(data[off+5 : off+13]))
		if sid == id {
			return off, off + sectionHeaderLen, off + sectionHeaderLen + n
		}
		off += sectionHeaderLen + n
	}
	t.Fatalf("section %d not found in snapshot", id)
	return 0, 0, 0
}

func TestSnapshotCorruption(t *testing.T) {
	good := snapBytes(t, paperGraph())

	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}

	cases := []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{"empty input", nil, "bad snapshot magic"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), "bad snapshot magic"},
		{"wrong version", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], 99)
			return b
		}), "unsupported snapshot version 99"},
		{"truncated header", good[:len(snapshotMagic)+4+5], "truncated in section header"},
		{"truncated section", mutate(func(b []byte) []byte {
			_, payStart, _ := snapSection(t, b, secTriples)
			return b[:payStart+1] // cut mid-payload
		}), "truncated"},
		{"missing end", mutate(func(b []byte) []byte {
			return b[:len(b)-sectionHeaderLen] // drop the empty end section
		}), "end section missing"},
		{"checksum mismatch", mutate(func(b []byte) []byte {
			_, payStart, _ := snapSection(t, b, secTriples)
			b[payStart] ^= 0xFF
			return b
		}), "checksum mismatch"},
		{"missing section", mutate(func(b []byte) []byte {
			hdrOff, _, payEnd := snapSection(t, b, secKinds)
			return append(b[:hdrOff], b[payEnd:]...)
		}), "section 4 missing"},
		{"duplicate section", mutate(func(b []byte) []byte {
			hdrOff, _, payEnd := snapSection(t, b, secKinds)
			sec := append([]byte(nil), b[hdrOff:payEnd]...)
			endOff, _, _ := snapSection(t, b, secEnd)
			out := append([]byte(nil), b[:endOff]...)
			out = append(out, sec...)
			return append(out, b[endOff:]...)
		}), "duplicate snapshot section"},
		{"corrupt name lengths", mutate(func(b []byte) []byte {
			// Point a name past the blob: bump the first length varint
			// and fix the CRC so only structural validation can catch it.
			hdrOff, payStart, payEnd := snapSection(t, b, secNameLens)
			b[payStart] = 0xFE // single-byte varint, huge length
			crc := crc32.Checksum(b[payStart:payEnd], crcTable)
			binary.LittleEndian.PutUint32(b[hdrOff+1:hdrOff+5], crc)
			return b
		}), "overruns name bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadSnapshot(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("LoadSnapshot succeeded on corrupt input")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
