//go:build !linux

package kb

import (
	"errors"
	"os"
)

// mmapSupported gates the in-place v2 read path at compile time; on
// platforms without a wired-up mmap, LoadSnapshotFile falls back to
// the portable decode path.
const mmapSupported = false

func mapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("kb: mmap not supported on this platform")
}
