package verify

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"detective/internal/kb"
)

func findings(r *Report, check string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

func cleanGraph() *kb.Graph {
	g := kb.New()
	g.AddSubclass("city", "place")
	g.AddType("Paris", "city")
	g.AddType("Lyon", "city")
	g.AddPropertyTriple("Paris", "country", "France")
	g.AddPropertyTriple("Lyon", "country", "France")
	g.AddTriple("France", "capital", "Paris")
	g.Freeze()
	return g
}

func TestCheckCleanGraph(t *testing.T) {
	r := Check(cleanGraph(), Options{})
	if !r.OK() {
		t.Fatalf("clean graph not OK: %+v", r.Findings)
	}
	if r.Warnings != 0 {
		t.Fatalf("clean graph has warnings: %+v", r.Findings)
	}
	if r.Nodes == 0 || r.Triples == 0 {
		t.Fatalf("report missing sizes: %+v", r)
	}
	if !strings.Contains(r.Summary(), "0 errors") {
		t.Fatalf("summary = %q", r.Summary())
	}
}

func TestCheckTaxonomyCycle(t *testing.T) {
	g := cleanGraph()
	// a ⊆ b ⊆ c ⊆ a: a three-class cycle the closure walk silently
	// tolerates but verify must flag.
	g.AddSubclass("a", "b")
	g.AddSubclass("b", "c")
	g.AddSubclass("c", "a")
	g.Freeze()
	r := Check(g, Options{})
	fs := findings(r, "taxonomy-cycle")
	if len(fs) != 1 || fs[0].Severity != Error {
		t.Fatalf("want one taxonomy-cycle error, got %+v", r.Findings)
	}
	if r.OK() {
		t.Fatal("cyclic graph reported OK")
	}
	if !strings.Contains(fs[0].Message, "3 classes") {
		t.Fatalf("message = %q", fs[0].Message)
	}
}

func TestCheckTaxonomySelfLoop(t *testing.T) {
	g := cleanGraph()
	g.AddSubclass("ouro", "ouro")
	g.Freeze()
	r := Check(g, Options{})
	fs := findings(r, "taxonomy-cycle")
	if len(fs) != 1 {
		t.Fatalf("want one self-loop finding, got %+v", r.Findings)
	}
	if !strings.Contains(fs[0].Message, "its own superclass") {
		t.Fatalf("message = %q", fs[0].Message)
	}
}

func TestCheckDeepTaxonomyIterative(t *testing.T) {
	// A 4096-deep subclass chain: the SCC must be iterative, not
	// recursive, or this would overflow the stack. No cycle expected.
	g := kb.New()
	for i := 0; i < 4096; i++ {
		g.AddSubclass(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d", i+1))
	}
	g.Freeze()
	r := Check(g, Options{})
	if len(findings(r, "taxonomy-cycle")) != 0 {
		t.Fatalf("deep chain misreported as cyclic: %+v", r.Findings)
	}
}

func TestCheckDegreeOutlier(t *testing.T) {
	g := kb.New()
	for i := 0; i < 64; i++ {
		g.AddPropertyTriple(fmt.Sprintf("n%d", i), "p", fmt.Sprintf("v%d", i))
		// Every node also links to the hub.
		g.AddTriple(fmt.Sprintf("n%d", i), "p", "HUB")
	}
	g.Freeze()
	r := Check(g, Options{DegreeSigma: 3, MinOutlierDegree: 16})
	fs := findings(r, "degree-outlier")
	if len(fs) == 0 {
		t.Fatalf("hub not flagged: %+v", r.Findings)
	}
	if fs[0].Severity != Warn {
		t.Fatalf("outlier severity = %v", fs[0].Severity)
	}
	if !strings.Contains(fs[0].Message, "HUB") {
		t.Fatalf("message = %q", fs[0].Message)
	}
	if r.Errors != 0 {
		t.Fatalf("outliers must not be errors: %+v", r.Findings)
	}
	hub := g.Lookup("HUB")
	if sus := r.SuspectNodes(); len(sus) == 0 || sus[0] != hub {
		t.Fatalf("SuspectNodes = %v, want [%d]", sus, hub)
	}
}

func TestCheckDuplicateLabels(t *testing.T) {
	g := cleanGraph()
	g.AddType("New York", "city")
	g.AddType("new_york", "city")
	g.AddType("NEW-YORK", "city")
	g.Freeze()
	r := Check(g, Options{})
	fs := findings(r, "duplicate-label")
	if len(fs) != 1 {
		t.Fatalf("want one duplicate-label finding, got %+v", r.Findings)
	}
	if !strings.Contains(fs[0].Message, "3 nodes") {
		t.Fatalf("message = %q", fs[0].Message)
	}
	if r.Errors != 0 {
		t.Fatal("duplicate labels must be warnings")
	}
}

func TestNormalizeLabel(t *testing.T) {
	cases := map[string]string{
		"New York":   "new york",
		"new_york":   "new york",
		"NEW-YORK":   "new york",
		"  a  b  ":   "a b",
		"plain":      "plain",
		"_-_":        "",
		"":           "",
		"Tab\tSpace": "tab space",
	}
	for in, want := range cases {
		if got := normalizeLabel(in); got != want {
			t.Errorf("normalizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"off": ModeOff, "warn": ModeWarn, "": ModeWarn, "strict": ModeStrict} {
		m, err := ParseMode(s)
		if err != nil || m != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, m, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode(bogus) accepted")
	}
	bad := &Report{Errors: 1}
	if !ModeStrict.Reject(bad) || ModeWarn.Reject(bad) || ModeOff.Reject(bad) {
		t.Fatal("Reject matrix wrong")
	}
	if ModeStrict.Reject(&Report{Warnings: 3}) {
		t.Fatal("strict rejected a warnings-only report")
	}
}

func TestReportTruncation(t *testing.T) {
	g := cleanGraph()
	for i := 0; i < 10; i++ {
		g.AddType(fmt.Sprintf("Dup %d", i), "city")
		g.AddType(fmt.Sprintf("dup_%d", i), "city")
	}
	g.Freeze()
	r := Check(g, Options{MaxFindings: 3})
	if !r.Truncated || len(r.Findings) != 3 || r.Warnings != 10 {
		t.Fatalf("truncation wrong: len=%d truncated=%v warnings=%d", len(r.Findings), r.Truncated, r.Warnings)
	}
}

// --- snapshot section surgery ---------------------------------------
//
// The DKBS format stores triples twice (subject- and object-grouped)
// and decodes the two sections independently; a payload whose CRC is
// recomputed after mutation loads cleanly but yields an asymmetric
// graph. These helpers rewrite one section in place to simulate that.

const (
	sectTriples   byte = 8
	sectTriplesIn byte = 9
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// mutateSection applies fn to the payload of section id and fixes up
// its CRC and length.
func mutateSection(t *testing.T, snap []byte, id byte, fn func([]byte) []byte) []byte {
	t.Helper()
	off := 8 // magic + version + reserved
	for off < len(snap) {
		sid := snap[off]
		ln := binary.LittleEndian.Uint64(snap[off+5 : off+13])
		start, end := off+13, off+13+int(ln)
		if sid != id {
			off = end
			continue
		}
		payload := fn(append([]byte(nil), snap[start:end]...))
		out := append([]byte(nil), snap[:off]...)
		out = append(out, sid)
		out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
		out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
		out = append(out, payload...)
		out = append(out, snap[end:]...)
		return out
	}
	t.Fatalf("section %d not found", id)
	return nil
}

// tinyGraph builds the smallest interesting KB: one triple a -p-> b.
func tinyGraph(t *testing.T) (*kb.Graph, []byte) {
	t.Helper()
	g := kb.New()
	g.AddTriple("a", "p", "b")
	g.Freeze()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return g, buf.Bytes()
}

func reload(t *testing.T, snap []byte) *kb.Graph {
	t.Helper()
	g, err := kb.LoadSnapshot(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("surgically corrupted snapshot must still load: %v", err)
	}
	return g
}

func TestCheckDetectsAsymmetricIndexes(t *testing.T) {
	g, snap := tinyGraph(t)
	a, b := g.Lookup("a"), g.Lookup("b")
	// triplesIn payload: numKeys, then per key (obj, count, pred, subj).
	// Redirect the sole in-edge's subject from a to b: the in/po side
	// now disagrees with out/sp.
	snap = mutateSection(t, snap, sectTriplesIn, func(p []byte) []byte {
		for i := len(p) - 1; i >= 0; i-- {
			if p[i] == byte(a) {
				p[i] = byte(b)
				return p
			}
		}
		t.Fatal("subject varint not found in triplesIn payload")
		return p
	})
	r := Check(reload(t, snap), Options{})
	if r.OK() {
		t.Fatalf("asymmetric graph reported OK: %+v", r.Findings)
	}
	if len(findings(r, "symmetry")) == 0 {
		t.Fatalf("no symmetry findings: %+v", r.Findings)
	}
}

func TestCheckDetectsUnregisteredPredicate(t *testing.T) {
	g, snap := tinyGraph(t)
	p, b := g.Lookup("p"), g.Lookup("b")
	// Rewrite the out-edge's predicate to point at node b (an
	// instance, not a registered predicate).
	snap = mutateSection(t, snap, sectTriples, func(pl []byte) []byte {
		for i := 0; i < len(pl); i++ {
			if pl[i] == byte(p) {
				pl[i] = byte(b)
				return pl
			}
		}
		t.Fatal("predicate varint not found in triples payload")
		return pl
	})
	r := Check(reload(t, snap), Options{})
	if len(findings(r, "structural")) == 0 {
		t.Fatalf("unregistered predicate not flagged: %+v", r.Findings)
	}
	if r.OK() {
		t.Fatal("graph with unregistered predicate reported OK")
	}
}
