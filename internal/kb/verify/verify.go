// Package verify implements an integrity self-check over a loaded
// kb.Graph. A snapshot can pass every CRC and still describe a graph
// that poisons repairs: the DKBS format stores triples twice (subject-
// and object-grouped), so a corrupted-but-checksummed file, a buggy
// producer, or a genuinely dirty upstream KB can yield asymmetric
// indexes, taxonomy cycles, or suspect edges that no frame-level check
// catches. Check walks the graph through its public API and returns a
// typed Report; callers run it in strict mode (reject the graph) or
// warn mode (serve it, but log and surface the findings).
//
// Checks, in decreasing severity:
//
//   - structural: out-of-range subject/object/predicate IDs and edges
//     whose predicate is not a registered predicate node (Error)
//   - symmetry: every out edge must appear in the sp, po, and in
//     indexes, and vice versa; triple totals must agree (Error)
//   - taxonomy: cycles in the subclass relation, found with an
//     iterative Tarjan SCC so deep taxonomies cannot overflow the
//     goroutine stack (Error)
//   - degree outliers: nodes whose total degree sits far above the
//     graph-wide mean — hub artifacts that make every value a
//     candidate (Warn)
//   - near-duplicate labels: distinct instance/class nodes whose
//     names normalize to the same key, the classic taxonomy-error
//     signal for entity splits (Warn)
package verify

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"detective/internal/kb"
)

// Severity classifies a finding. Error findings mean the graph is
// structurally unsound and strict mode rejects it; Warn findings mark
// suspect-but-servable content.
type Severity uint8

const (
	Warn Severity = iota
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warn"
}

// Finding is one integrity violation.
type Finding struct {
	Severity Severity `json:"severity"`
	// Check names the pass that produced the finding: "structural",
	// "symmetry", "taxonomy-cycle", "degree-outlier",
	// "duplicate-label".
	Check string `json:"check"`
	// Node is the primary node involved, kb.Invalid when the finding
	// is not tied to one node.
	Node kb.ID `json:"node"`
	// Peer is the secondary node of findings that implicate an edge or
	// a pair (symmetry violations, taxonomy cycles, duplicate labels);
	// kb.Invalid otherwise. (Node, Peer) is the suspect edge consumed
	// by SuspectEdges.
	Peer    kb.ID  `json:"peer"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Severity, f.Check, f.Message)
}

// Report is the outcome of one Check run. Findings is capped at
// Options.MaxFindings; Errors and Warnings always count every
// violation found.
type Report struct {
	Findings  []Finding `json:"findings"`
	Errors    int       `json:"errors"`
	Warnings  int       `json:"warnings"`
	Truncated bool      `json:"truncated"`
	Nodes     int       `json:"nodes"`
	Triples   int       `json:"triples"`
}

// OK reports whether the graph passed with no error-severity findings.
func (r *Report) OK() bool { return r.Errors == 0 }

// Summary renders a one-line operator summary.
func (r *Report) Summary() string {
	return fmt.Sprintf("verify: %d nodes, %d triples, %d errors, %d warnings",
		r.Nodes, r.Triples, r.Errors, r.Warnings)
}

// SuspectNodes returns the distinct nodes named by warn-severity
// findings — the hook for down-weighting evidence that touches them.
func (r *Report) SuspectNodes() []kb.ID {
	seen := make(map[kb.ID]bool)
	var out []kb.ID
	for _, f := range r.Findings {
		if f.Severity == Warn && f.Node != kb.Invalid && !seen[f.Node] {
			seen[f.Node] = true
			out = append(out, f.Node)
		}
	}
	return out
}

// contentChecks are the passes whose findings implicate KB *content*
// (as opposed to index structure): their nodes and edges are what the
// ensemble's dirty-KB loop down-weights. Structural and symmetry
// errors mean the graph itself is unsound — strict mode rejects it
// outright, so they carry no per-edge suspicion signal.
var contentChecks = map[string]bool{
	"taxonomy-cycle":  true,
	"degree-outlier":  true,
	"duplicate-label": true,
}

// SuspectEdges returns the distinct (Node, Peer) pairs implicated by
// content-level findings — the per-edge suspicion feed for ensemble
// down-weighting. Pairs are emitted in finding order; findings with
// no valid peer contribute nothing here (SuspectNodes still carries
// them).
func (r *Report) SuspectEdges() [][2]kb.ID {
	seen := make(map[[2]kb.ID]bool)
	var out [][2]kb.ID
	for _, f := range r.Findings {
		if !contentChecks[f.Check] || f.Node == kb.Invalid || f.Peer == kb.Invalid {
			continue
		}
		pair := [2]kb.ID{f.Node, f.Peer}
		if !seen[pair] {
			seen[pair] = true
			out = append(out, pair)
		}
	}
	return out
}

// SuspectNames resolves every node implicated by a content-level
// finding — both endpoints of suspect edges plus peerless content
// findings — to its name in g. This is the value-level form the
// ensemble vote consumes: a KB-backed proposal of one of these names
// is down-weighted.
func (r *Report) SuspectNames(g *kb.Graph) []string {
	seen := make(map[kb.ID]bool)
	var out []string
	add := func(id kb.ID) {
		if id != kb.Invalid && !seen[id] {
			seen[id] = true
			out = append(out, g.Name(id))
		}
	}
	for _, f := range r.Findings {
		if !contentChecks[f.Check] {
			continue
		}
		add(f.Node)
		add(f.Peer)
	}
	return out
}

func (r *Report) add(f Finding, max int) {
	if f.Severity == Error {
		r.Errors++
	} else {
		r.Warnings++
	}
	if len(r.Findings) < max {
		r.Findings = append(r.Findings, f)
	} else {
		r.Truncated = true
	}
}

// Mode selects what a caller does with a Report.
type Mode uint8

const (
	// ModeOff skips the check entirely.
	ModeOff Mode = iota
	// ModeWarn runs the check and serves the graph regardless,
	// surfacing findings through logs and metrics.
	ModeWarn
	// ModeStrict rejects any graph whose report contains
	// error-severity findings.
	ModeStrict
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeStrict:
		return "strict"
	default:
		return "warn"
	}
}

// ParseMode parses "off", "warn", or "strict".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "warn", "":
		return ModeWarn, nil
	case "strict":
		return ModeStrict, nil
	}
	return ModeWarn, fmt.Errorf("bad verify mode %q (want off, warn, or strict)", s)
}

// Reject reports whether a graph with report r should be refused
// under mode m.
func (m Mode) Reject(r *Report) bool { return m == ModeStrict && r != nil && !r.OK() }

// Options tunes Check. The zero value gets sensible defaults.
type Options struct {
	// MaxFindings caps the findings retained in the report (counts are
	// never capped). Default 64.
	MaxFindings int
	// DegreeSigma is how many standard deviations above the mean
	// degree a node must sit to be flagged as an outlier. Default 8.
	DegreeSigma float64
	// MinOutlierDegree is the absolute degree floor for outlier
	// findings, so tiny graphs don't flag their busiest node.
	// Default 256.
	MinOutlierDegree int
}

func (o Options) withDefaults() Options {
	if o.MaxFindings <= 0 {
		o.MaxFindings = 64
	}
	if o.DegreeSigma <= 0 {
		o.DegreeSigma = 8
	}
	if o.MinOutlierDegree <= 0 {
		o.MinOutlierDegree = 256
	}
	return o
}

// Check runs the full integrity pass over g and returns its report.
// g must be fully loaded; Check freezes it (idempotent) so closures
// are available. The pass only reads through the public Graph API and
// is safe to run on a graph that is concurrently serving reads.
func Check(g *kb.Graph, opts Options) *Report {
	opts = opts.withDefaults()
	g.Freeze()
	r := &Report{Nodes: g.NumNodes(), Triples: g.NumTriples()}
	checkStructure(g, r, opts)
	checkTaxonomy(g, r, opts)
	checkDegrees(g, r, opts)
	checkLabels(g, r, opts)
	return r
}

// checkStructure validates ID ranges, predicate registration, index
// symmetry (out ⊆ sp ∩ po ∩ in and in ⊆ out), and triple totals.
func checkStructure(g *kb.Graph, r *Report, opts Options) {
	n := kb.ID(g.NumNodes())
	preds := make(map[kb.ID]bool, g.NumPredicates())
	for _, p := range g.Predicates() {
		preds[p] = true
	}

	totalOut, totalIn := 0, 0
	for s := kb.ID(0); s < n; s++ {
		for _, e := range g.Out(s) {
			totalOut++
			if e.To < 0 || e.To >= n || e.Pred < 0 || e.Pred >= n {
				r.add(Finding{Error, "structural", s, kb.Invalid,
					fmt.Sprintf("out edge %d -[%d]-> %d references an ID outside [0,%d)", s, e.Pred, e.To, n)},
					opts.MaxFindings)
				continue
			}
			if !preds[e.Pred] {
				r.add(Finding{Error, "structural", e.Pred, s,
					fmt.Sprintf("edge %s -[%s]-> %s uses unregistered predicate node %d",
						g.Name(s), g.Name(e.Pred), g.Name(e.To), e.Pred)},
					opts.MaxFindings)
			}
			if !containsID(g.Objects(s, e.Pred), e.To) {
				r.add(Finding{Error, "symmetry", s, e.To,
					fmt.Sprintf("edge %s -[%s]-> %s present in out but missing from sp index",
						g.Name(s), g.Name(e.Pred), g.Name(e.To))},
					opts.MaxFindings)
			}
			if !containsID(g.Subjects(e.Pred, e.To), s) {
				r.add(Finding{Error, "symmetry", s, e.To,
					fmt.Sprintf("edge %s -[%s]-> %s present in out but missing from po index",
						g.Name(s), g.Name(e.Pred), g.Name(e.To))},
					opts.MaxFindings)
			}
			if !containsEdge(g.In(e.To), kb.Edge{Pred: e.Pred, To: s}) {
				r.add(Finding{Error, "symmetry", s, e.To,
					fmt.Sprintf("edge %s -[%s]-> %s present in out but missing from in index",
						g.Name(s), g.Name(e.Pred), g.Name(e.To))},
					opts.MaxFindings)
			}
		}
		// The reverse direction: every in edge must have a matching
		// out edge. (In edges point To the subject.)
		for _, e := range g.In(s) {
			totalIn++
			if e.To < 0 || e.To >= n || e.Pred < 0 || e.Pred >= n {
				r.add(Finding{Error, "structural", s, kb.Invalid,
					fmt.Sprintf("in edge of %d references an ID outside [0,%d)", s, n)},
					opts.MaxFindings)
				continue
			}
			if !containsEdge(g.Out(e.To), kb.Edge{Pred: e.Pred, To: s}) {
				r.add(Finding{Error, "symmetry", s, e.To,
					fmt.Sprintf("edge %s -[%s]-> %s present in in index but missing from out",
						g.Name(e.To), g.Name(e.Pred), g.Name(s))},
					opts.MaxFindings)
			}
		}
	}
	if totalOut != g.NumTriples() {
		r.add(Finding{Error, "structural", kb.Invalid, kb.Invalid,
			fmt.Sprintf("out index holds %d edges but the graph reports %d triples", totalOut, g.NumTriples())},
			opts.MaxFindings)
	}
	if totalIn != totalOut {
		r.add(Finding{Error, "structural", kb.Invalid, kb.Invalid,
			fmt.Sprintf("in index holds %d edges but out holds %d", totalIn, totalOut)},
			opts.MaxFindings)
	}
}

// checkTaxonomy finds cycles in the subclass relation with an
// iterative Tarjan SCC (explicit stack — taxonomy depth must not be
// bounded by goroutine stack size). Any SCC with more than one member,
// or a self-loop, is a cycle: subclass closure computation treats the
// relation as a DAG, so cycles silently truncate closures.
func checkTaxonomy(g *kb.Graph, r *Report, opts Options) {
	n := kb.ID(g.NumNodes())
	var classes []kb.ID
	for id := kb.ID(0); id < n; id++ {
		if g.KindOf(id) == kb.KindClass {
			classes = append(classes, id)
		}
	}
	if len(classes) == 0 {
		return
	}

	const unvisited = -1
	index := make(map[kb.ID]int, len(classes))
	low := make(map[kb.ID]int, len(classes))
	onStack := make(map[kb.ID]bool, len(classes))
	var stack []kb.ID
	next := 0

	type frame struct {
		v  kb.ID
		ei int // next successor index to explore
	}

	for _, root := range classes {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{v: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			succs := g.Superclasses(f.v)
			if f.ei < len(succs) {
				w := succs[f.ei]
				f.ei++
				if w == f.v {
					// Self-loop: a class that is its own superclass.
					r.add(Finding{Error, "taxonomy-cycle", f.v, f.v,
						fmt.Sprintf("class %q is its own superclass", g.Name(f.v))},
						opts.MaxFindings)
					continue
				}
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// All successors explored: pop the frame, fold lowlink up.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if p := &frames[len(frames)-1]; low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				// v is an SCC root: pop the component.
				var comp []kb.ID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					names := make([]string, 0, min(len(comp), 5))
					for _, c := range comp[:min(len(comp), 5)] {
						names = append(names, g.Name(c))
					}
					peer := comp[0]
					if peer == v && len(comp) > 1 {
						peer = comp[1]
					}
					r.add(Finding{Error, "taxonomy-cycle", v, peer,
						fmt.Sprintf("subclass cycle through %d classes: %s", len(comp), strings.Join(names, " -> "))},
						opts.MaxFindings)
				}
			}
		}
	}
}

// checkDegrees flags hub nodes whose total degree is far above the
// graph mean — artifacts that turn every lookup into a scan and every
// value into a plausible candidate.
func checkDegrees(g *kb.Graph, r *Report, opts Options) {
	n := kb.ID(g.NumNodes())
	var sum, sumSq float64
	cnt := 0
	deg := func(id kb.ID) int { return len(g.Out(id)) + len(g.In(id)) }
	for id := kb.ID(0); id < n; id++ {
		if d := deg(id); d > 0 {
			sum += float64(d)
			sumSq += float64(d) * float64(d)
			cnt++
		}
	}
	if cnt < 2 {
		return
	}
	mean := sum / float64(cnt)
	variance := sumSq/float64(cnt) - mean*mean
	if variance < 0 {
		variance = 0
	}
	threshold := mean + opts.DegreeSigma*math.Sqrt(variance)
	if threshold < float64(opts.MinOutlierDegree) {
		threshold = float64(opts.MinOutlierDegree)
	}

	type hub struct {
		id kb.ID
		d  int
	}
	var hubs []hub
	for id := kb.ID(0); id < n; id++ {
		if d := deg(id); float64(d) > threshold {
			hubs = append(hubs, hub{id, d})
		}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].d > hubs[j].d })
	for _, h := range hubs {
		r.add(Finding{Warn, "degree-outlier", h.id, kb.Invalid,
			fmt.Sprintf("node %q has degree %d (mean %.1f, threshold %.1f)", g.Name(h.id), h.d, mean, threshold)},
			opts.MaxFindings)
	}
}

// checkLabels groups instance and class names by a normalized key and
// flags groups holding more than one distinct node — likely entity
// splits ("NewYork" vs "new york") that fracture evidence.
func checkLabels(g *kb.Graph, r *Report, opts Options) {
	n := kb.ID(g.NumNodes())
	groups := make(map[string][]kb.ID)
	for id := kb.ID(0); id < n; id++ {
		switch g.KindOf(id) {
		case kb.KindInstance, kb.KindClass:
		default:
			continue
		}
		key := normalizeLabel(g.Name(id))
		if key == "" {
			continue
		}
		groups[key] = append(groups[key], id)
	}
	keys := make([]string, 0, len(groups))
	for k, ids := range groups {
		if len(ids) > 1 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		ids := groups[k]
		names := make([]string, 0, min(len(ids), 5))
		for _, id := range ids[:min(len(ids), 5)] {
			names = append(names, fmt.Sprintf("%q", g.Name(id)))
		}
		r.add(Finding{Warn, "duplicate-label", ids[0], ids[1],
			fmt.Sprintf("%d nodes share normalized label %q: %s", len(ids), k, strings.Join(names, ", "))},
			opts.MaxFindings)
	}
}

// normalizeLabel lowercases, trims, and collapses runs of whitespace,
// '_', and '-' to a single space.
func normalizeLabel(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return ""
	}
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '_' || r == '-' {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		b.WriteRune(r)
	}
	return b.String()
}

func containsID(ids []kb.ID, want kb.ID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func containsEdge(edges []kb.Edge, want kb.Edge) bool {
	for _, e := range edges {
		if e == want {
			return true
		}
	}
	return false
}
