package kb

// DKBS version 2: the mmap-ready snapshot layout. Version 1 (see
// snapshot.go) made loading fast by decoding varint sections into
// rebuilt indexes; v2 makes loading nearly free by laying the indexes
// out in the file exactly as the Graph reads them in memory. Every
// index the hot path touches — the span-arena edge indexes, the
// sp/po pair tables, the name blob, a pointer-free name hash table
// replacing the byName map, and span-table forms of the four
// type/taxonomy assertion maps — is stored as a raw little-endian
// array, page-aligned, so a loader can mmap the file read-only and
// use the sections in place: "load" is one mmap plus demand page-in,
// and the pages are shared across every process serving the same
// snapshot. Graphs loaded this way are read-only (see Graph).
//
// Layout:
//
//	magic "DKBS" | u16 version=2 | u16 sectionCount
//	directory: sectionCount entries of 24 bytes each —
//	  u8 id | u8 flags (1 = raw/mmap-eligible) | u16 reserved |
//	  u32 CRC-32C(payload) | u64 absolute offset | u64 length
//	payloads; raw sections start on a snapPageSize boundary
//	(padding bytes are zero and excluded from the CRC)
//
// Raw sections are little-endian on every host. The mmap read path
// (LoadSnapshotFile) casts them in place and is compiled in on
// little-endian platforms with mmap support; everything else — v2
// files on other platforms, io.Reader sources, and kbtool — goes
// through decodeSnapshotV2, which verifies every section checksum and
// rebuilds heap-backed slices portably.
//
// The encoding is canonical: arenas are rewritten in ascending key
// order with ascending values and exact capacities (no dead ranges
// from incremental growth), so the same graph content always
// serializes to identical bytes regardless of construction order —
// `kbtool pack -v2` is deterministic, like v1.
//
// Trust model: the mmap path checksums only the small varint sections
// it must decode (counts, preds) and bounds-checks every span table
// against its arena, so a corrupt file fails the load or panics on a
// bounds check rather than reading wild memory — but it does not CRC
// the big arenas (touching every page would defeat the ~0ms load).
// Deploy pipelines should run `kbtool verify` (which uses the fully
// checksummed decode path) before promoting a snapshot.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"unsafe"
)

// SnapshotVersion2 is the mmap-ready format version written by
// WriteSnapshotV2.
const SnapshotVersion2 = 2

// snapPageSize is the alignment raw sections are padded to — the
// page size mmap guarantees, on every platform this serves.
const snapPageSize = 4096

// v2 section IDs.
const (
	sec2Counts      byte = iota + 1 // varint: every count the loader needs
	sec2Preds                       // varint: sorted predicate IDs, delta-encoded
	sec2NameBytes                   // raw: concatenated name bytes
	sec2NameOffs                    // raw: u32 × (numNodes+1) name boundaries
	sec2NameTab                     // raw: nameSlot × nameTabSize
	sec2Kinds                       // raw: u8 × numNodes
	sec2TypeSpans                   // raw: pairSpan × numNodes (instance -> classes)
	sec2TypeIDs                     // raw: ID arena for sec2TypeSpans
	sec2InstOfSpans                 // raw: pairSpan × numNodes (class -> instances)
	sec2InstOfIDs
	sec2SuperSpans // raw: pairSpan × numNodes (class -> superclasses)
	sec2SuperIDs
	sec2SubSpans // raw: pairSpan × numNodes (class -> subclasses)
	sec2SubIDs
	sec2OutSpans // raw: pairSpan × numNodes (subject -> edges)
	sec2OutEdges // raw: Edge × tripleCount
	sec2InSpans  // raw: pairSpan × numNodes (object -> edges)
	sec2InEdges  // raw: Edge × tripleCount
	sec2SPKeys   // raw: u64 × spTabSize (subject,pred pair table)
	sec2SPSpans  // raw: pairSpan × spTabSize
	sec2SPIDs    // raw: ID × tripleCount
	sec2POKeys   // raw: u64 × poTabSize (pred,object pair table)
	sec2POSpans  // raw: pairSpan × poTabSize
	sec2POIDs    // raw: ID × tripleCount
	sec2Max
)

const dirEntryLen = 24

// hostLittleEndian gates the in-place cast path; big-endian hosts use
// the portable decoder.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mapping pins the mmap'd bytes a snapshot-backed graph reads from.
// Mappings are deliberately never unmapped: name strings and arena
// views handed out by the graph (repair results, memo entries, cached
// candidates) may outlive the Graph itself, and the pages are clean
// file-backed memory the kernel reclaims under pressure anyway, so
// retiring a graph costs only virtual address space.
type mapping struct {
	path string
	data []byte
}

// Mapped reports whether the graph reads its arenas from an mmap'd
// snapshot file.
func (g *Graph) Mapped() bool { return g.mapped != nil }

// v2Counts is the decoded counts section.
type v2Counts struct {
	numNodes                    int
	literalClass                ID
	tripleCount                 int
	gen                         int64
	numPreds                    int
	nameByteLen                 int
	nameTabSize                 int
	typeKeys, typeIDsLen        int
	instOfKeys, instOfIDsLen    int
	superKeys, superIDsLen      int
	subKeys, subIDsLen          int
	spTabSize, spUsed, spIDsLen int
	poTabSize, poUsed, poIDsLen int
}

func (c *v2Counts) fields() []struct {
	name string
	v    *int
} {
	return []struct {
		name string
		v    *int
	}{
		{"numPreds", &c.numPreds},
		{"nameByteLen", &c.nameByteLen},
		{"nameTabSize", &c.nameTabSize},
		{"typeKeys", &c.typeKeys}, {"typeIDsLen", &c.typeIDsLen},
		{"instOfKeys", &c.instOfKeys}, {"instOfIDsLen", &c.instOfIDsLen},
		{"superKeys", &c.superKeys}, {"superIDsLen", &c.superIDsLen},
		{"subKeys", &c.subKeys}, {"subIDsLen", &c.subIDsLen},
		{"spTabSize", &c.spTabSize}, {"spUsed", &c.spUsed}, {"spIDsLen", &c.spIDsLen},
		{"poTabSize", &c.poTabSize}, {"poUsed", &c.poUsed}, {"poIDsLen", &c.poIDsLen},
	}
}

// ---------------------------------------------------------------------------
// Writer

// WriteSnapshotV2 writes g in the mmap-ready v2 snapshot format. Like
// WriteSnapshot, the output is canonical: the same graph content
// always yields identical bytes.
func (g *Graph) WriteSnapshotV2(w io.Writer) error {
	numNodes := g.NumNodes()

	// Name storage: blob + offsets + the open-addressing name table,
	// inserted in ID order so slot placement is deterministic.
	nameOffs := make([]uint32, numNodes+1)
	blobLen := 0
	for i := 0; i < numNodes; i++ {
		blobLen += len(g.Name(ID(i)))
	}
	blob := make([]byte, 0, blobLen)
	ntab := newNameTable(numNodes)
	for i := 0; i < numNodes; i++ {
		name := g.Name(ID(i))
		nameOffs[i] = uint32(len(blob))
		blob = append(blob, name...)
		ntab.insert(name, ID(i))
	}
	nameOffs[numNodes] = uint32(len(blob))

	kinds := make([]byte, numNodes)
	for i, k := range g.kinds {
		kinds[i] = byte(k)
	}

	// Assertion indexes in canonical span-table form, with the two
	// inverses derived from the forward sets so the four can never
	// disagree.
	typeSpans, typeIDs, typeKeys := canonIDList(numNodes, g.forEachTyped)
	instSpans, instIDs, instKeys := invertIDList(numNodes, typeSpans, typeIDs)
	superSpans, superIDs, superKeys := canonIDList(numNodes, g.forEachSubclassed)
	subSpans, subIDs, subKeys := invertIDList(numNodes, superSpans, superIDs)

	outSpans, outEdges := canonEdges(&g.out, numNodes)
	inSpans, inEdges := canonEdges(&g.in, numNodes)

	spKeys, spSpans, spIDs, spUsed := canonPairTable(g.sp)
	poKeys, poSpans, poIDs, poUsed := canonPairTable(g.po)

	counts := make([]byte, 0, 32*binary.MaxVarintLen64)
	c := v2Counts{
		numNodes: numNodes, literalClass: g.literalClass,
		tripleCount: g.tripleCount, gen: g.gen,
		numPreds: len(g.preds), nameByteLen: len(blob), nameTabSize: len(ntab.slots),
		typeKeys: typeKeys, typeIDsLen: len(typeIDs),
		instOfKeys: instKeys, instOfIDsLen: len(instIDs),
		superKeys: superKeys, superIDsLen: len(superIDs),
		subKeys: subKeys, subIDsLen: len(subIDs),
		spTabSize: len(spKeys), spUsed: spUsed, spIDsLen: len(spIDs),
		poTabSize: len(poKeys), poUsed: poUsed, poIDsLen: len(poIDs),
	}
	for _, v := range []uint64{
		uint64(c.numNodes), uint64(c.literalClass), uint64(c.tripleCount), uint64(c.gen),
	} {
		counts = binary.AppendUvarint(counts, v)
	}
	for _, f := range c.fields() {
		counts = binary.AppendUvarint(counts, uint64(*f.v))
	}

	preds := g.Predicates()
	pb := binary.AppendUvarint(nil, uint64(len(preds)))
	prev := ID(0)
	for i, p := range preds {
		if i == 0 {
			pb = binary.AppendUvarint(pb, uint64(p))
		} else {
			pb = binary.AppendUvarint(pb, uint64(p-prev))
		}
		prev = p
	}

	sections := []v2Section{
		{sec2Counts, false, counts},
		{sec2Preds, false, pb},
		{sec2NameBytes, true, blob},
		{sec2NameOffs, true, appendU32s(nil, nameOffs)},
		{sec2NameTab, true, appendSlots(nil, ntab.slots)},
		{sec2Kinds, true, kinds},
		{sec2TypeSpans, true, appendSpans(nil, typeSpans)},
		{sec2TypeIDs, true, appendIDs(nil, typeIDs)},
		{sec2InstOfSpans, true, appendSpans(nil, instSpans)},
		{sec2InstOfIDs, true, appendIDs(nil, instIDs)},
		{sec2SuperSpans, true, appendSpans(nil, superSpans)},
		{sec2SuperIDs, true, appendIDs(nil, superIDs)},
		{sec2SubSpans, true, appendSpans(nil, subSpans)},
		{sec2SubIDs, true, appendIDs(nil, subIDs)},
		{sec2OutSpans, true, appendSpans(nil, outSpans)},
		{sec2OutEdges, true, appendEdges(nil, outEdges)},
		{sec2InSpans, true, appendSpans(nil, inSpans)},
		{sec2InEdges, true, appendEdges(nil, inEdges)},
		{sec2SPKeys, true, appendU64s(nil, spKeys)},
		{sec2SPSpans, true, appendSpans(nil, spSpans)},
		{sec2SPIDs, true, appendIDs(nil, spIDs)},
		{sec2POKeys, true, appendU64s(nil, poKeys)},
		{sec2POSpans, true, appendSpans(nil, poSpans)},
		{sec2POIDs, true, appendIDs(nil, poIDs)},
	}
	return writeV2(w, sections)
}

type v2Section struct {
	id      byte
	raw     bool
	payload []byte
}

func writeV2(w io.Writer, sections []v2Section) error {
	// Lay out: header, directory, then payloads with raw sections
	// padded up to the next page boundary.
	hdrLen := len(snapshotMagic) + 4 + dirEntryLen*len(sections)
	off := int64(hdrLen)
	offsets := make([]int64, len(sections))
	for i, s := range sections {
		if s.raw {
			off = alignUp(off, snapPageSize)
		}
		offsets[i] = off
		off += int64(len(s.payload))
	}

	hdr := make([]byte, 0, hdrLen)
	hdr = append(hdr, snapshotMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, SnapshotVersion2)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(sections)))
	for i, s := range sections {
		var flags byte
		if s.raw {
			flags = 1
		}
		hdr = append(hdr, s.id, flags, 0, 0)
		hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(s.payload, crcTable))
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(offsets[i]))
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(s.payload)))
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	pos := int64(hdrLen)
	var pad [snapPageSize]byte
	for i, s := range sections {
		if gap := offsets[i] - pos; gap > 0 {
			if _, err := w.Write(pad[:gap]); err != nil {
				return err
			}
			pos += gap
		}
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
		pos += int64(len(s.payload))
	}
	return nil
}

func alignUp(v, align int64) int64 {
	return (v + align - 1) &^ (align - 1)
}

// canonIDList builds the canonical span-table form of an ID -> []ID
// association: dense spans over every node, values sorted ascending,
// packed back to back with exact capacities.
func canonIDList(numNodes int, forEach func(func(ID, []ID))) (spans []pairSpan, arena []ID, keys int) {
	lists := make([][]ID, numNodes)
	forEach(func(k ID, vals []ID) { lists[k] = vals })
	spans = make([]pairSpan, numNodes)
	for k, vals := range lists {
		if len(vals) == 0 {
			continue
		}
		keys++
		cp := append([]ID(nil), vals...)
		sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
		spans[k] = pairSpan{off: uint32(len(arena)), n: uint32(len(cp)), cap: uint32(len(cp))}
		arena = append(arena, cp...)
	}
	return spans, arena, keys
}

// invertIDList derives the inverse association (value -> keys) of a
// canonical span table. Iterating keys in ascending order makes every
// inverse list ascending without a sort.
func invertIDList(numNodes int, spans []pairSpan, arena []ID) (inv []pairSpan, invArena []ID, keys int) {
	counts := make([]uint32, numNodes)
	for _, s := range spans {
		for _, v := range arena[s.off : s.off+s.n] {
			counts[v]++
		}
	}
	inv = make([]pairSpan, numNodes)
	total := uint32(0)
	for v, n := range counts {
		if n == 0 {
			continue
		}
		keys++
		inv[v] = pairSpan{off: total, cap: n} // n grows as we fill
		total += n
	}
	invArena = make([]ID, total)
	for k := range spans {
		s := spans[k]
		for _, v := range arena[s.off : s.off+s.n] {
			sp := &inv[v]
			invArena[sp.off+sp.n] = ID(k)
			sp.n++
		}
	}
	return inv, invArena, keys
}

// canonEdges rebuilds an edge index as a dense, dead-range-free arena
// with every edge list sorted by (Pred, To).
func canonEdges(x *edgeIndex, numNodes int) (spans []pairSpan, edges []Edge) {
	spans = make([]pairSpan, numNodes)
	var scratch []Edge
	for k := 0; k < numNodes; k++ {
		es := x.view(ID(k))
		if len(es) == 0 {
			continue
		}
		scratch = append(scratch[:0], es...)
		sort.Slice(scratch, func(i, j int) bool {
			if scratch[i].Pred != scratch[j].Pred {
				return scratch[i].Pred < scratch[j].Pred
			}
			return scratch[i].To < scratch[j].To
		})
		spans[k] = pairSpan{off: uint32(len(edges)), n: uint32(len(scratch)), cap: uint32(len(scratch))}
		edges = append(edges, scratch...)
	}
	return spans, edges
}

// canonPairTable rebuilds a pair table canonically: keys inserted in
// ascending order (deterministic slot placement), values sorted
// ascending, arena packed with no dead ranges.
func canonPairTable(t *pairTable) (keys []uint64, spans []pairSpan, ids []ID, used int) {
	nt := flattenPairTable(t)
	return nt.keys, nt.spans, nt.ids, nt.used
}

// flattenPairTable rebuilds t (flat or COW overlay chain) as a single
// canonical flat table.
func flattenPairTable(t *pairTable) *pairTable {
	ks := make([]uint64, 0, t.len())
	total := 0
	t.forEachKey(func(k uint64) {
		ks = append(ks, k)
		total += len(t.get(k))
	})
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	nt := newPairTable(len(ks), total)
	var vals []ID
	for _, k := range ks {
		vals = append(vals[:0], t.get(k)...)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		nt.put(k, vals)
	}
	return nt
}

// Raw little-endian serializers. The writer always emits LE so files
// are portable; readers cast in place only on LE hosts.

func appendU32s(b []byte, v []uint32) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint32(b, x)
	}
	return b
}

func appendU64s(b []byte, v []uint64) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, x)
	}
	return b
}

func appendSpans(b []byte, v []pairSpan) []byte {
	for _, s := range v {
		b = binary.LittleEndian.AppendUint32(b, s.off)
		b = binary.LittleEndian.AppendUint32(b, s.n)
		b = binary.LittleEndian.AppendUint32(b, s.cap)
	}
	return b
}

func appendEdges(b []byte, v []Edge) []byte {
	for _, e := range v {
		b = binary.LittleEndian.AppendUint32(b, uint32(e.Pred))
		b = binary.LittleEndian.AppendUint32(b, uint32(e.To))
	}
	return b
}

func appendIDs(b []byte, v []ID) []byte {
	for _, id := range v {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	return b
}

func appendSlots(b []byte, v []nameSlot) []byte {
	for _, s := range v {
		b = binary.LittleEndian.AppendUint64(b, s.hash)
		b = binary.LittleEndian.AppendUint32(b, s.idPlus1)
		b = binary.LittleEndian.AppendUint32(b, 0)
	}
	return b
}

// ---------------------------------------------------------------------------
// Directory

type dirEntry struct {
	id    byte
	flags byte
	crc   uint32
	off   int64
	n     int64
}

func (e dirEntry) raw() bool { return e.flags&1 != 0 }

// parseV2Directory validates the v2 header and returns the section
// directory keyed by section ID. size bounds every entry.
func parseV2Directory(hdr []byte, size int64) (map[byte]dirEntry, error) {
	if len(hdr) < 8 || string(hdr[:4]) != snapshotMagic {
		return nil, fmt.Errorf("kb: bad snapshot magic (not a KB snapshot)")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != SnapshotVersion2 {
		return nil, fmt.Errorf("kb: snapshot version %d is not v2", v)
	}
	n := int(binary.LittleEndian.Uint16(hdr[6:8]))
	if n == 0 || n > 64 {
		return nil, fmt.Errorf("kb: snapshot directory has implausible section count %d", n)
	}
	if len(hdr) < 8+n*dirEntryLen {
		return nil, fmt.Errorf("kb: snapshot truncated in the section directory")
	}
	dir := make(map[byte]dirEntry, n)
	for i := 0; i < n; i++ {
		b := hdr[8+i*dirEntryLen:]
		e := dirEntry{
			id:    b[0],
			flags: b[1],
			crc:   binary.LittleEndian.Uint32(b[4:8]),
			off:   int64(binary.LittleEndian.Uint64(b[8:16])),
			n:     int64(binary.LittleEndian.Uint64(b[16:24])),
		}
		if e.off < 0 || e.n < 0 || e.off+e.n > size {
			return nil, fmt.Errorf("kb: snapshot section %d out of bounds (off %d, len %d, file %d)", e.id, e.off, e.n, size)
		}
		if e.raw() && e.off%snapPageSize != 0 {
			return nil, fmt.Errorf("kb: snapshot raw section %d not page-aligned (offset %d)", e.id, e.off)
		}
		if _, dup := dir[e.id]; dup {
			return nil, fmt.Errorf("kb: duplicate snapshot section %d", e.id)
		}
		dir[e.id] = e
	}
	for id := byte(sec2Counts); id < sec2Max; id++ {
		if _, ok := dir[id]; !ok {
			return nil, fmt.Errorf("kb: snapshot section %d missing", id)
		}
	}
	return dir, nil
}

func decodeV2Counts(payload []byte) (*v2Counts, error) {
	var c v2Counts
	vr := varintReader{b: payload}
	get := func(name string) (uint64, error) {
		v, err := vr.uvarint()
		if err != nil {
			return 0, fmt.Errorf("kb: snapshot counts (%s): %w", name, err)
		}
		return v, nil
	}
	v, err := get("numNodes")
	if err != nil {
		return nil, err
	}
	c.numNodes = int(v)
	if v, err = get("literalClass"); err != nil {
		return nil, err
	}
	c.literalClass = ID(v)
	if v, err = get("tripleCount"); err != nil {
		return nil, err
	}
	c.tripleCount = int(v)
	if v, err = get("generation"); err != nil {
		return nil, err
	}
	c.gen = int64(v)
	for _, f := range c.fields() {
		if v, err = get(f.name); err != nil {
			return nil, err
		}
		*f.v = int(v)
	}
	if c.numNodes <= 0 || int(c.literalClass) >= c.numNodes {
		return nil, fmt.Errorf("kb: snapshot counts: literal class %d out of range of %d nodes", c.literalClass, c.numNodes)
	}
	if c.spIDsLen != c.tripleCount || c.poIDsLen != c.tripleCount {
		return nil, fmt.Errorf("kb: snapshot counts: pair arenas (%d, %d) disagree with triple count %d", c.spIDsLen, c.poIDsLen, c.tripleCount)
	}
	for _, tab := range []struct {
		name       string
		size, used int
	}{{"name table", c.nameTabSize, c.numNodes}, {"sp table", c.spTabSize, c.spUsed}, {"po table", c.poTabSize, c.poUsed}} {
		if tab.size < 8 || tab.size&(tab.size-1) != 0 {
			return nil, fmt.Errorf("kb: snapshot counts: %s size %d is not a power of two", tab.name, tab.size)
		}
		if 4*tab.used > 3*tab.size {
			return nil, fmt.Errorf("kb: snapshot counts: %s overfull (%d entries in %d slots)", tab.name, tab.used, tab.size)
		}
	}
	return &c, nil
}

// ---------------------------------------------------------------------------
// Portable decode path

// decodeSnapshotV2 rebuilds a graph from v2 bytes on the heap,
// verifying every section checksum and every structural bound. It is
// the read path for io.Reader sources, non-mmap platforms, and
// kbtool verify.
func decodeSnapshotV2(data []byte) (*Graph, error) {
	dir, err := parseV2Directory(data, int64(len(data)))
	if err != nil {
		return nil, err
	}
	sec := func(id byte) ([]byte, error) {
		e := dir[id]
		p := data[e.off : e.off+e.n]
		if got := crc32.Checksum(p, crcTable); got != e.crc {
			return nil, fmt.Errorf("kb: snapshot section %d checksum mismatch (corrupt): got %08x, want %08x", id, got, e.crc)
		}
		return p, nil
	}
	cp, err := sec(sec2Counts)
	if err != nil {
		return nil, err
	}
	c, err := decodeV2Counts(cp)
	if err != nil {
		return nil, err
	}

	raw := make(map[byte][]byte, int(sec2Max))
	for id := byte(sec2Counts); id < sec2Max; id++ {
		p, err := sec(id)
		if err != nil {
			return nil, err
		}
		raw[id] = p
	}

	g := &Graph{}
	if err := g.initV2(c, func(id byte) []byte { return raw[id] }, nil); err != nil {
		return nil, err
	}
	return g, nil
}

// loadSnapshotMapped is the mmap read path: the raw sections are used
// in place as file pages. Only the varint sections are checksummed;
// span tables are bounds-checked against their arenas so a corrupt
// file cannot index outside the mapping.
func loadSnapshotMapped(f *os.File, path string) (*Graph, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < 8 {
		return nil, fmt.Errorf("kb: snapshot too small (%d bytes)", size)
	}
	data, err := mapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("kb: mmap %s: %w", path, err)
	}
	dir, err := parseV2Directory(data, size)
	if err != nil {
		return nil, err
	}
	for _, id := range []byte{sec2Counts, sec2Preds} {
		e := dir[id]
		p := data[e.off : e.off+e.n]
		if got := crc32.Checksum(p, crcTable); got != e.crc {
			return nil, fmt.Errorf("kb: snapshot section %d checksum mismatch (corrupt): got %08x, want %08x", id, got, e.crc)
		}
	}
	ce := dir[sec2Counts]
	c, err := decodeV2Counts(data[ce.off : ce.off+ce.n])
	if err != nil {
		return nil, err
	}
	g := &Graph{mapped: &mapping{path: path, data: data}}
	if err := g.initV2(c, func(id byte) []byte {
		e := dir[id]
		return data[e.off : e.off+e.n]
	}, castSections); err != nil {
		return nil, err
	}
	return g, nil
}

// sectionCaster turns a raw section's bytes into typed slices either
// by in-place cast (mmap path, LE hosts) or by portable elementwise
// decode (nil caster).
type sectionCaster struct {
	u32s  func([]byte) []uint32
	u64s  func([]byte) []uint64
	spans func([]byte) []pairSpan
	edges func([]byte) []Edge
	ids   func([]byte) []ID
	slots func([]byte) []nameSlot
	kinds func([]byte) []Kind
	blob  func([]byte) string
}

// castSections reinterprets raw LE sections in place — valid only on
// little-endian hosts over page-aligned mmap'd bytes.
var castSections = &sectionCaster{
	u32s:  castSlice[uint32],
	u64s:  castSlice[uint64],
	spans: castSlice[pairSpan],
	edges: castSlice[Edge],
	ids:   castSlice[ID],
	slots: castSlice[nameSlot],
	kinds: castSlice[Kind],
	blob: func(b []byte) string {
		if len(b) == 0 {
			return ""
		}
		return unsafe.String(&b[0], len(b))
	},
}

// decodeSections is the portable caster: heap copies, explicit LE.
var decodeSections = &sectionCaster{
	u32s: func(b []byte) []uint32 {
		out := make([]uint32, len(b)/4)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(b[4*i:])
		}
		return out
	},
	u64s: func(b []byte) []uint64 {
		out := make([]uint64, len(b)/8)
		for i := range out {
			out[i] = binary.LittleEndian.Uint64(b[8*i:])
		}
		return out
	},
	spans: func(b []byte) []pairSpan {
		out := make([]pairSpan, len(b)/12)
		for i := range out {
			out[i] = pairSpan{
				off: binary.LittleEndian.Uint32(b[12*i:]),
				n:   binary.LittleEndian.Uint32(b[12*i+4:]),
				cap: binary.LittleEndian.Uint32(b[12*i+8:]),
			}
		}
		return out
	},
	edges: func(b []byte) []Edge {
		out := make([]Edge, len(b)/8)
		for i := range out {
			out[i] = Edge{
				Pred: ID(binary.LittleEndian.Uint32(b[8*i:])),
				To:   ID(binary.LittleEndian.Uint32(b[8*i+4:])),
			}
		}
		return out
	},
	ids: func(b []byte) []ID {
		out := make([]ID, len(b)/4)
		for i := range out {
			out[i] = ID(binary.LittleEndian.Uint32(b[4*i:]))
		}
		return out
	},
	slots: func(b []byte) []nameSlot {
		out := make([]nameSlot, len(b)/16)
		for i := range out {
			out[i] = nameSlot{
				hash:    binary.LittleEndian.Uint64(b[16*i:]),
				idPlus1: binary.LittleEndian.Uint32(b[16*i+8:]),
			}
		}
		return out
	},
	kinds: func(b []byte) []Kind {
		out := make([]Kind, len(b))
		for i, v := range b {
			out[i] = Kind(v)
		}
		return out
	},
	blob: func(b []byte) string { return string(b) },
}

// castSlice reinterprets b as a []T without copying. b must be
// aligned for T and its length a multiple of T's size — guaranteed by
// the page alignment the directory parser enforces and the length
// checks in initV2.
func castSlice[T any](b []byte) []T {
	var zero T
	n := len(b) / int(unsafe.Sizeof(zero))
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
}

// initV2 populates g from v2 sections. section returns a section's
// (CRC-verified or mmap'd) payload; caster nil selects the portable
// decoder. Every span table is bounds-checked against its arena so
// later reads stay inside the section, whichever backing is in use.
func (g *Graph) initV2(c *v2Counts, section func(byte) []byte, caster *sectionCaster) error {
	cast := caster
	if cast == nil {
		cast = decodeSections
	}
	want := func(id byte, bytes int) ([]byte, error) {
		p := section(id)
		if len(p) != bytes {
			return nil, fmt.Errorf("kb: snapshot section %d: got %d bytes, counts say %d", id, len(p), bytes)
		}
		return p, nil
	}

	// Names.
	bp, err := want(sec2NameBytes, c.nameByteLen)
	if err != nil {
		return err
	}
	op, err := want(sec2NameOffs, 4*(c.numNodes+1))
	if err != nil {
		return err
	}
	tp, err := want(sec2NameTab, 16*c.nameTabSize)
	if err != nil {
		return err
	}
	g.nameBlob = cast.blob(bp)
	g.nameOffs = cast.u32s(op)
	g.nameTab = nameTable{slots: cast.slots(tp), shift: 64 - log2(c.nameTabSize)}
	prevOff := uint32(0)
	for i, o := range g.nameOffs {
		if o < prevOff || o > uint32(c.nameByteLen) {
			return fmt.Errorf("kb: snapshot name offsets: entry %d (%d) out of order or out of range", i, o)
		}
		prevOff = o
	}
	if g.nameOffs[c.numNodes] != uint32(c.nameByteLen) {
		return fmt.Errorf("kb: snapshot name offsets: final offset %d != name bytes %d", g.nameOffs[c.numNodes], c.nameByteLen)
	}
	occupied := 0
	for i, s := range g.nameTab.slots {
		if s.idPlus1 == 0 {
			continue
		}
		occupied++
		if int(s.idPlus1) > c.numNodes {
			return fmt.Errorf("kb: snapshot name table: slot %d holds ID %d, out of range", i, s.idPlus1-1)
		}
	}
	if occupied != c.numNodes {
		return fmt.Errorf("kb: snapshot name table: %d occupied slots for %d nodes", occupied, c.numNodes)
	}

	// Kinds.
	kp, err := want(sec2Kinds, c.numNodes)
	if err != nil {
		return err
	}
	g.kinds = cast.kinds(kp)
	for i, k := range g.kinds {
		if k > KindLiteral {
			return fmt.Errorf("kb: snapshot kinds: node %d has invalid kind %d", i, k)
		}
	}

	// Assertion span tables.
	loadIdx := func(spanID, idsID byte, idsLen int, dst *idListIndex) error {
		sp, err := want(spanID, 12*c.numNodes)
		if err != nil {
			return err
		}
		ip, err := want(idsID, 4*idsLen)
		if err != nil {
			return err
		}
		dst.spans = cast.spans(sp)
		dst.ids = cast.ids(ip)
		return checkSpans(spanID, dst.spans, idsLen)
	}
	if err := loadIdx(sec2TypeSpans, sec2TypeIDs, c.typeIDsLen, &g.typesIdx); err != nil {
		return err
	}
	if err := loadIdx(sec2InstOfSpans, sec2InstOfIDs, c.instOfIDsLen, &g.instOfIdx); err != nil {
		return err
	}
	if err := loadIdx(sec2SuperSpans, sec2SuperIDs, c.superIDsLen, &g.superOfIdx); err != nil {
		return err
	}
	if err := loadIdx(sec2SubSpans, sec2SubIDs, c.subIDsLen, &g.subOfIdx); err != nil {
		return err
	}
	g.nTypeKeys, g.nInstOfKeys = c.typeKeys, c.instOfKeys
	g.nSuperKeys, g.nSubKeys = c.superKeys, c.subKeys

	// Edge indexes.
	loadEdges := func(spanID, edgesID byte, dst *edgeIndex) error {
		sp, err := want(spanID, 12*c.numNodes)
		if err != nil {
			return err
		}
		ep, err := want(edgesID, 8*c.tripleCount)
		if err != nil {
			return err
		}
		dst.spans = cast.spans(sp)
		dst.edges = cast.edges(ep)
		return checkSpans(spanID, dst.spans, c.tripleCount)
	}
	if err := loadEdges(sec2OutSpans, sec2OutEdges, &g.out); err != nil {
		return err
	}
	if err := loadEdges(sec2InSpans, sec2InEdges, &g.in); err != nil {
		return err
	}

	// Pair tables.
	loadPair := func(keysID, spansID, idsID byte, size, used, idsLen int) (*pairTable, error) {
		kp, err := want(keysID, 8*size)
		if err != nil {
			return nil, err
		}
		sp, err := want(spansID, 12*size)
		if err != nil {
			return nil, err
		}
		ip, err := want(idsID, 4*idsLen)
		if err != nil {
			return nil, err
		}
		t := &pairTable{
			keys:  cast.u64s(kp),
			spans: cast.spans(sp),
			ids:   cast.ids(ip),
			used:  used,
			shift: 64 - log2(size),
		}
		nonzero := 0
		for i, k := range t.keys {
			if k == 0 {
				continue
			}
			nonzero++
			s := t.spans[i]
			if int(s.off)+int(s.n) > idsLen || s.cap < s.n {
				return nil, fmt.Errorf("kb: snapshot section %d: slot %d span out of range", spansID, i)
			}
		}
		if nonzero != used {
			return nil, fmt.Errorf("kb: snapshot section %d: %d occupied slots, counts say %d", keysID, nonzero, used)
		}
		return t, nil
	}
	if g.sp, err = loadPair(sec2SPKeys, sec2SPSpans, sec2SPIDs, c.spTabSize, c.spUsed, c.spIDsLen); err != nil {
		return err
	}
	if g.po, err = loadPair(sec2POKeys, sec2POSpans, sec2POIDs, c.poTabSize, c.poUsed, c.poIDsLen); err != nil {
		return err
	}

	// Predicates (small; always a heap map).
	pp := section(sec2Preds)
	vr := varintReader{b: pp}
	np, err := vr.uvarint()
	if err != nil {
		return fmt.Errorf("kb: snapshot preds: %w", err)
	}
	if int(np) != c.numPreds {
		return fmt.Errorf("kb: snapshot preds: %d entries, counts say %d", np, c.numPreds)
	}
	g.preds = make(map[ID]struct{}, c.numPreds)
	var p ID
	for i := 0; i < int(np); i++ {
		d, err := vr.uvarint()
		if err != nil {
			return fmt.Errorf("kb: snapshot preds: %w", err)
		}
		if i == 0 {
			p = ID(d)
		} else {
			p += ID(d)
		}
		if int(p) >= c.numNodes {
			return fmt.Errorf("kb: snapshot preds: predicate ID %d out of range", p)
		}
		g.preds[p] = struct{}{}
	}

	g.tripleCount = c.tripleCount
	g.gen = c.gen
	g.literalClass = c.literalClass
	g.closureDirty = true
	return nil
}

// checkSpans bounds-checks a span table against its arena length so
// every later view stays inside the section.
func checkSpans(secID byte, spans []pairSpan, arenaLen int) error {
	for i, s := range spans {
		if int(s.off)+int(s.n) > arenaLen || s.cap < s.n {
			return fmt.Errorf("kb: snapshot section %d: span %d out of range of arena %d", secID, i, arenaLen)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// File loading

// LoadSnapshotFile loads a DKBS snapshot from disk. DKBS v2 files are
// mmap'd and used in place when the platform supports it (Linux,
// little-endian), making the load nearly free and the graph's memory
// shared across processes; v1 files — and v2 on other platforms —
// take the buffered decode path. Any mmap-path failure falls back to
// the decode path, whose errors are authoritative.
func LoadSnapshotFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("kb: reading snapshot header: %w", err)
	}
	if string(hdr[:4]) == snapshotMagic &&
		binary.LittleEndian.Uint16(hdr[4:6]) == SnapshotVersion2 &&
		mmapSupported && hostLittleEndian {
		if g, err := loadSnapshotMapped(f, path); err == nil {
			return g, nil
		}
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return LoadSnapshot(f)
}

// ---------------------------------------------------------------------------
// Inspection (kbtool info)

// SectionInfo describes one snapshot section for tooling.
type SectionInfo struct {
	ID      byte   `json:"id"`
	Name    string `json:"name"`
	Offset  int64  `json:"offset"`
	Length  int64  `json:"length"`
	CRC     uint32 `json:"crc32c"`
	Raw     bool   `json:"mmapEligible"`
	Aligned bool   `json:"pageAligned"`
}

// SnapshotInfo is the section table of a DKBS file, readable without
// decoding the graph.
type SnapshotInfo struct {
	Version  int           `json:"version"`
	FileSize int64         `json:"fileSize"`
	Mmap     bool          `json:"mmapReady"`
	Sections []SectionInfo `json:"sections"`
}

var v1SectionNames = map[byte]string{
	secCounts: "counts", secNameLens: "nameLens", secNameBytes: "nameBytes",
	secKinds: "kinds", secPreds: "preds", secTypes: "types",
	secSubclass: "subclass", secTriples: "triples", secTriplesIn: "triplesIn",
	secEnd: "end",
}

var v2SectionNames = map[byte]string{
	sec2Counts: "counts", sec2Preds: "preds",
	sec2NameBytes: "nameBytes", sec2NameOffs: "nameOffs", sec2NameTab: "nameTab",
	sec2Kinds:     "kinds",
	sec2TypeSpans: "typeSpans", sec2TypeIDs: "typeIDs",
	sec2InstOfSpans: "instOfSpans", sec2InstOfIDs: "instOfIDs",
	sec2SuperSpans: "superSpans", sec2SuperIDs: "superIDs",
	sec2SubSpans: "subSpans", sec2SubIDs: "subIDs",
	sec2OutSpans: "outSpans", sec2OutEdges: "outEdges",
	sec2InSpans: "inSpans", sec2InEdges: "inEdges",
	sec2SPKeys: "spKeys", sec2SPSpans: "spSpans", sec2SPIDs: "spIDs",
	sec2POKeys: "poKeys", sec2POSpans: "poSpans", sec2POIDs: "poIDs",
}

// ReadSnapshotInfo reads a snapshot's header and section table —
// version, per-section offset/length/CRC, alignment and
// mmap-eligibility — without decoding any payload, so deploy scripts
// can inspect multi-gigabyte snapshots instantly.
func ReadSnapshotInfo(path string) (*SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("kb: reading snapshot header: %w", err)
	}
	if string(hdr[:4]) != snapshotMagic {
		return nil, fmt.Errorf("kb: bad snapshot magic (not a KB snapshot)")
	}
	switch v := binary.LittleEndian.Uint16(hdr[4:6]); v {
	case SnapshotVersion:
		return readV1Info(f, st.Size())
	case SnapshotVersion2:
		return readV2Info(f, st.Size())
	default:
		return nil, fmt.Errorf("kb: unsupported snapshot version %d", v)
	}
}

func readV1Info(f *os.File, size int64) (*SnapshotInfo, error) {
	info := &SnapshotInfo{Version: SnapshotVersion, FileSize: size}
	off := int64(len(snapshotMagic) + 4)
	for {
		var h [sectionHeaderLen]byte
		if _, err := f.ReadAt(h[:], off); err != nil {
			return nil, fmt.Errorf("kb: snapshot truncated in section header at offset %d", off)
		}
		id := h[0]
		n := int64(binary.LittleEndian.Uint64(h[5:13]))
		name := v1SectionNames[id]
		if name == "" {
			name = fmt.Sprintf("unknown(%d)", id)
		}
		payloadOff := off + sectionHeaderLen
		if n < 0 || payloadOff+n > size {
			return nil, fmt.Errorf("kb: snapshot section %d truncated", id)
		}
		info.Sections = append(info.Sections, SectionInfo{
			ID: id, Name: name, Offset: payloadOff, Length: n,
			CRC:     binary.LittleEndian.Uint32(h[1:5]),
			Aligned: payloadOff%snapPageSize == 0,
		})
		off = payloadOff + n
		if id == secEnd {
			return info, nil
		}
	}
}

func readV2Info(f *os.File, size int64) (*SnapshotInfo, error) {
	var cnt [8]byte
	if _, err := f.ReadAt(cnt[:], 0); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint16(cnt[6:8]))
	hdr := make([]byte, 8+n*dirEntryLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("kb: snapshot truncated in the section directory")
	}
	dir, err := parseV2Directory(hdr, size)
	if err != nil {
		return nil, err
	}
	info := &SnapshotInfo{Version: SnapshotVersion2, FileSize: size, Mmap: true}
	ids := make([]byte, 0, len(dir))
	for id := range dir {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return dir[ids[i]].off < dir[ids[j]].off })
	for _, id := range ids {
		e := dir[id]
		name := v2SectionNames[id]
		if name == "" {
			name = fmt.Sprintf("unknown(%d)", id)
		}
		info.Sections = append(info.Sections, SectionInfo{
			ID: id, Name: name, Offset: e.off, Length: e.n, CRC: e.crc,
			Raw: e.raw(), Aligned: e.off%snapPageSize == 0,
		})
	}
	return info, nil
}
