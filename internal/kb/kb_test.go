package kb

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// paperGraph builds the Figure 1 excerpt of the paper's Yago sample.
func paperGraph() *Graph {
	g := New()
	g.AddType("Avram Hershko", "Nobel laureates in Chemistry")
	g.AddType("Israel Institute of Technology", "organization")
	g.AddType("Nobel Prize in Chemistry", "Chemistry awards")
	g.AddType("Albert Lasker Award for Medicine", "American awards")
	g.AddType("Karcag", "city")
	g.AddType("Israel", "country")
	g.AddType("Haifa", "city")

	g.AddTriple("Avram Hershko", "worksAt", "Israel Institute of Technology")
	g.AddTriple("Avram Hershko", "wasBornIn", "Karcag")
	g.AddTriple("Avram Hershko", "isCitizenOf", "Israel")
	g.AddTriple("Avram Hershko", "wonPrize", "Nobel Prize in Chemistry")
	g.AddTriple("Avram Hershko", "wonPrize", "Albert Lasker Award for Medicine")
	g.AddPropertyTriple("Avram Hershko", "bornOnDate", "1937-12-31")
	g.AddTriple("Israel Institute of Technology", "locatedIn", "Haifa")
	g.AddTriple("Karcag", "locatedIn", "Israel")
	return g
}

func TestInternIsIdempotent(t *testing.T) {
	g := New()
	a := g.Intern("Haifa")
	b := g.Intern("Haifa")
	if a != b {
		t.Fatalf("Intern not idempotent: %d vs %d", a, b)
	}
	if g.Name(a) != "Haifa" {
		t.Fatalf("Name(%d) = %q", a, g.Name(a))
	}
}

func TestLookupMissing(t *testing.T) {
	g := New()
	if got := g.Lookup("nope"); got != Invalid {
		t.Fatalf("Lookup(missing) = %d, want Invalid", got)
	}
}

func TestAddTripleDeduplicates(t *testing.T) {
	g := New()
	g.AddTriple("a", "r", "b")
	g.AddTriple("a", "r", "b")
	if g.NumTriples() != 1 {
		t.Fatalf("NumTriples = %d, want 1", g.NumTriples())
	}
}

func TestObjectsAndSubjects(t *testing.T) {
	g := paperGraph()
	s := g.Lookup("Avram Hershko")
	p := g.Lookup("wonPrize")
	objs := g.Objects(s, p)
	if len(objs) != 2 {
		t.Fatalf("Objects = %d prizes, want 2", len(objs))
	}
	o := g.Lookup("Nobel Prize in Chemistry")
	subs := g.Subjects(p, o)
	if len(subs) != 1 || subs[0] != s {
		t.Fatalf("Subjects(wonPrize, Nobel Prize) = %v, want [%d]", subs, s)
	}
}

func TestHasEdge(t *testing.T) {
	g := paperGraph()
	s := g.Lookup("Israel Institute of Technology")
	p := g.Lookup("locatedIn")
	o := g.Lookup("Haifa")
	if !g.HasEdge(s, p, o) {
		t.Fatal("HasEdge(IIT, locatedIn, Haifa) = false")
	}
	if g.HasEdge(o, p, s) {
		t.Fatal("HasEdge(Haifa, locatedIn, IIT) = true, want false")
	}
}

func TestInstancesOfDirect(t *testing.T) {
	g := paperGraph()
	cities := g.InstancesOf(g.Lookup("city"))
	if len(cities) != 2 {
		t.Fatalf("InstancesOf(city) = %d, want 2", len(cities))
	}
}

func TestTaxonomyClosure(t *testing.T) {
	g := New()
	g.AddSubclass("Nobel laureates in Chemistry", "chemist")
	g.AddSubclass("chemist", "scientist")
	g.AddSubclass("scientist", "person")
	g.AddType("Avram Hershko", "Nobel laureates in Chemistry")

	inst := g.Lookup("Avram Hershko")
	for _, cls := range []string{"Nobel laureates in Chemistry", "chemist", "scientist", "person"} {
		if !g.HasType(inst, g.Lookup(cls)) {
			t.Errorf("HasType(%s) = false, want true", cls)
		}
	}
	people := g.InstancesOf(g.Lookup("person"))
	if len(people) != 1 || people[0] != inst {
		t.Fatalf("InstancesOf(person) = %v", people)
	}
}

func TestClosureInvalidatedOnMutation(t *testing.T) {
	g := New()
	g.AddType("a", "c1")
	if n := len(g.InstancesOf(g.Lookup("c1"))); n != 1 {
		t.Fatalf("before mutation: %d", n)
	}
	g.AddType("b", "c1")
	if n := len(g.InstancesOf(g.Lookup("c1"))); n != 2 {
		t.Fatalf("after mutation: %d, want 2 (closure must be invalidated)", n)
	}
}

func TestLiteralClass(t *testing.T) {
	g := paperGraph()
	lit := g.Lookup("1937-12-31")
	if lit == Invalid {
		t.Fatal("literal not interned")
	}
	if g.KindOf(lit) != KindLiteral {
		t.Fatalf("KindOf(literal) = %v", g.KindOf(lit))
	}
	if !g.HasType(lit, g.Lookup(LiteralClass)) {
		t.Fatal("literal should be member of the literal pseudo-class")
	}
	lits := g.InstancesOf(g.Lookup(LiteralClass))
	if len(lits) != 1 {
		t.Fatalf("InstancesOf(literal) = %d, want 1", len(lits))
	}
	inst := g.Lookup("Haifa")
	if g.HasType(inst, g.Lookup(LiteralClass)) {
		t.Fatal("instance must not be member of the literal class")
	}
}

func TestTaxonomyDepth(t *testing.T) {
	g := New()
	g.AddSubclass("a", "b")
	g.AddSubclass("b", "c")
	if d := g.TaxonomyDepth(g.Lookup("a")); d != 2 {
		t.Fatalf("depth(a) = %d, want 2", d)
	}
	if d := g.TaxonomyDepth(g.Lookup("c")); d != 0 {
		t.Fatalf("depth(c) = %d, want 0", d)
	}
}

func TestStatsCounters(t *testing.T) {
	g := paperGraph()
	if g.NumClasses() != 6 {
		t.Errorf("NumClasses = %d, want 6", g.NumClasses())
	}
	if g.NumTriples() != 8 {
		t.Errorf("NumTriples = %d, want 8", g.NumTriples())
	}
	// worksAt, wasBornIn, isCitizenOf, wonPrize, bornOnDate, locatedIn
	if g.NumPredicates() != 6 {
		t.Errorf("NumPredicates = %d, want 6", g.NumPredicates())
	}
}

func TestParseRoundTrip(t *testing.T) {
	g := paperGraph()
	g.AddSubclass("city", "location")

	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	g2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g2.NumTriples() != g.NumTriples() {
		t.Errorf("triples: %d vs %d", g2.NumTriples(), g.NumTriples())
	}
	if g2.NumClasses() != g.NumClasses() {
		t.Errorf("classes: %d vs %d", g2.NumClasses(), g.NumClasses())
	}
	s := g2.Lookup("Avram Hershko")
	if s == Invalid {
		t.Fatal("entity lost in round trip")
	}
	if !g2.HasEdge(s, g2.Lookup("wasBornIn"), g2.Lookup("Karcag")) {
		t.Error("edge lost in round trip")
	}
	lit := g2.Lookup("1937-12-31")
	if lit == Invalid || g2.KindOf(lit) != KindLiteral {
		t.Error("literal kind lost in round trip")
	}
	if !g2.HasType(g2.Lookup("Haifa"), g2.Lookup("location")) {
		t.Error("taxonomy lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"<a> <b>",                     // missing object
		"<a <b> <c> .",                // unterminated subject
		"a <b> <c> .",                 // missing angle bracket
		`<a> <b> "unterminated .`,     // unterminated literal
		`<a> <type> "lit" .`,          // literal as class
		`<a> <subClassOf> "lit" .`,    // literal as superclass
		"<a> <b> <c> . extra-content", // trailing garbage after object
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q): want error, got nil", c)
		}
	}
}

func TestParseErrorReportsLineAndText(t *testing.T) {
	in := "# header\n<a> <r> <b> .\n<a> <r>\n"
	_, err := Parse(strings.NewReader(in))
	if err == nil {
		t.Fatal("Parse: want error on truncated line")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("Line = %d, want 3", pe.Line)
	}
	if pe.Text != "<a> <r>" {
		t.Errorf("Text = %q, want the offending line", pe.Text)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("Error() = %q, should mention the line number", pe.Error())
	}
}

func TestParseBadArity(t *testing.T) {
	cases := []string{
		"<a> .",                   // subject only
		"<a> <b> <c> <d> .",       // four terms
		"<only-subject>",          // no predicate, no dot
		"<a> <b> <c> . <d> <e> .", // two triples on one line
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q): want arity error, got nil", c)
		}
	}
}

func TestParseDuplicateClassEdge(t *testing.T) {
	in := "<city> <subClassOf> <location> .\n" +
		"<city> <subClassOf> <location> .\n" + // duplicate taxonomy edge
		"<Haifa> <type> <city> .\n" +
		"<Haifa> <type> <city> .\n" // duplicate type assertion
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v (duplicate class edges must be tolerated)", err)
	}
	city := g.Lookup("city")
	if got := g.Superclasses(city); len(got) != 1 {
		t.Errorf("Superclasses(city) = %v, want exactly one edge", got)
	}
	if got := g.DirectTypes(g.Lookup("Haifa")); len(got) != 1 {
		t.Errorf("DirectTypes(Haifa) = %v, want exactly one class", got)
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\n<a> <r> <b> .\n   \n# more\n"
	g, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if g.NumTriples() != 1 {
		t.Fatalf("NumTriples = %d, want 1", g.NumTriples())
	}
}

func TestQuickInternRoundTrip(t *testing.T) {
	g := New()
	f := func(name string) bool {
		if strings.ContainsAny(name, "<>\"\n") || name == "" {
			return true // not representable in the text format; irrelevant here
		}
		id := g.Intern(name)
		return g.Name(id) == name && g.Lookup(name) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickTripleAlwaysQueryable(t *testing.T) {
	f := func(s, p, o uint8) bool {
		g := New()
		sn, pn, on := string('a'+rune(s%26)), string('p'+rune(p%5)), string('A'+rune(o%26))
		g.AddTriple(sn, pn, on)
		si, pi, oi := g.Lookup(sn), g.Lookup(pn), g.Lookup(on)
		if !g.HasEdge(si, pi, oi) {
			return false
		}
		objs := g.Objects(si, pi)
		found := false
		for _, x := range objs {
			if x == oi {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeStats(t *testing.T) {
	g := paperGraph()
	g.AddSubclass("city", "location")
	s := g.ComputeStats(3)
	if s.Classes != 7 { // 6 original + location
		t.Errorf("Classes = %d, want 7", s.Classes)
	}
	if s.Literals != 1 {
		t.Errorf("Literals = %d, want 1", s.Literals)
	}
	if s.Triples != g.NumTriples() {
		t.Errorf("Triples = %d", s.Triples)
	}
	if s.MaxTaxonomyDepth != 1 {
		t.Errorf("MaxTaxonomyDepth = %d, want 1", s.MaxTaxonomyDepth)
	}
	if s.SubclassAssertions != 1 {
		t.Errorf("SubclassAssertions = %d, want 1", s.SubclassAssertions)
	}
	if len(s.LargestClasses) != 3 {
		t.Fatalf("LargestClasses = %v", s.LargestClasses)
	}
	// location inherits city's two instances; city also has two.
	if s.LargestClasses[0].Size != 2 {
		t.Errorf("largest class size = %d, want 2", s.LargestClasses[0].Size)
	}
	if s.AvgOutDegree <= 0 {
		t.Errorf("AvgOutDegree = %v", s.AvgOutDegree)
	}
	if s.String() == "" {
		t.Error("empty Stats rendering")
	}
}

func TestComputeStatsEmptyGraph(t *testing.T) {
	s := New().ComputeStats(5)
	if s.Instances != 0 || s.Classes != 0 || s.Triples != 0 || s.AvgOutDegree != 0 {
		t.Errorf("empty graph stats = %+v", s)
	}
}

func TestTypesOf(t *testing.T) {
	g := New()
	g.AddSubclass("laureate", "person")
	g.AddType("Ann", "laureate")
	g.AddPropertyTriple("Ann", "bornOnDate", "1990-01-01")

	inst := g.Lookup("Ann")
	types := g.TypesOf(inst)
	if len(types) != 2 {
		t.Fatalf("TypesOf = %d classes, want 2 (laureate + person)", len(types))
	}
	lit := g.Lookup("1990-01-01")
	litTypes := g.TypesOf(lit)
	if len(litTypes) != 1 || g.Name(litTypes[0]) != LiteralClass {
		t.Fatalf("TypesOf(literal) = %v", litTypes)
	}
}

func TestPredicatesListing(t *testing.T) {
	g := paperGraph()
	preds := g.Predicates()
	if len(preds) != g.NumPredicates() {
		t.Fatalf("Predicates = %d, NumPredicates = %d", len(preds), g.NumPredicates())
	}
	for i := 1; i < len(preds); i++ {
		if preds[i-1] >= preds[i] {
			t.Fatal("Predicates not sorted")
		}
	}
}

func TestInOutEdges(t *testing.T) {
	g := paperGraph()
	hershko := g.Lookup("Avram Hershko")
	if len(g.Out(hershko)) != 6 {
		t.Fatalf("Out = %d edges, want 6", len(g.Out(hershko)))
	}
	haifa := g.Lookup("Haifa")
	if len(g.In(haifa)) != 1 {
		t.Fatalf("In(Haifa) = %d, want 1", len(g.In(haifa)))
	}
}
