package kb

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStoreSwapBumpsGeneration(t *testing.T) {
	g1 := paperGraph()
	st := NewStore(g1)
	if st.Graph() != g1 {
		t.Fatal("store does not serve the initial graph")
	}
	if st.Swaps() != 0 {
		t.Fatalf("Swaps = %d before any swap", st.Swaps())
	}

	// A fresh, smaller graph has a lower generation than g1; Swap must
	// stamp it strictly above the outgoing graph's.
	g2 := New()
	g2.AddTriple("a", "r", "b")
	if g2.Generation() > g1.Generation() {
		t.Fatalf("test setup: g2 gen %d should start below g1 gen %d", g2.Generation(), g1.Generation())
	}
	old := st.Swap(g2)
	if old != g1 {
		t.Error("Swap did not return the replaced graph")
	}
	if st.Graph() != g2 {
		t.Error("Swap did not publish the new graph")
	}
	if st.Generation() <= g1.Generation() {
		t.Errorf("post-swap generation %d not above old generation %d", st.Generation(), g1.Generation())
	}
	if st.Swaps() != 1 {
		t.Errorf("Swaps = %d, want 1", st.Swaps())
	}

	// A graph already above the current generation keeps its own.
	g3 := New()
	for i := 0; i < 100; i++ {
		g3.AddTriple("x", "r", "y"+string(rune('a'+i%26))+string(rune('a'+i/26)))
	}
	want := g3.Generation()
	if want <= st.Generation() {
		t.Fatalf("test setup: g3 gen %d should exceed current gen %d", want, st.Generation())
	}
	st.Swap(g3)
	if st.Generation() != want {
		t.Errorf("generation rewritten to %d, want preserved %d", st.Generation(), want)
	}
}

func TestStoreSwapFreezes(t *testing.T) {
	st := NewStore(paperGraph())
	g2 := New()
	g2.AddType("i", "c")
	g2.AddSubclass("c", "d")
	st.Swap(g2)
	if st.Graph().closureDirty {
		t.Error("swapped-in graph was not frozen")
	}
}

func TestStoreConcurrentPinAndSwap(t *testing.T) {
	base := paperGraph()
	st := NewStore(base)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Pin once, then do multi-step reads entirely on the
				// pinned graph — internally consistent regardless of
				// concurrent swaps.
				g := st.Graph()
				n := g.NumTriples()
				total := 0
				for _, s := range g.names {
					total += len(g.Out(g.Lookup(s)))
				}
				if total != n {
					panic("pinned graph internally inconsistent")
				}
			}
		}()
	}

	var lastGen int64
	for i := 0; i < 50; i++ {
		g := paperGraph()
		g.AddTriple("extra", "r", "v")
		st.Swap(g)
		gen := st.Generation()
		if gen <= lastGen {
			t.Fatalf("generation not strictly increasing: %d after %d", gen, lastGen)
		}
		lastGen = gen
	}
	stop.Store(true)
	wg.Wait()
	if st.Swaps() != 50 {
		t.Errorf("Swaps = %d, want 50", st.Swaps())
	}
}
