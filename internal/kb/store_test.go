package kb

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStoreSwapBumpsGeneration(t *testing.T) {
	g1 := paperGraph()
	st := NewStore(g1)
	if st.Graph() != g1 {
		t.Fatal("store does not serve the initial graph")
	}
	if st.Swaps() != 0 {
		t.Fatalf("Swaps = %d before any swap", st.Swaps())
	}

	// A fresh, smaller graph has a lower generation than g1; Swap must
	// stamp it strictly above the outgoing graph's.
	g2 := New()
	g2.AddTriple("a", "r", "b")
	if g2.Generation() > g1.Generation() {
		t.Fatalf("test setup: g2 gen %d should start below g1 gen %d", g2.Generation(), g1.Generation())
	}
	old := st.Swap(g2)
	if old != g1 {
		t.Error("Swap did not return the replaced graph")
	}
	if st.Graph() != g2 {
		t.Error("Swap did not publish the new graph")
	}
	if st.Generation() <= g1.Generation() {
		t.Errorf("post-swap generation %d not above old generation %d", st.Generation(), g1.Generation())
	}
	if st.Swaps() != 1 {
		t.Errorf("Swaps = %d, want 1", st.Swaps())
	}

	// A graph already above the current generation keeps its own.
	g3 := New()
	for i := 0; i < 100; i++ {
		g3.AddTriple("x", "r", "y"+string(rune('a'+i%26))+string(rune('a'+i/26)))
	}
	want := g3.Generation()
	if want <= st.Generation() {
		t.Fatalf("test setup: g3 gen %d should exceed current gen %d", want, st.Generation())
	}
	st.Swap(g3)
	if st.Generation() != want {
		t.Errorf("generation rewritten to %d, want preserved %d", st.Generation(), want)
	}
}

func TestStoreSwapFreezes(t *testing.T) {
	st := NewStore(paperGraph())
	g2 := New()
	g2.AddType("i", "c")
	g2.AddSubclass("c", "d")
	st.Swap(g2)
	if st.Graph().closureDirty {
		t.Error("swapped-in graph was not frozen")
	}
}

func TestStoreConcurrentPinAndSwap(t *testing.T) {
	base := paperGraph()
	st := NewStore(base)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Pin once, then do multi-step reads entirely on the
				// pinned graph — internally consistent regardless of
				// concurrent swaps.
				g := st.Graph()
				n := g.NumTriples()
				total := 0
				for _, s := range g.names {
					total += len(g.Out(g.Lookup(s)))
				}
				if total != n {
					panic("pinned graph internally inconsistent")
				}
			}
		}()
	}

	var lastGen int64
	for i := 0; i < 50; i++ {
		g := paperGraph()
		g.AddTriple("extra", "r", "v")
		st.Swap(g)
		gen := st.Generation()
		if gen <= lastGen {
			t.Fatalf("generation not strictly increasing: %d after %d", gen, lastGen)
		}
		lastGen = gen
	}
	stop.Store(true)
	wg.Wait()
	if st.Swaps() != 50 {
		t.Errorf("Swaps = %d, want 50", st.Swaps())
	}
}

func TestStoreRetainAndRollback(t *testing.T) {
	g1 := paperGraph()
	st := NewStore(g1)
	st.SetRetain(2)

	if _, _, err := st.Rollback(); err != ErrNoRetained {
		t.Fatalf("rollback on empty ring: err = %v, want ErrNoRetained", err)
	}

	g2, g3, g4 := paperGraph(), paperGraph(), paperGraph()
	g2.AddTriple("v", "r", "2")
	g3.AddTriple("v", "r", "3")
	g4.AddTriple("v", "r", "4")
	st.Swap(g2)
	st.Swap(g3)
	st.Swap(g4) // ring now [g2, g3]; g1 evicted

	hist := st.History()
	if len(hist) != 3 || !hist[0].Live || hist[0].Generation != g4.Generation() ||
		hist[1].Generation != g3.Generation() || hist[2].Generation != g2.Generation() {
		t.Fatalf("history = %+v", hist)
	}

	now, dropped, err := st.Rollback()
	if err != nil || now != g3 || dropped != g4 {
		t.Fatalf("Rollback = %v, %v, %v; want g3, g4", now, dropped, err)
	}
	if st.Graph() != g3 || st.Rollbacks() != 1 {
		t.Fatalf("store not serving g3 after rollback (rollbacks=%d)", st.Rollbacks())
	}
	if g3.Generation() >= g4.Generation() {
		t.Fatal("rolled-back graph must keep its original lower generation")
	}

	// A fresh graph swapped in after a rollback must be stamped above
	// the dropped g4, not just above the live g3: generation numbers
	// are never reused for different content.
	g5 := New()
	g5.AddTriple("v", "r", "5")
	st.Swap(g5)
	if g5.Generation() <= g4.Generation() {
		t.Fatalf("post-rollback swap reused generation space: g5=%d g4=%d",
			g5.Generation(), g4.Generation())
	}

	// Ring is now [g2, g3]: g3 was re-retained by the g5 swap.
	now, _, err = st.Rollback()
	if err != nil || now != g3 {
		t.Fatalf("second rollback = %v, %v; want g3", now, err)
	}
	now, _, err = st.Rollback()
	if err != nil || now != g2 {
		t.Fatalf("third rollback = %v, %v; want g2", now, err)
	}
	if _, _, err = st.Rollback(); err != ErrNoRetained {
		t.Fatalf("rollback past ring bottom: err = %v", err)
	}
}

func TestStoreSetRetainTrims(t *testing.T) {
	st := NewStore(paperGraph())
	st.SetRetain(3)
	var gens []int64
	for i := 0; i < 3; i++ {
		g := paperGraph()
		g.AddTriple("v", "r", string(rune('a'+i)))
		st.Swap(g)
		gens = append(gens, st.Generation())
	}
	if got := len(st.History()) - 1; got != 3 {
		t.Fatalf("retained %d graphs, want 3", got)
	}
	st.SetRetain(1)
	hist := st.History()
	if len(hist) != 2 || hist[1].Generation != gens[1] {
		t.Fatalf("SetRetain(1) kept wrong graphs: %+v (gens %v)", hist, gens)
	}
	st.SetRetain(0)
	if len(st.History()) != 1 {
		t.Fatal("SetRetain(0) did not clear the ring")
	}
	if _, _, err := st.Rollback(); err != ErrNoRetained {
		t.Fatalf("rollback after SetRetain(0): err = %v", err)
	}
}

func TestStoreRollbackConcurrentReaders(t *testing.T) {
	st := NewStore(paperGraph())
	st.SetRetain(4)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				g := st.Graph()
				total := 0
				for _, s := range g.names {
					total += len(g.Out(g.Lookup(s)))
				}
				if total != g.NumTriples() {
					panic("pinned graph internally inconsistent")
				}
			}
		}()
	}
	for i := 0; i < 32; i++ {
		g := paperGraph()
		g.AddTriple("extra", "r", "v")
		st.Swap(g)
		if i%3 == 2 {
			if _, _, err := st.Rollback(); err != nil {
				t.Errorf("rollback %d: %v", i, err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
}
