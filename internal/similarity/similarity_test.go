package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEDBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"Chemistry", "Chamstry", 2}, // the paper's own example
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "cba", 2},
		{"Haifa", "Karcag", 4},
	}
	for _, c := range cases {
		if got := ED(c.a, c.b); got != c.want {
			t.Errorf("ED(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEDSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		return ED(a, b) == ED(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEDTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		if len(a) > 25 {
			a = a[:25]
		}
		if len(b) > 25 {
			b = b[:25]
		}
		if len(c) > 25 {
			c = c[:25]
		}
		return ED(a, c) <= ED(a, b)+ED(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEDWithinAgreesWithED(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := "abcde"
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	for i := 0; i < 3000; i++ {
		a := randStr(rng.Intn(15))
		b := randStr(rng.Intn(15))
		for k := 0; k <= 4; k++ {
			want := ED(a, b) <= k
			if got := EDWithin(a, b, k); got != want {
				t.Fatalf("EDWithin(%q,%q,%d) = %v, want %v (ED=%d)", a, b, k, got, want, ED(a, b))
			}
		}
	}
}

func TestEDWithinNegativeK(t *testing.T) {
	if EDWithin("a", "a", -1) {
		t.Fatal("EDWithin with negative k must be false")
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"Nobel Prize in Chemistry", "Nobel Prize in Chemistry", 1},
		{"Nobel Prize", "Nobel Prize in Chemistry", 0.5},
		{"", "", 1},
		{"abc", "", 0},
		{"a b", "b a", 1},
	}
	for _, c := range cases {
		if got := Jaccard(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Jaccard(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCosineBounds(t *testing.T) {
	f := func(a, b string) bool {
		got := Cosine(a, b)
		return got >= -1e-9 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := Cosine("ice cream", "cream ice"); math.Abs(got-1) > 1e-9 {
		t.Errorf("Cosine of permuted tokens = %v, want 1", got)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"=", Eq},
		{"eq", Eq},
		{"ED,2", EDK(2)},
		{"ed, 3", EDK(3)},
		{"JAC,0.8", JaccardAtLeast(0.8)},
		{"jaccard,0.5", JaccardAtLeast(0.5)},
		{"COS,0.7", CosineAtLeast(0.7)},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "ED", "ED,-1", "ED,x", "JAC,1.5", "FOO,1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, sp := range []Spec{Eq, EDK(0), EDK(2), JaccardAtLeast(0.8), CosineAtLeast(0.75)} {
		got, err := ParseSpec(sp.String())
		if err != nil {
			t.Errorf("round trip %v: %v", sp, err)
			continue
		}
		if got != sp {
			t.Errorf("round trip %v = %v", sp, got)
		}
	}
}

func TestSpecMatch(t *testing.T) {
	if !Eq.Match("a", "a") || Eq.Match("a", "b") {
		t.Error("Eq.Match wrong")
	}
	if !EDK(2).Match("Chemistry", "Chamstry") {
		t.Error("EDK(2) should match the paper example")
	}
	if EDK(1).Match("Chemistry", "Chamstry") {
		t.Error("EDK(1) should not match the paper example")
	}
	if !JaccardAtLeast(0.4).Match("Nobel Prize", "Nobel Prize in Chemistry") {
		t.Error("Jaccard 0.5 >= 0.4 should match")
	}
}

func TestSpecFuzzy(t *testing.T) {
	if Eq.Fuzzy() || EDK(0).Fuzzy() {
		t.Error("equality specs must not be fuzzy")
	}
	if !EDK(1).Fuzzy() || !JaccardAtLeast(0.9).Fuzzy() {
		t.Error("tolerant specs must be fuzzy")
	}
}

func TestSegmentsCoverString(t *testing.T) {
	f := func(s string, n8 uint8) bool {
		n := int(n8%5) + 1
		segs := segments(s, n)
		joined := ""
		for _, sg := range segs {
			joined += sg
		}
		if joined != s {
			return false
		}
		starts := segmentStarts(len(s), n)
		pos := 0
		for i, se := range starts {
			if se[0] != pos || se[1] != len(segs[i]) {
				return false
			}
			pos += se[1]
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringIndexEq(t *testing.T) {
	ix := NewStringIndex(2)
	ix.Add("Haifa", 1)
	ix.Add("Paris", 2)
	ix.Add("Haifa", 3) // same string, second payload
	got := ix.LookupEq("Haifa")
	if len(got) != 2 {
		t.Fatalf("LookupEq = %v, want 2 payloads", got)
	}
	if got := ix.LookupEq("Rome"); got != nil {
		t.Fatalf("LookupEq(miss) = %v, want nil", got)
	}
}

func TestStringIndexEDMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := "abcdef"
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	const maxK = 2
	ix := NewStringIndex(maxK)
	var corpus []string
	for i := 0; i < 300; i++ {
		s := randStr(rng.Intn(12))
		corpus = append(corpus, s)
		ix.Add(s, int32(i))
	}
	for q := 0; q < 200; q++ {
		query := randStr(rng.Intn(12))
		for k := 0; k <= maxK; k++ {
			want := make(map[int32]bool)
			for i, s := range corpus {
				if EDWithin(s, query, k) {
					want[int32(i)] = true
				}
			}
			got := ix.LookupED(query, k)
			if len(got) != len(want) {
				t.Fatalf("LookupED(%q,%d): got %d payloads, want %d", query, k, len(got), len(want))
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("LookupED(%q,%d): unexpected payload %d (%q)", query, k, p, corpus[p])
				}
			}
		}
	}
}

func TestStringIndexEDThresholdTooBig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > maxK")
		}
	}()
	ix := NewStringIndex(1)
	ix.LookupED("q", 2)
}

func TestStringIndexJaccardMatchesBruteForce(t *testing.T) {
	ix := NewStringIndex(0)
	corpus := []string{
		"Nobel Prize in Chemistry",
		"Nobel Prize in Physics",
		"Albert Lasker Award for Medicine",
		"National Medal of Science",
		"", // token-less entry
	}
	for i, s := range corpus {
		ix.Add(s, int32(i))
	}
	for _, q := range []string{"Nobel Prize", "Medal of Science", "", "Chemistry Prize Nobel in"} {
		for _, tau := range []float64{0.3, 0.5, 0.9, 1.0} {
			want := make(map[int32]bool)
			for i, s := range corpus {
				if Jaccard(s, q) >= tau {
					want[int32(i)] = true
				}
			}
			got := ix.LookupJaccard(q, tau)
			if len(got) != len(want) {
				t.Fatalf("LookupJaccard(%q,%v) = %v, want %d entries", q, tau, got, len(want))
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("LookupJaccard(%q,%v): unexpected payload %d", q, tau, p)
				}
			}
		}
	}
}

func TestStringIndexLookupDispatch(t *testing.T) {
	ix := NewStringIndex(2)
	ix.Add("Israel Institute of Technology", 7)
	if got := ix.Lookup(Eq, "Israel Institute of Technology"); len(got) != 1 || got[0] != 7 {
		t.Errorf("Lookup(Eq) = %v", got)
	}
	if got := ix.Lookup(EDK(2), "Israel Institute of Technologie"); len(got) != 1 {
		t.Errorf("Lookup(ED,2) = %v", got)
	}
	if got := ix.Lookup(JaccardAtLeast(0.5), "Institute of Technology Israel"); len(got) != 1 {
		t.Errorf("Lookup(JAC) = %v", got)
	}
	if got := ix.Lookup(CosineAtLeast(0.5), "israel institute"); len(got) != 1 {
		t.Errorf("Lookup(COS) = %v", got)
	}
}

func TestStringIndexShortStrings(t *testing.T) {
	ix := NewStringIndex(2)
	ix.Add("a", 1)
	ix.Add("ab", 2)
	ix.Add("xyz", 3)
	got := ix.LookupED("ab", 1)
	// "a" (distance 1), "ab" (0); not "xyz" (3).
	if len(got) != 2 {
		t.Fatalf("LookupED over short strings = %v", got)
	}
}

func BenchmarkEDWithin(b *testing.B) {
	a, s := "Israel Institute of Technology", "Israel Institute of Technologie"
	for i := 0; i < b.N; i++ {
		EDWithin(a, s, 2)
	}
}

func BenchmarkStringIndexLookupED(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	alpha := "abcdefghij"
	randStr := func(n int) string {
		bs := make([]byte, n)
		for i := range bs {
			bs[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(bs)
	}
	ix := NewStringIndex(2)
	for i := 0; i < 50000; i++ {
		ix.Add(randStr(8+rng.Intn(8)), int32(i))
	}
	q := randStr(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.LookupED(q, 2)
	}
}

func TestQGramIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alpha := "abcdef"
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(b)
	}
	ix := NewQGramIndex(2)
	var corpus []string
	for i := 0; i < 300; i++ {
		s := randStr(rng.Intn(14))
		corpus = append(corpus, s)
		ix.Add(s, int32(i))
	}
	if ix.Len() != 300 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for q := 0; q < 200; q++ {
		query := randStr(rng.Intn(14))
		for k := 0; k <= 2; k++ {
			want := make(map[int32]bool)
			for i, s := range corpus {
				if EDWithin(s, query, k) {
					want[int32(i)] = true
				}
			}
			got := ix.LookupED(query, k)
			if len(got) != len(want) {
				t.Fatalf("LookupED(%q,%d): got %d, want %d", query, k, len(got), len(want))
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("LookupED(%q,%d): unexpected %d (%q)", query, k, p, corpus[p])
				}
			}
		}
	}
}

func TestQGramIndexPanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for q < 1")
		}
	}()
	NewQGramIndex(0)
}

// BenchmarkSignatureVsQGram compares the paper's PASS-JOIN-style
// segment index against the folklore q-gram count filter on the kind
// of strings the KB actually holds.
func benchIndexCorpus(n int) ([]string, []string) {
	rng := rand.New(rand.NewSource(5))
	alpha := "abcdefghijklmnop"
	randStr := func(ln int) string {
		bs := make([]byte, ln)
		for i := range bs {
			bs[i] = alpha[rng.Intn(len(alpha))]
		}
		return string(bs)
	}
	corpus := make([]string, n)
	for i := range corpus {
		corpus[i] = randStr(8 + rng.Intn(12))
	}
	queries := make([]string, 200)
	for i := range queries {
		queries[i] = randStr(10 + rng.Intn(8))
	}
	return corpus, queries
}

func BenchmarkLookupEDPassJoin(b *testing.B) {
	corpus, queries := benchIndexCorpus(30000)
	ix := NewStringIndex(2)
	for i, s := range corpus {
		ix.Add(s, int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.LookupED(queries[i%len(queries)], 2)
	}
}

func BenchmarkLookupEDQGram(b *testing.B) {
	corpus, queries := benchIndexCorpus(30000)
	ix := NewQGramIndex(2)
	for i, s := range corpus {
		ix.Add(s, int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.LookupED(queries[i%len(queries)], 2)
	}
}
