package similarity

import "sync/atomic"

// MatchHook observes every similarity evaluation: q is the query
// string (typically a tuple cell value) being matched or looked up.
// Hooks exist for fault injection in tests — a hook that panics on a
// trigger value simulates a poisoned row deep inside the matching
// kernels — and must be cheap: they run on the repair hot path.
type MatchHook func(q string)

// matchHook is read on every Spec.Match / StringIndex.Lookup; an
// atomic pointer keeps installation race-free under -race while
// costing a single relaxed load when no hook is installed.
var matchHook atomic.Pointer[MatchHook]

// SetMatchHook installs h as the process-wide match hook; nil removes
// it. It returns the previous hook so tests can restore it.
func SetMatchHook(h MatchHook) MatchHook {
	var prev *MatchHook
	if h == nil {
		prev = matchHook.Swap(nil)
	} else {
		prev = matchHook.Swap(&h)
	}
	if prev == nil {
		return nil
	}
	return *prev
}

// fireHook invokes the installed hook, if any, with the query string.
func fireHook(q string) {
	if h := matchHook.Load(); h != nil {
		(*h)(q)
	}
}
