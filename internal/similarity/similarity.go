// Package similarity provides the matching operations that detective
// rules attach to their nodes (paper §II-B, "sim(u)"): string
// equality, edit distance with a threshold, and token-based Jaccard /
// cosine similarity. It also implements the signature-based inverted
// index of §IV-B(2) (after PASS-JOIN, ref [21]) so that similarity
// matching against the instance set of a KB class does not enumerate
// every instance.
package similarity

import (
	"strings"
	"unicode"
)

// ED computes the Levenshtein edit distance between a and b
// (insertions, deletions, substitutions, unit cost), operating on
// bytes, which is exact for the ASCII data used throughout the
// reproduction.
func ED(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	if la < lb {
		a, b = b, a
		la, lb = lb, la
	}
	prev := make([]int, lb+1)
	curr := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		curr[0] = i
		ca := a[i-1]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if d := prev[j] + 1; d < m {
				m = d
			}
			if d := curr[j-1] + 1; d < m {
				m = d
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[lb]
}

// EDWithin reports whether ED(a, b) <= k, using a banded dynamic
// program that costs O(k·min(|a|,|b|)) and exits early when the whole
// band exceeds k.
func EDWithin(a, b string, k int) bool {
	if k < 0 {
		return false
	}
	la, lb := len(a), len(b)
	if la-lb > k || lb-la > k {
		return false
	}
	if a == b {
		return true
	}
	if k == 0 {
		return false
	}
	if la < lb {
		a, b = b, a
		la, lb = lb, la
	}
	// Band of width 2k+1 around the diagonal.
	const inf = 1 << 29
	width := 2*k + 1
	prev := make([]int, width)
	curr := make([]int, width)
	// prev[d] holds D[i-1][i-1+d-k]; initialise row 0.
	for d := 0; d < width; d++ {
		j := d - k
		if j < 0 || j > lb {
			prev[d] = inf
		} else {
			prev[d] = j
		}
	}
	for i := 1; i <= la; i++ {
		rowMin := inf
		for d := 0; d < width; d++ {
			j := i + d - k
			if j < 0 || j > lb {
				curr[d] = inf
				continue
			}
			if j == 0 {
				curr[d] = i
				rowMin = min(rowMin, i)
				continue
			}
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := inf
			if prev[d] != inf { // D[i-1][j-1]
				best = prev[d] + cost
			}
			if d+1 < width && prev[d+1] != inf { // D[i-1][j] (deletion from a)
				if v := prev[d+1] + 1; v < best {
					best = v
				}
			}
			if d-1 >= 0 && curr[d-1] != inf { // D[i][j-1] (insertion into a)
				if v := curr[d-1] + 1; v < best {
					best = v
				}
			}
			curr[d] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > k {
			return false
		}
		prev, curr = curr, prev
	}
	d := lb - la + k
	return d >= 0 && d < width && prev[d] <= k
}

// Tokenize splits s into lower-cased alphanumeric tokens, the unit
// used by Jaccard and cosine similarity.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

func tokenSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, t := range Tokenize(s) {
		set[t] = true
	}
	return set
}

// Jaccard computes |tokens(a) ∩ tokens(b)| / |tokens(a) ∪ tokens(b)|.
// Two token-less strings have similarity 1 if equal and 0 otherwise.
func Jaccard(a, b string) float64 {
	sa, sb := tokenSet(a), tokenSet(b)
	if len(sa) == 0 && len(sb) == 0 {
		if a == b {
			return 1
		}
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Cosine computes the cosine similarity of the binary token vectors
// of a and b.
func Cosine(a, b string) float64 {
	sa, sb := tokenSet(a), tokenSet(b)
	if len(sa) == 0 || len(sb) == 0 {
		if a == b {
			return 1
		}
		return 0
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	return float64(inter) / (sqrtf(len(sa)) * sqrtf(len(sb)))
}

func sqrtf(n int) float64 {
	// Newton iteration; avoids importing math for one call site and is
	// exact enough for small token counts.
	if n <= 0 {
		return 0
	}
	x := float64(n)
	for i := 0; i < 20; i++ {
		x = 0.5 * (x + float64(n)/x)
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
