package similarity

// QGramIndex is the classic alternative to the PASS-JOIN segment
// scheme used by StringIndex: index positional q-grams and use the
// count-filtering bound — two strings within edit distance k share at
// least max(|s|,|q|) - q + 1 - k·q q-grams. It exists to let the
// benchmarks compare the paper's choice of signature scheme against
// the folklore baseline (PASS-JOIN generates far fewer candidates on
// short, low-entropy strings); the repair engine itself always uses
// StringIndex.
type QGramIndex struct {
	q        int
	strs     []string
	payloads []int32
	grams    map[string][]int32 // gram -> entry indexes (deduplicated)
	byLen    map[int][]int32    // length -> entry indexes (for vacuous-filter lengths)
}

// NewQGramIndex creates an index over q-grams (q >= 1; q = 2 or 3 are
// the usual choices).
func NewQGramIndex(q int) *QGramIndex {
	if q < 1 {
		panic("similarity: q must be positive")
	}
	return &QGramIndex{q: q, grams: make(map[string][]int32), byLen: make(map[int][]int32)}
}

// Len returns the number of indexed entries.
func (ix *QGramIndex) Len() int { return len(ix.strs) }

// Add indexes s with the given payload.
func (ix *QGramIndex) Add(s string, payload int32) {
	entry := int32(len(ix.strs))
	ix.strs = append(ix.strs, s)
	ix.payloads = append(ix.payloads, payload)
	ix.byLen[len(s)] = append(ix.byLen[len(s)], entry)
	seen := make(map[string]bool)
	for i := 0; i+ix.q <= len(s); i++ {
		g := s[i : i+ix.q]
		if !seen[g] {
			seen[g] = true
			ix.grams[g] = append(ix.grams[g], entry)
		}
	}
}

// LookupED returns the payloads of entries within edit distance
// threshold k of query, verified exactly.
func (ix *QGramIndex) LookupED(query string, k int) []int32 {
	// For entries of length l, the count filter requires
	// max(l,|query|) - q + 1 - k·q shared grams. When that bound is
	// non-positive the filter is *vacuous*: strings sharing no gram at
	// all can still match, so those lengths must be scanned outright.
	// This is the q-gram scheme's inherent weakness on short strings,
	// which the PASS-JOIN segments do not share.
	vacuousLen := ix.q - 1 + k*ix.q
	counts := make(map[int32]int)
	if len(query) >= ix.q {
		seen := make(map[string]bool)
		for i := 0; i+ix.q <= len(query); i++ {
			g := query[i : i+ix.q]
			if seen[g] {
				continue
			}
			seen[g] = true
			for _, e := range ix.grams[g] {
				counts[e]++
			}
		}
	}
	var out []int32
	emit := make(map[int32]bool)
	consider := func(e int32) {
		if emit[e] {
			return
		}
		emit[e] = true
		if EDWithin(ix.strs[e], query, k) {
			out = append(out, ix.payloads[e])
		}
	}
	// Lengths with a vacuous filter: scan with the length filter only.
	for l := len(query) - k; l <= len(query)+k; l++ {
		if l < 0 || (l > vacuousLen && len(query) > vacuousLen) {
			continue
		}
		for _, e := range ix.byLen[l] {
			consider(e)
		}
	}
	for e, shared := range counts {
		// Count filter: need max(|s|,|query|) - q + 1 - k·q shared grams.
		need := len(ix.strs[e])
		if len(query) > need {
			need = len(query)
		}
		need = need - ix.q + 1 - k*ix.q
		if shared >= need {
			consider(e)
		}
	}
	return out
}
