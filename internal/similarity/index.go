package similarity

import (
	"fmt"
	"sync/atomic"
)

// StringIndex answers "which indexed strings match q under spec?"
// without scanning all entries, implementing the signature-based
// inverted index of the paper's §IV-B(2). For edit distance it uses
// the PASS-JOIN partition scheme (ref [21]): every indexed string is
// split into maxK+1 segments; at most maxK edits cannot touch every
// segment, so any string within distance k ≤ maxK of q must share a
// segment with a substring of q at a position shifted by at most k.
// For Jaccard/cosine it uses a token inverted index, and for equality
// a hash table.
//
// Payloads are opaque int32 values (the caller typically stores
// kb.ID). A payload may be added under several strings; one string
// may carry several payloads.
type StringIndex struct {
	maxK int

	// hits counts Lookup calls that produced at least one candidate;
	// misses counts the rest — the same shape as the catalog's
	// candidate-cache stats (rules.Catalog.CacheStats), so both layers
	// export through one registry. Atomics keep frozen-index lookups
	// safe for concurrent use.
	hits, misses atomic.Int64

	strs     []string
	payloads []int32

	exact  map[string][]int32 // value -> entry indexes
	segs   map[segKey][]int32 // (len, segIdx, segment) -> entry indexes
	short  []int32            // entries too short to segment, scanned with a length filter
	tokens map[string][]int32 // token -> entry indexes
	empty  []int32            // token-less entries (for Jaccard/cosine fallback)
}

type segKey struct {
	strLen int
	segIdx int
	seg    string
}

// NewStringIndex creates an index supporting edit-distance lookups
// with thresholds up to maxK (and equality / Jaccard / cosine lookups
// regardless of maxK). maxK must be non-negative.
func NewStringIndex(maxK int) *StringIndex {
	if maxK < 0 {
		panic(fmt.Sprintf("similarity: negative maxK %d", maxK))
	}
	return &StringIndex{
		maxK:   maxK,
		exact:  make(map[string][]int32),
		segs:   make(map[segKey][]int32),
		tokens: make(map[string][]int32),
	}
}

// MaxK returns the largest edit-distance threshold the index supports.
func (ix *StringIndex) MaxK() int { return ix.maxK }

// Len returns the number of (string, payload) entries.
func (ix *StringIndex) Len() int { return len(ix.strs) }

// Add indexes s with the given payload.
func (ix *StringIndex) Add(s string, payload int32) {
	entry := int32(len(ix.strs))
	ix.strs = append(ix.strs, s)
	ix.payloads = append(ix.payloads, payload)

	ix.exact[s] = append(ix.exact[s], entry)

	if len(s) <= ix.maxK {
		// Too short for the partition scheme (some segment would be
		// empty and match everything); keep in a linear bucket.
		ix.short = append(ix.short, entry)
	} else {
		for i, seg := range segments(s, ix.maxK+1) {
			ix.segs[segKey{len(s), i, seg}] = append(ix.segs[segKey{len(s), i, seg}], entry)
		}
	}

	toks := Tokenize(s)
	if len(toks) == 0 {
		ix.empty = append(ix.empty, entry)
		return
	}
	seen := make(map[string]bool, len(toks))
	for _, t := range toks {
		if seen[t] {
			continue
		}
		seen[t] = true
		ix.tokens[t] = append(ix.tokens[t], entry)
	}
}

// segments splits s into n contiguous segments whose lengths differ by
// at most one, shorter segments first. It returns the segment strings
// in order; segStarts gives their offsets.
func segments(s string, n int) []string {
	out := make([]string, n)
	base := len(s) / n
	rem := len(s) % n
	pos := 0
	for i := 0; i < n; i++ {
		l := base
		if i >= n-rem {
			l++
		}
		out[i] = s[pos : pos+l]
		pos += l
	}
	return out
}

// segmentStarts returns the start offset and length of each of the n
// segments of a string of length strLen, matching segments().
func segmentStarts(strLen, n int) [][2]int {
	out := make([][2]int, n)
	base := strLen / n
	rem := strLen % n
	pos := 0
	for i := 0; i < n; i++ {
		l := base
		if i >= n-rem {
			l++
		}
		out[i] = [2]int{pos, l}
		pos += l
	}
	return out
}

// LookupEq returns the payloads of entries exactly equal to q.
func (ix *StringIndex) LookupEq(q string) []int32 {
	return ix.collect(ix.exact[q], nil)
}

// LookupED returns the payloads of entries within edit distance k of
// q, k ≤ MaxK. Results are verified (no false positives) and
// duplicate payloads are removed.
func (ix *StringIndex) LookupED(q string, k int) []int32 {
	if k > ix.maxK {
		panic(fmt.Sprintf("similarity: LookupED threshold %d exceeds index maxK %d", k, ix.maxK))
	}
	if k == 0 {
		return ix.LookupEq(q)
	}
	// The dedup map is allocated lazily: most queries over selective
	// signatures touch zero or one posting list entry.
	var seen map[int32]bool
	var cands []int32
	add := func(entries []int32) {
		for _, e := range entries {
			if seen == nil {
				seen = make(map[int32]bool)
			}
			if !seen[e] {
				seen[e] = true
				cands = append(cands, e)
			}
		}
	}
	// Short entries: length filter then verify.
	for _, e := range ix.short {
		if abs(len(ix.strs[e])-len(q)) <= k {
			if seen == nil {
				seen = make(map[int32]bool)
			}
			if !seen[e] {
				seen[e] = true
				cands = append(cands, e)
			}
		}
	}
	// Segment probes for every plausible indexed length.
	n := ix.maxK + 1
	for l := len(q) - k; l <= len(q)+k; l++ {
		if l <= ix.maxK {
			continue // covered by the short bucket
		}
		for i, se := range segmentStarts(l, n) {
			start, slen := se[0], se[1]
			lo := start - k
			if lo < 0 {
				lo = 0
			}
			hi := start + k
			if hi > len(q)-slen {
				hi = len(q) - slen
			}
			for st := lo; st <= hi; st++ {
				add(ix.segs[segKey{l, i, q[st : st+slen]}])
			}
		}
	}
	var verified []int32
	for _, e := range cands {
		if EDWithin(ix.strs[e], q, k) {
			verified = append(verified, e)
		}
	}
	return ix.collect(verified, nil)
}

// LookupJaccard returns the payloads of entries with Jaccard(entry, q)
// >= tau.
func (ix *StringIndex) LookupJaccard(q string, tau float64) []int32 {
	return ix.lookupToken(q, func(s string) bool { return Jaccard(s, q) >= tau })
}

// LookupCosine returns the payloads of entries with Cosine(entry, q)
// >= tau.
func (ix *StringIndex) LookupCosine(q string, tau float64) []int32 {
	return ix.lookupToken(q, func(s string) bool { return Cosine(s, q) >= tau })
}

func (ix *StringIndex) lookupToken(q string, accept func(string) bool) []int32 {
	seen := make(map[int32]bool)
	var verified []int32
	consider := func(e int32) {
		if seen[e] {
			return
		}
		seen[e] = true
		if accept(ix.strs[e]) {
			verified = append(verified, e)
		}
	}
	for _, t := range Tokenize(q) {
		for _, e := range ix.tokens[t] {
			consider(e)
		}
	}
	for _, e := range ix.empty {
		consider(e)
	}
	return ix.collect(verified, nil)
}

// Lookup dispatches on the spec and tallies hit/miss accounting.
func (ix *StringIndex) Lookup(spec Spec, q string) []int32 {
	fireHook(q)
	var out []int32
	switch spec.Op {
	case OpEq:
		out = ix.LookupEq(q)
	case OpED:
		out = ix.LookupED(q, spec.K)
	case OpJaccard:
		out = ix.LookupJaccard(q, spec.Tau)
	case OpCosine:
		out = ix.LookupCosine(q, spec.Tau)
	default:
		return nil
	}
	if len(out) > 0 {
		ix.hits.Add(1)
	} else {
		ix.misses.Add(1)
	}
	return out
}

// Stats reports how many Lookup calls found at least one candidate
// (hits) or none (misses), and the number of indexed entries. It
// mirrors rules.Catalog.CacheStats so the signature indexes and the
// candidate cache are observable through the same telemetry registry.
func (ix *StringIndex) Stats() (hits, misses int64, size int) {
	return ix.hits.Load(), ix.misses.Load(), ix.Len()
}

// collect maps entry indexes to their payloads, deduplicating
// payloads (the same payload may have been indexed under multiple
// strings). Small result sets — the overwhelmingly common case for
// selective lookups — dedup in place without allocating a map.
func (ix *StringIndex) collect(entries []int32, buf []int32) []int32 {
	switch len(entries) {
	case 0:
		return nil
	case 1:
		return append(buf, ix.payloads[entries[0]])
	}
	if len(entries) <= 16 {
		out := buf
		for _, e := range entries {
			p := ix.payloads[e]
			dup := false
			for _, q := range out {
				if q == p {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, p)
			}
		}
		return out
	}
	seen := make(map[int32]bool, len(entries))
	out := buf
	for _, e := range entries {
		p := ix.payloads[e]
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
