package similarity

import (
	"sync"
	"testing"
)

func TestStringIndexStats(t *testing.T) {
	ix := NewStringIndex(2)
	ix.Add("Haifa", 1)
	ix.Add("Karcag", 2)
	ix.Add("Haifa", 3) // same string, second payload

	if h, m, s := ix.Stats(); h != 0 || m != 0 || s != 3 {
		t.Fatalf("fresh index stats = (%d, %d, %d), want (0, 0, 3)", h, m, s)
	}

	if got := ix.Lookup(Spec{Op: OpEq}, "Haifa"); len(got) != 2 {
		t.Fatalf("eq lookup = %v, want 2 payloads", got)
	}
	if got := ix.Lookup(Spec{Op: OpED, K: 1}, "Hifa"); len(got) == 0 {
		t.Fatalf("ED lookup found nothing for Hifa")
	}
	if got := ix.Lookup(Spec{Op: OpEq}, "Budapest"); got != nil {
		t.Fatalf("lookup of absent value = %v, want nil", got)
	}

	h, m, s := ix.Stats()
	if h != 2 || m != 1 || s != 3 {
		t.Fatalf("stats = (%d, %d, %d), want (2, 1, 3)", h, m, s)
	}
}

// TestStringIndexStatsConcurrent exercises the atomic counters from
// many goroutines; run with -race.
func TestStringIndexStatsConcurrent(t *testing.T) {
	ix := NewStringIndex(1)
	ix.Add("value", 1)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ix.Lookup(Spec{Op: OpEq}, "value")   // hit
				ix.Lookup(Spec{Op: OpEq}, "missing") // miss
			}
		}()
	}
	wg.Wait()
	h, m, _ := ix.Stats()
	if h != workers*per || m != workers*per {
		t.Fatalf("stats = (%d, %d), want (%d, %d)", h, m, workers*per, workers*per)
	}
}
