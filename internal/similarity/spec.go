package similarity

import (
	"fmt"
	"strconv"
	"strings"
)

// Op identifies a matching operation family.
type Op uint8

const (
	// OpEq is exact string equality, written "=".
	OpEq Op = iota
	// OpED is edit distance within a threshold, written "ED,k".
	OpED
	// OpJaccard is token Jaccard similarity at least a threshold,
	// written "JAC,t".
	OpJaccard
	// OpCosine is token cosine similarity at least a threshold,
	// written "COS,t".
	OpCosine
)

// Spec is a parsed matching operation, the sim(u) label of a rule
// node. The zero Spec is exact equality.
type Spec struct {
	Op  Op
	K   int     // threshold for OpED
	Tau float64 // threshold for OpJaccard / OpCosine
}

// Eq is the exact-equality spec.
var Eq = Spec{Op: OpEq}

// EDK returns an edit-distance spec with threshold k.
func EDK(k int) Spec { return Spec{Op: OpED, K: k} }

// JaccardAtLeast returns a Jaccard spec with threshold tau.
func JaccardAtLeast(tau float64) Spec { return Spec{Op: OpJaccard, Tau: tau} }

// CosineAtLeast returns a cosine spec with threshold tau.
func CosineAtLeast(tau float64) Spec { return Spec{Op: OpCosine, Tau: tau} }

// ParseSpec parses the textual forms "=", "ED,2", "JAC,0.8", "COS,0.7"
// (case-insensitive, spaces tolerated).
func ParseSpec(s string) (Spec, error) {
	t := strings.TrimSpace(s)
	if t == "=" || strings.EqualFold(t, "eq") {
		return Eq, nil
	}
	op, arg, ok := strings.Cut(t, ",")
	if !ok {
		return Spec{}, fmt.Errorf("similarity: cannot parse spec %q", s)
	}
	op = strings.TrimSpace(strings.ToUpper(op))
	arg = strings.TrimSpace(arg)
	switch op {
	case "ED":
		k, err := strconv.Atoi(arg)
		if err != nil || k < 0 {
			return Spec{}, fmt.Errorf("similarity: bad ED threshold %q", arg)
		}
		return EDK(k), nil
	case "JAC", "JACCARD":
		tau, err := strconv.ParseFloat(arg, 64)
		if err != nil || tau < 0 || tau > 1 {
			return Spec{}, fmt.Errorf("similarity: bad Jaccard threshold %q", arg)
		}
		return JaccardAtLeast(tau), nil
	case "COS", "COSINE":
		tau, err := strconv.ParseFloat(arg, 64)
		if err != nil || tau < 0 || tau > 1 {
			return Spec{}, fmt.Errorf("similarity: bad cosine threshold %q", arg)
		}
		return CosineAtLeast(tau), nil
	default:
		return Spec{}, fmt.Errorf("similarity: unknown operation %q", op)
	}
}

// String renders the spec in the textual form accepted by ParseSpec,
// matching the notation of the paper's figures ("=", "ED, 2").
func (sp Spec) String() string {
	switch sp.Op {
	case OpEq:
		return "="
	case OpED:
		return fmt.Sprintf("ED,%d", sp.K)
	case OpJaccard:
		return fmt.Sprintf("JAC,%g", sp.Tau)
	case OpCosine:
		return fmt.Sprintf("COS,%g", sp.Tau)
	default:
		return fmt.Sprintf("spec(%d)", sp.Op)
	}
}

// Match reports whether a and b match under the spec.
func (sp Spec) Match(a, b string) bool {
	fireHook(a)
	switch sp.Op {
	case OpEq:
		return a == b
	case OpED:
		return EDWithin(a, b, sp.K)
	case OpJaccard:
		return Jaccard(a, b) >= sp.Tau
	case OpCosine:
		return Cosine(a, b) >= sp.Tau
	default:
		return false
	}
}

// Fuzzy reports whether the spec tolerates non-identical strings.
func (sp Spec) Fuzzy() bool {
	switch sp.Op {
	case OpEq:
		return false
	case OpED:
		return sp.K > 0
	default:
		return sp.Tau < 1
	}
}
