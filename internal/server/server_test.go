package server_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/server"
)

func newTestServer(t *testing.T) (*httptest.Server, *dataset.PaperExample) {
	t.Helper()
	ex := dataset.NewPaperExample()
	s, err := server.New(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, ex
}

const dirtyCSV = `Name,DOB,Country,Prize,Institution,City
Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,Israel Institute of Technology,Karcag
`

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestCleanEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/clean?marked=1", "text/csv", strings.NewReader(dirtyCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body strings.Builder
	if _, err := func() (int64, error) {
		b := make([]byte, 64<<10)
		n, _ := resp.Body.Read(b)
		body.Write(b[:n])
		return int64(n), nil
	}(); err != nil {
		t.Fatal(err)
	}
	out := body.String()
	if !strings.Contains(out, "Haifa+") {
		t.Fatalf("City not repaired+marked:\n%s", out)
	}
	if !strings.Contains(out, "Nobel Prize in Chemistry+") {
		t.Fatalf("Prize not repaired:\n%s", out)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/explain", "text/csv", strings.NewReader(dirtyCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []server.ExplainedTuple
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(rows[0].Steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(rows[0].Steps))
	}
	foundCity := false
	for _, st := range rows[0].Steps {
		if st.RepairCol == "City" {
			foundCity = true
			if st.Old != "Karcag" || st.New != "Haifa" {
				t.Errorf("City step = %+v", st)
			}
			if st.Witness["n2"] != "Karcag" {
				t.Errorf("witness = %v", st.Witness)
			}
		}
	}
	if !foundCity {
		t.Fatal("no City repair step in explanation")
	}
}

func TestRulesEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/rules")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64<<10)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "rule phi1 {") {
		t.Fatalf("rules output:\n%s", buf[:n])
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Rules != 4 || len(stats.Schema) != 6 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.KB.Instances == 0 || stats.KB.Triples == 0 {
		t.Fatalf("kb stats = %+v", stats.KB)
	}
}

func TestCleanRejectsBadInput(t *testing.T) {
	ts, _ := newTestServer(t)

	// Wrong column count.
	resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader("A,B\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong arity: status = %d", resp.StatusCode)
	}

	// Wrong column names.
	resp, err = http.Post(ts.URL+"/clean", "text/csv",
		strings.NewReader("A,B,C,D,E,F\n1,2,3,4,5,6\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong names: status = %d", resp.StatusCode)
	}

	// Empty body.
	resp, err = http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body: status = %d", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(ts.URL + "/clean")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /clean: status = %d", resp.StatusCode)
	}
}

func TestConcurrentCleans(t *testing.T) {
	ts, _ := newTestServer(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(dirtyCSV))
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = &http.ProtocolError{ErrorString: resp.Status}
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
