package server_test

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"detective/internal/dataset"
	"detective/internal/server"
	"detective/internal/telemetry"
)

// newMetricsServer builds a server over its own registry so counter
// assertions are not polluted by other tests sharing the default
// registry. (Engine-level repair metrics still go to the default
// registry; the HTTP and cache layers are what this file asserts on.)
func newMetricsServer(t *testing.T) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	ex := dataset.NewPaperExample()
	reg := telemetry.NewRegistry()
	s, err := server.NewWithConfig(ex.Rules, ex.KB, ex.Schema, server.Config{
		Metrics: reg,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, reg
}

func TestRequestIDHeader(t *testing.T) {
	ts, _ := newMetricsServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get(telemetry.RequestIDHeader)
	if len(id) != 16 {
		t.Fatalf("X-Request-ID = %q, want 16 hex digits", id)
	}
}

func TestPerRouteMetrics(t *testing.T) {
	ts, reg := newMetricsServer(t)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(dirtyCSV))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	clean := reg.Counter("detective_http_requests_total", "",
		telemetry.Label{Name: "route", Value: "/clean"},
		telemetry.Label{Name: "code", Value: "200"})
	if got := clean.Value(); got != 2 {
		t.Fatalf("/clean 200 counter = %d, want 2", got)
	}
	lat := reg.Histogram("detective_http_request_seconds", "", nil,
		telemetry.Label{Name: "route", Value: "/clean"})
	if got := lat.Count(); got != 2 {
		t.Fatalf("/clean latency observations = %d, want 2", got)
	}
	if got := reg.Gauge("detective_http_in_flight", "").Value(); got != 0 {
		t.Fatalf("in-flight = %v, want 0", got)
	}
}

func TestShedCounter(t *testing.T) {
	ex := dataset.NewPaperExample()
	reg := telemetry.NewRegistry()
	s, err := server.NewWithConfig(ex.Rules, ex.KB, ex.Schema, server.Config{
		MaxConcurrent: 1,
		Metrics:       reg,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Hold the single slot with a request whose body never finishes,
	// then observe the next request being shed.
	pr, pw := io.Pipe()
	defer pw.Close()
	go func() {
		pw.Write([]byte("Name,DOB,Country,Prize,Institution,City\n"))
		// keep the pipe open: the request stays in flight
	}()
	req, _ := http.NewRequest("POST", ts.URL+"/clean", pr)
	req.Header.Set("Content-Type", "text/csv")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	// Wait until the slot is taken (in-flight gauge reaches 1).
	landed := false
	for i := 0; i < 400; i++ {
		if reg.Gauge("detective_http_in_flight", "").Value() >= 1 {
			landed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !landed {
		t.Fatal("first request never landed")
	}

	resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(dirtyCSV))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	if got := reg.Counter("detective_http_shed_total", "").Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	shed := reg.Counter("detective_http_requests_total", "",
		telemetry.Label{Name: "route", Value: "/clean"},
		telemetry.Label{Name: "code", Value: "429"})
	if got := shed.Value(); got != 1 {
		t.Fatalf("429 counter = %d, want 1", got)
	}
	pw.CloseWithError(io.ErrClosedPipe)
	<-done
}

func TestBodyTooLargeCounter(t *testing.T) {
	ex := dataset.NewPaperExample()
	reg := telemetry.NewRegistry()
	s, err := server.NewWithConfig(ex.Rules, ex.KB, ex.Schema, server.Config{
		MaxBodyBytes: 128,
		Metrics:      reg,
		Logger:       slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	big := dirtyCSV + strings.Repeat("x", 4096)
	resp, err := http.Post(ts.URL+"/explain", "text/csv", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if got := reg.Counter("detective_http_body_too_large_total", "").Value(); got != 1 {
		t.Fatalf("too-large counter = %d, want 1", got)
	}
}

// TestMetricsExposition drives real traffic through the server, then
// scrapes the registry the way the ops listener would and validates
// the whole exposition — the `make metrics-check` entry point.
func TestMetricsExposition(t *testing.T) {
	ts, reg := newMetricsServer(t)
	resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(dirtyCSV))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ops := httptest.NewServer(telemetry.NewOpsMux(reg))
	defer ops.Close()
	mr, err := http.Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	body, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	n, err := telemetry.ValidateExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if n == 0 {
		t.Fatal("no samples in exposition")
	}
	for _, want := range []string{
		`detective_http_requests_total{code="200",route="/clean"}`,
		"detective_http_request_seconds_bucket",
		"detective_http_in_flight",
		"detective_catalog_cache_hits_total",
		"detective_catalog_cache_misses_total",
		"detective_similarity_index_hits_total",
		"detective_similarity_index_size",
		"detective_http_shed_total",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The default registry carries the engine's repair metrics (the
	// engine always instruments process-wide); a full detectived ops
	// scrape includes both.
	var dbuf bytes.Buffer
	if err := telemetry.Default().WritePrometheus(&dbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(dbuf.Bytes(), []byte("detective_repair_tuples_total")) {
		t.Error("default registry missing repair outcome counters")
	}
}
