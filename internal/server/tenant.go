package server

// Multi-tenant serving: a TenantMux routes /v1/{tenant}/... requests
// to per-tenant Servers supplied by a TenantResolver (implemented by
// internal/registry). Each tenant keeps its own engine, caches,
// concurrency limit, canary and breaker — the mux only resolves the
// name, pins the tenant's residency for the request's duration, and
// delegates with the tenant prefix stripped, so every single-tenant
// endpoint (/clean, /explain, /rules, /stats, /healthz, /readyz)
// works unchanged under its tenant prefix.
//
// The admin variant additionally serves the tenant-scoped KB
// lifecycle — POST /v1/{tenant}/reload and /v1/{tenant}/rollback —
// and belongs on the ops listener only.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"

	"detective/internal/kb"
)

// ErrUnknownTenant is returned by TenantResolver.Tenant for names not
// in the registry's configuration; the mux answers it with 404.
var ErrUnknownTenant = errors.New("unknown tenant")

// TenantResolver resolves tenant names to their serving Servers. The
// release func pins the tenant resident until the request completes;
// it must be called exactly once (calling it more is a no-op).
type TenantResolver interface {
	// Tenant returns the server for name, admitting (loading) the
	// tenant first when it is configured but not resident. Unknown
	// names return an error wrapping ErrUnknownTenant.
	Tenant(name string) (*Server, func(), error)
	// TenantNames lists every configured tenant, sorted.
	TenantNames() []string
}

// TenantAdmin extends a resolver with the per-tenant KB loader the
// admin mux needs to serve POST /v1/{tenant}/reload.
type TenantAdmin interface {
	TenantResolver
	// TenantLoader returns a function that re-reads name's KB from its
	// configured source (snapshot or text file).
	TenantLoader(name string) func() (*kb.Graph, error)
}

// TenantMux is the http.Handler of a multi-tenant listener.
type TenantMux struct {
	res   TenantResolver
	admin TenantAdmin // non-nil only on the ops variant
	log   *slog.Logger
}

// NewTenantMux returns the public multi-tenant handler: /v1 lists
// tenants, /v1/{tenant}/... delegates to the tenant's server, and
// everything else — unknown routes and unknown tenants alike — gets a
// JSON 404 envelope. KB lifecycle endpoints are not exposed.
func NewTenantMux(res TenantResolver, log *slog.Logger) *TenantMux {
	if log == nil {
		log = slog.Default()
	}
	return &TenantMux{res: res, log: log}
}

// NewTenantAdminMux returns the ops-listener variant: everything the
// public mux serves plus POST /v1/{tenant}/reload (staged canary
// reload from the tenant's configured source) and
// POST /v1/{tenant}/rollback.
func NewTenantAdminMux(res TenantAdmin, log *slog.Logger) *TenantMux {
	tm := NewTenantMux(res, log)
	tm.admin = res
	return tm
}

// tenantIndex is the JSON shape of GET /v1.
type tenantIndex struct {
	Tenants []string `json:"tenants"`
}

func (tm *TenantMux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		// Process liveness, tenant-independent: load balancers health-
		// check the listener, not any one tenant.
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case path == "/v1" || path == "/v1/":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, tenantIndex{Tenants: tm.res.TenantNames()})
	case strings.HasPrefix(path, "/v1/"):
		name, rest, _ := strings.Cut(path[len("/v1/"):], "/")
		rest = "/" + rest
		if name == "" {
			writeError(w, http.StatusNotFound, "no tenant in path %q", path)
			return
		}
		if tm.admin != nil && (rest == "/reload" || rest == "/rollback") {
			tm.serveAdmin(w, r, name, rest)
			return
		}
		s, release, err := tm.resolve(w, r, name)
		if err != nil {
			return
		}
		defer release()
		s.ServeHTTP(w, stripTenantPrefix(r, rest))
	default:
		writeError(w, http.StatusNotFound, "no such route %q", path)
	}
}

// resolve maps a tenant name to its server, writing the error
// response (404 unknown, 503 admission failure) itself.
func (tm *TenantMux) resolve(w http.ResponseWriter, r *http.Request, name string) (*Server, func(), error) {
	s, release, err := tm.res.Tenant(name)
	if err != nil {
		if errors.Is(err, ErrUnknownTenant) {
			writeError(w, http.StatusNotFound, "unknown tenant %q", name)
			return nil, nil, err
		}
		tm.log.Error("tenant admission failed",
			slog.String("tenant", name),
			slog.String("path", r.URL.Path),
			slog.Any("error", err))
		writeError(w, http.StatusServiceUnavailable, "tenant %q unavailable: %v", name, err)
		return nil, nil, err
	}
	return s, release, nil
}

func (tm *TenantMux) serveAdmin(w http.ResponseWriter, r *http.Request, name, rest string) {
	s, release, err := tm.resolve(w, r, name)
	if err != nil {
		return
	}
	defer release()
	switch rest {
	case "/reload":
		s.ReloadHandler(tm.admin.TenantLoader(name)).ServeHTTP(w, stripTenantPrefix(r, rest))
	case "/rollback":
		s.RollbackHandler().ServeHTTP(w, stripTenantPrefix(r, rest))
	}
}

// stripTenantPrefix rewrites the request path from /v1/{tenant}/rest
// to /rest so the tenant's single-tenant mux patterns match.
func stripTenantPrefix(r *http.Request, rest string) *http.Request {
	r2 := new(http.Request)
	*r2 = *r
	u2 := *r.URL
	u2.Path = rest
	if u2.RawPath != "" {
		// The escaped form no longer corresponds; drop it so URL.Path
		// is authoritative.
		u2.RawPath = ""
	}
	r2.URL = &u2
	return r2
}

// jsonErrorWriter rewrites http.ServeMux's built-in plain-text 404
// (unknown route) and 405 (wrong method) bodies into the JSON error
// envelope every other error response uses. Handler-originated
// responses pass through untouched: the rewrite only triggers on an
// error status whose Content-Type is the text/plain that
// http.Error — and nothing else in this package — sets.
type jsonErrorWriter struct {
	http.ResponseWriter
	intercepted bool
}

func (w *jsonErrorWriter) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		msg := "no such route"
		if status == http.StatusMethodNotAllowed {
			msg = "method not allowed"
			if allow := w.Header().Get("Allow"); allow != "" {
				msg = "method not allowed (allowed: " + allow + ")"
			}
		}
		body, err := json.Marshal(errorEnvelope{errorBody{Status: status, Message: msg}})
		if err == nil {
			w.intercepted = true
			h := w.Header()
			h.Set("Content-Type", "application/json")
			h.Set("Content-Length", strconv.Itoa(len(body)))
			w.ResponseWriter.WriteHeader(status)
			_, _ = w.ResponseWriter.Write(body)
			return
		}
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *jsonErrorWriter) Write(p []byte) (int, error) {
	if w.intercepted {
		// Swallow the mux's plain-text body; the envelope is already out.
		return len(p), nil
	}
	return w.ResponseWriter.Write(p)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush/EnableFullDuplex, which the streaming /clean handler needs.
func (w *jsonErrorWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// WriteError exposes the server's JSON error envelope to other
// packages composing handlers next to it (cmd/detectived's registry
// ops routes).
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	writeError(w, status, format, args...)
}

// WriteJSON exposes the server's buffered JSON response helper.
func WriteJSON(w http.ResponseWriter, v any) { writeJSON(w, v) }
