package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"detective/internal/faultinject"
	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/server"
	"detective/internal/similarity"
)

// reloadGraph builds variant "A" or "B" of a tiny KB whose repairs
// carry the variant suffix, so a cleaned row reveals which graph
// served it (same trick as the repair-level hot-swap tests).
func reloadGraph(variant string) *kb.Graph {
	g := kb.New()
	g.AddType("Alice", "person")
	g.AddType("Paris"+variant, "city")
	g.AddType("Euro"+variant, "country")
	g.AddTriple("Alice", "livesIn", "Paris"+variant)
	g.AddTriple("Alice", "citizenOf", "Euro"+variant)
	return g
}

func reloadRules() []*rules.DR {
	ed2 := similarity.Spec{Op: similarity.OpED, K: 2}
	return []*rules.DR{
		{
			Name:     "fix-city",
			Evidence: []rules.Node{{Name: "e", Col: "Name", Type: "person", Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: "City", Type: "city", Sim: ed2},
			Edges:    []rules.Edge{{From: "e", Rel: "livesIn", To: "p"}},
		},
		{
			Name:     "fix-country",
			Evidence: []rules.Node{{Name: "e", Col: "Name", Type: "person", Sim: similarity.Eq}},
			Pos:      rules.Node{Name: "p", Col: "Country", Type: "country", Sim: ed2},
			Edges:    []rules.Edge{{From: "e", Rel: "citizenOf", To: "p"}},
		},
	}
}

func newReloadServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	schema := relation.NewSchema("people", "Name", "City", "Country")
	s, err := server.NewWithStore(reloadRules(), kb.NewStore(reloadGraph("A")), schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cleanOne(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Post(url+"/clean", "text/csv",
		strings.NewReader("Name,City,Country\nAlice,ParisX,EuroX\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/clean status = %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	return lines[len(lines)-1]
}

func TestReloadEndpointSwapsGraph(t *testing.T) {
	s := newReloadServer(t, server.Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// The admin handler lives on its own (ops) mux, like production.
	ops := http.NewServeMux()
	ops.Handle("POST /reload", s.ReloadHandler(func() (*kb.Graph, error) {
		return reloadGraph("B"), nil
	}))
	opsTS := httptest.NewServer(ops)
	defer opsTS.Close()

	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("pre-reload clean = %q", got)
	}

	resp, err := http.Post(opsTS.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("/reload status = %d: %s", resp.StatusCode, b)
	}
	var rr struct {
		Generation int64 `json:"generation"`
		Swaps      int64 `json:"swaps"`
		Triples    int   `json:"triples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Swaps != 1 || rr.Generation <= 0 || rr.Triples != 2 {
		t.Fatalf("reload response = %+v", rr)
	}

	if got := cleanOne(t, ts.URL); got != "Alice,ParisB,EuroB" {
		t.Fatalf("post-reload clean = %q", got)
	}

	// /stats reflects the swap.
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.KBSwaps != 1 || stats.KBGeneration != rr.Generation {
		t.Fatalf("stats generation/swaps = %d/%d, want %d/1",
			stats.KBGeneration, stats.KBSwaps, rr.Generation)
	}
}

func TestReloadHandlerKeepsGraphOnLoadFailure(t *testing.T) {
	s := newReloadServer(t, server.Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	h := httptest.NewServer(s.ReloadHandler(func() (*kb.Graph, error) {
		return nil, fmt.Errorf("disk corrupted")
	}))
	defer h.Close()

	resp, err := http.Post(h.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "disk corrupted") {
		t.Fatalf("error body = %s", body)
	}
	if s.Store().Swaps() != 0 {
		t.Fatalf("failed load still swapped (swaps = %d)", s.Store().Swaps())
	}
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("clean after failed reload = %q", got)
	}
}

// TestReloadUnderLoad hot-swaps the KB while concurrent /clean
// requests stream: every request must succeed with internally
// consistent rows (no mixed-generation repairs).
func TestReloadUnderLoad(t *testing.T) {
	s := newReloadServer(t, server.Config{MaxConcurrent: 64})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const rows = 200
	var in strings.Builder
	in.WriteString("Name,City,Country\n")
	for i := 0; i < rows; i++ {
		in.WriteString("Alice,ParisX,EuroX\n")
	}
	csv := in.String()

	done := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				s.ReloadKB(reloadGraph("B"), 0)
			} else {
				s.ReloadKB(reloadGraph("A"), 0)
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(csv))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/clean status = %d: %s", resp.StatusCode, body)
				return
			}
			lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
			if len(lines) != rows+1 {
				t.Errorf("got %d output lines, want %d", len(lines), rows+1)
				return
			}
			for i, line := range lines[1:] {
				f := strings.Split(line, ",")
				if len(f) != 3 {
					t.Errorf("row %d malformed: %q", i, line)
					return
				}
				city, country := f[1], f[2]
				if !strings.HasPrefix(city, "Paris") || !strings.HasPrefix(country, "Euro") {
					t.Errorf("row %d: unexpected repair (%q, %q)", i, city, country)
					return
				}
				if city[len("Paris"):] != country[len("Euro"):] {
					t.Errorf("row %d: mixed-generation repair (%q, %q)", i, city, country)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	swapper.Wait()
	if s.Store().Swaps() == 0 {
		t.Fatal("no swap happened during the run")
	}
}

// TestReloadUnderLoadSurvivesBadCandidates hammers /clean while the
// reload path is fed nothing but poisoned candidates: snapshots that
// fail mid-decode (injected read fault) and graphs that fail the
// strict integrity self-check. Neither class may displace the serving
// generation or fail a single in-flight request.
func TestReloadUnderLoadSurvivesBadCandidates(t *testing.T) {
	s := newReloadServer(t, server.Config{MaxConcurrent: 64, VerifyMode: "strict"})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A well-formed snapshot whose stream is cut mid-decode.
	var snap bytes.Buffer
	if err := reloadGraph("B").WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	loadTruncated := func() (*kb.Graph, error) {
		return kb.LoadSnapshot(&faultinject.Reader{
			R:         bytes.NewReader(snap.Bytes()),
			FailAfter: int64(snap.Len()) / 2,
		})
	}
	// A decodable graph that strict verify rejects (taxonomy cycle).
	loadSuspect := func() (*kb.Graph, error) {
		g := reloadGraph("B")
		g.AddSubclass("city", "country")
		g.AddSubclass("country", "city")
		return g, nil
	}
	mux := http.NewServeMux()
	mux.Handle("POST /reload/truncated", s.ReloadHandler(loadTruncated))
	mux.Handle("POST /reload/suspect", s.ReloadHandler(loadSuspect))
	opsTS := httptest.NewServer(mux)
	defer opsTS.Close()

	startGen := s.Store().Generation()

	const rows = 100
	var in strings.Builder
	in.WriteString("Name,City,Country\n")
	for i := 0; i < rows; i++ {
		in.WriteString("Alice,ParisX,EuroX\n")
	}
	csv := in.String()

	done := make(chan struct{})
	var reloader sync.WaitGroup
	reloader.Add(1)
	go func() {
		defer reloader.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			path := "/reload/truncated"
			want := http.StatusInternalServerError
			if i%2 == 1 {
				path = "/reload/suspect"
				want = http.StatusConflict
			}
			resp, err := http.Post(opsTS.URL+path, "", nil)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != want {
				t.Errorf("%s status = %d, want %d: %s", path, resp.StatusCode, want, body)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(csv))
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/clean status = %d: %s", resp.StatusCode, body)
					return
				}
				lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
				if len(lines) != rows+1 {
					t.Errorf("got %d output lines, want %d", len(lines), rows+1)
					return
				}
				for i, line := range lines[1:] {
					if line != "Alice,ParisA,EuroA" {
						t.Errorf("row %d served off a poisoned candidate: %q", i, line)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	reloader.Wait()

	if got := s.Store().Generation(); got != startGen {
		t.Fatalf("generation moved %d -> %d under poisoned reloads", startGen, got)
	}
	if s.Store().Swaps() != 0 {
		t.Fatalf("poisoned candidate swapped in (swaps = %d)", s.Store().Swaps())
	}
}
