package server

import (
	"errors"
	"net/http"
	"time"

	"detective/internal/kb"
	"detective/internal/telemetry"
)

// ReloadKB publishes a replacement knowledge-base graph with zero
// downtime: in-flight tuples finish on the graph they pinned at entry,
// every tuple started after the swap sees the new one, and the
// generation bump invalidates the candidate cache and signature
// indexes coherently. loadTime is the wall time the caller spent
// building g (parsing text or decoding a snapshot); pass 0 when
// unknown. Returns the generation now being served.
//
// Safe to call concurrently with cleaning requests; concurrent
// reloads serialize on the swap mutex.
func (s *Server) ReloadKB(g *kb.Graph, loadTime time.Duration) int64 {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.store.Swap(g)
	gen := s.store.Generation()
	s.reloadTotal.Inc()
	if loadTime > 0 {
		s.loadSeconds.Set(loadTime.Seconds())
	}
	// Pre-warm the new generation's signature indexes off the request
	// path, exactly like server construction does, so the first
	// post-swap request does not pay the index build.
	s.engine.Warm()
	s.refreshSuspicion(g)
	s.log.Info("kb reloaded",
		"generation", gen,
		"nodes", g.NumNodes(),
		"triples", g.NumTriples(),
		"old_generation", old.Generation(),
		"load_seconds", loadTime.Seconds())
	return gen
}

// Store exposes the server's KB store, e.g. for tests or callers that
// swap graphs directly rather than through ReloadKB.
func (s *Server) Store() *kb.Store { return s.store }

// reloadResponse is the JSON shape of POST /reload.
type reloadResponse struct {
	Generation  int64   `json:"generation"`
	Swaps       int64   `json:"swaps"`
	LoadSeconds float64 `json:"loadSeconds"`
	Nodes       int     `json:"nodes"`
	Triples     int     `json:"triples"`
	// Delta reports whether this reload applied an incremental DKBD
	// delta (POST /reload?delta=1) rather than re-reading the full KB
	// file; DeltaOps is the number of ops the delta carried. For delta
	// reloads LoadSeconds is the copy-on-write apply time.
	Delta    bool `json:"delta,omitempty"`
	DeltaOps int  `json:"deltaOps,omitempty"`
	// Canary carries the integrity-check and shadow-replay results the
	// staged reload based its promote/reject decision on.
	Canary *CanaryReport `json:"canary,omitempty"`
}

// ReloadHandler returns the admin POST /reload handler for the ops
// mux (it is deliberately not registered on the public listener). On
// each request it calls load — typically re-reading the -kb or
// -kb-snapshot file — and, on success, stages the result through the
// canary pipeline (integrity self-check, shadow replay, watchdog) via
// StageReloadKB. Load failures answer 500 and canary rejections 409;
// both leave the serving graph untouched, so a bad file on disk — or
// a structurally broken graph inside a well-formed file — can never
// take down a healthy server.
func (s *Server) ReloadHandler(load func() (*kb.Graph, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if r.URL.Query().Get("delta") == "1" {
			s.handleDeltaReload(w, r)
			return
		}
		start := time.Now()
		g, err := load()
		if err != nil {
			s.log.Error("kb reload failed; keeping current graph",
				"error", err,
				"request_id", telemetry.RequestID(r.Context()))
			writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
			return
		}
		loadTime := time.Since(start)
		gen, rep, err := s.StageReloadKB(g, loadTime)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrCanaryRejected) {
				status = http.StatusConflict
			}
			s.log.Error("kb reload rejected; keeping current graph",
				"error", err,
				"request_id", telemetry.RequestID(r.Context()))
			writeError(w, status, "reload rejected: %v", err)
			return
		}
		writeJSON(w, reloadResponse{
			Generation:  gen,
			Swaps:       s.store.Swaps(),
			LoadSeconds: loadTime.Seconds(),
			Nodes:       g.NumNodes(),
			Triples:     g.NumTriples(),
			Canary:      rep,
		})
	})
}

// handleDeltaReload serves POST /reload?delta=1: the request body is a
// DKBD delta (kbtool diff old.dkbs new.dkbs) applied copy-on-write
// against the serving graph, then staged through the same canary
// pipeline as a full reload. A malformed body answers 400, a delta
// built against a different base graph — or a canary rejection — 409,
// and every failure leaves the serving graph untouched.
func (s *Server) handleDeltaReload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	d, err := kb.ReadDelta(body)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.tooLargeTotal.Inc()
			status = http.StatusRequestEntityTooLarge
		}
		s.log.Error("kb delta reload: bad body; keeping current graph",
			"error", err,
			"request_id", telemetry.RequestID(r.Context()))
		writeError(w, status, "reading delta: %v", err)
		return
	}
	gen, rep, err := s.StageReloadDelta(d)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrCanaryRejected) || errors.Is(err, kb.ErrDeltaBaseMismatch) {
			status = http.StatusConflict
		}
		s.log.Error("kb delta reload rejected; keeping current graph",
			"error", err,
			"request_id", telemetry.RequestID(r.Context()))
		writeError(w, status, "delta reload rejected: %v", err)
		return
	}
	g := s.store.Graph()
	writeJSON(w, reloadResponse{
		Generation:  gen,
		Swaps:       s.store.Swaps(),
		LoadSeconds: s.deltaApplySeconds.Value(),
		Nodes:       g.NumNodes(),
		Triples:     g.NumTriples(),
		Delta:       true,
		DeltaOps:    d.Ops(),
		Canary:      rep,
	})
}
