package server_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/repair"
	"detective/internal/repair/ensemble"
	"detective/internal/server"
)

// panicProposer is an auxiliary ensemble engine that always panics —
// the server-visible failure mode of a broken proposer.
type panicProposer struct{}

func (panicProposer) Name() string { return "panicky" }

func (panicProposer) Propose(context.Context, []string, []bool) []ensemble.Proposal {
	panic("panicky proposer")
}

func newEnsembleTestServer(t *testing.T, proposers ...ensemble.Proposer) *httptest.Server {
	t.Helper()
	ex := dataset.NewPaperExample()
	s, err := server.NewWithConfig(ex.Rules, ex.KB, ex.Schema, server.Config{
		Ensemble: repair.EnsembleOptions{Enabled: true, Proposers: proposers},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// postClean POSTs csv to url and returns status, the fully-drained
// body, and the response trailers (valid only after the drain).
func postClean(t *testing.T, url, csv string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Trailer
}

func TestCleanEnsembleConfidenceTrailers(t *testing.T) {
	ts := newEnsembleTestServer(t)
	status, body, trailer := postClean(t, ts.URL+"/clean?ensemble=1&marked=1", dirtyCSV)
	if status != http.StatusOK {
		t.Fatalf("status = %d\n%s", status, body)
	}
	header := strings.SplitN(body, "\n", 2)[0]
	if !strings.HasSuffix(header, ",confidence") {
		t.Errorf("ensemble output header lacks confidence column: %q", header)
	}
	if !strings.Contains(body, "Haifa+") {
		t.Errorf("City not repaired in ensemble mode:\n%s", body)
	}
	if got := trailer.Get(server.TrailerRows); got != "1" {
		t.Errorf("%s = %q, want 1", server.TrailerRows, got)
	}
	for _, name := range []string{server.TrailerConfidenceMean, server.TrailerConfidenceMin} {
		v := trailer.Get(name)
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			t.Errorf("%s = %q, want a float in [0, 1]", name, v)
		}
	}
	if got := trailer.Get(server.TrailerConfidenceBelow); got != "0" {
		t.Errorf("%s = %q, want 0: nothing contests the detective here", server.TrailerConfidenceBelow, got)
	}
}

func TestCleanPlainOmitsConfidence(t *testing.T) {
	ts := newEnsembleTestServer(t)
	status, body, trailer := postClean(t, ts.URL+"/clean?marked=1", dirtyCSV)
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if strings.Contains(strings.SplitN(body, "\n", 2)[0], "confidence") {
		t.Errorf("plain clean output grew a confidence column: %q", body)
	}
	if got := trailer.Get(server.TrailerConfidenceMean); got != "" {
		t.Errorf("plain clean sent %s = %q, want no confidence trailers", server.TrailerConfidenceMean, got)
	}
}

func TestCleanEnsembleDisabledRejected(t *testing.T) {
	ts, _ := newTestServer(t) // no Ensemble in config
	status, body, _ := postClean(t, ts.URL+"/clean?ensemble=1", dirtyCSV)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 on a non-ensemble server\n%s", status, body)
	}
}

// A proposer panicking inside the serving path must stay invisible to
// the client: 200, the detective's repairs, full confidence trailers.
// Named TestFault* so the fault-injection suite (make fault) runs it.
func TestFaultCleanEnsembleProposerPanic(t *testing.T) {
	ts := newEnsembleTestServer(t, panicProposer{})
	status, body, trailer := postClean(t, ts.URL+"/clean?ensemble=1&marked=1", dirtyCSV)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 despite the panicking proposer\n%s", status, body)
	}
	if !strings.Contains(body, "Haifa+") || !strings.Contains(body, "Nobel Prize in Chemistry+") {
		t.Errorf("detective repairs missing with quarantined proposer:\n%s", body)
	}
	if got := trailer.Get(server.TrailerRows); got != "1" {
		t.Errorf("%s = %q, want 1", server.TrailerRows, got)
	}
	// The quarantine is per-engine, not row-level degradation.
	if got := trailer.Get(server.TrailerQuarantined); got != "0" {
		t.Errorf("%s = %q, want 0", server.TrailerQuarantined, got)
	}
	if got := trailer.Get(server.TrailerConfidenceMean); got == "" {
		t.Error("confidence trailers missing on the quarantined-proposer path")
	}
}
