package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"detective/internal/server"
	"detective/internal/telemetry"
)

// TestMemoInvalidatedOnReload drives the full server path of the
// invalidation contract: warm the cross-request memo over /clean,
// hot-swap the KB via ReloadKB, and require that (a) a stale cached
// repair is never served after the swap, (b) the drop is visible as a
// generation eviction in /stats, and (c) pre-reload repeats did hit.
func TestMemoInvalidatedOnReload(t *testing.T) {
	s := newReloadServer(t, server.Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("cold clean = %q, want ParisA/EuroA", got)
	}
	// Same request again: must be byte-identical and memo-served.
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("warm clean = %q, want ParisA/EuroA", got)
	}

	st := memoStats(t, ts.URL)
	if !st.Memo.Enabled {
		t.Fatal("memo should be enabled by default in the server")
	}
	if st.Memo.Tuple.Hits == 0 {
		t.Fatalf("repeated /clean produced no tuple hits: %+v", st.Memo.Tuple)
	}

	s.ReloadKB(reloadGraph("B"), 0)

	// Stale ParisA/EuroA must never appear now.
	for i := 0; i < 3; i++ {
		if got := cleanOne(t, ts.URL); got != "Alice,ParisB,EuroB" {
			t.Fatalf("post-reload clean #%d = %q, want ParisB/EuroB (stale memo served)", i+1, got)
		}
	}

	st = memoStats(t, ts.URL)
	if st.Memo.Tuple.GenEvictions == 0 {
		t.Errorf("no generation evictions counted after reload: %+v", st.Memo.Tuple)
	}

	// The memo series are registered in the process-default telemetry
	// registry and must survive Prometheus exposition.
	var buf bytes.Buffer
	telemetry.Default().WritePrometheus(&buf)
	if _, err := telemetry.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, want := range []string{
		"detective_memo_hits_total",
		"detective_memo_misses_total",
		"detective_memo_evictions_total",
		"detective_memo_bytes",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("Prometheus exposition missing %s", want)
		}
	}
}

// memoStats fetches GET /stats and decodes the memo block.
func memoStats(t *testing.T, url string) server.StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status = %d: %s", resp.StatusCode, body)
	}
	var st server.StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding /stats: %v\n%s", err, body)
	}
	return st
}
