package server_test

// Delta reload tests: POST /reload?delta=1 applies an incremental
// DKBD delta copy-on-write against the serving graph through the same
// canary pipeline as a full reload. The fault cases — stale base,
// corrupt bytes, strict-verify rejection — must all leave the serving
// generation untouched, and mixed full/delta reloads under concurrent
// /clean traffic must never tear a row (the -race chaos lane runs
// TestReloadUnderLoadMixedDelta alongside the original reload drills).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"detective/internal/kb"
	"detective/internal/server"
)

// deltaBytes serializes Diff(old, new) the way `kbtool diff` does.
func deltaBytes(t *testing.T, old, new *kb.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := kb.Diff(old, new).Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postDelta(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"?delta=1", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// deltaStats fetches /stats and decodes it.
func deltaStats(t *testing.T, url string) server.StatsResponse {
	t.Helper()
	sr, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestDeltaReloadEndpoint(t *testing.T) {
	s := newReloadServer(t, server.Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	// The same handler serves full and delta reloads; the loader is
	// only consulted on the full path.
	ops := httptest.NewServer(s.ReloadHandler(func() (*kb.Graph, error) {
		return reloadGraph("B"), nil
	}))
	defer ops.Close()

	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("pre-delta clean = %q", got)
	}
	// The delta counters are process-global telemetry series (shared by
	// every server in this test binary), so assert increments against a
	// pre-delta baseline rather than absolute values.
	before := deltaStats(t, ts.URL)

	resp, body := postDelta(t, ops.URL, deltaBytes(t, reloadGraph("A"), reloadGraph("B")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta reload status = %d: %s", resp.StatusCode, body)
	}
	var rr struct {
		Generation int64 `json:"generation"`
		Delta      bool  `json:"delta"`
		DeltaOps   int   `json:"deltaOps"`
		Triples    int   `json:"triples"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Delta || rr.DeltaOps == 0 || rr.Generation <= 1 || rr.Triples != 2 {
		t.Fatalf("delta reload response = %+v: %s", rr, body)
	}

	// Repairs now come off the delta-applied generation.
	if got := cleanOne(t, ts.URL); got != "Alice,ParisB,EuroB" {
		t.Fatalf("post-delta clean = %q", got)
	}

	// /stats carries the delta accounting.
	stats := deltaStats(t, ts.URL)
	if stats.KBDeltasApplied != before.KBDeltasApplied+1 ||
		stats.KBDeltaTriples <= before.KBDeltaTriples ||
		stats.KBGeneration != rr.Generation {
		t.Fatalf("stats deltasApplied/deltaTriples/generation = %d/%d/%d, want %d/>%d/%d",
			stats.KBDeltasApplied, stats.KBDeltaTriples, stats.KBGeneration,
			before.KBDeltasApplied+1, before.KBDeltaTriples, rr.Generation)
	}

	// A second delta chains off the first generation's fingerprint.
	resp, body = postDelta(t, ops.URL, deltaBytes(t, reloadGraph("B"), reloadGraph("A")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chained delta status = %d: %s", resp.StatusCode, body)
	}
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("post-chained-delta clean = %q", got)
	}
}

// TestDeltaCanaryRejectsCycle feeds ?delta=1 a delta that would
// introduce a taxonomy cycle: the copy-on-write apply succeeds, but
// strict integrity verify must reject the candidate generation with
// 409 before it ever serves.
func TestDeltaCanaryRejectsCycle(t *testing.T) {
	s := newReloadServer(t, server.Config{VerifyMode: "strict"})
	ts := httptest.NewServer(s)
	defer ts.Close()
	ops := httptest.NewServer(s.ReloadHandler(nil))
	defer ops.Close()

	bad := reloadGraph("A")
	bad.AddSubclass("city", "country")
	bad.AddSubclass("country", "city")
	resp, body := postDelta(t, ops.URL, deltaBytes(t, reloadGraph("A"), bad))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cycle delta status = %d, want 409: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "integrity self-check failed") {
		t.Fatalf("cycle delta body = %s", body)
	}
	if s.Store().Swaps() != 0 {
		t.Fatalf("rejected delta swapped in (swaps = %d)", s.Store().Swaps())
	}
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("clean after rejected delta = %q", got)
	}
}

// TestFaultDeltaStaleBase sends a delta computed against a graph the
// server is not serving: refused 409 by the base-fingerprint check
// without perturbing the serving generation.
func TestFaultDeltaStaleBase(t *testing.T) {
	s := newReloadServer(t, server.Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	ops := httptest.NewServer(s.ReloadHandler(nil))
	defer ops.Close()

	startGen := s.Store().Generation()
	resp, body := postDelta(t, ops.URL, deltaBytes(t, reloadGraph("B"), reloadGraph("A")))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-base delta status = %d, want 409: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "base") {
		t.Fatalf("stale-base body = %s", body)
	}
	if got := s.Store().Generation(); got != startGen || s.Store().Swaps() != 0 {
		t.Fatalf("stale-base delta moved generation %d -> %d (swaps %d)",
			startGen, got, s.Store().Swaps())
	}
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("clean after stale-base delta = %q", got)
	}
}

// TestFaultDeltaCorrupt truncates and bit-flips a valid delta stream:
// both must answer 400 without touching the serving graph.
func TestFaultDeltaCorrupt(t *testing.T) {
	s := newReloadServer(t, server.Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	ops := httptest.NewServer(s.ReloadHandler(nil))
	defer ops.Close()

	good := deltaBytes(t, reloadGraph("A"), reloadGraph("B"))
	truncated := good[:len(good)/2]
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40

	for name, corrupt := range map[string][]byte{
		"truncated": truncated,
		"bit-flip":  flipped,
		"garbage":   []byte("not a delta"),
	} {
		resp, body := postDelta(t, ops.URL, corrupt)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s delta status = %d, want 400: %s", name, resp.StatusCode, body)
		}
	}
	if s.Store().Swaps() != 0 {
		t.Fatalf("corrupt delta swapped in (swaps = %d)", s.Store().Swaps())
	}
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("clean after corrupt deltas = %q", got)
	}
}

// TestReloadUnderLoadMixedDelta interleaves full reloads and chained
// delta applies while concurrent /clean requests stream: every row
// must repair off one coherent generation (suffixes agree), exactly
// like the full-reload-only drill. The chaos lane runs this with
// -race -count=3.
func TestReloadUnderLoadMixedDelta(t *testing.T) {
	s := newReloadServer(t, server.Config{MaxConcurrent: 64})
	ts := httptest.NewServer(s)
	defer ts.Close()

	dAB := kb.Diff(reloadGraph("A"), reloadGraph("B"))
	dBA := kb.Diff(reloadGraph("B"), reloadGraph("A"))

	const rows = 200
	var in strings.Builder
	in.WriteString("Name,City,Country\n")
	for i := 0; i < rows; i++ {
		in.WriteString("Alice,ParisX,EuroX\n")
	}
	csv := in.String()

	done := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		cur := "A"
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%5 == 4 {
				// A content-identical full reload: the next delta still
				// applies because the base fingerprint is unchanged.
				s.ReloadKB(reloadGraph(cur), 0)
				continue
			}
			d := dAB
			next := "B"
			if cur == "B" {
				d, next = dBA, "A"
			}
			if _, _, err := s.StageReloadDelta(d); err != nil {
				t.Errorf("delta %s->%s: %v", cur, next, err)
				return
			}
			cur = next
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(csv))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("/clean status = %d: %s", resp.StatusCode, body)
				return
			}
			lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
			if len(lines) != rows+1 {
				t.Errorf("got %d output lines, want %d", len(lines), rows+1)
				return
			}
			for i, line := range lines[1:] {
				f := strings.Split(line, ",")
				if len(f) != 3 {
					t.Errorf("row %d malformed: %q", i, line)
					return
				}
				city, country := f[1], f[2]
				if !strings.HasPrefix(city, "Paris") || !strings.HasPrefix(country, "Euro") {
					t.Errorf("row %d: unexpected repair (%q, %q)", i, city, country)
					return
				}
				if city[len("Paris"):] != country[len("Euro"):] {
					t.Errorf("row %d: mixed-generation repair (%q, %q)", i, city, country)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(done)
	swapper.Wait()
	if s.Store().Swaps() == 0 {
		t.Fatal("no swap happened during the run")
	}
}
