package server_test

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"detective/internal/dataset"
	"detective/internal/faultinject"
	"detective/internal/server"
)

func newFaultServer(t *testing.T, cfg server.Config) (*httptest.Server, *server.Server) {
	t.Helper()
	ex := dataset.NewPaperExample()
	s, err := server.NewWithConfig(ex.Rules, ex.KB, ex.Schema, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s
}

// TestFaultServerPanicQuarantine: one poisoned row panics deep inside
// the similarity kernels; the request still returns 200 with every
// other row cleaned, and the trailers carry the quarantine count.
func TestFaultServerPanicQuarantine(t *testing.T) {
	ts, _ := newFaultServer(t, server.Config{})
	poison := "POISON-NAME-HTTP1"
	defer faultinject.PanicOnValue(poison)()

	in := "Name,DOB,Country,Prize,Institution,City\n" +
		"Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,Israel Institute of Technology,Karcag\n" +
		poison + ",1900-01-01,Nowhere,No Prize,No Institution,Nowhere City\n"
	resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body:\n%s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("output has %d lines, want 3:\n%s", len(lines), body)
	}
	if !strings.Contains(lines[1], "Haifa") {
		t.Errorf("healthy row not cleaned: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], poison+",") {
		t.Errorf("poisoned row not passed through: %q", lines[2])
	}
	// Trailers are only available after the body has been consumed.
	if got := resp.Trailer.Get(server.TrailerQuarantined); got != "1" {
		t.Errorf("trailer %s = %q, want 1", server.TrailerQuarantined, got)
	}
	if got := resp.Trailer.Get(server.TrailerRows); got != "2" {
		t.Errorf("trailer %s = %q, want 2", server.TrailerRows, got)
	}
}

// TestFaultServerLoadShed: with MaxConcurrent=1, a second cleaning
// request arriving while one is in flight is shed with 429 +
// Retry-After; the in-flight request still completes.
func TestFaultServerLoadShed(t *testing.T) {
	ts, _ := newFaultServer(t, server.Config{MaxConcurrent: 1, RequestTimeout: 30 * time.Second})

	pr, pw := io.Pipe()
	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/clean", "text/csv", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("in-flight request: status %d", resp.StatusCode)
			}
		}
		firstDone <- err
	}()
	// A pipe write only completes once the handler is consuming the
	// body — i.e. once the request holds the concurrency slot.
	if _, err := pw.Write([]byte("Name,DOB,Country,Prize,Institution,City\n")); err != nil {
		t.Fatal(err)
	}

	// The first request holds the semaphore while blocked on its open
	// body; keep probing until the shed path answers 429.
	deadline := time.Now().Add(5 * time.Second)
	shed := false
	for time.Now().Before(deadline) {
		resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(dirtyCSV))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if ra := resp.Header.Get("Retry-After"); ra == "" {
				t.Error("429 without Retry-After")
			}
			shed = true
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("probe status = %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !shed {
		t.Fatal("never observed a 429 while a request was in flight")
	}

	// Unblock the in-flight request; it must complete normally.
	if _, err := pw.Write([]byte("Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,Israel Institute of Technology,Karcag\n")); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}

	// Capacity is released afterwards.
	resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(dirtyCSV))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed status = %d", resp.StatusCode)
	}
}

// TestFaultServerStreamsBeforeEOF proves /clean does not materialize
// the input: cleaned rows arrive at the client while the request body
// is still open — impossible if the server buffered the whole table.
func TestFaultServerStreamsBeforeEOF(t *testing.T) {
	ts, _ := newFaultServer(t, server.Config{})

	const rows = 200 // > the stream's flush interval
	pr, pw := io.Pipe()
	writeErr := make(chan error, 1)
	go func() {
		defer pw.Close()
		if _, err := io.WriteString(pw, "Name,DOB,Country,Prize,Institution,City\n"); err != nil {
			writeErr <- err
			return
		}
		for i := 0; i < rows; i++ {
			row := fmt.Sprintf("Avram Hershko,1937-12-31,Israel,Albert Lasker Award for Medicine,Israel Institute of Technology,Karcag%d\n", i)
			if _, err := io.WriteString(pw, row); err != nil {
				writeErr <- err
				return
			}
		}
		// Keep the body open until the main goroutine has proven it
		// already received output.
		writeErr <- nil
		time.Sleep(100 * time.Millisecond)
	}()

	req, err := http.NewRequest("POST", ts.URL+"/clean", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Read the first output line while the body pipe is still open.
	br := bufio.NewReader(resp.Body)
	header, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading streamed header: %v", err)
	}
	if !strings.HasPrefix(header, "Name,") {
		t.Fatalf("first streamed line = %q", header)
	}
	if err := <-writeErr; err != nil {
		t.Fatalf("writing request body: %v", err)
	}
	// Drain the rest and check the row count trailer.
	n := 0
	var readErr error
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err != io.EOF || line != "" {
				readErr = fmt.Errorf("after %d rows (last %q): %w", n, line, err)
			}
			break
		}
		n++
	}
	if n != rows {
		t.Fatalf("streamed %d rows, want %d (read error: %v, trailer rows %q)",
			n, rows, readErr, resp.Trailer.Get(server.TrailerRows))
	}
	if got := resp.Trailer.Get(server.TrailerRows); got != fmt.Sprint(rows) {
		t.Errorf("trailer rows = %q, want %d", got, rows)
	}
}

// TestFaultServerClientCancel: a client that cancels mid-upload must
// not wedge the server or leak its concurrency slot.
func TestFaultServerClientCancel(t *testing.T) {
	ts, _ := newFaultServer(t, server.Config{MaxConcurrent: 1})

	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/clean", pr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write([]byte("Name,DOB,Country,Prize,Institution,City\n")); err != nil {
		t.Fatal(err)
	}
	cancel()
	pw.CloseWithError(context.Canceled)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request did not finish on the client")
	}

	// The server stays healthy and the single slot is free again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(dirtyCSV))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after cancel = %d", resp.StatusCode)
	}
}

// TestFaultServerDeadline: a trickling client cannot hold a cleaning
// request past the per-request deadline; the handler stops between
// rows and finishes the response.
func TestFaultServerDeadline(t *testing.T) {
	ts, _ := newFaultServer(t, server.Config{RequestTimeout: 300 * time.Millisecond})

	pr, pw := io.Pipe()
	stop := make(chan struct{})
	go func() {
		// Bounded trickler: far outlives the 300ms deadline but always
		// ends, so the server can finish draining the request body.
		defer pw.Close()
		io.WriteString(pw, "Name,DOB,Country,Prize,Institution,City\n")
		for i := 0; i < 60; i++ {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			if _, err := io.WriteString(pw,
				fmt.Sprintf("Name %d,1900-01-01,Nowhere,No Prize,None,Nowhere\n", i)); err != nil {
				return
			}
		}
	}()
	defer close(stop)

	start := time.Now()
	resp, err := http.Post(ts.URL+"/clean", "text/csv", pr)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline-bound request took %v", elapsed)
	}

	// The server is still healthy afterwards.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after deadline = %d", hresp.StatusCode)
	}
}

// TestFaultServerBodyTooLarge: both endpoints answer 413 (not 400)
// when the body exceeds the configured cap.
func TestFaultServerBodyTooLarge(t *testing.T) {
	ts, _ := newFaultServer(t, server.Config{MaxBodyBytes: 512})
	var big strings.Builder
	big.WriteString("Name,DOB,Country,Prize,Institution,City\n")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&big, "Name %d,1900-01-01,Nowhere,No Prize,None,Nowhere\n", i)
	}
	for _, ep := range []string{"/clean", "/explain"} {
		resp, err := http.Post(ts.URL+ep, "text/csv", strings.NewReader(big.String()))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status = %d, want 413 (body %s)", ep, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: no JSON error envelope: %s", ep, body)
		}
	}
}

// TestFaultServerReadyz: readiness flips independently of liveness.
func TestFaultServerReadyz(t *testing.T) {
	ts, s := newFaultServer(t, server.Config{})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", got)
	}
	s.SetReady(false)
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", got)
	}
	s.SetReady(true)
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("re-readied readyz = %d, want 200", got)
	}
}

// TestFaultServerExplainQuarantine: the buffered endpoint quarantines
// poisoned rows too, flagging them in the JSON.
func TestFaultServerExplainQuarantine(t *testing.T) {
	ts, _ := newFaultServer(t, server.Config{})
	poison := "POISON-NAME-EXPL"
	defer faultinject.PanicOnValue(poison)()

	in := "Name,DOB,Country,Prize,Institution,City\n" +
		poison + ",1900-01-01,Nowhere,No Prize,No Institution,Nowhere City\n"
	resp, err := http.Post(ts.URL+"/explain", "text/csv", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d:\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"quarantined": true`) {
		t.Fatalf("quarantine flag missing:\n%s", body)
	}
}
