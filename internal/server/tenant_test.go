package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"detective/internal/dataset"
	"detective/internal/kb"
	"detective/internal/server"
)

// fakeResolver serves every configured name from one shared paper-
// example server and counts pin releases, standing in for the real
// registry so mux behavior is tested in isolation.
type fakeResolver struct {
	srv      *server.Server
	names    []string
	releases int
}

func newFakeResolver(t *testing.T, names ...string) *fakeResolver {
	t.Helper()
	ex := dataset.NewPaperExample()
	s, err := server.New(ex.Rules, ex.KB, ex.Schema)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeResolver{srv: s, names: names}
}

func (f *fakeResolver) Tenant(name string) (*server.Server, func(), error) {
	for _, n := range f.names {
		if n == name {
			return f.srv, func() { f.releases++ }, nil
		}
	}
	return nil, nil, server.ErrUnknownTenant
}

func (f *fakeResolver) TenantNames() []string { return f.names }

func (f *fakeResolver) TenantLoader(name string) func() (*kb.Graph, error) {
	return func() (*kb.Graph, error) {
		return dataset.NewPaperExample().KB, nil
	}
}

type errEnvelope struct {
	Error struct {
		Status  int    `json:"status"`
		Message string `json:"message"`
	} `json:"error"`
}

// decodeErr asserts the response is the JSON error envelope with the
// expected status in both the HTTP header and the body.
func decodeErr(t *testing.T, resp *http.Response, wantStatus int) errEnvelope {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want %d; body: %s", resp.StatusCode, wantStatus, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var env errEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("body is not the JSON envelope: %v", err)
	}
	if env.Error.Status != wantStatus {
		t.Fatalf("envelope status = %d, want %d", env.Error.Status, wantStatus)
	}
	return env
}

func TestTenantMuxRouting(t *testing.T) {
	f := newFakeResolver(t, "alpha", "beta")
	ts := httptest.NewServer(server.NewTenantMux(f, nil))
	defer ts.Close()

	// /healthz is tenant-independent.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// /v1 lists tenants.
	resp, err = http.Get(ts.URL + "/v1")
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		Tenants []string `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(idx.Tenants) != 2 || idx.Tenants[0] != "alpha" {
		t.Fatalf("index = %v", idx.Tenants)
	}

	// A tenant-scoped clean works and the pin is released.
	resp, err = http.Post(ts.URL+"/v1/alpha/clean?marked=1", "text/csv", strings.NewReader(dirtyCSV))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Haifa+") {
		t.Fatalf("clean via tenant path: %d\n%s", resp.StatusCode, body)
	}
	if f.releases != 1 {
		t.Fatalf("releases = %d, want 1", f.releases)
	}

	// Tenant-scoped stats resolves the same underlying server.
	resp, err = http.Get(ts.URL + "/v1/beta/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant stats = %d", resp.StatusCode)
	}
	if f.releases != 2 {
		t.Fatalf("releases = %d, want 2", f.releases)
	}
}

func TestTenantMuxJSON404(t *testing.T) {
	f := newFakeResolver(t, "alpha")
	ts := httptest.NewServer(server.NewTenantMux(f, nil))
	defer ts.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Unknown top-level route.
	env := decodeErr(t, get("/nope"), http.StatusNotFound)
	if !strings.Contains(env.Error.Message, "/nope") {
		t.Fatalf("message = %q", env.Error.Message)
	}
	// Unknown tenant.
	env = decodeErr(t, get("/v1/ghost/clean"), http.StatusNotFound)
	if !strings.Contains(env.Error.Message, "ghost") {
		t.Fatalf("message = %q", env.Error.Message)
	}
	// Empty tenant segment.
	decodeErr(t, get("/v1//clean"), http.StatusNotFound)
	// Wrong method on the index.
	resp, err := http.Post(ts.URL+"/v1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeErr(t, resp, http.StatusMethodNotAllowed)
	// Unknown route *inside* a tenant: delegated to the tenant server,
	// whose ServeMux 404 must come back as JSON too.
	decodeErr(t, get("/v1/alpha/bogus"), http.StatusNotFound)

	// Lifecycle endpoints are not exposed on the public mux: /reload
	// under a tenant falls through to the tenant's own mux, which has
	// a /reload route only when configured with one — the public
	// paper-example server has none, so JSON 404.
	resp, err = http.Post(ts.URL+"/v1/alpha/rollback", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeErr(t, resp, http.StatusNotFound)
}

func TestSingleTenantJSON404(t *testing.T) {
	// The JSON envelope rewrite also covers the single-tenant server's
	// built-in ServeMux responses.
	ts, _ := newTestServer(t)

	resp, err := http.Get(ts.URL + "/no/such/route")
	if err != nil {
		t.Fatal(err)
	}
	decodeErr(t, resp, http.StatusNotFound)

	// Method mismatch: GET on the POST-only /clean. The 405 must be
	// JSON and preserve the Allow information in the message.
	resp, err = http.Get(ts.URL + "/clean")
	if err != nil {
		t.Fatal(err)
	}
	env := decodeErr(t, resp, http.StatusMethodNotAllowed)
	if !strings.Contains(env.Error.Message, "POST") {
		t.Fatalf("405 message should name the allowed method: %q", env.Error.Message)
	}
}

func TestTenantAdminMux(t *testing.T) {
	f := newFakeResolver(t, "alpha")
	ts := httptest.NewServer(server.NewTenantAdminMux(f, nil))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/alpha/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin reload = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "generation") {
		t.Fatalf("reload response: %s", body)
	}

	// GET on the admin reload endpoint is a JSON 405.
	resp, err = http.Get(ts.URL + "/v1/alpha/reload")
	if err != nil {
		t.Fatal(err)
	}
	decodeErr(t, resp, http.StatusMethodNotAllowed)

	// Unknown tenant on admin routes is still a JSON 404.
	resp, err = http.Post(ts.URL+"/v1/ghost/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	decodeErr(t, resp, http.StatusNotFound)
}
