package server_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"detective/internal/faultinject"
	"detective/internal/kb"
	"detective/internal/server"
)

// canaryBadGraph builds a candidate that looks fine structurally but
// poisons serving: it adds "Bob" as a person, so client rows naming
// Bob suddenly match rule evidence and push their Country cell into
// the similarity kernel — where a fault-injection hook panics on the
// poison marker. On the live graph the same rows are inert (no Bob,
// no evidence match, the poisoned cell is never examined).
func canaryBadGraph() *kb.Graph {
	g := reloadGraph("B")
	g.AddType("Bob", "person")
	g.AddTriple("Bob", "livesIn", "ParisB")
	g.AddTriple("Bob", "citizenOf", "EuroB")
	return g
}

// postReload POSTs to a reload handler serving candidate g and returns
// the status code and body.
func postReload(t *testing.T, s *server.Server, g *kb.Graph) (int, string) {
	t.Helper()
	h := httptest.NewServer(s.ReloadHandler(func() (*kb.Graph, error) { return g, nil }))
	defer h.Close()
	resp, err := http.Post(h.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestCanaryRejectsStrictVerifyFailure: in strict mode a structurally
// suspect candidate (taxonomy cycle) is rejected with 409 before any
// swap, and the live graph keeps serving.
func TestCanaryRejectsStrictVerifyFailure(t *testing.T) {
	s := newReloadServer(t, server.Config{VerifyMode: "strict"})
	ts := httptest.NewServer(s)
	defer ts.Close()

	bad := reloadGraph("B")
	bad.AddSubclass("city", "country")
	bad.AddSubclass("country", "city")

	status, body := postReload(t, s, bad)
	if status != http.StatusConflict {
		t.Fatalf("/reload status = %d: %s", status, body)
	}
	if !strings.Contains(body, "integrity self-check failed") {
		t.Fatalf("rejection body = %s", body)
	}
	if s.Store().Swaps() != 0 {
		t.Fatalf("rejected candidate still swapped (swaps = %d)", s.Store().Swaps())
	}
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("clean after rejected reload = %q", got)
	}
}

// TestCanaryWarnModePromotesSuspectGraph: the same suspect candidate
// is promoted in warn mode (the default) — findings are logged, not
// fatal — so operators can opt into strictness per deployment.
func TestCanaryWarnModePromotesSuspectGraph(t *testing.T) {
	s := newReloadServer(t, server.Config{VerifyMode: "warn"})
	ts := httptest.NewServer(s)
	defer ts.Close()

	bad := reloadGraph("B")
	bad.AddSubclass("city", "country")
	bad.AddSubclass("country", "city")

	status, body := postReload(t, s, bad)
	if status != http.StatusOK {
		t.Fatalf("/reload status = %d: %s", status, body)
	}
	var rr struct {
		Canary *server.CanaryReport `json:"canary"`
	}
	if err := json.Unmarshal([]byte(body), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Canary == nil || !rr.Canary.Promoted || rr.Canary.VerifyErrors == 0 {
		t.Fatalf("canary report = %+v, want promoted with verify errors", rr.Canary)
	}
	if got := cleanOne(t, ts.URL); got != "Alice,ParisB,EuroB" {
		t.Fatalf("clean after warn-mode reload = %q", got)
	}
}

// TestFaultCanaryShadowReplayRejectsBadCandidate is the pre-promote
// half of the self-healing loop: rows that served fine on the live
// graph are replayed against the candidate; because the candidate
// turns them into quarantines (via the injected similarity fault), the
// reload answers 409 and the serving graph never changes — clients
// see nothing.
func TestFaultCanaryShadowReplayRejectsBadCandidate(t *testing.T) {
	poison := "POISON-KB-CANARY-1"
	defer faultinject.PanicOnValue(poison)()

	s := newReloadServer(t, server.Config{
		RecorderSampleEvery: 1, // record every row for the replay
		MemoDisabled:        true,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Serve rows that are inert on the live graph: "Bob" matches no
	// evidence, so the poisoned Country cell is never evaluated.
	var in strings.Builder
	in.WriteString("Name,City,Country\n")
	for i := 0; i < 16; i++ {
		in.WriteString("Bob,ParisX," + poison + "\n")
	}
	resp, err := http.Post(ts.URL+"/clean", "text/csv", strings.NewReader(in.String()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/clean status = %d: %s", resp.StatusCode, body)
	}

	status, rbody := postReload(t, s, canaryBadGraph())
	if status != http.StatusConflict {
		t.Fatalf("/reload status = %d: %s", status, rbody)
	}
	if !strings.Contains(rbody, "shadow replay") {
		t.Fatalf("rejection body = %s", rbody)
	}
	if s.Store().Swaps() != 0 {
		t.Fatalf("bad candidate promoted (swaps = %d)", s.Store().Swaps())
	}
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("clean after rejected reload = %q", got)
	}
}

// TestFaultCanaryWatchdogAutoRollback is the post-promote half: with
// the shadow replay disabled, the bad candidate is promoted, live
// traffic starts quarantining, the watchdog detects the bad-row-rate
// regression and rolls the generation back automatically — while every
// client request, including the quarantined ones, still answers 200.
func TestFaultCanaryWatchdogAutoRollback(t *testing.T) {
	poison := "POISON-KB-CANARY-2"
	defer faultinject.PanicOnValue(poison)()

	s := newReloadServer(t, server.Config{
		MemoDisabled:       true,
		CanaryRows:         -1, // skip the replay: let the bad graph through
		CanaryWatch:        5 * time.Second,
		CanaryWatchMinRows: 8,
		MaxConcurrent:      16,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Healthy baseline traffic on the live graph.
	for i := 0; i < 8; i++ {
		if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
			t.Fatalf("baseline clean = %q", got)
		}
	}

	gen, rep, err := s.StageReloadKB(canaryBadGraph(), 0)
	if err != nil || !rep.Promoted {
		t.Fatalf("StageReloadKB = (%d, %+v, %v), want promotion", gen, rep, err)
	}

	// Concurrent clients now hit the bad generation: their Bob rows
	// match evidence and quarantine on the poisoned Country cell. Every
	// request must still answer 200 with the original row echoed.
	row := "Bob,ParisX," + poison
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed []string
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				resp, err := http.Post(ts.URL+"/clean", "text/csv",
					strings.NewReader("Name,City,Country\n"+row+"\n"))
				if err != nil {
					mu.Lock()
					failed = append(failed, err.Error())
					mu.Unlock()
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
				if resp.StatusCode != http.StatusOK {
					mu.Lock()
					failed = append(failed, resp.Status+": "+string(body))
					mu.Unlock()
					return
				}
				// Quarantined on the bad graph (original echoed) or fully
				// served after the rollback — never an error, never junk.
				if got := lines[len(lines)-1]; got != row && !strings.HasPrefix(got, "Bob,Paris") {
					mu.Lock()
					failed = append(failed, "bad row: "+got)
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(failed) > 0 {
		t.Fatalf("client requests failed during the incident: %v", failed)
	}

	// The watchdog must notice the regression and roll back.
	deadline := time.Now().Add(10 * time.Second)
	for s.Store().Rollbacks() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never rolled back (gen=%d stats=%+v)",
				s.Store().Generation(), s.Store().History())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if s.Store().Generation() == gen {
		t.Fatal("rollback did not change the served generation")
	}
	// Healed: the original graph serves full repairs again.
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("clean after auto-rollback = %q", got)
	}
}

// TestRollbackHandler: POST /rollback answers 409 with nothing
// retained, then republishes the displaced generation after a reload.
func TestRollbackHandler(t *testing.T) {
	s := newReloadServer(t, server.Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	h := httptest.NewServer(s.RollbackHandler())
	defer h.Close()

	resp, err := http.Post(h.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("empty-ring rollback status = %d: %s", resp.StatusCode, body)
	}

	s.ReloadKB(reloadGraph("B"), 0)
	if got := cleanOne(t, ts.URL); got != "Alice,ParisB,EuroB" {
		t.Fatalf("post-reload clean = %q", got)
	}

	resp, err = http.Post(h.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("rollback status = %d: %s", resp.StatusCode, b)
	}
	var rr struct {
		Generation int64        `json:"generation"`
		Rollbacks  int64        `json:"rollbacks"`
		History    []kb.GenInfo `json:"history"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Rollbacks != 1 || len(rr.History) == 0 {
		t.Fatalf("rollback response = %+v", rr)
	}
	if got := cleanOne(t, ts.URL); got != "Alice,ParisA,EuroA" {
		t.Fatalf("clean after rollback = %q", got)
	}

	// GET is rejected.
	gr, err := http.Get(h.URL)
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /rollback status = %d", gr.StatusCode)
	}
}
