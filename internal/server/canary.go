package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"detective/internal/kb"
	"detective/internal/kb/verify"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/telemetry"
)

// ErrCanaryRejected wraps every pre-promote rejection of a candidate
// graph — a failed integrity self-check in strict mode, or a shadow
// replay whose bad-row or divergence rate breached the gate. The
// serving graph is untouched in either case.
var ErrCanaryRejected = errors.New("canary rejected")

// CanaryReport describes one staged reload: the integrity self-check
// summary and the shadow-replay comparison that justified promoting or
// rejecting the candidate.
type CanaryReport struct {
	// Verify summarizes the candidate's integrity self-check ("" when
	// the check is off).
	Verify string `json:"verify,omitempty"`
	// VerifyErrors/VerifyWarnings are the self-check finding counts.
	VerifyErrors   int `json:"verifyErrors,omitempty"`
	VerifyWarnings int `json:"verifyWarnings,omitempty"`
	// ReplayedRows is how many recorded rows the shadow replay pushed
	// through scratch engines on the live and candidate graphs.
	ReplayedRows int `json:"replayedRows"`
	// LiveBadRate/CandidateBadRate are the fraction of replayed rows
	// that quarantined or exhausted the step budget on each graph.
	LiveBadRate      float64 `json:"liveBadRate"`
	CandidateBadRate float64 `json:"candidateBadRate"`
	// DivergenceRate is the fraction of replayed rows whose candidate
	// output differed from the live output.
	DivergenceRate float64 `json:"divergenceRate"`
	// Promoted reports whether the candidate was swapped in.
	Promoted bool `json:"promoted"`
	// Reason explains a rejection; empty on promotion.
	Reason string `json:"reason,omitempty"`
}

// StageReloadKB is the canary counterpart of ReloadKB: the candidate
// graph must pass the integrity self-check (Config.VerifyMode) and a
// shadow replay of recently served rows before it is promoted. The
// replay runs on scratch engines with private telemetry, so serving
// metrics see nothing; the serving engine keeps answering requests on
// the live graph throughout. On promotion the displaced graph joins
// the retention ring for rollback, and — when Config.CanaryWatch is
// set — a watchdog observes the first rows served by the new
// generation and rolls back automatically if their bad-row rate
// breaches the gate. A rejected candidate returns an error wrapping
// ErrCanaryRejected and leaves everything untouched.
func (s *Server) StageReloadKB(g *kb.Graph, loadTime time.Duration) (int64, *CanaryReport, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.stageLocked(g, loadTime)
}

// StageReloadDelta is StageReloadKB for an incremental DKBD delta: the
// delta is applied copy-on-write against the currently served graph —
// untouched span-arena pages and pair-table shards are shared, only
// touched buckets are rewritten — and the resulting candidate
// generation runs the exact same canary pipeline (integrity
// self-check, shadow replay, watchdog) before promotion. A delta whose
// base fingerprint does not match the serving graph returns
// kb.ErrDeltaBaseMismatch without perturbing anything.
func (s *Server) StageReloadDelta(d *kb.Delta) (int64, *CanaryReport, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	start := time.Now()
	g, err := s.store.Graph().ApplyDelta(d)
	if err != nil {
		s.log.Error("kb delta apply failed; keeping current graph", "error", err)
		return 0, nil, err
	}
	applyTime := time.Since(start)
	gen, rep, err := s.stageLocked(g, applyTime)
	if err != nil {
		return gen, rep, err
	}
	s.deltaAppliedTotal.Inc()
	s.deltaTriplesTotal.Add(int64(d.TriplesTouched()))
	s.deltaApplySeconds.Set(applyTime.Seconds())
	s.log.Info("kb delta promoted",
		"generation", gen,
		"ops", d.Ops(),
		"triples_touched", d.TriplesTouched(),
		"apply_seconds", applyTime.Seconds())
	return gen, rep, nil
}

// stageLocked is the canary pipeline body shared by StageReloadKB and
// StageReloadDelta; the caller holds reloadMu.
func (s *Server) stageLocked(g *kb.Graph, loadTime time.Duration) (int64, *CanaryReport, error) {
	s.canaryStagedTotal.Inc()
	rep := &CanaryReport{}

	var vr *verify.Report
	if s.verifyMode != verify.ModeOff {
		vr = verify.Check(g, verify.Options{})
		rep.Verify = vr.Summary()
		rep.VerifyErrors = vr.Errors
		rep.VerifyWarnings = vr.Warnings
		if s.verifyMode.Reject(vr) {
			rep.Reason = "integrity self-check failed: " + vr.Summary()
			s.canaryRejectedTotal.Inc()
			s.log.Error("kb canary rejected candidate", "reason", rep.Reason)
			return 0, rep, fmt.Errorf("%w: %s", ErrCanaryRejected, rep.Reason)
		}
		if vr.Errors > 0 || vr.Warnings > 0 {
			s.log.Warn("kb candidate integrity findings",
				"summary", vr.Summary(),
				"errors", vr.Errors,
				"warnings", vr.Warnings,
				"suspect_nodes", len(vr.SuspectNodes()))
		}
	}

	if err := s.shadowReplay(g, rep); err != nil {
		rep.Reason = err.Error()
		s.canaryRejectedTotal.Inc()
		s.log.Error("kb canary rejected candidate", "reason", rep.Reason)
		return 0, rep, fmt.Errorf("%w: %s", ErrCanaryRejected, rep.Reason)
	}

	// Capture the pre-swap bad-row rate for the watchdog before the new
	// generation starts taking traffic.
	base := s.engine.Stats()
	old := s.store.Swap(g)
	gen := s.store.Generation()
	rep.Promoted = true
	s.reloadTotal.Inc()
	if loadTime > 0 {
		s.loadSeconds.Set(loadTime.Seconds())
	}
	s.engine.Warm()
	s.log.Info("kb canary promoted",
		"generation", gen,
		"nodes", g.NumNodes(),
		"triples", g.NumTriples(),
		"old_generation", old.Generation(),
		"replayed_rows", rep.ReplayedRows,
		"candidate_bad_rate", rep.CandidateBadRate,
		"live_bad_rate", rep.LiveBadRate,
		"divergence_rate", rep.DivergenceRate,
		"load_seconds", loadTime.Seconds())

	// Promotion refreshes the ensemble's two feedback loops: the
	// dirty-KB suspicion signal for the newly served graph, and the
	// per-engine reliability factors accumulated since the last swap.
	s.applySuspicion(g, vr)
	s.engine.RefreshEnsembleReliability()

	if s.cfg.CanaryWatch > 0 {
		go s.watchCanary(gen, base)
	}
	return gen, rep, nil
}

// scratchEngine builds a throwaway replay engine on g: no memo (every
// replayed row must actually repair), no latency sampling, and a
// private telemetry registry so the serving metrics are unaffected.
func (s *Server) scratchEngine(g *kb.Graph) (*repair.Engine, error) {
	return repair.NewEngineStore(s.rules, kb.NewStore(g), s.schema, repair.Options{
		MemoDisabled:         true,
		TelemetrySampleEvery: -1,
		PrivateTelemetry:     true,
	})
}

// shadowReplay replays the recorded ring of recent input rows through
// scratch engines on the live and candidate graphs and applies the
// canary gates. A nil return means the candidate may be promoted.
func (s *Server) shadowReplay(g *kb.Graph, rep *CanaryReport) error {
	if s.recorder == nil || s.cfg.CanaryRows < 0 {
		return nil
	}
	rows := s.recorder.Snapshot()
	if max := s.cfg.CanaryRows; max > 0 && len(rows) > max {
		rows = rows[len(rows)-max:]
	}
	arity := s.schema.Arity()
	n := 0
	for _, r := range rows {
		if len(r) == arity {
			rows[n] = r
			n++
		}
	}
	rows = rows[:n]
	if len(rows) == 0 {
		return nil
	}

	live, err := s.scratchEngine(s.store.Graph())
	if err != nil {
		return fmt.Errorf("building live replay engine: %v", err)
	}
	cand, err := s.scratchEngine(g)
	if err != nil {
		return fmt.Errorf("building candidate replay engine: %v", err)
	}
	liveOut := &relation.Tuple{Values: make([]string, arity), Marked: make([]bool, arity)}
	candOut := &relation.Tuple{Values: make([]string, arity), Marked: make([]bool, arity)}
	var liveBad, candBad, diverged int
	for _, rec := range rows {
		lo, _ := live.RepairRow(liveOut, rec)
		co, _ := cand.RepairRow(candOut, rec)
		if lo != repair.RowRepaired {
			liveBad++
		}
		if co != repair.RowRepaired {
			candBad++
		}
		if !candOut.EqualMarked(liveOut) {
			diverged++
		}
	}
	total := float64(len(rows))
	rep.ReplayedRows = len(rows)
	rep.LiveBadRate = float64(liveBad) / total
	rep.CandidateBadRate = float64(candBad) / total
	rep.DivergenceRate = float64(diverged) / total

	if rep.CandidateBadRate > rep.LiveBadRate+s.cfg.CanaryMaxBadDelta {
		return fmt.Errorf("shadow replay: candidate bad-row rate %.3f exceeds live %.3f by more than %.3f (%d rows)",
			rep.CandidateBadRate, rep.LiveBadRate, s.cfg.CanaryMaxBadDelta, len(rows))
	}
	if d := s.cfg.CanaryMaxDivergence; d > 0 && rep.DivergenceRate > d {
		return fmt.Errorf("shadow replay: divergence rate %.3f exceeds %.3f (%d rows)",
			rep.DivergenceRate, d, len(rows))
	}
	return nil
}

// watchCanary observes the first rows served by generation gen: if
// their bad-row rate exceeds the pre-swap lifetime rate by the canary
// delta, the generation is rolled back. The generation check makes the
// watchdog self-cancelling — a newer reload or a manual rollback ends
// it silently.
func (s *Server) watchCanary(gen int64, base repair.Stats) {
	preTotal := base.Repaired + base.Quarantined + base.BudgetExhausted
	preBad := base.Quarantined + base.BudgetExhausted
	preRate := 0.0
	if preTotal > 0 {
		preRate = float64(preBad) / float64(preTotal)
	}
	deadline := time.Now().Add(s.cfg.CanaryWatch)
	tick := s.cfg.CanaryWatch / 100
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	for time.Now().Before(deadline) {
		time.Sleep(tick)
		if s.store.Generation() != gen {
			return // superseded or already rolled back
		}
		cur := s.engine.Stats()
		total := (cur.Repaired + cur.Quarantined + cur.BudgetExhausted) - preTotal
		bad := (cur.Quarantined + cur.BudgetExhausted) - preBad
		if total < int64(s.cfg.CanaryWatchMinRows) {
			continue
		}
		rate := float64(bad) / float64(total)
		if rate > preRate+s.cfg.CanaryMaxBadDelta {
			s.log.Error("kb canary watchdog: bad-row rate regressed, rolling back",
				"generation", gen,
				"rows", total,
				"bad_rate", rate,
				"baseline_rate", preRate)
			if _, err := s.rollback(gen, "canary-watchdog"); err != nil {
				s.log.Error("kb canary watchdog rollback failed", "error", err)
				return
			}
			s.canaryRollbackTotal.Inc()
			return
		}
	}
	s.log.Info("kb canary watchdog: generation held", "generation", gen)
}

// RollbackKB republishes the most recently retained graph, displacing
// the currently served one. It returns the generation now being
// served, or an error (kb.ErrNoRetained) when the retention ring is
// empty.
func (s *Server) RollbackKB(reason string) (int64, error) {
	return s.rollback(0, reason)
}

// rollback is RollbackKB with an optional generation guard: when
// expectGen is non-zero the rollback only proceeds while that
// generation is still being served, so a watchdog firing late cannot
// displace an unrelated newer graph.
func (s *Server) rollback(expectGen int64, reason string) (int64, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if expectGen != 0 && s.store.Generation() != expectGen {
		return 0, fmt.Errorf("generation %d no longer served", expectGen)
	}
	now, dropped, err := s.store.Rollback()
	if err != nil {
		return 0, err
	}
	s.rollbackTotal.Inc()
	// The retained graph is already frozen and warm indexes keyed by
	// its generation may still exist, but re-warm off the request path
	// in case they were evicted while it sat in the ring.
	s.engine.Warm()
	s.refreshSuspicion(now)
	s.log.Warn("kb rolled back",
		"generation", now.Generation(),
		"dropped_generation", dropped.Generation(),
		"reason", reason)
	return now.Generation(), nil
}

// rollbackResponse is the JSON shape of POST /rollback.
type rollbackResponse struct {
	Generation int64        `json:"generation"`
	Rollbacks  int64        `json:"rollbacks"`
	History    []kb.GenInfo `json:"history"`
}

// RollbackHandler returns the admin POST /rollback handler for the ops
// mux: it republishes the most recently retained generation, answering
// 409 when nothing is retained.
func (s *Server) RollbackHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		gen, err := s.RollbackKB("manual: POST /rollback")
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, kb.ErrNoRetained) {
				status = http.StatusConflict
			}
			s.log.Error("kb rollback failed",
				"error", err,
				"request_id", telemetry.RequestID(r.Context()))
			writeError(w, status, "rollback failed: %v", err)
			return
		}
		writeJSON(w, rollbackResponse{
			Generation: gen,
			Rollbacks:  s.store.Rollbacks(),
			History:    s.store.History(),
		})
	})
}
