// Package server exposes a loaded cleaning engine over HTTP — the
// deployment shape a downstream user would actually run: load the KB
// and the verified rule set once, then clean tables by POSTing CSV.
//
//	POST /clean          CSV in, cleaned CSV out, streamed row by row
//	                     (?marked=1 appends '+' to positively proven
//	                     cells); per-request stats arrive as trailers
//	POST /explain        CSV in, JSON out: per-tuple repairs, marks and
//	                     rule applications with their KB witnesses
//	GET  /rules          the loaded rule set in the rule text format
//	GET  /stats          KB, rule-set and engine statistics as JSON
//	GET  /healthz        liveness (the process is up)
//	GET  /readyz         readiness (warmed and not draining)
//
// The handler is safe for concurrent requests: the engine is read-only
// after construction and is pre-warmed at server creation. Requests
// run under a per-request deadline, cleaning endpoints behind a
// concurrency limit that sheds overload with 429 + Retry-After, and
// every per-tuple failure (panic, step-budget exhaustion) is
// quarantined by the engine instead of failing the request. Errors are
// JSON envelopes: {"error":{"status":...,"message":...}}. With
// Config.StreamWorkers > 1, each /clean request's rows are repaired by
// the chunked parallel pipeline with ordered reassembly — same output
// bytes, more cores per stream.
//
// Every route is instrumented through internal/telemetry: per-route
// request counters and latency histograms, an in-flight gauge,
// shed/413/timeout counters, and catalog + signature-index cache
// exports, all scrapeable as Prometheus text on the ops listener
// (cmd/detectived -ops-addr). Each request carries a span whose ID is
// echoed as X-Request-ID and attached to the structured logs.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"detective/internal/kb"
	"detective/internal/kb/verify"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/repair/ensemble"
	"detective/internal/rules"
	"detective/internal/telemetry"
)

// Trailer names carrying per-request cleaning stats on POST /clean.
// The X-Clean-Confidence-* trailers appear only on ensemble requests
// (?ensemble=1 against an ensemble-enabled server).
const (
	TrailerRows            = "X-Clean-Rows"
	TrailerQuarantined     = "X-Clean-Quarantined"
	TrailerBudgetExhausted = "X-Clean-Budget-Exhausted"
	TrailerConfidenceMean  = "X-Clean-Confidence-Mean"
	TrailerConfidenceMin   = "X-Clean-Confidence-Min"
	TrailerConfidenceBelow = "X-Clean-Confidence-Below"
)

// Config tunes the server's fault-tolerance envelope. The zero value
// picks production defaults.
type Config struct {
	// RequestTimeout is the per-request deadline. /clean enforces it
	// through the request context (checked between streamed rows);
	// buffered endpoints sit behind http.TimeoutHandler. Default 30s.
	RequestTimeout time.Duration
	// MaxConcurrent bounds concurrently served cleaning requests
	// (/clean and /explain); excess load is shed with 429 and a
	// Retry-After header. Default 2×GOMAXPROCS.
	MaxConcurrent int
	// MaxBodyBytes caps the request body; larger bodies get 413.
	// Default 64 MiB.
	MaxBodyBytes int64
	// Logger receives structured request and lifecycle logs (access
	// logs at Debug, slow requests at Warn). Nil uses slog.Default().
	Logger *slog.Logger
	// Metrics is the registry the server's HTTP metrics and cache
	// exports register into. Nil uses telemetry.Default().
	Metrics *telemetry.Registry
	// SlowRequestThreshold is the latency above which a request is
	// logged as slow (sampled, with its request ID). Default 5s.
	SlowRequestThreshold time.Duration
	// StreamWorkers fans each POST /clean request's repair work out
	// over this many pipeline workers (repair.Options.Workers). 0 or 1
	// keeps the serial per-request path — the right default when the
	// server is already saturated by MaxConcurrent parallel requests;
	// raise it when individual large streams need to finish faster
	// than one core allows. Output is byte-identical either way.
	StreamWorkers int
	// StreamChunkSize is the rows-per-chunk of the streaming pipeline
	// when StreamWorkers > 1. 0 picks repair.DefaultStreamChunkSize.
	StreamChunkSize int
	// MemoBytes is the byte budget of the engine's global
	// cross-request repair memo (repair.Options.MemoBytes): repeated
	// tuples and hot cell values across requests and connections are
	// answered from cache, byte-identical to a fresh repair, and hot
	// KB reloads invalidate it by generation. 0 picks
	// repair.DefaultMemoBytes; negative disables it, as does
	// MemoDisabled.
	MemoBytes int64
	// MemoDisabled turns the repair memo off.
	MemoDisabled bool
	// VerifyMode is the KB integrity self-check mode applied to every
	// candidate graph handed to StageReloadKB: "off", "warn" (default —
	// findings are logged, the reload proceeds) or "strict" (a report
	// with errors rejects the candidate before it is ever served).
	VerifyMode string
	// RetainGenerations is how many previously-served graphs the store
	// keeps for rollback (POST /rollback and the canary watchdog).
	// 0 picks 2; negative disables retention.
	RetainGenerations int
	// RecorderRows and RecorderSampleEvery size the ring buffer of
	// recent input rows the canary replays against a candidate graph:
	// up to RecorderRows rows (0 picks 1024), sampling one row in every
	// RecorderSampleEvery (0 picks 16). RecorderSampleEvery < 0
	// disables recording — and with it the shadow replay.
	RecorderRows        int
	RecorderSampleEvery int
	// CanaryRows caps how many recorded rows the staged reload replays
	// through scratch engines on the live and candidate graphs before
	// promoting. 0 replays the whole ring; negative skips the replay.
	CanaryRows int
	// CanaryMaxBadDelta is the gate on the shadow replay: the
	// candidate's bad-row rate (quarantined or step-budget-exhausted)
	// may exceed the live graph's by at most this fraction, else the
	// candidate is rejected. 0 picks 0.10.
	CanaryMaxBadDelta float64
	// CanaryMaxDivergence, when > 0, additionally rejects a candidate
	// whose replay output differs from the live graph's on more than
	// this fraction of rows. Divergence is expected when the KB content
	// legitimately changed, so it is reported but not gated by default.
	CanaryMaxDivergence float64
	// CanaryWatch enables the post-promote watchdog for this long: if
	// the live bad-row rate over the rows served on the new generation
	// exceeds the pre-swap rate by CanaryMaxBadDelta (after
	// CanaryWatchMinRows rows), the server auto-rolls back to the
	// previous retained generation. 0 disables the watchdog.
	CanaryWatch time.Duration
	// CanaryWatchMinRows is the minimum number of post-swap rows before
	// the watchdog may roll back. 0 picks 32.
	CanaryWatchMinRows int
	// Breaker configures the engine's repair circuit breaker
	// (repair.BreakerOptions); the zero value leaves it disabled.
	Breaker repair.BreakerOptions
	// Ensemble configures the engine's multi-engine repair vote
	// (repair.Options.Ensemble). When Enabled, POST /clean?ensemble=1
	// repairs each row by the weighted vote over the detective engine
	// and the configured auxiliary proposers; the response carries a
	// trailing "confidence" CSV column and X-Clean-Confidence-*
	// trailers. Plain /clean requests keep the single-engine path and
	// its exact output bytes. The KB integrity self-check
	// (VerifyMode != "off") additionally feeds the vote's suspicion
	// signal on every (re)load, and each promoted canary refreshes the
	// per-engine reliability weights.
	Ensemble repair.EnsembleOptions
	// MetricLabels is attached to every KB-lifecycle and cache series
	// this server registers (reload/rollback/canary counters, load
	// gauge, generation, catalog caches). Multi-tenant deployments set
	// {tenant="..."} so each tenant's server owns its own series in the
	// shared registry; single-tenant servers leave it nil and keep the
	// historical unlabeled names.
	MetricLabels []telemetry.Label
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.Default()
	}
	if c.SlowRequestThreshold <= 0 {
		c.SlowRequestThreshold = 5 * time.Second
	}
	if c.RetainGenerations == 0 {
		c.RetainGenerations = 2
	}
	if c.RecorderRows <= 0 {
		c.RecorderRows = 1024
	}
	if c.RecorderSampleEvery == 0 {
		c.RecorderSampleEvery = 16
	}
	if c.CanaryMaxBadDelta <= 0 {
		c.CanaryMaxBadDelta = 0.10
	}
	if c.CanaryWatchMinRows <= 0 {
		c.CanaryWatchMinRows = 32
	}
	return c
}

// Server handles cleaning requests for one (rules, KB, schema) triple.
type Server struct {
	engine *repair.Engine
	store  *kb.Store
	rules  []*rules.DR
	schema *relation.Schema
	mux    *http.ServeMux
	cfg    Config
	log    *slog.Logger
	sem    chan struct{} // cleaning-concurrency semaphore
	ready  atomic.Bool   // readiness: warmed and not draining

	// reloadMu serializes ReloadKB: one load-and-swap at a time, so an
	// operator hammering POST /reload cannot interleave half-built
	// graphs. Cleaning requests never take it — they pin a graph per
	// tuple and are oblivious to swaps.
	reloadMu sync.Mutex

	// Overload/limit counters, exported through the telemetry registry
	// next to the middleware's per-route metrics.
	shedTotal     *telemetry.Counter // 429: concurrency limit
	tooLargeTotal *telemetry.Counter // 413: body over MaxBodyBytes
	timeoutTotal  *telemetry.Counter // request deadline expiries

	reloadTotal *telemetry.Counter // completed KB hot-swaps
	loadSeconds *telemetry.Gauge   // wall time of the last KB load

	// Incremental (DKBD) delta reload accounting: promoted delta
	// applies, the triple ops they carried, and the wall time of the
	// most recent copy-on-write apply.
	deltaAppliedTotal *telemetry.Counter
	deltaTriplesTotal *telemetry.Counter
	deltaApplySeconds *telemetry.Gauge

	// Self-healing lifecycle (canary.go): the integrity self-check mode
	// for candidate graphs, the sampled ring of recent input rows the
	// canary replays, and the rollback/canary accounting.
	verifyMode          verify.Mode
	recorder            *repair.RowRecorder
	canaryStagedTotal   *telemetry.Counter // StageReloadKB candidates considered
	canaryRejectedTotal *telemetry.Counter // candidates rejected pre-promote
	canaryRollbackTotal *telemetry.Counter // watchdog-initiated rollbacks
	rollbackTotal       *telemetry.Counter // all rollbacks (manual + auto)
}

// New builds the server with default Config and pre-warms the
// engine's indexes.
func New(drs []*rules.DR, g *kb.Graph, schema *relation.Schema) (*Server, error) {
	return NewWithConfig(drs, g, schema, Config{})
}

// NewWithConfig is New with explicit fault-tolerance settings.
func NewWithConfig(drs []*rules.DR, g *kb.Graph, schema *relation.Schema, cfg Config) (*Server, error) {
	return NewWithStore(drs, kb.NewStore(g), schema, cfg)
}

// NewWithStore builds the server on a caller-owned kb.Store, the
// hot-swap shape: the caller (cmd/detectived's SIGHUP handler, tests)
// can later publish a replacement graph through ReloadKB or the store
// itself while requests keep streaming.
func NewWithStore(drs []*rules.DR, store *kb.Store, schema *relation.Schema, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	mode, err := verify.ParseMode(cfg.VerifyMode)
	if err != nil {
		return nil, err
	}
	var recorder *repair.RowRecorder
	if cfg.RecorderSampleEvery > 0 {
		recorder = repair.NewRowRecorder(cfg.RecorderRows, cfg.RecorderSampleEvery)
	}
	if cfg.RetainGenerations > 0 {
		store.SetRetain(cfg.RetainGenerations)
	}
	e, err := repair.NewEngineStore(drs, store, schema, repair.Options{
		Workers:      cfg.StreamWorkers,
		ChunkSize:    cfg.StreamChunkSize,
		MemoBytes:    cfg.MemoBytes,
		MemoDisabled: cfg.MemoDisabled,
		Breaker:      cfg.Breaker,
		Recorder:     recorder,
		Ensemble:     cfg.Ensemble,
	})
	if err != nil {
		return nil, err
	}
	e.Warm()
	s := &Server{
		engine:     e,
		store:      store,
		rules:      drs,
		schema:     schema,
		mux:        http.NewServeMux(),
		cfg:        cfg,
		log:        cfg.Logger,
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		verifyMode: mode,
		recorder:   recorder,
	}

	reg := cfg.Metrics
	labels := cfg.MetricLabels
	s.shedTotal = reg.Counter("detective_http_shed_total",
		"Cleaning requests shed with 429 because the concurrency limit was reached.", labels...)
	s.tooLargeTotal = reg.Counter("detective_http_body_too_large_total",
		"Requests rejected with 413 because the body exceeded the limit.", labels...)
	s.timeoutTotal = reg.Counter("detective_http_timeout_total",
		"Requests whose per-request deadline expired.", labels...)
	s.reloadTotal = reg.Counter("detective_kb_reload_total",
		"Knowledge-base hot-swaps completed (ReloadKB / POST /reload / SIGHUP).", labels...)
	s.loadSeconds = reg.Gauge("detective_kb_load_seconds",
		"Wall-clock seconds the most recent KB load (parse or snapshot decode) took.", labels...)
	s.deltaAppliedTotal = reg.Counter("detective_kb_delta_applied",
		"Incremental DKBD deltas applied copy-on-write and promoted.", labels...)
	s.deltaTriplesTotal = reg.Counter("detective_kb_delta_triples",
		"Triple add/remove operations carried by promoted deltas.", labels...)
	s.deltaApplySeconds = reg.Gauge("detective_kb_delta_apply_seconds",
		"Wall-clock seconds the most recent copy-on-write delta apply took.", labels...)
	s.canaryStagedTotal = reg.Counter("detective_kb_canary_staged_total",
		"Candidate graphs considered by the staged (canary) reload.", labels...)
	s.canaryRejectedTotal = reg.Counter("detective_kb_canary_rejected_total",
		"Candidate graphs rejected before promotion (integrity self-check or shadow-replay gate).", labels...)
	s.canaryRollbackTotal = reg.Counter("detective_kb_canary_rollback_total",
		"Automatic rollbacks initiated by the post-promote canary watchdog.", labels...)
	s.rollbackTotal = reg.Counter("detective_kb_rollback_total",
		"Rollbacks to a retained knowledge-base generation (manual and automatic).", labels...)
	reg.GaugeFunc("detective_kb_generation",
		"Generation of the currently served knowledge-base graph.",
		func() float64 { return float64(store.Generation()) }, labels...)
	registerCacheMetrics(reg, e.Cat, labels)

	httpm := telemetry.NewHTTPMetrics(reg, "detective")
	httpm.SetLogger(s.log)
	httpm.SetSlowLogger(&telemetry.SlowLogger{
		Logger:    s.log,
		Threshold: cfg.SlowRequestThreshold,
		Every:     1,
	})
	// Every route sits behind the middleware: per-route request
	// counters by status, latency histograms, the in-flight gauge, a
	// root span whose ID is echoed as X-Request-ID, and Debug access
	// logs carrying that ID.
	handle := func(pattern, route string, h http.Handler) {
		s.mux.Handle(pattern, httpm.Handler(route, h))
	}
	// /clean streams its response, so it cannot sit behind
	// http.TimeoutHandler (which buffers the whole body to be able to
	// replace it); its deadline is enforced through the request
	// context instead, checked between rows.
	handle("POST /clean", "/clean", s.limit(http.HandlerFunc(s.handleClean)))
	handle("POST /explain", "/explain", s.limit(s.timeout(http.HandlerFunc(s.handleExplain))))
	handle("GET /rules", "/rules", s.timeout(http.HandlerFunc(s.handleRules)))
	handle("GET /stats", "/stats", s.timeout(http.HandlerFunc(s.handleStats)))
	handle("GET /healthz", "/healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}))
	handle("GET /readyz", "/readyz", http.HandlerFunc(s.handleReadyz))
	// Seed the ensemble's dirty-KB suspicion signal from the graph the
	// server starts on; reloads and canary promotions refresh it.
	s.refreshSuspicion(store.Graph())
	s.ready.Store(true)
	return s, nil
}

// refreshSuspicion recomputes the ensemble vote's dirty-KB suspicion
// signal for g by running the KB integrity self-check and feeding the
// names flagged by its content checks (taxonomy cycles, degree
// outliers, duplicate labels) into the engine. KB-backed proposals of
// those values are down-weighted in every subsequent vote. No-op when
// ensemble mode is off; with the self-check off the signal is cleared
// (it described a graph no longer served).
func (s *Server) refreshSuspicion(g *kb.Graph) {
	if !s.engine.EnsembleEnabled() {
		return
	}
	if s.verifyMode == verify.ModeOff {
		s.engine.SetEnsembleSuspicion(nil)
		return
	}
	s.applySuspicion(g, verify.Check(g, verify.Options{}))
}

// applySuspicion publishes the suspicion signal derived from an
// already-computed verify report (nil clears it).
func (s *Server) applySuspicion(g *kb.Graph, vr *verify.Report) {
	if !s.engine.EnsembleEnabled() {
		return
	}
	var names []string
	if vr != nil {
		names = vr.SuspectNames(g)
	}
	if len(names) == 0 {
		s.engine.SetEnsembleSuspicion(nil)
		return
	}
	s.log.Info("ensemble suspicion refreshed", "suspect_names", len(names))
	s.engine.SetEnsembleSuspicion(ensemble.NewSuspicion(names, s.cfg.Ensemble.SuspicionPenalty))
}

// registerCacheMetrics exports the catalog's two caching layers as
// scrape-time series: the cross-tuple candidate cache in front
// (rules.Catalog.CacheStats) and the per-class signature indexes
// behind it (rules.Catalog.IndexStats). Func collectors replace on
// re-registration, so the newest server's catalog wins the series.
func registerCacheMetrics(reg *telemetry.Registry, cat *rules.Catalog, labels []telemetry.Label) {
	reg.CounterFunc("detective_catalog_cache_hits_total",
		"Candidate-cache lookups answered from the cache.",
		func() float64 { h, _, _ := cat.CacheStats(); return float64(h) }, labels...)
	reg.CounterFunc("detective_catalog_cache_misses_total",
		"Candidate-cache lookups that fell through to the signature indexes.",
		func() float64 { _, m, _ := cat.CacheStats(); return float64(m) }, labels...)
	reg.GaugeFunc("detective_catalog_cache_size",
		"Candidate lists currently cached.",
		func() float64 { _, _, n := cat.CacheStats(); return float64(n) }, labels...)
	reg.CounterFunc("detective_similarity_index_hits_total",
		"Signature-index lookups that found at least one candidate.",
		func() float64 { h, _, _ := cat.IndexStats(); return float64(h) }, labels...)
	reg.CounterFunc("detective_similarity_index_misses_total",
		"Signature-index lookups that found no candidate.",
		func() float64 { _, m, _ := cat.IndexStats(); return float64(m) }, labels...)
	reg.GaugeFunc("detective_similarity_index_size",
		"Instance names indexed across all per-class signature indexes.",
		func() float64 { _, _, n := cat.IndexStats(); return float64(n) }, labels...)
}

// ServeHTTP implements http.Handler. The writer wrapper converts the
// mux's built-in plain-text 404/405 responses (unknown routes, wrong
// methods) into the server's JSON error envelope, so every error the
// process emits has the same machine-readable shape.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(&jsonErrorWriter{ResponseWriter: w}, r)
}

// SetReady flips the /readyz answer. A draining process (SIGTERM
// received, connections still completing) sets it to false so load
// balancers stop routing new work while /healthz stays green.
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// limit sheds load beyond the configured concurrency: requests that
// would exceed it are rejected immediately with 429 + Retry-After
// instead of queueing behind work the client may no longer want.
func (s *Server) limit(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			h.ServeHTTP(w, r)
		default:
			s.shedTotal.Inc()
			s.log.Warn("load shed",
				slog.String("request_id", telemetry.RequestID(r.Context())),
				slog.Int("max_concurrent", cap(s.sem)))
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests,
				"server at capacity (%d concurrent cleaning requests)", cap(s.sem))
		}
	})
}

// timeout wraps buffered handlers in http.TimeoutHandler so a wedged
// request cannot hold its connection past the deadline. The inner
// handler tallies deadline expiries when it observes them (the
// TimeoutHandler has already answered 503 by then).
func (s *Server) timeout(h http.Handler) http.Handler {
	body, _ := json.Marshal(errorEnvelope{errorBody{
		Status:  http.StatusServiceUnavailable,
		Message: "request deadline exceeded",
	}})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r)
		if errors.Is(r.Context().Err(), context.DeadlineExceeded) {
			s.timeoutTotal.Inc()
		}
	})
	return http.TimeoutHandler(inner, s.cfg.RequestTimeout, string(body))
}

// requestContext applies the per-request deadline to streaming
// handlers, which enforce it between rows.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// readTable parses the request body as CSV against the server schema.
func (s *Server) readTable(w http.ResponseWriter, r *http.Request) (*relation.Table, bool) {
	tb, err := relation.ReadCSV(s.schema.Name, http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.tooLargeTotal.Inc()
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return nil, false
		}
		writeError(w, http.StatusBadRequest, "bad CSV: %v", err)
		return nil, false
	}
	if tb.Schema.Arity() != s.schema.Arity() {
		writeError(w, http.StatusBadRequest, "schema mismatch: got %d columns, want %d (%v)",
			tb.Schema.Arity(), s.schema.Arity(), s.schema.Attrs)
		return nil, false
	}
	for i, a := range s.schema.Attrs {
		if tb.Schema.Attrs[i] != a {
			writeError(w, http.StatusBadRequest, "schema mismatch at column %d: got %q, want %q",
				i, tb.Schema.Attrs[i], a)
			return nil, false
		}
	}
	// Rebind to the server's schema so rule column lookups are valid.
	tb.Schema = s.schema
	return tb, true
}

// streamHoldback is how much cleaned CSV the response holds back
// before committing the 200: a failure within the first window still
// gets a real status code and JSON error envelope, while anything
// larger streams through with bounded memory.
const streamHoldback = 4 << 10

// streamWriter adapts the ResponseWriter for the streaming cleaner.
// Output is buffered until streamHoldback bytes have accumulated;
// beyond that the response is committed — Content-Type set, 200 sent
// — and every further write is flushed straight through to the client
// so partial results are delivered, and server memory stays bounded,
// regardless of input size. Until commit, the handler keeps full
// control of the status line.
type streamWriter struct {
	w         http.ResponseWriter
	rc        *http.ResponseController
	hold      bytes.Buffer
	committed bool
}

func (sw *streamWriter) Write(p []byte) (int, error) {
	if !sw.committed {
		sw.hold.Write(p)
		if sw.hold.Len() < streamHoldback {
			return len(p), nil
		}
		if err := sw.commit(); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	n, err := sw.w.Write(p)
	if err == nil {
		// Best effort: not every ResponseWriter can flush.
		_ = sw.rc.Flush()
	}
	return n, err
}

// commit sends the 200, drains the holdback buffer to the client and
// switches to pass-through mode.
func (sw *streamWriter) commit() error {
	if sw.committed {
		return nil
	}
	sw.committed = true
	sw.w.Header().Set("Content-Type", "text/csv")
	sw.w.WriteHeader(http.StatusOK)
	if sw.hold.Len() > 0 {
		if _, err := sw.w.Write(sw.hold.Bytes()); err != nil {
			return err
		}
		sw.hold.Reset()
	}
	_ = sw.rc.Flush()
	return nil
}

func (s *Server) handleClean(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	marked := r.URL.Query().Get("marked") != ""
	ens := r.URL.Query().Get("ensemble") != ""
	if ens && !s.engine.EnsembleEnabled() {
		writeError(w, http.StatusBadRequest, "ensemble mode is not enabled on this server")
		return
	}

	// Trailers must be declared before the body starts; they carry the
	// per-request stats that are only known once the stream ends.
	trailer := TrailerRows + ", " + TrailerQuarantined + ", " + TrailerBudgetExhausted
	if ens {
		trailer += ", " + TrailerConfidenceMean + ", " + TrailerConfidenceMin + ", " + TrailerConfidenceBelow
	}
	w.Header().Set("Trailer", trailer)
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	rc := http.NewResponseController(w)
	// /clean interleaves reads of the request body with response
	// writes; on HTTP/1 Go otherwise stops reading the body at the
	// first response write, truncating large uploads mid-stream.
	// Best effort: transports that cannot do full duplex still work
	// for bodies that fit their buffers.
	_ = rc.EnableFullDuplex()
	sw := &streamWriter{w: w, rc: rc}

	var res repair.StreamResult
	var err error
	if ens {
		res, err = s.engine.CleanCSVStreamEnsembleContext(ctx, body, sw, marked)
	} else {
		res, err = s.engine.CleanCSVStreamContext(ctx, body, sw, marked)
	}
	// Trailer values may only be set once the status line is out;
	// setting them earlier would emit them as plain headers too.
	setTrailers := func() {
		w.Header().Set(TrailerRows, strconv.Itoa(res.Rows))
		w.Header().Set(TrailerQuarantined, strconv.Itoa(res.Quarantined))
		w.Header().Set(TrailerBudgetExhausted, strconv.Itoa(res.BudgetExhausted))
		if ens {
			mean := 1.0
			if res.Rows > 0 {
				mean = res.ConfidenceSum / float64(res.Rows)
			}
			w.Header().Set(TrailerConfidenceMean, strconv.FormatFloat(mean, 'f', 4, 64))
			w.Header().Set(TrailerConfidenceMin, strconv.FormatFloat(res.MinConfidence, 'f', 4, 64))
			w.Header().Set(TrailerConfidenceBelow, strconv.Itoa(res.BelowThreshold))
		}
	}
	if err == nil {
		// Success: commit whatever is still held back (a small or even
		// zero-row result fits entirely in the holdback window).
		_ = sw.commit()
		setTrailers()
		return
	}
	if sw.committed {
		setTrailers()
		// Mid-stream failure: the 200 and a partial body are already
		// on the wire. The stream has flushed everything cleaned so
		// far (the trailers say how much); terminating the body is all
		// that is left to do.
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeoutTotal.Inc()
		}
		s.log.Warn("clean stream ended early",
			slog.String("request_id", telemetry.RequestID(ctx)),
			slog.Int("rows", res.Rows),
			slog.Any("error", err))
		return
	}
	switch {
	case errors.Is(err, context.Canceled):
		// Client went away; nobody is listening for a status.
	case errors.Is(err, context.DeadlineExceeded):
		s.timeoutTotal.Inc()
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded")
	default:
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.tooLargeTotal.Inc()
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad CSV: %v", err)
	}
}

// ExplainedTuple is the JSON shape of one cleaned row.
type ExplainedTuple struct {
	Row    int             `json:"row"`
	Values []string        `json:"values"`
	Marked []bool          `json:"marked"`
	Steps  []ExplainedStep `json:"steps,omitempty"`
	// Quarantined marks a row whose repair panicked; its original
	// values are returned unchanged.
	Quarantined bool `json:"quarantined,omitempty"`
}

// ExplainedStep is the JSON shape of one rule application.
type ExplainedStep struct {
	Rule         string            `json:"rule"`
	Action       string            `json:"action"` // "positive" or "repair"
	RepairCol    string            `json:"repairCol,omitempty"`
	Old          string            `json:"old,omitempty"`
	New          string            `json:"new,omitempty"`
	Alternatives []string          `json:"alternatives,omitempty"`
	MarkCols     []string          `json:"markCols"`
	Witness      map[string]string `json:"witness,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	tb, ok := s.readTable(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	out := make([]ExplainedTuple, 0, tb.Len())
	for i, tu := range tb.Tuples {
		if ctx.Err() != nil {
			// http.TimeoutHandler has already answered; stop working.
			return
		}
		repaired, steps, quarantined := s.engine.FastRepairExplainSafe(tu)
		et := ExplainedTuple{Row: i, Values: repaired.Values, Marked: repaired.Marked, Quarantined: quarantined}
		for _, st := range steps {
			et.Steps = append(et.Steps, ExplainedStep{
				Rule:         st.Rule,
				Action:       st.Kind.String(),
				RepairCol:    st.RepairCol,
				Old:          st.Old,
				New:          st.New,
				Alternatives: st.Alternatives,
				MarkCols:     st.MarkCols,
				Witness:      st.Witness,
			})
		}
		out = append(out, et)
	}
	writeJSON(w, out)
}

func (s *Server) handleRules(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := rules.EncodeRules(&buf, s.rules); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// CacheStats is the JSON shape of one cache layer's accounting.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Size   int   `json:"size"`
}

// StatsResponse is the JSON shape of GET /stats.
type StatsResponse struct {
	Schema []string     `json:"schema"`
	Rules  int          `json:"rules"`
	KB     kb.Stats     `json:"kb"`
	Repair repair.Stats `json:"repair"`
	// KBGeneration identifies the graph currently being served;
	// KBSwaps counts hot reloads since startup. Both move together
	// when ReloadKB publishes a new graph.
	KBGeneration int64 `json:"kbGeneration"`
	KBSwaps      int64 `json:"kbSwaps"`
	// KBRollbacks counts rollbacks to a retained generation;
	// KBHistory lists the live generation followed by the retained
	// rollback candidates, newest first.
	KBRollbacks int64        `json:"kbRollbacks"`
	KBHistory   []kb.GenInfo `json:"kbHistory,omitempty"`
	// KBDeltasApplied counts promoted incremental (DKBD) delta
	// reloads, KBDeltaTriples the triple ops they carried, and
	// KBDeltaApplySeconds the wall time of the most recent
	// copy-on-write apply (0 until a delta has been applied).
	KBDeltasApplied     int64   `json:"kbDeltasApplied"`
	KBDeltaTriples      int64   `json:"kbDeltaTriples"`
	KBDeltaApplySeconds float64 `json:"kbDeltaApplySeconds"`
	// Breaker is the repair circuit breaker's state (Enabled false
	// when the breaker is not configured).
	Breaker repair.BreakerStats `json:"breaker"`
	// CandidateCache is the catalog's cross-tuple candidate cache;
	// SignatureIndex is the per-class signature indexes behind it. The
	// same numbers are exported as Prometheus series on the ops port.
	CandidateCache CacheStats `json:"candidateCache"`
	SignatureIndex CacheStats `json:"signatureIndex"`
	// Memo is the global cross-request repair memo (two tiers:
	// whole-tuple outcomes and per-cell evidence verdicts), likewise
	// mirrored as detective_memo_* Prometheus series.
	Memo repair.MemoStats `json:"memo"`
	// EnsembleReliability maps each ensemble engine to its current
	// reliability factor (omitted when ensemble mode is off).
	EnsembleReliability map[string]float64 `json:"ensembleReliability,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ch, cm, cn := s.engine.Cat.CacheStats()
	ih, im, in := s.engine.Cat.IndexStats()
	g := s.store.Graph() // pin: stats describe one coherent graph
	writeJSON(w, StatsResponse{
		Schema:              s.schema.Attrs,
		Rules:               len(s.rules),
		KB:                  g.ComputeStats(5),
		Repair:              s.engine.Stats(),
		KBGeneration:        g.Generation(),
		KBSwaps:             s.store.Swaps(),
		KBRollbacks:         s.store.Rollbacks(),
		KBHistory:           s.store.History(),
		KBDeltasApplied:     s.deltaAppliedTotal.Value(),
		KBDeltaTriples:      s.deltaTriplesTotal.Value(),
		KBDeltaApplySeconds: s.deltaApplySeconds.Value(),
		Breaker:             s.engine.BreakerStats(),
		CandidateCache:      CacheStats{Hits: ch, Misses: cm, Size: cn},
		SignatureIndex:      CacheStats{Hits: ih, Misses: im, Size: in},
		Memo:                s.engine.MemoStats(),
		EnsembleReliability: s.engine.EnsembleReliability(),
	})
}

// errorEnvelope is the structured JSON error body of every non-2xx
// response the server originates.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// writeError emits a JSON error envelope with the given status.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	body, err := json.Marshal(errorEnvelope{errorBody{Status: status, Message: fmt.Sprintf(format, args...)}})
	if err != nil {
		http.Error(w, http.StatusText(status), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeJSON encodes v to a buffer first, so an encoding failure can
// still become a real 500 instead of a truncated 200.
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}
