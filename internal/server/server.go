// Package server exposes a loaded cleaning engine over HTTP — the
// deployment shape a downstream user would actually run: load the KB
// and the verified rule set once, then clean tables by POSTing CSV.
//
//	POST /clean          CSV in, cleaned CSV out (?marked=1 appends '+'
//	                     to positively proven cells)
//	POST /explain        CSV in, JSON out: per-tuple repairs, marks and
//	                     rule applications with their KB witnesses
//	GET  /rules          the loaded rule set in the rule text format
//	GET  /stats          KB and rule-set statistics as JSON
//	GET  /healthz        liveness
//
// The handler is safe for concurrent requests: the engine is read-only
// after construction and is pre-warmed at server creation.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/repair"
	"detective/internal/rules"
)

// Server handles cleaning requests for one (rules, KB, schema) triple.
type Server struct {
	engine *repair.Engine
	kbase  *kb.Graph
	rules  []*rules.DR
	schema *relation.Schema
	mux    *http.ServeMux
}

// New builds the server and pre-warms the engine's indexes.
func New(drs []*rules.DR, g *kb.Graph, schema *relation.Schema) (*Server, error) {
	e, err := repair.NewEngine(drs, g, schema)
	if err != nil {
		return nil, err
	}
	e.Warm()
	g.Freeze()
	s := &Server{engine: e, kbase: g, rules: drs, schema: schema, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /clean", s.handleClean)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	s.mux.HandleFunc("GET /rules", s.handleRules)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// readTable parses the request body as CSV against the server schema.
func (s *Server) readTable(w http.ResponseWriter, r *http.Request) (*relation.Table, bool) {
	tb, err := relation.ReadCSV(s.schema.Name, http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, fmt.Sprintf("bad CSV: %v", err), http.StatusBadRequest)
		return nil, false
	}
	if tb.Schema.Arity() != s.schema.Arity() {
		http.Error(w, fmt.Sprintf("schema mismatch: got %d columns, want %d (%v)",
			tb.Schema.Arity(), s.schema.Arity(), s.schema.Attrs), http.StatusBadRequest)
		return nil, false
	}
	for i, a := range s.schema.Attrs {
		if tb.Schema.Attrs[i] != a {
			http.Error(w, fmt.Sprintf("schema mismatch at column %d: got %q, want %q",
				i, tb.Schema.Attrs[i], a), http.StatusBadRequest)
			return nil, false
		}
	}
	// Rebind to the server's schema so rule column lookups are valid.
	tb.Schema = s.schema
	return tb, true
}

func (s *Server) handleClean(w http.ResponseWriter, r *http.Request) {
	tb, ok := s.readTable(w, r)
	if !ok {
		return
	}
	cleaned := s.engine.RepairTableParallel(tb, 0)
	w.Header().Set("Content-Type", "text/csv")
	var err error
	if r.URL.Query().Get("marked") != "" {
		err = cleaned.WriteMarkedCSV(w)
	} else {
		err = cleaned.WriteCSV(w)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// ExplainedTuple is the JSON shape of one cleaned row.
type ExplainedTuple struct {
	Row    int               `json:"row"`
	Values []string          `json:"values"`
	Marked []bool            `json:"marked"`
	Steps  []ExplainedStep   `json:"steps,omitempty"`
}

// ExplainedStep is the JSON shape of one rule application.
type ExplainedStep struct {
	Rule         string            `json:"rule"`
	Action       string            `json:"action"` // "positive" or "repair"
	RepairCol    string            `json:"repairCol,omitempty"`
	Old          string            `json:"old,omitempty"`
	New          string            `json:"new,omitempty"`
	Alternatives []string          `json:"alternatives,omitempty"`
	MarkCols     []string          `json:"markCols"`
	Witness      map[string]string `json:"witness,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	tb, ok := s.readTable(w, r)
	if !ok {
		return
	}
	out := make([]ExplainedTuple, tb.Len())
	for i, tu := range tb.Tuples {
		repaired, steps := s.engine.FastRepairExplain(tu)
		et := ExplainedTuple{Row: i, Values: repaired.Values, Marked: repaired.Marked}
		for _, st := range steps {
			et.Steps = append(et.Steps, ExplainedStep{
				Rule:         st.Rule,
				Action:       st.Kind.String(),
				RepairCol:    st.RepairCol,
				Old:          st.Old,
				New:          st.New,
				Alternatives: st.Alternatives,
				MarkCols:     st.MarkCols,
				Witness:      st.Witness,
			})
		}
		out[i] = et
	}
	writeJSON(w, out)
}

func (s *Server) handleRules(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := rules.EncodeRules(w, s.rules); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// StatsResponse is the JSON shape of GET /stats.
type StatsResponse struct {
	Schema []string `json:"schema"`
	Rules  int      `json:"rules"`
	KB     kb.Stats `json:"kb"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, StatsResponse{
		Schema: s.schema.Attrs,
		Rules:  len(s.rules),
		KB:     s.kbase.ComputeStats(5),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
