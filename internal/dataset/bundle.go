package dataset

import (
	"math/rand"

	"detective/internal/cfd"
	"detective/internal/kb"
	"detective/internal/llunatic"
	"detective/internal/relation"
	"detective/internal/rules"
)

// KBProfile controls how a knowledge base is materialized from a
// synthetic world. The paper evaluates the same datasets against Yago
// and DBpedia, which "share general information" but differ in
// taxonomic structure and coverage (§V-A); the two profiles reproduce
// exactly those axes.
type KBProfile struct {
	Name string
	// RichTaxonomy adds subclass hierarchies (Yago's distinguishing
	// trait: "richer type/relationship hierarchies").
	RichTaxonomy bool
	// EntityCoverage is the probability that a world entity appears in
	// the KB at all.
	EntityCoverage float64
	// FactCoverage is the probability that an individual fact
	// (relationship/property edge) of a covered entity is present.
	FactCoverage float64
	// DropRelations lists relationship names entirely absent from this
	// KB build (e.g. a shortcut relation one ontology materializes and
	// the other does not).
	DropRelations map[string]bool
	// Seed decorrelates the coverage coin flips of different builds.
	Seed int64
}

// covered flips the entity-coverage coin.
func (p KBProfile) coveredEntity(rng *rand.Rand) bool {
	return rng.Float64() < p.EntityCoverage
}

// keepFact flips the fact-coverage coin for relation rel.
func (p KBProfile) keepFact(rng *rand.Rand, rel string) bool {
	if p.DropRelations[rel] {
		return false
	}
	return rng.Float64() < p.FactCoverage
}

// Dataset bundles everything an experiment needs about one relation:
// ground truth, the key attribute (the paper evaluates tuples whose
// key attribute resolves in the KB), the detective rules, the KATARA
// table pattern, the ICs for the baselines, and the semantic-error
// model for noise injection.
type Dataset struct {
	Name    string
	Schema  *relation.Schema
	Truth   *relation.Table
	KeyAttr string
	KeyType string // KB class the key attribute maps to
	// ScopeByKey restricts evaluation to tuples whose key attribute
	// resolves in the KB (the paper does this for Nobel and UIS but
	// scores WebTables over all tuples against a manual ground truth).
	ScopeByKey bool

	Rules        []*rules.DR
	Pattern      rules.Graph
	FDs          []llunatic.FD
	CFDTemplates []cfd.Template

	// Semantic returns the semantically-related wrong value for a cell
	// (e.g. the birth city in place of the work city), or ok=false if
	// the column has no semantic confusion — the injector then falls
	// back to a typo.
	Semantic func(row int, col string, rng *rand.Rand) (string, bool)
}

// Bundle is a dataset together with its two KB builds.
type Bundle struct {
	Dataset
	Yago    *kb.Graph
	DBpedia *kb.Graph
}

// KB returns the build for the given KB name ("Yago" or "DBpedia").
func (b *Bundle) KB(name string) *kb.Graph {
	if name == "DBpedia" {
		return b.DBpedia
	}
	return b.Yago
}

// KBNames lists the two KB builds in presentation order.
var KBNames = []string{"Yago", "DBpedia"}
