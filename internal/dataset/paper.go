// Package dataset builds the synthetic worlds, relations and
// knowledge bases used throughout the reproduction: the paper's
// running example (Table I / Figures 1 and 4), and generators for the
// three evaluation datasets — Nobel, UIS and WebTables — together
// with Yago-like and DBpedia-like KB builds and the error-injection
// machinery of §V-A.
package dataset

import (
	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// PaperExample bundles the paper's running example: the Nobel relation
// of Table I (dirty, as printed), its ground truth, the KB excerpt of
// Figure 1 (extended to cover all four tuples), and the four detective
// rules of Figure 4.
type PaperExample struct {
	Schema *relation.Schema
	Dirty  *relation.Table
	Truth  *relation.Table
	KB     *kb.Graph
	Rules  []*rules.DR
}

// NewPaperExample constructs the running example. The KB is the
// Figure 1 excerpt plus the analogous facts for Marie Curie, Roald
// Hoffmann and Melvin Calvin that the worked examples of §IV rely on
// (including Calvin's two work institutions, which exercise
// multi-version repairs exactly as in Example 10).
func NewPaperExample() *PaperExample {
	schema := relation.NewSchema("Nobel", "Name", "DOB", "Country", "Prize", "Institution", "City")

	dirty := relation.NewTable(schema)
	dirty.Append("Avram Hershko", "1937-12-31", "Israel", "Albert Lasker Award for Medicine", "Israel Institute of Technology", "Karcag")
	dirty.Append("Marie Curie", "1867-11-07", "France", "Nobel Prize in Chemistry", "Paster Institute", "Paris")
	dirty.Append("Roald Hoffmann", "1937-07-18", "Ukraine", "National Medal of Science", "Cornell University", "Ithaca")
	dirty.Append("Melvin Calvin", "1911-04-08", "United States", "Nobel Prize in Chemistry", "University of Minnesota", "St. Paul")

	truth := relation.NewTable(schema)
	truth.Append("Avram Hershko", "1937-12-31", "Israel", "Nobel Prize in Chemistry", "Israel Institute of Technology", "Haifa")
	truth.Append("Marie Curie", "1867-11-07", "France", "Nobel Prize in Chemistry", "Pasteur Institute", "Paris")
	truth.Append("Roald Hoffmann", "1937-07-18", "United States", "Nobel Prize in Chemistry", "Cornell University", "Ithaca")
	truth.Append("Melvin Calvin", "1911-04-08", "United States", "Nobel Prize in Chemistry", "UC Berkeley", "Berkeley")

	return &PaperExample{
		Schema: schema,
		Dirty:  dirty,
		Truth:  truth,
		KB:     paperKB(),
		Rules:  PaperRules(),
	}
}

// paperKB builds the Figure 1 excerpt, extended with the facts about
// the other three laureates that §IV's worked examples assume.
func paperKB() *kb.Graph {
	g := kb.New()

	// Taxonomy (Yago-flavoured).
	g.AddSubclass("Nobel laureates in Chemistry", "chemist")
	g.AddSubclass("chemist", "scientist")
	g.AddSubclass("scientist", "person")
	g.AddSubclass("Chemistry awards", "award")
	g.AddSubclass("American awards", "award")

	type laureate struct {
		name, dob, birthCity, birthCountry, citizenship string
		workInsts                                       []string // each located in the matching city below
		workCities                                      []string
		gradInst                                        string
		prizes                                          []string // first is the chemistry prize
	}
	laureates := []laureate{
		{
			name: "Avram Hershko", dob: "1937-12-31",
			birthCity: "Karcag", birthCountry: "Hungary", citizenship: "Israel",
			workInsts:  []string{"Israel Institute of Technology"},
			workCities: []string{"Haifa"},
			gradInst:   "Hebrew University of Jerusalem",
			prizes:     []string{"Nobel Prize in Chemistry", "Albert Lasker Award for Medicine"},
		},
		{
			name: "Marie Curie", dob: "1867-11-07",
			birthCity: "Warsaw", birthCountry: "Poland", citizenship: "France",
			workInsts:  []string{"Pasteur Institute"},
			workCities: []string{"Paris"},
			gradInst:   "University of Paris",
			prizes:     []string{"Nobel Prize in Chemistry"},
		},
		{
			name: "Roald Hoffmann", dob: "1937-07-18",
			birthCity: "Zolochiv", birthCountry: "Ukraine", citizenship: "United States",
			workInsts:  []string{"Cornell University"},
			workCities: []string{"Ithaca"},
			gradInst:   "Harvard University",
			prizes:     []string{"Nobel Prize in Chemistry", "National Medal of Science"},
		},
		{
			// Two work institutions: the multi-version case of Example 10.
			name: "Melvin Calvin", dob: "1911-04-08",
			birthCity: "St. Paul", birthCountry: "United States", citizenship: "United States",
			workInsts:  []string{"University of Manchester", "UC Berkeley"},
			workCities: []string{"Manchester", "Berkeley"},
			gradInst:   "University of Minnesota",
			prizes:     []string{"Nobel Prize in Chemistry"},
		},
	}

	countryOfCity := map[string]string{
		"Karcag": "Hungary", "Haifa": "Israel", "Warsaw": "Poland", "Paris": "France",
		"Zolochiv": "Ukraine", "Ithaca": "United States", "St. Paul": "United States",
		"Manchester": "United Kingdom", "Berkeley": "United States",
		"Jerusalem": "Israel", "Cambridge": "United States", "Minneapolis": "United States",
	}
	cityOfInst := map[string]string{
		"Israel Institute of Technology": "Haifa",
		"Pasteur Institute":              "Paris",
		"Cornell University":             "Ithaca",
		"University of Manchester":       "Manchester",
		"UC Berkeley":                    "Berkeley",
		"Hebrew University of Jerusalem": "Jerusalem",
		"University of Paris":            "Paris",
		"Harvard University":             "Cambridge",
		"University of Minnesota":        "Minneapolis",
	}
	awardClass := map[string]string{
		"Nobel Prize in Chemistry":         "Chemistry awards",
		"Albert Lasker Award for Medicine": "American awards",
		"National Medal of Science":        "American awards",
	}

	for city, country := range countryOfCity {
		g.AddType(city, "city")
		g.AddType(country, "country")
		g.AddTriple(city, "locatedIn", country)
	}
	for inst, city := range cityOfInst {
		g.AddType(inst, "organization")
		g.AddTriple(inst, "locatedIn", city)
	}
	for prize, cls := range awardClass {
		g.AddType(prize, cls)
	}
	for _, l := range laureates {
		g.AddType(l.name, "Nobel laureates in Chemistry")
		g.AddPropertyTriple(l.name, "bornOnDate", l.dob)
		g.AddTriple(l.name, "wasBornIn", l.birthCity)
		g.AddTriple(l.name, "bornAt", l.birthCountry)
		g.AddTriple(l.name, "isCitizenOf", l.citizenship)
		for _, inst := range l.workInsts {
			g.AddTriple(l.name, "worksAt", inst)
		}
		g.AddTriple(l.name, "graduatedFrom", l.gradInst)
		for _, p := range l.prizes {
			g.AddTriple(l.name, "wonPrize", p)
		}
	}
	g.Freeze()
	return g
}

// PaperRules returns the four detective rules of Figure 4.
func PaperRules() []*rules.DR {
	nameNode := func(id string) rules.Node {
		return rules.Node{Name: id, Col: "Name", Type: "Nobel laureates in Chemistry", Sim: similarity.Eq}
	}
	instNode := func(id string) rules.Node {
		return rules.Node{Name: id, Col: "Institution", Type: "organization", Sim: similarity.EDK(2)}
	}
	cityNode := func(id string) rules.Node {
		return rules.Node{Name: id, Col: "City", Type: "city", Sim: similarity.Eq}
	}

	// ϕ1: Name + DOB as evidence; Institution is worksAt (positive)
	// vs graduatedFrom (negative).
	n1 := instNode("n1")
	phi1 := &rules.DR{
		Name: "phi1",
		Evidence: []rules.Node{
			nameNode("x1"),
			{Name: "x2", Col: "DOB", Type: kb.LiteralClass, Sim: similarity.Eq},
		},
		Pos: instNode("p1"),
		Neg: &n1,
		Edges: []rules.Edge{
			{From: "x1", Rel: "bornOnDate", To: "x2"},
			{From: "x1", Rel: "worksAt", To: "p1"},
			{From: "x1", Rel: "graduatedFrom", To: "n1"},
		},
	}

	// ϕ2: Name + Institution as evidence; City is where the
	// institution is located (positive) vs birth city (negative).
	n2 := cityNode("n2")
	phi2 := &rules.DR{
		Name:     "phi2",
		Evidence: []rules.Node{nameNode("w1"), instNode("w2")},
		Pos:      cityNode("p2"),
		Neg:      &n2,
		Edges: []rules.Edge{
			{From: "w1", Rel: "worksAt", To: "w2"},
			{From: "w2", Rel: "locatedIn", To: "p2"},
			{From: "w1", Rel: "wasBornIn", To: "n2"},
		},
	}

	// ϕ3: Name + Institution + City as evidence; Country is
	// citizenship / where the city is (positive) vs birth country
	// (negative).
	n3 := rules.Node{Name: "n3", Col: "Country", Type: "country", Sim: similarity.Eq}
	phi3 := &rules.DR{
		Name:     "phi3",
		Evidence: []rules.Node{nameNode("z1"), instNode("z2"), cityNode("z3")},
		Pos:      rules.Node{Name: "p3", Col: "Country", Type: "country", Sim: similarity.Eq},
		Neg:      &n3,
		// Note: the positive node is reached through isCitizenOf only.
		// Adding the Figure 2 edge z3 locatedIn p3 would contradict the
		// paper's Example 10, where ϕ3 marks Country = United States
		// while the (repaired) City is Manchester.
		Edges: []rules.Edge{
			{From: "z1", Rel: "worksAt", To: "z2"},
			{From: "z2", Rel: "locatedIn", To: "z3"},
			{From: "z1", Rel: "isCitizenOf", To: "p3"},
			{From: "z1", Rel: "bornAt", To: "n3"},
		},
	}

	// ϕ4: Name as evidence; Prize is a chemistry award the person won
	// (positive) vs an American award they also won (negative).
	n4 := rules.Node{Name: "n4", Col: "Prize", Type: "American awards", Sim: similarity.Eq}
	phi4 := &rules.DR{
		Name:     "phi4",
		Evidence: []rules.Node{nameNode("v1")},
		Pos:      rules.Node{Name: "p4", Col: "Prize", Type: "Chemistry awards", Sim: similarity.Eq},
		Neg:      &n4,
		Edges: []rules.Edge{
			{From: "v1", Rel: "wonPrize", To: "p4"},
			{From: "v1", Rel: "wonPrize", To: "n4"},
		},
	}

	return []*rules.DR{phi1, phi2, phi3, phi4}
}
