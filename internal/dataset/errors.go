package dataset

import (
	"math/rand"

	"detective/internal/relation"
)

// Noise is the error-injection model of §V-A: a fraction Rate of all
// data cells is corrupted; a corrupted cell receives a typo with
// probability TypoFrac and otherwise a *semantic error* — a value
// swapped in from a semantically related attribute of the same entity
// (birth city for work city, graduation institution for employer, …).
// Columns without a semantic confusion fall back to typos.
type Noise struct {
	Rate     float64
	TypoFrac float64
	// HardFrac is the fraction of typo errors that are *hard* — heavy
	// mangling (abbreviations, truncations, re-spellings) beyond any
	// similarity threshold a conservative rule would trust. The paper's
	// WebTables are "dirty originally" with exactly this kind of noise;
	// Nobel/UIS experiments keep HardFrac at 0.
	HardFrac float64
	// SwapFallback makes cells slated for a semantic error but lacking
	// a semantic alternative receive a *wrong-but-valid* value from the
	// same column of another row (misalignment/copy errors, common in
	// real Web tables) instead of falling back to a typo.
	SwapFallback bool
	Seed         int64
}

// Injected is a corrupted copy of a dataset's ground truth.
type Injected struct {
	Dirty *relation.Table
	Truth *relation.Table
	// Wrong maps corrupted cell coordinates (row, col) to the ground-
	// truth value.
	Wrong map[[2]int]string
	// Typos and Semantics count the injected error kinds.
	Typos, Semantics int
}

// Inject corrupts a copy of the dataset's truth according to spec.
func (d *Dataset) Inject(spec Noise) *Injected {
	rng := rand.New(rand.NewSource(spec.Seed))
	dirty := d.Truth.Clone()
	inj := &Injected{Dirty: dirty, Truth: d.Truth, Wrong: make(map[[2]int]string)}

	total := dirty.NumCells()
	k := int(spec.Rate*float64(total) + 0.5)
	if k > total {
		k = total
	}
	arity := d.Schema.Arity()
	for _, cell := range rng.Perm(total)[:k] {
		row, col := cell/arity, cell%arity
		truthVal := d.Truth.Tuples[row].Values[col]
		colName := d.Schema.Attrs[col]

		var wrong string
		semantic := false
		if rng.Float64() >= spec.TypoFrac {
			if d.Semantic != nil {
				if alt, ok := d.Semantic(row, colName, rng); ok && alt != truthVal {
					wrong = alt
					semantic = true
				}
			}
			if !semantic && spec.SwapFallback {
				if alt, ok := swapValue(rng, d.Truth, row, col); ok {
					wrong = alt
					semantic = true
				}
			}
		}
		if !semantic {
			if rng.Float64() < spec.HardFrac {
				wrong = Mangle(rng, truthVal)
			} else {
				wrong = Typo(rng, truthVal)
			}
		}
		if wrong == truthVal {
			continue // degenerate cell (e.g. empty value); leave clean
		}
		dirty.Tuples[row].Values[col] = wrong
		inj.Wrong[[2]int{row, col}] = truthVal
		if semantic {
			inj.Semantics++
		} else {
			inj.Typos++
		}
	}
	return inj
}

// swapValue draws a different value for column col from another row,
// trying a few times before giving up on constant columns.
func swapValue(rng *rand.Rand, truth *relation.Table, row, col int) (string, bool) {
	cur := truth.Tuples[row].Values[col]
	for i := 0; i < 8; i++ {
		other := truth.Tuples[rng.Intn(truth.Len())].Values[col]
		if other != cur {
			return other, true
		}
	}
	return "", false
}

const typoAlphabet = "abcdefghijklmnopqrstuvwxyz0123456789"

// Mangle applies five to eight random edits — an error no edit-
// distance threshold used by the rules will bridge.
func Mangle(rng *rand.Rand, s string) string {
	out := s
	for i := 0; i < 5+rng.Intn(4); i++ {
		out = Typo(rng, out)
	}
	if out == s {
		return s + "??"
	}
	return out
}

// Typo applies one or two random character edits (substitution,
// insertion, deletion) to s, always returning a value different from
// s when s is non-empty.
func Typo(rng *rand.Rand, s string) string {
	if s == "" {
		return string(typoAlphabet[rng.Intn(len(typoAlphabet))])
	}
	edits := 1 + rng.Intn(2)
	b := []byte(s)
	for e := 0; e < edits; e++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(b) == 0: // insertion
			pos := rng.Intn(len(b) + 1)
			c := typoAlphabet[rng.Intn(len(typoAlphabet))]
			b = append(b[:pos], append([]byte{c}, b[pos:]...)...)
		case op == 1: // substitution
			pos := rng.Intn(len(b))
			c := typoAlphabet[rng.Intn(len(typoAlphabet))]
			if b[pos] == c {
				c = typoAlphabet[(int(c-typoAlphabet[0])+1)%len(typoAlphabet)]
			}
			b[pos] = c
		default: // deletion
			pos := rng.Intn(len(b))
			b = append(b[:pos], b[pos+1:]...)
		}
	}
	if string(b) == s { // e.g. insertion+deletion cancelled out
		return s + string(typoAlphabet[rng.Intn(len(typoAlphabet))])
	}
	return string(b)
}
