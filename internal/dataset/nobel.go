package dataset

import (
	"math/rand"

	"detective/internal/cfd"
	"detective/internal/kb"
	"detective/internal/llunatic"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// The Nobel dataset reproduces the paper's 1,069-tuple laureate table
// (§V-A): Nobel(Name, DOB, Country, Prize, Institution, City), where
// City is the city of the institution, Country the citizenship and
// Prize the chemistry prize. The synthetic world additionally carries
// the *confusable* facts the paper's semantic errors draw from: birth
// city, birth country, graduation institution, other (non-chemistry)
// awards and death date.

type nobelLaureate struct {
	name, dob, died string
	birthCity       string
	workInsts       []string // 1–2 institutions; the first is primary
	gradInst        string
	chemPrize       string
	otherPrizes     []string
}

type nobelWorld struct {
	countries []string
	countryOf map[string]string // city -> country
	cities    []string
	instCity  map[string]string // institution -> city
	insts     []string
	chemPrz   []string
	otherPrz  []string
	laureates []nobelLaureate
}

// citizenship of a laureate is the country of the primary work city.
func (w *nobelWorld) citizenship(l nobelLaureate) string {
	return w.countryOf[w.instCity[l.workInsts[0]]]
}

func (w *nobelWorld) workCity(l nobelLaureate) string {
	return w.instCity[l.workInsts[0]]
}

func (w *nobelWorld) birthCountry(l nobelLaureate) string {
	return w.countryOf[l.birthCity]
}

// newNobelWorld generates a deterministic world with n laureates.
func newNobelWorld(seed int64, n int) *nobelWorld {
	rng := rand.New(rand.NewSource(seed))
	ng := newNameGen(rng, similarity.EDK(2).K+1)

	w := &nobelWorld{
		countryOf: make(map[string]string),
		instCity:  make(map[string]string),
	}
	for i := 0; i < 24; i++ {
		c := ng.Place(false)
		w.countries = append(w.countries, c)
		for j := 0; j < 6+rng.Intn(6); j++ {
			city := ng.Place(true)
			w.cities = append(w.cities, city)
			w.countryOf[city] = c
		}
	}
	instKinds := []string{"University", "Institute of Technology", "Research Institute", "College", "Academy of Sciences"}
	for i := 0; i < 240; i++ {
		inst := ng.Phrase(pick(rng, instKinds))
		w.insts = append(w.insts, inst)
		w.instCity[inst] = pick(rng, w.cities)
	}
	for i := 0; i < 6; i++ {
		w.chemPrz = append(w.chemPrz, ng.Phrase("Prize in Chemistry"))
	}
	for i := 0; i < 12; i++ {
		w.otherPrz = append(w.otherPrz, ng.Phrase("Award"))
	}

	for i := 0; i < n; i++ {
		l := nobelLaureate{
			name:      ng.Person(),
			dob:       randDate(rng),
			died:      randDate(rng),
			birthCity: pick(rng, w.cities),
			chemPrize: pick(rng, w.chemPrz),
			gradInst:  pick(rng, w.insts),
		}
		l.workInsts = []string{pick(rng, w.insts)}
		if rng.Float64() < 0.03 { // rare second employer: multi-version repairs
			l.workInsts = append(l.workInsts, pickOther(rng, w.insts, l.workInsts[0]))
		}
		for rng.Float64() < 0.4 {
			l.otherPrizes = append(l.otherPrizes, pick(rng, w.otherPrz))
			if len(l.otherPrizes) == 2 {
				break
			}
		}
		w.laureates = append(w.laureates, l)
	}
	return w
}

// Class and relation vocabulary of the Nobel KB builds.
const (
	clsLaureate = "Nobel laureates in Chemistry"
	clsOrg      = "organization"
	clsCity     = "city"
	clsCountry  = "country"
	clsChemAw   = "Chemistry awards"
	clsOtherAw  = "American awards"

	relWorksAt   = "worksAt"
	relGradFrom  = "graduatedFrom"
	relLocatedIn = "locatedIn"
	relWasBornIn = "wasBornIn"
	relBornAt    = "bornAt"
	relCitizenOf = "isCitizenOf"
	relLivesIn   = "livesIn"
	relWonPrize  = "wonPrize"
	relBornDate  = "bornOnDate"
	relDiedDate  = "diedOnDate"
)

// buildNobelKB materializes the world as a KB under the profile. The
// geographic/institutional backbone is complete; coverage gaps hit the
// laureates (whether a person is known at all, and which of their
// facts are recorded) — the axis that drives the recall differences
// between Yago and DBpedia in Table III.
func buildNobelKB(w *nobelWorld, p KBProfile) *kb.Graph {
	rng := rand.New(rand.NewSource(p.Seed))
	g := kb.New()
	if p.RichTaxonomy {
		g.AddSubclass(clsLaureate, "chemist")
		g.AddSubclass("chemist", "scientist")
		g.AddSubclass("scientist", "person")
		g.AddSubclass(clsCity, "location")
		g.AddSubclass(clsCountry, "location")
		g.AddSubclass(clsChemAw, "award")
		g.AddSubclass(clsOtherAw, "award")
		g.AddSubclass(clsOrg, "legal entity")
	}
	for city, country := range w.countryOf {
		g.AddType(city, clsCity)
		g.AddType(country, clsCountry)
		g.AddTriple(city, relLocatedIn, country)
	}
	for inst, city := range w.instCity {
		g.AddType(inst, clsOrg)
		g.AddTriple(inst, relLocatedIn, city)
	}
	for _, prz := range w.chemPrz {
		g.AddType(prz, clsChemAw)
	}
	for _, prz := range w.otherPrz {
		g.AddType(prz, clsOtherAw)
	}
	for _, l := range w.laureates {
		if !p.coveredEntity(rng) {
			continue
		}
		g.AddType(l.name, clsLaureate)
		if p.keepFact(rng, relBornDate) {
			g.AddPropertyTriple(l.name, relBornDate, l.dob)
		}
		if p.keepFact(rng, relDiedDate) {
			g.AddPropertyTriple(l.name, relDiedDate, l.died)
		}
		if p.keepFact(rng, relWasBornIn) {
			g.AddTriple(l.name, relWasBornIn, l.birthCity)
		}
		if p.keepFact(rng, relBornAt) {
			g.AddTriple(l.name, relBornAt, w.birthCountry(l))
		}
		if p.keepFact(rng, relCitizenOf) {
			g.AddTriple(l.name, relCitizenOf, w.citizenship(l))
		}
		if p.keepFact(rng, relLivesIn) {
			g.AddTriple(l.name, relLivesIn, w.workCity(l))
		}
		for _, inst := range l.workInsts {
			if p.keepFact(rng, relWorksAt) {
				g.AddTriple(l.name, relWorksAt, inst)
			}
		}
		if p.keepFact(rng, relGradFrom) {
			g.AddTriple(l.name, relGradFrom, l.gradInst)
		}
		if p.keepFact(rng, relWonPrize) {
			g.AddTriple(l.name, relWonPrize, l.chemPrize)
		}
		for _, prz := range l.otherPrizes {
			if p.keepFact(rng, relWonPrize) {
				g.AddTriple(l.name, relWonPrize, prz)
			}
		}
	}
	g.Freeze()
	return g
}

// NobelYagoProfile and NobelDBpediaProfile are calibrated so the
// reproduction tracks the paper's Table III shape: both KBs yield
// precision 1, Yago yields clearly higher recall and #-POS on Nobel.
func NobelYagoProfile() KBProfile {
	return KBProfile{Name: "Yago", RichTaxonomy: true, EntityCoverage: 0.95, FactCoverage: 0.93, Seed: 101}
}

func NobelDBpediaProfile() KBProfile {
	return KBProfile{Name: "DBpedia", RichTaxonomy: false, EntityCoverage: 0.86, FactCoverage: 0.82, Seed: 202}
}

// nobelRules builds the five detective rules the paper uses for Nobel
// (§V-A: "for Nobel and UIS, we generated 5 DRs for each table").
func nobelRules() []*rules.DR {
	name := func(id string) rules.Node {
		return rules.Node{Name: id, Col: "Name", Type: clsLaureate, Sim: similarity.Eq}
	}
	ed2 := similarity.EDK(2)

	instNeg := rules.Node{Name: "n", Col: "Institution", Type: clsOrg, Sim: ed2}
	rInstitution := &rules.DR{
		Name:     "nobel_institution",
		Evidence: []rules.Node{name("e1")},
		Pos:      rules.Node{Name: "p", Col: "Institution", Type: clsOrg, Sim: ed2},
		Neg:      &instNeg,
		Edges: []rules.Edge{
			{From: "e1", Rel: relWorksAt, To: "p"},
			{From: "e1", Rel: relGradFrom, To: "n"},
		},
	}

	cityNeg := rules.Node{Name: "n", Col: "City", Type: clsCity, Sim: ed2}
	rCity := &rules.DR{
		Name: "nobel_city",
		Evidence: []rules.Node{name("e1"),
			{Name: "e2", Col: "Institution", Type: clsOrg, Sim: ed2}},
		Pos: rules.Node{Name: "p", Col: "City", Type: clsCity, Sim: ed2},
		Neg: &cityNeg,
		Edges: []rules.Edge{
			{From: "e1", Rel: relWorksAt, To: "e2"},
			{From: "e2", Rel: relLocatedIn, To: "p"},
			{From: "e1", Rel: relWasBornIn, To: "n"},
		},
	}

	countryNeg := rules.Node{Name: "n", Col: "Country", Type: clsCountry, Sim: ed2}
	rCountry := &rules.DR{
		Name: "nobel_country",
		Evidence: []rules.Node{name("e1"),
			{Name: "e2", Col: "City", Type: clsCity, Sim: ed2}},
		Pos: rules.Node{Name: "p", Col: "Country", Type: clsCountry, Sim: ed2},
		Neg: &countryNeg,
		Edges: []rules.Edge{
			{From: "e1", Rel: relLivesIn, To: "e2"},
			{From: "e1", Rel: relCitizenOf, To: "p"},
			{From: "e2", Rel: relLocatedIn, To: "p"},
			{From: "e1", Rel: relBornAt, To: "n"},
		},
	}

	prizeNeg := rules.Node{Name: "n", Col: "Prize", Type: clsOtherAw, Sim: ed2}
	rPrize := &rules.DR{
		Name:     "nobel_prize",
		Evidence: []rules.Node{name("e1")},
		Pos:      rules.Node{Name: "p", Col: "Prize", Type: clsChemAw, Sim: ed2},
		Neg:      &prizeNeg,
		Edges: []rules.Edge{
			{From: "e1", Rel: relWonPrize, To: "p"},
			{From: "e1", Rel: relWonPrize, To: "n"},
		},
	}

	dobNeg := rules.Node{Name: "n", Col: "DOB", Type: kb.LiteralClass, Sim: ed2}
	rDOB := &rules.DR{
		Name:     "nobel_dob",
		Evidence: []rules.Node{name("e1")},
		Pos:      rules.Node{Name: "p", Col: "DOB", Type: kb.LiteralClass, Sim: ed2},
		Neg:      &dobNeg,
		Edges: []rules.Edge{
			{From: "e1", Rel: relBornDate, To: "p"},
			{From: "e1", Rel: relDiedDate, To: "n"},
		},
	}

	return []*rules.DR{rInstitution, rCity, rCountry, rPrize, rDOB}
}

// nobelPattern is the KATARA table pattern over the full schema
// (exact matching only).
func nobelPattern() rules.Graph {
	eq := similarity.Eq
	return rules.Graph{
		Nodes: []rules.Node{
			{Name: "v1", Col: "Name", Type: clsLaureate, Sim: eq},
			{Name: "v2", Col: "DOB", Type: kb.LiteralClass, Sim: eq},
			{Name: "v3", Col: "Country", Type: clsCountry, Sim: eq},
			{Name: "v4", Col: "Prize", Type: clsChemAw, Sim: eq},
			{Name: "v5", Col: "Institution", Type: clsOrg, Sim: eq},
			{Name: "v6", Col: "City", Type: clsCity, Sim: eq},
		},
		Edges: []rules.Edge{
			{From: "v1", Rel: relBornDate, To: "v2"},
			{From: "v1", Rel: relCitizenOf, To: "v3"},
			{From: "v1", Rel: relWonPrize, To: "v4"},
			{From: "v1", Rel: relWorksAt, To: "v5"},
			{From: "v5", Rel: relLocatedIn, To: "v6"},
			{From: "v6", Rel: relLocatedIn, To: "v3"},
		},
	}
}

// NewNobel builds the Nobel bundle with n tuples (the paper uses
// 1,069) and both KB builds.
func NewNobel(seed int64, n int) *Bundle {
	w := newNobelWorld(seed, n)
	schema := relation.NewSchema("Nobel", "Name", "DOB", "Country", "Prize", "Institution", "City")
	truth := relation.NewTable(schema)
	for _, l := range w.laureates {
		truth.Append(l.name, l.dob, w.citizenship(l), l.chemPrize, l.workInsts[0], w.workCity(l))
	}

	d := Dataset{
		Name:       "Nobel",
		Schema:     schema,
		Truth:      truth,
		KeyAttr:    "Name",
		ScopeByKey: true,
		KeyType:    clsLaureate,
		Rules:      nobelRules(),
		Pattern:    nobelPattern(),
		FDs: []llunatic.FD{
			{LHS: []string{"Institution"}, RHS: "City"},
			{LHS: []string{"City"}, RHS: "Country"},
		},
		CFDTemplates: []cfd.Template{
			{LHS: []string{"Institution"}, RHS: "City"},
			{LHS: []string{"City"}, RHS: "Country"},
		},
		Semantic: func(row int, col string, rng *rand.Rand) (string, bool) {
			l := w.laureates[row]
			switch col {
			case "City":
				if l.birthCity != w.workCity(l) {
					return l.birthCity, true
				}
			case "Country":
				if bc := w.birthCountry(l); bc != w.citizenship(l) {
					return bc, true
				}
			case "Institution":
				if l.gradInst != l.workInsts[0] {
					return l.gradInst, true
				}
			case "Prize":
				if len(l.otherPrizes) > 0 {
					return pick(rng, l.otherPrizes), true
				}
				return pick(rng, w.otherPrz), true
			case "DOB":
				if l.died != l.dob {
					return l.died, true
				}
			}
			return "", false
		},
	}
	return &Bundle{
		Dataset: d,
		Yago:    buildNobelKB(w, NobelYagoProfile()),
		DBpedia: buildNobelKB(w, NobelDBpediaProfile()),
	}
}
