package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"detective/internal/kb"
	"detective/internal/relation"
	"detective/internal/rules"
	"detective/internal/similarity"
)

// The WebTables dataset stands in for the 37 small Web tables of the
// paper's evaluation (avg 44 tuples). Tables are generated from ten
// micro-domains (country–capital, author–book, film–director, …) and
// share one KB per profile. Following the paper's discussion, tables
// with only two attributes get annotation-only rules ("it is hard to
// ensure which attribute is wrong. So our methods would not repair
// this kind of tables, in a conservative way"), which caps DR recall
// on WebTables; the Yago and DBpedia builds cover different subsets of
// the domains, which is why DBpedia aligns more classes (Table II) and
// reaches slightly higher recall (Table III) here.

// webFact is one world fact of a WebTables domain.
type webFact struct {
	s, p, o string
	literal bool
}

// webDomain is a fully generated micro-domain before it is sliced
// into tables.
type webDomain struct {
	name     string
	attrs    []string
	keyAttr  string
	keyType  string
	rows     [][]string
	facts    []webFact
	types    map[string]string // entity -> class
	rules    []*rules.DR
	pattern  rules.Graph
	semantic func(row int, col string, rng *rand.Rand) (string, bool)
	tables   int // how many tables to slice this domain into
}

// WebTablesBundle is the full WebTables corpus: 37 datasets sharing
// two KB builds.
type WebTablesBundle struct {
	Tables  []*Dataset
	Yago    *kb.Graph
	DBpedia *kb.Graph
	// DomainOf maps table name to its domain name.
	DomainOf map[string]string
}

// KB returns the build for the given KB name.
func (b *WebTablesBundle) KB(name string) *kb.Graph {
	if name == "DBpedia" {
		return b.DBpedia
	}
	return b.Yago
}

// Per-domain coverage of the two KB builds. Yago misses two domains
// entirely and covers the rest slightly worse than DBpedia on this
// corpus — giving DBpedia more aligned classes and higher recall, as
// in the paper's Tables II/III. (For Nobel/UIS the relationship is
// reversed; coverage is a property of the KB × dataset pair.)
var (
	// Yago: near-complete entity coverage but one domain absent and —
	// crucially — several *negative-semantics* relations that Yago's
	// ontology does not materialize. Entities still match (many marks,
	// high #-POS) but semantic errors in those domains cannot be
	// detected (lower recall).
	webYagoCov = map[string]float64{
		"countries": 0.98, "books": 0.98, "films": 0.98, "companies": 0.98,
		"teams": 0.98, "mountains": 0.98, "rivers": 0.98, "languages": 0.98,
		"paintings": 0, "clubs": 0.98, "airports": 0.98, "universities": 0.98,
		"operas": 0, "software": 0.98, "bridges": 0.98, "satellites": 0.98,
		"wines": 0.98, "presidents": 0.98,
	}
	webYagoDropRels = map[string]bool{
		"producedBy": true, "trainsAt": true, "firstAscentFrom": true,
		"maintainedBy": true, "nearCity": true,
	}
	// DBpedia: every domain and relation present, at lower per-entity
	// coverage — fewer marks but strictly broader repair reach.
	webDBpediaCov = map[string]float64{
		"countries": 0.95, "books": 0.95, "films": 0.95, "companies": 0.95,
		"teams": 0.95, "mountains": 0.95, "rivers": 0.95, "languages": 0.95,
		"paintings": 0.95, "clubs": 0.95, "airports": 0.95, "universities": 0.95,
		"operas": 0.95, "software": 0.95, "bridges": 0.95, "satellites": 0.95,
		"wines": 0.95, "presidents": 0.95,
	}
)

// NewWebTables generates the corpus.
func NewWebTables(seed int64) *WebTablesBundle {
	rng := rand.New(rand.NewSource(seed))
	ng := newNameGen(rng, 3)

	domains := []webDomain{
		countriesDomain(rng, ng),
		booksDomain(rng, ng),
		filmsDomain(rng, ng),
		companiesDomain(rng, ng),
		teamsDomain(rng, ng),
		mountainsDomain(rng, ng),
		riversDomain(rng, ng),
		languagesDomain(rng, ng),
		paintingsDomain(rng, ng),
		clubsDomain(rng, ng),
		airportsDomain(rng, ng),
		universitiesDomain(rng, ng),
		operasDomain(rng, ng),
		softwareDomain(rng, ng),
		bridgesDomain(rng, ng),
		satellitesDomain(rng, ng),
		winesDomain(rng, ng),
		presidentsDomain(rng, ng),
	}

	b := &WebTablesBundle{DomainOf: make(map[string]string)}
	for _, d := range domains {
		rows := d.rows
		per := (len(rows) + d.tables - 1) / d.tables
		for ti := 0; ti < d.tables; ti++ {
			lo, hi := ti*per, (ti+1)*per
			if hi > len(rows) {
				hi = len(rows)
			}
			if lo >= hi {
				break
			}
			tname := fmt.Sprintf("%s_%d", d.name, ti+1)
			schema := relation.NewSchema(tname, d.attrs...)
			truth := relation.NewTable(schema)
			base := lo
			for _, r := range rows[lo:hi] {
				truth.Append(r...)
			}
			d := d // per-iteration copy for the closure
			// Each table owns renamed copies of its domain's rules, so
			// the corpus-wide rule count matches the paper's "50 DRs
			// for WebTables" and Figure 8(a) can sweep rule subsets.
			tableRules := make([]*rules.DR, len(d.rules))
			for ri, r := range d.rules {
				cp := *r
				if r.Neg != nil {
					neg := *r.Neg
					cp.Neg = &neg
				}
				cp.Name = fmt.Sprintf("%s_%s", tname, r.Name)
				tableRules[ri] = &cp
			}
			ds := &Dataset{
				Name:    tname,
				Schema:  schema,
				Truth:   truth,
				KeyAttr: d.keyAttr,
				KeyType: d.keyType,
				Rules:   tableRules,
				Pattern: d.pattern,
				Semantic: func(row int, col string, rng *rand.Rand) (string, bool) {
					if d.semantic == nil {
						return "", false
					}
					return d.semantic(base+row, col, rng)
				},
			}
			// Web tables have no redundancy for ICs (§V-B Exp-2): FDs
			// and CFD templates stay empty.
			b.Tables = append(b.Tables, ds)
			b.DomainOf[tname] = d.name
		}
	}

	b.Yago = buildWebKB(domains, webYagoCov, webYagoDropRels, true, 505)
	b.DBpedia = buildWebKB(domains, webDBpediaCov, nil, false, 606)
	return b
}

// buildWebKB materializes the shared KB: per-domain coverage decides
// whether a key entity (and its facts) is present at all.
func buildWebKB(domains []webDomain, cov map[string]float64, dropRels map[string]bool, richTaxonomy bool, seed int64) *kb.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := kb.New()
	for _, d := range domains {
		c := cov[d.name]
		if c == 0 {
			continue
		}
		// Deterministic entity order: map iteration would reshuffle the
		// coverage coin flips run-to-run.
		entities := make([]string, 0, len(d.types))
		for e := range d.types {
			entities = append(entities, e)
		}
		sort.Strings(entities)
		if richTaxonomy {
			for _, e := range entities {
				g.AddSubclass(d.types[e], "entity")
			}
		}
		dropped := make(map[string]bool)
		for _, e := range entities {
			if rng.Float64() >= c {
				dropped[e] = true
				continue
			}
			g.AddType(e, d.types[e])
		}
		for _, f := range d.facts {
			if dropRels[f.p] || dropped[f.s] || (!f.literal && dropped[f.o]) {
				continue
			}
			if f.literal {
				g.AddPropertyTriple(f.s, f.p, f.o)
			} else {
				g.AddTriple(f.s, f.p, f.o)
			}
		}
	}
	g.Freeze()
	return g
}

// --- domain builders -------------------------------------------------

// repairRule builds a three-node DR: evidence on the key column, a
// positive and a negative semantics for the target column.
func repairRule(name, keyAttr, keyType, col, colType, posRel, negRel string) *rules.DR {
	neg := rules.Node{Name: "n", Col: col, Type: colType, Sim: similarity.EDK(2)}
	return &rules.DR{
		Name:     name,
		Evidence: []rules.Node{{Name: "e", Col: keyAttr, Type: keyType, Sim: similarity.Eq}},
		Pos:      rules.Node{Name: "p", Col: col, Type: colType, Sim: similarity.EDK(2)},
		Neg:      &neg,
		Edges: []rules.Edge{
			{From: "e", Rel: posRel, To: "p"},
			{From: "e", Rel: negRel, To: "n"},
		},
	}
}

// annotRule builds an annotation-only DR (no negative node).
func annotRule(name, keyAttr, keyType, col, colType, rel string, sim similarity.Spec) *rules.DR {
	return &rules.DR{
		Name:     name,
		Evidence: []rules.Node{{Name: "e", Col: keyAttr, Type: keyType, Sim: similarity.Eq}},
		Pos:      rules.Node{Name: "p", Col: col, Type: colType, Sim: sim},
		Edges:    []rules.Edge{{From: "e", Rel: rel, To: "p"}},
	}
}

// twoColPattern / threeColPattern assemble KATARA patterns.
func starPattern(keyAttr, keyType string, cols []string, colTypes []string, rels []string) rules.Graph {
	g := rules.Graph{Nodes: []rules.Node{{Name: "k", Col: keyAttr, Type: keyType, Sim: similarity.Eq}}}
	for i, c := range cols {
		n := fmt.Sprintf("v%d", i+1)
		g.Nodes = append(g.Nodes, rules.Node{Name: n, Col: c, Type: colTypes[i], Sim: similarity.Eq})
		g.Edges = append(g.Edges, rules.Edge{From: "k", Rel: rels[i], To: n})
	}
	return g
}

func countriesDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 130
	d := webDomain{
		name: "countries", attrs: []string{"Country", "Capital", "Continent"},
		keyAttr: "Country", keyType: "web country", tables: 3,
		types: make(map[string]string),
	}
	continents := make([]string, 5)
	for i := range continents {
		continents[i] = ng.Place(false)
		d.types[continents[i]] = "continent"
	}
	type rec struct{ country, capital, largest, continent string }
	recs := make([]rec, n)
	for i := range recs {
		r := rec{
			country: ng.Place(false), capital: ng.Place(true),
			largest: ng.Place(true), continent: pick(rng, continents),
		}
		recs[i] = r
		d.types[r.country] = "web country"
		d.types[r.capital] = "capital city"
		d.types[r.largest] = "capital city" // same class: both are cities
		d.facts = append(d.facts,
			webFact{s: r.country, p: "hasCapital", o: r.capital},
			webFact{s: r.country, p: "largestCity", o: r.largest},
			webFact{s: r.country, p: "onContinent", o: r.continent},
		)
		d.rows = append(d.rows, []string{r.country, r.capital, r.continent})
	}
	d.rules = []*rules.DR{
		repairRule("countries_capital", "Country", "web country", "Capital", "capital city", "hasCapital", "largestCity"),
		annotRule("countries_continent", "Country", "web country", "Continent", "continent", "onContinent", similarity.EDK(2)),
	}
	d.pattern = starPattern("Country", "web country",
		[]string{"Capital", "Continent"}, []string{"capital city", "continent"},
		[]string{"hasCapital", "onContinent"})
	d.semantic = func(row int, col string, _ *rand.Rand) (string, bool) {
		if col == "Capital" {
			return recs[row].largest, true
		}
		return "", false
	}
	return d
}

func booksDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "books", attrs: []string{"Author", "Book"},
		keyAttr: "Author", keyType: "writer", tables: 2,
		types: make(map[string]string),
	}
	for i := 0; i < n; i++ {
		author, book := ng.Person(), ng.Phrase("Chronicles")
		d.types[author] = "writer"
		d.types[book] = "book"
		d.facts = append(d.facts, webFact{s: author, p: "wrote", o: book})
		// Real authors write several books: extra works make KATARA's
		// completion of a wrong Book ambiguous, while detective rules
		// stay conservative.
		for k := 0; k < rng.Intn(3); k++ {
			extra := ng.Phrase("Chronicles")
			d.types[extra] = "book"
			d.facts = append(d.facts, webFact{s: author, p: "wrote", o: extra})
		}
		d.rows = append(d.rows, []string{author, book})
	}
	// Two attributes: annotation only (the paper's conservative case).
	d.rules = []*rules.DR{
		annotRule("books_book", "Author", "writer", "Book", "book", "wrote", similarity.EDK(2)),
	}
	d.pattern = starPattern("Author", "writer", []string{"Book"}, []string{"book"}, []string{"wrote"})
	return d
}

func filmsDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 130
	d := webDomain{
		name: "films", attrs: []string{"Film", "Director", "Year"},
		keyAttr: "Film", keyType: "film", tables: 3,
		types: make(map[string]string),
	}
	type rec struct{ film, director, producer, year string }
	recs := make([]rec, n)
	for i := range recs {
		r := rec{film: ng.Phrase("Story"), director: ng.Person(),
			producer: ng.Person(), year: fmt.Sprintf("%d", 1930+rng.Intn(90))}
		recs[i] = r
		d.types[r.film] = "film"
		d.types[r.director] = "film director"
		d.types[r.producer] = "film director" // producers are people of the same class
		d.facts = append(d.facts,
			webFact{s: r.film, p: "directedBy", o: r.director},
			webFact{s: r.film, p: "producedBy", o: r.producer},
			webFact{s: r.film, p: "releasedIn", o: r.year, literal: true},
		)
		if rng.Float64() < 0.4 { // co-directed films: multi-version repairs
			co := ng.Person()
			d.types[co] = "film director"
			d.facts = append(d.facts, webFact{s: r.film, p: "directedBy", o: co})
		}
		d.rows = append(d.rows, []string{r.film, r.director, r.year})
	}
	d.rules = []*rules.DR{
		repairRule("films_director", "Film", "film", "Director", "film director", "directedBy", "producedBy"),
		annotRule("films_year", "Film", "film", "Year", kb.LiteralClass, "releasedIn", similarity.EDK(1)),
	}
	d.pattern = starPattern("Film", "film",
		[]string{"Director", "Year"}, []string{"film director", kb.LiteralClass},
		[]string{"directedBy", "releasedIn"})
	d.semantic = func(row int, col string, _ *rand.Rand) (string, bool) {
		if col == "Director" {
			return recs[row].producer, true
		}
		return "", false
	}
	return d
}

func companiesDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "companies", attrs: []string{"Company", "CEO", "Headquarters"},
		keyAttr: "Company", keyType: "company", tables: 2,
		types: make(map[string]string),
	}
	type rec struct{ company, ceo, founder, hq string }
	recs := make([]rec, n)
	for i := range recs {
		r := rec{company: ng.Phrase("Corp"), ceo: ng.Person(),
			founder: ng.Person(), hq: ng.Place(true)}
		recs[i] = r
		d.types[r.company] = "company"
		d.types[r.ceo] = "executive"
		d.types[r.founder] = "executive"
		d.types[r.hq] = "hq city"
		d.facts = append(d.facts,
			webFact{s: r.company, p: "hasCEO", o: r.ceo},
			webFact{s: r.company, p: "foundedBy", o: r.founder},
			webFact{s: r.company, p: "headquarteredIn", o: r.hq},
		)
		if rng.Float64() < 0.3 { // co-CEOs: multi-version repairs
			co := ng.Person()
			d.types[co] = "executive"
			d.facts = append(d.facts, webFact{s: r.company, p: "hasCEO", o: co})
		}
		d.rows = append(d.rows, []string{r.company, r.ceo, r.hq})
	}
	d.rules = []*rules.DR{
		repairRule("companies_ceo", "Company", "company", "CEO", "executive", "hasCEO", "foundedBy"),
		annotRule("companies_hq", "Company", "company", "Headquarters", "hq city", "headquarteredIn", similarity.EDK(2)),
	}
	d.pattern = starPattern("Company", "company",
		[]string{"CEO", "Headquarters"}, []string{"executive", "hq city"},
		[]string{"hasCEO", "headquarteredIn"})
	d.semantic = func(row int, col string, _ *rand.Rand) (string, bool) {
		if col == "CEO" {
			return recs[row].founder, true
		}
		return "", false
	}
	return d
}

func teamsDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "teams", attrs: []string{"Team", "Stadium", "City"},
		keyAttr: "Team", keyType: "sports team", tables: 2,
		types: make(map[string]string),
	}
	type rec struct{ team, stadium, training, city string }
	recs := make([]rec, n)
	for i := range recs {
		r := rec{team: ng.Phrase("United"), stadium: ng.Phrase("Arena"),
			training: ng.Phrase("Training Ground"), city: ng.Place(true)}
		recs[i] = r
		d.types[r.team] = "sports team"
		d.types[r.stadium] = "stadium"
		d.types[r.training] = "stadium"
		d.types[r.city] = "team city"
		d.facts = append(d.facts,
			webFact{s: r.team, p: "playsAt", o: r.stadium},
			webFact{s: r.team, p: "trainsAt", o: r.training},
			webFact{s: r.team, p: "basedIn", o: r.city},
		)
		if rng.Float64() < 0.3 { // secondary venues: multi-version repairs
			alt := ng.Phrase("Stadium")
			d.types[alt] = "stadium"
			d.facts = append(d.facts, webFact{s: r.team, p: "playsAt", o: alt})
		}
		d.rows = append(d.rows, []string{r.team, r.stadium, r.city})
	}
	d.rules = []*rules.DR{
		repairRule("teams_stadium", "Team", "sports team", "Stadium", "stadium", "playsAt", "trainsAt"),
		annotRule("teams_city", "Team", "sports team", "City", "team city", "basedIn", similarity.EDK(2)),
	}
	d.pattern = starPattern("Team", "sports team",
		[]string{"Stadium", "City"}, []string{"stadium", "team city"},
		[]string{"playsAt", "basedIn"})
	d.semantic = func(row int, col string, _ *rand.Rand) (string, bool) {
		if col == "Stadium" {
			return recs[row].training, true
		}
		return "", false
	}
	return d
}

func mountainsDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "mountains", attrs: []string{"Mountain", "Country", "Height"},
		keyAttr: "Mountain", keyType: "mountain", tables: 2,
		types: make(map[string]string),
	}
	type rec struct{ mountain, country, firstClimbedIn, height string }
	recs := make([]rec, n)
	for i := range recs {
		r := rec{mountain: ng.Phrase("Peak"), country: ng.Place(false),
			firstClimbedIn: ng.Place(false), height: fmt.Sprintf("%d m", 1000+rng.Intn(8000))}
		recs[i] = r
		d.types[r.mountain] = "mountain"
		d.types[r.country] = "mountain country"
		d.types[r.firstClimbedIn] = "mountain country"
		d.facts = append(d.facts,
			webFact{s: r.mountain, p: "inCountry", o: r.country},
			webFact{s: r.mountain, p: "firstAscentFrom", o: r.firstClimbedIn},
			webFact{s: r.mountain, p: "heightOf", o: r.height, literal: true},
		)
		d.rows = append(d.rows, []string{r.mountain, r.country, r.height})
	}
	d.rules = []*rules.DR{
		repairRule("mountains_country", "Mountain", "mountain", "Country", "mountain country", "inCountry", "firstAscentFrom"),
		annotRule("mountains_height", "Mountain", "mountain", "Height", kb.LiteralClass, "heightOf", similarity.EDK(1)),
	}
	d.pattern = starPattern("Mountain", "mountain",
		[]string{"Country", "Height"}, []string{"mountain country", kb.LiteralClass},
		[]string{"inCountry", "heightOf"})
	d.semantic = func(row int, col string, _ *rand.Rand) (string, bool) {
		if col == "Country" {
			return recs[row].firstClimbedIn, true
		}
		return "", false
	}
	return d
}

func riversDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "rivers", attrs: []string{"River", "Country"},
		keyAttr: "River", keyType: "river", tables: 2,
		types: make(map[string]string),
	}
	for i := 0; i < n; i++ {
		river, country := ng.Phrase("River"), ng.Place(false)
		d.types[river] = "river"
		d.types[country] = "river country"
		d.facts = append(d.facts, webFact{s: river, p: "flowsThrough", o: country})
		for k := 0; k < rng.Intn(3); k++ {
			extra := ng.Place(false)
			d.types[extra] = "river country"
			d.facts = append(d.facts, webFact{s: river, p: "flowsThrough", o: extra})
		}
		d.rows = append(d.rows, []string{river, country})
	}
	d.rules = []*rules.DR{
		annotRule("rivers_country", "River", "river", "Country", "river country", "flowsThrough", similarity.EDK(2)),
	}
	d.pattern = starPattern("River", "river", []string{"Country"}, []string{"river country"}, []string{"flowsThrough"})
	return d
}

func languagesDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "languages", attrs: []string{"Language", "Country"},
		keyAttr: "Language", keyType: "language", tables: 2,
		types: make(map[string]string),
	}
	for i := 0; i < n; i++ {
		lang, country := ng.Place(false)+"ish", ng.Place(false)
		d.types[lang] = "language"
		d.types[country] = "language country"
		d.facts = append(d.facts, webFact{s: lang, p: "spokenIn", o: country})
		for k := 0; k < rng.Intn(3); k++ {
			extra := ng.Place(false)
			d.types[extra] = "language country"
			d.facts = append(d.facts, webFact{s: lang, p: "spokenIn", o: extra})
		}
		d.rows = append(d.rows, []string{lang, country})
	}
	d.rules = []*rules.DR{
		annotRule("languages_country", "Language", "language", "Country", "language country", "spokenIn", similarity.EDK(2)),
	}
	d.pattern = starPattern("Language", "language", []string{"Country"}, []string{"language country"}, []string{"spokenIn"})
	return d
}

func paintingsDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "paintings", attrs: []string{"Painting", "Painter"},
		keyAttr: "Painting", keyType: "painting", tables: 2,
		types: make(map[string]string),
	}
	for i := 0; i < n; i++ {
		painting, painter := ng.Phrase("at Dusk"), ng.Person()
		d.types[painting] = "painting"
		d.types[painter] = "painter"
		d.facts = append(d.facts, webFact{s: painting, p: "paintedBy", o: painter})
		// A painter has an oeuvre: extra works keep completion of a
		// mangled Painting ambiguous.
		for k := 0; k < rng.Intn(3); k++ {
			extra := ng.Phrase("at Dusk")
			d.types[extra] = "painting"
			d.facts = append(d.facts, webFact{s: extra, p: "paintedBy", o: painter})
		}
		d.rows = append(d.rows, []string{painting, painter})
	}
	d.rules = []*rules.DR{
		annotRule("paintings_painter", "Painting", "painting", "Painter", "painter", "paintedBy", similarity.EDK(2)),
	}
	d.pattern = starPattern("Painting", "painting", []string{"Painter"}, []string{"painter"}, []string{"paintedBy"})
	return d
}

func clubsDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "clubs", attrs: []string{"Player", "Club"},
		keyAttr: "Player", keyType: "player", tables: 2,
		types: make(map[string]string),
	}
	for i := 0; i < n; i++ {
		player, club := ng.Person(), ng.Phrase("FC")
		d.types[player] = "player"
		d.types[club] = "club"
		d.facts = append(d.facts, webFact{s: player, p: "playsFor", o: club})
		for k := 0; k < rng.Intn(3); k++ {
			extra := ng.Phrase("FC")
			d.types[extra] = "club"
			d.facts = append(d.facts, webFact{s: player, p: "playsFor", o: extra})
		}
		d.rows = append(d.rows, []string{player, club})
	}
	d.rules = []*rules.DR{
		annotRule("clubs_club", "Player", "player", "Club", "club", "playsFor", similarity.EDK(2)),
	}
	d.pattern = starPattern("Player", "player", []string{"Club"}, []string{"club"}, []string{"playsFor"})
	return d
}

func airportsDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "airports", attrs: []string{"Airport", "City", "Code"},
		keyAttr: "Airport", keyType: "airport", tables: 2,
		types: make(map[string]string),
	}
	type rec struct{ airport, city, near, code string }
	recs := make([]rec, n)
	codes := make(map[string]bool)
	for i := range recs {
		code := ""
		for code == "" || codes[code] {
			code = strings.ToUpper(ng.word(1))
			if len(code) > 3 {
				code = code[:3]
			}
		}
		codes[code] = true
		r := rec{airport: ng.Phrase("International Airport"), city: ng.Place(true),
			near: ng.Place(true), code: code}
		recs[i] = r
		d.types[r.airport] = "airport"
		d.types[r.city] = "airport city"
		d.types[r.near] = "airport city"
		d.facts = append(d.facts,
			webFact{s: r.airport, p: "servesCity", o: r.city},
			webFact{s: r.airport, p: "nearCity", o: r.near},
			webFact{s: r.airport, p: "iataCode", o: r.code, literal: true},
		)
		d.rows = append(d.rows, []string{r.airport, r.city, r.code})
	}
	d.rules = []*rules.DR{
		repairRule("airports_city", "Airport", "airport", "City", "airport city", "servesCity", "nearCity"),
		annotRule("airports_code", "Airport", "airport", "Code", kb.LiteralClass, "iataCode", similarity.EDK(1)),
	}
	d.pattern = starPattern("Airport", "airport",
		[]string{"City", "Code"}, []string{"airport city", kb.LiteralClass},
		[]string{"servesCity", "iataCode"})
	d.semantic = func(row int, col string, _ *rand.Rand) (string, bool) {
		if col == "City" {
			return recs[row].near, true
		}
		return "", false
	}
	return d
}

func universitiesDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "universities", attrs: []string{"University", "President", "Country"},
		keyAttr: "University", keyType: "university", tables: 2,
		types: make(map[string]string),
	}
	type rec struct{ uni, president, founder, country string }
	recs := make([]rec, n)
	for i := range recs {
		r := rec{uni: ng.Phrase("University"), president: ng.Person(),
			founder: ng.Person(), country: ng.Place(false)}
		recs[i] = r
		d.types[r.uni] = "university"
		d.types[r.president] = "academic"
		d.types[r.founder] = "academic"
		d.types[r.country] = "university country"
		d.facts = append(d.facts,
			webFact{s: r.uni, p: "presidedBy", o: r.president},
			webFact{s: r.uni, p: "foundedByPerson", o: r.founder},
			webFact{s: r.uni, p: "inCountry", o: r.country},
		)
		d.rows = append(d.rows, []string{r.uni, r.president, r.country})
	}
	d.rules = []*rules.DR{
		repairRule("universities_president", "University", "university", "President", "academic", "presidedBy", "foundedByPerson"),
		annotRule("universities_country", "University", "university", "Country", "university country", "inCountry", similarity.EDK(2)),
	}
	d.pattern = starPattern("University", "university",
		[]string{"President", "Country"}, []string{"academic", "university country"},
		[]string{"presidedBy", "inCountry"})
	d.semantic = func(row int, col string, _ *rand.Rand) (string, bool) {
		if col == "President" {
			return recs[row].founder, true
		}
		return "", false
	}
	return d
}

func operasDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "operas", attrs: []string{"Opera", "Composer"},
		keyAttr: "Opera", keyType: "opera", tables: 2,
		types: make(map[string]string),
	}
	for i := 0; i < n; i++ {
		opera, composer := ng.Phrase("Aria"), ng.Person()
		d.types[opera] = "opera"
		d.types[composer] = "composer"
		d.facts = append(d.facts, webFact{s: opera, p: "composedBy", o: composer})
		d.rows = append(d.rows, []string{opera, composer})
	}
	d.rules = []*rules.DR{
		annotRule("operas_composer", "Opera", "opera", "Composer", "composer", "composedBy", similarity.EDK(2)),
	}
	d.pattern = starPattern("Opera", "opera", []string{"Composer"}, []string{"composer"}, []string{"composedBy"})
	return d
}

func softwareDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "software", attrs: []string{"Software", "Developer", "Language"},
		keyAttr: "Software", keyType: "software", tables: 2,
		types: make(map[string]string),
	}
	langs := make([]string, 8)
	for i := range langs {
		langs[i] = ng.Place(false) + "Lang"
		d.types[langs[i]] = "programming language"
	}
	type rec struct{ sw, dev, maintainer, lang string }
	recs := make([]rec, n)
	for i := range recs {
		r := rec{sw: ng.Phrase("Suite"), dev: ng.Person(),
			maintainer: ng.Person(), lang: pick(rng, langs)}
		recs[i] = r
		d.types[r.sw] = "software"
		d.types[r.dev] = "developer"
		d.types[r.maintainer] = "developer"
		d.facts = append(d.facts,
			webFact{s: r.sw, p: "developedBy", o: r.dev},
			webFact{s: r.sw, p: "maintainedBy", o: r.maintainer},
			webFact{s: r.sw, p: "writtenIn", o: r.lang},
		)
		d.rows = append(d.rows, []string{r.sw, r.dev, r.lang})
	}
	d.rules = []*rules.DR{
		repairRule("software_developer", "Software", "software", "Developer", "developer", "developedBy", "maintainedBy"),
		annotRule("software_language", "Software", "software", "Language", "programming language", "writtenIn", similarity.EDK(2)),
	}
	d.pattern = starPattern("Software", "software",
		[]string{"Developer", "Language"}, []string{"developer", "programming language"},
		[]string{"developedBy", "writtenIn"})
	d.semantic = func(row int, col string, _ *rand.Rand) (string, bool) {
		if col == "Developer" {
			return recs[row].maintainer, true
		}
		return "", false
	}
	return d
}

func bridgesDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "bridges", attrs: []string{"Bridge", "River"},
		keyAttr: "Bridge", keyType: "bridge", tables: 2,
		types: make(map[string]string),
	}
	for i := 0; i < n; i++ {
		bridge, river := ng.Phrase("Bridge"), ng.Phrase("Creek")
		d.types[bridge] = "bridge"
		d.types[river] = "bridge river"
		d.facts = append(d.facts, webFact{s: bridge, p: "spans", o: river})
		d.rows = append(d.rows, []string{bridge, river})
	}
	d.rules = []*rules.DR{
		annotRule("bridges_river", "Bridge", "bridge", "River", "bridge river", "spans", similarity.EDK(2)),
	}
	d.pattern = starPattern("Bridge", "bridge", []string{"River"}, []string{"bridge river"}, []string{"spans"})
	return d
}

func satellitesDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "satellites", attrs: []string{"Satellite", "Planet"},
		keyAttr: "Satellite", keyType: "satellite", tables: 2,
		types: make(map[string]string),
	}
	planets := make([]string, 9)
	for i := range planets {
		planets[i] = ng.Place(false)
		d.types[planets[i]] = "planet"
	}
	for i := 0; i < n; i++ {
		sat := ng.Place(true) + " IX"
		planet := pick(rng, planets)
		d.types[sat] = "satellite"
		d.facts = append(d.facts, webFact{s: sat, p: "orbits", o: planet})
		d.rows = append(d.rows, []string{sat, planet})
	}
	d.rules = []*rules.DR{
		annotRule("satellites_planet", "Satellite", "satellite", "Planet", "planet", "orbits", similarity.EDK(2)),
	}
	d.pattern = starPattern("Satellite", "satellite", []string{"Planet"}, []string{"planet"}, []string{"orbits"})
	return d
}

func winesDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 90
	d := webDomain{
		name: "wines", attrs: []string{"Wine", "Region"},
		keyAttr: "Wine", keyType: "wine", tables: 2,
		types: make(map[string]string),
	}
	for i := 0; i < n; i++ {
		wine, region := ng.Phrase("Reserve"), ng.Place(true)
		d.types[wine] = "wine"
		d.types[region] = "wine region"
		d.facts = append(d.facts, webFact{s: wine, p: "producedInRegion", o: region})
		d.rows = append(d.rows, []string{wine, region})
	}
	d.rules = []*rules.DR{
		annotRule("wines_region", "Wine", "wine", "Region", "wine region", "producedInRegion", similarity.EDK(2)),
	}
	d.pattern = starPattern("Wine", "wine", []string{"Region"}, []string{"wine region"}, []string{"producedInRegion"})
	return d
}

func presidentsDomain(rng *rand.Rand, ng *nameGen) webDomain {
	const n = 50
	d := webDomain{
		name: "presidents", attrs: []string{"President", "Party", "Predecessor"},
		keyAttr: "President", keyType: "statesman", tables: 1,
		types: make(map[string]string),
	}
	parties := make([]string, 6)
	for i := range parties {
		parties[i] = ng.Phrase("Party")
		d.types[parties[i]] = "party"
	}
	type rec struct{ president, party, opposed, pred string }
	recs := make([]rec, n)
	for i := range recs {
		r := rec{president: ng.Person(), party: pick(rng, parties),
			opposed: pick(rng, parties), pred: ng.Person()}
		recs[i] = r
		d.types[r.president] = "statesman"
		d.types[r.pred] = "statesman"
		d.facts = append(d.facts,
			webFact{s: r.president, p: "memberOfParty", o: r.party},
			webFact{s: r.president, p: "opposedParty", o: r.opposed},
			webFact{s: r.president, p: "succeeded", o: r.pred},
		)
		d.rows = append(d.rows, []string{r.president, r.party, r.pred})
	}
	d.rules = []*rules.DR{
		repairRule("presidents_party", "President", "statesman", "Party", "party", "memberOfParty", "opposedParty"),
		annotRule("presidents_pred", "President", "statesman", "Predecessor", "statesman", "succeeded", similarity.EDK(2)),
	}
	d.pattern = starPattern("President", "statesman",
		[]string{"Party", "Predecessor"}, []string{"party", "statesman"},
		[]string{"memberOfParty", "succeeded"})
	d.semantic = func(row int, col string, _ *rand.Rand) (string, bool) {
		if col == "Party" {
			return recs[row].opposed, true
		}
		return "", false
	}
	return d
}
