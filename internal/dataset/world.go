package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"detective/internal/similarity"
)

// nameGen produces pronounceable synthetic names that are pairwise
// more than minED edit operations apart, so that fuzzy matching in
// the experiments never confuses two distinct entities. Uniqueness is
// enforced with the same signature index the repair engine uses.
type nameGen struct {
	rng   *rand.Rand
	minED int
	index *similarity.StringIndex
	count int
}

func newNameGen(rng *rand.Rand, minED int) *nameGen {
	return &nameGen{rng: rng, minED: minED, index: similarity.NewStringIndex(minED)}
}

var (
	onsets  = []string{"b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr", "r", "s", "st", "t", "tr", "v", "w", "z"}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
	codas   = []string{"", "l", "m", "n", "r", "s", "t", "ck", "nd", "st"}
	suffixe = []string{"", "ia", "land", "ville", "berg", "ton", "stead", "mont", "field", "haven"}
)

// word builds one random word of syllables syllables, capitalized.
func (g *nameGen) word(syllables int) string {
	var b strings.Builder
	for i := 0; i < syllables; i++ {
		b.WriteString(onsets[g.rng.Intn(len(onsets))])
		b.WriteString(vowels[g.rng.Intn(len(vowels))])
		b.WriteString(codas[g.rng.Intn(len(codas))])
	}
	s := b.String()
	return strings.ToUpper(s[:1]) + s[1:]
}

// fresh returns a new name built by gen that is more than minED edits
// from every name issued before (across all calls). It retries with
// growing length and ultimately appends a unique numeric suffix, so it
// always terminates.
func (g *nameGen) fresh(gen func() string) string {
	for attempt := 0; attempt < 40; attempt++ {
		s := gen()
		if len(g.index.LookupED(s, g.minED)) == 0 {
			g.index.Add(s, int32(g.count))
			g.count++
			return s
		}
	}
	s := fmt.Sprintf("%s %d", gen(), g.count)
	g.index.Add(s, int32(g.count))
	g.count++
	return s
}

// Place returns a fresh place name ("Brandon Village" style).
func (g *nameGen) Place(suffix bool) string {
	return g.fresh(func() string {
		s := g.word(1 + g.rng.Intn(2))
		if suffix {
			s += suffixe[g.rng.Intn(len(suffixe))]
		}
		return s
	})
}

// Person returns a fresh "First Last" person name.
func (g *nameGen) Person() string {
	return g.fresh(func() string {
		return g.word(1+g.rng.Intn(2)) + " " + g.word(1+g.rng.Intn(2))
	})
}

// Phrase returns a fresh multi-word phrase assembled from the given
// parts plus a generated word, e.g. institution or award names.
func (g *nameGen) Phrase(parts ...string) string {
	return g.fresh(func() string {
		return strings.Join(append([]string{g.word(1 + g.rng.Intn(2))}, parts...), " ")
	})
}

// date renders a deterministic pseudo-date between 1850 and 1999.
func randDate(rng *rand.Rand) string {
	y := 1850 + rng.Intn(150)
	m := 1 + rng.Intn(12)
	d := 1 + rng.Intn(28)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

// digits renders n random digits (SSNs, zips, street numbers).
func digits(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + rng.Intn(10))
	}
	return string(b)
}

// pick returns a uniformly random element of xs.
func pick[T any](rng *rand.Rand, xs []T) T {
	return xs[rng.Intn(len(xs))]
}

// pickOther returns a uniformly random element of xs different from
// not, assuming one exists.
func pickOther(rng *rand.Rand, xs []string, not string) string {
	for {
		x := xs[rng.Intn(len(xs))]
		if x != not {
			return x
		}
	}
}
