package dataset

import (
	"math/rand"

	"detective/internal/relation"
)

// DuplicateBursts returns a copy of tb with each row repeated in a
// short consecutive burst of 1..maxBurst copies (uniformly drawn).
// Real extraction pipelines emit exactly this shape — the same record
// re-scraped from adjacent pages or near-identical list entries — and
// it is the duplicate-heavy distribution the streaming pipeline's
// in-chunk dedup is built for. The expected output size is
// len(tb) × (maxBurst+1)/2 rows.
func DuplicateBursts(tb *relation.Table, seed int64, maxBurst int) *relation.Table {
	if maxBurst < 1 {
		maxBurst = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := &relation.Table{Schema: tb.Schema}
	for _, tu := range tb.Tuples {
		for r := 1 + rng.Intn(maxBurst); r > 0; r-- {
			out.Tuples = append(out.Tuples, tu.Clone())
		}
	}
	return out
}
