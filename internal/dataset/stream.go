package dataset

import (
	"math/rand"

	"detective/internal/relation"
)

// DuplicateBursts returns a copy of tb with each row repeated in a
// short consecutive burst of 1..maxBurst copies (uniformly drawn).
// Real extraction pipelines emit exactly this shape — the same record
// re-scraped from adjacent pages or near-identical list entries — and
// it is the duplicate-heavy distribution the streaming pipeline's
// in-chunk dedup is built for. The expected output size is
// len(tb) × (maxBurst+1)/2 rows.
func DuplicateBursts(tb *relation.Table, seed int64, maxBurst int) *relation.Table {
	if maxBurst < 1 {
		maxBurst = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := &relation.Table{Schema: tb.Schema}
	for _, tu := range tb.Tuples {
		for r := 1 + rng.Intn(maxBurst); r > 0; r-- {
			out.Tuples = append(out.Tuples, tu.Clone())
		}
	}
	return out
}

// ZipfTable draws n rows from tb with Zipf-distributed row popularity
// of skew s: a handful of rows dominate the stream while a long tail
// appears once or twice — the value-frequency skew of real dirty
// feeds (HoloClean's observation that error signals concentrate on
// few recurring values) and the workload the cross-request repair
// memo is built for. The popularity ranking is a seeded shuffle of
// tb, so rank is independent of input order; the draw sequence is
// fully determined by (tb, seed, s, n). The Zipf law requires s > 1;
// smaller values are clamped to just above 1 (near-uniform).
func ZipfTable(tb *relation.Table, seed int64, s float64, n int) *relation.Table {
	if tb.Len() == 0 || n <= 0 {
		return &relation.Table{Schema: tb.Schema}
	}
	if s <= 1 {
		s = 1.0000001
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(tb.Len())
	z := rand.NewZipf(rng, s, 1, uint64(tb.Len()-1))
	out := &relation.Table{Schema: tb.Schema, Tuples: make([]*relation.Tuple, 0, n)}
	for i := 0; i < n; i++ {
		out.Tuples = append(out.Tuples, tb.Tuples[perm[z.Uint64()]].Clone())
	}
	return out
}
